package sosf

// Cross-worker-count determinism: the property this PR's engine is built
// around. One simulation round is sharded across a worker pool, but every
// random decision flows from counter-based per-node streams keyed by
// (seed, node, round, protocol, phase), the serial Deliver phase fixes all
// cross-node ordering, and the parallel Absorb phase only touches
// slot-local state — so the streamed round events (and through them every
// figure and report) must be byte-identical for workers ∈ {1, 2, 4, 8},
// over multiple seeds, topologies, and fault timelines including churn and
// network partitions.

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// workerCounts are the widths every property below must agree across.
var workerCounts = []int{1, 2, 4, 8}

// streamEvents runs src to the scenario horizon (or DefaultRounds) with the
// given options and returns the JSONL round-event stream.
func streamEvents(t *testing.T, src string, opts ...Option) []byte {
	t.Helper()
	sys, err := New(src, append(opts, WithRunToEnd())...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sys.Subscribe(JSONLSink(&buf))
	rounds := DefaultRounds
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if _, err := sys.Step(rounds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertWorkerInvariant checks the stream is identical for every worker
// count, reporting the first diverging line on failure.
func assertWorkerInvariant(t *testing.T, src string, opts ...Option) {
	t.Helper()
	var base []byte
	for _, w := range workerCounts {
		got := streamEvents(t, src, append(opts, WithWorkers(w))...)
		if w == workerCounts[0] {
			base = got
			continue
		}
		if bytes.Equal(base, got) {
			continue
		}
		baseLines := bytes.Split(base, []byte("\n"))
		gotLines := bytes.Split(got, []byte("\n"))
		for i := 0; i < len(baseLines) || i < len(gotLines); i++ {
			var a, b []byte
			if i < len(baseLines) {
				a = baseLines[i]
			}
			if i < len(gotLines) {
				b = gotLines[i]
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("workers=%d diverges from workers=1 at line %d:\n  w1: %s\n  w%d: %s",
					w, i+1, a, w, b)
			}
		}
		t.Fatalf("workers=%d stream differs from workers=1 (lengths %d vs %d)", w, len(base), len(got))
	}
}

// TestWorkerCountInvariantScenario replays the golden fixture's scenario
// (loss window, 30% blast, live reconfiguration, component kill) at every
// worker count and over several seeds.
func TestWorkerCountInvariantScenario(t *testing.T) {
	src, err := os.ReadFile("testdata/playdemo.sos")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1] // the -race -short CI lap replays one seed
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			assertWorkerInvariant(t, string(src), WithSeed(seed))
		})
	}
}

// TestWorkerCountInvariantPartitionChurn drives the harder timeline the
// golden scenario does not cover: continuous churn with a network
// partition splitting and healing mid-run, over a second topology.
func TestWorkerCountInvariantPartitionChurn(t *testing.T) {
	src, err := os.ReadFile("testdata/ringpair.sos")
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		During(5, 60, Churn(0.02)),
		During(20, 40, Partition(2)),
		At(50, Kill(0.2)),
	}
	seeds := []int64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			assertWorkerInvariant(t, string(src),
				WithSeed(seed), WithRounds(80), WithLoss(0.05), WithScenario(sc))
		})
	}
}

// TestWorkerCountInvariantTopologies sweeps structurally different shapes
// (star hubs have view capacities far above the gossip size; grids and
// trees stress the rank-sort paths) under plain convergence runs.
func TestWorkerCountInvariantTopologies(t *testing.T) {
	topologies := map[string]string{
		"starpair": `topology starpair {
			nodes 120
			component hub star { port mid }
			component rim ring { port in }
			link hub.mid rim.in
		}`,
		"gridtree": `topology gridtree {
			nodes 150
			component plane grid {
				param width 6
				port corner
			}
			component crown tree { port root }
			link plane.corner crown.root
		}`,
	}
	for name, src := range topologies {
		t.Run(name, func(t *testing.T) {
			assertWorkerInvariant(t, src, WithSeed(5), WithRounds(60))
		})
	}
}

// TestWorkerCountInvariantReports pins the full report (convergence rounds,
// accuracies, bandwidth) rather than the event stream: the numbers the
// figures are built from must not move with the worker count either.
func TestWorkerCountInvariantReports(t *testing.T) {
	src, err := os.ReadFile("testdata/ringpair.sos")
	if err != nil {
		t.Fatal(err)
	}
	var base string
	for _, w := range workerCounts {
		rep, err := Run(string(src), WithSeed(9), WithRounds(100), WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		got := rep.String()
		if w == workerCounts[0] {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("report differs at workers=%d:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				w, base, w, got)
		}
	}
}
