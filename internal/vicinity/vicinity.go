// Package vicinity implements a generic self-organizing overlay protocol in
// the style of Vicinity and T-Man: each node greedily keeps the best-ranked
// peers it has ever heard of, and gossip exchanges spread good candidates
// along the gradient of the ranking function, so the overlay converges to
// the target structure in a logarithmic number of rounds.
//
// The protocol is deliberately *not* monolithic: the ranking function, the
// per-node view capacity and the candidate feed are all injected. The
// paper's runtime instantiates it several times with different rankers —
// one per component shape (the "core protocol"), once for the
// same-component overlay (UO1) — while reusing a single peer-sampling layer
// as the shared source of random candidates ("a pinch of randomness brings
// out the structure").
package vicinity

import (
	"fmt"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/view"
)

// Ranker orders candidate peers for a given owner. Lower ranks are better;
// view.RankInf rejects the candidate outright (it will never be kept nor
// forwarded to the owner).
//
// Capacity returns the owner's view capacity, enabling per-role
// differentiation (a star hub keeps many more neighbors than a leaf).
type Ranker interface {
	Rank(owner, candidate view.Profile) float64
	Capacity(owner view.Profile) int
}

// Options configure a vicinity instance. Zero fields take defaults.
type Options struct {
	// Gossip is how many descriptors each side contributes to an exchange
	// (default 5).
	Gossip int
	// RandomContact is the probability of gossiping with a uniformly
	// random peer (from the sampling service) instead of the oldest view
	// entry — Vicinity's ingredient for escaping local minima and
	// discovering far-away regions of the gradient (default 0.2).
	RandomContact float64
	// MaxAge evicts descriptors not refreshed for this many rounds,
	// bounding how long dead nodes linger (default 20).
	MaxAge int
	// NoRandomFeed disables candidate injection from the peer-sampling
	// layer (pure greedy T-Man). Exists for the ablation experiment; the
	// overlay can then get stuck in local minima.
	NoRandomFeed bool
}

func (o Options) withDefaults() Options {
	if o.Gossip <= 0 {
		o.Gossip = 5
	}
	if o.RandomContact <= 0 {
		o.RandomContact = 0.2
	}
	if o.MaxAge <= 0 {
		o.MaxAge = 20
	}
	return o
}

// CandidateSource supplies free local candidate descriptors for a node —
// descriptors already present on the node in another layer's state, so
// folding them in costs no bandwidth. The runtime stacks overlays this way:
// the component core protocol feeds off the same-component overlay (UO1).
type CandidateSource interface {
	Candidates(slot int) []view.Descriptor
}

// ViewSource is optionally implemented by candidate sources whose
// candidates live in a View. The merge path then reads the view in place
// instead of copying Candidates out, keeping the hot path allocation-free.
type ViewSource interface {
	SourceView(slot int) *view.View
}

// plan kinds.
const (
	planNone      = iota // no partner this round
	planTimeout          // request lost: suspect the contact
	planDelivered        // full request/response exchange
)

// vicinityPlan is one node's planned exchange, computed in the parallel
// plan phase against frozen views and consumed by Deliver/Absorb. Buffers
// are retained per slot so steady-state planning allocates nothing.
type vicinityPlan struct {
	kind       int
	partner    view.NodeID
	targetSlot int
	send       []view.Descriptor // payload for the partner (self first)
	reply      []view.Descriptor // partner's payload for this node
}

// Protocol is one self-organizing overlay instance.
type Protocol struct {
	name   string
	ranker Ranker
	opts   Options
	rps    *peersampling.Protocol
	feeds  []CandidateSource
	meter  int
	// states holds the per-slot overlay views as dense struct-of-arrays
	// state (headers and entries in contiguous arena-backed arrays).
	states view.Table
	plans  []vicinityPlan
	inbox  sim.Inbox
	arena  []view.Descriptor
}

var (
	_ sim.Protocol    = (*Protocol)(nil)
	_ sim.InboxOwner  = (*Protocol)(nil)
	_ sim.MeterAware  = (*Protocol)(nil)
	_ sim.Snapshotter = (*Protocol)(nil)
	_ CandidateSource = (*Protocol)(nil)
	_ ViewSource      = (*Protocol)(nil)
)

// New creates an overlay named name, ranked by ranker, drawing random
// candidates from rps (may be nil only if opts.NoRandomFeed is set) and,
// optionally, from additional local candidate feeds.
func New(name string, ranker Ranker, rps *peersampling.Protocol, opts Options, feeds ...CandidateSource) *Protocol {
	return &Protocol{
		name:   name,
		ranker: ranker,
		opts:   opts.withDefaults(),
		rps:    rps,
		feeds:  feeds,
		meter:  -1,
	}
}

// Candidates implements CandidateSource, so overlays can feed each other.
func (p *Protocol) Candidates(slot int) []view.Descriptor {
	if v := p.SourceView(slot); v != nil {
		return v.Entries()
	}
	return nil
}

// SourceView implements ViewSource: the overlay's own view is its candidate
// feed, readable in place by stacked overlays.
func (p *Protocol) SourceView(slot int) *view.View {
	if slot >= p.states.Len() {
		return nil
	}
	return p.states.At(slot)
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return p.name }

// SetMeterIndex implements sim.MeterAware.
func (p *Protocol) SetMeterIndex(i int) { p.meter = i }

// View returns the overlay view of the node at slot (treat as read-only).
func (p *Protocol) View(slot int) *view.View { return p.states.At(slot) }

// Inboxes implements sim.InboxOwner: the engine drives the Deliver-phase
// merge of the exchange routing.
func (p *Protocol) Inboxes() []*sim.Inbox { return []*sim.Inbox{&p.inbox} }

// ensureSlot grows the per-slot storage (plan records, state table, inbox)
// to cover slot, without touching any view. Shared by InitNode and the
// restore path (which must not draw randomness or consult profiles).
func (p *Protocol) ensureSlot(slot int) {
	for len(p.plans) <= slot {
		// Both payloads are bounded by the gossip budget; carving them
		// from a chunked arena makes population setup two allocations
		// per few hundred slots instead of two per slot.
		p.plans = append(p.plans, vicinityPlan{
			send:  sim.Carve(&p.arena, p.opts.Gossip),
			reply: sim.Carve(&p.arena, p.opts.Gossip),
		})
	}
	p.states.Grow(slot + 1)
	p.inbox.Grow(slot + 1)
}

// InitNode implements sim.Protocol.
func (p *Protocol) InitNode(e *sim.Engine, slot int) {
	p.ensureSlot(slot)
	p.states.Init(slot, p.ranker.Capacity(e.Node(slot).Profile))
}

// SnapshotState implements sim.Snapshotter: the inter-round state is the
// per-slot overlay view (capacities included — they are re-derived from the
// ranker on the next Refresh anyway, but the view's entry order is state).
func (p *Protocol) SnapshotState(w *snap.Writer) {
	w.Len(p.states.Len())
	for slot := 0; slot < p.states.Len(); slot++ {
		snap.WriteView(w, p.states.At(slot))
	}
}

// RestoreState implements sim.Snapshotter.
func (p *Protocol) RestoreState(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != e.Size() {
		return fmt.Errorf("vicinity %s: snapshot covers %d slots, engine has %d", p.name, n, e.Size())
	}
	if n > 0 {
		p.ensureSlot(n - 1)
	}
	p.states.Truncate(n)
	p.plans = p.plans[:n]
	for slot := 0; slot < n; slot++ {
		snap.ReadViewInto(r, &p.states, slot)
	}
	return r.Err()
}

// Refresh implements sim.Protocol: per-slot view maintenance plus the free
// local candidate injection from the sampling service and any stacked
// feeds. Mutations touch only this slot's view; feeds are read at this slot
// only, so refreshes shard across workers safely.
func (p *Protocol) Refresh(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	v := p.states.At(slot)
	p.inbox.Reset(slot)
	// Capacity can change across reconfigurations (role differentiation).
	v.SetCap(p.ranker.Capacity(self.Profile))
	v.AgeAll()
	p.purge(self.Profile, v)

	// Free local injection: fold the sampling service's view and any
	// stacked feeds into ours. No bandwidth — the candidates are already
	// on this node.
	if !p.opts.NoRandomFeed && p.rps != nil {
		p.applyView(ctx.Pad(), self, v, p.rps.View(slot))
	}
	for _, f := range p.feeds {
		if vs, ok := f.(ViewSource); ok {
			p.applyView(ctx.Pad(), self, v, vs.SourceView(slot))
		} else {
			p.apply(ctx.Pad(), self, v, f.Candidates(slot))
		}
	}
}

// Plan implements sim.Protocol: choose a partner and compute both payloads
// of the exchange against the frozen post-refresh views. Payload selection
// and ranking run on the worker pad; the results land in the slot's
// retained plan record.
func (p *Protocol) Plan(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	e := ctx.Engine()
	v := p.states.At(slot)
	pl := &p.plans[slot]
	pl.kind = planNone

	partner, ok := p.pickPartner(ctx, slot, v)
	if !ok {
		return
	}
	pl.partner = partner.ID
	pl.send = p.selectFor(ctx, slot, partner.Profile, partner.ID, pl.send[:0])

	target := e.Lookup(partner.ID)
	if target == nil || !target.Alive || !ctx.Deliver(target.Slot) {
		// Timeout: suspect the contact rather than evicting it — message
		// loss must not empty views, but dead peers accumulate penalties
		// (they keep being selected as the oldest entry) and age out.
		pl.kind = planTimeout
		ctx.Count(p.meter, sim.DescriptorPayload(len(pl.send)))
		return
	}

	// Passive side replies with its best candidates for us, drawn from its
	// frozen views with the active node's stream.
	pl.kind = planDelivered
	pl.targetSlot = target.Slot
	pl.reply = p.selectFor(ctx, target.Slot, self.Profile, self.ID, pl.reply[:0])

	// Meter into the worker's shard and route via the sender's inbox lane;
	// the engine's Deliver phase merges lanes per destination shard.
	ctx.Count(p.meter, sim.DescriptorPayload(len(pl.send)))
	ctx.Count(p.meter, sim.DescriptorPayload(len(pl.reply)))
	p.inbox.Push(pl.targetSlot, slot)
}

// Absorb implements sim.Protocol: fold the round's incoming payloads into
// the slot's view — the reply to its own exchange (or the timeout penalty),
// then every payload that reached it as the passive side, in inbox order.
func (p *Protocol) Absorb(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	v := p.states.At(slot)
	pad := ctx.Pad()
	pl := &p.plans[slot]
	switch pl.kind {
	case planTimeout:
		v.Penalize(pl.partner, uint16(p.opts.MaxAge/4+1))
	case planDelivered:
		p.apply(pad, self, v, pl.reply)
	}
	for sender := p.inbox.First(slot); sender >= 0; sender = p.inbox.Next(sender) {
		p.apply(pad, self, v, p.plans[sender].send)
	}
}

// pickPartner chooses the exchange partner: usually the oldest view entry
// (so every link is refreshed round-robin), sometimes a random peer.
func (p *Protocol) pickPartner(ctx *sim.Ctx, slot int, v *view.View) (view.Descriptor, bool) {
	rng := ctx.Rand()
	useRandom := false
	if !p.opts.NoRandomFeed && p.rps != nil {
		if v.Len() == 0 || rng.Float64() < p.opts.RandomContact {
			useRandom = true
		}
	}
	if useRandom {
		if d, ok := p.rps.View(slot).Random(rng); ok {
			return d, true
		}
	}
	if d, _, ok := v.Oldest(); ok {
		return d, true
	}
	if p.rps != nil && !p.opts.NoRandomFeed {
		if d, ok := p.rps.View(slot).Random(rng); ok {
			return d, true
		}
	}
	return view.Descriptor{}, false
}

// selectFor builds, in dst, the gossip payload a node sends to a peer: its
// own fresh descriptor plus the best candidates *from the peer's point of
// view* drawn from the node's overlay view and sampling-service view. The
// candidate pool and ranked list live on the worker pad; every view is read
// in place, never written.
func (p *Protocol) selectFor(ctx *sim.Ctx, slot int, owner view.Profile, ownerID view.NodeID, dst []view.Descriptor) []view.Descriptor {
	self := ctx.Engine().Node(slot)
	pad := ctx.Pad()
	m := &pad.Merger
	m.Begin(ownerID)
	m.AddView(p.states.At(slot))
	if !p.opts.NoRandomFeed && p.rps != nil {
		m.AddView(p.rps.View(slot))
	}
	for _, f := range p.feeds {
		if vs, ok := f.(ViewSource); ok {
			if sv := vs.SourceView(slot); sv != nil {
				m.AddView(sv)
			}
		} else {
			m.AddSlice(f.Candidates(slot))
		}
	}
	pool := m.Result()
	ranked := pad.Sample[:0]
	for _, d := range pool {
		if d.ID == ownerID {
			continue
		}
		if p.ranker.Rank(owner, d.Profile) < view.RankInf {
			ranked = append(ranked, d)
		}
	}
	pad.Sample = ranked
	sortByRank(p.ranker, owner, ranked)
	out := append(dst, self.Descriptor())
	for _, d := range ranked {
		if len(out) >= p.opts.Gossip {
			break
		}
		out = append(out, d)
	}
	// Payload diversity: once views saturate, every peer would keep
	// sending the owner the same top-ranked candidates, and pairs outside
	// that set could only meet through the sampling service — a long
	// geometric tail for dense shapes like cliques. Reserving one slot
	// for a uniformly random rankable candidate closes that tail.
	if !p.opts.NoRandomFeed && len(ranked) >= len(out) {
		spare := ranked[len(out)-1:]
		out[len(out)-1] = spare[ctx.Rand().Intn(len(spare))]
	}
	return out
}

// apply folds incoming descriptors into the node's view, keeping the
// best-ranked `capacity` entries.
func (p *Protocol) apply(pad *sim.Pad, n *sim.Node, v *view.View, incoming []view.Descriptor) {
	m := &pad.Merger
	m.Begin(n.ID)
	m.AddView(v)
	m.AddSlice(incoming)
	p.applyMerged(m, n, v)
}

// applyView is apply for candidates that live in another layer's view, read
// in place. A nil inView still re-filters and re-ranks the view, like apply
// with an empty incoming buffer.
func (p *Protocol) applyView(pad *sim.Pad, n *sim.Node, v *view.View, inView *view.View) {
	m := &pad.Merger
	m.Begin(n.ID)
	m.AddView(v)
	if inView != nil {
		m.AddView(inView)
	}
	p.applyMerged(m, n, v)
}

// applyMerged finishes an apply: filter the merged pool in place, re-rank,
// and replace the view's contents with the best `capacity` entries.
func (p *Protocol) applyMerged(m *view.Merger, n *sim.Node, v *view.View) {
	buf := m.Result()
	kept := buf[:0]
	for _, d := range buf {
		if int(d.Age) <= p.opts.MaxAge && p.ranker.Rank(n.Profile, d.Profile) < view.RankInf {
			kept = append(kept, d)
		}
	}
	sortByRank(p.ranker, n.Profile, kept)
	v.ReplaceAll(kept)
}

// purge drops entries that aged out or became unrankable (stale epoch,
// foreign component after a reconfiguration).
func (p *Protocol) purge(owner view.Profile, v *view.View) {
	v.Filter(func(d view.Descriptor) bool {
		return int(d.Age) <= p.opts.MaxAge && p.ranker.Rank(owner, d.Profile) < view.RankInf
	})
}

// sortByRank orders descriptors by (rank, age, id), in place. The
// comparator is a total order (IDs are unique within a buffer), so the
// sorted result is unique regardless of sorting algorithm. It is a plain
// binary-insertion sort: stateless (parallel plan shards sort
// concurrently), allocation-free, and the buffers are gossip-sized, so
// the quadratic move cost never bites.
func sortByRank(ranker Ranker, owner view.Profile, ds []view.Descriptor) {
	for i := 1; i < len(ds); i++ {
		d := ds[i]
		rd := ranker.Rank(owner, d.Profile)
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if rankLess(ranker, owner, rd, d, ds[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(ds[lo+1:i+1], ds[lo:i])
		ds[lo] = d
	}
}

// rankLess reports whether d (with precomputed rank rd) orders strictly
// before other under (rank, age, id).
func rankLess(ranker Ranker, owner view.Profile, rd float64, d, other view.Descriptor) bool {
	ro := ranker.Rank(owner, other.Profile)
	if rd != ro {
		return rd < ro
	}
	if d.Age != other.Age {
		return d.Age < other.Age
	}
	return d.ID < other.ID
}
