// Package vicinity implements a generic self-organizing overlay protocol in
// the style of Vicinity and T-Man: each node greedily keeps the best-ranked
// peers it has ever heard of, and gossip exchanges spread good candidates
// along the gradient of the ranking function, so the overlay converges to
// the target structure in a logarithmic number of rounds.
//
// The protocol is deliberately *not* monolithic: the ranking function, the
// per-node view capacity and the candidate feed are all injected. The
// paper's runtime instantiates it several times with different rankers —
// one per component shape (the "core protocol"), once for the
// same-component overlay (UO1) — while reusing a single peer-sampling layer
// as the shared source of random candidates ("a pinch of randomness brings
// out the structure").
package vicinity

import (
	"sort"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/view"
)

// Ranker orders candidate peers for a given owner. Lower ranks are better;
// view.RankInf rejects the candidate outright (it will never be kept nor
// forwarded to the owner).
//
// Capacity returns the owner's view capacity, enabling per-role
// differentiation (a star hub keeps many more neighbors than a leaf).
type Ranker interface {
	Rank(owner, candidate view.Profile) float64
	Capacity(owner view.Profile) int
}

// Options configure a vicinity instance. Zero fields take defaults.
type Options struct {
	// Gossip is how many descriptors each side contributes to an exchange
	// (default 5).
	Gossip int
	// RandomContact is the probability of gossiping with a uniformly
	// random peer (from the sampling service) instead of the oldest view
	// entry — Vicinity's ingredient for escaping local minima and
	// discovering far-away regions of the gradient (default 0.2).
	RandomContact float64
	// MaxAge evicts descriptors not refreshed for this many rounds,
	// bounding how long dead nodes linger (default 20).
	MaxAge int
	// NoRandomFeed disables candidate injection from the peer-sampling
	// layer (pure greedy T-Man). Exists for the ablation experiment; the
	// overlay can then get stuck in local minima.
	NoRandomFeed bool
}

func (o Options) withDefaults() Options {
	if o.Gossip <= 0 {
		o.Gossip = 5
	}
	if o.RandomContact <= 0 {
		o.RandomContact = 0.2
	}
	if o.MaxAge <= 0 {
		o.MaxAge = 20
	}
	return o
}

// CandidateSource supplies free local candidate descriptors for a node —
// descriptors already present on the node in another layer's state, so
// folding them in costs no bandwidth. The runtime stacks overlays this way:
// the component core protocol feeds off the same-component overlay (UO1).
type CandidateSource interface {
	Candidates(slot int) []view.Descriptor
}

// Protocol is one self-organizing overlay instance.
type Protocol struct {
	name   string
	ranker Ranker
	opts   Options
	rps    *peersampling.Protocol
	feeds  []CandidateSource
	meter  int
	states []*view.View
}

var (
	_ sim.Protocol    = (*Protocol)(nil)
	_ sim.MeterAware  = (*Protocol)(nil)
	_ CandidateSource = (*Protocol)(nil)
)

// New creates an overlay named name, ranked by ranker, drawing random
// candidates from rps (may be nil only if opts.NoRandomFeed is set) and,
// optionally, from additional local candidate feeds.
func New(name string, ranker Ranker, rps *peersampling.Protocol, opts Options, feeds ...CandidateSource) *Protocol {
	return &Protocol{
		name:   name,
		ranker: ranker,
		opts:   opts.withDefaults(),
		rps:    rps,
		feeds:  feeds,
		meter:  -1,
	}
}

// Candidates implements CandidateSource, so overlays can feed each other.
func (p *Protocol) Candidates(slot int) []view.Descriptor {
	if slot >= len(p.states) || p.states[slot] == nil {
		return nil
	}
	return p.states[slot].Entries()
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return p.name }

// SetMeterIndex implements sim.MeterAware.
func (p *Protocol) SetMeterIndex(i int) { p.meter = i }

// View returns the overlay view of the node at slot (treat as read-only).
func (p *Protocol) View(slot int) *view.View { return p.states[slot] }

// InitNode implements sim.Protocol.
func (p *Protocol) InitNode(e *sim.Engine, slot int) {
	for len(p.states) <= slot {
		p.states = append(p.states, nil)
	}
	capacity := p.ranker.Capacity(e.Node(slot).Profile)
	p.states[slot] = view.New(capacity)
}

// Step implements sim.Protocol: one active gossip exchange plus local
// candidate injection from the sampling service.
func (p *Protocol) Step(e *sim.Engine, slot int) {
	self := e.Node(slot)
	v := p.states[slot]
	// Capacity can change across reconfigurations (role differentiation).
	v.SetCap(p.ranker.Capacity(self.Profile))
	v.AgeAll()
	p.purge(self.Profile, v)

	// Free local injection: fold the sampling service's view and any
	// stacked feeds into ours. No bandwidth — the candidates are already
	// on this node.
	if !p.opts.NoRandomFeed && p.rps != nil {
		p.apply(self, v, p.rps.View(slot).Entries())
	}
	for _, f := range p.feeds {
		p.apply(self, v, f.Candidates(slot))
	}

	partner, ok := p.pickPartner(e, slot, v)
	if !ok {
		return
	}

	sendBuf := p.selectFor(e, slot, partner.Profile, partner.ID)
	p.count(e, sim.DescriptorPayload(len(sendBuf)))

	target := e.Lookup(partner.ID)
	if target == nil || !target.Alive || !e.DeliverBetween(slot, target.Slot) {
		// Timeout: suspect the contact rather than evicting it — message
		// loss must not empty views, but dead peers accumulate penalties
		// (they keep being selected as the oldest entry) and age out.
		v.Penalize(partner.ID, uint16(p.opts.MaxAge/4+1))
		return
	}

	// Passive side replies with its best candidates for us, then merges.
	replyBuf := p.selectFor(e, target.Slot, self.Profile, self.ID)
	p.count(e, sim.DescriptorPayload(len(replyBuf)))
	p.apply(target, p.states[target.Slot], sendBuf)
	p.apply(self, v, replyBuf)
}

// pickPartner chooses the exchange partner: usually the oldest view entry
// (so every link is refreshed round-robin), sometimes a random peer.
func (p *Protocol) pickPartner(e *sim.Engine, slot int, v *view.View) (view.Descriptor, bool) {
	useRandom := false
	if !p.opts.NoRandomFeed && p.rps != nil {
		if v.Len() == 0 || e.Rand().Float64() < p.opts.RandomContact {
			useRandom = true
		}
	}
	if useRandom {
		if d, ok := p.rps.View(slot).Random(e.Rand()); ok {
			return d, true
		}
	}
	if d, _, ok := v.Oldest(); ok {
		return d, true
	}
	if p.rps != nil && !p.opts.NoRandomFeed {
		if d, ok := p.rps.View(slot).Random(e.Rand()); ok {
			return d, true
		}
	}
	return view.Descriptor{}, false
}

// selectFor builds the gossip payload a node sends to a peer: its own fresh
// descriptor plus the best candidates *from the peer's point of view* drawn
// from the node's overlay view and sampling-service view.
func (p *Protocol) selectFor(e *sim.Engine, slot int, owner view.Profile, ownerID view.NodeID) []view.Descriptor {
	self := e.Node(slot)
	pool := p.states[slot].Entries()
	if !p.opts.NoRandomFeed && p.rps != nil {
		pool = view.MergeBuffers(ownerID, pool, p.rps.View(slot).Entries())
	}
	for _, f := range p.feeds {
		pool = view.MergeBuffers(ownerID, pool, f.Candidates(slot))
	}
	ranked := make([]view.Descriptor, 0, len(pool))
	for _, d := range pool {
		if d.ID == ownerID {
			continue
		}
		if p.ranker.Rank(owner, d.Profile) < view.RankInf {
			ranked = append(ranked, d)
		}
	}
	sortByRank(p.ranker, owner, ranked)
	out := make([]view.Descriptor, 0, p.opts.Gossip)
	out = append(out, self.Descriptor())
	for _, d := range ranked {
		if len(out) >= p.opts.Gossip {
			break
		}
		out = append(out, d)
	}
	// Payload diversity: once views saturate, every peer would keep
	// sending the owner the same top-ranked candidates, and pairs outside
	// that set could only meet through the sampling service — a long
	// geometric tail for dense shapes like cliques. Reserving one slot
	// for a uniformly random rankable candidate closes that tail.
	if !p.opts.NoRandomFeed && len(ranked) >= len(out) {
		spare := ranked[len(out)-1:]
		out[len(out)-1] = spare[e.Rand().Intn(len(spare))]
	}
	return out
}

// apply folds incoming descriptors into the node's view, keeping the
// best-ranked `capacity` entries.
func (p *Protocol) apply(n *sim.Node, v *view.View, incoming []view.Descriptor) {
	buf := view.MergeBuffers(n.ID, v.Entries(), incoming)
	kept := buf[:0]
	for _, d := range buf {
		if int(d.Age) <= p.opts.MaxAge && p.ranker.Rank(n.Profile, d.Profile) < view.RankInf {
			kept = append(kept, d)
		}
	}
	sortByRank(p.ranker, n.Profile, kept)
	if len(kept) > v.Cap() {
		kept = kept[:v.Cap()]
	}
	v.Clear()
	for _, d := range kept {
		v.Add(d)
	}
}

// purge drops entries that aged out or became unrankable (stale epoch,
// foreign component after a reconfiguration).
func (p *Protocol) purge(owner view.Profile, v *view.View) {
	v.Filter(func(d view.Descriptor) bool {
		return int(d.Age) <= p.opts.MaxAge && p.ranker.Rank(owner, d.Profile) < view.RankInf
	})
}

func (p *Protocol) count(e *sim.Engine, bytes int) {
	if p.meter >= 0 {
		e.Meter().Count(p.meter, bytes)
	}
}

// sortByRank orders descriptors by (rank, age, id) for determinism.
func sortByRank(r Ranker, owner view.Profile, ds []view.Descriptor) {
	sort.Slice(ds, func(i, j int) bool {
		ri, rj := r.Rank(owner, ds[i].Profile), r.Rank(owner, ds[j].Profile)
		if ri != rj {
			return ri < rj
		}
		if ds[i].Age != ds[j].Age {
			return ds[i].Age < ds[j].Age
		}
		return ds[i].ID < ds[j].ID
	})
}
