package vicinity

import (
	"testing"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/view"
)

// ringRanker ranks by cyclic distance between dense indices — a minimal
// stand-in for the shapes package.
type ringRanker struct{ capacity int }

func (r ringRanker) Rank(owner, cand view.Profile) float64 {
	if cand.Epoch != owner.Epoch {
		return view.RankInf
	}
	n := int32(owner.Size)
	d := owner.Index - cand.Index
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return float64(d)
}

func (r ringRanker) Capacity(view.Profile) int { return r.capacity }

func buildRing(t *testing.T, seed int64, n int, opts Options) (*sim.Engine, *Protocol) {
	t.Helper()
	e := sim.New(seed)
	rps := peersampling.New(peersampling.Options{})
	e.Register(rps)
	p := New("ring", ringRanker{capacity: 6}, rps, opts)
	e.Register(p)
	slots := e.AddNodes(n)
	for i, s := range slots {
		node := e.Node(s)
		node.Profile = view.Profile{Index: int32(i), Size: int32(n), Key: uint64(i)}
		e.InitNode(s)
	}
	return e, p
}

// ringConverged reports the fraction of alive nodes whose view contains
// both cyclic neighbors.
func ringConverged(e *sim.Engine, p *Protocol, n int) float64 {
	ok := 0
	for slot := 0; slot < n; slot++ {
		node := e.Node(slot)
		if !node.Alive {
			continue
		}
		i := int(node.Profile.Index)
		left := e.Node((slot + n - 1) % n).ID
		right := e.Node((slot + 1) % n).ID
		_ = i
		v := p.View(slot)
		if v.Contains(left) && v.Contains(right) {
			ok++
		}
	}
	return float64(ok) / float64(e.AliveCount())
}

func TestRingConverges(t *testing.T) {
	n := 128
	e, p := buildRing(t, 1, n, Options{})
	if _, err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	if frac := ringConverged(e, p, n); frac < 1.0 {
		t.Fatalf("ring only %.2f converged after 30 rounds", frac)
	}
}

func TestRingConvergesWithoutRandomFeedSlower(t *testing.T) {
	n := 64
	roundsTo := func(opts Options, seed int64) int {
		e, p := buildRing(t, seed, n, opts)
		for r := 1; r <= 120; r++ {
			if _, err := e.Run(1); err != nil {
				t.Fatal(err)
			}
			if ringConverged(e, p, n) >= 1.0 {
				return r
			}
		}
		return 121
	}
	with := roundsTo(Options{}, 3)
	if with > 40 {
		t.Fatalf("with random feed the ring should converge fast, took %d", with)
	}
	// Pure greedy T-Man still works on a ring gradient (it is a perfectly
	// smooth metric) but must not be *faster* than the randomized variant
	// on average; mostly this exercises the NoRandomFeed code path.
	without := roundsTo(Options{NoRandomFeed: true}, 3)
	if without == 121 {
		t.Log("pure-greedy run did not converge within 120 rounds (acceptable: local minima)")
	}
}

func TestViewsRespectCapacityAndRanking(t *testing.T) {
	n := 96
	e, p := buildRing(t, 2, n, Options{})
	if _, err := e.Run(25); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < n; slot++ {
		v := p.View(slot)
		if v.Len() > 6 {
			t.Fatalf("slot %d view %d exceeds capacity 6", slot, v.Len())
		}
		owner := e.Node(slot).Profile
		for _, d := range v.Entries() {
			if (ringRanker{}).Rank(owner, d.Profile) == view.RankInf {
				t.Fatalf("slot %d kept an unrankable entry", slot)
			}
			if d.ID == e.Node(slot).ID {
				t.Fatalf("slot %d kept itself", slot)
			}
		}
	}
}

func TestChurnRecovery(t *testing.T) {
	n := 128
	e, p := buildRing(t, 3, n, Options{})
	if _, err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	if frac := ringConverged(e, p, n); frac < 1.0 {
		t.Fatalf("precondition: ring converged, got %.2f", frac)
	}
	// Kill 10% of nodes; survivors should drop dead entries within MaxAge.
	e.KillFraction(0.1)
	if _, err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for slot := 0; slot < n; slot++ {
		if !e.Node(slot).Alive {
			continue
		}
		for _, id := range p.View(slot).IDs() {
			if !e.IsAlive(id) {
				stale++
			}
		}
	}
	if stale > 0 {
		t.Fatalf("%d dead entries still in overlay views after 30 rounds", stale)
	}
}

func TestStaleEpochEvicted(t *testing.T) {
	n := 64
	e, p := buildRing(t, 4, n, Options{})
	if _, err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	// Reconfiguration: everyone moves to epoch 1 with the same indices.
	for slot := 0; slot < n; slot++ {
		e.Node(slot).Profile.Epoch = 1
	}
	if _, err := e.Run(25); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < n; slot++ {
		for _, d := range p.View(slot).Entries() {
			if d.Profile.Epoch != 1 {
				t.Fatalf("slot %d still holds epoch-%d entry", slot, d.Profile.Epoch)
			}
		}
	}
	if frac := ringConverged(e, p, n); frac < 1.0 {
		t.Fatalf("ring should re-converge after epoch bump, got %.2f", frac)
	}
}

func TestCapacityDifferentiation(t *testing.T) {
	// Capacity is re-read from the ranker every step, so profile changes
	// (role differentiation) take effect.
	e := sim.New(5)
	rps := peersampling.New(peersampling.Options{})
	e.Register(rps)
	p := New("x", ringRanker{capacity: 3}, rps, Options{})
	e.Register(p)
	slots := e.AddNodes(10)
	for i, s := range slots {
		e.Node(s).Profile = view.Profile{Index: int32(i), Size: 10}
		e.InitNode(s)
	}
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		if p.View(s).Cap() != 3 {
			t.Fatalf("capacity = %d, want 3", p.View(s).Cap())
		}
	}
}

func TestBandwidthAccounted(t *testing.T) {
	n := 50
	e, _ := buildRing(t, 6, n, Options{Gossip: 4})
	if _, err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	m := e.Meter()
	names := m.Names()
	if len(names) != 2 || names[1] != "ring" {
		t.Fatalf("meter names = %v", names)
	}
	for r := 0; r < 3; r++ {
		if m.RoundTotal(r, 1) <= 0 {
			t.Fatalf("round %d: overlay reported no bandwidth", r)
		}
	}
}
