package plot

import (
	"fmt"
	"math"
	"strings"

	"sosf/internal/metrics"
)

// svgPalette is a color-blind-friendly line palette.
var svgPalette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
}

// SVG renders series as a self-contained SVG line chart with axes, ticks,
// error bars (90% CI) and a legend. logX switches the x-axis to log scale.
func SVG(title, xLabel, yLabel string, logX bool, series ...*metrics.Series) string {
	const (
		w, h                     = 640, 420
		padL, padR, padT, padB   = 70, 20, 40, 60
		plotW, plotH             = w - padL - padR, h - padT - padB
		tickLen                  = 5
		legendLineH, legendPad   = 18, 8
		titleSize, labelFontSize = 16, 12
	)

	xs := unionX(series)
	if len(xs) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg"/>`
	}
	xMin, xMax := xs[0], xs[len(xs)-1]
	yMax := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if v := p.Mean + p.CI90; v > yMax {
				yMax = v
			}
		}
	}
	if yMax <= 0 {
		yMax = 1
	}
	yMax *= 1.05

	xPix := func(x float64) float64 {
		var f float64
		if xMax == xMin {
			f = 0.5
		} else if logX && xMin > 0 {
			f = (math.Log(x) - math.Log(xMin)) / (math.Log(xMax) - math.Log(xMin))
		} else {
			f = (x - xMin) / (xMax - xMin)
		}
		return padL + f*float64(plotW)
	}
	yPix := func(y float64) float64 {
		return padT + (1-y/yMax)*float64(plotH)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" font-family="sans-serif" text-anchor="middle">%s</text>`,
		w/2, padT-16, titleSize, escape(title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, padT, padL, padT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, padT+plotH, padL+plotW, padT+plotH)

	// Y ticks (5 divisions).
	for i := 0; i <= 5; i++ {
		y := yMax * float64(i) / 5
		py := yPix(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`, padL-tickLen, py, padL, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="end">%s</text>`,
			padL-tickLen-3, py+4, labelFontSize, trimTick(y))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`, padL, py, padL+plotW, py)
	}
	// X ticks at data points (thinned to at most 10).
	step := 1
	if len(xs) > 10 {
		step = (len(xs) + 9) / 10
	}
	for i := 0; i < len(xs); i += step {
		px := xPix(xs[i])
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`,
			px, padT+plotH, px, padT+plotH+tickLen)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="%d" font-family="sans-serif" text-anchor="middle">%s</text>`,
			px, padT+plotH+tickLen+14, labelFontSize, trimTick(xs[i]))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" font-family="sans-serif" text-anchor="middle">%s</text>`,
		padL+plotW/2, h-24, labelFontSize+1, escape(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="%d" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		padT+plotH/2, labelFontSize+1, padT+plotH/2, escape(yLabel))

	// Series.
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var path strings.Builder
		for i, x := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xPix(x), yPix(s.Points[i].Mean))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`, strings.TrimSpace(path.String()), color)
		for i, x := range s.X {
			px, py := xPix(x), yPix(s.Points[i].Mean)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`, px, py, color)
			if ci := s.Points[i].CI90; ci > 0 {
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
					px, yPix(s.Points[i].Mean-ci), px, yPix(s.Points[i].Mean+ci), color)
			}
		}
		// Legend entry.
		ly := padT + legendPad + si*legendLineH
		lx := padL + 12
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			lx, ly, lx+22, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" font-family="sans-serif">%s</text>`,
			lx+28, ly+4, labelFontSize, escape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func trimTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
