// Package plot renders experiment results in three formats: gnuplot-style
// .dat files (the format the paper's figures were produced from), quick
// ASCII charts for terminals, and self-contained SVG line charts — all
// stdlib only.
package plot

import (
	"fmt"
	"math"
	"strings"

	"sosf/internal/metrics"
)

// DAT renders series sharing an x-axis as a gnuplot-compatible data file:
// a comment header, then one row per x value with mean and 90% CI columns
// per series. Missing points render as "?" (gnuplot's missing datum).
func DAT(xLabel string, series ...*metrics.Series) string {
	var b strings.Builder
	b.WriteString("# " + xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s\tci90", strings.ReplaceAll(s.Name, " ", "_"))
	}
	b.WriteString("\n")

	xs := unionX(series)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			if p, ok := pointAt(s, x); ok {
				fmt.Fprintf(&b, "\t%.4f\t%.4f", p.Mean, p.CI90)
			} else {
				b.WriteString("\t?\t?")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func unionX(series []*metrics.Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sortFloats(xs)
	return xs
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func pointAt(s *metrics.Series, x float64) (metrics.Summary, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Points[i], true
		}
	}
	return metrics.Summary{}, false
}

// ASCII renders series as a fixed-size terminal chart with one glyph per
// series, a y-axis scale, and a legend. logX plots x positions on a log
// scale (the paper's Figure 2 style).
func ASCII(title, xLabel string, logX bool, series ...*metrics.Series) string {
	const width, height = 64, 16
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	xs := unionX(series)
	if len(xs) == 0 {
		return title + "\n(no data)\n"
	}
	xMin, xMax := xs[0], xs[len(xs)-1]
	yMax := 0.0
	for _, s := range series {
		if m := s.YMax(); m > yMax {
			yMax = m
		}
	}
	if yMax == 0 {
		yMax = 1
	}
	xPos := func(x float64) int {
		if xMax == xMin {
			return 0
		}
		f := 0.0
		if logX && xMin > 0 {
			f = (math.Log(x) - math.Log(xMin)) / (math.Log(xMax) - math.Log(xMin))
		} else {
			f = (x - xMin) / (xMax - xMin)
		}
		col := int(f * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i, x := range s.X {
			row := height - 1 - int(s.Points[i].Mean/yMax*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][xPos(x)] = g
		}
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", yMax)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	b.WriteString("        +" + strings.Repeat("-", width) + "\n")
	b.WriteString(fmt.Sprintf("         %-10g%*s\n", xMin, width-8, fmt.Sprintf("%g", xMax)))
	b.WriteString("         x: " + xLabel)
	if logX {
		b.WriteString(" (log scale)")
	}
	b.WriteString("\n")
	for si, s := range series {
		fmt.Fprintf(&b, "         %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
