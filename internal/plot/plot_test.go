package plot

import (
	"strings"
	"testing"

	"sosf/internal/metrics"
)

func sampleSeries() (*metrics.Series, *metrics.Series) {
	a := &metrics.Series{Name: "Elementary Topology"}
	a.Append(100, metrics.Summary{Mean: 8, CI90: 0.5})
	a.Append(1000, metrics.Summary{Mean: 15, CI90: 0.8})
	a.Append(10000, metrics.Summary{Mean: 24, CI90: 1.1})
	b := &metrics.Series{Name: "Port Selection"}
	b.Append(100, metrics.Summary{Mean: 5, CI90: 0.2})
	b.Append(10000, metrics.Summary{Mean: 12, CI90: 0.7})
	return a, b
}

func TestDAT(t *testing.T) {
	a, b := sampleSeries()
	out := DAT("nodes", a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# nodes") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[0], "Elementary_Topology") {
		t.Fatalf("header lacks underscored series name: %q", lines[0])
	}
	// Row for x=1000 must mark the missing b-point with ?.
	if !strings.Contains(lines[2], "?") {
		t.Fatalf("missing point not marked: %q", lines[2])
	}
	if !strings.HasPrefix(lines[1], "100\t8.0000\t0.5000") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestASCII(t *testing.T) {
	a, b := sampleSeries()
	out := ASCII("Fig 2", "nodes", true, a, b)
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "(log scale)") {
		t.Fatalf("chart missing title or scale note:\n%s", out)
	}
	if !strings.Contains(out, "* Elementary Topology") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("series glyphs missing")
	}
}

func TestASCIIEmpty(t *testing.T) {
	out := ASCII("empty", "x", false)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestSVG(t *testing.T) {
	a, b := sampleSeries()
	out := SVG("Figure 2", "# of Nodes", "# of rounds to converge", true, a, b)
	for _, want := range []string{
		"<svg", "</svg>", "Figure 2", "# of Nodes",
		"Elementary Topology", "Port Selection", "<path", "<circle",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// CI error bars: at least one vertical line per point with ci > 0.
	if strings.Count(out, "<line") < 10 {
		t.Fatal("expected axis ticks and error bars")
	}
}

func TestSVGEscapes(t *testing.T) {
	s := &metrics.Series{Name: "a<b & c"}
	s.Append(1, metrics.Summary{Mean: 1})
	out := SVG(`t"`, "x", "y", false, s)
	if strings.Contains(out, "a<b") {
		t.Fatal("series name not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; c") {
		t.Fatal("expected escaped name")
	}
}

func TestSVGEmpty(t *testing.T) {
	out := SVG("t", "x", "y", false)
	if !strings.HasPrefix(out, "<svg") {
		t.Fatalf("empty SVG = %q", out)
	}
}

func TestUnionXSorted(t *testing.T) {
	a := &metrics.Series{Name: "a"}
	a.Append(5, metrics.Summary{})
	a.Append(1, metrics.Summary{})
	b := &metrics.Series{Name: "b"}
	b.Append(3, metrics.Summary{})
	b.Append(1, metrics.Summary{})
	xs := unionX([]*metrics.Series{a, b})
	want := []float64{1, 3, 5}
	if len(xs) != 3 {
		t.Fatalf("xs = %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v, want %v", xs, want)
		}
	}
}
