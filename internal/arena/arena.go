// Package arena provides chunked slice arenas: many small fixed-capacity
// buffers carved back-to-back out of a few large allocations. It is the
// backing store for the engine's struct-of-arrays hot state — per-slot view
// entries, plan payloads, and record tables all live in arena blocks, so a
// population's working set is a handful of contiguous arrays instead of one
// heap object per node.
package arena

// Block is how many carved buffers one arena block holds (times the
// per-carve capacity). Large enough that per-slot buffer allocation is
// amortized to noise, small enough that a part-filled final block wastes
// little.
const Block = 512

// Carve returns a zero-length slice with capacity n cut from a chunked
// arena: when the current block lacks room, a fresh block holding
// Block × n elements is allocated, and exhausted blocks stay referenced by
// the slices carved from them. Protocols use it to give every slot's state
// its retained buffer with one allocation per few hundred slots instead of
// one per slot — population setup is where the evaluation harness sheds
// most of its garbage, since every sweep cell builds a fresh system.
//
// The carved slice is full-capacity (three-index): appending within n stays
// inside the arena, appending beyond n falls back to a private heap copy,
// so an underestimated capacity costs one allocation, never corruption.
func Carve[T any](a *[]T, n int) []T {
	if n <= 0 {
		return nil
	}
	if cap(*a)-len(*a) < n {
		*a = make([]T, 0, Block*n)
	}
	start := len(*a)
	*a = (*a)[:start+n]
	return (*a)[start : start : start+n]
}
