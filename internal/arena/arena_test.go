package arena

import "testing"

func TestCarveZeroOrNegative(t *testing.T) {
	var a []int
	if got := Carve(&a, 0); got != nil {
		t.Fatalf("Carve(0) = %v, want nil", got)
	}
	if got := Carve(&a, -3); got != nil {
		t.Fatalf("Carve(-3) = %v, want nil", got)
	}
	if a != nil {
		t.Fatalf("arena grew on empty carve: %v", a)
	}
}

func TestCarveChunksAreDisjoint(t *testing.T) {
	var a []byte
	x := Carve(&a, 4)
	y := Carve(&a, 4)
	x = append(x, 1, 2, 3, 4)
	y = append(y, 5, 6, 7, 8)
	if x[0] != 1 || y[0] != 5 {
		t.Fatalf("chunks overlap: x=%v y=%v", x, y)
	}
	// Full-capacity (three-index) chunks: appending past a chunk's
	// capacity must reallocate it away instead of scribbling on its
	// neighbor's storage.
	x = append(x, 9)
	if y[0] != 5 {
		t.Fatalf("append past chunk capacity corrupted the next chunk: y=%v", y)
	}
}

func TestCarveReusesOneBlock(t *testing.T) {
	var a []int
	first := Carve(&a, 8)
	if cap(a) != Block*8 {
		t.Fatalf("block capacity = %d, want %d", cap(a), Block*8)
	}
	// Until the block is exhausted, further carves must come from the
	// same backing array — one allocation per Block carves, not per carve.
	for i := 0; i < Block-1; i++ {
		Carve(&a, 8)
	}
	if cap(a) != Block*8 || len(a) != Block*8 {
		t.Fatalf("block not fully consumed: len=%d cap=%d", len(a), cap(a))
	}
	_ = first
}
