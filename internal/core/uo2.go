package core

import (
	"fmt"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/view"
)

// UO2 is the distant-component overlay: every node maintains at most one
// fresh contact inside each *other* component. These long-distance links
// are what port connection routes through, and they give the assembled
// system a small inter-component diameter.
//
// The table is gossiped whole (component count is small — the paper
// evaluates up to 20), merged freshest-wins per component, and fed by the
// peer-sampling service so newly appeared components are discovered
// without any coordination.
//
// Freshness is tracked as an absolute birth round (the wire format still
// carries a relative age; it is normalized against the local clock at
// receipt). Relative ages merged fresher-wins between nodes at different
// points of a round can ping-pong forever without growing, keeping dead
// contacts immortal; a birth round is monotone.
type UO2 struct {
	alloc  *Allocator
	rps    *peersampling.Protocol
	maxAge int
	meter  int
	// states holds the per-slot contact tables as dense struct-of-arrays
	// state: headers in one contiguous slice, entry rows carved from a
	// shared arena.
	states     []uo2State
	entryArena []uo2Entry
	plans      []uo2Plan
	inbox      sim.Inbox
	arena      []view.Descriptor
}

// uo2State is one node's contact table, dense by component ID: component
// IDs are small and densely assigned, so a slice beats a map — iteration
// is ascending (deterministic) for free, and the steady state allocates
// nothing. Entries for components dropped by a reconfiguration linger,
// exactly like the stale keys of a map, until the owner's next prune.
type uo2State struct {
	entries []uo2Entry // indexed by ComponentID
	count   int        // number of valid entries
}

type uo2Entry struct {
	d     view.Descriptor
	born  int // engine round the descriptor was (age-adjusted) created
	valid bool
}

// uo2Plan is one node's planned table swap for the current round. The send
// and reply buffers are retained per slot so steady-state planning
// allocates nothing.
type uo2Plan struct {
	kind       int
	partner    view.Descriptor // kept whole: the timeout path needs the component
	targetSlot int
	send       []view.Descriptor
	reply      []view.Descriptor
}

// plan kinds (shared shape with the other protocols).
const (
	uo2None = iota
	uo2Timeout
	uo2Delivered
)

// ensure grows the table to cover at least n components. It never shrinks:
// out-of-range entries must survive until prune drops them, mirroring the
// map-based table's behavior across reconfigurations.
func (t *uo2State) ensure(n int) {
	for len(t.entries) < n {
		t.entries = append(t.entries, uo2Entry{})
	}
}

// reset empties the table, keeping its storage.
func (t *uo2State) reset() {
	for i := range t.entries {
		t.entries[i] = uo2Entry{}
	}
	t.count = 0
}

var (
	_ sim.Protocol    = (*UO2)(nil)
	_ sim.InboxOwner  = (*UO2)(nil)
	_ sim.MeterAware  = (*UO2)(nil)
	_ sim.Snapshotter = (*UO2)(nil)
)

// NewUO2 creates the distant-component overlay. maxAge bounds how long a
// dead contact can linger (default 20 when <= 0).
func NewUO2(alloc *Allocator, rps *peersampling.Protocol, maxAge int) *UO2 {
	if maxAge <= 0 {
		maxAge = 20
	}
	return &UO2{alloc: alloc, rps: rps, maxAge: maxAge, meter: -1}
}

// Name implements sim.Protocol.
func (u *UO2) Name() string { return "uo2" }

// Inboxes implements sim.InboxOwner: the engine drives the Deliver-phase
// merge of the swap routing.
func (u *UO2) Inboxes() []*sim.Inbox { return []*sim.Inbox{&u.inbox} }

// SetMeterIndex implements sim.MeterAware.
func (u *UO2) SetMeterIndex(i int) { u.meter = i }

// ensureSlot grows the per-slot storage to cover slot without resetting
// any table. Shared by InitNode and the restore path.
func (u *UO2) ensureSlot(slot int) {
	for len(u.states) <= slot {
		// A table swap carries at most one descriptor per component plus
		// the sender's own; carve that capacity up front (a reconfigure
		// that adds components falls back to a private heap copy). The
		// contact table itself is carved one row per component.
		width := u.alloc.Components() + 1
		u.plans = append(u.plans, uo2Plan{
			send:  sim.Carve(&u.arena, width),
			reply: sim.Carve(&u.arena, width),
		})
		u.states = append(u.states, uo2State{entries: sim.Carve(&u.entryArena, width-1)})
	}
	u.inbox.Grow(slot + 1)
}

// InitNode implements sim.Protocol.
func (u *UO2) InitNode(e *sim.Engine, slot int) {
	u.ensureSlot(slot)
	u.states[slot].reset()
}

// SnapshotState implements sim.Snapshotter: per slot, the dense contact
// table — valid flags, descriptors, and absolute birth rounds (which can go
// negative under timeout suspicion, hence the signed encoding).
func (u *UO2) SnapshotState(w *snap.Writer) {
	w.Len(len(u.states))
	for si := range u.states {
		t := &u.states[si]
		w.Len(len(t.entries))
		for ci := range t.entries {
			entry := &t.entries[ci]
			w.Bool(entry.valid)
			if entry.valid {
				snap.WriteDescriptor(w, entry.d)
				w.Int(entry.born)
			}
		}
	}
}

// RestoreState implements sim.Snapshotter.
func (u *UO2) RestoreState(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != e.Size() {
		return fmt.Errorf("uo2: snapshot covers %d slots, engine has %d", n, e.Size())
	}
	if n > 0 {
		u.ensureSlot(n - 1)
	}
	u.states = u.states[:n]
	u.plans = u.plans[:n]
	for slot := 0; slot < n; slot++ {
		width := r.Len()
		if err := r.Err(); err != nil {
			return err
		}
		st := &u.states[slot]
		st.reset()
		st.ensure(width)
		st.entries = st.entries[:width]
		for ci := 0; ci < width; ci++ {
			if r.Bool() {
				st.entries[ci] = uo2Entry{
					d:     snap.ReadDescriptor(r),
					born:  r.Int(),
					valid: true,
				}
				st.count++
			}
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	return r.Err()
}

// Contacts returns the node's current foreign-component contact table as a
// deterministic (component-sorted) slice.
func (u *UO2) Contacts(slot int) []view.Descriptor {
	t := &u.states[slot]
	out := make([]view.Descriptor, 0, t.count)
	for ci := range t.entries {
		if t.entries[ci].valid {
			out = append(out, t.entries[ci].d)
		}
	}
	return out
}

// Contact returns the node's contact inside the given component, if any.
func (u *UO2) Contact(slot int, comp view.ComponentID) (view.Descriptor, bool) {
	t := &u.states[slot]
	if comp < 0 || int(comp) >= len(t.entries) || !t.entries[comp].valid {
		return view.Descriptor{}, false
	}
	return t.entries[comp].d, true
}

// Coverage returns how many distinct foreign components the node currently
// has a contact in.
func (u *UO2) Coverage(slot int) int { return u.states[slot].count }

// Refresh implements sim.Protocol: prune the table and ingest the free
// candidates the sampling layer gathered, read in place. Slot-local only.
func (u *UO2) Refresh(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	t := &u.states[slot]
	now := ctx.Round()
	u.inbox.Reset(slot)

	u.prune(self, t, now)

	rv := u.rps.View(slot)
	for i := 0; i < rv.Len(); i++ {
		u.offer(self, t, rv.At(i), now)
	}
}

// Plan implements sim.Protocol: pick a partner and serialize both tables
// against the frozen post-refresh state.
func (u *UO2) Plan(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	e := ctx.Engine()
	t := &u.states[slot]
	now := ctx.Round()
	pl := &u.plans[slot]
	pl.kind = uo2None

	partner, ok := u.pickPartner(ctx, slot, t)
	if !ok {
		return
	}
	pl.partner = partner
	pl.send = u.tableToSend(self, t, now, pl.send[:0])

	target := e.Lookup(partner.ID)
	if target == nil || !target.Alive || !ctx.Deliver(target.Slot) {
		pl.kind = uo2Timeout
		ctx.Count(u.meter, sim.DescriptorPayload(len(pl.send)))
		return
	}
	pl.kind = uo2Delivered
	pl.targetSlot = target.Slot
	pl.reply = u.tableToSend(target, &u.states[target.Slot], now, pl.reply[:0])

	// Meter into the worker's shard and route via the sender's inbox lane;
	// the engine's Deliver phase merges lanes per destination shard.
	ctx.Count(u.meter, sim.DescriptorPayload(len(pl.send)))
	ctx.Count(u.meter, sim.DescriptorPayload(len(pl.reply)))
	u.inbox.Push(pl.targetSlot, slot)
}

// Absorb implements sim.Protocol: fold the received tables into the slot's
// own — the reply to its own swap (or the timeout suspicion), then every
// table that reached it as the passive side, in inbox order.
func (u *UO2) Absorb(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	t := &u.states[slot]
	now := ctx.Round()
	pl := &u.plans[slot]
	switch pl.kind {
	case uo2Timeout:
		// Suspect the contact: push its birth into the past so dead
		// contacts expire quickly while contacts behind a lossy link
		// survive (a fresher descriptor restores them).
		if c := pl.partner.Profile.Comp; c >= 0 && int(c) < len(t.entries) {
			if entry := &t.entries[c]; entry.valid && entry.d.ID == pl.partner.ID {
				entry.born -= u.maxAge/4 + 1
			}
		}
	case uo2Delivered:
		for _, d := range pl.reply {
			u.offer(self, t, d, now)
		}
	}
	for sender := u.inbox.First(slot); sender >= 0; sender = u.inbox.Next(sender) {
		for _, d := range u.plans[sender].send {
			u.offer(self, t, d, now)
		}
	}
}

// prune drops expired or stale entries.
func (u *UO2) prune(self *sim.Node, t *uo2State, now int) {
	epoch := u.alloc.Epoch()
	for ci := range t.entries {
		entry := &t.entries[ci]
		if !entry.valid {
			continue
		}
		c := view.ComponentID(ci)
		if now-entry.born > u.maxAge || entry.d.Profile.Epoch != epoch ||
			entry.d.Profile.Comp != c || int(c) >= u.alloc.Components() ||
			c == self.Profile.Comp {
			*entry = uo2Entry{}
			t.count--
		}
	}
}

// offer proposes a descriptor for the table: foreign, current-epoch,
// unexpired entries are adopted when the slot for their component is empty
// or holds an older birth.
func (u *UO2) offer(self *sim.Node, t *uo2State, d view.Descriptor, now int) {
	born := now - int(d.Age)
	if d.ID == self.ID || d.Profile.Comp == self.Profile.Comp ||
		d.Profile.Comp < 0 || int(d.Profile.Comp) >= u.alloc.Components() ||
		d.Profile.Epoch != u.alloc.Epoch() || now-born > u.maxAge {
		return
	}
	t.ensure(int(d.Profile.Comp) + 1)
	cur := &t.entries[d.Profile.Comp]
	if !cur.valid || born > cur.born ||
		(d.ID == cur.d.ID && d.Profile.Epoch > cur.d.Profile.Epoch) {
		if !cur.valid {
			t.count++
		}
		*cur = uo2Entry{d: d, born: born, valid: true}
	}
}

// tableToSend serializes the node's table plus its own fresh descriptor
// into dst, normalizing births back to wire ages.
func (u *UO2) tableToSend(n *sim.Node, t *uo2State, now int, dst []view.Descriptor) []view.Descriptor {
	dst = append(dst, n.Descriptor())
	for ci := range t.entries {
		entry := &t.entries[ci]
		if !entry.valid {
			continue
		}
		d := entry.d
		if age := now - entry.born; age > 0 {
			if age > int(^uint16(0)) {
				age = int(^uint16(0))
			}
			d.Age = uint16(age)
		} else {
			d.Age = 0
		}
		dst = append(dst, d)
	}
	return dst
}

// pickPartner gossips with a random table entry, falling back to a random
// sampled peer when the table is empty (bootstrap).
func (u *UO2) pickPartner(ctx *sim.Ctx, slot int, t *uo2State) (view.Descriptor, bool) {
	rng := ctx.Rand()
	// Half the time talk to a random peer: UO2 benefits from global
	// mixing because fresh entries for *any* component can come from
	// anywhere.
	if t.count == 0 || rng.Float64() < 0.5 {
		if d, ok := u.rps.View(slot).Random(rng); ok {
			return d, true
		}
	}
	if t.count == 0 {
		return view.Descriptor{}, false
	}
	// The pick-th valid entry in ascending component order — the same
	// draw the sorted-keys map implementation made.
	pick := rng.Intn(t.count)
	for ci := range t.entries {
		if !t.entries[ci].valid {
			continue
		}
		if pick == 0 {
			return t.entries[ci].d, true
		}
		pick--
	}
	return view.Descriptor{}, false // unreachable: count > 0
}
