package core

import (
	"sort"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/view"
)

// UO2 is the distant-component overlay: every node maintains at most one
// fresh contact inside each *other* component. These long-distance links
// are what port connection routes through, and they give the assembled
// system a small inter-component diameter.
//
// The table is gossiped whole (component count is small — the paper
// evaluates up to 20), merged freshest-wins per component, and fed by the
// peer-sampling service so newly appeared components are discovered
// without any coordination.
//
// Freshness is tracked as an absolute birth round (the wire format still
// carries a relative age; it is normalized against the local clock at
// receipt). Relative ages merged fresher-wins between nodes at different
// points of a round can ping-pong forever without growing, keeping dead
// contacts immortal; a birth round is monotone.
type UO2 struct {
	alloc  *Allocator
	rps    *peersampling.Protocol
	maxAge int
	meter  int
	states []map[view.ComponentID]uo2Entry
}

type uo2Entry struct {
	d    view.Descriptor
	born int // engine round the descriptor was (age-adjusted) created
}

var (
	_ sim.Protocol   = (*UO2)(nil)
	_ sim.MeterAware = (*UO2)(nil)
)

// NewUO2 creates the distant-component overlay. maxAge bounds how long a
// dead contact can linger (default 20 when <= 0).
func NewUO2(alloc *Allocator, rps *peersampling.Protocol, maxAge int) *UO2 {
	if maxAge <= 0 {
		maxAge = 20
	}
	return &UO2{alloc: alloc, rps: rps, maxAge: maxAge, meter: -1}
}

// Name implements sim.Protocol.
func (u *UO2) Name() string { return "uo2" }

// SetMeterIndex implements sim.MeterAware.
func (u *UO2) SetMeterIndex(i int) { u.meter = i }

// InitNode implements sim.Protocol.
func (u *UO2) InitNode(e *sim.Engine, slot int) {
	for len(u.states) <= slot {
		u.states = append(u.states, nil)
	}
	u.states[slot] = make(map[view.ComponentID]uo2Entry)
}

// Contacts returns the node's current foreign-component contact table as a
// deterministic (component-sorted) slice.
func (u *UO2) Contacts(slot int) []view.Descriptor {
	t := u.states[slot]
	out := make([]view.Descriptor, 0, len(t))
	for _, c := range sortedComps(t) {
		out = append(out, t[c].d)
	}
	return out
}

// Contact returns the node's contact inside the given component, if any.
func (u *UO2) Contact(slot int, comp view.ComponentID) (view.Descriptor, bool) {
	entry, ok := u.states[slot][comp]
	return entry.d, ok
}

// Coverage returns how many distinct foreign components the node currently
// has a contact in.
func (u *UO2) Coverage(slot int) int { return len(u.states[slot]) }

// Step implements sim.Protocol: prune the table, ingest free candidates
// from peer sampling, then swap tables with one partner.
func (u *UO2) Step(e *sim.Engine, slot int) {
	self := e.Node(slot)
	t := u.states[slot]
	now := e.Round()

	u.prune(self, t, now)

	// Free candidates from the sampling layer.
	for _, d := range u.rps.View(slot).Entries() {
		u.offer(self, t, d, now)
	}

	partner, ok := u.pickPartner(e, slot, t)
	if !ok {
		return
	}
	send := u.tableToSend(self, t, now)
	u.count(e, sim.DescriptorPayload(len(send)))

	target := e.Lookup(partner.ID)
	if target == nil || !target.Alive || !e.DeliverBetween(slot, target.Slot) {
		// Suspect the contact: push its birth into the past so dead
		// contacts expire quickly while contacts behind a lossy link
		// survive (a fresher descriptor restores them).
		if entry, ok := t[partner.Profile.Comp]; ok && entry.d.ID == partner.ID {
			entry.born -= u.maxAge/4 + 1
			t[partner.Profile.Comp] = entry
		}
		return
	}

	// Passive side replies with its own table and merges ours.
	tt := u.states[target.Slot]
	reply := u.tableToSend(target, tt, now)
	u.count(e, sim.DescriptorPayload(len(reply)))
	for _, d := range send {
		u.offer(target, tt, d, now)
	}
	for _, d := range reply {
		u.offer(self, t, d, now)
	}
}

// prune drops expired or stale entries.
func (u *UO2) prune(self *sim.Node, t map[view.ComponentID]uo2Entry, now int) {
	epoch := u.alloc.Epoch()
	for c, entry := range t {
		if now-entry.born > u.maxAge || entry.d.Profile.Epoch != epoch ||
			entry.d.Profile.Comp != c || int(c) >= u.alloc.Components() ||
			c == self.Profile.Comp {
			delete(t, c)
		}
	}
}

// offer proposes a descriptor for the table: foreign, current-epoch,
// unexpired entries are adopted when the slot for their component is empty
// or holds an older birth.
func (u *UO2) offer(self *sim.Node, t map[view.ComponentID]uo2Entry, d view.Descriptor, now int) {
	born := now - int(d.Age)
	if d.ID == self.ID || d.Profile.Comp == self.Profile.Comp ||
		d.Profile.Comp < 0 || int(d.Profile.Comp) >= u.alloc.Components() ||
		d.Profile.Epoch != u.alloc.Epoch() || now-born > u.maxAge {
		return
	}
	cur, ok := t[d.Profile.Comp]
	if !ok || born > cur.born ||
		(d.ID == cur.d.ID && d.Profile.Epoch > cur.d.Profile.Epoch) {
		t[d.Profile.Comp] = uo2Entry{d: d, born: born}
	}
}

// tableToSend serializes the node's table plus its own fresh descriptor,
// normalizing births back to wire ages.
func (u *UO2) tableToSend(n *sim.Node, t map[view.ComponentID]uo2Entry, now int) []view.Descriptor {
	out := make([]view.Descriptor, 0, len(t)+1)
	out = append(out, n.Descriptor())
	for _, c := range sortedComps(t) {
		entry := t[c]
		d := entry.d
		if age := now - entry.born; age > 0 {
			if age > int(^uint16(0)) {
				age = int(^uint16(0))
			}
			d.Age = uint16(age)
		} else {
			d.Age = 0
		}
		out = append(out, d)
	}
	return out
}

// pickPartner gossips with a random table entry, falling back to a random
// sampled peer when the table is empty (bootstrap).
func (u *UO2) pickPartner(e *sim.Engine, slot int, t map[view.ComponentID]uo2Entry) (view.Descriptor, bool) {
	// Half the time talk to a random peer: UO2 benefits from global
	// mixing because fresh entries for *any* component can come from
	// anywhere.
	if len(t) == 0 || e.Rand().Float64() < 0.5 {
		if d, ok := u.rps.View(slot).Random(e.Rand()); ok {
			return d, true
		}
	}
	if len(t) == 0 {
		return view.Descriptor{}, false
	}
	comps := sortedComps(t)
	pick := comps[e.Rand().Intn(len(comps))]
	return t[pick].d, true
}

func (u *UO2) count(e *sim.Engine, bytes int) {
	if u.meter >= 0 {
		e.Meter().Count(u.meter, bytes)
	}
}

// sortedComps returns the table's component IDs in ascending order, so all
// iteration is deterministic.
func sortedComps(t map[view.ComponentID]uo2Entry) []view.ComponentID {
	comps := make([]view.ComponentID, 0, len(t))
	for c := range t {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	return comps
}
