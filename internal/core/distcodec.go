package core

// Distributed plan codecs for the runtime-layer protocols: UO2's table
// swaps and PortSelect's record exchanges cross process boundaries the same
// way the shape protocols' plans do. PortConnect plans are deliberately
// absent — it owns no inbox (its Plan mutates only its own slot's beliefs),
// so a distributed round plans it replicated on every process.

import (
	"fmt"

	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/view"
)

var (
	_ sim.PlanCodec = (*UO2)(nil)
	_ sim.PlanCodec = (*PortSelect)(nil)
)

// EncodePlans implements sim.PlanCodec.
func (u *UO2) EncodePlans(w *snap.Writer, slots []int) {
	w.Len(len(slots))
	for _, slot := range slots {
		pl := &u.plans[slot]
		w.Int(slot)
		w.Int(pl.kind)
		switch pl.kind {
		case uo2Timeout:
			snap.WriteDescriptor(w, pl.partner)
		case uo2Delivered:
			w.Int(pl.targetSlot)
			snap.WriteDescriptors(w, pl.send)
			snap.WriteDescriptors(w, pl.reply)
		}
	}
}

// DecodePlans implements sim.PlanCodec.
func (u *UO2) DecodePlans(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	size := e.Size()
	for i := 0; i < n; i++ {
		slot := r.Int()
		kind := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if slot < 0 || slot >= size || slot >= len(u.plans) {
			return fmt.Errorf("uo2: plan slot %d out of range [0,%d)", slot, size)
		}
		pl := &u.plans[slot]
		pl.kind = kind
		switch kind {
		case uo2None:
		case uo2Timeout:
			pl.partner = snap.ReadDescriptor(r)
		case uo2Delivered:
			pl.targetSlot = r.Int()
			pl.send = snap.ReadDescriptorsInto(r, pl.send[:0])
			pl.reply = snap.ReadDescriptorsInto(r, pl.reply[:0])
			if err := r.Err(); err != nil {
				return err
			}
			if pl.targetSlot < 0 || pl.targetSlot >= size {
				return fmt.Errorf("uo2: plan target %d out of range [0,%d)", pl.targetSlot, size)
			}
			u.inbox.Push(pl.targetSlot, slot)
		default:
			return fmt.Errorf("uo2: unknown plan kind %d", kind)
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	return r.Err()
}

// EncodePlans implements sim.PlanCodec. portSent plans carry no payload:
// nobody absorbs them (the request was metered but lost), so the kind alone
// reproduces the remote state.
func (p *PortSelect) EncodePlans(w *snap.Writer, slots []int) {
	w.Len(len(slots))
	for _, slot := range slots {
		pl := &p.plans[slot]
		w.Int(slot)
		w.Int(pl.kind)
		if pl.kind == portDelivered {
			w.Int(pl.targetSlot)
			writeRecords(w, pl.send)
			writeRecords(w, pl.reply)
		}
	}
}

// DecodePlans implements sim.PlanCodec.
func (p *PortSelect) DecodePlans(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	size := e.Size()
	for i := 0; i < n; i++ {
		slot := r.Int()
		kind := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if slot < 0 || slot >= size || slot >= len(p.plans) {
			return fmt.Errorf("portselect: plan slot %d out of range [0,%d)", slot, size)
		}
		pl := &p.plans[slot]
		pl.kind = kind
		switch kind {
		case portNone, portSent:
		case portDelivered:
			pl.targetSlot = r.Int()
			pl.send = readRecordsInto(r, pl.send[:0])
			pl.reply = readRecordsInto(r, pl.reply[:0])
			if err := r.Err(); err != nil {
				return err
			}
			if pl.targetSlot < 0 || pl.targetSlot >= size {
				return fmt.Errorf("portselect: plan target %d out of range [0,%d)", pl.targetSlot, size)
			}
			p.inbox.Push(pl.targetSlot, slot)
		default:
			return fmt.Errorf("portselect: unknown plan kind %d", kind)
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	return r.Err()
}

// readRecordsInto decodes a writeRecords slice appending into dst — the
// reuse-friendly sibling of readRecords for the per-slot plan buffers.
func readRecordsInto(r *snap.Reader, dst []PortRecord) []PortRecord {
	n := r.Len()
	for i := 0; i < n && r.Err() == nil; i++ {
		dst = append(dst, PortRecord{
			Score: r.U64(),
			ID:    view.NodeID(r.Varint()),
			Stamp: r.Int(),
		})
	}
	return dst
}
