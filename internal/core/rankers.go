package core

import (
	"sosf/internal/vicinity"
	"sosf/internal/view"
)

// foreignPenalty is the rank offset applied to other-component candidates
// in UO1: foreign entries are kept while nothing better is known (so views
// fill and gossip keeps flowing during bootstrap) but any same-component
// candidate immediately outranks them.
const foreignPenalty = 1 << 20

// uo1Ranker drives the same-component overlay: same-component candidates
// rank in a deterministic pseudo-random order (pairwise key mixing keeps
// the overlay diverse instead of everyone converging on the same k peers);
// foreign candidates are strictly worse; stale epochs are rejected.
type uo1Ranker struct {
	alloc    *Allocator
	capacity int
}

var _ vicinity.Ranker = uo1Ranker{}

// Rank implements vicinity.Ranker.
func (r uo1Ranker) Rank(owner, cand view.Profile) float64 {
	if cand.Epoch != r.alloc.Epoch() || owner.Epoch != r.alloc.Epoch() {
		return view.RankInf
	}
	if cand.Comp == owner.Comp {
		return mix01(owner.Key, cand.Key)
	}
	return foreignPenalty + mix01(owner.Key, cand.Key)
}

// Capacity implements vicinity.Ranker.
func (r uo1Ranker) Capacity(view.Profile) int { return r.capacity }

// coreRanker drives every component's core protocol with a single Vicinity
// instance: it dispatches ranking and capacity to the owner's component
// shape. Cross-component and stale-epoch candidates are rejected outright,
// so a component's core view only ever contains current members of the
// same component.
//
// Alive-rank protocol: both profiles are translated through
// Allocator.Dense before the shape sees them, so gradients compare dense
// alive-ranks (the oracle's ordering of survivors) rather than the sparse
// Profile.Index. After an unreplaced death this closes the gradient-vs-
// oracle mismatch immediately: the shape steers toward the structure the
// oracle actually measures, and the timeline reconverges without a
// Reconfigure. With healing disabled Dense is the identity and the legacy
// sparse-index behavior is preserved.
type coreRanker struct {
	alloc *Allocator
}

var _ vicinity.Ranker = coreRanker{}

// Rank implements vicinity.Ranker.
func (r coreRanker) Rank(owner, cand view.Profile) float64 {
	if owner.Comp < 0 || cand.Comp != owner.Comp ||
		cand.Epoch != r.alloc.Epoch() || owner.Epoch != r.alloc.Epoch() {
		return view.RankInf
	}
	return r.alloc.Shape(owner.Comp).Rank(r.alloc.Dense(owner), r.alloc.Dense(cand))
}

// Capacity implements vicinity.Ranker.
func (r coreRanker) Capacity(p view.Profile) int {
	if p.Comp < 0 || int(p.Comp) >= r.alloc.Components() {
		return 1
	}
	return r.alloc.Shape(p.Comp).Capacity(r.alloc.Dense(p))
}
