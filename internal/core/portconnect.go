package core

import (
	"fmt"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/view"
)

// PortConnect is the port-connection sub-procedure: for every link declared
// in the topology, the manager of each end must discover the manager of the
// other end, yielding a concrete node-level connection between the two
// components.
//
// A manager resolves the far end by querying a contact inside the remote
// component — normally its UO2 contact, or locally when the link joins two
// ports of the same component, with a peer-sampling fallback during
// bootstrap. The queried node answers with its current port-selection
// belief, which the manager adopts (best claim wins, freshest stamp on
// ties). Answers about a dead manager stop being refreshed, so the belief
// expires and manager failover propagates to the link layer automatically.
//
// PortConnect is a pure lookup protocol: it reads the (frozen) state of the
// layers below and mutates only its own per-slot beliefs, so the whole
// resolution — bytes metered into the worker's shard included — runs in the
// parallel plan phase; it routes nothing, so it has no inbox and no Deliver
// work at all.
type PortConnect struct {
	alloc *Allocator
	ports *PortSelect
	uo2   *UO2
	rps   *peersampling.Protocol
	ttl   int
	meter int

	// states holds the per-slot belief tables as dense struct-of-arrays
	// state: headers in one contiguous slice, belief rows carved from a
	// shared arena.
	states []connState
	arena  []PortRecord
}

type connState struct {
	epoch   uint32
	comp    view.ComponentID
	remotes []PortRecord // indexed by position in alloc.SidesOf(comp)
}

var (
	_ sim.Protocol    = (*PortConnect)(nil)
	_ sim.MeterAware  = (*PortConnect)(nil)
	_ sim.Snapshotter = (*PortConnect)(nil)
)

// NewPortConnect creates the port-connection protocol. uo2 may be nil (the
// ablation experiment disables it; resolution then falls back to the
// peer-sampling service and gets much slower — which is the point of the
// ablation). ttl defaults to 20 when <= 0.
func NewPortConnect(alloc *Allocator, ports *PortSelect, uo2 *UO2, rps *peersampling.Protocol, ttl int) *PortConnect {
	if ttl <= 0 {
		ttl = 20
	}
	return &PortConnect{alloc: alloc, ports: ports, uo2: uo2, rps: rps, ttl: ttl, meter: -1}
}

// Name implements sim.Protocol.
func (p *PortConnect) Name() string { return "portconnect" }

// SetMeterIndex implements sim.MeterAware.
func (p *PortConnect) SetMeterIndex(i int) { p.meter = i }

// ensureSlot grows the per-slot storage to cover slot. Shared by InitNode
// and the restore path.
func (p *PortConnect) ensureSlot(slot int) {
	for len(p.states) <= slot {
		p.states = append(p.states, connState{epoch: ^uint32(0)})
	}
}

// InitNode implements sim.Protocol.
func (p *PortConnect) InitNode(e *sim.Engine, slot int) {
	p.ensureSlot(slot)
	st := &p.states[slot]
	// Fresh-join semantics: desync the state so the next Refresh re-syncs
	// it against the node's (possibly new) profile. Belief storage is kept.
	st.epoch = ^uint32(0)
	st.comp = 0
	st.remotes = st.remotes[:0]
}

// SnapshotState implements sim.Snapshotter: per slot, the belief-table sync
// key (epoch, component) and the remote-manager beliefs per link side.
func (p *PortConnect) SnapshotState(w *snap.Writer) {
	w.Len(len(p.states))
	for si := range p.states {
		st := &p.states[si]
		w.U32(st.epoch)
		w.Varint(int64(st.comp))
		writeRecords(w, st.remotes)
	}
}

// RestoreState implements sim.Snapshotter.
func (p *PortConnect) RestoreState(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != e.Size() {
		return fmt.Errorf("portconnect: snapshot covers %d slots, engine has %d", n, e.Size())
	}
	if n > 0 {
		p.ensureSlot(n - 1)
	}
	p.states = p.states[:n]
	for slot := 0; slot < n; slot++ {
		epoch := r.U32()
		comp := view.ComponentID(r.Varint())
		remotes, err := readRecords(r)
		if err != nil {
			return err
		}
		p.states[slot] = connState{epoch: epoch, comp: comp, remotes: remotes}
	}
	return r.Err()
}

// Remote returns the node's belief about the far-end manager of the given
// link side (an index into Allocator.Sides).
func (p *PortConnect) Remote(slot int, side int) PortRecord {
	if slot >= len(p.states) {
		return invalidRecord()
	}
	st := &p.states[slot]
	for pos, si := range p.alloc.SidesOf(st.comp) {
		if si == side && pos < len(st.remotes) {
			return st.remotes[pos]
		}
	}
	return invalidRecord()
}

func (p *PortConnect) reset(n *sim.Node, st *connState) {
	st.epoch = n.Profile.Epoch
	st.comp = n.Profile.Comp
	nsides := len(p.alloc.SidesOf(n.Profile.Comp))
	if cap(st.remotes) < nsides {
		st.remotes = sim.Carve(&p.arena, nsides)
	}
	st.remotes = st.remotes[:nsides]
	for i := range st.remotes {
		st.remotes[i] = invalidRecord()
	}
}

// Refresh implements sim.Protocol: re-sync the belief table with the node's
// current profile.
func (p *PortConnect) Refresh(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	st := &p.states[slot]
	if st.epoch != self.Profile.Epoch || st.comp != self.Profile.Comp {
		p.reset(self, st)
	}
}

// Plan implements sim.Protocol: for every link side this node currently
// manages, query one contact in the remote component for the far-end
// manager. Beliefs are slot-private, so they are adopted in place, and the
// wire bytes land in the worker's meter shard as the lookups happen.
func (p *PortConnect) Plan(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	st := &p.states[slot]
	sides := p.alloc.SidesOf(self.Profile.Comp)
	if len(sides) == 0 {
		return
	}
	now := ctx.Round()
	for pos, si := range sides {
		side := p.alloc.Sides()[si]
		// Only the (believed) manager of the local port drives the link.
		belief := p.ports.Belief(slot, side.Port)
		if belief.ID != self.ID {
			st.remotes[pos] = invalidRecord()
			continue
		}
		r := &st.remotes[pos]
		if r.Valid() && now-r.Stamp > p.ttl {
			*r = invalidRecord()
		}
		p.resolve(ctx, slot, self, side, r)
	}
}

// Absorb implements sim.Protocol: nothing to fold — lookups are
// query/response only, nothing is pushed to the queried node.
func (p *PortConnect) Absorb(ctx *sim.Ctx) {}

// resolve performs one lookup round-trip for a link side.
func (p *PortConnect) resolve(ctx *sim.Ctx, slot int, self *sim.Node, side LinkSide, r *PortRecord) {
	e := ctx.Engine()
	if side.RemoteComp == self.Profile.Comp {
		// A link between two ports of the same component: port selection
		// already gossips every port of the component to every member, so
		// the answer is local and free.
		if answer := p.ports.Belief(slot, side.RemotePort); answer.Valid() {
			adoptBelief(r, answer)
		}
		return
	}
	contact, ok := p.contactIn(ctx, slot, self, side.RemoteComp)
	if !ok {
		return
	}
	ctx.Count(p.meter, sim.PortQueryPayload())
	target := e.Lookup(contact.ID)
	if target == nil || !target.Alive || !ctx.Deliver(target.Slot) {
		return
	}
	// The contact answers with its current belief for the remote port —
	// provided it is (still) a member of the remote component.
	if target.Profile.Comp != side.RemoteComp || target.Profile.Epoch != self.Profile.Epoch {
		return
	}
	answer := p.ports.Belief(target.Slot, side.RemotePort)
	if !answer.Valid() || ctx.Round()-answer.Stamp > p.ttl {
		return
	}
	ctx.Count(p.meter, sim.PortRecordPayload(1))
	adoptBelief(r, answer)
}

// adoptBelief folds an answer into a remote-manager belief: better claims
// win, equal claims keep the freshest stamp.
func adoptBelief(r *PortRecord, answer PortRecord) {
	switch {
	case answer.Better(*r):
		*r = answer
	case answer.ID == r.ID && answer.Stamp > r.Stamp:
		r.Stamp = answer.Stamp
	}
}

// contactIn finds a contact inside the given (distant) component: normally
// the UO2 contact; the peer-sampling view serves as a last-resort bootstrap
// (and as the only path in the UO2-disabled ablation).
func (p *PortConnect) contactIn(ctx *sim.Ctx, slot int, self *sim.Node, comp view.ComponentID) (view.Descriptor, bool) {
	if p.uo2 != nil {
		if d, ok := p.uo2.Contact(slot, comp); ok {
			return d, true
		}
	}
	// Fallback: scan the sampling view for a member of the component,
	// filtering into the worker's scratch pad.
	pad := ctx.Pad()
	v := p.rps.View(slot)
	matches := pad.Same[:0]
	for i := 0; i < v.Len(); i++ {
		if d := v.At(i); d.Profile.Comp == comp && d.Profile.Epoch == self.Profile.Epoch {
			matches = append(matches, d)
		}
	}
	pad.Same = matches
	if len(matches) > 0 {
		return matches[ctx.Rand().Intn(len(matches))], true
	}
	return view.Descriptor{}, false
}
