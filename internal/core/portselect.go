package core

import (
	"fmt"

	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/vicinity"
	"sosf/internal/view"
)

// PortRecord is one port-election entry: the best-known candidate for a
// port, its election score, and the round of the candidate's most recent
// heartbeat. The manager refreshes its own records every round; when it
// dies its stamp freezes, the record expires everywhere within the TTL,
// and the next-best candidate takes over.
//
// Freshness is an absolute stamp rather than a relative age on purpose:
// relative ages that are min-merged between nodes at different points of a
// round can circulate forever without growing (two nodes can keep handing
// each other the "young" copy), whereas a frozen stamp is monotone — the
// wire equivalent in a deployed system is an incarnation/sequence number.
type PortRecord struct {
	Score uint64
	ID    view.NodeID
	Stamp int
}

// Valid reports whether the record holds a candidate.
func (r PortRecord) Valid() bool { return r.ID != view.InvalidNode }

// Better reports whether r is a strictly better election claim than other:
// lower score wins, ties broken by lower node ID.
func (r PortRecord) Better(other PortRecord) bool {
	if !other.Valid() {
		return r.Valid()
	}
	if !r.Valid() {
		return false
	}
	if r.Score != other.Score {
		return r.Score < other.Score
	}
	return r.ID < other.ID
}

// invalidRecord is the empty election slot.
func invalidRecord() PortRecord { return PortRecord{ID: view.InvalidNode} }

// PortSelect is the port-selection sub-procedure: a gossip min-election
// run inside each component. Every member is a candidate for every port of
// its component with a deterministic hash score; members gossip their
// per-port best-known records over same-component contacts (from the core
// overlay and UO1), so all members converge on the alive member with the
// minimum score — the port's manager.
type PortSelect struct {
	alloc *Allocator
	uo1   *vicinity.Protocol
	core  *vicinity.Protocol
	ttl   int
	meter int

	// states holds the per-slot election state as dense struct-of-arrays
	// state: headers in one contiguous slice, record rows carved from the
	// shared arena.
	states []portState
	plans  []portPlan
	inbox  sim.Inbox
	arena  []PortRecord
}

type portState struct {
	epoch   uint32
	comp    view.ComponentID
	records []PortRecord // indexed by port
}

// portPlan is one node's planned record exchange. Both directions are
// snapshotted at plan time (the live tables mutate concurrently during
// Absorb), into per-slot retained buffers.
const (
	portNone      = iota
	portSent      // request metered, but lost or answered by a foreign node
	portDelivered // records merged both ways
)

type portPlan struct {
	kind       int
	targetSlot int
	send       []PortRecord // snapshot of this node's post-refresh records
	reply      []PortRecord // snapshot of the partner's post-refresh records
}

var (
	_ sim.Protocol    = (*PortSelect)(nil)
	_ sim.InboxOwner  = (*PortSelect)(nil)
	_ sim.MeterAware  = (*PortSelect)(nil)
	_ sim.Snapshotter = (*PortSelect)(nil)
)

// NewPortSelect creates the port-selection protocol. ttl bounds manager
// failover latency (default 20 rounds when <= 0).
func NewPortSelect(alloc *Allocator, uo1, core *vicinity.Protocol, ttl int) *PortSelect {
	if ttl <= 0 {
		ttl = 20
	}
	return &PortSelect{alloc: alloc, uo1: uo1, core: core, ttl: ttl, meter: -1}
}

// Name implements sim.Protocol.
func (p *PortSelect) Name() string { return "portselect" }

// Inboxes implements sim.InboxOwner: the engine drives the Deliver-phase
// merge of the record-exchange routing.
func (p *PortSelect) Inboxes() []*sim.Inbox { return []*sim.Inbox{&p.inbox} }

// SetMeterIndex implements sim.MeterAware.
func (p *PortSelect) SetMeterIndex(i int) { p.meter = i }

// ensureSlot grows the per-slot storage to cover slot. width bounds the
// carved plan buffers; InitNode derives it from the node's port count, the
// restore path from the serialized record width.
func (p *PortSelect) ensureSlot(slot, width int) {
	for len(p.states) <= slot {
		p.plans = append(p.plans, portPlan{
			send:  sim.Carve(&p.arena, width),
			reply: sim.Carve(&p.arena, width),
		})
		p.states = append(p.states, portState{epoch: ^uint32(0), records: sim.Carve(&p.arena, width)})
	}
	p.inbox.Grow(slot + 1)
}

// InitNode implements sim.Protocol.
func (p *PortSelect) InitNode(e *sim.Engine, slot int) {
	// Record snapshots are bounded by the node's port count; carve
	// them from a chunked arena (profile is assigned before InitNode
	// runs, so the component is known; a reconfiguration that adds
	// ports falls back to a private heap copy).
	p.ensureSlot(slot, int(p.alloc.Ports(e.Node(slot).Profile.Comp)))
	st := &p.states[slot]
	// Fresh-join semantics: desync the state so the next Refresh re-syncs
	// it against the node's (possibly new) profile. Record storage is kept.
	st.epoch = ^uint32(0)
	st.comp = 0
	st.records = st.records[:0]
}

// SnapshotState implements sim.Snapshotter: per slot, the election-state
// sync key (epoch, component) and the per-port best-known records.
func (p *PortSelect) SnapshotState(w *snap.Writer) {
	w.Len(len(p.states))
	for si := range p.states {
		st := &p.states[si]
		w.U32(st.epoch)
		w.Varint(int64(st.comp))
		writeRecords(w, st.records)
	}
}

// RestoreState implements sim.Snapshotter.
func (p *PortSelect) RestoreState(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != e.Size() {
		return fmt.Errorf("portselect: snapshot covers %d slots, engine has %d", n, e.Size())
	}
	for slot := 0; slot < n; slot++ {
		epoch := r.U32()
		comp := view.ComponentID(r.Varint())
		records, err := readRecords(r)
		if err != nil {
			return err
		}
		p.ensureSlot(slot, len(records))
		p.states[slot] = portState{epoch: epoch, comp: comp, records: records}
	}
	p.states = p.states[:n]
	p.plans = p.plans[:n]
	return r.Err()
}

// writeRecords encodes a PortRecord slice (shared with PortConnect).
func writeRecords(w *snap.Writer, records []PortRecord) {
	w.Len(len(records))
	for _, rec := range records {
		w.U64(rec.Score)
		w.Varint(int64(rec.ID))
		w.Int(rec.Stamp)
	}
}

// readRecords decodes a PortRecord slice written by writeRecords.
func readRecords(r *snap.Reader) ([]PortRecord, error) {
	n := r.Len()
	if err := r.Err(); err != nil {
		return nil, err
	}
	records := make([]PortRecord, n)
	for i := range records {
		records[i] = PortRecord{
			Score: r.U64(),
			ID:    view.NodeID(r.Varint()),
			Stamp: r.Int(),
		}
	}
	return records, r.Err()
}

// Belief returns the node's current best-known record for the given port
// of its own component.
func (p *PortSelect) Belief(slot int, port int32) PortRecord {
	if slot >= len(p.states) {
		return invalidRecord()
	}
	st := &p.states[slot]
	if int(port) >= len(st.records) {
		return invalidRecord()
	}
	return st.records[port]
}

// reset re-syncs the node's election state with its current profile
// (fresh join, reconfiguration, or component move).
func (p *PortSelect) reset(n *sim.Node, st *portState) {
	st.epoch = n.Profile.Epoch
	st.comp = n.Profile.Comp
	nports := int(p.alloc.Ports(n.Profile.Comp))
	if cap(st.records) < nports {
		st.records = make([]PortRecord, nports)
	} else {
		st.records = st.records[:nports]
	}
	for i := range st.records {
		st.records[i] = invalidRecord()
	}
}

// Refresh implements sim.Protocol: re-sync with the node's profile, expire
// records whose candidate stopped heartbeating, claim any port this node
// scores better on, and heartbeat ports it currently holds. Slot-local.
func (p *PortSelect) Refresh(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	st := &p.states[slot]
	p.inbox.Reset(slot)
	if st.epoch != self.Profile.Epoch || st.comp != self.Profile.Comp {
		p.reset(self, st)
	}
	now := ctx.Round()
	for i := range st.records {
		r := &st.records[i]
		if r.Valid() && now-r.Stamp > p.ttl {
			*r = invalidRecord()
		}
		mine := PortRecord{
			Score: electionScore(self.Profile.Comp, int32(i), self.Profile.Epoch, self.ID),
			ID:    self.ID,
			Stamp: now,
		}
		switch {
		case mine.Better(*r):
			*r = mine
		case r.ID == self.ID:
			r.Stamp = now
		}
	}
}

// Plan implements sim.Protocol: pick a same-component partner and snapshot
// both sides' records for the merge. Every node refreshed (and re-synced)
// before any plan runs, so the partner's table is read post-reset.
func (p *PortSelect) Plan(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	e := ctx.Engine()
	st := &p.states[slot]
	pl := &p.plans[slot]
	pl.kind = portNone
	if len(st.records) == 0 {
		return
	}

	// Gossip over UO1 first: UO1's pairwise-randomized ranking makes it an
	// expander-like graph inside the component, so election records and
	// heartbeat stamps diffuse in O(log n) rounds. The core view is only a
	// fallback — shapes like rings or lines have diameter O(n), and
	// freshness crawling around a cycle would blow every TTL.
	partner, ok := sameCompContact(ctx, slot, self, p.uo1, p.core)
	if !ok {
		return
	}
	pl.kind = portSent
	pl.send = append(pl.send[:0], st.records...)
	// The request bytes are spent even when the exchange is lost or
	// answered by a mismatched node; metered into the worker's shard.
	ctx.Count(p.meter, sim.PortRecordPayload(len(pl.send)))
	target := e.Lookup(partner.ID)
	if target == nil || !target.Alive || !ctx.Deliver(target.Slot) {
		return
	}
	if target.Profile.Comp != self.Profile.Comp || target.Profile.Epoch != self.Profile.Epoch {
		return // raced with a reconfiguration; nothing to merge
	}
	pl.kind = portDelivered
	pl.targetSlot = target.Slot
	pl.reply = append(pl.reply[:0], p.states[target.Slot].records...)
	ctx.Count(p.meter, sim.PortRecordPayload(len(pl.reply)))
	p.inbox.Push(pl.targetSlot, slot)
}

// Absorb implements sim.Protocol: fold the snapshots received this round
// into the slot's live records — the partner's reply first, then every
// record set that reached it as the passive side, in inbox order.
func (p *PortSelect) Absorb(ctx *sim.Ctx) {
	slot := ctx.Slot()
	st := &p.states[slot]
	now := ctx.Round()
	pl := &p.plans[slot]
	if pl.kind == portDelivered {
		mergeRecords(st.records, pl.reply, now, p.ttl)
	}
	for sender := p.inbox.First(slot); sender >= 0; sender = p.inbox.Next(sender) {
		mergeRecords(st.records, p.plans[sender].send, now, p.ttl)
	}
}

// mergeRecords folds src into dst: better claims win; equal claims keep
// the freshest stamp. Records that are already expired are never adopted —
// otherwise an obsolete claim can keep circulating as a wave, each holder
// expiring it locally while re-infecting peers that already had.
func mergeRecords(dst, src []PortRecord, now, ttl int) {
	for i := range dst {
		if i >= len(src) || !src[i].Valid() || now-src[i].Stamp > ttl {
			continue
		}
		switch {
		case src[i].Better(dst[i]):
			dst[i] = src[i]
		case src[i].ID == dst[i].ID && src[i].Stamp > dst[i].Stamp:
			dst[i].Stamp = src[i].Stamp
		}
	}
}

// sameCompContact picks a random same-component, same-epoch contact from
// the node's core view, falling back to UO1. The candidate filter runs on
// the worker's scratch pad — no per-call slice, no view mutation.
func sameCompContact(ctx *sim.Ctx, slot int, self *sim.Node, sources ...*vicinity.Protocol) (view.Descriptor, bool) {
	pad := ctx.Pad()
	for _, src := range sources {
		if src == nil {
			continue
		}
		v := src.View(slot)
		same := pad.Same[:0]
		for i := 0; i < v.Len(); i++ {
			d := v.At(i)
			if d.Profile.Comp == self.Profile.Comp && d.Profile.Epoch == self.Profile.Epoch {
				same = append(same, d)
			}
		}
		pad.Same = same
		if len(same) > 0 {
			return same[ctx.Rand().Intn(len(same))], true
		}
	}
	return view.Descriptor{}, false
}
