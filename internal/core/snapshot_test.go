package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sosf/internal/spec"
)

// snapTopo builds a small two-ring topology with a link, programmatically
// (core tests cannot import the DSL compiler without a cycle).
func snapTopo() *spec.Topology {
	return &spec.Topology{
		Name: "snaptest",
		Components: []spec.Component{
			{Name: "a", Shape: "ring", Weight: 1, Ports: []string{"p"}},
			{Name: "b", Shape: "ring", Weight: 1, Ports: []string{"q"}},
		},
		Links: []spec.Link{{
			A: spec.PortRef{Component: "a", Port: "p"},
			B: spec.PortRef{Component: "b", Port: "q"},
		}},
	}
}

// traceRounds runs n rounds and fingerprints each: oracle accuracies plus
// the round's bandwidth split — dense enough that any drift shows.
func traceRounds(t *testing.T, sys *System, n int) []string {
	t.Helper()
	trace := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if _, err := sys.Run(1); err != nil {
			t.Fatal(err)
		}
		m := sys.Oracle().Measure()
		var b strings.Builder
		fmt.Fprintf(&b, "round=%d alive=%d", sys.Engine().Round(), sys.Engine().AliveCount())
		for _, sub := range Subs() {
			fmt.Fprintf(&b, " %v=%.6f", sub, m.Fraction[sub])
		}
		r := sys.Engine().Meter().Rounds() - 1
		base, over := sys.BandwidthByClass(r)
		fmt.Fprintf(&b, " bw=%d/%d", base, over)
		trace = append(trace, b.String())
	}
	return trace
}

func snapSystem(t *testing.T, seed int64, workers int) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Topology: snapTopo(),
		Nodes:    80,
		Seed:     seed,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSystemSnapshotResumeEquivalence: run 25 + 15 rounds with mid-run
// damage; snapshot at 25; restore into a fresh system and onto RestoreSystem;
// both must replay the last 15 rounds identically to the uninterrupted run.
func TestSystemSnapshotResumeEquivalence(t *testing.T) {
	ref := snapSystem(t, 42, 1)
	if _, err := ref.Run(20); err != nil {
		t.Fatal(err)
	}
	ref.Kill(0.2)
	ref.AddNodes(10)
	ref.Engine().SetLossRate(0.05)
	if _, err := ref.Run(5); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ref.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snapBytes := append([]byte(nil), buf.Bytes()...)
	want := traceRounds(t, ref, 15)

	// Restore into a freshly booted system (different seed: the snapshot
	// is authoritative for all randomness).
	cont := snapSystem(t, 7, 1)
	if err := cont.Restore(bytes.NewReader(snapBytes)); err != nil {
		t.Fatal(err)
	}
	if got := cont.Engine().Round(); got != 25 {
		t.Fatalf("restored round = %d, want 25", got)
	}
	if got := traceRounds(t, cont, 15); !equalTrace(got, want) {
		t.Fatalf("restored run diverged:\n got %v\nwant %v", got, want)
	}

	// RestoreSystem boots entirely from the snapshot, sharded across 4
	// workers — the worker count must stay invisible.
	warm, err := RestoreSystem(bytes.NewReader(snapBytes), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := traceRounds(t, warm, 15); !equalTrace(got, want) {
		t.Fatalf("RestoreSystem run diverged:\n got %v\nwant %v", got, want)
	}
}

// TestSystemSnapshotAfterReconfigure: the snapshot must carry the *active*
// topology, not the boot one, or the allocator restores against the wrong
// shapes and sides.
func TestSystemSnapshotAfterReconfigure(t *testing.T) {
	ref := snapSystem(t, 3, 1)
	if _, err := ref.Run(10); err != nil {
		t.Fatal(err)
	}
	next := snapTopo()
	next.Name = "snaptest2"
	next.Components = append(next.Components,
		spec.Component{Name: "c", Shape: "ring", Weight: 1, Ports: []string{"r"}})
	next.Links = append(next.Links, spec.Link{
		A: spec.PortRef{Component: "b", Port: "q"},
		B: spec.PortRef{Component: "c", Port: "r"},
	})
	if err := ref.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(10); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ref.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	want := traceRounds(t, ref, 10)

	cont := snapSystem(t, 3, 1)
	if err := cont.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := cont.Allocator().Topology().Name; got != "snaptest2" {
		t.Fatalf("restored topology = %q, want the active one", got)
	}
	if got := cont.Allocator().Epoch(); got != 1 {
		t.Fatalf("restored epoch = %d, want 1", got)
	}
	if got := traceRounds(t, cont, 10); !equalTrace(got, want) {
		t.Fatalf("post-reconfigure resume diverged:\n got %v\nwant %v", got, want)
	}
}

// TestRestoreRejectsMismatchedKnobs: resuming under different protocol
// parameters would silently diverge, so it must be refused.
func TestRestoreRejectsMismatchedKnobs(t *testing.T) {
	ref := snapSystem(t, 1, 1)
	if _, err := ref.Run(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ref.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	other, err := NewSystem(Config{
		Topology:    snapTopo(),
		Nodes:       80,
		Seed:        1,
		UO1Capacity: 12, // differs from the snapshot's default 8
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore under different UO1Capacity succeeded")
	} else if !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("err = %v, want configuration mismatch", err)
	}
}

func equalTrace(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
