package core

import (
	"fmt"
	"sort"

	"sosf/internal/shapes"
	"sosf/internal/sim"
	"sosf/internal/spec"
	"sosf/internal/view"
)

// Allocator implements the runtime's role allocation: deciding which node
// belongs to which component and handing out the dense per-component
// indices that shapes build their structure on.
//
// Assignment uses weighted rendezvous hashing over stable per-node keys, so
// it is deterministic, weight-proportional, and minimally disruptive: when
// a reconfiguration adds or removes components, only the nodes whose
// arg-min changes move. Index assignment (the "differentiation of nodes"
// the paper assigns to the runtime) happens at configuration epochs: the
// allocator plays the part of the configuration service a deployed system
// would consult when (re)joining.
type Allocator struct {
	topo   *spec.Topology
	shapes []shapes.Shape
	epoch  uint32
	// nextIndex tracks, per component, the next dense index to hand to a
	// node joining mid-epoch (churn).
	nextIndex []int32
	// freeIndex recycles indices vacated by departed members, keeping the
	// index space dense under sustained churn (shape gradients assume
	// indices roughly span 0..size-1).
	freeIndex [][]int32
	// sizes tracks the current alive membership estimate per component.
	sizes []int32
	// noHeal disables the self-healing layer (dense alive-rank translation
	// plus threshold re-densify), preserving the legacy behavior where
	// index holes left by unreplaced deaths pin shape gradients below the
	// oracle ranking until a full Reconfigure.
	noHeal bool
	// ranks maps, per component, a current-epoch sparse index to its dense
	// alive-rank: index minus the number of vacated indices below it. This
	// is exactly the position the oracle assigns when it sorts survivors by
	// (Index, ID), so rankers that translate through Dense steer toward the
	// measured target structure even while the index space has holes.
	// Tables are rebuilt only at serial mutation barriers (FlushRanks,
	// AssignAll, reDensify, restore) and are read-only during the parallel
	// round phases, keeping the steady-state round loop allocation-free.
	ranks [][]int32
	// ranksDirty marks components whose ranks table went stale after a
	// mid-epoch join/leave; System flushes it after every mutation batch.
	ranksDirty []bool
	// healsTotal counts re-densify repairs performed since start (or since
	// the snapshot the allocator was restored from was taken, cumulative).
	healsTotal uint64
	// portCounts caches the number of ports per component.
	portCounts []int32
	// sides flattens every link into its two directed endpoints.
	sides []LinkSide
	// sidesByComp indexes sides by local component.
	sidesByComp [][]int
}

// LinkSide is one directed endpoint of a link: the local (component, port)
// pair and the remote one it must connect to.
type LinkSide struct {
	// Link is the index of the link in the topology's link list.
	Link int
	// Comp and Port identify the local port.
	Comp view.ComponentID
	Port int32
	// RemoteComp and RemotePort identify the far end.
	RemoteComp view.ComponentID
	RemotePort int32
}

// NewAllocator builds an allocator for a validated topology.
func NewAllocator(topo *spec.Topology) (*Allocator, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	a := &Allocator{}
	if err := a.install(topo); err != nil {
		return nil, err
	}
	return a, nil
}

// install replaces the topology and instantiates its shapes.
func (a *Allocator) install(topo *spec.Topology) error {
	ss := make([]shapes.Shape, len(topo.Components))
	for i := range topo.Components {
		s, err := topo.Components[i].NewShape()
		if err != nil {
			return fmt.Errorf("allocator: %w", err)
		}
		ss[i] = s
	}
	a.topo = topo
	a.shapes = ss
	a.nextIndex = make([]int32, len(topo.Components))
	a.freeIndex = make([][]int32, len(topo.Components))
	a.sizes = make([]int32, len(topo.Components))
	a.ranks = make([][]int32, len(topo.Components))
	a.ranksDirty = make([]bool, len(topo.Components))

	a.portCounts = make([]int32, len(topo.Components))
	for i := range topo.Components {
		a.portCounts[i] = int32(len(topo.Components[i].Ports))
	}
	a.sides = a.sides[:0]
	a.sidesByComp = make([][]int, len(topo.Components))
	portIndex := func(ref spec.PortRef) (view.ComponentID, int32) {
		ci := topo.ComponentIndex(ref.Component)
		for pi, p := range topo.Components[ci].Ports {
			if p == ref.Port {
				return view.ComponentID(ci), int32(pi)
			}
		}
		// Unreachable: the topology is validated.
		return view.ComponentID(ci), -1
	}
	for li, l := range topo.Links {
		ac, ap := portIndex(l.A)
		bc, bp := portIndex(l.B)
		a.sides = append(a.sides,
			LinkSide{Link: li, Comp: ac, Port: ap, RemoteComp: bc, RemotePort: bp},
			LinkSide{Link: li, Comp: bc, Port: bp, RemoteComp: ac, RemotePort: ap},
		)
	}
	for si := range a.sides {
		c := a.sides[si].Comp
		a.sidesByComp[c] = append(a.sidesByComp[c], si)
	}
	return nil
}

// Ports returns the number of ports of the given component.
func (a *Allocator) Ports(c view.ComponentID) int32 {
	if c < 0 || int(c) >= len(a.portCounts) {
		return 0
	}
	return a.portCounts[c]
}

// Sides returns every link endpoint (two per link).
func (a *Allocator) Sides() []LinkSide { return a.sides }

// SidesOf returns the indices (into Sides) of the link endpoints local to
// the given component.
func (a *Allocator) SidesOf(c view.ComponentID) []int {
	if c < 0 || int(c) >= len(a.sidesByComp) {
		return nil
	}
	return a.sidesByComp[c]
}

// Topology returns the active topology.
func (a *Allocator) Topology() *spec.Topology { return a.topo }

// Epoch returns the current configuration epoch.
func (a *Allocator) Epoch() uint32 { return a.epoch }

// Shape returns the shape of the given component.
func (a *Allocator) Shape(c view.ComponentID) shapes.Shape { return a.shapes[c] }

// Components returns the number of components in the active topology.
func (a *Allocator) Components() int { return len(a.topo.Components) }

// ComponentOf computes the rendezvous assignment for a node key under the
// active topology.
func (a *Allocator) ComponentOf(key uint64) view.ComponentID {
	best, bestScore := 0, rendezvousScore(key, 0, a.topo.Components[0].Weight)
	for c := 1; c < len(a.topo.Components); c++ {
		if s := rendezvousScore(key, c, a.topo.Components[c].Weight); s < bestScore {
			best, bestScore = c, s
		}
	}
	return view.ComponentID(best)
}

// AssignAll (re)assigns every alive node in the engine: components via
// rendezvous hashing, then dense indices 0..size-1 per component in
// node-key order. Call it at start-up and after every Reconfigure.
func (a *Allocator) AssignAll(e *sim.Engine) {
	groups := make([][]*sim.Node, len(a.topo.Components))
	for _, slot := range e.AliveSlots() {
		n := e.Node(slot)
		c := a.ComponentOf(n.Profile.Key)
		groups[c] = append(groups[c], n)
	}
	for c, members := range groups {
		sort.Slice(members, func(i, j int) bool {
			if members[i].Profile.Key != members[j].Profile.Key {
				return members[i].Profile.Key < members[j].Profile.Key
			}
			return members[i].ID < members[j].ID
		})
		size := int32(len(members))
		for i, n := range members {
			n.Profile.Comp = view.ComponentID(c)
			n.Profile.Index = int32(i)
			n.Profile.Size = size
			n.Profile.Epoch = a.epoch
		}
		a.nextIndex[c] = size
		a.freeIndex[c] = a.freeIndex[c][:0]
		a.sizes[c] = size
		a.refreshRanksComp(c)
	}
}

// AssignJoin gives a profile to one node joining mid-epoch: the rendezvous
// component, the next free index, and the allocator's current size
// estimate. Existing members keep their indices (no global reshuffle on a
// single join; shape gradients tolerate index gaps, and the next
// reconfiguration re-densifies).
func (a *Allocator) AssignJoin(n *sim.Node) {
	c := a.ComponentOf(n.Profile.Key)
	a.sizes[c]++
	var idx int32
	if free := a.freeIndex[c]; len(free) > 0 {
		idx = free[len(free)-1]
		a.freeIndex[c] = free[:len(free)-1]
	} else {
		idx = a.nextIndex[c]
		a.nextIndex[c]++
	}
	n.Profile.Comp = c
	n.Profile.Index = idx
	n.Profile.Size = a.sizes[c]
	n.Profile.Epoch = a.epoch
	a.ranksDirty[c] = true
}

// NoteLeave updates the allocator's size estimate when a node is known to
// have left (failure detection / churn bookkeeping) and recycles its index
// for the next join.
func (a *Allocator) NoteLeave(n *sim.Node) {
	c := n.Profile.Comp
	if c < 0 || int(c) >= len(a.sizes) || n.Profile.Epoch != a.epoch {
		return
	}
	if a.sizes[c] > 0 {
		a.sizes[c]--
	}
	a.freeIndex[c] = append(a.freeIndex[c], n.Profile.Index)
	a.ranksDirty[c] = true
}

// refreshRanksComp rebuilds one component's dense alive-rank table from
// its freeIndex list: ranks[c][i] = i minus the number of vacated indices
// strictly below i. Vacated indices themselves get the same formula (the
// rank an alive holder of that slot would have), so stale descriptors of
// departed members still translate to a deterministic, in-range rank.
func (a *Allocator) refreshRanksComp(c int) {
	n := int(a.nextIndex[c])
	t := a.ranks[c]
	if cap(t) < n {
		t = make([]int32, n)
	} else {
		t = t[:n]
	}
	for i := range t {
		t[i] = 0
	}
	for _, f := range a.freeIndex[c] {
		if int(f) < n {
			t[f] = -1
		}
	}
	var vac int32
	for i := range t {
		free := t[i] < 0
		t[i] = int32(i) - vac
		if free {
			vac++
		}
	}
	a.ranks[c] = t
	a.ranksDirty[c] = false
}

// FlushRanks rebuilds the dense-rank tables of components whose membership
// changed since the last flush. System calls it after every mutation batch
// (kills, joins, churn) at the serial round barrier; it is a no-op when
// nothing moved, so steady-state rounds never touch it.
func (a *Allocator) FlushRanks() {
	for c, dirty := range a.ranksDirty {
		if dirty {
			a.refreshRanksComp(c)
		}
	}
}

// Dense translates a profile's sparse index and stamped size into the
// component's current dense alive-rank and alive size. The dense rank is
// exactly the position the oracle assigns the node when ranking survivors
// by (Index, ID), so rankers comparing Dense profiles agree with the
// measured target structure even while deaths have left index holes.
// Identity when healing is disabled or the profile is from a stale epoch.
func (a *Allocator) Dense(p view.Profile) view.Profile {
	if a.noHeal || p.Epoch != a.epoch || p.Comp < 0 || int(p.Comp) >= len(a.ranks) {
		return p
	}
	if t := a.ranks[p.Comp]; int(p.Index) >= 0 && int(p.Index) < len(t) {
		p.Index = t[p.Index]
	} else if p.Index > 0 {
		// Beyond the table (a join the table predates, before the next
		// flush): every tracked vacancy sits below this index.
		p.Index -= int32(len(a.freeIndex[p.Comp]))
	}
	if s := a.sizes[p.Comp]; s > 0 {
		p.Size = s
	}
	return p
}

// healThreshold is the vacancy count above which a component re-densifies:
// proportional to the component size so small components heal promptly
// while large ones amortize the O(members) compaction.
func healThreshold(size int32) int {
	t := int(size) / 4
	if t < 4 {
		t = 4
	}
	return t
}

// MaybeHeal scans components for vacancy buildup and re-densifies those
// whose freeIndex crossed the heal threshold. It must run at the serial
// round barrier (every membership mutation path already does), never from
// the parallel round phases: re-densify rewrites member profiles and may
// allocate. Returns the number of components healed.
func (a *Allocator) MaybeHeal(e *sim.Engine) int {
	if a.noHeal {
		return 0
	}
	healed := 0
	for c := range a.freeIndex {
		if len(a.freeIndex[c]) > healThreshold(a.sizes[c]) {
			a.reDensify(view.ComponentID(c), e)
			healed++
		}
	}
	return healed
}

// reDensify compacts one component's index space without an epoch bump:
// every alive current-epoch member is reassigned the dense index it
// already occupies in (Index, ID) order. Because the new sparse index of
// each member equals its previous dense rank, the repair is pure
// bookkeeping — gradient decisions made through Dense are unchanged in the
// same instant, no descriptors are invalidated, and no state is evicted.
// Stale copies of pre-heal descriptors in remote views briefly translate
// through the reset table; they wash out through normal gossip freshness.
func (a *Allocator) reDensify(c view.ComponentID, e *sim.Engine) {
	var ms []*sim.Node
	for _, slot := range e.AliveSlots() {
		n := e.Node(slot)
		if n.Profile.Comp == c && n.Profile.Epoch == a.epoch {
			ms = append(ms, n)
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Profile.Index != ms[j].Profile.Index {
			return ms[i].Profile.Index < ms[j].Profile.Index
		}
		return ms[i].ID < ms[j].ID
	})
	size := int32(len(ms))
	for i, n := range ms {
		n.Profile.Index = int32(i)
		n.Profile.Size = size
	}
	a.nextIndex[c] = size
	a.freeIndex[c] = a.freeIndex[c][:0]
	a.sizes[c] = size
	a.refreshRanksComp(int(c))
	a.healsTotal++
}

// HealsTotal returns the cumulative number of re-densify repairs.
func (a *Allocator) HealsTotal() uint64 { return a.healsTotal }

// SetHealing enables or disables the self-healing layer. Call before the
// first round; flipping it mid-run would silently change gradient ranks.
func (a *Allocator) SetHealing(on bool) { a.noHeal = !on }

// Reconfigure installs a new topology, bumps the epoch, and reassigns all
// alive nodes. Descriptors of the previous epoch become stale everywhere
// and are evicted on contact by every layer.
func (a *Allocator) Reconfigure(e *sim.Engine, topo *spec.Topology) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	if err := a.install(topo); err != nil {
		return err
	}
	a.epoch++
	a.AssignAll(e)
	return nil
}
