package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"sosf/internal/sim"
	"sosf/internal/spec"
	"sosf/internal/view"
)

// ringsTopo builds a k-ring topology where consecutive rings are linked
// head-to-tail (the paper's ring-of-rings).
func ringsTopo(k int) *spec.Topology {
	t := &spec.Topology{Name: "ring-of-rings"}
	for i := 0; i < k; i++ {
		t.Components = append(t.Components, spec.Component{
			Name: compName(i), Shape: "ring", Weight: 1,
			Ports: []string{"head", "tail"},
		})
	}
	for i := 0; i < k; i++ {
		t.Links = append(t.Links, spec.Link{
			A: spec.PortRef{Component: compName(i), Port: "head"},
			B: spec.PortRef{Component: compName((i + 1) % k), Port: "tail"},
		})
	}
	return t
}

func compName(i int) string {
	return "r" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func newPopulation(t *testing.T, n int, seed int64) *sim.Engine {
	t.Helper()
	e := sim.New(seed)
	e.Register(&nopProtocol{})
	for _, slot := range e.AddNodes(n) {
		e.Node(slot).Profile.Key = e.Rand().Uint64()
	}
	return e
}

type nopProtocol struct{}

func (*nopProtocol) Name() string                  { return "nop" }
func (*nopProtocol) InitNode(e *sim.Engine, s int) {}
func (*nopProtocol) Refresh(ctx *sim.Ctx)          {}
func (*nopProtocol) Plan(ctx *sim.Ctx)             {}
func (*nopProtocol) Absorb(ctx *sim.Ctx)           {}

func TestAllocatorRejectsInvalidTopology(t *testing.T) {
	if _, err := NewAllocator(&spec.Topology{}); err == nil {
		t.Fatal("empty topology should be rejected")
	}
}

func TestAssignAllDenseAndProportional(t *testing.T) {
	topo := ringsTopo(4)
	topo.Components[0].Weight = 3 // 3/6 of nodes
	a, err := NewAllocator(topo)
	if err != nil {
		t.Fatal(err)
	}
	e := newPopulation(t, 1200, 1)
	a.AssignAll(e)

	counts := make([]int, 4)
	maxIdx := make([]int32, 4)
	for _, slot := range e.AliveSlots() {
		p := e.Node(slot).Profile
		counts[p.Comp]++
		if p.Index > maxIdx[p.Comp] {
			maxIdx[p.Comp] = p.Index
		}
		if p.Epoch != 0 {
			t.Fatalf("epoch = %d, want 0", p.Epoch)
		}
	}
	// Component 0 has weight 3 of total 6: expect ~600 of 1200 ±10%.
	if math.Abs(float64(counts[0])-600) > 60 {
		t.Fatalf("weighted component got %d nodes, want ~600", counts[0])
	}
	for c := 1; c < 4; c++ {
		if math.Abs(float64(counts[c])-200) > 60 {
			t.Fatalf("component %d got %d nodes, want ~200", c, counts[c])
		}
	}
	// Indices must be dense 0..size-1.
	for c := 0; c < 4; c++ {
		if int(maxIdx[c]) != counts[c]-1 {
			t.Fatalf("component %d: max index %d for %d members", c, maxIdx[c], counts[c])
		}
	}
	// Sizes stamped into profiles must match.
	for _, slot := range e.AliveSlots() {
		p := e.Node(slot).Profile
		if int(p.Size) != counts[p.Comp] {
			t.Fatalf("profile size %d != component size %d", p.Size, counts[p.Comp])
		}
	}
}

func TestAssignmentDeterministic(t *testing.T) {
	topo := ringsTopo(5)
	a1, _ := NewAllocator(topo)
	a2, _ := NewAllocator(ringsTopo(5))
	e1 := newPopulation(t, 300, 7)
	e2 := newPopulation(t, 300, 7)
	a1.AssignAll(e1)
	a2.AssignAll(e2)
	for slot := 0; slot < 300; slot++ {
		if e1.Node(slot).Profile != e2.Node(slot).Profile {
			t.Fatalf("slot %d: %v != %v", slot, e1.Node(slot).Profile, e2.Node(slot).Profile)
		}
	}
}

// Property: rendezvous assignment is stable — a node's component depends
// only on its key and the component list, not on the rest of the
// population.
func TestComponentOfStable(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(6))
	f := func(key uint64) bool {
		c1 := a.ComponentOf(key)
		c2 := a.ComponentOf(key)
		return c1 == c2 && c1 >= 0 && int(c1) < 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureMovesFewNodes(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(8))
	e := newPopulation(t, 2000, 3)
	a.AssignAll(e)
	before := make([]view.ComponentID, 2000)
	for slot := 0; slot < 2000; slot++ {
		before[slot] = e.Node(slot).Profile.Comp
	}
	// Add a 9th ring: rendezvous hashing should move roughly 1/9 of the
	// population and leave everyone else in place.
	if err := a.Reconfigure(e, ringsTopo(9)); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for slot := 0; slot < 2000; slot++ {
		p := e.Node(slot).Profile
		if p.Epoch != 1 {
			t.Fatalf("epoch not bumped: %d", p.Epoch)
		}
		if p.Comp != before[slot] {
			moved++
		}
	}
	frac := float64(moved) / 2000
	if frac < 0.05 || frac > 0.20 {
		t.Fatalf("reconfiguration moved %.1f%% of nodes, want ~11%%", frac*100)
	}
}

func TestAssignJoinAndLeave(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	e := newPopulation(t, 90, 5)
	a.AssignAll(e)
	slots := e.AddNodes(1)
	n := e.Node(slots[0])
	n.Profile.Key = e.Rand().Uint64()
	a.AssignJoin(n)
	if n.Profile.Comp < 0 || n.Profile.Comp > 2 {
		t.Fatalf("join got component %d", n.Profile.Comp)
	}
	// The join index continues after the densely assigned ones.
	for _, slot := range e.AliveSlots() {
		p := e.Node(slot).Profile
		if p.Comp == n.Profile.Comp && slot != slots[0] && p.Index >= n.Profile.Index {
			t.Fatalf("join index %d not beyond existing %d", n.Profile.Index, p.Index)
		}
	}
	sizeBefore := a.sizes[n.Profile.Comp]
	a.NoteLeave(n)
	if a.sizes[n.Profile.Comp] != sizeBefore-1 {
		t.Fatal("NoteLeave did not decrement size")
	}
}

func TestLinkSides(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	sides := a.Sides()
	if len(sides) != 6 {
		t.Fatalf("sides = %d, want 6 (two per link)", len(sides))
	}
	// Link 0: raa.head <-> rba.tail.
	s0, s1 := sides[0], sides[1]
	if s0.Comp != 0 || s0.Port != 0 || s0.RemoteComp != 1 || s0.RemotePort != 1 {
		t.Fatalf("side 0 = %+v", s0)
	}
	if s1.Comp != 1 || s1.Port != 1 || s1.RemoteComp != 0 || s1.RemotePort != 0 {
		t.Fatalf("side 1 = %+v", s1)
	}
	// Every component of the cycle is endpoint of exactly 2 sides.
	for c := view.ComponentID(0); c < 3; c++ {
		if got := len(a.SidesOf(c)); got != 2 {
			t.Fatalf("component %d has %d sides, want 2", c, got)
		}
	}
	if a.Ports(0) != 2 {
		t.Fatalf("Ports(0) = %d, want 2", a.Ports(0))
	}
	if a.Ports(-1) != 0 || a.SidesOf(-1) != nil {
		t.Fatal("out-of-range component should be empty")
	}
}

func TestHashHelpers(t *testing.T) {
	if fnv1a(1, 2) == fnv1a(2, 1) {
		t.Fatal("fnv1a should be order-sensitive")
	}
	if fnv1a(7) != fnv1a(7) {
		t.Fatal("fnv1a must be deterministic")
	}
	for _, h := range []uint64{0, 1, ^uint64(0), 12345} {
		u := hash01(h)
		if u <= 0 || u >= 1 {
			t.Fatalf("hash01(%d) = %f outside (0,1)", h, u)
		}
	}
	if mix01(1, 2) == mix01(2, 1) {
		t.Fatal("mix01 should be asymmetric (pairwise diversity)")
	}
	if m := mix01(42, 42); m < 0 || m >= 1 {
		t.Fatalf("mix01 out of range: %f", m)
	}
}

// Property: weighted rendezvous respects weights within sampling noise.
func TestRendezvousProportionality(t *testing.T) {
	topo := &spec.Topology{
		Components: []spec.Component{
			{Name: "small", Shape: "ring", Weight: 1},
			{Name: "big", Shape: "ring", Weight: 4},
		},
	}
	a, err := NewAllocator(topo)
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if a.ComponentOf(splitmix64(uint64(i))) == 1 {
			big++
		}
	}
	// Expect 4/5 = 0.8 within a few percent.
	frac := float64(big) / n
	if frac < 0.76 || frac > 0.84 {
		t.Fatalf("big component got %.3f of nodes, want ~0.8", frac)
	}
}

func TestElectionScoreDistinguishesPorts(t *testing.T) {
	a := electionScore(1, 0, 0, 42)
	b := electionScore(1, 1, 0, 42)
	c := electionScore(2, 0, 0, 42)
	d := electionScore(1, 0, 1, 42)
	if a == b || a == c || a == d {
		t.Fatal("election scores must vary with port, component, epoch")
	}
}

// killComp kills n alive members of component c (in slot order) and routes
// the departures through the allocator, mirroring what System.Kill does at
// the serial round barrier minus the flush.
func killComp(t *testing.T, a *Allocator, e *sim.Engine, c view.ComponentID, n int) {
	t.Helper()
	killed := 0
	for _, slot := range e.AliveSlots() {
		if killed == n {
			return
		}
		node := e.Node(slot)
		if node.Profile.Comp != c {
			continue
		}
		a.NoteLeave(node)
		e.Kill(slot)
		killed++
	}
	if killed != n {
		t.Fatalf("killed %d of %d requested in component %d", killed, n, c)
	}
}

// oracleRanks computes the dense position every alive member of c holds
// when survivors are ranked by (Index, ID) — the ordering the oracle uses
// to pick target-shape members.
func oracleRanks(e *sim.Engine, c view.ComponentID) map[int]int32 {
	var ms []*sim.Node
	for _, slot := range e.AliveSlots() {
		if n := e.Node(slot); n.Profile.Comp == c {
			ms = append(ms, n)
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Profile.Index != ms[j].Profile.Index {
			return ms[i].Profile.Index < ms[j].Profile.Index
		}
		return ms[i].ID < ms[j].ID
	})
	out := make(map[int]int32, len(ms))
	for i, n := range ms {
		out[n.Slot] = int32(i)
	}
	return out
}

// TestDenseMatchesOracleRanks is the tentpole's correctness core: after
// any number of unreplaced deaths, Dense must translate every survivor's
// sparse index to exactly the dense position the oracle assigns it.
func TestDenseMatchesOracleRanks(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	e := newPopulation(t, 90, 7)
	a.AssignAll(e)
	const c = view.ComponentID(1)
	for kills := 0; kills < 20; kills++ {
		want := oracleRanks(e, c)
		for slot, rank := range want {
			p := a.Dense(e.Node(slot).Profile)
			if p.Index != rank {
				t.Fatalf("after %d kills: slot %d dense index = %d, oracle rank = %d", kills, slot, p.Index, rank)
			}
			if int(p.Size) != len(want) {
				t.Fatalf("after %d kills: slot %d dense size = %d, alive = %d", kills, slot, p.Size, len(want))
			}
		}
		killComp(t, a, e, c, 1)
		a.FlushRanks()
	}
}

// TestDenseIdentityWhenDisabled pins the escape hatch: with healing off,
// Dense returns profiles untouched and MaybeHeal never fires.
func TestDenseIdentityWhenDisabled(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	a.SetHealing(false)
	e := newPopulation(t, 90, 7)
	a.AssignAll(e)
	killComp(t, a, e, 0, 20)
	a.FlushRanks()
	if n := a.MaybeHeal(e); n != 0 {
		t.Fatalf("MaybeHeal healed %d components with healing disabled", n)
	}
	for _, slot := range e.AliveSlots() {
		p := e.Node(slot).Profile
		if got := a.Dense(p); got != p {
			t.Fatalf("Dense(%v) = %v with healing disabled, want identity", p, got)
		}
	}
	if a.HealsTotal() != 0 {
		t.Fatalf("HealsTotal = %d with healing disabled", a.HealsTotal())
	}
}

// TestMaybeHealThreshold pins the trigger: a component re-densifies only
// once its vacancy count exceeds max(4, size/4), and the repair compacts
// the index space in (Index, ID) order without an epoch bump.
func TestMaybeHealThreshold(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	e := newPopulation(t, 90, 7)
	a.AssignAll(e)
	const c = view.ComponentID(2)
	epoch := a.Epoch()

	// Walk kills up to the threshold: size ~30, so the trigger needs
	// len(freeIndex) > max(4, size/4). Track it against the live size.
	kills := 0
	for {
		threshold := healThreshold(a.sizes[c])
		if len(a.freeIndex[c]) >= threshold {
			break
		}
		killComp(t, a, e, c, 1)
		a.FlushRanks()
		kills++
		if kills > 30 {
			t.Fatal("never reached the heal threshold")
		}
	}
	if n := a.MaybeHeal(e); n != 0 {
		t.Fatalf("healed %d components at the threshold boundary (vacancies == threshold must not trigger)", n)
	}

	// One more death crosses it.
	killComp(t, a, e, c, 1)
	a.FlushRanks()
	want := oracleRanks(e, c)
	if n := a.MaybeHeal(e); n != 1 {
		t.Fatalf("healed %d components past the threshold, want 1", n)
	}
	if a.HealsTotal() != 1 {
		t.Fatalf("HealsTotal = %d after one repair", a.HealsTotal())
	}
	if len(a.freeIndex[c]) != 0 {
		t.Fatalf("freeIndex not drained by the repair: %v", a.freeIndex[c])
	}
	if a.Epoch() != epoch {
		t.Fatalf("repair bumped the epoch %d -> %d; re-densify must not invalidate descriptors", epoch, a.Epoch())
	}
	// The new sparse indices are exactly the previous dense ranks, so the
	// repair was pure bookkeeping for the gradient.
	for slot, rank := range want {
		p := e.Node(slot).Profile
		if p.Index != rank {
			t.Fatalf("slot %d re-densified to index %d, previous dense rank %d", slot, p.Index, rank)
		}
		if int(p.Size) != len(want) {
			t.Fatalf("slot %d re-densified size %d, alive %d", slot, p.Size, len(want))
		}
		if got := a.Dense(p); got != p {
			t.Fatalf("post-repair Dense(%v) = %v, want identity on a dense component", p, got)
		}
	}
}

// TestDenseStaleAndJoinProfiles pins the translation edges: stale-epoch
// profiles pass through untouched, and a just-joined index beyond the
// rank table translates by subtracting the tracked vacancy count.
func TestDenseStaleAndJoinProfiles(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	e := newPopulation(t, 90, 7)
	a.AssignAll(e)
	const c = view.ComponentID(0)
	killComp(t, a, e, c, 3)
	a.FlushRanks()

	stale := e.Node(e.AliveSlots()[0]).Profile
	stale.Epoch++
	if got := a.Dense(stale); got != stale {
		t.Fatalf("Dense(%v) = %v on a foreign epoch, want identity", stale, got)
	}

	// A join lands past the dense prefix; before the next flush its index
	// is beyond the rank table and must still translate densely.
	slots := e.AddNodes(1)
	n := e.Node(slots[0])
	n.Profile.Key = e.Rand().Uint64()
	a.AssignJoin(n)
	if n.Profile.Comp == c {
		vac := int32(len(a.freeIndex[c]))
		if got := a.Dense(n.Profile); got.Index != n.Profile.Index-vac {
			t.Fatalf("join Dense index = %d, want %d", got.Index, n.Profile.Index-vac)
		}
	}
}
