package core

import (
	"math"
	"testing"
	"testing/quick"

	"sosf/internal/sim"
	"sosf/internal/spec"
	"sosf/internal/view"
)

// ringsTopo builds a k-ring topology where consecutive rings are linked
// head-to-tail (the paper's ring-of-rings).
func ringsTopo(k int) *spec.Topology {
	t := &spec.Topology{Name: "ring-of-rings"}
	for i := 0; i < k; i++ {
		t.Components = append(t.Components, spec.Component{
			Name: compName(i), Shape: "ring", Weight: 1,
			Ports: []string{"head", "tail"},
		})
	}
	for i := 0; i < k; i++ {
		t.Links = append(t.Links, spec.Link{
			A: spec.PortRef{Component: compName(i), Port: "head"},
			B: spec.PortRef{Component: compName((i + 1) % k), Port: "tail"},
		})
	}
	return t
}

func compName(i int) string {
	return "r" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func newPopulation(t *testing.T, n int, seed int64) *sim.Engine {
	t.Helper()
	e := sim.New(seed)
	e.Register(&nopProtocol{})
	for _, slot := range e.AddNodes(n) {
		e.Node(slot).Profile.Key = e.Rand().Uint64()
	}
	return e
}

type nopProtocol struct{}

func (*nopProtocol) Name() string                  { return "nop" }
func (*nopProtocol) InitNode(e *sim.Engine, s int) {}
func (*nopProtocol) Refresh(ctx *sim.Ctx)          {}
func (*nopProtocol) Plan(ctx *sim.Ctx)             {}
func (*nopProtocol) Absorb(ctx *sim.Ctx)           {}

func TestAllocatorRejectsInvalidTopology(t *testing.T) {
	if _, err := NewAllocator(&spec.Topology{}); err == nil {
		t.Fatal("empty topology should be rejected")
	}
}

func TestAssignAllDenseAndProportional(t *testing.T) {
	topo := ringsTopo(4)
	topo.Components[0].Weight = 3 // 3/6 of nodes
	a, err := NewAllocator(topo)
	if err != nil {
		t.Fatal(err)
	}
	e := newPopulation(t, 1200, 1)
	a.AssignAll(e)

	counts := make([]int, 4)
	maxIdx := make([]int32, 4)
	for _, slot := range e.AliveSlots() {
		p := e.Node(slot).Profile
		counts[p.Comp]++
		if p.Index > maxIdx[p.Comp] {
			maxIdx[p.Comp] = p.Index
		}
		if p.Epoch != 0 {
			t.Fatalf("epoch = %d, want 0", p.Epoch)
		}
	}
	// Component 0 has weight 3 of total 6: expect ~600 of 1200 ±10%.
	if math.Abs(float64(counts[0])-600) > 60 {
		t.Fatalf("weighted component got %d nodes, want ~600", counts[0])
	}
	for c := 1; c < 4; c++ {
		if math.Abs(float64(counts[c])-200) > 60 {
			t.Fatalf("component %d got %d nodes, want ~200", c, counts[c])
		}
	}
	// Indices must be dense 0..size-1.
	for c := 0; c < 4; c++ {
		if int(maxIdx[c]) != counts[c]-1 {
			t.Fatalf("component %d: max index %d for %d members", c, maxIdx[c], counts[c])
		}
	}
	// Sizes stamped into profiles must match.
	for _, slot := range e.AliveSlots() {
		p := e.Node(slot).Profile
		if int(p.Size) != counts[p.Comp] {
			t.Fatalf("profile size %d != component size %d", p.Size, counts[p.Comp])
		}
	}
}

func TestAssignmentDeterministic(t *testing.T) {
	topo := ringsTopo(5)
	a1, _ := NewAllocator(topo)
	a2, _ := NewAllocator(ringsTopo(5))
	e1 := newPopulation(t, 300, 7)
	e2 := newPopulation(t, 300, 7)
	a1.AssignAll(e1)
	a2.AssignAll(e2)
	for slot := 0; slot < 300; slot++ {
		if e1.Node(slot).Profile != e2.Node(slot).Profile {
			t.Fatalf("slot %d: %v != %v", slot, e1.Node(slot).Profile, e2.Node(slot).Profile)
		}
	}
}

// Property: rendezvous assignment is stable — a node's component depends
// only on its key and the component list, not on the rest of the
// population.
func TestComponentOfStable(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(6))
	f := func(key uint64) bool {
		c1 := a.ComponentOf(key)
		c2 := a.ComponentOf(key)
		return c1 == c2 && c1 >= 0 && int(c1) < 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureMovesFewNodes(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(8))
	e := newPopulation(t, 2000, 3)
	a.AssignAll(e)
	before := make([]view.ComponentID, 2000)
	for slot := 0; slot < 2000; slot++ {
		before[slot] = e.Node(slot).Profile.Comp
	}
	// Add a 9th ring: rendezvous hashing should move roughly 1/9 of the
	// population and leave everyone else in place.
	if err := a.Reconfigure(e, ringsTopo(9)); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for slot := 0; slot < 2000; slot++ {
		p := e.Node(slot).Profile
		if p.Epoch != 1 {
			t.Fatalf("epoch not bumped: %d", p.Epoch)
		}
		if p.Comp != before[slot] {
			moved++
		}
	}
	frac := float64(moved) / 2000
	if frac < 0.05 || frac > 0.20 {
		t.Fatalf("reconfiguration moved %.1f%% of nodes, want ~11%%", frac*100)
	}
}

func TestAssignJoinAndLeave(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	e := newPopulation(t, 90, 5)
	a.AssignAll(e)
	slots := e.AddNodes(1)
	n := e.Node(slots[0])
	n.Profile.Key = e.Rand().Uint64()
	a.AssignJoin(n)
	if n.Profile.Comp < 0 || n.Profile.Comp > 2 {
		t.Fatalf("join got component %d", n.Profile.Comp)
	}
	// The join index continues after the densely assigned ones.
	for _, slot := range e.AliveSlots() {
		p := e.Node(slot).Profile
		if p.Comp == n.Profile.Comp && slot != slots[0] && p.Index >= n.Profile.Index {
			t.Fatalf("join index %d not beyond existing %d", n.Profile.Index, p.Index)
		}
	}
	sizeBefore := a.sizes[n.Profile.Comp]
	a.NoteLeave(n)
	if a.sizes[n.Profile.Comp] != sizeBefore-1 {
		t.Fatal("NoteLeave did not decrement size")
	}
}

func TestLinkSides(t *testing.T) {
	a, _ := NewAllocator(ringsTopo(3))
	sides := a.Sides()
	if len(sides) != 6 {
		t.Fatalf("sides = %d, want 6 (two per link)", len(sides))
	}
	// Link 0: raa.head <-> rba.tail.
	s0, s1 := sides[0], sides[1]
	if s0.Comp != 0 || s0.Port != 0 || s0.RemoteComp != 1 || s0.RemotePort != 1 {
		t.Fatalf("side 0 = %+v", s0)
	}
	if s1.Comp != 1 || s1.Port != 1 || s1.RemoteComp != 0 || s1.RemotePort != 0 {
		t.Fatalf("side 1 = %+v", s1)
	}
	// Every component of the cycle is endpoint of exactly 2 sides.
	for c := view.ComponentID(0); c < 3; c++ {
		if got := len(a.SidesOf(c)); got != 2 {
			t.Fatalf("component %d has %d sides, want 2", c, got)
		}
	}
	if a.Ports(0) != 2 {
		t.Fatalf("Ports(0) = %d, want 2", a.Ports(0))
	}
	if a.Ports(-1) != 0 || a.SidesOf(-1) != nil {
		t.Fatal("out-of-range component should be empty")
	}
}

func TestHashHelpers(t *testing.T) {
	if fnv1a(1, 2) == fnv1a(2, 1) {
		t.Fatal("fnv1a should be order-sensitive")
	}
	if fnv1a(7) != fnv1a(7) {
		t.Fatal("fnv1a must be deterministic")
	}
	for _, h := range []uint64{0, 1, ^uint64(0), 12345} {
		u := hash01(h)
		if u <= 0 || u >= 1 {
			t.Fatalf("hash01(%d) = %f outside (0,1)", h, u)
		}
	}
	if mix01(1, 2) == mix01(2, 1) {
		t.Fatal("mix01 should be asymmetric (pairwise diversity)")
	}
	if m := mix01(42, 42); m < 0 || m >= 1 {
		t.Fatalf("mix01 out of range: %f", m)
	}
}

// Property: weighted rendezvous respects weights within sampling noise.
func TestRendezvousProportionality(t *testing.T) {
	topo := &spec.Topology{
		Components: []spec.Component{
			{Name: "small", Shape: "ring", Weight: 1},
			{Name: "big", Shape: "ring", Weight: 4},
		},
	}
	a, err := NewAllocator(topo)
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if a.ComponentOf(splitmix64(uint64(i))) == 1 {
			big++
		}
	}
	// Expect 4/5 = 0.8 within a few percent.
	frac := float64(big) / n
	if frac < 0.76 || frac > 0.84 {
		t.Fatalf("big component got %.3f of nodes, want ~0.8", frac)
	}
}

func TestElectionScoreDistinguishesPorts(t *testing.T) {
	a := electionScore(1, 0, 0, 42)
	b := electionScore(1, 1, 0, 42)
	c := electionScore(2, 0, 0, 42)
	d := electionScore(1, 0, 1, 42)
	if a == b || a == c || a == d {
		t.Fatal("election scores must vary with port, component, epoch")
	}
}
