package core

import (
	"testing"
	"testing/quick"

	"sosf/internal/view"
)

func TestPortRecordBetter(t *testing.T) {
	inv := invalidRecord()
	a := PortRecord{Score: 5, ID: 1}
	b := PortRecord{Score: 5, ID: 2}
	c := PortRecord{Score: 9, ID: 0}
	cases := []struct {
		r, other PortRecord
		want     bool
	}{
		{a, inv, true},
		{inv, a, false},
		{inv, inv, false},
		{a, b, true},  // tie on score, lower ID wins
		{b, a, false}, // symmetric
		{a, c, true},  // lower score wins regardless of ID
		{c, a, false},
		{a, a, false}, // never strictly better than itself
	}
	for i, tc := range cases {
		if got := tc.r.Better(tc.other); got != tc.want {
			t.Fatalf("case %d: Better(%v, %v) = %v, want %v", i, tc.r, tc.other, got, tc.want)
		}
	}
}

// Property: Better is a strict total order over valid records with
// distinct (score, id) pairs: exactly one of Better(a,b), Better(b,a)
// holds.
func TestBetterTotalOrder(t *testing.T) {
	f := func(s1, s2 uint32, id1, id2 uint8) bool {
		a := PortRecord{Score: uint64(s1), ID: view.NodeID(id1)}
		b := PortRecord{Score: uint64(s2), ID: view.NodeID(id2)}
		if a.Score == b.Score && a.ID == b.ID {
			return !a.Better(b) && !b.Better(a)
		}
		return a.Better(b) != b.Better(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRecordsRules(t *testing.T) {
	const now, ttl = 50, 20
	better := PortRecord{Score: 1, ID: 10, Stamp: 45}
	worse := PortRecord{Score: 9, ID: 20, Stamp: 49}
	stale := PortRecord{Score: 0, ID: 30, Stamp: 10} // best score but expired

	dst := []PortRecord{worse, invalidRecord(), better}
	src := []PortRecord{better, stale, PortRecord{Score: 1, ID: 10, Stamp: 48}}
	mergeRecords(dst, src, now, ttl)

	if dst[0] != better {
		t.Fatalf("slot 0: better claim should win, got %v", dst[0])
	}
	if dst[1].Valid() {
		t.Fatalf("slot 1: expired claim must not be adopted, got %v", dst[1])
	}
	if dst[2].Stamp != 48 {
		t.Fatalf("slot 2: same claim should keep freshest stamp, got %v", dst[2])
	}
}

func TestMergeRecordsLengthMismatch(t *testing.T) {
	dst := []PortRecord{invalidRecord(), invalidRecord()}
	src := []PortRecord{{Score: 1, ID: 1, Stamp: 1}}
	mergeRecords(dst, src, 1, 20) // must not panic
	if !dst[0].Valid() || dst[1].Valid() {
		t.Fatalf("mismatched merge: %v", dst)
	}
}

func TestAdoptBelief(t *testing.T) {
	r := invalidRecord()
	first := PortRecord{Score: 7, ID: 3, Stamp: 5}
	adoptBelief(&r, first)
	if r != first {
		t.Fatalf("first answer should be adopted: %v", r)
	}
	adoptBelief(&r, PortRecord{Score: 7, ID: 3, Stamp: 9})
	if r.Stamp != 9 {
		t.Fatalf("fresher stamp should refresh: %v", r)
	}
	adoptBelief(&r, PortRecord{Score: 7, ID: 3, Stamp: 2})
	if r.Stamp != 9 {
		t.Fatalf("staler stamp must not regress: %v", r)
	}
	adoptBelief(&r, PortRecord{Score: 2, ID: 8, Stamp: 1})
	if r.ID != 8 {
		t.Fatalf("better claim should replace: %v", r)
	}
}

func TestBeliefOutOfRange(t *testing.T) {
	s, err := NewSystem(Config{Topology: ringsTopo(2), Nodes: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Ports().Belief(0, 99); got.Valid() {
		t.Fatalf("out-of-range port should be invalid, got %v", got)
	}
	if got := s.Conns().Remote(0, 99); got.Valid() {
		t.Fatalf("out-of-range side should be invalid, got %v", got)
	}
}

func TestPortSelectConvergesToOracleWinner(t *testing.T) {
	s, err := NewSystem(Config{Topology: ringsTopo(2), Nodes: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(s, true)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !tr.History[len(tr.History)-1].Converged(SubPortSelect) {
		t.Fatal("port selection did not converge")
	}
	// The elected manager is deterministic: lowest election score of the
	// alive membership, independent of gossip order.
	members := s.Oracle().compMembers()
	for c, ms := range members {
		for port := int32(0); port < 2; port++ {
			w1, _ := s.Oracle().Winner(ms, view.ComponentID(c), port)
			w2, _ := s.Oracle().Winner(ms, view.ComponentID(c), port)
			if w1.ID != w2.ID {
				t.Fatal("oracle winner not deterministic")
			}
		}
	}
}

func TestSameComponentLink(t *testing.T) {
	// A component linked to itself through two different ports: port
	// connection resolves it locally (port selection already gossips all
	// component ports), so the "link" must converge like any other.
	topo := ringsTopo(1) // 1 ring: link rings[0].head -> rings[0].tail
	s, err := NewSystem(Config{Topology: topo, Nodes: 80, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(s, true)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	final := tr.History[len(tr.History)-1]
	if !final.Converged(SubPortConnect) {
		t.Fatalf("same-component link did not converge: %f", final.Fraction[SubPortConnect])
	}
}
