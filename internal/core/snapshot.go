package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"sosf/internal/peersampling"
	"sosf/internal/snap"
	"sosf/internal/spec"
)

// systemSnapKind tags full-system snapshots (engine + allocator + active
// topology + behavior-defining configuration). Bumped "system" → "system2"
// when the self-healing layer landed: the allocator section grew a heal
// counter and the embedded config a no_heal knob, so pre-healing snapshots
// are rejected instead of being misread.
const systemSnapKind = "system2"

// snapConfig is Config minus the Topology pointer, for JSON embedding in a
// snapshot. Every field here changes protocol behavior, so Restore verifies
// them against the restoring system's configuration: resuming under
// different knobs would silently diverge from the uninterrupted run.
type snapConfig struct {
	RPS           peersampling.Options `json:"rps"`
	UO1Capacity   int                  `json:"uo1_capacity"`
	OverlayGossip int                  `json:"overlay_gossip"`
	OverlayMaxAge int                  `json:"overlay_max_age"`
	UO2MaxAge     int                  `json:"uo2_max_age"`
	PortTTL       int                  `json:"port_ttl"`
	DisableUO2    bool                 `json:"disable_uo2"`
	PureGreedy    bool                 `json:"pure_greedy"`
	NoHeal        bool                 `json:"no_heal"`
	Nodes         int                  `json:"nodes"`
	Seed          int64                `json:"seed"`
}

func snapConfigOf(cfg Config) snapConfig {
	return snapConfig{
		RPS:           cfg.RPS,
		UO1Capacity:   cfg.UO1Capacity,
		OverlayGossip: cfg.OverlayGossip,
		OverlayMaxAge: cfg.OverlayMaxAge,
		UO2MaxAge:     cfg.UO2MaxAge,
		PortTTL:       cfg.PortTTL,
		DisableUO2:    cfg.DisableUO2,
		PureGreedy:    cfg.PureGreedy,
		NoHeal:        cfg.DisableHealing,
		Nodes:         cfg.Nodes,
		Seed:          cfg.Seed,
	}
}

// behaviorEqual compares the knobs that shape protocol behavior. Nodes and
// Seed are informational (the restored engine state is authoritative for
// both), so they are excluded.
func (c snapConfig) behaviorEqual(o snapConfig) bool {
	c.Nodes, o.Nodes = 0, 0
	c.Seed, o.Seed = 0, 0
	return c == o
}

// Snapshot serializes the full system — effective configuration, the
// *active* topology (which differs from the boot topology after a
// Reconfigure), allocator bookkeeping, and the complete engine state — so
// that Restore on a compatible system resumes the run byte-identically.
// Call it between rounds only.
func (s *System) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Header(systemSnapKind)

	cfgJSON, err := json.Marshal(snapConfigOf(s.cfg))
	if err != nil {
		return fmt.Errorf("core: snapshot config: %w", err)
	}
	sw.Bytes(cfgJSON)

	// The active topology travels without its scenario: timelines belong
	// to the embedding layer (they are re-bound from source on resume),
	// and reconfigure targets nested inside events must not recurse here.
	topo := *s.alloc.Topology()
	topo.Scenario = nil
	topoJSON, err := json.Marshal(&topo)
	if err != nil {
		return fmt.Errorf("core: snapshot topology: %w", err)
	}
	sw.Bytes(topoJSON)

	s.alloc.snapshot(sw)
	if err := s.eng.SnapshotState(sw); err != nil {
		return err
	}
	return sw.Err()
}

// Restore rebuilds the system's state from a Snapshot stream. The receiving
// system must have been built with the same behavior-defining configuration
// (protocol knobs, UO2 ablation); population, topology, epoch, RNG position
// and all per-node protocol state are replaced by the snapshot's. Worker
// configuration is untouched — resuming at a different worker count yields
// the same results.
func (s *System) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	sr.Header(systemSnapKind)
	if err := s.restoreBody(sr); err != nil {
		return err
	}
	return sr.Err()
}

// restoreBody decodes everything after the header (shared with the sosf
// layer, which appends its own trailer to the same stream).
func (s *System) restoreBody(sr *snap.Reader) error {
	cfgJSON := sr.Bytes()
	topoJSON := sr.Bytes()
	if err := sr.Err(); err != nil {
		return err
	}

	var snapCfg snapConfig
	if err := json.Unmarshal(cfgJSON, &snapCfg); err != nil {
		return fmt.Errorf("core: restore config: %w", err)
	}
	if have := snapConfigOf(s.cfg); !have.behaviorEqual(snapCfg) {
		return fmt.Errorf("core: snapshot was taken under different protocol configuration (snapshot %+v, system %+v)", snapCfg, have)
	}

	topo := new(spec.Topology)
	if err := json.Unmarshal(topoJSON, topo); err != nil {
		return fmt.Errorf("core: restore topology: %w", err)
	}
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("core: restore topology: %w", err)
	}

	if err := s.alloc.restore(sr, topo); err != nil {
		return err
	}
	return s.eng.RestoreState(sr)
}

// RestoreSystem builds a fresh system directly from a Snapshot stream: the
// embedded configuration and active topology boot the stack, then the
// snapshot state replaces the bootstrapped population. workers overrides the
// intra-round worker count (0 keeps rounds serial; it never changes
// results). This is what warm-start tooling (`sosbench -resume`) uses when
// no DSL source is around.
func RestoreSystem(r io.Reader, workers int) (*System, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	sr := snap.NewReader(bytes.NewReader(data))
	sr.Header(systemSnapKind)
	var snapCfg snapConfig
	if err := json.Unmarshal(sr.Bytes(), &snapCfg); err != nil {
		return nil, fmt.Errorf("core: restore config: %w", err)
	}
	topo := new(spec.Topology)
	if err := json.Unmarshal(sr.Bytes(), topo); err != nil {
		return nil, fmt.Errorf("core: restore topology: %w", err)
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	sys, err := NewSystem(Config{
		Topology:       topo,
		Nodes:          snapCfg.Nodes,
		Seed:           snapCfg.Seed,
		Workers:        workers,
		RPS:            snapCfg.RPS,
		UO1Capacity:    snapCfg.UO1Capacity,
		OverlayGossip:  snapCfg.OverlayGossip,
		OverlayMaxAge:  snapCfg.OverlayMaxAge,
		UO2MaxAge:      snapCfg.UO2MaxAge,
		PortTTL:        snapCfg.PortTTL,
		DisableUO2:     snapCfg.DisableUO2,
		PureGreedy:     snapCfg.PureGreedy,
		DisableHealing: snapCfg.NoHeal,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Restore(bytes.NewReader(data)); err != nil {
		return nil, err
	}
	return sys, nil
}

// snapshot serializes the allocator's mutable bookkeeping. The structural
// parts (shapes, sides, port counts) are derived from the topology, which
// the system snapshot carries separately.
func (a *Allocator) snapshot(w *snap.Writer) {
	w.U32(a.epoch)
	w.U64(a.healsTotal)
	w.Len(len(a.nextIndex))
	for c := range a.nextIndex {
		w.Varint(int64(a.nextIndex[c]))
		w.Varint(int64(a.sizes[c]))
		w.Len(len(a.freeIndex[c]))
		for _, idx := range a.freeIndex[c] {
			w.Varint(int64(idx))
		}
	}
}

// restore installs the active topology and rebuilds the allocator's
// bookkeeping from a snapshot. The dense-rank tables are derived state, so
// they are rebuilt from the restored freeIndex lists rather than carried
// in the stream — this is what keeps resume-equivalence byte-identical
// even for a snapshot taken mid-heal.
func (a *Allocator) restore(r *snap.Reader, topo *spec.Topology) error {
	epoch := r.U32()
	heals := r.U64()
	ncomps := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if ncomps != len(topo.Components) {
		return fmt.Errorf("core: allocator snapshot covers %d components, topology has %d", ncomps, len(topo.Components))
	}
	if err := a.install(topo); err != nil {
		return err
	}
	a.epoch = epoch
	a.healsTotal = heals
	for c := 0; c < ncomps; c++ {
		a.nextIndex[c] = int32(r.Varint())
		a.sizes[c] = int32(r.Varint())
		nfree := r.Len()
		if err := r.Err(); err != nil {
			return err
		}
		free := make([]int32, nfree)
		for i := range free {
			free[i] = int32(r.Varint())
		}
		a.freeIndex[c] = free
		a.refreshRanksComp(c)
	}
	return r.Err()
}
