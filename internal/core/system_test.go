package core

import (
	"testing"

	"sosf/internal/spec"
	"sosf/internal/view"
)

// newRingOfRings builds a small converged-ready system.
func newRingOfRings(t *testing.T, rings, nodes int, seed int64) *System {
	t.Helper()
	s, err := NewSystem(Config{Topology: ringsTopo(rings), Nodes: nodes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("missing topology should fail")
	}
	if _, err := NewSystem(Config{Topology: ringsTopo(3)}); err != ErrNoPopulation {
		t.Fatalf("missing population: err = %v", err)
	}
	if _, err := NewSystem(Config{Topology: ringsTopo(5), Nodes: 3}); err == nil {
		t.Fatal("too few nodes should fail")
	}
	// Population via topology option.
	topo := ringsTopo(2)
	topo.SetOption("nodes", 50)
	s, err := NewSystem(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine().AliveCount() != 50 {
		t.Fatalf("alive = %d, want 50", s.Engine().AliveCount())
	}
}

func TestRingOfRingsConverges(t *testing.T) {
	s := newRingOfRings(t, 3, 240, 1)
	tr := NewTracker(s, true)
	rounds, err := s.Run(80)
	if err != nil {
		t.Fatal(err)
	}
	final := tr.History[len(tr.History)-1]
	if !final.AllConverged() {
		t.Fatalf("not converged after %d rounds: %+v", rounds, final.Fraction)
	}
	for _, sub := range Subs() {
		r := tr.ConvergenceRound(sub)
		if r < 1 || r > rounds {
			t.Fatalf("%s converged at %d", sub, r)
		}
	}
	// The realized system graph must be one connected piece: rings glued
	// by their links.
	g := s.Oracle().RealizedGraph()
	alive := s.Engine().AliveSlots()
	if !g.ConnectedOver(alive) {
		t.Fatal("realized ring-of-rings is not connected")
	}
}

func TestMetricsMonotoneEnough(t *testing.T) {
	// Accuracy curves are stochastic but must rise from ~0 to 1.
	s := newRingOfRings(t, 3, 150, 2)
	tr := NewTracker(s, true)
	if _, err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	first := tr.History[0]
	last := tr.History[len(tr.History)-1]
	if first.Fraction[SubElementary] >= 1.0 {
		t.Fatal("round 1 should not already be fully converged")
	}
	if first.Fraction[SubElementary] > last.Fraction[SubElementary] {
		t.Fatalf("elementary accuracy decreased: %f -> %f",
			first.Fraction[SubElementary], last.Fraction[SubElementary])
	}
	if !last.AllConverged() {
		t.Fatalf("final metrics not converged: %+v", last.Fraction)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []Metrics {
		s := newRingOfRings(t, 3, 120, 99)
		tr := NewTracker(s, false)
		if _, err := s.Run(15); err != nil {
			t.Fatal(err)
		}
		return tr.History
	}
	a, b := run(), run()
	for i := range a {
		for _, sub := range Subs() {
			if a[i].Fraction[sub] != b[i].Fraction[sub] {
				t.Fatalf("round %d %s: %f != %f", i, sub, a[i].Fraction[sub], b[i].Fraction[sub])
			}
		}
	}
}

func TestPortManagersAgree(t *testing.T) {
	s := newRingOfRings(t, 4, 200, 3)
	NewTracker(s, true)
	if _, err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	members := s.Oracle().compMembers()
	for c, ms := range members {
		comp := view.ComponentID(c)
		for port := int32(0); port < s.Allocator().Ports(comp); port++ {
			winner, ok := s.Oracle().Winner(ms, comp, port)
			if !ok {
				t.Fatalf("component %d has no members", c)
			}
			for _, n := range ms {
				if got := s.Ports().Belief(n.Slot, port).ID; got != winner.ID {
					t.Fatalf("comp %d port %d: node %d believes %d, winner %d",
						c, port, n.ID, got, winner.ID)
				}
			}
		}
	}
}

func TestManagerFailover(t *testing.T) {
	s := newRingOfRings(t, 2, 100, 4)
	NewTracker(s, true)
	if _, err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	// Kill the manager of component 0, port 0.
	members := s.Oracle().compMembers()
	mgr, _ := s.Oracle().Winner(members[0], 0, 0)
	s.Engine().Kill(mgr.Slot)
	s.Allocator().NoteLeave(mgr)

	tr2 := NewTracker(s, false)
	if _, err := s.Run(3 * s.Config().PortTTL); err != nil {
		t.Fatal(err)
	}
	final := tr2.History[len(tr2.History)-1]
	if !final.Converged(SubPortSelect) {
		t.Fatalf("port selection did not re-elect after manager death: %f",
			final.Fraction[SubPortSelect])
	}
	if !final.Converged(SubPortConnect) {
		t.Fatalf("links did not re-establish after manager death: %f",
			final.Fraction[SubPortConnect])
	}
	newMembers := s.Oracle().compMembers()
	newMgr, _ := s.Oracle().Winner(newMembers[0], 0, 0)
	if newMgr.ID == mgr.ID {
		t.Fatal("oracle winner should change after manager death")
	}
}

func TestReconfigureRingCountReconverges(t *testing.T) {
	s := newRingOfRings(t, 3, 240, 5)
	NewTracker(s, true)
	if _, err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(ringsTopo(4)); err != nil {
		t.Fatal(err)
	}
	if s.Allocator().Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", s.Allocator().Epoch())
	}
	tr := NewTracker(s, true)
	rounds, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.History[len(tr.History)-1].AllConverged() {
		t.Fatalf("did not re-converge within %d rounds after reconfiguration", rounds)
	}
}

func TestReconfigureRejectsInvalid(t *testing.T) {
	s := newRingOfRings(t, 2, 60, 6)
	if err := s.Reconfigure(&spec.Topology{}); err == nil {
		t.Fatal("invalid topology must be rejected")
	}
	if s.Allocator().Epoch() != 0 {
		t.Fatal("failed reconfigure must not bump the epoch")
	}
}

func TestChurnSteadyState(t *testing.T) {
	s := newRingOfRings(t, 2, 200, 7)
	s.Engine().Observe(s.ChurnObserver(0.01, 0, 0))
	tr := NewTracker(s, false)
	if _, err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	// Under 1%/round churn, shape and UO1 accuracy stay high continuously.
	// Port managers, however, are *single nodes*: churn kills one every
	// ~100/port rounds and beliefs stay dark for up to the TTL, so port
	// selection is assessed over a window — it must recover to (near-)
	// perfect between blackouts and keep a reasonable average.
	window := tr.History[len(tr.History)-30:]
	meanPS, maxPS, meanEl, minUO1 := 0.0, 0.0, 0.0, 1.0
	for _, m := range window {
		meanPS += m.Fraction[SubPortSelect]
		if m.Fraction[SubPortSelect] > maxPS {
			maxPS = m.Fraction[SubPortSelect]
		}
		meanEl += m.Fraction[SubElementary]
		if m.Fraction[SubUO1] < minUO1 {
			minUO1 = m.Fraction[SubUO1]
		}
	}
	meanPS /= float64(len(window))
	meanEl /= float64(len(window))
	if meanEl < 0.85 {
		t.Fatalf("mean elementary accuracy %.2f under churn, want >= 0.85", meanEl)
	}
	if minUO1 < 0.70 {
		t.Fatalf("UO1 accuracy dipped to %.2f under churn, want >= 0.70", minUO1)
	}
	if meanPS < 0.5 {
		t.Fatalf("mean port-selection accuracy %.2f under churn, want >= 0.5", meanPS)
	}
	if maxPS < 0.9 {
		t.Fatalf("port selection never recovered within the window: max %.2f", maxPS)
	}
	if s.Engine().AliveCount() != 200 {
		t.Fatalf("population drifted to %d", s.Engine().AliveCount())
	}
}

func TestCatastrophicFailureRecovery(t *testing.T) {
	s := newRingOfRings(t, 2, 200, 8)
	NewTracker(s, true)
	if _, err := s.Run(80); err != nil {
		t.Fatal(err)
	}
	killed := s.Kill(0.5)
	if len(killed) != 100 {
		t.Fatalf("killed %d, want 100", len(killed))
	}
	// Phase 1 — self-healing without any coordination: survivors re-close
	// the rings around the holes (ring gradients tolerate index gaps).
	// Greedy k-nearest can leave the odd cross-hole edge unrealized, so
	// this phase demands near-perfect, not perfect, accuracy.
	tr := NewTracker(s, true)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	final := tr.History[len(tr.History)-1]
	for _, sub := range []Sub{SubPortSelect, SubPortConnect} {
		if !final.Converged(sub) {
			t.Fatalf("%s did not recover after catastrophe: %f", sub, final.Fraction[sub])
		}
	}
	if final.Fraction[SubElementary] < 0.95 {
		t.Fatalf("elementary recovery %.3f, want >= 0.95", final.Fraction[SubElementary])
	}
	// Phase 2 — the runtime's documented healing path: re-running role
	// allocation (a reconfiguration epoch) re-densifies the index space
	// and restores the exact target shape.
	if err := s.Reconfigure(ringsTopo(2)); err != nil {
		t.Fatal(err)
	}
	tr2 := NewTracker(s, true)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !tr2.History[len(tr2.History)-1].AllConverged() {
		t.Fatalf("full recovery after re-allocation failed: %+v",
			tr2.History[len(tr2.History)-1].Fraction)
	}
}

func TestBandwidthClasses(t *testing.T) {
	s := newRingOfRings(t, 3, 150, 9)
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		base, over := s.BandwidthByClass(r)
		if base <= 0 || over <= 0 {
			t.Fatalf("round %d: baseline %d overhead %d", r, base, over)
		}
	}
}

func TestDisableUO2Ablation(t *testing.T) {
	s, err := NewSystem(Config{Topology: ringsTopo(3), Nodes: 150, Seed: 10, DisableUO2: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.UO2() != nil {
		t.Fatal("UO2 should be nil when disabled")
	}
	tr := NewTracker(s, true)
	if _, err := s.Run(120); err != nil {
		t.Fatal(err)
	}
	// Port connection must still work through the RPS fallback (slower).
	final := tr.History[len(tr.History)-1]
	if !final.Converged(SubPortConnect) {
		t.Fatalf("port connection never converged without UO2: %f",
			final.Fraction[SubPortConnect])
	}
}

func TestTrackerReset(t *testing.T) {
	s := newRingOfRings(t, 2, 80, 11)
	tr := NewTracker(s, false)
	if _, err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(tr.History) != 5 {
		t.Fatalf("history = %d, want 5", len(tr.History))
	}
	tr.Reset()
	if len(tr.History) != 0 || tr.ConvergenceRound(SubUO1) != -1 {
		t.Fatal("reset did not clear state")
	}
}

func TestMessageLossStillConverges(t *testing.T) {
	s, err := NewSystem(Config{Topology: ringsTopo(2), Nodes: 120, Seed: 12, LossRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(s, true)
	if _, err := s.Run(150); err != nil {
		t.Fatal(err)
	}
	if !tr.History[len(tr.History)-1].AllConverged() {
		t.Fatal("system should converge under 20% message loss")
	}
}
