package core

import (
	"sort"

	"sosf/internal/graph"
	"sosf/internal/shapes"
	"sosf/internal/sim"
	"sosf/internal/view"
)

// Sub identifies one of the five measured sub-procedures — the exact series
// of the paper's Figures 2 and 3.
type Sub int

// The five measured sub-procedures.
const (
	SubElementary  Sub = iota + 1 // the component shapes themselves
	SubUO1                        // same-component overlay
	SubUO2                        // distant-component overlay
	SubPortSelect                 // port -> manager election
	SubPortConnect                // manager <-> manager links
)

// Subs lists the sub-procedures in presentation order.
func Subs() []Sub {
	return []Sub{SubElementary, SubUO1, SubUO2, SubPortSelect, SubPortConnect}
}

// String implements fmt.Stringer with the paper's series labels.
func (s Sub) String() string {
	switch s {
	case SubElementary:
		return "Elementary Topology"
	case SubUO1:
		return "Same-component (UO1)"
	case SubUO2:
		return "Distant-component (UO2)"
	case SubPortSelect:
		return "Port Selection"
	case SubPortConnect:
		return "Port Connection"
	default:
		return "unknown"
	}
}

// Metrics is one round's snapshot of per-sub-procedure accuracy, each in
// [0, 1] where 1 means fully converged.
type Metrics struct {
	Round    int
	Fraction map[Sub]float64
}

// Converged reports whether the given sub-procedure is at 1.0.
func (m Metrics) Converged(s Sub) bool { return m.Fraction[s] >= 1.0 }

// AllConverged reports whether every sub-procedure is at 1.0.
func (m Metrics) AllConverged() bool {
	for _, s := range Subs() {
		if !m.Converged(s) {
			return false
		}
	}
	return true
}

// Oracle measures ground-truth convergence of every layer. It has global
// knowledge (it is evaluation instrumentation, not part of the protocols):
// it recomputes target adjacencies, election winners and link endpoints
// from the current alive population, exactly like a PeerSim observer.
//
// The oracle runs after every round in tracker-driven experiments, so its
// membership scan reuses scratch storage rather than re-allocating.
type Oracle struct {
	sys *System

	members [][]*sim.Node // compMembers scratch, reused per Measure
	slots   []int         // alive-slot scratch
	sorter  memberSorter
}

// compMembers returns the alive, current-epoch members of every component,
// sorted by (Index, ID) — the dense-rank order shapes are defined over.
// The returned slices are oracle-owned scratch, valid until the next call.
func (o *Oracle) compMembers() [][]*sim.Node {
	s := o.sys
	ncomps := s.alloc.Components()
	if cap(o.members) < ncomps {
		o.members = make([][]*sim.Node, ncomps)
	}
	members := o.members[:ncomps]
	for i := range members {
		members[i] = members[i][:0]
	}
	epoch := s.alloc.Epoch()
	o.slots = s.eng.AliveSlotsAppend(o.slots[:0])
	for _, slot := range o.slots {
		n := s.eng.Node(slot)
		if n.Profile.Epoch != epoch || n.Profile.Comp < 0 ||
			int(n.Profile.Comp) >= len(members) {
			continue
		}
		members[n.Profile.Comp] = append(members[n.Profile.Comp], n)
	}
	for _, ms := range members {
		o.sorter.ms = ms
		sort.Sort(&o.sorter)
		o.sorter.ms = nil
	}
	return members
}

// memberSorter orders nodes by (Index, ID): a total order (IDs are
// unique), so the result is algorithm-independent.
type memberSorter struct{ ms []*sim.Node }

func (s *memberSorter) Len() int      { return len(s.ms) }
func (s *memberSorter) Swap(i, j int) { s.ms[i], s.ms[j] = s.ms[j], s.ms[i] }
func (s *memberSorter) Less(i, j int) bool {
	if s.ms[i].Profile.Index != s.ms[j].Profile.Index {
		return s.ms[i].Profile.Index < s.ms[j].Profile.Index
	}
	return s.ms[i].ID < s.ms[j].ID
}

// Winner returns the ground-truth manager of the given port: the alive
// member with the minimal election score (ties by node ID). ok is false
// for an empty component.
func (o *Oracle) Winner(members []*sim.Node, comp view.ComponentID, port int32) (*sim.Node, bool) {
	var best *sim.Node
	var bestRec PortRecord
	for _, n := range members {
		rec := PortRecord{
			Score: electionScore(comp, port, n.Profile.Epoch, n.ID),
			ID:    n.ID,
		}
		if best == nil || rec.Better(bestRec) {
			best, bestRec = n, rec
		}
	}
	return best, best != nil
}

// Measure computes the five accuracy fractions for the current round.
func (o *Oracle) Measure() Metrics {
	members := o.compMembers()
	m := Metrics{
		Round:    o.sys.eng.Round(),
		Fraction: make(map[Sub]float64, 5),
	}
	m.Fraction[SubElementary] = o.elementary(members)
	m.Fraction[SubUO1] = o.uo1(members)
	m.Fraction[SubUO2] = o.uo2(members)
	m.Fraction[SubPortSelect] = o.portSelect(members)
	m.Fraction[SubPortConnect] = o.portConnect(members)
	return m
}

// elementary is the fraction of target shape edges realized in the union
// of the endpoints' intra-component overlays (core protocol and UO1) — the
// paper defines the realized system as "the union of these different
// overlays", and for a component both layers connect its members.
func (o *Oracle) elementary(members [][]*sim.Node) float64 {
	s := o.sys
	total, ok := 0, 0
	for c, ms := range members {
		if len(ms) < 2 {
			continue
		}
		shape := s.alloc.Shape(view.ComponentID(c))
		for _, e := range shapes.TargetEdges(shape, len(ms)) {
			u, v := ms[e[0]], ms[e[1]]
			total++
			if s.core.View(u.Slot).Contains(v.ID) || s.core.View(v.Slot).Contains(u.ID) ||
				s.uo1.View(u.Slot).Contains(v.ID) || s.uo1.View(v.Slot).Contains(u.ID) {
				ok++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// uo1 is the fraction of nodes that have gathered a full same-component
// view: at least min(capacity, component size - 1) fellow members. Views
// of nodes in components smaller than the capacity legitimately keep
// foreign entries in the spare slots (the finite foreign penalty keeps
// gossip flowing during bootstrap), so purity beyond the quota is not
// required.
func (o *Oracle) uo1(members [][]*sim.Node) float64 {
	s := o.sys
	total, ok := 0, 0
	for _, ms := range members {
		want := s.cfg.UO1Capacity
		if len(ms)-1 < want {
			want = len(ms) - 1
		}
		for _, n := range ms {
			total++
			v := s.uo1.View(n.Slot)
			same := 0
			for i := 0; i < v.Len(); i++ {
				d := v.At(i)
				if d.Profile.Comp == n.Profile.Comp && d.Profile.Epoch == n.Profile.Epoch {
					same++
				}
			}
			if same >= want {
				ok++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// uo2 is the fraction of nodes whose distant-component table covers every
// other populated component. With UO2 disabled (ablation) it reports 1 so
// the remaining metrics stay comparable.
func (o *Oracle) uo2(members [][]*sim.Node) float64 {
	s := o.sys
	if s.uo2 == nil {
		return 1
	}
	populated := 0
	for _, ms := range members {
		if len(ms) > 0 {
			populated++
		}
	}
	total, ok := 0, 0
	for c, ms := range members {
		want := populated - 1
		_ = c
		for _, n := range ms {
			total++
			if s.uo2.Coverage(n.Slot) >= want {
				ok++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// portSelect is the fraction of (member, port) pairs whose local belief
// names the ground-truth winner.
func (o *Oracle) portSelect(members [][]*sim.Node) float64 {
	s := o.sys
	total, ok := 0, 0
	for c, ms := range members {
		comp := view.ComponentID(c)
		nports := s.alloc.Ports(comp)
		if nports == 0 || len(ms) == 0 {
			continue
		}
		for port := int32(0); port < nports; port++ {
			winner, _ := o.Winner(ms, comp, port)
			for _, n := range ms {
				total++
				if s.ports.Belief(n.Slot, port).ID == winner.ID {
					ok++
				}
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// portConnect is the fraction of links whose two ground-truth managers
// know each other.
func (o *Oracle) portConnect(members [][]*sim.Node) float64 {
	s := o.sys
	sides := s.alloc.Sides()
	total, ok := 0, 0
	for si := 0; si+1 < len(sides); si += 2 {
		a, b := sides[si], sides[si+1]
		if len(members[a.Comp]) == 0 || len(members[b.Comp]) == 0 {
			continue // unpopulated endpoint: link not measurable
		}
		total++
		ma, _ := o.Winner(members[a.Comp], a.Comp, a.Port)
		mb, _ := o.Winner(members[b.Comp], b.Comp, b.Port)
		if s.conns.Remote(ma.Slot, si).ID == mb.ID &&
			s.conns.Remote(mb.Slot, si+1).ID == ma.ID {
			ok++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// StuckComponents returns the names of components whose elementary shape
// is not fully realized in the current state, in topology order — the
// per-component refinement of the Elementary Topology fraction. Diagnostic
// tooling (the fuzz campaign's Reconverge violation detail) uses it to say
// *which* component failed to re-form instead of just the global fraction.
func (o *Oracle) StuckComponents() []string {
	s := o.sys
	members := o.compMembers()
	var out []string
	for c, ms := range members {
		if len(ms) < 2 {
			continue
		}
		shape := s.alloc.Shape(view.ComponentID(c))
		realized := true
		for _, e := range shapes.TargetEdges(shape, len(ms)) {
			u, v := ms[e[0]], ms[e[1]]
			if !s.core.View(u.Slot).Contains(v.ID) && !s.core.View(v.Slot).Contains(u.ID) &&
				!s.uo1.View(u.Slot).Contains(v.ID) && !s.uo1.View(v.Slot).Contains(u.ID) {
				realized = false
				break
			}
		}
		if !realized {
			out = append(out, s.alloc.Topology().Components[c].Name)
		}
	}
	return out
}

// RealizedGraph builds the realized system topology: the union of every
// component's core overlay plus the established inter-component links —
// "the union of these different overlays" in the paper's words.
func (o *Oracle) RealizedGraph() *graph.Graph {
	s := o.sys
	g := graph.New(s.eng.Size())
	o.slots = s.eng.AliveSlotsAppend(o.slots[:0])
	for _, slot := range o.slots {
		v := s.core.View(slot)
		for i := 0; i < v.Len(); i++ {
			if peer := s.eng.Lookup(v.At(i).ID); peer != nil && peer.Alive {
				g.AddEdge(slot, peer.Slot)
			}
		}
	}
	members := o.compMembers()
	sides := s.alloc.Sides()
	for si := 0; si+1 < len(sides); si += 2 {
		a, b := sides[si], sides[si+1]
		if len(members[a.Comp]) == 0 || len(members[b.Comp]) == 0 {
			continue
		}
		ma, _ := o.Winner(members[a.Comp], a.Comp, a.Port)
		mb, _ := o.Winner(members[b.Comp], b.Comp, b.Port)
		if s.conns.Remote(ma.Slot, si).ID == mb.ID {
			g.AddEdge(ma.Slot, mb.Slot)
		}
	}
	return g
}

// Tracker observes a run, recording per-round metrics and the first round
// at which each sub-procedure converged. With StopWhenDone it halts the
// engine once every sub-procedure has converged.
type Tracker struct {
	Oracle       *Oracle
	StopWhenDone bool
	History      []Metrics
	FirstDone    map[Sub]int
}

var _ sim.Observer = (*Tracker)(nil)

// NewTracker attaches a fresh tracker to the system's engine.
func NewTracker(s *System, stopWhenDone bool) *Tracker {
	t := &Tracker{
		Oracle:       s.Oracle(),
		StopWhenDone: stopWhenDone,
		FirstDone:    make(map[Sub]int),
	}
	s.Engine().Observe(t)
	return t
}

// AfterRound implements sim.Observer.
func (t *Tracker) AfterRound(e *sim.Engine) bool {
	m := t.Oracle.Measure()
	t.History = append(t.History, m)
	for _, s := range Subs() {
		if _, done := t.FirstDone[s]; !done && m.Converged(s) {
			t.FirstDone[s] = m.Round
		}
	}
	return t.StopWhenDone && m.AllConverged()
}

// ConvergenceRound returns the first round the sub-procedure converged,
// or -1 if it never did.
func (t *Tracker) ConvergenceRound(s Sub) int {
	if r, ok := t.FirstDone[s]; ok {
		return r
	}
	return -1
}

// Reserve pre-allocates history storage for at least n further rounds, so
// a tracked run of known length appends its per-round metrics without
// reallocating the history spine.
func (t *Tracker) Reserve(n int) {
	if need := len(t.History) + n; need > cap(t.History) {
		h := make([]Metrics, len(t.History), need)
		copy(h, t.History)
		t.History = h
	}
}

// Reset clears history and convergence marks (used around mid-run events
// such as reconfigurations, to measure re-convergence).
func (t *Tracker) Reset() {
	t.History = nil
	t.FirstDone = make(map[Sub]int)
}
