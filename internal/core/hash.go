// Package core implements the paper's primary contribution: the
// assembly-based runtime that maps a high-level topology description
// (components + ports + links, from internal/spec) onto a concrete node
// population, using a stack of gossip sub-procedures layered over a global
// peer-sampling service (the paper's Figure 1):
//
//   - role allocation: which node belongs to which component (weighted
//     rendezvous hashing, so reconfigurations move few nodes);
//   - UO1, the same-component overlay: clusters nodes of a component so the
//     component's core protocol always has same-component peers;
//   - UO2, the distant-component overlay: maintains one fresh contact into
//     every other component;
//   - the per-component core protocol: a Vicinity instance driven by the
//     component's shape (internal/shapes);
//   - port selection: a gossip min-election that maps each logical port to
//     a concrete manager node, with heartbeats and failover;
//   - port connection: managers of linked ports find each other through
//     UO2 and establish node-level links.
//
// Everything runs inside the deterministic simulation engine
// (internal/sim); the Oracle measures per-layer convergence exactly the way
// the paper's evaluation reports it.
package core

import (
	"math"

	"sosf/internal/view"
)

// fnvOffset and fnvPrime are the FNV-1a 64-bit constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1a folds a sequence of 64-bit words through FNV-1a, byte by byte.
// All tie-breaking and election scores in the runtime derive from this, so
// they are stable across runs and platforms.
func fnv1a(words ...uint64) uint64 {
	h := uint64(fnvOffset)
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= fnvPrime
			w >>= 8
		}
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer, used to decorrelate hash inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps a hash to the open interval (0, 1) — never 0 or 1, so it is
// safe as a logarithm argument in weighted rendezvous scores. Only 52 bits
// are used so the +0.5 offset stays exactly representable.
func hash01(h uint64) float64 {
	const denom = float64(1 << 52)
	return (float64(h>>12) + 0.5) / denom
}

// rendezvousScore is the weighted-rendezvous-hashing score of assigning a
// node (by key) to a component (by index) at a given epoch-independent
// salt. Lower is better; each node picks the component minimizing
// -ln(u)/weight, which yields exactly weight-proportional assignment and
// moves only ~1/C of the nodes when a component is added or removed.
func rendezvousScore(nodeKey uint64, comp int, weight int64) float64 {
	u := hash01(fnv1a(splitmix64(nodeKey), uint64(comp)+0x517cc1b727220a95))
	return -math.Log(u) / float64(weight)
}

// electionScore scores a node's candidacy for a port; the alive member of
// the component with the lowest score is the port's manager. The epoch is
// folded in so that reconfigurations reshuffle managers deterministically.
func electionScore(comp view.ComponentID, port int32, epoch uint32, nodeID view.NodeID) uint64 {
	return fnv1a(uint64(uint32(comp))|uint64(epoch)<<32, uint64(uint32(port)), uint64(nodeID))
}

// mix01 produces a deterministic pseudo-random tie-break in [0, 1) from a
// pair of node keys — used by UO1 so that different nodes prefer different
// same-component peers, keeping the same-component overlay diverse.
func mix01(a, b uint64) float64 {
	return float64(splitmix64(a^splitmix64(b))>>11) / float64(1<<53)
}
