package core

import (
	"context"
	"errors"
	"fmt"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/spec"
	"sosf/internal/vicinity"
)

// Config configures a System. Topology is required; zero values elsewhere
// take defaults chosen to match the paper's evaluation setup.
type Config struct {
	// Topology is the compiled target topology (required, validated).
	Topology *spec.Topology
	// Nodes is the population size. Defaults to the topology's "nodes"
	// option; it is an error if neither is set.
	Nodes int
	// Seed drives all randomness of the run.
	Seed int64
	// Workers shards the parallel phases of each round across this many
	// workers. 0 or 1 runs serially in place; negative selects GOMAXPROCS.
	// The result is byte-identical for every value — workers only change
	// how fast a round executes.
	Workers int

	// RPS configures the peer-sampling layer.
	RPS peersampling.Options
	// UO1Capacity is the same-component view size (default 8).
	UO1Capacity int
	// OverlayGossip is the per-exchange descriptor budget of the Vicinity
	// instances (default 5).
	OverlayGossip int
	// OverlayMaxAge bounds descriptor staleness in overlay views. The
	// default is 30: large enough that entries of dense shapes (whose
	// refresh gaps stretch with component size) do not flicker out, small
	// enough that dead nodes — which additionally accumulate
	// failed-contact penalties — purge quickly.
	OverlayMaxAge int
	// UO2MaxAge bounds staleness of distant-component contacts
	// (default 20 rounds).
	UO2MaxAge int
	// PortTTL bounds port-manager failover latency. It must comfortably
	// exceed the gossip staleness tail (a record's stamp is only as fresh
	// as the exchange chain that delivered it), so the default is 20.
	PortTTL int
	// LossRate is the probability that any exchange is lost in transit.
	LossRate float64

	// DisableUO2 removes the distant-component overlay (ablation): port
	// connection then falls back to scanning the peer-sampling view.
	DisableUO2 bool
	// PureGreedy removes the random candidate feed from the overlays
	// (ablation): pure T-Man-style greedy gossip.
	PureGreedy bool
	// DisableHealing turns off the self-healing layer: gradient rankers
	// fall back to comparing sparse Profile.Index values and the allocator
	// never re-densifies on vacancy buildup, so an unreplaced death pins
	// index-structured shapes below accuracy 1.0 until a Reconfigure (the
	// legacy behavior, kept as an escape hatch and for regression pins).
	DisableHealing bool
}

func (c Config) withDefaults() Config {
	if c.UO1Capacity <= 0 {
		c.UO1Capacity = 8
	}
	if c.OverlayGossip <= 0 {
		c.OverlayGossip = 5
	}
	if c.OverlayMaxAge <= 0 {
		c.OverlayMaxAge = 30
	}
	if c.UO2MaxAge <= 0 {
		c.UO2MaxAge = 20
	}
	if c.PortTTL <= 0 {
		c.PortTTL = 20
	}
	return c
}

// System wires the full runtime stack of the paper's Figure 1 into a
// simulation engine: peer sampling at the bottom, then UO1 and UO2, the
// per-component core protocol, and the port selection / port connection
// sub-procedures on top.
type System struct {
	cfg    Config
	eng    *sim.Engine
	alloc  *Allocator
	rps    *peersampling.Protocol
	uo1    *vicinity.Protocol
	uo2    *UO2
	core   *vicinity.Protocol
	ports  *PortSelect
	conns  *PortConnect
	oracle *Oracle

	baselineMeters []int
	overheadMeters []int
}

// ErrNoPopulation is returned when neither Config.Nodes nor the topology's
// "nodes" option provides a population size.
var ErrNoPopulation = errors.New("core: population size not set (Config.Nodes or topology option \"nodes\")")

// NewSystem builds and initializes a system: engine, protocol stack, node
// population, and role allocation. The system is ready to Run.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.Topology == nil {
		return nil, errors.New("core: Config.Topology is required")
	}
	alloc, err := NewAllocator(cfg.Topology)
	if err != nil {
		return nil, err
	}
	alloc.SetHealing(!cfg.DisableHealing)
	if cfg.Nodes <= 0 {
		cfg.Nodes = int(cfg.Topology.Option("nodes", 0))
	}
	if cfg.Nodes <= 0 {
		return nil, ErrNoPopulation
	}
	if cfg.Nodes < len(cfg.Topology.Components) {
		return nil, fmt.Errorf("core: %d nodes cannot populate %d components",
			cfg.Nodes, len(cfg.Topology.Components))
	}

	s := &System{cfg: cfg, alloc: alloc}
	s.eng = sim.New(cfg.Seed)
	s.eng.SetLossRate(cfg.LossRate)
	if cfg.Workers != 0 {
		s.eng.SetWorkers(cfg.Workers)
	}

	overlayOpts := vicinity.Options{
		Gossip:       cfg.OverlayGossip,
		MaxAge:       cfg.OverlayMaxAge,
		NoRandomFeed: cfg.PureGreedy,
	}
	s.rps = peersampling.New(cfg.RPS)
	s.uo1 = vicinity.New("uo1", uo1Ranker{alloc: alloc, capacity: cfg.UO1Capacity}, s.rps, overlayOpts)
	if !cfg.DisableUO2 {
		s.uo2 = NewUO2(alloc, s.rps, cfg.UO2MaxAge)
	}
	// The core protocol feeds off UO1: same-component candidates flow in
	// for free, which is exactly why the runtime builds UO1 at all.
	s.core = vicinity.New("core", coreRanker{alloc: alloc}, s.rps, overlayOpts, s.uo1)
	s.ports = NewPortSelect(alloc, s.uo1, s.core, cfg.PortTTL)
	s.conns = NewPortConnect(alloc, s.ports, s.uo2, s.rps, cfg.PortTTL)

	baseline := []sim.Protocol{s.rps, s.core}
	overhead := []sim.Protocol{s.uo1, s.ports, s.conns}
	if s.uo2 != nil {
		overhead = append(overhead, s.uo2)
	}
	// Registration order is the per-round step order: bottom of the stack
	// first, exactly like a PeerSim cycle-driven protocol stack.
	order := []sim.Protocol{s.rps, s.uo1}
	if s.uo2 != nil {
		order = append(order, s.uo2)
	}
	order = append(order, s.core, s.ports, s.conns)
	index := make(map[sim.Protocol]int, len(order))
	for _, p := range order {
		index[p] = s.eng.Register(p)
	}
	for _, p := range baseline {
		s.baselineMeters = append(s.baselineMeters, index[p])
	}
	for _, p := range overhead {
		s.overheadMeters = append(s.overheadMeters, index[p])
	}

	slots := s.eng.AddNodes(cfg.Nodes)
	for _, slot := range slots {
		s.eng.Node(slot).Profile.Key = s.eng.Rand().Uint64()
	}
	s.alloc.AssignAll(s.eng)
	for _, slot := range slots {
		s.eng.InitNode(slot)
	}
	s.oracle = &Oracle{sys: s}
	return s, nil
}

// Engine exposes the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Allocator exposes the role allocator.
func (s *System) Allocator() *Allocator { return s.alloc }

// Oracle exposes the convergence oracle.
func (s *System) Oracle() *Oracle { return s.oracle }

// RPS exposes the peer-sampling layer.
func (s *System) RPS() *peersampling.Protocol { return s.rps }

// UO1 exposes the same-component overlay.
func (s *System) UO1() *vicinity.Protocol { return s.uo1 }

// UO2 exposes the distant-component overlay (nil when disabled).
func (s *System) UO2() *UO2 { return s.uo2 }

// CoreOverlay exposes the per-component shape overlay.
func (s *System) CoreOverlay() *vicinity.Protocol { return s.core }

// Ports exposes the port-selection protocol.
func (s *System) Ports() *PortSelect { return s.ports }

// Conns exposes the port-connection protocol.
func (s *System) Conns() *PortConnect { return s.conns }

// Config returns the effective (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Run executes up to maxRounds rounds (stopping early if an observer asks).
func (s *System) Run(maxRounds int) (int, error) { return s.eng.Run(maxRounds) }

// RunContext executes up to maxRounds rounds, checking the context at every
// round boundary; a cancelled run returns the rounds executed and ctx.Err().
// The system is always left between rounds, so it can be snapshotted or
// resumed after a cancellation.
func (s *System) RunContext(ctx context.Context, maxRounds int) (int, error) {
	return s.eng.RunContext(ctx, maxRounds)
}

// Reconfigure swaps in a new target topology mid-run: the epoch is bumped,
// every alive node gets a fresh role, and all layers re-converge while
// evicting stale-epoch state on contact — the paper's experiment (iii).
func (s *System) Reconfigure(topo *spec.Topology) error {
	return s.alloc.Reconfigure(s.eng, topo)
}

// AddNodes grows the population by n joining nodes (key, role, protocol
// bootstrap), returning their slots. Runs at the serial round barrier, so
// the dense-rank flush below never races the parallel round phases.
func (s *System) AddNodes(n int) []int {
	slots := s.eng.AddNodes(n)
	for _, slot := range slots {
		s.initJoin(slot)
	}
	s.alloc.FlushRanks()
	return slots
}

func (s *System) initJoin(slot int) {
	node := s.eng.Node(slot)
	node.Profile.Key = s.eng.Rand().Uint64()
	s.alloc.AssignJoin(node)
	s.eng.InitNode(slot)
}

// Kill fails ceil(f × alive) random nodes, keeping the allocator's size
// estimates in sync. Returns the failed slots. Like every membership
// mutation it runs at the serial round barrier: the dense-rank tables are
// flushed and vacancy buildup may trigger a self-healing re-densify here,
// never inside the parallel round phases.
func (s *System) Kill(f float64) []int {
	killed := s.eng.KillFraction(f)
	for _, slot := range killed {
		s.alloc.NoteLeave(s.eng.Node(slot))
	}
	s.alloc.FlushRanks()
	s.alloc.MaybeHeal(s.eng)
	return killed
}

// KillComponent fails every current member of the named component (targeted
// failure injection), returning how many died. Unknown names kill nothing.
func (s *System) KillComponent(name string) int {
	ci := s.alloc.Topology().ComponentIndex(name)
	if ci < 0 {
		return 0
	}
	killed := 0
	for _, slot := range s.eng.AliveSlots() {
		n := s.eng.Node(slot)
		if int(n.Profile.Comp) == ci {
			s.eng.Kill(slot)
			s.alloc.NoteLeave(n)
			killed++
		}
	}
	s.alloc.FlushRanks()
	s.alloc.MaybeHeal(s.eng)
	return killed
}

// ChurnObserver returns an observer that, after every round in
// [from, until] (until = 0 means forever), replaces rate × population with
// fresh joins, wired through the allocator.
func (s *System) ChurnObserver(rate float64, from, until int) sim.Observer {
	return sim.ObserverFunc(func(e *sim.Engine) bool {
		round := e.Round() - 1
		if round < from || (until > 0 && round > until) {
			return false
		}
		killed := s.Kill(rate)
		if len(killed) > 0 {
			s.AddNodes(len(killed))
		}
		return false
	})
}

// BandwidthByClass returns the bytes spent in the given round by the
// baseline class (peer sampling + the core shape protocol — the cost of
// running the elementary topologies alone) and by the runtime-overhead
// class (UO1, UO2, port selection, port connection), matching the two
// series of the paper's Figure 4.
func (s *System) BandwidthByClass(round int) (baseline, overhead int64) {
	m := s.eng.Meter()
	return m.RoundSum(round, s.baselineMeters...), m.RoundSum(round, s.overheadMeters...)
}
