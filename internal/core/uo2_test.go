package core

import (
	"testing"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/view"
)

// buildUO2 wires an engine with peer sampling + UO2 only, over an
// allocator with k ring components.
func buildUO2(t *testing.T, seed int64, nodes, comps, maxAge int) (*sim.Engine, *Allocator, *UO2) {
	t.Helper()
	alloc, err := NewAllocator(ringsTopo(comps))
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New(seed)
	rps := peersampling.New(peersampling.Options{})
	e.Register(rps)
	u := NewUO2(alloc, rps, maxAge)
	e.Register(u)
	slots := e.AddNodes(nodes)
	for _, s := range slots {
		e.Node(s).Profile.Key = e.Rand().Uint64()
	}
	alloc.AssignAll(e)
	for _, s := range slots {
		e.InitNode(s)
	}
	return e, alloc, u
}

func TestUO2FullCoverage(t *testing.T) {
	e, _, u := buildUO2(t, 1, 300, 6, 0)
	if _, err := e.Run(15); err != nil {
		t.Fatal(err)
	}
	for _, slot := range e.AliveSlots() {
		if got := u.Coverage(slot); got != 5 {
			t.Fatalf("slot %d covers %d foreign components, want 5", slot, got)
		}
		// Every contact must actually belong to the component it is
		// filed under, and never to the node's own component.
		self := e.Node(slot)
		for _, d := range u.Contacts(slot) {
			if d.Profile.Comp == self.Profile.Comp {
				t.Fatalf("slot %d keeps a same-component contact", slot)
			}
			if peer := e.Lookup(d.ID); peer == nil {
				t.Fatalf("slot %d has contact for unknown node %d", slot, d.ID)
			}
		}
	}
}

func TestUO2ContactLookup(t *testing.T) {
	e, _, u := buildUO2(t, 2, 200, 4, 0)
	if _, err := e.Run(15); err != nil {
		t.Fatal(err)
	}
	slot := e.AliveSlots()[0]
	self := e.Node(slot)
	for c := view.ComponentID(0); c < 4; c++ {
		d, ok := u.Contact(slot, c)
		if c == self.Profile.Comp {
			if ok {
				t.Fatal("own component must have no entry")
			}
			continue
		}
		if !ok {
			t.Fatalf("missing contact for component %d", c)
		}
		if d.Profile.Comp != c {
			t.Fatalf("contact filed under %d belongs to %d", c, d.Profile.Comp)
		}
	}
}

func TestUO2DeadContactsExpire(t *testing.T) {
	e, _, u := buildUO2(t, 3, 200, 4, 10)
	if _, err := e.Run(15); err != nil {
		t.Fatal(err)
	}
	// Kill every member of component 0; all contacts into it must decay
	// within maxAge (+ a small spread margin).
	for _, slot := range e.AliveSlots() {
		if e.Node(slot).Profile.Comp == 0 {
			e.Kill(slot)
		}
	}
	if _, err := e.Run(25); err != nil {
		t.Fatal(err)
	}
	for _, slot := range e.AliveSlots() {
		if _, ok := u.Contact(slot, 0); ok {
			t.Fatalf("slot %d still has a contact in the dead component", slot)
		}
	}
}

func TestUO2StaleEpochPurged(t *testing.T) {
	e, alloc, u := buildUO2(t, 4, 200, 4, 0)
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := alloc.Reconfigure(e, ringsTopo(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(15); err != nil {
		t.Fatal(err)
	}
	epoch := alloc.Epoch()
	for _, slot := range e.AliveSlots() {
		for _, d := range u.Contacts(slot) {
			if d.Profile.Epoch != epoch {
				t.Fatalf("slot %d keeps epoch-%d contact after reconfiguration", slot, d.Profile.Epoch)
			}
		}
	}
	// Coverage rebuilds for the new component set.
	covered := 0
	for _, slot := range e.AliveSlots() {
		if u.Coverage(slot) == 4 {
			covered++
		}
	}
	if frac := float64(covered) / float64(e.AliveCount()); frac < 0.95 {
		t.Fatalf("only %.2f of nodes re-covered all components", frac)
	}
}

func TestUO2BandwidthMetered(t *testing.T) {
	e, _, _ := buildUO2(t, 5, 100, 3, 0)
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	m := e.Meter()
	uo2Idx := -1
	for i, name := range m.Names() {
		if name == "uo2" {
			uo2Idx = i
		}
	}
	if uo2Idx < 0 {
		t.Fatal("uo2 not metered")
	}
	for r := 0; r < 5; r++ {
		if m.RoundTotal(r, uo2Idx) <= 0 {
			t.Fatalf("round %d: no uo2 bandwidth", r)
		}
	}
}
