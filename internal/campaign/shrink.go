package campaign

import (
	"math"

	"sosf/internal/spec"
)

// shrinker greedily minimizes a violating run. Every candidate edit is
// validated, emitted to DSL source, and re-executed; an edit is kept only
// if the original invariant still fires. All decisions are deterministic,
// so the same campaign seed always distills the same reproducer, byte for
// byte.
//
// Candidates that leave a prefix of the current best timeline untouched
// resume from the best run's nearest in-memory checkpoint instead of
// replaying from round 0 — the PR 5 snapshot machinery doing double duty
// as the shrinker's accelerator. The skipped rounds' events are spliced
// from the best run (identical by determinism), so invariants always see
// a full event stream.
type shrinker struct {
	c          *Campaign
	invariant  string
	resumeMode bool // shrinking a resume-equivalence divergence: every candidate re-runs the resume check, never a prefix
	best       *spec.Topology
	bestRun    *Run
	bestViol   *Violation
	steps      int // accepted edits
	tried      int // candidate executions
}

func newShrinker(c *Campaign, v *Violation, topo *spec.Topology, run *Run) *shrinker {
	return &shrinker{
		c:          c,
		invariant:  v.Invariant,
		resumeMode: v.Invariant == InvResume,
		best:       topo,
		bestRun:    run,
		bestViol:   v,
	}
}

// minimize runs the shrinking passes to a fixpoint: drop whole events,
// narrow windows, reduce magnitudes, bisect the round budget down to the
// earliest failing horizon, and halve the population — in that order,
// cheapest structural wins first.
func (s *shrinker) minimize() (*spec.Topology, *Run, *Violation) {
	for {
		changed := s.dropEvents()
		changed = s.narrowWindows() || changed
		changed = s.reduceMagnitudes() || changed
		changed = s.bisectRounds() || changed
		changed = s.shrinkPopulation() || changed
		if !changed {
			return s.best, s.bestRun, s.bestViol
		}
	}
}

// dropEvents tries to delete each timeline event outright. On success the
// next event shifts into the same index, so the loop only advances past
// survivors — each event left in the final reproducer is individually
// necessary.
func (s *shrinker) dropEvents() bool {
	changed := false
	for i := 0; i < len(s.best.Scenario); {
		cand := cloneSpec(s.best)
		dropped := cand.Scenario[i]
		cand.Scenario = append(cand.Scenario[:i], cand.Scenario[i+1:]...)
		if s.accept(cand, dropped.From) {
			changed = true
		} else {
			i++
		}
	}
	return changed
}

// narrowWindows halves each window event toward a point: first pulling the
// end in, then pushing the start up.
func (s *shrinker) narrowWindows() bool {
	changed := false
	for i := 0; i < len(s.best.Scenario); i++ {
		for {
			ev := s.best.Scenario[i]
			if ev.To <= ev.From {
				break
			}
			cand := cloneSpec(s.best)
			cand.Scenario[i].To = ev.From + (ev.To-ev.From)/2
			// The candidate diverges where its window now ends early (a
			// stateful window restores there; a pulse stops one round
			// later), so checkpoints before the new end stay reusable.
			if !s.accept(cand, cand.Scenario[i].To) {
				break
			}
			changed = true
		}
		for {
			ev := s.best.Scenario[i]
			if ev.To <= ev.From {
				break
			}
			cand := cloneSpec(s.best)
			cand.Scenario[i].From = ev.To - (ev.To-ev.From)/2
			if !s.accept(cand, ev.From) {
				break
			}
			changed = true
		}
	}
	return changed
}

// reduceMagnitudes halves each event's magnitude toward its validity
// floor (quantized to two decimals, so the loop terminates and the
// reproducer stays readable).
func (s *shrinker) reduceMagnitudes() bool {
	changed := false
	for i := 0; i < len(s.best.Scenario); i++ {
		for {
			from := s.best.Scenario[i].From
			cand := cloneSpec(s.best)
			if !reduceEvent(&cand.Scenario[i]) {
				break
			}
			if !s.accept(cand, from) {
				break
			}
			changed = true
		}
	}
	return changed
}

// reduceEvent shrinks one event's magnitude a notch; false means nothing
// left to reduce.
func reduceEvent(ev *spec.ScenarioEvent) bool {
	switch ev.Kind {
	case spec.ScenKill, spec.ScenChurn, spec.ScenLoss:
		f := math.Round(ev.Fraction/2*100) / 100
		if f < 0.01 || f >= ev.Fraction {
			return false
		}
		ev.Fraction = f
		return true
	case spec.ScenJoin:
		n := ev.Count / 2
		if n < 1 || n >= ev.Count {
			return false
		}
		ev.Count = n
		return true
	case spec.ScenPartition:
		if ev.Count <= 2 {
			return false
		}
		ev.Count--
		return true
	default:
		return false
	}
}

// bisectRounds binary-searches the smallest round budget that still
// exhibits the violation — the "find the earliest failing window" step,
// with each probe resuming from the nearest reusable checkpoint rather
// than replaying from round 0. Budgets that would strand an event beyond
// the horizon fail validation and count as non-failing, which steers the
// search correctly without special cases.
func (s *shrinker) bisectRounds() bool {
	lo, hi := 0, int(s.best.Option("rounds", 0))
	changed := false
	for lo+1 < hi {
		mid := (lo + hi) / 2
		cand := cloneSpec(s.best)
		cand.SetOption("rounds", int64(mid))
		if s.accept(cand, mid) {
			hi = mid
			changed = true
		} else {
			lo = mid
		}
	}
	return changed
}

// shrinkPopulation halves the node count toward a floor that keeps every
// component populated enough to assemble its shape.
func (s *shrinker) shrinkPopulation() bool {
	changed := false
	for {
		nodes := int(s.best.Option("nodes", 0))
		floor := 4 * len(s.best.Components)
		if floor < 8 {
			floor = 8
		}
		next := nodes / 2
		if next < floor {
			next = floor
		}
		if next >= nodes {
			break
		}
		cand := cloneSpec(s.best)
		cand.SetOption("nodes", int64(next))
		// A different boot population diverges from round 0: no
		// checkpoint of the old best is reusable.
		if !s.accept(cand, 0) {
			break
		}
		changed = true
	}
	return changed
}

// accept executes the candidate and, if the target invariant still fires,
// installs it as the new best. firstAffected is the first round at which
// the candidate's behavior can differ from the current best's; checkpoints
// strictly before it may seed the candidate run.
func (s *shrinker) accept(cand *spec.Topology, firstAffected int) bool {
	if err := cand.Validate(); err != nil {
		return false
	}
	s.tried++
	eo := execOpts{checkResume: s.resumeMode, snapEvery: s.c.cfg.SnapshotEvery}
	if !s.resumeMode {
		eo.prefix, eo.prefixRun = s.reusableSnap(cand, firstAffected)
	}
	run, err := s.c.execute(cand, eo)
	if err != nil {
		return false
	}
	v := s.c.checkNamed(run, s.invariant)
	if v == nil {
		return false
	}
	// Checkpoints of the old best taken before the divergence stay valid
	// for the new best (identical prefix); keep them ahead of whatever the
	// candidate run captured live, preserving ascending round order.
	if int(cand.Option("nodes", 0)) == int(s.best.Option("nodes", 0)) {
		var keep []prefixSnap
		for _, sn := range s.bestRun.snaps {
			if sn.round < firstAffected && sn.round < run.Rounds {
				keep = append(keep, sn)
			}
		}
		run.snaps = append(keep, run.snaps...)
	}
	s.best, s.bestRun, s.bestViol = cand, run, v
	s.steps++
	return true
}

// reusableSnap picks the latest checkpoint of the best run a candidate
// diverging at firstAffected can legally resume from. Beyond preceding the
// divergence, the checkpoint must predate any loss window's opening: the
// timeline's saved-loss bookkeeping is keyed by event index, which the
// candidate's edit may have shifted. A candidate with no timeline at all
// never resumes (its system has no scenario binding to restore into).
func (s *shrinker) reusableSnap(cand *spec.Topology, firstAffected int) (*prefixSnap, *Run) {
	if firstAffected <= 0 || len(cand.Scenario) == 0 {
		return nil, nil
	}
	if int(cand.Option("nodes", 0)) != int(s.best.Option("nodes", 0)) {
		return nil, nil
	}
	candRounds := int(cand.Option("rounds", 0))
	var pick *prefixSnap
	for i := range s.bestRun.snaps {
		sn := &s.bestRun.snaps[i]
		if sn.round >= firstAffected || sn.round >= candRounds {
			continue
		}
		if lossOpenedBy(s.best.Scenario, sn.round) {
			continue
		}
		if pick == nil || sn.round > pick.round {
			pick = sn
		}
	}
	if pick == nil {
		return nil, nil
	}
	return pick, s.bestRun
}

// lossOpenedBy reports whether any loss event has opened by the given
// round (inclusive).
func lossOpenedBy(events []spec.ScenarioEvent, round int) bool {
	for _, ev := range events {
		if ev.Kind == spec.ScenLoss && ev.From <= round {
			return true
		}
	}
	return false
}

// cloneSpec deep-copies everything the shrinker mutates. Reconfigure
// target topologies are shared (no pass edits them in place).
func cloneSpec(t *spec.Topology) *spec.Topology {
	c := *t
	c.Components = append([]spec.Component(nil), t.Components...)
	for i := range c.Components {
		comp := &c.Components[i]
		if len(comp.Params) > 0 {
			params := make(map[string]int64, len(comp.Params))
			for k, v := range comp.Params {
				params[k] = v
			}
			comp.Params = params
		}
		comp.Ports = append([]string(nil), comp.Ports...)
	}
	c.Links = append([]spec.Link(nil), t.Links...)
	if t.Options != nil {
		c.Options = make(map[string]int64, len(t.Options))
		for k, v := range t.Options {
			c.Options[k] = v
		}
	}
	c.Scenario = append([]spec.ScenarioEvent(nil), t.Scenario...)
	return &c
}
