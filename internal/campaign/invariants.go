package campaign

import (
	"fmt"
	"sort"
	"strings"

	"sosf"
)

// Invariant names, as they appear in Violation.Invariant and reproducer
// file names.
const (
	InvReconverge      = "reconverge"
	InvOrphanTail      = "orphan-tail"
	InvBandwidth       = "bandwidth"
	InvPopulationFloor = "population-floor"
	InvResume          = "resume-equivalence"
)

// Violation is one invariant failure. Its rendering is deterministic (it
// ends up verbatim in committed reproducer headers).
type Violation struct {
	// Invariant is the failing invariant's name.
	Invariant string
	// Round locates the failure (the deadline round for budget-style
	// invariants, the first offending round otherwise).
	Round int
	// Detail is a one-line human-readable description.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at round %d: %s", v.Invariant, v.Round, v.Detail)
}

// Invariant is a pluggable per-run check. Check returns nil when the run
// satisfies the invariant. Implementations must be deterministic: the
// shrinker re-evaluates them on every candidate, and a flickering verdict
// would break reproducer byte-stability.
type Invariant interface {
	Name() string
	Check(r *Run) *Violation
}

// Reconverge requires every layer to reach accuracy 1.0 within Within
// rounds of the run's last fault — the paper's core promise that the
// system re-assembles after damage.
type Reconverge struct {
	Within int
}

// Name implements Invariant.
func (Reconverge) Name() string { return InvReconverge }

// Check implements Invariant. A run too short to cover the budget proves
// nothing and returns nil — which is what lets the shrinker's round
// bisection stop at the deadline instead of shrinking the violation away.
func (i Reconverge) Check(r *Run) *Violation {
	deadline := r.LastFault + i.Within
	if len(r.Events) < deadline {
		return nil
	}
	// Events[k] is round k+1, so this slice is rounds (LastFault, deadline].
	for _, ev := range r.Events[r.LastFault:deadline] {
		if ev.Converged {
			return nil
		}
	}
	return &Violation{
		Invariant: InvReconverge,
		Round:     deadline,
		Detail: fmt.Sprintf("no convergence in the %d rounds after the last fault (round %d); %s; accuracy at round %d: %s",
			i.Within, r.LastFault, stuckSummary(r, deadline), deadline, accuracySummary(r.Events[deadline-1])),
	}
}

// stuckSummary names every layer below 1.0 at the deadline with the round
// its trailing sub-1.0 streak began — the round it got stuck — and, when
// the end-of-run system is available, the components whose elementary
// shape never re-formed. This turns a bare "did not reconverge" into a
// directly actionable diagnosis without replaying the reproducer.
func stuckSummary(r *Run, deadline int) string {
	end := r.Events[deadline-1]
	keys := make([]string, 0, len(end.Accuracy))
	for k := range end.Accuracy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		if end.Accuracy[k] >= 1 {
			continue
		}
		// Walk the trailing streak of sub-1.0 rounds back from the
		// deadline to find where this layer got (and stayed) stuck.
		first := deadline - 1
		for first > 0 && r.Events[first-1].Accuracy[k] < 1 {
			first--
		}
		parts = append(parts, fmt.Sprintf("%s stuck since round %d", k, r.Events[first].Round))
	}
	if len(parts) == 0 {
		// Every layer individually touched 1.0 at the deadline but never
		// simultaneously within the window.
		parts = append(parts, "layers never at 1.0 simultaneously")
	}
	if r.Sys != nil {
		if stuck := r.Sys.StuckComponents(); len(stuck) > 0 {
			parts = append(parts, fmt.Sprintf("stuck component(s) at end of run: %s", strings.Join(stuck, ", ")))
		}
	}
	return strings.Join(parts, "; ")
}

// OrphanTail bounds the end-of-run orphan count (alive nodes with
// peer-sampling in-degree zero) at max(1, 1% of the population) — the
// transient bound the engine's bulk-synchronous rounds are allowed; a
// persistent tail beyond it means the overlay stopped healing.
type OrphanTail struct{}

// Name implements Invariant.
func (OrphanTail) Name() string { return InvOrphanTail }

// Check implements Invariant.
func (OrphanTail) Check(r *Run) *Violation {
	if r.Sys == nil {
		return nil
	}
	orphans, alive := r.Sys.OrphanCount()
	limit := alive / 100
	if limit < 1 {
		limit = 1
	}
	if orphans <= limit {
		return nil
	}
	return &Violation{
		Invariant: InvOrphanTail,
		Round:     r.Rounds,
		Detail: fmt.Sprintf("%d of %d alive nodes have peer-sampling in-degree zero after round %d (transient bound is %d)",
			orphans, alive, r.Rounds, limit),
	}
}

// BandwidthCeiling bounds per-node traffic: no round may move more than
// MaxBytes per node (baseline shape protocols plus runtime overhead).
type BandwidthCeiling struct {
	MaxBytes float64
}

// Name implements Invariant.
func (BandwidthCeiling) Name() string { return InvBandwidth }

// Check implements Invariant.
func (i BandwidthCeiling) Check(r *Run) *Violation {
	for _, ev := range r.Events {
		if total := ev.BaselineBytes + ev.OverheadBytes; total > i.MaxBytes {
			return &Violation{
				Invariant: InvBandwidth,
				Round:     ev.Round,
				Detail: fmt.Sprintf("round %d moved %.0f bytes per node (%.0f baseline + %.0f overhead), over the %.0f ceiling",
					ev.Round, total, ev.BaselineBytes, ev.OverheadBytes, i.MaxBytes),
			}
		}
	}
	return nil
}

// PopulationFloor flags any round whose alive population drops below
// MinFraction of the initial population. It is deliberately strict — any
// healthy kill blast beyond the floor trips it — and exists as the
// campaign's seeded-failure knob: turn it on to watch the runner find a
// violation and shrink it to a minimal reproducer, and to generate
// regression-corpus entries.
type PopulationFloor struct {
	MinFraction float64
}

// Name implements Invariant.
func (PopulationFloor) Name() string { return InvPopulationFloor }

// Check implements Invariant.
func (i PopulationFloor) Check(r *Run) *Violation {
	floor := i.MinFraction * float64(r.InitialNodes)
	for _, ev := range r.Events {
		if float64(ev.Nodes) < floor {
			return &Violation{
				Invariant: InvPopulationFloor,
				Round:     ev.Round,
				Detail: fmt.Sprintf("population %d at round %d fell below %.0f%% of the initial %d nodes",
					ev.Nodes, ev.Round, i.MinFraction*100, r.InitialNodes),
			}
		}
	}
	return nil
}

// accuracySummary renders an event's per-layer accuracy in sorted key
// order ("Elementary Topology=0.981 ...") for deterministic violation
// details.
func accuracySummary(ev sosf.RoundEvent) string {
	keys := make([]string, 0, len(ev.Accuracy))
	for k := range ev.Accuracy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.3f", k, ev.Accuracy[k]))
	}
	return strings.Join(parts, ", ")
}
