package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sosf"
	"sosf/internal/dsl"
	"sosf/internal/spec"
)

// TestCampaignCleanByDefault is the contract behind the CI campaign smoke:
// with the default invariant set, the fixed-seed matrix finds nothing. It
// also exercises the resume-equivalence check on every run (a divergence
// would surface as a resume-equivalence finding).
func TestCampaignCleanByDefault(t *testing.T) {
	findings, err := New(Config{Seed: 1, Runs: 6}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding in clean campaign: %s\n%s", f.Violation, f.Source)
	}
}

// TestSeededFindingByteIdentical is the PR's acceptance criterion: a
// deliberately strict invariant (PopulationFloor) makes the runner find
// violations, shrink each to a minimal .sos reproducer, and distill the
// exact same bytes — source and golden event stream — on every rerun of
// the same campaign seed.
func TestSeededFindingByteIdentical(t *testing.T) {
	cfg := Config{Seed: 1, Runs: 3, Populations: []int{48}, PopulationFloor: 0.9}
	run := func() []Finding {
		t.Helper()
		fs, err := New(cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("populationfloor campaign found nothing; the seeded-failure knob is broken")
	}
	if len(a) != len(b) {
		t.Fatalf("finding count differs across reruns: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Errorf("finding %d: reproducer source differs across reruns:\n--- first\n%s\n--- second\n%s", i, a[i].Source, b[i].Source)
		}
		if !bytes.Equal(a[i].Events, b[i].Events) {
			t.Errorf("finding %d: golden event stream differs across reruns", i)
		}
	}
	// Every reproducer must be self-contained (own nodes/seed/rounds) and
	// still violate when replayed through the public corpus entry point.
	for i, f := range a {
		topo, err := dsl.ParseTopology(f.Source)
		if err != nil {
			t.Fatalf("finding %d: reproducer does not parse: %v", i, err)
		}
		for _, opt := range []string{"nodes", "seed", "rounds"} {
			if topo.Option(opt, -1) == -1 {
				t.Errorf("finding %d: reproducer is missing `option %s`", i, opt)
			}
		}
		var out bytes.Buffer
		if _, err := Replay(f.Source, &out); err != nil {
			t.Fatalf("finding %d: replay failed: %v", i, err)
		}
		if !bytes.Equal(out.Bytes(), f.Events) {
			t.Errorf("finding %d: Replay stream differs from the finding's golden stream", i)
		}
	}
}

// TestNoRepairExposesIndexHoleGap pins the campaign's second seeded
// failure in its legacy form: with the runtime's self-healing disabled
// (NoHeal) and no repair events generated, a single unreplaced death
// leaves a permanent index hole that index-structured shapes cannot
// re-form around, and the Reconverge invariant catches it. The violation
// detail must name the stuck layer so reproducer headers stay actionable.
func TestNoRepairExposesIndexHoleGap(t *testing.T) {
	findings, err := New(Config{Seed: 1, Runs: 6, NoRepair: true, NoHeal: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var reconverge int
	for _, f := range findings {
		if f.Violation.Invariant != InvReconverge {
			continue
		}
		reconverge++
		if !strings.Contains(f.Violation.Detail, "stuck") {
			t.Errorf("reconverge detail does not diagnose the stuck layer: %q", f.Violation.Detail)
		}
	}
	if reconverge == 0 {
		t.Fatalf("NoHeal+NoRepair campaign found no reconverge violation (findings: %d) — either the index-hole gap reproduction is gone or the knob is broken", len(findings))
	}
}

// TestNoRepairHealsClean pins the tentpole from the campaign's side:
// the very timelines that exposed the index-hole gap are clean once the
// runtime's self-healing is left on — bare faults reconverge without a
// trailing reconfiguration.
func TestNoRepairHealsClean(t *testing.T) {
	findings, err := New(Config{Seed: 1, Runs: 6, NoRepair: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.Violation.String())
		}
		t.Fatalf("NoRepair campaign with healing on found %d violation(s):\n%s",
			len(findings), strings.Join(lines, "\n"))
	}
}

// TestGeneratedTimelinesValidate checks the sampler's structural promises
// across many seeds without running any simulation: every generated spec
// passes validation, every fault stays inside the horizon, and the
// timeline ends with the weight-preserving rebalance unless NoRepair.
func TestGeneratedTimelinesValidate(t *testing.T) {
	for _, noRepair := range []bool{false, true} {
		c := New(Config{Seed: 7, Runs: 1, NoRepair: noRepair})
		for idx := 0; idx < 60; idx++ {
			id := c.runID(idx)
			topo, err := c.buildRun(id)
			if err != nil {
				t.Fatalf("noRepair=%v run %d: %v", noRepair, idx, err)
			}
			if len(topo.Scenario) == 0 {
				t.Fatalf("noRepair=%v run %d: empty timeline", noRepair, idx)
			}
			for _, ev := range topo.Scenario {
				if ev.From < 1 || ev.To > c.cfg.Horizon {
					t.Errorf("noRepair=%v run %d: event %v outside [1, %d]", noRepair, idx, ev, c.cfg.Horizon)
				}
			}
			last := topo.Scenario[len(topo.Scenario)-1]
			if !noRepair {
				if last.Kind != spec.ScenReconfigure || last.From != c.cfg.Horizon {
					t.Errorf("run %d: timeline does not end with the trailing rebalance at round %d: %+v", idx, c.cfg.Horizon, last)
				}
			}
		}
	}
}

// TestInvariantChecks unit-tests each invariant against hand-built runs.
func TestInvariantChecks(t *testing.T) {
	ev := func(round int, converged bool, nodes int, bytes float64) sosf.RoundEvent {
		return sosf.RoundEvent{
			Round: round, Nodes: nodes, Converged: converged,
			BaselineBytes: bytes, OverheadBytes: 0,
			Accuracy: map[string]float64{"Elementary Topology": 0.9},
		}
	}
	mkRun := func(rounds, lastFault int, convergedAt int) *Run {
		r := &Run{Rounds: rounds, LastFault: lastFault, InitialNodes: 64}
		for i := 1; i <= rounds; i++ {
			r.Events = append(r.Events, ev(i, i == convergedAt, 64, 1000))
		}
		return r
	}

	t.Run("reconverge violated", func(t *testing.T) {
		v := Reconverge{Within: 10}.Check(mkRun(20, 5, 0))
		if v == nil || v.Round != 15 {
			t.Fatalf("want violation at round 15, got %v", v)
		}
	})
	t.Run("reconverge satisfied", func(t *testing.T) {
		if v := (Reconverge{Within: 10}).Check(mkRun(20, 5, 12)); v != nil {
			t.Fatalf("converged at 12 within (5, 15] but got %v", v)
		}
	})
	t.Run("reconverge short run proves nothing", func(t *testing.T) {
		// The shrinker's round bisection relies on this: a run shorter
		// than the deadline cannot shrink the violation away.
		if v := (Reconverge{Within: 10}).Check(mkRun(14, 5, 0)); v != nil {
			t.Fatalf("run of 14 rounds cannot judge a deadline of 15, got %v", v)
		}
	})
	t.Run("bandwidth flags first offending round", func(t *testing.T) {
		r := mkRun(5, 0, 1)
		r.Events[2].OverheadBytes = 5000
		r.Events[4].OverheadBytes = 9000
		v := BandwidthCeiling{MaxBytes: 4096}.Check(r)
		if v == nil || v.Round != 3 {
			t.Fatalf("want violation at round 3, got %v", v)
		}
		if v := (BandwidthCeiling{MaxBytes: 8192}).Check(mkRun(5, 0, 1)); v != nil {
			t.Fatalf("all rounds under ceiling but got %v", v)
		}
	})
	t.Run("population floor", func(t *testing.T) {
		r := mkRun(5, 0, 1)
		r.Events[3].Nodes = 40
		v := PopulationFloor{MinFraction: 0.9}.Check(r)
		if v == nil || v.Round != 4 {
			t.Fatalf("want violation at round 4, got %v", v)
		}
		if v := (PopulationFloor{MinFraction: 0.5}).Check(r); v != nil {
			t.Fatalf("40 of 64 is above a 50%% floor, got %v", v)
		}
	})
	t.Run("orphan tail without a system", func(t *testing.T) {
		if v := (OrphanTail{}).Check(mkRun(3, 0, 1)); v != nil {
			t.Fatalf("no system attached, want nil, got %v", v)
		}
	})
}

// TestFindingWrite checks the corpus pair layout: deterministic naming, a
// provenance header in front of the reproducer, and the golden stream
// byte-for-byte in the .out file.
func TestFindingWrite(t *testing.T) {
	f := &Finding{
		RunID:        RunID{Index: 4, Topology: "ringpair", Population: 96, Seed: 42},
		CampaignSeed: 1,
		Violation:    Violation{Invariant: InvPopulationFloor, Round: 5, Detail: "population 3 fell below the floor"},
		Source:       "\ntopology ringpair {\n}\n",
		Events:       []byte(`{"round":1}` + "\n"),
		ShrinkSteps:  3, CandidateRuns: 9,
	}
	if got, want := f.Name(), "ringpair-population-floor-c1-r4"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	dir := t.TempDir()
	inPath, outPath, err := f.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	in, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(in)
	for _, want := range []string{
		"# Violation: population-floor at round 5",
		"# Campaign seed 1, run 4 (ringpair, 96 nodes, run seed 42)",
		"topology ringpair {",
	} {
		if !strings.Contains(text, want) {
			t.Errorf(".in file is missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\n\ntopology") || strings.HasPrefix(text, "\n") {
		t.Errorf(".in file carries a leading blank line:\n%q", text)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, f.Events) {
		t.Errorf(".out file differs from the finding's golden stream")
	}
	if filepath.Dir(inPath) != dir || filepath.Dir(outPath) != dir {
		t.Errorf("corpus files written outside %s: %s, %s", dir, inPath, outPath)
	}
}

// TestDeriveSeed pins the two properties reproducers rely on: derived
// seeds are non-negative (the DSL has no negative literals, so `option
// seed` must round-trip) and distinct salts decorrelate.
func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for salt := uint64(0); salt < 1000; salt++ {
		s := deriveSeed(-12345, salt)
		if s < 0 {
			t.Fatalf("deriveSeed(-12345, %d) = %d, want non-negative", salt, s)
		}
		if seen[s] {
			t.Fatalf("deriveSeed collision at salt %d", salt)
		}
		seen[s] = true
	}
	if deriveSeed(1, 7) != deriveSeed(1, 7) {
		t.Fatal("deriveSeed is not a pure function")
	}
}
