package campaign

import (
	"fmt"
	"math"
	"math/rand"

	"sosf/internal/spec"
)

// DefaultTopologies is the built-in base matrix: three small composites
// that together exercise every elementary shape family the runtime links
// across components (rings, a star core over a grid mesh, a tree feeding a
// line).
func DefaultTopologies() []Source {
	return []Source{
		{Name: "ringpair", Src: `
topology ringpair {
    component left ring { weight 1 port head port tail }
    component right ring { weight 1 port head port tail }
    link left.head right.tail
    link right.head left.tail
}`},
		{Name: "starmesh", Src: `
topology starmesh {
    component core star { param hubs 2 weight 1 port up }
    component mesh grid { param width 4 weight 2 port in }
    link core.up mesh.in
}`},
		{Name: "treeline", Src: `
topology treeline {
    component canopy tree { param arity 2 weight 1 port crown }
    component chain line { weight 1 port head }
    link canopy.crown chain.head
}`},
	}
}

// timelineRand builds the deterministic generator stream for one run's
// timeline, independent of the run's simulation stream.
func timelineRand(runSeed int64) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(runSeed, 0x7161)))
}

// generateTimeline samples a randomized fault timeline over the configured
// horizon: churn bursts, loss storms, (cascading) partitions, flash-join
// crowds, kill blasts, targeted component kills, and mid-run
// reconfigurations. Each sampled fault gets its own disjoint lane of
// rounds, so the timeline always passes the stateful-window validation,
// and — unless Config.NoRepair is set — the timeline ends with a
// weight-preserving rebalance at the horizon, matching the allocator's
// contract that member indices re-densify at a reconfiguration. Within
// that contract a clean build's campaign finds zero violations; the
// seeded-failure knobs (PopulationFloor, NoRepair, a tightened ceiling)
// move the bar.
func generateTimeline(rng *rand.Rand, topo *spec.Topology, cfg Config, pop int) []spec.ScenarioEvent {
	n := 1 + rng.Intn(cfg.MaxEvents)
	if maxLanes := cfg.Horizon / 4; n > maxLanes {
		// Every lane needs room for a small window plus slack.
		n = maxLanes
	}
	if n < 1 {
		n = 1
	}
	laneLen := cfg.Horizon / n
	var events []spec.ScenarioEvent
	for i := 0; i < n; i++ {
		lo := i*laneLen + 1
		hi := (i + 1) * laneLen
		events = append(events, randomEvent(rng, topo, lo, hi, pop, cfg.NoRepair)...)
	}
	if !cfg.NoRepair {
		events = append(events, spec.ScenarioEvent{
			From: cfg.Horizon, To: cfg.Horizon,
			Kind:        spec.ScenReconfigure,
			Reconfigure: reconfigureVariant(topo, -1, cfg.Horizon),
		})
	}
	return events
}

// randomEvent samples one fault inside the [lo, hi] lane. Kill blasts
// come paired with a replacement join a few rounds later (unless
// noRepair) so the population stays near its target; the join crowd
// lands on components by rendezvous hashing, so freed member indices
// refill only statistically — the timeline's trailing rebalance is what
// re-densifies them (see Config.NoRepair).
func randomEvent(rng *rand.Rand, topo *spec.Topology, lo, hi, pop int, noRepair bool) []spec.ScenarioEvent {
	at := func() int { return lo + rng.Intn(hi-lo+1) }
	// replaced places the kill early enough in the lane that the
	// replacement join still fits behind it.
	replaced := func(kill spec.ScenarioEvent, count int) []spec.ScenarioEvent {
		if noRepair {
			kill.From = at()
			kill.To = kill.From
			return []spec.ScenarioEvent{kill}
		}
		killHi := hi - 3
		if killHi < lo {
			killHi = lo
		}
		kill.From = lo + rng.Intn(killHi-lo+1)
		kill.To = kill.From
		join := kill.From + 3
		if join > hi {
			join = hi
		}
		return []spec.ScenarioEvent{
			kill,
			{From: join, To: join, Kind: spec.ScenJoin, Count: count},
		}
	}
	switch rng.Intn(7) {
	case 0: // kill blast, then a replacement crowd
		f := frac(rng, 0.05, 0.25)
		return replaced(spec.ScenarioEvent{Kind: spec.ScenKill, Fraction: f}, int(f*float64(pop))+1)
	case 1: // flash-join crowd
		r := at()
		return []spec.ScenarioEvent{{From: r, To: r, Kind: spec.ScenJoin, Count: pop/10 + rng.Intn(pop/10+1)}}
	case 2: // churn burst
		from, to := window(rng, lo, hi, 2, 6)
		return []spec.ScenarioEvent{{From: from, To: to, Kind: spec.ScenChurn, Fraction: frac(rng, 0.01, 0.05)}}
	case 3: // loss storm
		from, to := window(rng, lo, hi, 2, 6)
		return []spec.ScenarioEvent{{From: from, To: to, Kind: spec.ScenLoss, Fraction: frac(rng, 0.05, 0.30)}}
	case 4: // partition (heals at the window end; two in a row cascade)
		from, to := window(rng, lo, hi, 2, 8)
		return []spec.ScenarioEvent{{From: from, To: to, Kind: spec.ScenPartition, Count: 2 + rng.Intn(2)}}
	case 5: // targeted component blast, then a replacement crowd
		ci := rng.Intn(len(topo.Components))
		comp := topo.Components[ci]
		est := int(float64(pop)*float64(comp.Weight)/float64(topo.TotalWeight())) + 1
		return replaced(spec.ScenarioEvent{Kind: spec.ScenKillComponent, Component: comp.Name}, est)
	default: // mid-run reconfiguration
		r := at()
		target := reconfigureVariant(topo, rng.Intn(len(topo.Components)), r)
		return []spec.ScenarioEvent{{From: r, To: r, Kind: spec.ScenReconfigure, Reconfigure: target}}
	}
}

// frac samples [lo, hi] quantized to two decimals, so emitted reproducers
// stay readable and magnitude halving terminates quickly.
func frac(rng *rand.Rand, lo, hi float64) float64 {
	f := lo + rng.Float64()*(hi-lo)
	f = math.Round(f*100) / 100
	if f < lo {
		f = lo
	}
	return f
}

// window samples a [From, To] window inside the lane with a length of
// minLen..maxLen rounds (clamped to the lane).
func window(rng *rand.Rand, lo, hi, minLen, maxLen int) (int, int) {
	length := minLen + rng.Intn(maxLen-minLen+1)
	if max := hi - lo; length > max {
		length = max
	}
	from := lo + rng.Intn(hi-lo-length+1)
	return from, from + length
}

// reconfigureVariant clones the base topology's structure with one
// component's weight bumped — a minimal but real reconfiguration: the
// allocator reshuffles the population and every layer re-converges onto
// the new proportions. A negative bump keeps every weight unchanged,
// turning the event into a pure rebalance (epoch bump + dense
// reassignment). The clone carries no options or scenario (those belong
// to the outer run).
func reconfigureVariant(topo *spec.Topology, bump, at int) *spec.Topology {
	t := &spec.Topology{Name: fmt.Sprintf("%s@%d", topo.Name, at)}
	for i, c := range topo.Components {
		cc := c
		if len(c.Params) > 0 {
			cc.Params = make(map[string]int64, len(c.Params))
			for k, v := range c.Params {
				cc.Params[k] = v
			}
		}
		cc.Ports = append([]string(nil), c.Ports...)
		if i == bump {
			cc.Weight++
		}
		t.Components = append(t.Components, cc)
	}
	t.Links = append([]spec.Link(nil), topo.Links...)
	return t
}
