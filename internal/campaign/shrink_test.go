package campaign

import (
	"os"
	"strings"
	"testing"

	"sosf/internal/dsl"
	"sosf/internal/spec"
)

// shrinkOne runs a single-run campaign with a strict population floor and
// returns the minimized finding plus its parsed reproducer.
func shrinkOne(t *testing.T, cfg Config) (Finding, *spec.Topology) {
	t.Helper()
	findings, err := New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d", len(findings))
	}
	topo, err := dsl.ParseTopology(findings[0].Source)
	if err != nil {
		t.Fatalf("minimized reproducer does not parse: %v\n%s", err, findings[0].Source)
	}
	return findings[0], topo
}

// TestShrinkDistillsMinimalReproducer drives the whole minimization stack
// on a seeded failure and checks the result is genuinely minimal: a
// single necessary event, a round budget bisected down to the violation
// round, and a population at the shrinker's floor.
func TestShrinkDistillsMinimalReproducer(t *testing.T) {
	f, topo := shrinkOne(t, Config{
		Seed: 3, Runs: 1, Populations: []int{64}, PopulationFloor: 0.95,
	})
	if f.Violation.Invariant != InvPopulationFloor {
		t.Fatalf("want a population-floor finding, got %s", f.Violation)
	}
	if n := len(topo.Scenario); n != 1 {
		t.Errorf("reproducer keeps %d events, want 1:\n%s", n, f.Source)
	}
	// Round bisection must land exactly on the violation round: one round
	// earlier the population has not dropped yet.
	if rounds := topo.Option("rounds", 0); int(rounds) != f.Violation.Round {
		t.Errorf("rounds option = %d, want the violation round %d:\n%s", rounds, f.Violation.Round, f.Source)
	}
	// Population halving stops at the floor (8, or 4 per component).
	floor := 4 * len(topo.Components)
	if floor < 8 {
		floor = 8
	}
	if nodes := int(topo.Option("nodes", 0)); nodes != floor {
		t.Errorf("nodes option = %d, want the shrinker floor %d:\n%s", nodes, floor, f.Source)
	}
	if f.ShrinkSteps == 0 || f.CandidateRuns < f.ShrinkSteps {
		t.Errorf("implausible shrink accounting: %d steps over %d candidate runs", f.ShrinkSteps, f.CandidateRuns)
	}
}

// TestShrinkPrefixAccelerationAgrees reruns a minimization with checkpoint
// acceleration disabled (SnapshotEvery beyond every round budget, so no
// checkpoint is ever captured) and requires the identical reproducer: the
// snapshot fast path must never change what the shrinker decides.
func TestShrinkPrefixAccelerationAgrees(t *testing.T) {
	cfg := Config{Seed: 3, Runs: 1, Populations: []int{64}, PopulationFloor: 0.95}
	fast, _ := shrinkOne(t, cfg)
	slow := cfg
	slow.SnapshotEvery = 1 << 20
	full, _ := shrinkOne(t, slow)
	if fast.Source != full.Source {
		t.Errorf("checkpoint-accelerated shrink disagrees with full re-execution:\n--- accelerated\n%s\n--- full\n%s", fast.Source, full.Source)
	}
	if string(fast.Events) != string(full.Events) {
		t.Errorf("golden streams differ between accelerated and full shrink")
	}
}

// TestReduceEvent covers the magnitude ladder per event kind.
func TestReduceEvent(t *testing.T) {
	kill := spec.ScenarioEvent{Kind: spec.ScenKill, Fraction: 0.08}
	if !reduceEvent(&kill) || kill.Fraction != 0.04 {
		t.Errorf("kill 0.08 should halve to 0.04, got %v", kill.Fraction)
	}
	atFloor := spec.ScenarioEvent{Kind: spec.ScenChurn, Fraction: 0.01}
	if reduceEvent(&atFloor) {
		t.Errorf("churn 0.01 is at the floor, must not reduce")
	}
	join := spec.ScenarioEvent{Kind: spec.ScenJoin, Count: 5}
	if !reduceEvent(&join) || join.Count != 2 {
		t.Errorf("join 5 should halve to 2, got %d", join.Count)
	}
	one := spec.ScenarioEvent{Kind: spec.ScenJoin, Count: 1}
	if reduceEvent(&one) {
		t.Errorf("join 1 is at the floor, must not reduce")
	}
	part := spec.ScenarioEvent{Kind: spec.ScenPartition, Count: 3}
	if !reduceEvent(&part) || part.Count != 2 {
		t.Errorf("partition 3 should step to 2, got %d", part.Count)
	}
	reconf := spec.ScenarioEvent{Kind: spec.ScenReconfigure}
	if reduceEvent(&reconf) {
		t.Errorf("reconfigure has no magnitude to reduce")
	}
}

// TestCloneSpecIsolation guards the shrinker's candidate isolation: edits
// to a clone must never leak into the original.
func TestCloneSpecIsolation(t *testing.T) {
	base, err := dsl.ParseTopology(`
topology t {
    nodes 16
    component a grid { weight 1 param width 3 port p }
    component b ring { weight 1 port q }
    link a.p b.q
    scenario {
        at 3 kill 0.5
        during 5 9 loss 0.2
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	c := cloneSpec(base)
	c.Scenario[0].Fraction = 0.25
	c.Scenario = c.Scenario[:1]
	c.SetOption("nodes", 8)
	c.Components[0].Params["width"] = 99
	c.Components[0].Ports[0] = "zzz"
	c.Links[0].A.Port = "zzz"
	if base.Scenario[0].Fraction != 0.5 || len(base.Scenario) != 2 {
		t.Error("scenario edit leaked into the original")
	}
	if base.Option("nodes", 0) != 16 {
		t.Error("option edit leaked into the original")
	}
	if base.Components[0].Params["width"] != 3 {
		t.Error("param edit leaked into the original")
	}
	if base.Components[0].Ports[0] != "p" {
		t.Error("port edit leaked into the original")
	}
	if base.Links[0].A.Port == "zzz" {
		t.Error("link edit leaked into the original")
	}
}

// TestLossWindowBlocksCheckpointReuse pins the index-keyed saved-loss
// rule: once a loss window has opened, checkpoints at or after its start
// must not seed candidates whose event indices may have shifted.
func TestLossWindowBlocksCheckpointReuse(t *testing.T) {
	events := []spec.ScenarioEvent{
		{From: 10, To: 14, Kind: spec.ScenLoss, Fraction: 0.2},
		{From: 30, To: 30, Kind: spec.ScenKill, Fraction: 0.1},
	}
	if lossOpenedBy(events, 9) {
		t.Error("no loss window open at round 9")
	}
	for _, round := range []int{10, 14, 20} {
		if !lossOpenedBy(events, round) {
			t.Errorf("loss window opened at 10, round %d must block reuse", round)
		}
	}
	if lossOpenedBy(events[1:], 50) {
		t.Error("kill events must not block checkpoint reuse")
	}
}

// TestReproducerHeaderMentionsReplay sanity-checks that the committed .in
// header tells a reader how to replay the file (the corpus's only
// documentation that travels with the entry).
func TestReproducerHeaderMentionsReplay(t *testing.T) {
	f := &Finding{
		RunID:     RunID{Topology: "treeline"},
		Violation: Violation{Invariant: InvReconverge},
		Source:    "topology treeline {\n}\n",
	}
	dir := t.TempDir()
	inPath, _, err := f.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	in, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(in), "go run ./cmd/sos play testdata/corpus/"+f.Name()+".in") {
		t.Errorf(".in header lost its replay instructions:\n%s", in)
	}
}
