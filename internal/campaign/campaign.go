package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"sosf"
	"sosf/internal/dsl"
	"sosf/internal/spec"
)

// Source is one base topology of the campaign matrix: a named piece of DSL
// source carrying components and links only — the campaign injects the
// population, seed, round budget, and fault timeline per run.
type Source struct {
	Name string
	Src  string
}

// Config parameterizes a campaign. The zero value of every field selects a
// default sized for a CI smoke run; see New.
type Config struct {
	// Seed is the campaign master seed. Every run seed, every sampled
	// timeline, and every shrinking decision derives from it, so one
	// campaign seed reproduces the whole campaign — including the exact
	// bytes of any emitted reproducer.
	Seed int64
	// Runs is the number of generated runs (default 8). Run i uses
	// topology i mod len(Topologies) and population (i / len(Topologies))
	// mod len(Populations), cycling through the matrix.
	Runs int
	// Topologies is the base topology matrix (default DefaultTopologies).
	Topologies []Source
	// Populations is the population axis of the matrix (default 64, 128).
	Populations []int
	// Horizon is the last round a sampled fault may touch (default 60).
	Horizon int
	// ReconvergeWithin is the Reconverge invariant's budget: every run
	// must reach full convergence within this many rounds of its last
	// fault (default 40). Each run simulates Horizon + ReconvergeWithin
	// rounds.
	ReconvergeWithin int
	// MaxEvents caps the number of fault events per timeline (default 4).
	MaxEvents int
	// BandwidthCeiling is the BandwidthCeiling invariant's limit in bytes
	// per node per round (default 12288 — flash-join and rebalance rounds
	// legitimately spike to ~7.3 KB/node at the default populations;
	// steady-state rounds stay under 2 KB/node).
	BandwidthCeiling float64
	// PopulationFloor, when positive, adds the PopulationFloor invariant:
	// no round's population may drop below this fraction of the initial
	// population. It is deliberately strict — ordinary kill blasts trip
	// it — and exists to exercise the shrinker and seed the regression
	// corpus (default off).
	PopulationFloor float64
	// NoRepair disables the repair events the generator adds by default:
	// a replacement join a few rounds after every kill blast, and a single
	// weight-preserving rebalance (Reconfigure with unchanged weights) at
	// the end of every timeline. Historically this exposed the index-hole
	// gap: the greedy gradient steered by the sparse index a node was
	// assigned while the oracle re-ranked survivors densely, so a single
	// unreplaced death pinned Elementary Topology below 1.0 until a
	// reconfiguration. With the self-healing layer (dense alive-ranks plus
	// threshold re-densify) bare kill timelines reconverge on their own, so
	// a NoRepair campaign is now expected to run clean; combine it with
	// NoHeal to reproduce the legacy gap, which the committed corpus pins.
	NoRepair bool
	// NoHeal disables the self-healing layer in every generated run by
	// pinning `option heal 0` in the spec, so emitted reproducers replay
	// the legacy no-healing behavior with no flags.
	NoHeal bool
	// SkipResumeCheck disables the per-run resume-equivalence check
	// (snapshot at mid-run, restore into a fresh system, require the
	// resumed event stream to be byte-identical).
	SkipResumeCheck bool
	// SnapshotEvery is the cadence of the in-memory checkpoints the
	// shrinker resumes candidate runs from (default 10 rounds).
	SnapshotEvery int
	// Workers shards each simulation round (default 1). Results are
	// byte-identical at any value; this only changes the wall clock.
	Workers int
	// Invariants appends extra invariants after the default set.
	Invariants []Invariant
	// Log, when set, receives one progress line per run.
	Log io.Writer
}

// Campaign is a configured generative fuzzing campaign.
type Campaign struct {
	cfg        Config
	invariants []Invariant
}

// New applies defaults and assembles the invariant set: Reconverge,
// OrphanTail, and BandwidthCeiling always run; PopulationFloor joins when
// configured; Config.Invariants run last.
func New(cfg Config) *Campaign {
	if cfg.Runs <= 0 {
		cfg.Runs = 8
	}
	if len(cfg.Topologies) == 0 {
		cfg.Topologies = DefaultTopologies()
	}
	if len(cfg.Populations) == 0 {
		cfg.Populations = []int{64, 128}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 60
	}
	if cfg.ReconvergeWithin <= 0 {
		cfg.ReconvergeWithin = 40
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 4
	}
	if cfg.BandwidthCeiling <= 0 {
		cfg.BandwidthCeiling = 12288
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	invs := []Invariant{
		Reconverge{Within: cfg.ReconvergeWithin},
		OrphanTail{},
		BandwidthCeiling{MaxBytes: cfg.BandwidthCeiling},
	}
	if cfg.PopulationFloor > 0 {
		invs = append(invs, PopulationFloor{MinFraction: cfg.PopulationFloor})
	}
	invs = append(invs, cfg.Invariants...)
	return &Campaign{cfg: cfg, invariants: invs}
}

// RunID identifies one cell of the campaign matrix.
type RunID struct {
	// Index is the run's position in the campaign (0-based).
	Index int
	// Topology is the base topology's name.
	Topology string
	// Population is the initial node count.
	Population int
	// Seed is the run's derived simulation seed.
	Seed int64
}

// Finding is one invariant violation, already minimized: Source is the
// smallest .sos reproducer the shrinker could distill (embedding its own
// nodes/seed/rounds options, so it replays with no flags), and Events is
// the golden JSONL event stream that replay must reproduce byte for byte.
type Finding struct {
	RunID
	// CampaignSeed is the campaign master seed the finding derives from.
	CampaignSeed int64
	// Violation is the invariant failure, re-confirmed on the minimal
	// reproducer.
	Violation Violation
	// Source is the minimal reproducer (dsl.Emit output).
	Source string
	// Events is Replay's JSONL stream for Source.
	Events []byte
	// ShrinkSteps counts accepted shrinking edits; CandidateRuns counts
	// every candidate execution the shrinker paid for.
	ShrinkSteps   int
	CandidateRuns int
}

// Run executes the whole campaign and returns every (minimized) finding,
// in run order. A clean campaign returns an empty slice and no error;
// errors mean the campaign itself could not run, not that an invariant
// failed.
func (c *Campaign) Run() ([]Finding, error) {
	var findings []Finding
	for i := 0; i < c.cfg.Runs; i++ {
		f, found, err := c.runOne(i)
		if err != nil {
			return findings, fmt.Errorf("campaign run %d: %w", i, err)
		}
		if found {
			findings = append(findings, f)
		}
	}
	c.logf("campaign seed %d: %d violation(s) in %d runs", c.cfg.Seed, len(findings), c.cfg.Runs)
	return findings, nil
}

// runOne builds, executes, checks, and (on violation) minimizes one run.
func (c *Campaign) runOne(idx int) (Finding, bool, error) {
	id := c.runID(idx)
	topo, err := c.buildRun(id)
	if err != nil {
		return Finding{}, false, err
	}
	run, err := c.execute(topo, execOpts{checkResume: !c.cfg.SkipResumeCheck, snapEvery: c.cfg.SnapshotEvery})
	if err != nil {
		return Finding{}, false, err
	}
	v := c.check(run)
	if v == nil {
		c.logf("run %d/%d %s pop=%d seed=%d: ok (%d events, %d rounds, converged=%v)",
			idx+1, c.cfg.Runs, id.Topology, id.Population, id.Seed,
			len(topo.Scenario), run.Rounds, run.Report.Converged)
		return Finding{}, false, nil
	}
	c.logf("run %d/%d %s pop=%d seed=%d: VIOLATION %s; shrinking",
		idx+1, c.cfg.Runs, id.Topology, id.Population, id.Seed, v)
	sh := newShrinker(c, v, topo, run)
	minTopo, _, _ := sh.minimize()
	// Re-confirm on a clean full run of the emitted source: the committed
	// reproducer must be exactly what was tested, with no checkpoint
	// acceleration in the loop.
	final, err := c.execute(minTopo, execOpts{checkResume: sh.resumeMode})
	if err != nil {
		return Finding{}, false, fmt.Errorf("re-running minimal reproducer: %w", err)
	}
	fv := c.checkNamed(final, v.Invariant)
	if fv == nil {
		return Finding{}, false, fmt.Errorf("minimal reproducer no longer violates %q (shrinker accepted a checkpoint-accelerated run a full run disagrees with)", v.Invariant)
	}
	var golden bytes.Buffer
	if _, err := Replay(final.Source, &golden); err != nil {
		return Finding{}, false, fmt.Errorf("replaying minimal reproducer: %w", err)
	}
	c.logf("  minimized to %d event(s), %d nodes, %d rounds (%d accepted steps, %d candidate runs)",
		len(minTopo.Scenario), minTopo.Option("nodes", 0), minTopo.Option("rounds", 0),
		sh.steps, sh.tried)
	return Finding{
		RunID:         id,
		CampaignSeed:  c.cfg.Seed,
		Violation:     *fv,
		Source:        final.Source,
		Events:        golden.Bytes(),
		ShrinkSteps:   sh.steps,
		CandidateRuns: sh.tried,
	}, true, nil
}

// runID derives run idx's matrix cell and seed from the campaign seed.
func (c *Campaign) runID(idx int) RunID {
	t := c.cfg.Topologies[idx%len(c.cfg.Topologies)]
	pop := c.cfg.Populations[(idx/len(c.cfg.Topologies))%len(c.cfg.Populations)]
	return RunID{Index: idx, Topology: t.Name, Population: pop, Seed: deriveSeed(c.cfg.Seed, uint64(idx))}
}

// buildRun assembles the run's spec: the base topology with the matrix
// cell's nodes/seed options, a sampled fault timeline, and a round budget
// of Horizon + ReconvergeWithin so the Reconverge invariant is always
// judgeable.
func (c *Campaign) buildRun(id RunID) (*spec.Topology, error) {
	base := c.cfg.Topologies[id.Index%len(c.cfg.Topologies)]
	topo, err := dsl.ParseTopology(base.Src)
	if err != nil {
		return nil, fmt.Errorf("base topology %q: %w", base.Name, err)
	}
	topo.SetOption("nodes", int64(id.Population))
	topo.SetOption("seed", id.Seed)
	topo.SetOption("rounds", int64(c.cfg.Horizon+c.cfg.ReconvergeWithin))
	if c.cfg.NoHeal {
		topo.SetOption("heal", 0)
	}
	topo.Scenario = generateTimeline(timelineRand(id.Seed), topo, c.cfg, id.Population)
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("generated run %d (%s): %w", id.Index, base.Name, err)
	}
	return topo, nil
}

// check returns the run's first violation: a resume-equivalence divergence
// wins, then the configured invariants in order.
func (c *Campaign) check(r *Run) *Violation {
	if r.Resume != nil {
		return r.Resume
	}
	for _, inv := range c.invariants {
		if v := inv.Check(r); v != nil {
			return v
		}
	}
	return nil
}

// checkNamed evaluates only the named invariant — the shrinker's
// predicate, so minimization never wanders onto a different failure.
func (c *Campaign) checkNamed(r *Run, name string) *Violation {
	if name == InvResume {
		return r.Resume
	}
	for _, inv := range c.invariants {
		if inv.Name() == name {
			return inv.Check(r)
		}
	}
	return nil
}

func (c *Campaign) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}

// Run is one executed campaign run: the spec that ran, everything it
// emitted, and the final system for end-state invariants. Events and
// Lines are parallel — Lines[i] is Events[i] JSONL-encoded, exactly the
// bytes `sos play -events jsonl` would stream for that round.
type Run struct {
	Spec   *spec.Topology
	Source string
	// Rounds is the executed round count (the spec's `option rounds`).
	Rounds int
	// InitialNodes is the boot population (the spec's `option nodes`).
	InitialNodes int
	// LastFault is the last round any fault event touches (0 if none).
	LastFault int
	Events    []sosf.RoundEvent
	Lines     [][]byte
	Report    *sosf.Report
	Sys       *sosf.System
	// Resume is the resume-equivalence violation, when that check ran and
	// the resumed stream diverged.
	Resume *Violation
	snaps  []prefixSnap
}

// prefixSnap is an in-memory checkpoint of a run at a round boundary.
type prefixSnap struct {
	round int
	data  []byte
}

type execOpts struct {
	// checkResume runs the mid-run snapshot/restore equivalence check.
	checkResume bool
	// snapEvery captures in-memory checkpoints at this cadence (0 = none).
	snapEvery int
	// prefix, when set, resumes the run from this checkpoint of prefixRun
	// instead of round 0; the skipped rounds' events are spliced in from
	// prefixRun (they are identical by determinism).
	prefix    *prefixSnap
	prefixRun *Run
}

// execute emits the spec to DSL source and runs that source through the
// public sosf API — so every result, including a shrunk reproducer, is the
// behavior of exactly the bytes that would be committed. The run executes
// the spec's full `option rounds` budget (never stopping at convergence)
// with the spec's own seed and population.
func (c *Campaign) execute(topo *spec.Topology, eo execOpts) (*Run, error) {
	src, err := dsl.Emit(topo)
	if err != nil {
		return nil, err
	}
	rounds := int(topo.Option("rounds", 0))
	if rounds <= 0 {
		return nil, fmt.Errorf("campaign: run spec must carry `option rounds`")
	}
	r := &Run{
		Spec:         topo,
		Source:       src,
		Rounds:       rounds,
		InitialNodes: int(topo.Option("nodes", 0)),
		LastFault:    lastFaultRound(topo.Scenario),
	}
	sys, err := sosf.New(src,
		sosf.WithWorkers(c.cfg.Workers),
		sosf.WithRunToEnd(),
		sosf.WithEvents(collectInto(&r.Events, &r.Lines)))
	if err != nil {
		return nil, err
	}
	start := 0
	if eo.prefix != nil {
		if err := sys.Restore(bytes.NewReader(eo.prefix.data)); err != nil {
			return nil, fmt.Errorf("campaign: prefix restore at round %d: %w", eo.prefix.round, err)
		}
		start = eo.prefix.round
		r.Events = append(r.Events, eo.prefixRun.Events[:start]...)
		r.Lines = append(r.Lines, eo.prefixRun.Lines[:start]...)
	}
	mid := rounds / 2
	var midSnap []byte
	for round := start; round < rounds; round++ {
		if _, err := sys.Step(1); err != nil {
			return nil, err
		}
		done := round + 1
		if eo.checkResume && done == mid {
			var buf bytes.Buffer
			if err := sys.Snapshot(&buf); err != nil {
				return nil, err
			}
			midSnap = buf.Bytes()
		}
		if eo.snapEvery > 0 && done%eo.snapEvery == 0 && done < rounds {
			var buf bytes.Buffer
			if err := sys.Snapshot(&buf); err != nil {
				return nil, err
			}
			r.snaps = append(r.snaps, prefixSnap{round: done, data: buf.Bytes()})
		}
	}
	if len(r.Events) != rounds {
		return nil, fmt.Errorf("campaign: executed %d rounds but captured %d events", rounds, len(r.Events))
	}
	r.Report = sys.Report()
	r.Sys = sys
	if midSnap != nil {
		if err := c.resumeCheck(r, mid, midSnap); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// resumeCheck restores the mid-run checkpoint into a fresh system built
// from the same source and replays the second half; any byte difference
// from the uninterrupted stream is a resume-equivalence violation (the
// determinism contract behind checkpoint/restore).
func (c *Campaign) resumeCheck(r *Run, mid int, snap []byte) error {
	var events []sosf.RoundEvent
	var lines [][]byte
	sys, err := sosf.New(r.Source,
		sosf.WithWorkers(c.cfg.Workers),
		sosf.WithRunToEnd(),
		sosf.WithEvents(collectInto(&events, &lines)))
	if err != nil {
		return err
	}
	if err := sys.Restore(bytes.NewReader(snap)); err != nil {
		return err
	}
	if _, err := sys.Step(r.Rounds - mid); err != nil {
		return err
	}
	if len(lines) != r.Rounds-mid {
		r.Resume = &Violation{
			Invariant: InvResume,
			Round:     mid,
			Detail: fmt.Sprintf("resume from round %d produced %d events, the uninterrupted run %d",
				mid, len(lines), r.Rounds-mid),
		}
		return nil
	}
	for i, line := range lines {
		if !bytes.Equal(line, r.Lines[mid+i]) {
			r.Resume = &Violation{
				Invariant: InvResume,
				Round:     mid + i + 1,
				Detail: fmt.Sprintf("round %d of the run resumed from round %d diverges from the uninterrupted run",
					mid+i+1, mid),
			}
			return nil
		}
	}
	return nil
}

// collectInto returns a round-event subscriber appending each event and
// its JSONL encoding (identical bytes to sosf.JSONLSink's output) to the
// given slices.
func collectInto(events *[]sosf.RoundEvent, lines *[][]byte) func(sosf.RoundEvent) {
	return func(ev sosf.RoundEvent) {
		line, err := json.Marshal(ev)
		if err != nil {
			// RoundEvent is a plain data struct; Marshal cannot fail.
			panic(err)
		}
		*events = append(*events, ev)
		*lines = append(*lines, append(line, '\n'))
	}
}

// lastFaultRound returns the last round any fault event touches. Snapshot
// actions are not faults; everything else (including joins and
// reconfigurations) perturbs the system and restarts the reconvergence
// clock.
func lastFaultRound(events []spec.ScenarioEvent) int {
	last := 0
	for _, ev := range events {
		if ev.Kind == spec.ScenSnapshot {
			continue
		}
		if ev.To > last {
			last = ev.To
		}
	}
	return last
}

// deriveSeed is a splitmix64-style mix of the campaign seed and a salt,
// masked positive so it survives a round trip through `option seed`.
func deriveSeed(seed int64, salt uint64) int64 {
	x := uint64(seed) ^ (salt+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}
