// Package campaign is the deterministic generative fuzzing campaign
// behind `sos fuzz`: it samples randomized fault timelines — churn bursts,
// loss storms, cascading partitions, flash-join crowds, kill blasts, and
// mid-run reconfigurations — over a seed × topology × population matrix,
// executes each cell through the public sosf API, and checks a pluggable
// invariant set:
//
//   - Reconverge: every layer back at accuracy 1.0 within N rounds of the
//     last fault (the paper's self-assembly promise).
//   - OrphanTail: the peer-sampling overlay's in-degree-zero tail stays
//     inside the ≤1% transient bound at the end of the run.
//   - BandwidthCeiling: no round moves more than the configured bytes per
//     node.
//   - Resume equivalence: a mid-run checkpoint restored into a fresh
//     system replays the remaining rounds byte-identically.
//   - PopulationFloor: an intentionally strict opt-in knob used to seed
//     failures for the shrinker and the regression corpus.
//
// When an invariant fires, the campaign minimizes automatically: it drops
// timeline events, narrows fault windows, halves magnitudes, bisects the
// round budget down to the earliest failing horizon, and shrinks the
// population — greedily, to a fixpoint, re-running every candidate from
// its emitted DSL source so the reproducer is exactly what was tested.
// Candidates that share an unchanged prefix with the current best resume
// from in-memory checkpoints (the PR 5 snapshot machinery) instead of
// replaying from round 0. Everything derives from the campaign seed, so
// the same seed always distills the same reproducer, byte for byte.
//
// Findings are committed under testdata/corpus as .in/.out pairs: the
// minimal .sos source (self-contained — it embeds its own nodes, seed,
// and rounds options) and the golden JSONL event stream its replay must
// reproduce. corpus_test.go replays every pair in CI through the same
// Replay entry point the campaign used to write them.
package campaign
