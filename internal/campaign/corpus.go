package campaign

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sosf"
)

// Replay executes a reproducer's DSL source exactly as
// `sos play -events jsonl file.sos` does — the file's own seed, population,
// and round budget, extended to the scenario horizon, never stopping at
// convergence — streaming the JSONL round events to w. This is the single
// definition of "replaying a corpus entry": the campaign writes golden
// .out files through it and the corpus regression test re-checks them
// through it.
func Replay(src string, w io.Writer) (*sosf.Report, error) {
	sys, err := sosf.New(src, sosf.WithRunToEnd())
	if err != nil {
		return nil, err
	}
	sys.Subscribe(sosf.JSONLSink(w))
	rounds := sys.RoundBudget()
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if _, err := sys.Step(rounds); err != nil {
		return nil, err
	}
	return sys.Report(), nil
}

// Name returns the finding's corpus basename — topology, invariant,
// campaign seed, run index — unique within a campaign and stable across
// reruns of the same seed.
func (f *Finding) Name() string {
	return fmt.Sprintf("%s-%s-c%d-r%d", f.Topology, f.Violation.Invariant, f.CampaignSeed, f.Index)
}

// Write commits the finding under dir as a keep-sorted-style corpus pair:
// Name().in is the minimal .sos reproducer behind a provenance header, and
// Name().out is the golden JSONL event stream its replay must reproduce
// byte for byte. Both files are fully determined by the campaign seed (no
// timestamps, no environment), so regenerating the corpus is always a
// no-op diff unless behavior actually changed.
func (f *Finding) Write(dir string) (inPath, outPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	name := f.Name()
	inPath = filepath.Join(dir, name+".in")
	outPath = filepath.Join(dir, name+".out")
	var b strings.Builder
	fmt.Fprintf(&b, "# Minimal reproducer distilled by `sos fuzz`.\n")
	fmt.Fprintf(&b, "# Violation: %s\n", f.Violation)
	fmt.Fprintf(&b, "# Campaign seed %d, run %d (%s, %d nodes, run seed %d);\n",
		f.CampaignSeed, f.Index, f.Topology, f.Population, f.Seed)
	fmt.Fprintf(&b, "# shrunk in %d accepted steps over %d candidate runs.\n",
		f.ShrinkSteps, f.CandidateRuns)
	fmt.Fprintf(&b, "# Replay: go run ./cmd/sos play testdata/corpus/%s.in\n", name)
	fmt.Fprintf(&b, "# The stream must stay byte-identical to %s.out (see corpus_test.go).\n", name)
	b.WriteString(strings.TrimLeft(f.Source, "\n"))
	if err := os.WriteFile(inPath, []byte(b.String()), 0o644); err != nil {
		return "", "", err
	}
	if err := os.WriteFile(outPath, f.Events, 0o644); err != nil {
		return "", "", err
	}
	return inPath, outPath, nil
}
