package graph

import (
	"testing"
	"testing/quick"
)

// ringGraph builds a cycle of n vertices.
func ringGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestAddEdgeIgnoresSelfLoop(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 1)
	if g.EdgeCount() != 0 {
		t.Fatalf("EdgeCount = %d, want 0", g.EdgeCount())
	}
}

func TestEdgeSymmetry(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2)
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edges must be undirected")
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
}

func TestRingProperties(t *testing.T) {
	g := ringGraph(10)
	if !g.Connected() {
		t.Fatal("ring must be connected")
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("ring-10 diameter = %d, want 5", d)
	}
	min, max, mean := g.DegreeStats()
	if min != 2 || max != 2 || mean != 2 {
		t.Fatalf("ring degrees = (%d, %d, %f), want all 2", min, max, mean)
	}
	if c := g.ClusteringCoefficient(); c != 0 {
		t.Fatalf("ring clustering = %f, want 0", c)
	}
}

func TestCliqueProperties(t *testing.T) {
	n := 6
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	if d := g.Diameter(); d != 1 {
		t.Fatalf("clique diameter = %d, want 1", d)
	}
	if c := g.ClusteringCoefficient(); c != 1 {
		t.Fatalf("clique clustering = %f, want 1", c)
	}
	if apl := g.AvgPathLength(); apl != 1 {
		t.Fatalf("clique avg path = %f, want 1", apl)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("graph with two components is not connected")
	}
	if d := g.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if comps[0][0] != 0 || comps[1][0] != 2 {
		t.Fatalf("components order unexpected: %v", comps)
	}
}

func TestConnectedOverSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if !g.ConnectedOver([]int{0, 1, 2}) {
		t.Fatal("{0,1,2} should be connected")
	}
	if g.ConnectedOver([]int{0, 1, 3}) {
		t.Fatal("{0,1,3} should not be connected")
	}
	if !g.ConnectedOver(nil) || !g.ConnectedOver([]int{2}) {
		t.Fatal("empty and singleton sets are trivially connected")
	}
}

func TestBFSDepths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d := g.BFSDepths(0)
	want := []int{0, 1, 2, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("depths = %v, want %v", d, want)
		}
	}
}

// Property: any ring of n >= 3 vertices has diameter floor(n/2) and is
// connected.
func TestRingDiameterProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%30) + 3
		g := ringGraph(n)
		return g.Connected() && g.Diameter() == n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: edge count equals the handshake sum of degrees / 2.
func TestHandshakeProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := New(32)
		for _, p := range pairs {
			g.AddEdge(int(p%32), int((p>>5)%32))
		}
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	n := g.Neighbors(2)
	want := []int{0, 3, 4}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", n, want)
		}
	}
}
