// Package graph provides lightweight undirected-graph analysis used by the
// experiment harness and the test suite to characterize realized overlay
// topologies: connectivity, path lengths, degrees, and clustering.
//
// Graphs are built over dense vertex indices (the engine's node slots).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph over vertices 0..N-1 backed by adjacency
// sets. The zero value is unusable; create graphs with New.
type Graph struct {
	adj []map[int]struct{}
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Graph{adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge inserts the undirected edge (u, v). Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbor list of u.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, s := range g.adj {
		total += len(s)
	}
	return total / 2
}

// ConnectedOver reports whether the sub-graph induced by the given vertices
// is connected (an empty or singleton set is connected).
func (g *Graph) ConnectedOver(vertices []int) bool {
	if len(vertices) <= 1 {
		return true
	}
	in := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		in[v] = true
	}
	seen := map[int]bool{vertices[0]: true}
	queue := []int{vertices[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if in[v] && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(seen) == len(vertices)
}

// Connected reports whether the whole graph is connected.
func (g *Graph) Connected() bool {
	all := make([]int, len(g.adj))
	for i := range all {
		all[i] = i
	}
	return g.ConnectedOver(all)
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	for start := range g.adj {
		if seen[start] {
			continue
		}
		var comp []int
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// BFSDepths returns the shortest-path distance (in hops) from src to every
// vertex; unreachable vertices get -1.
func (g *Graph) BFSDepths(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the longest shortest path in the graph; -1 if the graph
// is disconnected or empty. O(V·E) — intended for small test graphs.
func (g *Graph) Diameter() int {
	if len(g.adj) == 0 {
		return -1
	}
	max := 0
	for u := range g.adj {
		for _, d := range g.BFSDepths(u) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AvgPathLength returns the mean shortest-path length over all ordered
// reachable pairs, or 0 if there are none.
func (g *Graph) AvgPathLength() float64 {
	var sum, count int64
	for u := range g.adj {
		for v, d := range g.BFSDepths(u) {
			if v != u && d > 0 {
				sum += int64(d)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// ClusteringCoefficient returns the mean local clustering coefficient over
// vertices with degree >= 2.
func (g *Graph) ClusteringCoefficient() float64 {
	var sum float64
	count := 0
	for u := range g.adj {
		deg := len(g.adj[u])
		if deg < 2 {
			continue
		}
		links := 0
		neigh := g.Neighbors(u)
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				if g.HasEdge(neigh[i], neigh[j]) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(deg*(deg-1))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// DegreeStats returns min, max and mean vertex degree.
func (g *Graph) DegreeStats() (min, max int, mean float64) {
	if len(g.adj) == 0 {
		return 0, 0, 0
	}
	min = len(g.adj[0])
	var sum int
	for _, s := range g.adj {
		d := len(s)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	return min, max, float64(sum) / float64(len(g.adj))
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph.Graph{v=%d e=%d}", g.N(), g.EdgeCount())
}
