package view

// Tests pinning the edge cases the scratch-buffer refactor must preserve:
// the RandomSample guards, draw-for-draw equivalence of the *Into APIs with
// their copying wrappers, ForceAdd/Penalize boundary behavior, and the
// MergeInto ≡ MergeBuffers property on random inputs.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomSampleGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := New(4)
	v.Add(desc(1, 0))
	v.Add(desc(2, 0))

	// n <= 0 must not panic (the pre-guard code sliced perm[:n]) and must
	// not consume randomness.
	before := rng.Int63()
	rng = rand.New(rand.NewSource(1))
	if got := v.RandomSample(rng, -1); got != nil {
		t.Fatalf("RandomSample(-1) = %v, want nil", got)
	}
	if got := v.RandomSample(rng, 0); got != nil {
		t.Fatalf("RandomSample(0) = %v, want nil", got)
	}
	if after := rng.Int63(); after != before {
		t.Fatal("n <= 0 must not consume random draws")
	}

	empty := New(4)
	if got := empty.RandomSample(rng, 3); got != nil {
		t.Fatalf("RandomSample on empty view = %v, want nil", got)
	}
	if got := empty.RandomSampleInto(rng, 3, nil, &Sampler{}); got != nil {
		t.Fatalf("RandomSampleInto on empty view = %v, want nil dst", got)
	}
}

// TestRandomSampleIntoEquivalence checks the two sampling APIs are
// interchangeable draw-for-draw: same output, same post-call RNG state, for
// partial samples, exact-size samples, and oversized requests.
func TestRandomSampleIntoEquivalence(t *testing.T) {
	for _, n := range []int{1, 3, 9, 10, 25} {
		v := New(10)
		for i := NodeID(0); i < 10; i++ {
			v.Add(desc(i, uint16(i)))
		}
		rngA := rand.New(rand.NewSource(42))
		rngB := rand.New(rand.NewSource(42))
		var s Sampler
		a := v.RandomSample(rngA, n)
		b := v.RandomSampleInto(rngB, n, nil, &s)
		if len(a) != len(b) {
			t.Fatalf("n=%d: len %d vs %d", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: sample diverges at %d: %v vs %v", n, i, a[i], b[i])
			}
		}
		if rngA.Int63() != rngB.Int63() {
			t.Fatalf("n=%d: RNG states diverge after sampling", n)
		}
	}
}

// TestRandomSampleIntoAppends checks Into semantics: dst's existing prefix
// is preserved and the scratch sampler can be shared across views.
func TestRandomSampleIntoAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := New(8)
	for i := NodeID(0); i < 8; i++ {
		v.Add(desc(i, 0))
	}
	var s Sampler
	dst := []Descriptor{desc(99, 1)}
	dst = v.RandomSampleInto(rng, 3, dst, &s)
	if len(dst) != 4 || dst[0] != desc(99, 1) {
		t.Fatalf("dst prefix not preserved: %v", dst)
	}
	w := New(4)
	w.Add(desc(50, 0))
	w.Add(desc(51, 0))
	if got := w.RandomSampleInto(rng, 1, dst[:0], &s); len(got) != 1 {
		t.Fatalf("sampler reuse across views failed: %v", got)
	}
}

func TestForceAddOldestTieBreaking(t *testing.T) {
	// Three entries at the same (maximal) age: the eviction must hit the
	// lowest position — the tie-break oldestIndex documents.
	v := New(3)
	v.Add(desc(10, 5))
	v.Add(desc(11, 5))
	v.Add(desc(12, 5))
	v.ForceAdd(desc(13, 0))
	if v.Contains(10) {
		t.Fatal("tie on age must evict the lowest position (id 10)")
	}
	if !v.Contains(11) || !v.Contains(12) || !v.Contains(13) {
		t.Fatal("ids 11, 12, 13 should be present")
	}
	// A duplicate ID never evicts: the fresher copy replaces in place.
	v.ForceAdd(desc(11, 0))
	if v.Len() != 3 {
		t.Fatalf("Len() = %d, want 3 (duplicate must replace, not evict)", v.Len())
	}
	if got := v.At(v.IndexOf(11)).Age; got != 0 {
		t.Fatalf("age of refreshed duplicate = %d, want 0", got)
	}
}

func TestPenalizeSaturates(t *testing.T) {
	v := New(2)
	v.Add(desc(1, ^uint16(0)-3))
	if !v.Penalize(1, 10) {
		t.Fatal("Penalize on a present ID must report true")
	}
	if got := v.At(v.IndexOf(1)).Age; got != ^uint16(0) {
		t.Fatalf("age = %d, want saturation at %d", got, ^uint16(0))
	}
	// Saturated stays saturated.
	v.Penalize(1, ^uint16(0))
	if got := v.At(v.IndexOf(1)).Age; got != ^uint16(0) {
		t.Fatalf("age after second penalty = %d, want %d", got, ^uint16(0))
	}
	if v.Penalize(42, 1) {
		t.Fatal("Penalize on a missing ID must report false")
	}
}

func TestSetCapClampsToOne(t *testing.T) {
	v := New(4)
	v.Add(desc(1, 0))
	v.Add(desc(2, 0))
	v.SetCap(-3)
	if v.Cap() != 1 || v.Len() != 1 {
		t.Fatalf("after SetCap(-3): cap=%d len=%d, want 1/1", v.Cap(), v.Len())
	}
}

func TestUpsertMatchesAddPlusContains(t *testing.T) {
	reference := New(2)
	probe := New(2)
	ds := []Descriptor{
		desc(1, 4), desc(2, 2), desc(1, 1), desc(1, 9), desc(3, 0), desc(2, 5),
	}
	for _, d := range ds {
		wantChanged := reference.Add(d)
		wantHeld := reference.Contains(d.ID)
		changed, held := probe.Upsert(d)
		if changed != wantChanged || held != wantHeld {
			t.Fatalf("Upsert(%v) = (%v, %v), want (%v, %v)",
				d, changed, held, wantChanged, wantHeld)
		}
	}
}

func TestAppendEntriesAndIDs(t *testing.T) {
	v := New(3)
	v.Add(desc(4, 1))
	v.Add(desc(5, 2))
	entries := v.AppendEntries([]Descriptor{desc(9, 9)})
	if len(entries) != 3 || entries[0] != desc(9, 9) || entries[1].ID != 4 || entries[2].ID != 5 {
		t.Fatalf("AppendEntries = %v", entries)
	}
	ids := v.AppendIDs([]NodeID{9})
	if len(ids) != 3 || ids[0] != 9 || ids[1] != 4 || ids[2] != 5 {
		t.Fatalf("AppendIDs = %v", ids)
	}
}

func TestReplaceAllTruncatesToCapacity(t *testing.T) {
	v := New(2)
	v.Add(desc(1, 0))
	v.ReplaceAll([]Descriptor{desc(7, 1), desc(8, 2), desc(9, 3)})
	if v.Len() != 2 || v.At(0).ID != 7 || v.At(1).ID != 8 {
		t.Fatalf("ReplaceAll kept %v", v.Entries())
	}
	v.ReplaceAll(nil)
	if v.Len() != 0 {
		t.Fatalf("ReplaceAll(nil) left %d entries", v.Len())
	}
}

// quickBuffers derives a deterministic set of descriptor buffers from
// fuzz-style raw inputs: IDs collide often (int8 domain) so the
// freshest-wins dedup paths are exercised heavily.
func quickBuffers(ids []int8, ages []uint16, epochs []uint8, cuts []uint8) [][]Descriptor {
	ds := make([]Descriptor, len(ids))
	for i, id := range ids {
		var age uint16
		if i < len(ages) {
			age = ages[i]
		}
		var epoch uint32
		if i < len(epochs) {
			epoch = uint32(epochs[i] % 3)
		}
		ds[i] = Descriptor{ID: NodeID(id), Age: age, Profile: Profile{Epoch: epoch}}
	}
	// Split ds into up to len(cuts)+1 buffers at the cut offsets.
	var out [][]Descriptor
	start := 0
	for _, c := range cuts {
		cut := start + int(c)%(len(ds)-start+1)
		out = append(out, ds[start:cut])
		start = cut
	}
	out = append(out, ds[start:])
	return out
}

// Property: MergeInto through a (reused) Merger produces exactly what the
// copying MergeBuffers produces, buffer for buffer, on random inputs.
func TestMergeIntoEquivalentToMergeBuffers(t *testing.T) {
	var shared Merger // deliberately reused across every check
	f := func(ids []int8, ages []uint16, epochs []uint8, cuts []uint8, selfRaw int8) bool {
		buffers := quickBuffers(ids, ages, epochs, cuts)
		self := NodeID(selfRaw)
		want := MergeBuffers(self, buffers...)
		got := MergeInto(&shared, self, buffers...)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Merger result never contains self, InvalidNode, or duplicate
// IDs, and always holds the freshest copy per ID.
func TestMergerInvariants(t *testing.T) {
	var m Merger
	f := func(ids []int8, ages []uint16, epochs []uint8, cuts []uint8, selfRaw int8) bool {
		buffers := quickBuffers(ids, ages, epochs, cuts)
		self := NodeID(selfRaw)
		out := MergeInto(&m, self, buffers...)
		seen := map[NodeID]Descriptor{}
		for _, d := range out {
			if d.ID == self || d.ID == InvalidNode {
				return false
			}
			if _, dup := seen[d.ID]; dup {
				return false
			}
			seen[d.ID] = d
		}
		for _, b := range buffers {
			for _, d := range b {
				if d.ID == self || d.ID == InvalidNode {
					continue
				}
				if d.Fresher(seen[d.ID]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
