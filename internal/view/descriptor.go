// Package view provides the node-descriptor and bounded partial-view
// primitives shared by every gossip protocol in the framework (peer
// sampling, Vicinity-style overlays, and the runtime sub-procedures).
//
// A Descriptor is the unit of gossip: a node identifier plus the profile
// assigned to that node by the runtime's role allocator, and an age used for
// freshness-based replacement and failure detection. A View is a bounded set
// of descriptors with no duplicates and never containing its owner.
package view

import (
	"fmt"
	"math"
)

// NodeID uniquely identifies a node for the lifetime of the system. IDs are
// never reused, even across churn.
type NodeID int64

// InvalidNode is the zero-ish sentinel for "no node". Valid IDs are >= 0.
const InvalidNode NodeID = -1

// ComponentID identifies one component (one elementary shape instance) of
// the target topology.
type ComponentID int32

// NoComponent marks a node that has not (yet) been assigned to a component
// by the role allocator.
const NoComponent ComponentID = -1

// RankInf is returned by rankers to reject a candidate outright: the
// candidate is never kept in the view, regardless of available capacity.
const RankInf = math.MaxFloat64

// Profile is the role assigned to a node by the runtime's allocator. Every
// layer of the stack ranks and selects candidates using only profiles, so a
// profile is all a node needs to know about a peer.
//
// Index is a dense index inside the component (0..Size-1) from which shapes
// derive virtual coordinates (position on a ring, grid cell, tree slot).
// Size is the component size at assignment time. Epoch is the configuration
// epoch: descriptors from older epochs are stale and evicted on contact.
type Profile struct {
	Comp  ComponentID
	Index int32
	Size  int32
	Key   uint64
	Epoch uint32
}

// SameComponent reports whether both profiles belong to the same component
// of the same configuration epoch.
func (p Profile) SameComponent(q Profile) bool {
	return p.Comp == q.Comp && p.Epoch == q.Epoch
}

// String implements fmt.Stringer for debugging output.
func (p Profile) String() string {
	return fmt.Sprintf("comp=%d idx=%d/%d epoch=%d", p.Comp, p.Index, p.Size, p.Epoch)
}

// Descriptor is one gossip-able entry: who, what role, and how stale.
type Descriptor struct {
	ID      NodeID
	Age     uint16
	Profile Profile
}

// Fresher reports whether d is strictly fresher than other, considering
// epoch first (newer epochs always win) and then age.
func (d Descriptor) Fresher(other Descriptor) bool {
	if d.Profile.Epoch != other.Profile.Epoch {
		return d.Profile.Epoch > other.Profile.Epoch
	}
	return d.Age < other.Age
}
