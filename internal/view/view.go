package view

import (
	"math/rand"
	"sort"
)

// View is a bounded partial view: an ordered collection of descriptors with
// unique node IDs, bounded by a capacity. The zero value is unusable; create
// views with New. Views are not safe for concurrent use — the simulation
// engine is single-threaded by design (determinism).
type View struct {
	capacity int
	entries  []Descriptor
}

// New returns an empty view bounded to the given capacity (min 1).
func New(capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{
		capacity: capacity,
		entries:  make([]Descriptor, 0, capacity),
	}
}

// Len returns the number of descriptors currently held.
func (v *View) Len() int { return len(v.entries) }

// Cap returns the view capacity.
func (v *View) Cap() int { return v.capacity }

// SetCap changes the capacity. If the view holds more entries than the new
// capacity, the tail entries are dropped.
func (v *View) SetCap(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	v.capacity = capacity
	if len(v.entries) > capacity {
		v.entries = v.entries[:capacity]
	}
}

// At returns the descriptor at position i. It panics if i is out of range,
// mirroring slice semantics.
func (v *View) At(i int) Descriptor { return v.entries[i] }

// Entries returns a copy of the current descriptors.
func (v *View) Entries() []Descriptor {
	out := make([]Descriptor, len(v.entries))
	copy(out, v.entries)
	return out
}

// IDs returns the node IDs currently held, in view order.
func (v *View) IDs() []NodeID {
	out := make([]NodeID, len(v.entries))
	for i, d := range v.entries {
		out[i] = d.ID
	}
	return out
}

// IndexOf returns the position of id in the view, or -1.
func (v *View) IndexOf(id NodeID) int {
	for i, d := range v.entries {
		if d.ID == id {
			return i
		}
	}
	return -1
}

// Contains reports whether the view holds a descriptor for id.
func (v *View) Contains(id NodeID) bool { return v.IndexOf(id) >= 0 }

// Add inserts d if there is spare capacity and no descriptor for the same
// node exists; if one exists, the fresher of the two is kept. It reports
// whether the view changed.
func (v *View) Add(d Descriptor) bool {
	if i := v.IndexOf(d.ID); i >= 0 {
		if d.Fresher(v.entries[i]) {
			v.entries[i] = d
			return true
		}
		return false
	}
	if len(v.entries) >= v.capacity {
		return false
	}
	v.entries = append(v.entries, d)
	return true
}

// ForceAdd inserts d, evicting the oldest entry if the view is full. A
// descriptor for the same node is replaced by the fresher of the two.
func (v *View) ForceAdd(d Descriptor) {
	if i := v.IndexOf(d.ID); i >= 0 {
		if d.Fresher(v.entries[i]) {
			v.entries[i] = d
		}
		return
	}
	if len(v.entries) < v.capacity {
		v.entries = append(v.entries, d)
		return
	}
	v.entries[v.oldestIndex()] = d
}

// Remove deletes the descriptor for id, reporting whether it was present.
func (v *View) Remove(id NodeID) bool {
	i := v.IndexOf(id)
	if i < 0 {
		return false
	}
	v.RemoveAt(i)
	return true
}

// RemoveAt deletes the descriptor at position i (order not preserved).
func (v *View) RemoveAt(i int) {
	last := len(v.entries) - 1
	v.entries[i] = v.entries[last]
	v.entries = v.entries[:last]
}

// Clear drops all entries, keeping capacity.
func (v *View) Clear() { v.entries = v.entries[:0] }

// AgeAll increments the age of every descriptor (saturating).
func (v *View) AgeAll() {
	for i := range v.entries {
		if v.entries[i].Age < ^uint16(0) {
			v.entries[i].Age++
		}
	}
}

// Penalize adds delta to the age of the descriptor for id (saturating),
// reporting whether it was present. Failure detectors use this to mark a
// peer as suspect after a failed exchange without evicting it outright —
// a dead peer keeps accumulating penalties until it ages out, while a peer
// behind a lossy link recovers when fresh descriptors arrive.
func (v *View) Penalize(id NodeID, delta uint16) bool {
	i := v.IndexOf(id)
	if i < 0 {
		return false
	}
	if age := uint32(v.entries[i].Age) + uint32(delta); age < uint32(^uint16(0)) {
		v.entries[i].Age = uint16(age)
	} else {
		v.entries[i].Age = ^uint16(0)
	}
	return true
}

// Oldest returns the descriptor with the highest age (ties broken by the
// lowest position) and its index. ok is false for an empty view.
func (v *View) Oldest() (d Descriptor, idx int, ok bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, -1, false
	}
	idx = v.oldestIndex()
	return v.entries[idx], idx, true
}

func (v *View) oldestIndex() int {
	best := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[best].Age {
			best = i
		}
	}
	return best
}

// Random returns a uniformly random descriptor. ok is false for an empty
// view.
func (v *View) Random(rng *rand.Rand) (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	return v.entries[rng.Intn(len(v.entries))], true
}

// RandomSample returns up to n distinct descriptors chosen uniformly at
// random, in random order.
func (v *View) RandomSample(rng *rand.Rand, n int) []Descriptor {
	if n >= len(v.entries) {
		out := v.Entries()
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	perm := rng.Perm(len(v.entries))
	out := make([]Descriptor, 0, n)
	for _, p := range perm[:n] {
		out = append(out, v.entries[p])
	}
	return out
}

// Filter removes every descriptor for which keep returns false.
func (v *View) Filter(keep func(Descriptor) bool) {
	kept := v.entries[:0]
	for _, d := range v.entries {
		if keep(d) {
			kept = append(kept, d)
		}
	}
	// Zero the tail so dropped descriptors do not linger in the backing
	// array (defensive; descriptors hold no pointers but stale data is
	// confusing in debuggers).
	for i := len(kept); i < len(v.entries); i++ {
		v.entries[i] = Descriptor{}
	}
	v.entries = kept
}

// SortByAge orders entries from youngest to oldest (stable on input order
// for equal ages is not guaranteed; ties broken by node ID for determinism).
func (v *View) SortByAge() {
	sort.Slice(v.entries, func(i, j int) bool {
		if v.entries[i].Age != v.entries[j].Age {
			return v.entries[i].Age < v.entries[j].Age
		}
		return v.entries[i].ID < v.entries[j].ID
	})
}

// Merge folds the given descriptors into a deduplicated buffer together
// with the current entries, then keeps the `capacity` freshest, preferring
// existing entries on ties. self is excluded.
func (v *View) Merge(self NodeID, incoming []Descriptor) {
	buf := MergeBuffers(self, v.entries, incoming)
	// Keep youngest first.
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].Age != buf[j].Age {
			return buf[i].Age < buf[j].Age
		}
		return buf[i].ID < buf[j].ID
	})
	if len(buf) > v.capacity {
		buf = buf[:v.capacity]
	}
	v.entries = append(v.entries[:0], buf...)
}

// MergeBuffers combines descriptor slices, dropping self and keeping the
// freshest descriptor per node ID. The result order is deterministic: it
// follows first occurrence in the concatenated input.
func MergeBuffers(self NodeID, buffers ...[]Descriptor) []Descriptor {
	total := 0
	for _, b := range buffers {
		total += len(b)
	}
	out := make([]Descriptor, 0, total)
	pos := make(map[NodeID]int, total)
	for _, b := range buffers {
		for _, d := range b {
			if d.ID == self || d.ID == InvalidNode {
				continue
			}
			if i, seen := pos[d.ID]; seen {
				if d.Fresher(out[i]) {
					out[i] = d
				}
				continue
			}
			pos[d.ID] = len(out)
			out = append(out, d)
		}
	}
	return out
}
