package view

import (
	"sort"
)

// Rand is the minimal random-source interface view selection draws from.
// Both *math/rand.Rand and the simulation engine's counter-based per-node
// streams satisfy it, so the same selection code serves the serial and the
// worker-sharded engine.
type Rand interface {
	Intn(n int) int
	Shuffle(n int, swap func(i, j int))
}

// View is a bounded partial view: an ordered collection of descriptors with
// unique node IDs, bounded by a capacity. The zero value is unusable; create
// views with New. Views are not safe for concurrent use — the simulation
// engine is single-threaded by design (determinism).
type View struct {
	capacity int
	entries  []Descriptor
}

// New returns an empty view bounded to the given capacity (min 1).
func New(capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{
		capacity: capacity,
		entries:  make([]Descriptor, 0, capacity),
	}
}

// Len returns the number of descriptors currently held.
func (v *View) Len() int { return len(v.entries) }

// Cap returns the view capacity.
func (v *View) Cap() int { return v.capacity }

// SetCap changes the capacity. If the view holds more entries than the new
// capacity, the tail entries are dropped.
func (v *View) SetCap(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	v.capacity = capacity
	if len(v.entries) > capacity {
		v.entries = v.entries[:capacity]
	}
}

// At returns the descriptor at position i. It panics if i is out of range,
// mirroring slice semantics.
func (v *View) At(i int) Descriptor { return v.entries[i] }

// Entries returns a copy of the current descriptors.
func (v *View) Entries() []Descriptor {
	return v.AppendEntries(make([]Descriptor, 0, len(v.entries)))
}

// AppendEntries appends the current descriptors to dst and returns the
// extended slice. Passing a reused scratch buffer (dst[:0]) makes the read
// allocation-free in steady state.
func (v *View) AppendEntries(dst []Descriptor) []Descriptor {
	return append(dst, v.entries...)
}

// IDs returns the node IDs currently held, in view order.
func (v *View) IDs() []NodeID {
	return v.AppendIDs(make([]NodeID, 0, len(v.entries)))
}

// AppendIDs appends the node IDs currently held to dst, in view order, and
// returns the extended slice.
func (v *View) AppendIDs(dst []NodeID) []NodeID {
	for _, d := range v.entries {
		dst = append(dst, d.ID)
	}
	return dst
}

// IndexOf returns the position of id in the view, or -1.
func (v *View) IndexOf(id NodeID) int {
	for i, d := range v.entries {
		if d.ID == id {
			return i
		}
	}
	return -1
}

// Contains reports whether the view holds a descriptor for id.
func (v *View) Contains(id NodeID) bool { return v.IndexOf(id) >= 0 }

// Add inserts d if there is spare capacity and no descriptor for the same
// node exists; if one exists, the fresher of the two is kept. It reports
// whether the view changed.
func (v *View) Add(d Descriptor) bool {
	changed, _ := v.Upsert(d)
	return changed
}

// Upsert inserts d exactly like Add, and additionally reports whether the
// view now holds a descriptor for d.ID (held). It exists as a fast path for
// merge loops that would otherwise pay a second IndexOf scan for
// `v.Add(d) || v.Contains(d.ID)`.
func (v *View) Upsert(d Descriptor) (changed, held bool) {
	if i := v.IndexOf(d.ID); i >= 0 {
		if d.Fresher(v.entries[i]) {
			v.entries[i] = d
			return true, true
		}
		return false, true
	}
	if len(v.entries) >= v.capacity {
		return false, false
	}
	v.entries = append(v.entries, d)
	return true, true
}

// ForceAdd inserts d, evicting the oldest entry if the view is full. A
// descriptor for the same node is replaced by the fresher of the two.
func (v *View) ForceAdd(d Descriptor) {
	if i := v.IndexOf(d.ID); i >= 0 {
		if d.Fresher(v.entries[i]) {
			v.entries[i] = d
		}
		return
	}
	if len(v.entries) < v.capacity {
		v.entries = append(v.entries, d)
		return
	}
	v.entries[v.oldestIndex()] = d
}

// Remove deletes the descriptor for id, reporting whether it was present.
func (v *View) Remove(id NodeID) bool {
	i := v.IndexOf(id)
	if i < 0 {
		return false
	}
	v.RemoveAt(i)
	return true
}

// RemoveAt deletes the descriptor at position i (order not preserved).
func (v *View) RemoveAt(i int) {
	last := len(v.entries) - 1
	v.entries[i] = v.entries[last]
	v.entries = v.entries[:last]
}

// Clear drops all entries, keeping capacity.
func (v *View) Clear() { v.entries = v.entries[:0] }

// AgeAll increments the age of every descriptor (saturating).
func (v *View) AgeAll() {
	for i := range v.entries {
		if v.entries[i].Age < ^uint16(0) {
			v.entries[i].Age++
		}
	}
}

// Penalize adds delta to the age of the descriptor for id (saturating),
// reporting whether it was present. Failure detectors use this to mark a
// peer as suspect after a failed exchange without evicting it outright —
// a dead peer keeps accumulating penalties until it ages out, while a peer
// behind a lossy link recovers when fresh descriptors arrive.
func (v *View) Penalize(id NodeID, delta uint16) bool {
	i := v.IndexOf(id)
	if i < 0 {
		return false
	}
	if age := uint32(v.entries[i].Age) + uint32(delta); age < uint32(^uint16(0)) {
		v.entries[i].Age = uint16(age)
	} else {
		v.entries[i].Age = ^uint16(0)
	}
	return true
}

// Oldest returns the descriptor with the highest age (ties broken by the
// lowest position) and its index. ok is false for an empty view.
func (v *View) Oldest() (d Descriptor, idx int, ok bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, -1, false
	}
	idx = v.oldestIndex()
	return v.entries[idx], idx, true
}

func (v *View) oldestIndex() int {
	best := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[best].Age {
			best = i
		}
	}
	return best
}

// Random returns a uniformly random descriptor. ok is false for an empty
// view.
func (v *View) Random(rng Rand) (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	return v.entries[rng.Intn(len(v.entries))], true
}

// RandomSample returns up to n distinct descriptors chosen uniformly at
// random, in random order. n <= 0 returns nil without consuming randomness.
func (v *View) RandomSample(rng Rand, n int) []Descriptor {
	if n <= 0 || len(v.entries) == 0 {
		return nil
	}
	if n > len(v.entries) {
		n = len(v.entries)
	}
	var s Sampler
	return v.RandomSampleInto(rng, n, make([]Descriptor, 0, n), &s)
}

// Sampler is reusable scratch for RandomSampleInto: it holds the permutation
// buffer a partial sample needs, so steady-state sampling allocates nothing.
// The zero value is ready to use. A Sampler may be shared by any number of
// views as long as calls do not overlap.
type Sampler struct {
	perm []int
}

// RandomSampleInto appends up to n distinct descriptors chosen uniformly at
// random, in random order, to dst and returns the extended slice. It draws
// from rng exactly like RandomSample (math/rand Shuffle when n covers the
// view, a Perm-equivalent otherwise), so the two are interchangeable without
// perturbing a seeded run. n <= 0 appends nothing and consumes no
// randomness.
func (v *View) RandomSampleInto(rng Rand, n int, dst []Descriptor, s *Sampler) []Descriptor {
	return SampleInto(rng, v.entries, n, dst, s)
}

// SampleInto is RandomSampleInto over a raw descriptor buffer: it appends up
// to n distinct elements of src, chosen uniformly at random and in random
// order, to dst and returns the extended slice. src is not modified.
// Protocols use it to sample from ad-hoc candidate pools (e.g. "the view
// minus the exchange partner") without mutating the view they were built
// from — the read-only discipline the parallel plan phase requires.
func SampleInto(rng Rand, src []Descriptor, n int, dst []Descriptor, s *Sampler) []Descriptor {
	if n <= 0 || len(src) == 0 {
		return dst
	}
	if n >= len(src) {
		base := len(dst)
		dst = append(dst, src...)
		out := dst[base:]
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return dst
	}
	// Replicate rand.Perm draw-for-draw into the reusable buffer.
	if cap(s.perm) < len(src) {
		s.perm = make([]int, len(src))
	}
	perm := s.perm[:len(src)]
	for i := range perm {
		j := rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	for _, p := range perm[:n] {
		dst = append(dst, src[p])
	}
	return dst
}

// Filter removes every descriptor for which keep returns false.
func (v *View) Filter(keep func(Descriptor) bool) {
	kept := v.entries[:0]
	for _, d := range v.entries {
		if keep(d) {
			kept = append(kept, d)
		}
	}
	// Zero the tail so dropped descriptors do not linger in the backing
	// array (defensive; descriptors hold no pointers but stale data is
	// confusing in debuggers).
	for i := len(kept); i < len(v.entries); i++ {
		v.entries[i] = Descriptor{}
	}
	v.entries = kept
}

// SortByAge orders entries from youngest to oldest (stable on input order
// for equal ages is not guaranteed; ties broken by node ID for determinism).
func (v *View) SortByAge() {
	sort.Slice(v.entries, func(i, j int) bool {
		if v.entries[i].Age != v.entries[j].Age {
			return v.entries[i].Age < v.entries[j].Age
		}
		return v.entries[i].ID < v.entries[j].ID
	})
}

// ReplaceAll replaces the view's contents with ds, truncated to the view's
// capacity. Callers are expected to pass deduplicated, owner-free buffers
// (e.g. a Merger result); ReplaceAll performs no checks of its own.
func (v *View) ReplaceAll(ds []Descriptor) {
	if len(ds) > v.capacity {
		ds = ds[:v.capacity]
	}
	v.entries = append(v.entries[:0], ds...)
}

// Merge folds the given descriptors into a deduplicated buffer together
// with the current entries, then keeps the `capacity` freshest, preferring
// existing entries on ties. self is excluded.
func (v *View) Merge(self NodeID, incoming []Descriptor) {
	buf := MergeBuffers(self, v.entries, incoming)
	// Keep youngest first.
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].Age != buf[j].Age {
			return buf[i].Age < buf[j].Age
		}
		return buf[i].ID < buf[j].ID
	})
	v.ReplaceAll(buf)
}

// Merger is the reusable scratch state behind descriptor-buffer merging: a
// deduplication index plus an output buffer, both retained across calls so
// steady-state merges allocate nothing. The zero value is ready to use.
// A Merger is not safe for concurrent use; the parallel engine keeps one
// per worker (inside each sim.Pad), never sharing a merger across shards.
type Merger struct {
	self NodeID
	out  []Descriptor
	pos  map[NodeID]int
}

// Begin resets the merger for a new merge that excludes self (and
// InvalidNode) from its output.
func (m *Merger) Begin(self NodeID) {
	m.self = self
	m.out = m.out[:0]
	if m.pos == nil {
		m.pos = make(map[NodeID]int, 64)
	} else {
		clear(m.pos)
	}
}

// AddSlice folds a descriptor buffer into the merge: first occurrence fixes
// the output position, later duplicates keep the freshest copy.
func (m *Merger) AddSlice(ds []Descriptor) {
	for _, d := range ds {
		m.add(d)
	}
}

// AddView folds a view's entries into the merge without copying them out
// first — the allocation-free equivalent of AddSlice(v.Entries()).
func (m *Merger) AddView(v *View) {
	for i := range v.entries {
		m.add(v.entries[i])
	}
}

func (m *Merger) add(d Descriptor) {
	if d.ID == m.self || d.ID == InvalidNode {
		return
	}
	if i, seen := m.pos[d.ID]; seen {
		if d.Fresher(m.out[i]) {
			m.out[i] = d
		}
		return
	}
	m.pos[d.ID] = len(m.out)
	m.out = append(m.out, d)
}

// Result returns the merged buffer: deduplicated (freshest copy wins), in
// first-occurrence order, without self. The slice is scratch owned by the
// merger — callers may filter or sort it in place, but it is only valid
// until the next Begin.
func (m *Merger) Result() []Descriptor { return m.out }

// MergeInto merges descriptor buffers through dst's reusable scratch,
// returning dst.Result(). It is the allocation-free equivalent of
// MergeBuffers: same output, same order, no per-call map or slice.
func MergeInto(dst *Merger, self NodeID, buffers ...[]Descriptor) []Descriptor {
	dst.Begin(self)
	for _, b := range buffers {
		dst.AddSlice(b)
	}
	return dst.Result()
}

// MergeBuffers combines descriptor slices, dropping self and keeping the
// freshest descriptor per node ID. The result order is deterministic: it
// follows first occurrence in the concatenated input. It is a thin copying
// wrapper over MergeInto; hot paths reuse a Merger instead.
func MergeBuffers(self NodeID, buffers ...[]Descriptor) []Descriptor {
	var m Merger
	out := MergeInto(&m, self, buffers...)
	return out
}
