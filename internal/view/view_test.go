package view

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func desc(id NodeID, age uint16) Descriptor {
	return Descriptor{ID: id, Age: age}
}

func TestNewClampsCapacity(t *testing.T) {
	v := New(0)
	if v.Cap() != 1 {
		t.Fatalf("Cap() = %d, want 1", v.Cap())
	}
}

func TestAddRespectsCapacity(t *testing.T) {
	v := New(2)
	if !v.Add(desc(1, 0)) || !v.Add(desc(2, 0)) {
		t.Fatal("first two adds should succeed")
	}
	if v.Add(desc(3, 0)) {
		t.Fatal("add beyond capacity should fail")
	}
	if v.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", v.Len())
	}
}

func TestAddKeepsFresher(t *testing.T) {
	v := New(4)
	v.Add(desc(1, 5))
	if v.Add(desc(1, 9)) {
		t.Fatal("older duplicate must not replace fresher entry")
	}
	if !v.Add(desc(1, 2)) {
		t.Fatal("fresher duplicate must replace older entry")
	}
	if got := v.At(v.IndexOf(1)).Age; got != 2 {
		t.Fatalf("age = %d, want 2", got)
	}
	if v.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (no duplicate IDs)", v.Len())
	}
}

func TestFresherPrefersNewerEpoch(t *testing.T) {
	older := Descriptor{ID: 1, Age: 0, Profile: Profile{Epoch: 1}}
	newer := Descriptor{ID: 1, Age: 50, Profile: Profile{Epoch: 2}}
	if !newer.Fresher(older) {
		t.Fatal("newer epoch must beat lower age")
	}
	if older.Fresher(newer) {
		t.Fatal("older epoch must lose")
	}
}

func TestForceAddEvictsOldest(t *testing.T) {
	v := New(2)
	v.Add(desc(1, 9))
	v.Add(desc(2, 1))
	v.ForceAdd(desc(3, 0))
	if v.Contains(1) {
		t.Fatal("oldest entry (id 1) should have been evicted")
	}
	if !v.Contains(2) || !v.Contains(3) {
		t.Fatal("ids 2 and 3 should be present")
	}
}

func TestRemove(t *testing.T) {
	v := New(4)
	v.Add(desc(1, 0))
	v.Add(desc(2, 0))
	if !v.Remove(1) {
		t.Fatal("Remove(1) should report true")
	}
	if v.Remove(1) {
		t.Fatal("second Remove(1) should report false")
	}
	if v.Len() != 1 || !v.Contains(2) {
		t.Fatal("only id 2 should remain")
	}
}

func TestAgeAllSaturates(t *testing.T) {
	v := New(2)
	v.Add(desc(1, ^uint16(0)))
	v.AgeAll()
	if got := v.At(0).Age; got != ^uint16(0) {
		t.Fatalf("age = %d, want saturation at max", got)
	}
}

func TestOldest(t *testing.T) {
	v := New(4)
	if _, _, ok := v.Oldest(); ok {
		t.Fatal("empty view has no oldest")
	}
	v.Add(desc(1, 3))
	v.Add(desc(2, 7))
	v.Add(desc(3, 5))
	d, _, ok := v.Oldest()
	if !ok || d.ID != 2 {
		t.Fatalf("Oldest() = %v, want id 2", d)
	}
}

func TestFilter(t *testing.T) {
	v := New(8)
	for i := NodeID(0); i < 6; i++ {
		v.Add(desc(i, 0))
	}
	v.Filter(func(d Descriptor) bool { return d.ID%2 == 0 })
	if v.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", v.Len())
	}
	for _, id := range v.IDs() {
		if id%2 != 0 {
			t.Fatalf("id %d should have been filtered out", id)
		}
	}
}

func TestMergeKeepsFreshest(t *testing.T) {
	v := New(3)
	v.Add(desc(1, 8))
	v.Add(desc(2, 1))
	v.Merge(99, []Descriptor{desc(1, 2), desc(3, 0), desc(4, 9), desc(99, 0)})
	if v.Len() != 3 {
		t.Fatalf("Len() = %d, want capacity 3", v.Len())
	}
	if v.Contains(99) {
		t.Fatal("merge must never admit self")
	}
	if i := v.IndexOf(1); i < 0 || v.At(i).Age != 2 {
		t.Fatal("merge should keep the fresher copy of id 1")
	}
	if v.Contains(4) {
		t.Fatal("oldest candidate (id 4, age 9) should have been dropped")
	}
}

func TestRandomSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := New(10)
	for i := NodeID(0); i < 10; i++ {
		v.Add(desc(i, 0))
	}
	s := v.RandomSample(rng, 4)
	if len(s) != 4 {
		t.Fatalf("len(sample) = %d, want 4", len(s))
	}
	seen := map[NodeID]bool{}
	for _, d := range s {
		if seen[d.ID] {
			t.Fatalf("duplicate id %d in sample", d.ID)
		}
		seen[d.ID] = true
	}
	if got := v.RandomSample(rng, 50); len(got) != 10 {
		t.Fatalf("oversized sample should return all %d entries, got %d", 10, len(got))
	}
}

func TestSetCapTruncates(t *testing.T) {
	v := New(5)
	for i := NodeID(0); i < 5; i++ {
		v.Add(desc(i, 0))
	}
	v.SetCap(2)
	if v.Len() != 2 || v.Cap() != 2 {
		t.Fatalf("after SetCap(2): len=%d cap=%d", v.Len(), v.Cap())
	}
}

// Property: merging arbitrary buffers never produces duplicates, never
// includes self, and never exceeds capacity.
func TestMergeProperties(t *testing.T) {
	f := func(ids []int16, ages []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		v := New(capacity)
		incoming := make([]Descriptor, 0, len(ids))
		for i, id := range ids {
			var age uint16
			if i < len(ages) {
				age = ages[i]
			}
			incoming = append(incoming, desc(NodeID(id), age))
		}
		const self = NodeID(7)
		v.Merge(self, incoming)
		if v.Len() > capacity {
			return false
		}
		seen := map[NodeID]bool{}
		for _, id := range v.IDs() {
			if id == self || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MergeBuffers output always holds the freshest descriptor per ID
// across all input buffers.
func TestMergeBuffersFreshest(t *testing.T) {
	f := func(agesA, agesB []uint16) bool {
		a := make([]Descriptor, len(agesA))
		for i, age := range agesA {
			a[i] = desc(NodeID(i%5), age)
		}
		b := make([]Descriptor, len(agesB))
		for i, age := range agesB {
			b[i] = desc(NodeID(i%5), age)
		}
		out := MergeBuffers(InvalidNode, a, b)
		best := map[NodeID]uint16{}
		for _, d := range append(append([]Descriptor{}, a...), b...) {
			if cur, ok := best[d.ID]; !ok || d.Age < cur {
				best[d.ID] = d.Age
			}
		}
		if len(out) != len(best) {
			return false
		}
		for _, d := range out {
			if d.Age != best[d.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is idempotent in size — adding the same descriptor twice
// never grows the view.
func TestAddIdempotentSize(t *testing.T) {
	f := func(id int16, age uint16) bool {
		v := New(4)
		v.Add(desc(NodeID(id), age))
		n := v.Len()
		v.Add(desc(NodeID(id), age))
		return v.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortByAge(t *testing.T) {
	v := New(5)
	v.Add(desc(3, 9))
	v.Add(desc(1, 2))
	v.Add(desc(2, 2))
	v.SortByAge()
	ids := v.IDs()
	want := []NodeID{1, 2, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
}
