package view

import "sosf/internal/arena"

// Table stores one protocol's per-slot views as dense struct-of-arrays
// state: the View headers live in one contiguous slice indexed by slot, and
// their descriptor entries are carved back-to-back from a shared chunked
// arena, so a population's views are a few large arrays the round phases
// stream through in slot order — not one heap object per node. The zero
// value is an empty table ready for Grow.
//
// Tables are not safe for concurrent structural mutation; Grow and Init
// run from InitNode (between rounds), while phases only touch the views of
// their own slots.
type Table struct {
	views []View
	arena []Descriptor
}

// Len returns the number of slots the table covers.
func (t *Table) Len() int { return len(t.views) }

// Grow extends the table with empty, zero-capacity views to cover n slots.
// Each covered slot still needs an Init before use.
func (t *Table) Grow(n int) {
	for len(t.views) < n {
		t.views = append(t.views, View{})
	}
}

// Truncate drops the views beyond n slots (restore paths shrink back to
// the snapshotted population). Their carved entry storage stays in the
// arena and is reused if the slots are re-grown.
func (t *Table) Truncate(n int) {
	if n < len(t.views) {
		t.views = t.views[:n]
	}
}

// At returns the view at slot. The pointer aims into the dense header
// array: it is stable until the next Grow, so phases may use it freely but
// nothing should retain it across node joins.
func (t *Table) At(slot int) *View { return &t.views[slot] }

// Init (re)initializes slot's view as empty with the given capacity
// (min 1), carving entry storage from the table's arena. Storage already
// carved for the slot is reused when large enough — a node re-joining a
// slot costs no allocation.
func (t *Table) Init(slot, capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	v := &t.views[slot]
	if cap(v.entries) < capacity {
		v.entries = arena.Carve(&t.arena, capacity)
	}
	v.entries = v.entries[:0]
	v.capacity = capacity
	return v
}
