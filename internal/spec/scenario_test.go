package spec

import (
	"strings"
	"testing"
)

// scenarioTopo builds a minimal valid topology carrying the given timeline
// and, when rounds > 0, a configured horizon.
func scenarioTopo(rounds int64, events ...ScenarioEvent) *Topology {
	t := &Topology{
		Name: "sc",
		Components: []Component{
			{Name: "a", Shape: "ring", Weight: 1},
			{Name: "b", Shape: "ring", Weight: 1},
		},
		Scenario: events,
	}
	if rounds > 0 {
		t.SetOption("rounds", rounds)
	}
	return t
}

// TestScenarioHorizonValidation pins the horizon rule: with `option
// rounds` configured, events must not be scheduled beyond it — they would
// silently never fire — while events at exactly the horizon (which still
// fire after the last round) stay legal, and topologies without a
// configured horizon stay unchecked.
func TestScenarioHorizonValidation(t *testing.T) {
	cases := []struct {
		name    string
		rounds  int64
		events  []ScenarioEvent
		wantErr string // "" = valid
	}{
		{
			name:   "point event inside horizon",
			rounds: 100,
			events: []ScenarioEvent{{From: 50, To: 50, Kind: ScenKill, Fraction: 0.1}},
		},
		{
			name:   "point event at horizon",
			rounds: 100,
			events: []ScenarioEvent{{From: 100, To: 100, Kind: ScenKill, Fraction: 0.1}},
		},
		{
			name:    "point event beyond horizon",
			rounds:  100,
			events:  []ScenarioEvent{{From: 101, To: 101, Kind: ScenKill, Fraction: 0.1}},
			wantErr: "beyond the configured horizon",
		},
		{
			name:   "window ending at horizon",
			rounds: 100,
			events: []ScenarioEvent{{From: 90, To: 100, Kind: ScenLoss, Fraction: 0.2}},
		},
		{
			name:    "window ending beyond horizon",
			rounds:  100,
			events:  []ScenarioEvent{{From: 90, To: 101, Kind: ScenLoss, Fraction: 0.2}},
			wantErr: "beyond the configured horizon",
		},
		{
			name:    "window starting beyond horizon",
			rounds:  10,
			events:  []ScenarioEvent{{From: 20, To: 30, Kind: ScenChurn, Fraction: 0.05}},
			wantErr: "beyond the configured horizon",
		},
		{
			name:   "zero-length window at horizon",
			rounds: 100,
			// During with To == From compiles to a point event; at the
			// horizon it still fires once after the final round.
			events: []ScenarioEvent{{From: 100, To: 100, Kind: ScenLoss, Fraction: 0.2}},
		},
		{
			name:   "no configured horizon leaves late events alone",
			rounds: 0,
			events: []ScenarioEvent{{From: 5000, To: 5000, Kind: ScenKill, Fraction: 0.1}},
		},
		{
			name:   "horizon does not bound reconfigure targets",
			rounds: 100,
			events: []ScenarioEvent{{From: 10, To: 10, Kind: ScenReconfigure, Reconfigure: &Topology{
				Name:       "sc@10",
				Components: []Component{{Name: "a", Shape: "ring", Weight: 1}},
			}}},
		},
		{
			name:   "beyond-horizon event reported even after valid ones",
			rounds: 60,
			events: []ScenarioEvent{
				{From: 10, To: 20, Kind: ScenChurn, Fraction: 0.02},
				{From: 30, To: 70, Kind: ScenPartition, Count: 2},
			},
			wantErr: "beyond the configured horizon",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := scenarioTopo(tc.rounds, tc.events...).Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestScenarioWindowEdgeCases pins the remaining window rules the shrinker
// leans on: zero-length windows degrade to point events (valid), and
// overlapping stateful windows of the same kind are rejected however they
// touch.
func TestScenarioWindowEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		events  []ScenarioEvent
		wantErr string
	}{
		{
			name: "zero-length loss window is a point event",
			events: []ScenarioEvent{
				{From: 10, To: 10, Kind: ScenLoss, Fraction: 0.3},
				{From: 40, To: 45, Kind: ScenLoss, Fraction: 0.1},
			},
		},
		{
			name: "disjoint loss windows compose",
			events: []ScenarioEvent{
				{From: 10, To: 20, Kind: ScenLoss, Fraction: 0.3},
				{From: 21, To: 30, Kind: ScenLoss, Fraction: 0.1},
			},
		},
		{
			name: "overlapping loss windows conflict",
			events: []ScenarioEvent{
				{From: 10, To: 20, Kind: ScenLoss, Fraction: 0.3},
				{From: 15, To: 30, Kind: ScenLoss, Fraction: 0.1},
			},
			wantErr: "conflict",
		},
		{
			name: "loss windows sharing an endpoint conflict",
			events: []ScenarioEvent{
				{From: 10, To: 20, Kind: ScenLoss, Fraction: 0.3},
				{From: 20, To: 30, Kind: ScenLoss, Fraction: 0.1},
			},
			wantErr: "conflict",
		},
		{
			name: "point loss inside a loss window conflicts",
			events: []ScenarioEvent{
				{From: 10, To: 20, Kind: ScenLoss, Fraction: 0.3},
				{From: 15, To: 15, Kind: ScenLoss, Fraction: 0.1},
			},
			wantErr: "conflict",
		},
		{
			name: "heal inside a partition window conflicts",
			events: []ScenarioEvent{
				{From: 10, To: 20, Kind: ScenPartition, Count: 2},
				{From: 15, To: 15, Kind: ScenHeal},
			},
			wantErr: "conflict",
		},
		{
			name: "loss window over a partition window is fine",
			events: []ScenarioEvent{
				{From: 10, To: 20, Kind: ScenPartition, Count: 2},
				{From: 12, To: 18, Kind: ScenLoss, Fraction: 0.2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := scenarioTopo(0, tc.events...).Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}
