// Package spec defines the compiled topology specification: the list of
// components (elementary shapes with node-assignment weights), the ports
// each component provides, and the links between ports. This is exactly the
// triple the paper's DSL describes — "the superposition of these three
// elements completely defines a target topology".
//
// A spec is produced by the DSL compiler (internal/dsl) or constructed
// programmatically, validated once, and then consumed by the runtime.
package spec

import (
	"fmt"
	"strings"

	"sosf/internal/shapes"
)

// Topology is a complete target-topology description.
type Topology struct {
	// Name labels the topology in reports.
	Name string
	// Components lists the elementary building blocks, in declaration
	// order (their index is their ComponentID at runtime).
	Components []Component
	// Links connects ports of different components.
	Links []Link
	// Options carries integer knobs from the DSL's `option`/`nodes`
	// statements (e.g. "nodes", "rounds", "seed"); interpretation is up
	// to the embedding runtime.
	Options map[string]int64
	// Scenario is the fault/reconfiguration timeline carried by the
	// DSL's `scenario { ... }` block (or spliced in programmatically),
	// in declaration order.
	Scenario []ScenarioEvent
}

// Component is one elementary shape instance.
type Component struct {
	// Name is the unique component name ("shard[3]").
	Name string
	// Shape is a shapes registry name ("ring", "star", ...).
	Shape string
	// Params are shape parameters ("width", "hubs", "arity").
	Params map[string]int64
	// Weight is the component's proportional share of the node
	// population (>= 1; the allocator assigns ~ weight/Σweights of all
	// nodes to it).
	Weight int64
	// Ports are the names of the logical ports this component exposes.
	Ports []string
}

// PortRef names one port of one component.
type PortRef struct {
	Component string
	Port      string
}

// String renders the reference as "component.port".
func (r PortRef) String() string { return r.Component + "." + r.Port }

// Link is an undirected connection between two ports.
type Link struct {
	A, B PortRef
}

// String renders the link.
func (l Link) String() string { return l.A.String() + " <-> " + l.B.String() }

// Option returns the named option or def when absent.
func (t *Topology) Option(key string, def int64) int64 {
	if v, ok := t.Options[key]; ok {
		return v
	}
	return def
}

// SetOption records an option, allocating the map on first use.
func (t *Topology) SetOption(key string, v int64) {
	if t.Options == nil {
		t.Options = make(map[string]int64)
	}
	t.Options[key] = v
}

// Component returns the component with the given name, or nil.
func (t *Topology) Component(name string) *Component {
	for i := range t.Components {
		if t.Components[i].Name == name {
			return &t.Components[i]
		}
	}
	return nil
}

// ComponentIndex returns the index of the named component, or -1.
func (t *Topology) ComponentIndex(name string) int {
	for i := range t.Components {
		if t.Components[i].Name == name {
			return i
		}
	}
	return -1
}

// TotalWeight sums all component weights.
func (t *Topology) TotalWeight() int64 {
	var sum int64
	for i := range t.Components {
		sum += t.Components[i].Weight
	}
	return sum
}

// HasPort reports whether the component exposes the named port.
func (c *Component) HasPort(port string) bool {
	for _, p := range c.Ports {
		if p == port {
			return true
		}
	}
	return false
}

// NewShape instantiates the component's shape from the registry.
func (c *Component) NewShape() (shapes.Shape, error) {
	return shapes.New(c.Shape, c.Params)
}

// Validate checks the specification for structural errors: duplicate or
// invalid names, unknown shapes or shape parameters, bad weights, dangling
// or degenerate links. It returns the first error found.
func (t *Topology) Validate() error {
	if len(t.Components) == 0 {
		return fmt.Errorf("topology %q: no components", t.Name)
	}
	seen := make(map[string]*Component, len(t.Components))
	for i := range t.Components {
		c := &t.Components[i]
		if err := validName(c.Name); err != nil {
			return fmt.Errorf("component %d: %w", i, err)
		}
		if seen[c.Name] != nil {
			return fmt.Errorf("duplicate component %q", c.Name)
		}
		seen[c.Name] = c
		if c.Weight < 1 {
			return fmt.Errorf("component %q: weight must be >= 1, got %d", c.Name, c.Weight)
		}
		if _, err := c.NewShape(); err != nil {
			return fmt.Errorf("component %q: %w", c.Name, err)
		}
		ports := make(map[string]bool, len(c.Ports))
		for _, p := range c.Ports {
			if err := validName(p); err != nil {
				return fmt.Errorf("component %q: port: %w", c.Name, err)
			}
			if ports[p] {
				return fmt.Errorf("component %q: duplicate port %q", c.Name, p)
			}
			ports[p] = true
		}
	}
	links := make(map[string]bool, len(t.Links))
	for i, l := range t.Links {
		for _, ref := range []PortRef{l.A, l.B} {
			// The map lookup (not the linear Component method) keeps link
			// validation linear — machine-generated topologies can carry
			// hundreds of thousands of links.
			c := seen[ref.Component]
			if c == nil {
				return fmt.Errorf("link %d (%s): unknown component %q", i, l, ref.Component)
			}
			if !c.HasPort(ref.Port) {
				return fmt.Errorf("link %d (%s): component %q has no port %q", i, l, ref.Component, ref.Port)
			}
		}
		if l.A == l.B {
			return fmt.Errorf("link %d: port %s linked to itself", i, l.A)
		}
		key := canonicalLink(l)
		if links[key] {
			return fmt.Errorf("link %d: duplicate link %s", i, l)
		}
		links[key] = true
	}
	return t.ValidateScenario()
}

// canonicalLink normalizes a link so (a,b) and (b,a) collide.
func canonicalLink(l Link) string {
	a, b := l.A.String(), l.B.String()
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

// validName accepts non-empty names of letters, digits, '_', and the
// "name[3]" instance form produced by the DSL. Dots and whitespace are
// reserved (port references split on '.').
func validName(s string) error {
	if s == "" {
		return fmt.Errorf("empty name")
	}
	if strings.ContainsAny(s, ". \t\n") {
		return fmt.Errorf("invalid name %q: must not contain dots or whitespace", s)
	}
	return nil
}
