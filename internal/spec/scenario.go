package spec

import "fmt"

// ScenarioKind enumerates the fault/reconfiguration actions a scenario
// timeline can schedule against a running system.
type ScenarioKind string

// The scenario action kinds. Pulse actions (kill, kill-component, join,
// churn) fire on every round of their window; window actions (loss,
// partition) change state at the window start and restore it at the window
// end; reconfigure and heal fire once at the window start.
const (
	ScenKill          ScenarioKind = "kill"
	ScenKillComponent ScenarioKind = "kill-component"
	ScenJoin          ScenarioKind = "join"
	ScenLoss          ScenarioKind = "loss"
	ScenChurn         ScenarioKind = "churn"
	ScenPartition     ScenarioKind = "partition"
	ScenHeal          ScenarioKind = "heal"
	ScenReconfigure   ScenarioKind = "reconfigure"
	ScenSnapshot      ScenarioKind = "snapshot"
)

// ScenarioEvent is one scheduled action of a scenario timeline. Time is
// measured in completed rounds: an event with From == 0 applies before the
// first round; From == r (r > 0) applies after round r completes. To == From
// describes a point event; To > From a window.
type ScenarioEvent struct {
	// From and To bound the active window, inclusive.
	From, To int
	// Kind selects the action.
	Kind ScenarioKind
	// Fraction is the kill fraction, loss probability, or churn rate.
	Fraction float64
	// Count is the join node count or partition group count.
	Count int
	// Component names the kill-component target.
	Component string
	// Path is the checkpoint destination of a snapshot action; a "%d" verb
	// in it is replaced by the round number at write time.
	Path string
	// Reconfigure is the target topology of a reconfigure action.
	Reconfigure *Topology
}

// String renders the event compactly ("at 50 kill 0.30",
// "during 10 20 loss 0.30").
func (ev ScenarioEvent) String() string {
	when := fmt.Sprintf("at %d", ev.From)
	if ev.To > ev.From {
		when = fmt.Sprintf("during %d %d", ev.From, ev.To)
	}
	switch ev.Kind {
	case ScenKill, ScenLoss, ScenChurn:
		return fmt.Sprintf("%s %s %.2f", when, ev.Kind, ev.Fraction)
	case ScenKillComponent:
		return fmt.Sprintf("%s kill component %s", when, ev.Component)
	case ScenJoin, ScenPartition:
		return fmt.Sprintf("%s %s %d", when, ev.Kind, ev.Count)
	case ScenReconfigure:
		name := ""
		if ev.Reconfigure != nil {
			name = " " + ev.Reconfigure.Name
		}
		return fmt.Sprintf("%s reconfigure%s", when, name)
	case ScenSnapshot:
		return fmt.Sprintf("%s snapshot %q", when, ev.Path)
	default:
		return fmt.Sprintf("%s %s", when, ev.Kind)
	}
}

// ValidateScenario checks the topology's scenario events: known kinds,
// sane windows, fractions in range, valid reconfiguration targets, and —
// when the topology configures a horizon via `option rounds` — that no
// event is scheduled beyond it. An event past the horizon would silently
// never fire on a bounded run; rejecting it at parse time turns a quiet
// no-op into a loud authoring error. Topology.Validate calls it;
// embedders that splice extra events in after parsing (e.g. a
// programmatic scenario API) should call it again.
func (t *Topology) ValidateScenario() error {
	horizon := t.Option("rounds", 0)
	for i, ev := range t.Scenario {
		if err := t.validateEvent(ev); err != nil {
			return fmt.Errorf("scenario event %d (%s): %w", i, ev, err)
		}
		// Events fire after their round completes, so an event at exactly
		// the horizon still runs on a `rounds`-bounded play.
		if horizon > 0 && int64(ev.To) > horizon {
			return fmt.Errorf("scenario event %d (%s): scheduled beyond the configured horizon (option rounds %d) and would never fire; extend `option rounds` or move the event",
				i, ev, horizon)
		}
	}
	return validateScenarioWindows(t.Scenario)
}

// validateScenarioWindows rejects timelines whose stateful windows (loss,
// partition) overlap another event of the same state: each window saves the
// state at its start and restores it at its end, so an overlapping change
// would be clobbered by a stale restore. Point events outside any window
// compose fine (a later window saves and restores whatever they set).
func validateScenarioWindows(events []ScenarioEvent) error {
	for i, w := range events {
		if w.To == w.From || (w.Kind != ScenLoss && w.Kind != ScenPartition) {
			continue
		}
		for j, e := range events {
			if i == j {
				continue
			}
			sameState := e.Kind == w.Kind || (w.Kind == ScenPartition && e.Kind == ScenHeal)
			if !sameState {
				continue
			}
			if e.From <= w.To && e.To >= w.From {
				return fmt.Errorf("scenario events %d (%s) and %d (%s) conflict: a %s window saves and restores state, so overlapping %s changes are not supported",
					i, w, j, e, w.Kind, e.Kind)
			}
		}
	}
	return nil
}

func (t *Topology) validateEvent(ev ScenarioEvent) error {
	if ev.From < 0 {
		return fmt.Errorf("round must be >= 0, got %d", ev.From)
	}
	if ev.To < ev.From {
		return fmt.Errorf("window end %d before start %d", ev.To, ev.From)
	}
	switch ev.Kind {
	case ScenKill:
		if ev.Fraction <= 0 || ev.Fraction > 1 {
			return fmt.Errorf("kill fraction must be in (0, 1], got %g", ev.Fraction)
		}
	case ScenKillComponent:
		if ev.Component == "" {
			return fmt.Errorf("kill component needs a component name")
		}
		if !t.scenarioComponentKnown(ev.Component) {
			return fmt.Errorf("unknown component %q (not in the topology or any reconfigure target)", ev.Component)
		}
	case ScenJoin:
		if ev.Count < 1 {
			return fmt.Errorf("join count must be >= 1, got %d", ev.Count)
		}
	case ScenLoss:
		if ev.Fraction < 0 || ev.Fraction >= 1 {
			return fmt.Errorf("loss probability must be in [0, 1), got %g", ev.Fraction)
		}
	case ScenChurn:
		if ev.Fraction <= 0 || ev.Fraction >= 1 {
			return fmt.Errorf("churn rate must be in (0, 1), got %g", ev.Fraction)
		}
	case ScenPartition:
		if ev.Count < 2 {
			return fmt.Errorf("partition needs >= 2 groups, got %d", ev.Count)
		}
	case ScenHeal:
		// No arguments.
	case ScenSnapshot:
		if ev.Path == "" {
			return fmt.Errorf("snapshot needs a destination path")
		}
		if ev.To != ev.From {
			return fmt.Errorf("snapshot is a point event; use `at`, not a window")
		}
	case ScenReconfigure:
		if ev.Reconfigure == nil {
			return fmt.Errorf("reconfigure needs a target topology")
		}
		if ev.To != ev.From {
			return fmt.Errorf("reconfigure is a point event; use `at`, not a window")
		}
		if len(ev.Reconfigure.Scenario) > 0 {
			return fmt.Errorf("reconfigure target must not carry its own scenario")
		}
		if err := ev.Reconfigure.Validate(); err != nil {
			return fmt.Errorf("reconfigure target: %w", err)
		}
	default:
		return fmt.Errorf("unknown action kind %q", ev.Kind)
	}
	return nil
}

// scenarioComponentKnown reports whether a component name exists in the base
// topology or in any scheduled reconfiguration target (a kill-component may
// legitimately target a component that only exists after a reconfigure).
func (t *Topology) scenarioComponentKnown(name string) bool {
	if t.Component(name) != nil {
		return true
	}
	for _, ev := range t.Scenario {
		if ev.Kind == ScenReconfigure && ev.Reconfigure != nil && ev.Reconfigure.Component(name) != nil {
			return true
		}
	}
	return false
}
