package spec

import (
	"strings"
	"testing"
)

// ringPair builds a minimal valid two-component topology.
func ringPair() *Topology {
	return &Topology{
		Name: "pair",
		Components: []Component{
			{Name: "a", Shape: "ring", Weight: 1, Ports: []string{"p"}},
			{Name: "b", Shape: "ring", Weight: 1, Ports: []string{"q"}},
		},
		Links: []Link{{A: PortRef{"a", "p"}, B: PortRef{"b", "q"}}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := ringPair().Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Topology)
		wantSub string
	}{
		{"no components", func(tp *Topology) { tp.Components = nil }, "no components"},
		{"dup component", func(tp *Topology) { tp.Components[1].Name = "a" }, "duplicate component"},
		{"empty name", func(tp *Topology) { tp.Components[0].Name = "" }, "empty name"},
		{"dotted name", func(tp *Topology) { tp.Components[0].Name = "a.b" }, "invalid name"},
		{"bad weight", func(tp *Topology) { tp.Components[0].Weight = 0 }, "weight"},
		{"bad shape", func(tp *Topology) { tp.Components[0].Shape = "blob" }, "unknown shape"},
		{"bad shape param", func(tp *Topology) {
			tp.Components[0].Params = map[string]int64{"width": 1}
		}, "unknown parameter"},
		{"dup port", func(tp *Topology) { tp.Components[0].Ports = []string{"p", "p"} }, "duplicate port"},
		{"unknown link comp", func(tp *Topology) { tp.Links[0].A.Component = "zz" }, "unknown component"},
		{"unknown link port", func(tp *Topology) { tp.Links[0].A.Port = "zz" }, "no port"},
		{"self link", func(tp *Topology) { tp.Links[0].B = tp.Links[0].A }, "itself"},
		{"dup link", func(tp *Topology) {
			tp.Links = append(tp.Links, Link{A: tp.Links[0].B, B: tp.Links[0].A})
		}, "duplicate link"},
	}
	for _, tc := range cases {
		tp := ringPair()
		tc.mutate(tp)
		err := tp.Validate()
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestLookupHelpers(t *testing.T) {
	tp := ringPair()
	if c := tp.Component("b"); c == nil || c.Name != "b" {
		t.Fatal("Component lookup failed")
	}
	if tp.Component("zz") != nil {
		t.Fatal("unknown component should be nil")
	}
	if i := tp.ComponentIndex("b"); i != 1 {
		t.Fatalf("ComponentIndex = %d, want 1", i)
	}
	if i := tp.ComponentIndex("zz"); i != -1 {
		t.Fatalf("ComponentIndex of unknown = %d, want -1", i)
	}
	if !tp.Components[0].HasPort("p") || tp.Components[0].HasPort("x") {
		t.Fatal("HasPort misbehaves")
	}
}

func TestTotalWeight(t *testing.T) {
	tp := ringPair()
	tp.Components[0].Weight = 3
	if got := tp.TotalWeight(); got != 4 {
		t.Fatalf("TotalWeight = %d, want 4", got)
	}
}

func TestOptions(t *testing.T) {
	tp := ringPair()
	if got := tp.Option("rounds", 42); got != 42 {
		t.Fatalf("missing option default = %d, want 42", got)
	}
	tp.SetOption("rounds", 7)
	if got := tp.Option("rounds", 42); got != 7 {
		t.Fatalf("option = %d, want 7", got)
	}
}

func TestStringers(t *testing.T) {
	l := Link{A: PortRef{"a", "p"}, B: PortRef{"b", "q"}}
	if l.String() != "a.p <-> b.q" {
		t.Fatalf("Link.String() = %q", l.String())
	}
	if l.A.String() != "a.p" {
		t.Fatalf("PortRef.String() = %q", l.A.String())
	}
}

func TestNewShapeFromComponent(t *testing.T) {
	c := Component{Name: "g", Shape: "grid", Params: map[string]int64{"width": 5}, Weight: 1}
	s, err := c.NewShape()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "grid" {
		t.Fatalf("shape name = %q", s.Name())
	}
}

func TestInstanceNamesAllowed(t *testing.T) {
	tp := ringPair()
	tp.Components[0].Name = "shard[12]"
	tp.Links[0].A.Component = "shard[12]"
	if err := tp.Validate(); err != nil {
		t.Fatalf("instance-form name rejected: %v", err)
	}
}
