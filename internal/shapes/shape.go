// Package shapes is the component library of the framework: the catalog of
// elementary topologies (ring, line, clique, star, tree, grid, torus,
// hypercube) that components enforce internally and that developers
// assemble into larger systems.
//
// Each shape answers three questions about a component of n members whose
// nodes carry dense indices 0..n-1 (assigned by the runtime's role
// allocator):
//
//   - Neighbors(i, n): which members node i should be connected to — the
//     *target adjacency* used by the convergence oracle;
//   - Rank(owner, candidate): the greedy gradient driving the Vicinity
//     core protocol toward the target (lower is closer);
//   - Capacity(p): how many core-overlay slots a member needs, enabling
//     per-role differentiation (a star hub keeps every leaf, a leaf keeps
//     just the hubs).
package shapes

import (
	"fmt"
	"math/bits"
	"sort"

	"sosf/internal/view"
)

// Shape describes one elementary topology.
type Shape interface {
	// Name returns the registry name of the shape (e.g. "ring").
	Name() string
	// Neighbors returns the target neighbor indices of member i in a
	// component of n members. Implementations may return asymmetric
	// per-node lists; TargetEdges takes the union.
	Neighbors(i, n int) []int
	// Rank orders candidate c for owner o; lower is better. Both profiles
	// belong to the same component and epoch (the caller guarantees it);
	// o.Size is the component size.
	Rank(o, c view.Profile) float64
	// Capacity returns the core-overlay view capacity for a member with
	// profile p (target degree plus slack; slack speeds up convergence).
	Capacity(p view.Profile) int
}

// slack is the extra view capacity beyond the target degree; a little
// headroom lets good candidates stay around while better ones are found.
const slack = 3

// TargetEdges returns the deduplicated union of every member's target
// adjacency, as index pairs with first < second.
func TargetEdges(s Shape, n int) [][2]int {
	seen := make(map[[2]int]struct{})
	for i := 0; i < n; i++ {
		for _, j := range s.Neighbors(i, n) {
			if i == j {
				continue
			}
			e := [2]int{i, j}
			if j < i {
				e = [2]int{j, i}
			}
			seen[e] = struct{}{}
		}
	}
	out := make([][2]int, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// cyclicDist is the distance between indices i and j on a cycle of n.
// Indices beyond n can occur transiently (nodes that joined mid-epoch carry
// indices past the stamped component size); the wraparound complement is
// only taken when non-negative so the distance never goes negative.
func cyclicDist(i, j, n int32) int32 {
	d := i - j
	if d < 0 {
		d = -d
	}
	if w := n - d; w >= 0 && w < d {
		d = w
	}
	return d
}

func absDiff(i, j int32) int32 {
	if i > j {
		return i - j
	}
	return j - i
}

// keyMix01 derives a deterministic pseudo-random value in [0, 1) from a
// pair of node keys (SplitMix64 finalizer), used by shapes whose members
// are all equally desirable (cliques, star hubs) to keep gossip payloads
// diverse.
func keyMix01(a, b uint64) float64 {
	x := a ^ (b + 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// New instantiates a shape by registry name with the given parameters.
// Unknown names, unknown parameter keys or invalid values are errors.
func New(name string, params map[string]int64) (Shape, error) {
	get := func(key string, def int64) int64 {
		if v, ok := params[key]; ok {
			return v
		}
		return def
	}
	known := func(keys ...string) error {
		allowed := make(map[string]bool, len(keys))
		for _, k := range keys {
			allowed[k] = true
		}
		for k := range params {
			if !allowed[k] {
				return fmt.Errorf("shape %q: unknown parameter %q", name, k)
			}
		}
		return nil
	}
	switch name {
	case "ring":
		if err := known(); err != nil {
			return nil, err
		}
		return Ring{}, nil
	case "line":
		if err := known(); err != nil {
			return nil, err
		}
		return Line{}, nil
	case "clique":
		if err := known(); err != nil {
			return nil, err
		}
		return Clique{}, nil
	case "star":
		if err := known("hubs"); err != nil {
			return nil, err
		}
		h := get("hubs", 1)
		if h < 1 {
			return nil, fmt.Errorf("shape star: hubs must be >= 1, got %d", h)
		}
		return Star{Hubs: int32(h)}, nil
	case "tree":
		if err := known("arity"); err != nil {
			return nil, err
		}
		a := get("arity", 2)
		if a < 1 {
			return nil, fmt.Errorf("shape tree: arity must be >= 1, got %d", a)
		}
		return Tree{Arity: int32(a)}, nil
	case "grid":
		if err := known("width"); err != nil {
			return nil, err
		}
		w := get("width", 0)
		if w < 1 {
			return nil, fmt.Errorf("shape grid: width parameter is required and must be >= 1")
		}
		return Grid{Width: int32(w)}, nil
	case "torus":
		if err := known("width"); err != nil {
			return nil, err
		}
		w := get("width", 0)
		if w < 1 {
			return nil, fmt.Errorf("shape torus: width parameter is required and must be >= 1")
		}
		return Torus{Width: int32(w)}, nil
	case "hypercube":
		if err := known(); err != nil {
			return nil, err
		}
		return Hypercube{}, nil
	default:
		return nil, fmt.Errorf("unknown shape %q (known: %v)", name, Names())
	}
}

// Names returns the registry names of all available shapes, sorted.
func Names() []string {
	return []string{"clique", "grid", "hypercube", "line", "ring", "star", "torus", "tree"}
}

// bitsFor returns the number of address bits a hypercube over n members
// needs (0 for n <= 1).
func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
