package shapes

import "sosf/internal/view"

// Tree arranges members as a complete Arity-ary heap: member i's parent is
// (i-1)/Arity, its children are Arity*i+1 .. Arity*i+Arity.
type Tree struct {
	// Arity is the maximum number of children per member (>= 1).
	Arity int32
}

var _ Shape = Tree{}

// Name implements Shape.
func (Tree) Name() string { return "tree" }

// Neighbors implements Shape.
func (t Tree) Neighbors(i, n int) []int {
	a := int(t.Arity)
	if a < 1 {
		a = 1
	}
	var out []int
	if i > 0 {
		out = append(out, (i-1)/a)
	}
	for c := a*i + 1; c <= a*i+a && c < n; c++ {
		out = append(out, c)
	}
	return out
}

// Rank implements Shape: the tree (hop) distance between the two heap
// positions, which forms a smooth gradient toward the parent/child
// relation (distance 1).
func (t Tree) Rank(o, c view.Profile) float64 {
	return float64(t.dist(o.Index, c.Index))
}

// dist computes the path length between heap indices i and j by walking
// both up to their lowest common ancestor.
func (t Tree) dist(i, j int32) int32 {
	a := t.Arity
	if a < 1 {
		a = 1
	}
	var steps int32
	for i != j {
		if i > j {
			i = (i - 1) / a
		} else {
			j = (j - 1) / a
		}
		steps++
	}
	return steps
}

// Capacity implements Shape: parent + children + slack.
func (t Tree) Capacity(view.Profile) int {
	a := int(t.Arity)
	if a < 1 {
		a = 1
	}
	return 1 + a + slack
}
