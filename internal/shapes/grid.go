package shapes

import "sosf/internal/view"

// Grid arranges members on a Width-column lattice: member i sits at cell
// (i mod Width, i div Width) and links to its 4-neighborhood. When n is not
// a multiple of Width the last row is simply shorter (a "ragged" grid),
// which keeps the target well-defined for any component size — component
// sizes fluctuate under churn and proportional node assignment.
type Grid struct {
	// Width is the number of columns (>= 1).
	Width int32
}

var _ Shape = Grid{}

// Name implements Shape.
func (Grid) Name() string { return "grid" }

// Neighbors implements Shape.
func (g Grid) Neighbors(i, n int) []int {
	w := int(g.Width)
	if w < 1 {
		w = 1
	}
	x, y := i%w, i/w
	var out []int
	if x > 0 {
		out = append(out, i-1)
	}
	if x+1 < w && i+1 < n {
		out = append(out, i+1)
	}
	if y > 0 {
		out = append(out, i-w)
	}
	if i+w < n {
		out = append(out, i+w)
	}
	return out
}

// Rank implements Shape: Manhattan distance between lattice cells.
func (g Grid) Rank(o, c view.Profile) float64 {
	w := g.Width
	if w < 1 {
		w = 1
	}
	return float64(absDiff(o.Index%w, c.Index%w) + absDiff(o.Index/w, c.Index/w))
}

// Capacity implements Shape.
func (Grid) Capacity(view.Profile) int { return 4 + slack }

// Torus is a Grid whose rows and columns wrap around, so every member has
// a full 4-neighborhood (for components of at least 3 rows and columns).
// Ragged last rows wrap to the nearest cell of the destination row.
type Torus struct {
	// Width is the number of columns (>= 1).
	Width int32
}

var _ Shape = Torus{}

// Name implements Shape.
func (Torus) Name() string { return "torus" }

// rows returns the number of (possibly ragged) rows for n members.
func (t Torus) rows(n int) int {
	w := int(t.Width)
	if w < 1 {
		w = 1
	}
	return (n + w - 1) / w
}

// rowLen returns the length of row r.
func (t Torus) rowLen(r, n int) int {
	w := int(t.Width)
	if w < 1 {
		w = 1
	}
	l := n - r*w
	if l > w {
		l = w
	}
	return l
}

// Neighbors implements Shape.
func (t Torus) Neighbors(i, n int) []int {
	w := int(t.Width)
	if w < 1 {
		w = 1
	}
	x, y := i%w, i/w
	rows := t.rows(n)
	var out []int
	if l := t.rowLen(y, n); l > 1 {
		out = append(out, y*w+(x+1)%l, y*w+(x+l-1)%l)
	}
	if rows > 1 {
		down := (y + 1) % rows
		up := (y + rows - 1) % rows
		clamp := func(r int) int {
			xx := x
			if l := t.rowLen(r, n); xx >= l {
				xx = l - 1
			}
			return r*w + xx
		}
		out = append(out, clamp(down), clamp(up))
	}
	// Deduplicate (tiny components can make up == down etc.).
	seen := make(map[int]struct{}, len(out))
	uniq := out[:0]
	for _, j := range out {
		if j == i {
			continue
		}
		if _, ok := seen[j]; ok {
			continue
		}
		seen[j] = struct{}{}
		uniq = append(uniq, j)
	}
	return uniq
}

// Rank implements Shape: Manhattan distance with wraparound on both axes.
func (t Torus) Rank(o, c view.Profile) float64 {
	w := t.Width
	if w < 1 {
		w = 1
	}
	rows := int32(t.rows(int(o.Size)))
	dx := cyclicDist(o.Index%w, c.Index%w, w)
	dy := cyclicDist(o.Index/w, c.Index/w, rows)
	return float64(dx + dy)
}

// Capacity implements Shape. An exact torus keeps the 4-neighborhood plus
// slack. A ragged torus (size not a multiple of the width) degenerates to
// a full view like Clique: the clamped wrap edges of the short row rank
// arbitrarily far from their endpoints under the cyclic metric, so rank
// competition at small capacity would permanently evict them and the
// target could never be realized. Sizes fluctuate under churn, so the
// degenerate capacity is usually transient.
func (t Torus) Capacity(p view.Profile) int {
	if w := int(t.Width); w >= 1 && p.Size > 0 && int(p.Size)%w != 0 {
		return int(p.Size) - 1 + slack
	}
	return 4 + slack
}

// Hypercube arranges members on a binary hypercube: member i links to every
// index obtained by flipping one bit of i (when that index is a member).
type Hypercube struct{}

var _ Shape = Hypercube{}

// Name implements Shape.
func (Hypercube) Name() string { return "hypercube" }

// Neighbors implements Shape.
func (Hypercube) Neighbors(i, n int) []int {
	var out []int
	for b := 0; b < bitsFor(n); b++ {
		j := i ^ (1 << b)
		if j < n {
			out = append(out, j)
		}
	}
	return out
}

// Rank implements Shape: Hamming distance between indices.
func (Hypercube) Rank(o, c view.Profile) float64 {
	x := uint32(o.Index) ^ uint32(c.Index)
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return float64(count)
}

// Capacity implements Shape.
func (h Hypercube) Capacity(p view.Profile) int {
	return bitsFor(int(p.Size)) + slack
}
