package shapes

import "sosf/internal/view"

// Grid arranges members on a Width-column lattice: member i sits at cell
// (i mod Width, i div Width) and links to its 4-neighborhood. When n is not
// a multiple of Width the last row is simply shorter (a "ragged" grid),
// which keeps the target well-defined for any component size — component
// sizes fluctuate under churn and proportional node assignment.
type Grid struct {
	// Width is the number of columns (>= 1).
	Width int32
}

var _ Shape = Grid{}

// Name implements Shape.
func (Grid) Name() string { return "grid" }

// Neighbors implements Shape.
func (g Grid) Neighbors(i, n int) []int {
	w := int(g.Width)
	if w < 1 {
		w = 1
	}
	x, y := i%w, i/w
	var out []int
	if x > 0 {
		out = append(out, i-1)
	}
	if x+1 < w && i+1 < n {
		out = append(out, i+1)
	}
	if y > 0 {
		out = append(out, i-w)
	}
	if i+w < n {
		out = append(out, i+w)
	}
	return out
}

// Rank implements Shape: Manhattan distance between lattice cells.
func (g Grid) Rank(o, c view.Profile) float64 {
	w := g.Width
	if w < 1 {
		w = 1
	}
	return float64(absDiff(o.Index%w, c.Index%w) + absDiff(o.Index/w, c.Index/w))
}

// Capacity implements Shape.
func (Grid) Capacity(view.Profile) int { return 4 + slack }

// Torus is a Grid whose rows and columns wrap around, so every member has
// a full 4-neighborhood (for components of at least 3 rows and columns).
// Ragged last rows wrap to the nearest cell of the destination row.
type Torus struct {
	// Width is the number of columns (>= 1).
	Width int32
}

var _ Shape = Torus{}

// Name implements Shape.
func (Torus) Name() string { return "torus" }

// rows returns the number of (possibly ragged) rows for n members.
func (t Torus) rows(n int) int {
	w := int(t.Width)
	if w < 1 {
		w = 1
	}
	return (n + w - 1) / w
}

// rowLen returns the length of row r.
func (t Torus) rowLen(r, n int) int {
	w := int(t.Width)
	if w < 1 {
		w = 1
	}
	l := n - r*w
	if l > w {
		l = w
	}
	return l
}

// Neighbors implements Shape.
func (t Torus) Neighbors(i, n int) []int {
	w := int(t.Width)
	if w < 1 {
		w = 1
	}
	x, y := i%w, i/w
	rows := t.rows(n)
	var out []int
	if l := t.rowLen(y, n); l > 1 {
		out = append(out, y*w+(x+1)%l, y*w+(x+l-1)%l)
	}
	if rows > 1 {
		down := (y + 1) % rows
		up := (y + rows - 1) % rows
		clamp := func(r int) int {
			xx := x
			if l := t.rowLen(r, n); xx >= l {
				xx = l - 1
			}
			return r*w + xx
		}
		out = append(out, clamp(down), clamp(up))
	}
	// Deduplicate (tiny components can make up == down etc.).
	seen := make(map[int]struct{}, len(out))
	uniq := out[:0]
	for _, j := range out {
		if j == i {
			continue
		}
		if _, ok := seen[j]; ok {
			continue
		}
		seen[j] = struct{}{}
		uniq = append(uniq, j)
	}
	return uniq
}

// Rank implements Shape: Manhattan distance with wraparound on both axes.
// The horizontal wrap is measured on the shorter of the two endpoint rows,
// with both columns clamped onto it — the same clamping Neighbors applies
// to a ragged last row's wrap edges, so those target edges are rank-1 under
// this metric instead of ranking arbitrarily far. On an exact torus every
// row is full and the clamp is a no-op, so exact rankings are unchanged.
func (t Torus) Rank(o, c view.Profile) float64 {
	w := t.Width
	if w < 1 {
		w = 1
	}
	n := int(o.Size)
	dy := cyclicDist(o.Index/w, c.Index/w, int32(t.rows(n)))
	m := int32(t.rowLen(int(o.Index/w), n))
	if l := int32(t.rowLen(int(c.Index/w), n)); l < m {
		m = l
	}
	if m < 1 {
		// Transient out-of-range indices (stale profiles mid-epoch) land
		// outside every row; pin them to a 1-column wrap like cyclicDist
		// pins out-of-range rows.
		m = 1
	}
	xo, xc := o.Index%w, c.Index%w
	if xo >= m {
		xo = m - 1
	}
	if xc >= m {
		xc = m - 1
	}
	return float64(cyclicDist(xo, xc, m) + dy)
}

// Capacity implements Shape: the 4-neighborhood plus slack, at every size.
// Ragged sizes need no more — Rank clamps the horizontal wrap onto the
// shorter endpoint row, so each target edge is rank-1 for at least one of
// its endpoints and either endpoint's retention realizes it. (Before the
// clamped metric, ragged sizes degenerated to a Clique-style full view.)
func (t Torus) Capacity(view.Profile) int {
	return 4 + slack
}

// Hypercube arranges members on a binary hypercube: member i links to every
// index obtained by flipping one bit of i (when that index is a member).
type Hypercube struct{}

var _ Shape = Hypercube{}

// Name implements Shape.
func (Hypercube) Name() string { return "hypercube" }

// Neighbors implements Shape.
func (Hypercube) Neighbors(i, n int) []int {
	var out []int
	for b := 0; b < bitsFor(n); b++ {
		j := i ^ (1 << b)
		if j < n {
			out = append(out, j)
		}
	}
	return out
}

// Rank implements Shape: Hamming distance between indices.
func (Hypercube) Rank(o, c view.Profile) float64 {
	x := uint32(o.Index) ^ uint32(c.Index)
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return float64(count)
}

// Capacity implements Shape.
func (h Hypercube) Capacity(p view.Profile) int {
	return bitsFor(int(p.Size)) + slack
}
