package shapes

import (
	"testing"
	"testing/quick"

	"sosf/internal/graph"
	"sosf/internal/view"
)

func allShapes() []Shape {
	return []Shape{
		Ring{}, Line{}, Clique{}, Star{Hubs: 1}, Star{Hubs: 3},
		Tree{Arity: 2}, Tree{Arity: 3}, Grid{Width: 4}, Torus{Width: 4},
		Hypercube{},
	}
}

func profile(i, n int) view.Profile {
	return view.Profile{Index: int32(i), Size: int32(n)}
}

// Property: for every shape, neighbors are in range, never self, and never
// exceed the shape's declared capacity.
func TestNeighborsWellFormed(t *testing.T) {
	f := func(rawN uint8) bool {
		n := int(rawN%60) + 1
		for _, s := range allShapes() {
			for i := 0; i < n; i++ {
				neigh := s.Neighbors(i, n)
				if len(neigh) > s.Capacity(profile(i, n)) {
					return false
				}
				for _, j := range neigh {
					if j < 0 || j >= n || j == i {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every shape's target topology is connected for any component
// size — a component must always be one piece.
func TestTargetConnected(t *testing.T) {
	for _, s := range allShapes() {
		for n := 1; n <= 40; n++ {
			g := graph.New(n)
			for _, e := range TargetEdges(s, n) {
				g.AddEdge(e[0], e[1])
			}
			if !g.Connected() {
				t.Fatalf("%s target disconnected at n=%d", s.Name(), n)
			}
		}
	}
}

// Property: rank of a profile against itself is 0 for every shape — except
// star leaves, which reject fellow leaves outright (self never appears as a
// candidate, so leaf self-rank is unconstrained and RankInf by design).
func TestRankIdentity(t *testing.T) {
	f := func(rawI, rawN uint8) bool {
		n := int(rawN%60) + 1
		i := int(rawI) % n
		p := profile(i, n)
		for _, s := range allShapes() {
			if st, ok := s.(Star); ok && i >= st.hubCount(n) {
				continue
			}
			if s.Rank(p, p) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// gradientExact lists shapes for which "the target neighbors are exactly
// the rank-minimizing candidates" holds, paired with sizes that satisfy it.
func TestGradientMatchesTarget(t *testing.T) {
	cases := []struct {
		shape Shape
		n     int
	}{
		{Ring{}, 17}, {Ring{}, 2}, {Line{}, 12},
		{Tree{Arity: 2}, 15}, {Tree{Arity: 3}, 13},
		{Grid{Width: 4}, 16}, {Hypercube{}, 16},
	}
	for _, tc := range cases {
		target := make(map[int]map[int]bool, tc.n)
		for i := 0; i < tc.n; i++ {
			target[i] = map[int]bool{}
			for _, j := range tc.shape.Neighbors(i, tc.n) {
				target[i][j] = true
			}
		}
		for i := 0; i < tc.n; i++ {
			if len(target[i]) == 0 {
				continue
			}
			// max rank among targets must be < min rank among non-targets
			// (non-strict would let the overlay settle on a wrong edge).
			maxT, minN := 0.0, view.RankInf
			for j := 0; j < tc.n; j++ {
				if j == i {
					continue
				}
				r := tc.shape.Rank(profile(i, tc.n), profile(j, tc.n))
				if target[i][j] {
					if r > maxT {
						maxT = r
					}
				} else if r < minN {
					minN = r
				}
			}
			if maxT >= minN {
				t.Fatalf("%s n=%d i=%d: target max rank %f >= non-target min %f",
					tc.shape.Name(), tc.n, i, maxT, minN)
			}
		}
	}
}

func TestRingNeighbors(t *testing.T) {
	cases := []struct {
		i, n int
		want []int
	}{
		{0, 1, nil},
		{0, 2, []int{1}},
		{1, 2, []int{0}},
		{0, 5, []int{4, 1}},
		{4, 5, []int{3, 0}},
	}
	for _, tc := range cases {
		got := Ring{}.Neighbors(tc.i, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("Ring.Neighbors(%d, %d) = %v, want %v", tc.i, tc.n, got, tc.want)
		}
		for k := range got {
			if got[k] != tc.want[k] {
				t.Fatalf("Ring.Neighbors(%d, %d) = %v, want %v", tc.i, tc.n, got, tc.want)
			}
		}
	}
}

func TestRingDegreeTwo(t *testing.T) {
	for n := 3; n <= 20; n++ {
		g := graph.New(n)
		for _, e := range TargetEdges(Ring{}, n) {
			g.AddEdge(e[0], e[1])
		}
		min, max, _ := g.DegreeStats()
		if min != 2 || max != 2 {
			t.Fatalf("ring n=%d degrees (%d, %d), want 2-regular", n, min, max)
		}
	}
}

func TestLineEndpoints(t *testing.T) {
	g := graph.New(7)
	for _, e := range TargetEdges(Line{}, 7) {
		g.AddEdge(e[0], e[1])
	}
	if g.Degree(0) != 1 || g.Degree(6) != 1 {
		t.Fatal("line endpoints should have degree 1")
	}
	if g.Degree(3) != 2 {
		t.Fatal("line interior should have degree 2")
	}
	if g.Diameter() != 6 {
		t.Fatalf("line-7 diameter = %d, want 6", g.Diameter())
	}
}

func TestCliqueComplete(t *testing.T) {
	n := 8
	edges := TargetEdges(Clique{}, n)
	if len(edges) != n*(n-1)/2 {
		t.Fatalf("clique edges = %d, want %d", len(edges), n*(n-1)/2)
	}
}

func TestStarTopology(t *testing.T) {
	n := 10
	g := graph.New(n)
	for _, e := range TargetEdges(Star{Hubs: 1}, n) {
		g.AddEdge(e[0], e[1])
	}
	if g.Degree(0) != n-1 {
		t.Fatalf("hub degree = %d, want %d", g.Degree(0), n-1)
	}
	for i := 1; i < n; i++ {
		if g.Degree(i) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", i, g.Degree(i))
		}
	}
	if g.Diameter() != 2 {
		t.Fatalf("star diameter = %d, want 2", g.Diameter())
	}
}

func TestMultiHubStar(t *testing.T) {
	n, h := 12, 3
	g := graph.New(n)
	for _, e := range TargetEdges(Star{Hubs: int32(h)}, n) {
		g.AddEdge(e[0], e[1])
	}
	for i := 0; i < h; i++ {
		if g.Degree(i) != n-1 {
			t.Fatalf("hub %d degree = %d, want %d", i, g.Degree(i), n-1)
		}
	}
	for i := h; i < n; i++ {
		if g.Degree(i) != h {
			t.Fatalf("leaf %d degree = %d, want %d", i, g.Degree(i), h)
		}
	}
}

func TestStarLeafRejectsLeaf(t *testing.T) {
	s := Star{Hubs: 1}
	n := 10
	if r := s.Rank(profile(5, n), profile(6, n)); r != view.RankInf {
		t.Fatalf("leaf-leaf rank = %f, want RankInf", r)
	}
	if r := s.Rank(profile(5, n), profile(0, n)); r == view.RankInf {
		t.Fatal("leaf-hub must be rankable")
	}
}

func TestTreeStructure(t *testing.T) {
	tr := Tree{Arity: 2}
	n := 7 // perfect binary tree of height 2
	g := graph.New(n)
	for _, e := range TargetEdges(tr, n) {
		g.AddEdge(e[0], e[1])
	}
	if g.EdgeCount() != n-1 {
		t.Fatalf("tree edges = %d, want %d", g.EdgeCount(), n-1)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("root degree = %d, want 2", g.Degree(0))
	}
	for i := 3; i < 7; i++ {
		if g.Degree(i) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", i, g.Degree(i))
		}
	}
}

func TestTreeDist(t *testing.T) {
	tr := Tree{Arity: 2}
	cases := []struct {
		i, j int32
		want int32
	}{
		{0, 0, 0}, {0, 1, 1}, {1, 2, 2}, {3, 1, 1}, {3, 4, 2}, {3, 6, 4},
	}
	for _, tc := range cases {
		if got := tr.dist(tc.i, tc.j); got != tc.want {
			t.Fatalf("dist(%d, %d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
		if got := tr.dist(tc.j, tc.i); got != tc.want {
			t.Fatalf("dist(%d, %d) not symmetric", tc.j, tc.i)
		}
	}
}

func TestGridExact(t *testing.T) {
	g := graph.New(12)
	for _, e := range TargetEdges(Grid{Width: 4}, 12) {
		g.AddEdge(e[0], e[1])
	}
	// 3x4 grid: corner degree 2, edge degree 3, interior degree 4.
	if g.Degree(0) != 2 || g.Degree(3) != 2 || g.Degree(8) != 2 || g.Degree(11) != 2 {
		t.Fatal("grid corners should have degree 2")
	}
	if g.Degree(5) != 4 {
		t.Fatalf("grid interior degree = %d, want 4", g.Degree(5))
	}
}

func TestGridRagged(t *testing.T) {
	// 4 columns, 10 members: last row has 2.
	edges := TargetEdges(Grid{Width: 4}, 10)
	g := graph.New(10)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	if !g.Connected() {
		t.Fatal("ragged grid must stay connected")
	}
	if g.Degree(9) != 2 { // (1,2): left 8, up 5
		t.Fatalf("ragged cell degree = %d, want 2", g.Degree(9))
	}
}

func TestTorusWraparound(t *testing.T) {
	// 4x4 torus: 4-regular, diameter 4.
	g := graph.New(16)
	for _, e := range TargetEdges(Torus{Width: 4}, 16) {
		g.AddEdge(e[0], e[1])
	}
	min, max, _ := g.DegreeStats()
	if min != 4 || max != 4 {
		t.Fatalf("torus degrees (%d, %d), want 4-regular", min, max)
	}
	if !g.HasEdge(0, 3) {
		t.Fatal("row wraparound edge (0,3) missing")
	}
	if !g.HasEdge(0, 12) {
		t.Fatal("column wraparound edge (0,12) missing")
	}
}

// TestTorusRaggedCapacity pins the O(1) view at ragged sizes: the clamped
// rank metric — not a Clique-style full view — is what realizes a short
// row's wrap edges, so capacity stays at the 4-neighborhood plus slack
// regardless of whether the size divides the width.
func TestTorusRaggedCapacity(t *testing.T) {
	tor := Torus{Width: 5}
	for _, n := range []int{14, 64, 97} {
		if got := tor.Capacity(profile(0, n)); got != 4+slack {
			t.Fatalf("ragged torus capacity at n=%d = %d, want %d", n, got, 4+slack)
		}
	}
}

// TestTorusRaggedEdgeRetention is the property that lets ragged tori keep
// O(1) views: for every target edge, at least one endpoint ranks fewer
// than capacity-many candidates strictly better than the other endpoint,
// so retention at that endpoint realizes the edge (an edge counts as
// realized when either endpoint holds it).
func TestTorusRaggedEdgeRetention(t *testing.T) {
	for _, tor := range []Torus{{Width: 4}, {Width: 5}, {Width: 8}} {
		for n := 2; n <= 40; n++ {
			capacity := tor.Capacity(profile(0, n))
			for _, e := range TargetEdges(tor, n) {
				ok := false
				for s := 0; s < 2 && !ok; s++ {
					i, j := e[s], e[1-s]
					r := tor.Rank(profile(i, n), profile(j, n))
					better := 0
					for k := 0; k < n; k++ {
						if k != i && tor.Rank(profile(i, n), profile(k, n)) < r {
							better++
						}
					}
					ok = better < capacity
				}
				if !ok {
					t.Fatalf("width=%d n=%d: target edge %v crowded out at both endpoints",
						tor.Width, n, e)
				}
			}
		}
	}
}

func TestTorusRaggedConnected(t *testing.T) {
	for n := 1; n <= 30; n++ {
		g := graph.New(n)
		for _, e := range TargetEdges(Torus{Width: 4}, n) {
			g.AddEdge(e[0], e[1])
		}
		if !g.Connected() {
			t.Fatalf("ragged torus n=%d disconnected", n)
		}
	}
}

func TestHypercube(t *testing.T) {
	g := graph.New(8)
	for _, e := range TargetEdges(Hypercube{}, 8) {
		g.AddEdge(e[0], e[1])
	}
	min, max, _ := g.DegreeStats()
	if min != 3 || max != 3 {
		t.Fatalf("cube degrees (%d, %d), want 3-regular", min, max)
	}
	if g.Diameter() != 3 {
		t.Fatalf("cube diameter = %d, want 3", g.Diameter())
	}
	if got := (Hypercube{}).Rank(profile(0, 8), profile(7, 8)); got != 3 {
		t.Fatalf("Hamming(0,7) = %f, want 3", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		params := map[string]int64{}
		if name == "grid" || name == "torus" {
			params["width"] = 4
		}
		s, err := New(name, params)
		if err != nil {
			t.Fatalf("New(%q) failed: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, s.Name())
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	cases := []struct {
		name   string
		params map[string]int64
	}{
		{"nosuch", nil},
		{"ring", map[string]int64{"width": 3}},
		{"grid", nil},                              // missing width
		{"grid", map[string]int64{"width": 0}},     // invalid width
		{"star", map[string]int64{"hubs": 0}},      // invalid hubs
		{"tree", map[string]int64{"arity": -1}},    // invalid arity
		{"torus", map[string]int64{"bogus": 1}},    // unknown key
		{"hypercube", map[string]int64{"dims": 3}}, // unknown key
	}
	for _, tc := range cases {
		if _, err := New(tc.name, tc.params); err == nil {
			t.Fatalf("New(%q, %v) should fail", tc.name, tc.params)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4},
	}
	for _, tc := range cases {
		if got := bitsFor(tc.n); got != tc.want {
			t.Fatalf("bitsFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestTargetEdgesDeduplicated(t *testing.T) {
	edges := TargetEdges(Ring{}, 6)
	if len(edges) != 6 {
		t.Fatalf("ring-6 edges = %d, want 6", len(edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}
