package shapes

import "sosf/internal/view"

// Ring arranges members on a cycle: member i links to i±1 (mod n).
type Ring struct{}

var _ Shape = Ring{}

// Name implements Shape.
func (Ring) Name() string { return "ring" }

// Neighbors implements Shape.
func (Ring) Neighbors(i, n int) []int {
	switch {
	case n <= 1:
		return nil
	case n == 2:
		return []int{1 - i}
	default:
		return []int{(i + n - 1) % n, (i + 1) % n}
	}
}

// Rank implements Shape: cyclic index distance.
func (Ring) Rank(o, c view.Profile) float64 {
	return float64(cyclicDist(o.Index, c.Index, o.Size))
}

// Capacity implements Shape.
func (Ring) Capacity(view.Profile) int { return 2 + slack }

// Line arranges members on a path: member i links to i±1, ends have one
// neighbor.
type Line struct{}

var _ Shape = Line{}

// Name implements Shape.
func (Line) Name() string { return "line" }

// Neighbors implements Shape.
func (Line) Neighbors(i, n int) []int {
	var out []int
	if i > 0 {
		out = append(out, i-1)
	}
	if i+1 < n {
		out = append(out, i+1)
	}
	return out
}

// Rank implements Shape: absolute index distance.
func (Line) Rank(o, c view.Profile) float64 {
	return float64(absDiff(o.Index, c.Index))
}

// Capacity implements Shape.
func (Line) Capacity(view.Profile) int { return 2 + slack }

// Clique fully connects all members.
type Clique struct{}

var _ Shape = Clique{}

// Name implements Shape.
func (Clique) Name() string { return "clique" }

// Neighbors implements Shape.
func (Clique) Neighbors(i, n int) []int {
	out := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

// Rank implements Shape: every member is wanted equally, so the rank is a
// deterministic pairwise pseudo-random value. A distance-based rank would
// sort "far" members last in every gossip payload, starving them of
// refreshes and leaving the last few clique edges to a long random tail;
// pairwise mixing gives every member a regular refresh path instead.
func (Clique) Rank(o, c view.Profile) float64 {
	if o.Index == c.Index && o.Key == c.Key {
		return 0
	}
	return keyMix01(o.Key, c.Key)
}

// Capacity implements Shape: a clique member must hold everyone.
func (Clique) Capacity(p view.Profile) int {
	n := int(p.Size)
	if n < 2 {
		return 1
	}
	return n - 1 + slack
}

// Star connects every leaf to each of the first Hubs members; hubs form a
// clique among themselves (with Hubs=1 this is the classic star). MongoDB's
// sharded-cluster router layer — the paper's motivating "star of cliques" —
// is a star whose hub set is the router replica group.
type Star struct {
	// Hubs is the number of hub members (indices 0..Hubs-1).
	Hubs int32
}

var _ Shape = Star{}

// Name implements Shape.
func (Star) Name() string { return "star" }

// hubCount clamps the hub count to the component size.
func (s Star) hubCount(n int) int {
	h := int(s.Hubs)
	if h < 1 {
		h = 1
	}
	if h > n {
		h = n
	}
	return h
}

// Neighbors implements Shape.
func (s Star) Neighbors(i, n int) []int {
	h := s.hubCount(n)
	if i < h {
		// Hubs connect to everyone.
		return Clique{}.Neighbors(i, n)
	}
	out := make([]int, h)
	for j := 0; j < h; j++ {
		out[j] = j
	}
	return out
}

// Rank implements Shape: hubs want everyone (closest index first); leaves
// want only hubs and reject other leaves outright.
func (s Star) Rank(o, c view.Profile) float64 {
	h := int32(s.hubCount(int(o.Size)))
	if o.Index < h {
		return float64(cyclicDist(o.Index, c.Index, o.Size))
	}
	if c.Index < h {
		return float64(c.Index)
	}
	return view.RankInf
}

// Capacity implements Shape: hubs hold the whole component, leaves hold
// just the hub set.
func (s Star) Capacity(p view.Profile) int {
	n := int(p.Size)
	h := s.hubCount(n)
	if int(p.Index) < h {
		if n < 2 {
			return 1
		}
		return n - 1 + slack
	}
	return h + slack
}
