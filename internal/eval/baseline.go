package eval

import (
	"fmt"

	"sosf/internal/baseline"
	"sosf/internal/core"
	"sosf/internal/metrics"
)

// Baseline compares the composed runtime against the monolithic
// self-organizing overlay the paper argues against (Section 2.2): one
// Vicinity instance with a hand-crafted global distance function building
// the same ring-of-rings. Both converge on a static population; the
// difference the paper predicts — and this experiment shows — is what
// happens afterwards: the composed runtime re-elects port managers and
// heals its inter-component links after a catastrophe, while the
// monolithic overlay's designated boundary roles die with their nodes.
func Baseline(o Options) (*Result, error) {
	o = o.withDefaults()
	nodes, segments := 800, 8
	if o.Full {
		nodes = 3200
	}
	const blast = 0.5
	const healRounds = 60

	topo := MustTopology(RingOfRingsDSL(segments))
	type baselineRun struct {
		composedRounds, composedBytes, composedRing, composedLinks float64
		monoRounds, monoBytes, monoRing, monoLinks                 float64
	}
	results, err := runRuns(o, func(run int) (baselineRun, error) {
		seed := seedFor(o.Seed, 1200, run)
		var out baselineRun

		// Composed framework.
		sys, err := core.NewSystem(core.Config{Topology: topo, Nodes: nodes, Seed: seed, Workers: o.RoundWorkers})
		if err != nil {
			return out, fmt.Errorf("baseline composed run=%d: %w", run, err)
		}
		tracker := core.NewTracker(sys, true)
		executed, err := sys.Run(o.MaxRounds)
		if err != nil {
			return out, err
		}
		out.composedRounds = float64(executed)
		var bytes float64
		meterRounds := sys.Engine().Meter().Rounds()
		for r := 0; r < meterRounds; r++ {
			base, over := sys.BandwidthByClass(r)
			bytes += float64(base + over)
		}
		out.composedBytes = bytes / float64(meterRounds) / float64(nodes)
		sys.Kill(blast)
		tracker.StopWhenDone = false
		if _, err := sys.Run(healRounds); err != nil {
			return out, err
		}
		m := sys.Oracle().Measure()
		out.composedRing = m.Fraction[core.SubElementary]
		out.composedLinks = m.Fraction[core.SubPortConnect]

		// Monolithic baseline.
		mono, err := baseline.New(nodes, segments, seed)
		if err != nil {
			return out, fmt.Errorf("baseline monolithic run=%d: %w", run, err)
		}
		if o.RoundWorkers != 0 {
			mono.Engine().SetWorkers(o.RoundWorkers)
		}
		rounds, err := mono.RoundsToConverge(o.MaxRounds)
		if err != nil {
			return out, err
		}
		out.monoRounds = float64(rounds)
		out.monoBytes = mono.BytesPerNode()
		mono.Kill(blast)
		if _, err := mono.Run(healRounds); err != nil {
			return out, err
		}
		out.monoRing, out.monoLinks = mono.Accuracy()
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	var composedRounds, composedBytes, composedRing, composedLinks metrics.Accumulator
	var monoRounds, monoBytes, monoRing, monoLinks metrics.Accumulator
	for _, r := range results {
		composedRounds.Add(r.composedRounds)
		composedBytes.Add(r.composedBytes)
		composedRing.Add(r.composedRing)
		composedLinks.Add(r.composedLinks)
		monoRounds.Add(r.monoRounds)
		monoBytes.Add(r.monoBytes)
		monoRing.Add(r.monoRing)
		monoLinks.Add(r.monoLinks)
	}

	table := metrics.NewTable(
		"approach", "rounds to converge", "bytes/node/round",
		fmt.Sprintf("ring accuracy after %.0f%% blast", blast*100),
		"inter-segment links alive")
	table.AddRow(
		"composed (this framework)",
		metrics.FormatMeanCI(metrics.Summarize(&composedRounds)),
		fmt.Sprintf("%.0f", composedBytes.Mean()),
		fmt.Sprintf("%.3f", composedRing.Mean()),
		fmt.Sprintf("%.3f", composedLinks.Mean()),
	)
	table.AddRow(
		"monolithic overlay (T-Man/Vicinity style)",
		metrics.FormatMeanCI(metrics.Summarize(&monoRounds)),
		fmt.Sprintf("%.0f", monoBytes.Mean()),
		fmt.Sprintf("%.3f", monoRing.Mean()),
		fmt.Sprintf("%.3f", monoLinks.Mean()),
	)
	return &Result{Tables: []*TableResult{{
		ID:    "baseline",
		Title: "Baseline: composed runtime vs. monolithic overlay (ring of 8 rings)",
		Table: table,
		Notes: []string{
			describeScale(o, "%d nodes; blast after convergence, then %d healing rounds", nodes, healRounds),
			"the monolithic distance function cannot re-elect designated boundary nodes, so links lost to the blast stay lost",
		},
	}}}, nil
}
