package eval

import (
	"fmt"
	"strconv"

	"sosf/internal/core"
	"sosf/internal/metrics"
	"sosf/internal/scenario"
	"sosf/internal/spec"
)

// Gallery runs experiment (i): building various topologies comparable to
// those used in real-world applications, reporting how fast each composite
// converges and whether the realized system is one connected piece.
func Gallery(o Options) (*Result, error) {
	o = o.withDefaults()
	nodes := 480
	if o.Full {
		nodes = 4800
	}
	entries := GalleryEntries()
	topos := make([]*spec.Topology, len(entries))
	for gi, entry := range entries {
		topos[gi] = MustTopology(entry.DSL)
	}
	type galleryRun struct {
		rounds, accuracy float64
		connected        bool
	}
	grid, err := runGrid(o, len(entries), func(gi, run int) (galleryRun, error) {
		sys, err := core.NewSystem(core.Config{
			Topology: topos[gi],
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 300+gi, run),
			Workers:  o.RoundWorkers,
		})
		if err != nil {
			return galleryRun{}, fmt.Errorf("gallery %s: %w", entries[gi].Name, err)
		}
		tracker := core.NewTracker(sys, true)
		executed, err := sys.Run(o.MaxRounds)
		if err != nil {
			return galleryRun{}, fmt.Errorf("gallery %s: %w", entries[gi].Name, err)
		}
		final := tracker.History[len(tracker.History)-1]
		g := sys.Oracle().RealizedGraph()
		return galleryRun{
			rounds:    float64(executed),
			accuracy:  final.Fraction[core.SubElementary],
			connected: g.ConnectedOver(sys.Engine().AliveSlots()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"topology", "nodes", "components", "links",
		"rounds to converge", "final accuracy", "connected")
	for gi, entry := range entries {
		var rounds metrics.Accumulator
		var accuracy metrics.Accumulator
		connected := true
		for _, r := range grid[gi] {
			rounds.Add(r.rounds)
			accuracy.Add(r.accuracy)
			if !r.connected {
				connected = false
			}
		}
		table.AddRow(
			entry.Name,
			strconv.Itoa(nodes),
			strconv.Itoa(len(topos[gi].Components)),
			strconv.Itoa(len(topos[gi].Links)),
			metrics.FormatMeanCI(metrics.Summarize(&rounds)),
			fmt.Sprintf("%.3f", accuracy.Mean()),
			strconv.FormatBool(connected),
		)
	}
	return &Result{Tables: []*TableResult{{
		ID:    "gallery",
		Title: "Experiment (i): composite topology gallery",
		Table: table,
		Notes: []string{describeScale(o, "%d nodes per topology", nodes)},
	}}}, nil
}

// Curves runs experiment (ii): the per-round accuracy of every
// sub-procedure while a ring-of-rings self-assembles from nothing.
func Curves(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps, rounds := 800, 8, 40
	if o.Full {
		nodes, rounds = 3200, 60
	}
	topo := MustTopology(RingOfRingsDSL(comps))

	results, err := runRuns(o, func(run int) (*RunResult, error) {
		res, err := RunOnce(core.Config{
			Topology: topo,
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 400, run),
			Workers:  o.RoundWorkers,
		}, rounds, false)
		if err != nil {
			return nil, fmt.Errorf("curves run=%d: %w", run, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	perSub := make(map[core.Sub][][]float64, 5)
	for _, res := range results {
		for _, sub := range core.Subs() {
			perSub[sub] = append(perSub[sub], res.Curves[sub])
		}
	}
	series := subSeries(rounds)
	for _, sub := range core.Subs() {
		for r, s := range metrics.AggregateRuns(perSub[sub]) {
			series[sub].Append(float64(r+1), s)
		}
	}
	return &Figure{
		ID:     "curves",
		Title:  fmt.Sprintf("Exp (ii): sub-procedure accuracy over time (ring of %d rings)", comps),
		XLabel: "Round",
		YLabel: "accuracy (fraction converged)",
		Series: orderedSeries(series),
		Notes:  []string{describeScale(o, "%d nodes, %d components", nodes, comps)},
	}, nil
}

// Reconfig runs experiment (iii): the system converges as a ring of 3
// rings, then the specification is changed to 4 rings mid-run; the figure
// shows accuracy dipping and re-converging, and the table reports the
// re-convergence time.
func Reconfig(o Options) (*Result, error) {
	o = o.withDefaults()
	nodes := 600
	if o.Full {
		nodes = 4800
	}
	const switchRound = 40
	phase2 := o.MaxRounds

	before := MustTopology(RingOfRingsDSL(3))
	after := MustTopology(RingOfRingsDSL(4))
	type reconfigRun struct {
		elem, conn  []float64
		reconverged bool
		reconvAt    float64
	}
	// The switch is a declarative one-event timeline; the tracker is
	// registered first so round switchRound is still measured pre-switch,
	// exactly like the old imperative driver.
	timeline := scenario.New([]spec.ScenarioEvent{{
		From: switchRound, To: switchRound,
		Kind:        spec.ScenReconfigure,
		Reconfigure: after,
	}})
	results, err := runRuns(o, func(run int) (reconfigRun, error) {
		sys, err := core.NewSystem(core.Config{
			Topology: before,
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 500, run),
			Workers:  o.RoundWorkers,
		})
		if err != nil {
			return reconfigRun{}, fmt.Errorf("reconfig run=%d: %w", run, err)
		}
		tracker := core.NewTracker(sys, false)
		bound, err := timeline.Bind(sys)
		if err != nil {
			return reconfigRun{}, fmt.Errorf("reconfig run=%d: %w", run, err)
		}
		if _, err := sys.Run(switchRound); err != nil {
			return reconfigRun{}, err
		}
		if err := bound.Err(); err != nil {
			return reconfigRun{}, err
		}
		// Re-convergence is measured from the switch; reset the marks but
		// keep accumulating the full curves.
		preHistory := append([]core.Metrics(nil), tracker.History...)
		tracker.Reset()
		tracker.StopWhenDone = true
		if _, err := sys.Run(phase2); err != nil {
			return reconfigRun{}, err
		}
		fullHistory := append(preHistory, tracker.History...)

		out := reconfigRun{
			elem: make([]float64, 0, len(fullHistory)),
			conn: make([]float64, 0, len(fullHistory)),
		}
		for _, m := range fullHistory {
			out.elem = append(out.elem, m.Fraction[core.SubElementary])
			out.conn = append(out.conn, m.Fraction[core.SubPortConnect])
		}
		last := tracker.History[len(tracker.History)-1]
		out.reconverged = last.AllConverged()
		out.reconvAt = float64(len(tracker.History))
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	elems := make([][]float64, 0, o.Runs)
	conns := make([][]float64, 0, o.Runs)
	var reconv metrics.Accumulator
	never := 0
	for _, r := range results {
		elems = append(elems, r.elem)
		conns = append(conns, r.conn)
		if r.reconverged {
			reconv.Add(r.reconvAt)
		} else {
			never++
		}
	}

	elemSeries := &metrics.Series{Name: "Elementary Topology"}
	for r, s := range metrics.AggregateRuns(elems) {
		elemSeries.Append(float64(r+1), s)
	}
	connSeries := &metrics.Series{Name: "Port Connection"}
	for r, s := range metrics.AggregateRuns(conns) {
		connSeries.Append(float64(r+1), s)
	}
	fig := &Figure{
		ID:     "reconfig",
		Title:  "Exp (iii): live reconfiguration, 3 rings -> 4 rings",
		XLabel: "Round",
		YLabel: "accuracy (fraction converged)",
		Series: []*metrics.Series{elemSeries, connSeries},
		Notes: []string{
			describeScale(o, "%d nodes; topology switched at round %d", nodes, switchRound),
		},
	}
	table := metrics.NewTable("metric", "value")
	table.AddRow("rounds to re-converge after switch", metrics.FormatMeanCI(metrics.Summarize(&reconv)))
	table.AddRow("runs that failed to re-converge", strconv.Itoa(never))
	return &Result{
		Figures: []*Figure{fig},
		Tables: []*TableResult{{
			ID:    "reconfig-summary",
			Title: "Experiment (iii): re-convergence summary",
			Table: table,
		}},
	}, nil
}

// Churn measures steady-state accuracy under continuous node churn, an
// extension beyond the paper's static runs (its protocols are built for
// exactly this, per the self-organizing overlay literature it builds on).
func Churn(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps, warm, window := 600, 4, 40, 30
	if o.Full {
		nodes = 4800
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	rates := []float64{0.001, 0.005, 0.01, 0.02, 0.05}

	// Continuous churn is a one-event scenario window covering the whole
	// run (From 1 mirrors the legacy ChurnObserver, which first fired
	// after round 1).
	timelines := make([]*scenario.Timeline, len(rates))
	for pi, rate := range rates {
		timelines[pi] = scenario.New([]spec.ScenarioEvent{{
			From: 1, To: warm + window,
			Kind:     spec.ScenChurn,
			Fraction: rate,
		}})
	}
	type churnRun struct {
		e, u, p []float64
	}
	grid, err := runGrid(o, len(rates), func(pi, run int) (churnRun, error) {
		sys, err := core.NewSystem(core.Config{
			Topology: topo,
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 600+pi, run),
			Workers:  o.RoundWorkers,
		})
		if err != nil {
			return churnRun{}, fmt.Errorf("churn rate=%f run=%d: %w", rates[pi], run, err)
		}
		if _, err := timelines[pi].Bind(sys); err != nil {
			return churnRun{}, fmt.Errorf("churn rate=%f run=%d: %w", rates[pi], run, err)
		}
		tracker := core.NewTracker(sys, false)
		if _, err := sys.Run(warm + window); err != nil {
			return churnRun{}, err
		}
		var out churnRun
		for _, m := range tracker.History[warm:] {
			out.e = append(out.e, m.Fraction[core.SubElementary])
			out.u = append(out.u, m.Fraction[core.SubUO1])
			out.p = append(out.p, m.Fraction[core.SubPortSelect])
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	elem := &metrics.Series{Name: "Elementary Topology"}
	uo1 := &metrics.Series{Name: "Same-component (UO1)"}
	ports := &metrics.Series{Name: "Port Selection"}
	for pi, rate := range rates {
		var accE, accU, accP metrics.Accumulator
		for _, r := range grid[pi] {
			for i := range r.e {
				accE.Add(r.e[i])
				accU.Add(r.u[i])
				accP.Add(r.p[i])
			}
		}
		x := rate * 100
		elem.Append(x, metrics.Summarize(&accE))
		uo1.Append(x, metrics.Summarize(&accU))
		ports.Append(x, metrics.Summarize(&accP))
	}
	return &Figure{
		ID:     "churn",
		Title:  "Extension: steady-state accuracy under continuous churn",
		XLabel: "churn (% of nodes replaced per round)",
		YLabel: "mean accuracy",
		Series: []*metrics.Series{elem, uo1, ports},
		Notes: []string{
			describeScale(o, "%d nodes, %d components; accuracy averaged over rounds %d..%d",
				nodes, comps, warm, warm+window),
		},
	}, nil
}

// Catastrophe measures recovery from massive simultaneous failures (the
// paper cites Polystyrene [4]): after convergence, a fraction of all nodes
// is killed at once; the table reports the shape accuracy right after the
// blast, the self-healed accuracy, and the rounds to heal.
func Catastrophe(o Options) (*Result, error) {
	o = o.withDefaults()
	nodes, comps := 600, 4
	if o.Full {
		nodes = 4800
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	fractions := []float64{0.1, 0.3, 0.5, 0.7}

	type catastropheRun struct {
		after, healed, healRounds float64
	}
	grid, err := runGrid(o, len(fractions), func(pi, run int) (catastropheRun, error) {
		f := fractions[pi]
		sys, err := core.NewSystem(core.Config{
			Topology: topo,
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 700+pi, run),
			Workers:  o.RoundWorkers,
		})
		if err != nil {
			return catastropheRun{}, fmt.Errorf("catastrophe f=%f run=%d: %w", f, run, err)
		}
		core.NewTracker(sys, true)
		if _, err := sys.Run(o.MaxRounds); err != nil {
			return catastropheRun{}, err
		}
		sys.Kill(f)
		out := catastropheRun{
			after: sys.Oracle().Measure().Fraction[core.SubElementary],
		}
		recovered := o.MaxRounds
		for r := 0; r < o.MaxRounds; r++ {
			if _, err := sys.Run(1); err != nil {
				return catastropheRun{}, err
			}
			if sys.Oracle().Measure().Fraction[core.SubElementary] >= 0.95 {
				recovered = r + 1
				break
			}
		}
		out.healRounds = float64(recovered)
		out.healed = sys.Oracle().Measure().Fraction[core.SubElementary]
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable(
		"killed", "accuracy after blast", "self-healed accuracy", "rounds to heal >= 0.95")
	for pi, f := range fractions {
		var after, healed, healRounds metrics.Accumulator
		for _, r := range grid[pi] {
			after.Add(r.after)
			healed.Add(r.healed)
			healRounds.Add(r.healRounds)
		}
		table.AddRow(
			fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%.3f", after.Mean()),
			fmt.Sprintf("%.3f", healed.Mean()),
			metrics.FormatMeanCI(metrics.Summarize(&healRounds)),
		)
	}
	return &Result{Tables: []*TableResult{{
		ID:    "catastrophe",
		Title: "Extension: recovery from catastrophic failures",
		Table: table,
		Notes: []string{
			describeScale(o, "%d nodes, %d components; blast after full convergence", nodes, comps),
			"healing here is pure self-organization; a reconfiguration epoch restores the exact shape",
		},
	}}}, nil
}
