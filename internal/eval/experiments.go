package eval

import (
	"fmt"
	"strconv"

	"sosf/internal/core"
	"sosf/internal/metrics"
)

// Gallery runs experiment (i): building various topologies comparable to
// those used in real-world applications, reporting how fast each composite
// converges and whether the realized system is one connected piece.
func Gallery(o Options) (*Result, error) {
	o = o.withDefaults()
	nodes := 480
	if o.Full {
		nodes = 4800
	}
	table := metrics.NewTable(
		"topology", "nodes", "components", "links",
		"rounds to converge", "final accuracy", "connected")
	for gi, entry := range GalleryEntries() {
		topo := MustTopology(entry.DSL)
		var rounds metrics.Accumulator
		var accuracy metrics.Accumulator
		connected := true
		for run := 0; run < o.Runs; run++ {
			sys, err := core.NewSystem(core.Config{
				Topology: topo,
				Nodes:    nodes,
				Seed:     seedFor(o.Seed, 300+gi, run),
			})
			if err != nil {
				return nil, fmt.Errorf("gallery %s: %w", entry.Name, err)
			}
			tracker := core.NewTracker(sys, true)
			executed, err := sys.Run(o.MaxRounds)
			if err != nil {
				return nil, fmt.Errorf("gallery %s: %w", entry.Name, err)
			}
			final := tracker.History[len(tracker.History)-1]
			rounds.Add(float64(executed))
			accuracy.Add(final.Fraction[core.SubElementary])
			g := sys.Oracle().RealizedGraph()
			if !g.ConnectedOver(sys.Engine().AliveSlots()) {
				connected = false
			}
		}
		table.AddRow(
			entry.Name,
			strconv.Itoa(nodes),
			strconv.Itoa(len(topo.Components)),
			strconv.Itoa(len(topo.Links)),
			metrics.FormatMeanCI(metrics.Summarize(&rounds)),
			fmt.Sprintf("%.3f", accuracy.Mean()),
			strconv.FormatBool(connected),
		)
	}
	return &Result{Tables: []*TableResult{{
		ID:    "gallery",
		Title: "Experiment (i): composite topology gallery",
		Table: table,
		Notes: []string{describeScale(o, "%d nodes per topology", nodes)},
	}}}, nil
}

// Curves runs experiment (ii): the per-round accuracy of every
// sub-procedure while a ring-of-rings self-assembles from nothing.
func Curves(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps, rounds := 800, 8, 40
	if o.Full {
		nodes, rounds = 3200, 60
	}
	topo := MustTopology(RingOfRingsDSL(comps))

	perSub := make(map[core.Sub][][]float64, 5)
	for run := 0; run < o.Runs; run++ {
		res, err := RunOnce(core.Config{
			Topology: topo,
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 400, run),
		}, rounds, false)
		if err != nil {
			return nil, fmt.Errorf("curves run=%d: %w", run, err)
		}
		for _, sub := range core.Subs() {
			perSub[sub] = append(perSub[sub], res.Curves[sub])
		}
	}
	series := subSeries()
	for _, sub := range core.Subs() {
		for r, s := range metrics.AggregateRuns(perSub[sub]) {
			series[sub].Append(float64(r+1), s)
		}
	}
	return &Figure{
		ID:     "curves",
		Title:  fmt.Sprintf("Exp (ii): sub-procedure accuracy over time (ring of %d rings)", comps),
		XLabel: "Round",
		YLabel: "accuracy (fraction converged)",
		Series: orderedSeries(series),
		Notes:  []string{describeScale(o, "%d nodes, %d components", nodes, comps)},
	}, nil
}

// Reconfig runs experiment (iii): the system converges as a ring of 3
// rings, then the specification is changed to 4 rings mid-run; the figure
// shows accuracy dipping and re-converging, and the table reports the
// re-convergence time.
func Reconfig(o Options) (*Result, error) {
	o = o.withDefaults()
	nodes := 600
	if o.Full {
		nodes = 4800
	}
	const switchRound = 40
	phase2 := o.MaxRounds

	elems := make([][]float64, 0, o.Runs)
	conns := make([][]float64, 0, o.Runs)
	var reconv metrics.Accumulator
	never := 0
	for run := 0; run < o.Runs; run++ {
		sys, err := core.NewSystem(core.Config{
			Topology: MustTopology(RingOfRingsDSL(3)),
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 500, run),
		})
		if err != nil {
			return nil, fmt.Errorf("reconfig run=%d: %w", run, err)
		}
		tracker := core.NewTracker(sys, false)
		if _, err := sys.Run(switchRound); err != nil {
			return nil, err
		}
		if err := sys.Reconfigure(MustTopology(RingOfRingsDSL(4))); err != nil {
			return nil, err
		}
		// Re-convergence is measured from the switch; reset the marks but
		// keep accumulating the full curves.
		preHistory := append([]core.Metrics(nil), tracker.History...)
		tracker.Reset()
		tracker.StopWhenDone = true
		if _, err := sys.Run(phase2); err != nil {
			return nil, err
		}
		fullHistory := append(preHistory, tracker.History...)

		elem := make([]float64, 0, len(fullHistory))
		conn := make([]float64, 0, len(fullHistory))
		for _, m := range fullHistory {
			elem = append(elem, m.Fraction[core.SubElementary])
			conn = append(conn, m.Fraction[core.SubPortConnect])
		}
		elems = append(elems, elem)
		conns = append(conns, conn)

		last := tracker.History[len(tracker.History)-1]
		if last.AllConverged() {
			reconv.Add(float64(len(tracker.History)))
		} else {
			never++
		}
	}

	elemSeries := &metrics.Series{Name: "Elementary Topology"}
	for r, s := range metrics.AggregateRuns(elems) {
		elemSeries.Append(float64(r+1), s)
	}
	connSeries := &metrics.Series{Name: "Port Connection"}
	for r, s := range metrics.AggregateRuns(conns) {
		connSeries.Append(float64(r+1), s)
	}
	fig := &Figure{
		ID:     "reconfig",
		Title:  "Exp (iii): live reconfiguration, 3 rings -> 4 rings",
		XLabel: "Round",
		YLabel: "accuracy (fraction converged)",
		Series: []*metrics.Series{elemSeries, connSeries},
		Notes: []string{
			describeScale(o, "%d nodes; topology switched at round %d", nodes, switchRound),
		},
	}
	table := metrics.NewTable("metric", "value")
	table.AddRow("rounds to re-converge after switch", metrics.FormatMeanCI(metrics.Summarize(&reconv)))
	table.AddRow("runs that failed to re-converge", strconv.Itoa(never))
	return &Result{
		Figures: []*Figure{fig},
		Tables: []*TableResult{{
			ID:    "reconfig-summary",
			Title: "Experiment (iii): re-convergence summary",
			Table: table,
		}},
	}, nil
}

// Churn measures steady-state accuracy under continuous node churn, an
// extension beyond the paper's static runs (its protocols are built for
// exactly this, per the self-organizing overlay literature it builds on).
func Churn(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps, warm, window := 600, 4, 40, 30
	if o.Full {
		nodes = 4800
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	rates := []float64{0.001, 0.005, 0.01, 0.02, 0.05}

	elem := &metrics.Series{Name: "Elementary Topology"}
	uo1 := &metrics.Series{Name: "Same-component (UO1)"}
	ports := &metrics.Series{Name: "Port Selection"}
	for pi, rate := range rates {
		var accE, accU, accP metrics.Accumulator
		for run := 0; run < o.Runs; run++ {
			sys, err := core.NewSystem(core.Config{
				Topology: topo,
				Nodes:    nodes,
				Seed:     seedFor(o.Seed, 600+pi, run),
			})
			if err != nil {
				return nil, fmt.Errorf("churn rate=%f run=%d: %w", rate, run, err)
			}
			sys.Engine().Observe(sys.ChurnObserver(rate, 0, 0))
			tracker := core.NewTracker(sys, false)
			if _, err := sys.Run(warm + window); err != nil {
				return nil, err
			}
			for _, m := range tracker.History[warm:] {
				accE.Add(m.Fraction[core.SubElementary])
				accU.Add(m.Fraction[core.SubUO1])
				accP.Add(m.Fraction[core.SubPortSelect])
			}
		}
		x := rate * 100
		elem.Append(x, metrics.Summarize(&accE))
		uo1.Append(x, metrics.Summarize(&accU))
		ports.Append(x, metrics.Summarize(&accP))
	}
	return &Figure{
		ID:     "churn",
		Title:  "Extension: steady-state accuracy under continuous churn",
		XLabel: "churn (% of nodes replaced per round)",
		YLabel: "mean accuracy",
		Series: []*metrics.Series{elem, uo1, ports},
		Notes: []string{
			describeScale(o, "%d nodes, %d components; accuracy averaged over rounds %d..%d",
				nodes, comps, warm, warm+window),
		},
	}, nil
}

// Catastrophe measures recovery from massive simultaneous failures (the
// paper cites Polystyrene [4]): after convergence, a fraction of all nodes
// is killed at once; the table reports the shape accuracy right after the
// blast, the self-healed accuracy, and the rounds to heal.
func Catastrophe(o Options) (*Result, error) {
	o = o.withDefaults()
	nodes, comps := 600, 4
	if o.Full {
		nodes = 4800
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	fractions := []float64{0.1, 0.3, 0.5, 0.7}

	table := metrics.NewTable(
		"killed", "accuracy after blast", "self-healed accuracy", "rounds to heal >= 0.95")
	for pi, f := range fractions {
		var after, healed, healRounds metrics.Accumulator
		for run := 0; run < o.Runs; run++ {
			sys, err := core.NewSystem(core.Config{
				Topology: topo,
				Nodes:    nodes,
				Seed:     seedFor(o.Seed, 700+pi, run),
			})
			if err != nil {
				return nil, fmt.Errorf("catastrophe f=%f run=%d: %w", f, run, err)
			}
			core.NewTracker(sys, true)
			if _, err := sys.Run(o.MaxRounds); err != nil {
				return nil, err
			}
			sys.Kill(f)
			after.Add(sys.Oracle().Measure().Fraction[core.SubElementary])
			recovered := o.MaxRounds
			for r := 0; r < o.MaxRounds; r++ {
				if _, err := sys.Run(1); err != nil {
					return nil, err
				}
				if sys.Oracle().Measure().Fraction[core.SubElementary] >= 0.95 {
					recovered = r + 1
					break
				}
			}
			healRounds.Add(float64(recovered))
			healed.Add(sys.Oracle().Measure().Fraction[core.SubElementary])
		}
		table.AddRow(
			fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%.3f", after.Mean()),
			fmt.Sprintf("%.3f", healed.Mean()),
			metrics.FormatMeanCI(metrics.Summarize(&healRounds)),
		)
	}
	return &Result{Tables: []*TableResult{{
		ID:    "catastrophe",
		Title: "Extension: recovery from catastrophic failures",
		Table: table,
		Notes: []string{
			describeScale(o, "%d nodes, %d components; blast after full convergence", nodes, comps),
			"healing here is pure self-organization; a reconfiguration epoch restores the exact shape",
		},
	}}}, nil
}
