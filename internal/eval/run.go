package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"sosf/internal/core"
	"sosf/internal/metrics"
)

// Options scale the experiment harness.
type Options struct {
	// Runs is the number of independent repetitions per data point
	// (default 5; the paper uses 25, enabled by Full).
	Runs int
	// Seed is the base seed; run r of a driver uses Seed + r (and sweeps
	// fold their point index in).
	Seed int64
	// Full switches every driver to the paper's exact scales (25 600
	// nodes, 25 runs). Without it, drivers use laptop-friendly scales
	// that preserve every trend.
	Full bool
	// MaxRounds caps each run (default 150).
	MaxRounds int
	// RoundWorkers shards each simulation round across this many workers
	// (counter-based per-node RNG streams keep the results byte-identical
	// for every value; see sim.Engine.SetWorkers). 0 — the default — keeps
	// rounds serial: the harness already fans independent runs across
	// Parallelism goroutines, so intra-round workers pay off for single
	// large simulations, not for grids of small ones. Negative selects
	// GOMAXPROCS per round.
	RoundWorkers int
	// Parallelism bounds the worker pool that fans independent
	// (sweep point, run) simulations across goroutines. Every cell of the
	// grid owns its engine and derives its seed from (Seed, point, run)
	// exactly as in sequential mode, and drivers gather results into
	// index-addressed storage before aggregating in index order — so any
	// Parallelism value produces byte-identical figures and tables.
	// 0 (the default) means runtime.GOMAXPROCS(0); 1 is the legacy
	// sequential path.
	Parallelism int
	// CheckpointDir, when set, makes the figure-sweep drivers write a
	// snapshot of every cell's final system state into the directory
	// (<driver>-<cell>-run<r>.sosnap). A sweep then doubles as a warm-state
	// factory: any configuration's converged state can be reloaded with
	// core.RestoreSystem (or `sosbench -resume`) and continued, branched
	// into new scenarios, or re-measured — without re-simulating the
	// convergence prefix.
	CheckpointDir string
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		if o.Full {
			o.Runs = 25
		} else {
			o.Runs = 5
		}
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 150
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// runGrid executes cell(point, run) for every pair of the
// [0, points) × [0, o.Runs) grid and returns the results addressed as
// out[point][run]. With Parallelism > 1 cells are claimed from a shared
// counter by a bounded pool of workers; because each cell is a fully
// independent simulation (own engine, own seed) and results land in their
// grid slot rather than a completion-ordered append, callers that fold
// out[...] in index order produce output byte-identical to the sequential
// path. On error the pool drains without starting new cells and the error
// of the lowest-indexed failed cell is returned.
func runGrid[T any](o Options, points int, cell func(point, run int) (T, error)) ([][]T, error) {
	out := make([][]T, points)
	for p := range out {
		out[p] = make([]T, o.Runs)
	}
	total := points * o.Runs
	workers := o.Parallelism
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		// Legacy sequential mode: the historical execution order, with no
		// goroutine or scheduling overhead.
		for p := 0; p < points; p++ {
			for r := 0; r < o.Runs; r++ {
				v, err := cell(p, r)
				if err != nil {
					return nil, err
				}
				out[p][r] = v
			}
		}
		return out, nil
	}
	errs := make([]error, total)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || failed.Load() {
					return
				}
				p, r := i/o.Runs, i%o.Runs
				v, err := cell(p, r)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[p][r] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runRuns is runGrid for single-point drivers: o.Runs independent
// repetitions of one configuration.
func runRuns[T any](o Options, cell func(run int) (T, error)) ([]T, error) {
	grid, err := runGrid(o, 1, func(_, run int) (T, error) { return cell(run) })
	if err != nil {
		return nil, err
	}
	return grid[0], nil
}

// Figure is one reproduced figure: titled series over a shared x-axis,
// with rendering hints and free-form notes.
type Figure struct {
	ID     string // "fig2", "fig4", "ablation-uo2", ...
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	Series []*metrics.Series
	Notes  []string
}

// Table renders the figure's series as an aligned text table.
func (f *Figure) Table() *metrics.Table {
	return metrics.SeriesTable(f.XLabel, f.Series...)
}

// TableResult is a table-shaped experiment output.
type TableResult struct {
	ID    string
	Title string
	Table *metrics.Table
	Notes []string
}

// Result bundles everything a driver produced.
type Result struct {
	Figures []*Figure
	Tables  []*TableResult
}

// RunResult captures one simulation run for the harness.
type RunResult struct {
	// Rounds executed.
	Rounds int
	// ConvergedAt maps each sub-procedure to the first round it reached
	// accuracy 1.0, or -1 if it never did.
	ConvergedAt map[core.Sub]int
	// Curves holds the per-round accuracy of each sub-procedure.
	Curves map[core.Sub][]float64
	// BaselinePerNode and OverheadPerNode are bytes per node per round
	// for the two bandwidth classes of Figure 4.
	BaselinePerNode []float64
	OverheadPerNode []float64
	// Final is the last measured metrics snapshot.
	Final core.Metrics
}

// RunOnce builds a system from cfg and runs it for at most maxRounds,
// stopping early (if stopWhenDone) once every sub-procedure converged.
// History and meter storage are pre-sized to the round budget, so the run
// itself appends without reallocating — repeated across a sweep grid, the
// growth-chain garbage the drivers used to shed is gone.
func RunOnce(cfg core.Config, maxRounds int, stopWhenDone bool) (*RunResult, error) {
	return RunOnceCheckpoint(cfg, maxRounds, stopWhenDone, "")
}

// RunOnceCheckpoint is RunOnce plus an optional checkpoint: when snapPath
// is non-empty, the cell's final system state is written there, ready for
// core.RestoreSystem / `sosbench -resume` warm starts.
func RunOnceCheckpoint(cfg core.Config, maxRounds int, stopWhenDone bool, snapPath string) (*RunResult, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	tracker := core.NewTracker(sys, stopWhenDone)
	tracker.Reserve(maxRounds)
	sys.Engine().Meter().Reserve(maxRounds)
	rounds, err := sys.Run(maxRounds)
	if err != nil {
		return nil, err
	}
	if snapPath != "" {
		// Temp-and-rename so an interrupted sweep never leaves a partial
		// checkpoint behind under the final name.
		f, err := os.CreateTemp(filepath.Dir(snapPath), filepath.Base(snapPath)+".tmp-*")
		if err != nil {
			return nil, err
		}
		if err := sys.Snapshot(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, fmt.Errorf("checkpoint %s: %w", snapPath, err)
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return nil, err
		}
		if err := os.Rename(f.Name(), snapPath); err != nil {
			os.Remove(f.Name())
			return nil, err
		}
	}
	return collect(sys, tracker, rounds), nil
}

// checkpointPath names a sweep cell's checkpoint file, or "" when
// checkpointing is off.
func (o Options) checkpointPath(driver, cell string, run int) string {
	if o.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(o.CheckpointDir, fmt.Sprintf("%s-%s-run%d.sosnap", driver, cell, run))
}

// collect assembles a RunResult from a finished (or mid-flight) system.
func collect(sys *core.System, tracker *core.Tracker, rounds int) *RunResult {
	res := &RunResult{
		Rounds:      rounds,
		ConvergedAt: make(map[core.Sub]int, 5),
		Curves:      make(map[core.Sub][]float64, 5),
	}
	for _, sub := range core.Subs() {
		res.ConvergedAt[sub] = tracker.ConvergenceRound(sub)
		curve := make([]float64, 0, len(tracker.History))
		for _, m := range tracker.History {
			curve = append(curve, m.Fraction[sub])
		}
		res.Curves[sub] = curve
	}
	if len(tracker.History) > 0 {
		res.Final = tracker.History[len(tracker.History)-1]
	}
	n := float64(sys.Engine().AliveCount())
	if n == 0 {
		n = 1
	}
	meterRounds := sys.Engine().Meter().Rounds()
	res.BaselinePerNode = make([]float64, 0, meterRounds)
	res.OverheadPerNode = make([]float64, 0, meterRounds)
	for r := 0; r < meterRounds; r++ {
		base, over := sys.BandwidthByClass(r)
		res.BaselinePerNode = append(res.BaselinePerNode, float64(base)/n)
		res.OverheadPerNode = append(res.OverheadPerNode, float64(over)/n)
	}
	return res
}

// convergedOrCap returns the convergence round, or the cap when the run
// never converged (so aggregates stay defined; the cap is also recorded in
// figure notes by the drivers).
func convergedOrCap(r *RunResult, sub core.Sub, cap int) float64 {
	if c := r.ConvergedAt[sub]; c >= 0 {
		return float64(c)
	}
	return float64(cap)
}

// subSeries allocates one series per sub-procedure, keyed in presentation
// order, pre-sized for the given number of points.
func subSeries(points int) map[core.Sub]*metrics.Series {
	out := make(map[core.Sub]*metrics.Series, 5)
	for _, sub := range core.Subs() {
		s := &metrics.Series{Name: sub.String()}
		s.Reserve(points)
		out[sub] = s
	}
	return out
}

// orderedSeries flattens a sub-series map into presentation order.
func orderedSeries(m map[core.Sub]*metrics.Series) []*metrics.Series {
	out := make([]*metrics.Series, 0, len(m))
	for _, sub := range core.Subs() {
		out = append(out, m[sub])
	}
	return out
}

// seedFor derives a deterministic per-(point, run) seed.
func seedFor(base int64, point, run int) int64 {
	return base + int64(point)*1_000_003 + int64(run)*7919
}

// describeScale renders a scale note for figure annotations.
func describeScale(o Options, format string, args ...any) string {
	mode := "reduced scale"
	if o.Full {
		mode = "paper scale"
	}
	return fmt.Sprintf("%s; %d runs per point (%s)", fmt.Sprintf(format, args...), o.Runs, mode)
}
