// Package eval contains one driver per figure and experiment of the
// paper's evaluation (Section 4), plus the extension experiments listed in
// DESIGN.md. Every driver is deterministic given (Options.Seed, scale) and
// aggregates over Options.Runs independent runs with 90% confidence
// intervals — the paper's methodology (25 runs, 90% CIs).
//
// Because a (seed, configuration) pair fully determines a simulation run
// (see internal/sim), the (sweep point, run) grid behind every figure is
// embarrassingly parallel. Options.Parallelism bounds a worker pool that
// fans those independent engine instances across goroutines (default
// runtime.GOMAXPROCS(0); 1 selects the legacy sequential path). Per-run
// seeds are derived from (Seed, point, run) identically in both modes and
// drivers aggregate index-addressed results in index order, so figures and
// tables are byte-identical at any parallelism — only the wall clock
// changes.
package eval

import (
	"fmt"

	"sosf/internal/dsl"
	"sosf/internal/spec"
)

// RingOfRingsDSL returns the DSL source for the paper's flagship composite:
// k rings whose heads and tails are linked into one big cycle.
func RingOfRingsDSL(k int) string {
	return fmt.Sprintf(`
# %d elementary rings composed into a ring of rings.
topology ring_of_rings {
    let k = %d
    repeat i 0 k-1 {
        component seg[i] ring {
            weight 1
            port head
            port tail
        }
    }
    repeat i 0 k-1 {
        link seg[i].head seg[(i+1)%%k].tail
    }
}`, k, k)
}

// StarOfCliquesDSL returns the DSL source for a MongoDB-style sharded
// cluster: a router star whose hub set fans out to `shards` replica-set
// cliques — the paper's motivating "star of cliques" (Section 2.2).
func StarOfCliquesDSL(shards int) string {
	return fmt.Sprintf(`
# A sharded NoSQL cluster: router tier (star) + %d replica sets (cliques).
topology star_of_cliques {
    let shards = %d
    component routers star {
        param hubs 3
        weight shards
        port config
    }
    repeat i 0 shards-1 {
        component shard[i] clique {
            weight 1
            port uplink
        }
    }
    repeat i 0 shards-1 {
        link routers.config shard[i].uplink
    }
}`, shards, shards)
}

// TreeOfRingsDSL returns the DSL source for a binary tree of k rings:
// ring i hangs off ring (i-1)/2, a telco-style hierarchical backbone.
func TreeOfRingsDSL(k int) string {
	return fmt.Sprintf(`
# %d rings composed along a binary tree.
topology tree_of_rings {
    let k = %d
    repeat i 0 k-1 {
        component ring[i] ring {
            weight 1
            port up
            port left
            port right
        }
    }
    repeat i 0 (k-2)/2 {
        link ring[2*i+1].up ring[i].left
    }
    repeat i 0 (k-3)/2 {
        link ring[2*i+2].up ring[i].right
    }
}`, k, k)
}

// GridOfCliquesDSL returns the DSL source for a w×w mesh of cliques, each
// linked to its right and lower neighbor — a rack/cluster fabric shape.
func GridOfCliquesDSL(w int) string {
	return fmt.Sprintf(`
# A %dx%d mesh of cliques.
topology grid_of_cliques {
    let w = %d
    repeat i 0 w*w-1 {
        component cell[i] clique {
            weight 1
            port north
            port south
            port east
            port west
        }
    }
    repeat r 0 w-1 {
        repeat c 0 w-2 {
            link cell[r*w+c].east cell[r*w+c+1].west
        }
    }
    repeat r 0 w-2 {
        repeat c 0 w-1 {
            link cell[r*w+c].south cell[(r+1)*w+c].north
        }
    }
}`, w, w, w)
}

// MustTopology compiles a DSL source, panicking on error — for the
// harness's own canonical sources, which are covered by tests.
func MustTopology(src string) *spec.Topology {
	topo, err := dsl.ParseTopology(src)
	if err != nil {
		panic(fmt.Sprintf("eval: internal topology failed to compile: %v\n%s", err, src))
	}
	return topo
}

// GalleryEntry names one showcase topology of experiment (i).
type GalleryEntry struct {
	Name string
	DSL  string
}

// GalleryEntries returns the showcase topologies in presentation order.
func GalleryEntries() []GalleryEntry {
	return []GalleryEntry{
		{"ring-of-rings", RingOfRingsDSL(8)},
		{"star-of-cliques", StarOfCliquesDSL(6)},
		{"tree-of-rings", TreeOfRingsDSL(7)},
		{"grid-of-cliques", GridOfCliquesDSL(3)},
	}
}
