package eval

import (
	"fmt"

	"sosf/internal/core"
	"sosf/internal/metrics"
)

// AblationUO2 compares port-connection convergence with and without the
// distant-component overlay: without UO2, managers can only find remote
// components through chance encounters in the peer-sampling view, which
// degrades as components multiply — the design reason UO2 exists.
func AblationUO2(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes := 1000
	if o.Full {
		nodes = 4800
	}
	compSweep := []int{2, 5, 10, 15, 20}

	with := &metrics.Series{Name: "with UO2"}
	without := &metrics.Series{Name: "without UO2 (ablated)"}
	for pi, comps := range compSweep {
		topo := MustTopology(RingOfRingsDSL(comps))
		for variant, series := range map[int]*metrics.Series{0: with, 1: without} {
			var acc metrics.Accumulator
			for run := 0; run < o.Runs; run++ {
				res, err := RunOnce(core.Config{
					Topology:   topo,
					Nodes:      nodes,
					Seed:       seedFor(o.Seed, 800+pi, run),
					DisableUO2: variant == 1,
				}, o.MaxRounds, true)
				if err != nil {
					return nil, fmt.Errorf("ablation-uo2 comps=%d: %w", comps, err)
				}
				acc.Add(convergedOrCap(res, core.SubPortConnect, o.MaxRounds))
			}
			series.Append(float64(comps), metrics.Summarize(&acc))
		}
	}
	return &Figure{
		ID:     "ablation-uo2",
		Title:  "Ablation: port connection with vs. without UO2",
		XLabel: "# of Components",
		YLabel: "rounds until all links established",
		Series: []*metrics.Series{with, without},
		Notes: []string{
			describeScale(o, "%d nodes; ring-of-rings", nodes),
			fmt.Sprintf("runs that never converge are capped at %d rounds", o.MaxRounds),
		},
	}, nil
}

// AblationRandomness compares the full protocol against the pure-greedy
// variant (no random candidate feed, no random contacts): Vicinity's
// "pinch of randomness" is what guarantees progress out of local minima.
func AblationRandomness(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodesSweep := []int{100, 200, 400, 800}
	if o.Full {
		nodesSweep = append(nodesSweep, 1600, 3200)
	}
	const comps = 4
	topo := MustTopology(RingOfRingsDSL(comps))

	randomized := &metrics.Series{Name: "with random feed"}
	greedy := &metrics.Series{Name: "pure greedy (ablated)"}
	for pi, n := range nodesSweep {
		for variant, series := range map[int]*metrics.Series{0: randomized, 1: greedy} {
			var acc metrics.Accumulator
			for run := 0; run < o.Runs; run++ {
				res, err := RunOnce(core.Config{
					Topology:   topo,
					Nodes:      n,
					Seed:       seedFor(o.Seed, 900+pi, run),
					PureGreedy: variant == 1,
				}, o.MaxRounds, true)
				if err != nil {
					return nil, fmt.Errorf("ablation-randomness n=%d: %w", n, err)
				}
				acc.Add(convergedOrCap(res, core.SubElementary, o.MaxRounds))
			}
			series.Append(float64(n), metrics.Summarize(&acc))
		}
	}
	return &Figure{
		ID:     "ablation-randomness",
		Title:  "Ablation: elementary-shape convergence with vs. without randomness",
		XLabel: "# of Nodes",
		YLabel: "rounds until shapes converge",
		LogX:   true,
		Series: []*metrics.Series{randomized, greedy},
		Notes: []string{
			describeScale(o, "ring-of-rings, %d components", comps),
			fmt.Sprintf("runs that never converge are capped at %d rounds", o.MaxRounds),
		},
	}, nil
}

// AblationGossip sweeps the per-exchange descriptor budget: bigger gossip
// messages buy faster convergence at proportional bandwidth cost — the
// central tuning knob of every T-Man-family protocol.
func AblationGossip(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps := 800, 4
	if o.Full {
		nodes = 3200
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	sweep := []int{2, 3, 5, 8, 12}

	rounds := &metrics.Series{Name: "rounds to converge"}
	bandwidth := &metrics.Series{Name: "bytes/node/round (x100)"}
	for pi, g := range sweep {
		var accR, accB metrics.Accumulator
		for run := 0; run < o.Runs; run++ {
			res, err := RunOnce(core.Config{
				Topology:      topo,
				Nodes:         nodes,
				Seed:          seedFor(o.Seed, 1000+pi, run),
				OverlayGossip: g,
			}, o.MaxRounds, true)
			if err != nil {
				return nil, fmt.Errorf("ablation-gossip g=%d: %w", g, err)
			}
			accR.Add(convergedOrCap(res, core.SubElementary, o.MaxRounds))
			var sum float64
			for r := range res.BaselinePerNode {
				sum += res.BaselinePerNode[r] + res.OverheadPerNode[r]
			}
			if n := len(res.BaselinePerNode); n > 0 {
				accB.Add(sum / float64(n) / 100)
			}
		}
		rounds.Append(float64(g), metrics.Summarize(&accR))
		bandwidth.Append(float64(g), metrics.Summarize(&accB))
	}
	return &Figure{
		ID:     "ablation-gossip",
		Title:  "Ablation: gossip message size vs. convergence and bandwidth",
		XLabel: "descriptors per exchange",
		YLabel: "rounds / (bytes per node per round x 0.01)",
		Series: []*metrics.Series{rounds, bandwidth},
		Notes:  []string{describeScale(o, "ring-of-rings, %d nodes, %d components", nodes, comps)},
	}, nil
}

// AblationViewSize sweeps the UO1 view capacity: the same-component
// overlay must be large enough to keep each component's gossip substrate
// connected, but extra capacity mostly costs bandwidth.
func AblationViewSize(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps := 800, 4
	if o.Full {
		nodes = 3200
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	sweep := []int{3, 5, 8, 12, 16}

	elem := &metrics.Series{Name: "Elementary Topology"}
	ports := &metrics.Series{Name: "Port Selection"}
	for pi, k := range sweep {
		var accE, accP metrics.Accumulator
		for run := 0; run < o.Runs; run++ {
			res, err := RunOnce(core.Config{
				Topology:    topo,
				Nodes:       nodes,
				Seed:        seedFor(o.Seed, 1100+pi, run),
				UO1Capacity: k,
			}, o.MaxRounds, true)
			if err != nil {
				return nil, fmt.Errorf("ablation-viewsize k=%d: %w", k, err)
			}
			accE.Add(convergedOrCap(res, core.SubElementary, o.MaxRounds))
			accP.Add(convergedOrCap(res, core.SubPortSelect, o.MaxRounds))
		}
		elem.Append(float64(k), metrics.Summarize(&accE))
		ports.Append(float64(k), metrics.Summarize(&accP))
	}
	return &Figure{
		ID:     "ablation-viewsize",
		Title:  "Ablation: UO1 view capacity vs. convergence",
		XLabel: "UO1 view capacity",
		YLabel: "rounds to converge",
		Series: []*metrics.Series{elem, ports},
		Notes:  []string{describeScale(o, "ring-of-rings, %d nodes, %d components", nodes, comps)},
	}, nil
}
