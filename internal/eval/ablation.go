package eval

import (
	"fmt"

	"sosf/internal/core"
	"sosf/internal/metrics"
	"sosf/internal/spec"
)

// AblationUO2 compares port-connection convergence with and without the
// distant-component overlay: without UO2, managers can only find remote
// components through chance encounters in the peer-sampling view, which
// degrades as components multiply — the design reason UO2 exists.
func AblationUO2(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes := 1000
	if o.Full {
		nodes = 4800
	}
	compSweep := []int{2, 5, 10, 15, 20}

	topos := make([]*spec.Topology, len(compSweep))
	for pi, comps := range compSweep {
		topos[pi] = MustTopology(RingOfRingsDSL(comps))
	}
	// The grid interleaves the two variants: point 2*pi+variant, so each
	// (sweep point, variant, run) simulation is an independent cell.
	grid, err := runGrid(o, 2*len(compSweep), func(p, run int) (float64, error) {
		pi, variant := p/2, p%2
		res, err := RunOnce(core.Config{
			Topology:   topos[pi],
			Nodes:      nodes,
			Seed:       seedFor(o.Seed, 800+pi, run),
			Workers:    o.RoundWorkers,
			DisableUO2: variant == 1,
		}, o.MaxRounds, true)
		if err != nil {
			return 0, fmt.Errorf("ablation-uo2 comps=%d: %w", compSweep[pi], err)
		}
		return convergedOrCap(res, core.SubPortConnect, o.MaxRounds), nil
	})
	if err != nil {
		return nil, err
	}
	with := &metrics.Series{Name: "with UO2"}
	without := &metrics.Series{Name: "without UO2 (ablated)"}
	for pi, comps := range compSweep {
		for variant, series := range []*metrics.Series{with, without} {
			var acc metrics.Accumulator
			for _, v := range grid[2*pi+variant] {
				acc.Add(v)
			}
			series.Append(float64(comps), metrics.Summarize(&acc))
		}
	}
	return &Figure{
		ID:     "ablation-uo2",
		Title:  "Ablation: port connection with vs. without UO2",
		XLabel: "# of Components",
		YLabel: "rounds until all links established",
		Series: []*metrics.Series{with, without},
		Notes: []string{
			describeScale(o, "%d nodes; ring-of-rings", nodes),
			fmt.Sprintf("runs that never converge are capped at %d rounds", o.MaxRounds),
		},
	}, nil
}

// AblationRandomness compares the full protocol against the pure-greedy
// variant (no random candidate feed, no random contacts): Vicinity's
// "pinch of randomness" is what guarantees progress out of local minima.
func AblationRandomness(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodesSweep := []int{100, 200, 400, 800}
	if o.Full {
		nodesSweep = append(nodesSweep, 1600, 3200)
	}
	const comps = 4
	topo := MustTopology(RingOfRingsDSL(comps))

	grid, err := runGrid(o, 2*len(nodesSweep), func(p, run int) (float64, error) {
		pi, variant := p/2, p%2
		res, err := RunOnce(core.Config{
			Topology:   topo,
			Nodes:      nodesSweep[pi],
			Seed:       seedFor(o.Seed, 900+pi, run),
			Workers:    o.RoundWorkers,
			PureGreedy: variant == 1,
		}, o.MaxRounds, true)
		if err != nil {
			return 0, fmt.Errorf("ablation-randomness n=%d: %w", nodesSweep[pi], err)
		}
		return convergedOrCap(res, core.SubElementary, o.MaxRounds), nil
	})
	if err != nil {
		return nil, err
	}
	randomized := &metrics.Series{Name: "with random feed"}
	greedy := &metrics.Series{Name: "pure greedy (ablated)"}
	for pi, n := range nodesSweep {
		for variant, series := range []*metrics.Series{randomized, greedy} {
			var acc metrics.Accumulator
			for _, v := range grid[2*pi+variant] {
				acc.Add(v)
			}
			series.Append(float64(n), metrics.Summarize(&acc))
		}
	}
	return &Figure{
		ID:     "ablation-randomness",
		Title:  "Ablation: elementary-shape convergence with vs. without randomness",
		XLabel: "# of Nodes",
		YLabel: "rounds until shapes converge",
		LogX:   true,
		Series: []*metrics.Series{randomized, greedy},
		Notes: []string{
			describeScale(o, "ring-of-rings, %d components", comps),
			fmt.Sprintf("runs that never converge are capped at %d rounds", o.MaxRounds),
		},
	}, nil
}

// AblationGossip sweeps the per-exchange descriptor budget: bigger gossip
// messages buy faster convergence at proportional bandwidth cost — the
// central tuning knob of every T-Man-family protocol.
func AblationGossip(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps := 800, 4
	if o.Full {
		nodes = 3200
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	sweep := []int{2, 3, 5, 8, 12}

	grid, err := runGrid(o, len(sweep), func(pi, run int) (*RunResult, error) {
		res, err := RunOnce(core.Config{
			Topology:      topo,
			Nodes:         nodes,
			Seed:          seedFor(o.Seed, 1000+pi, run),
			Workers:       o.RoundWorkers,
			OverlayGossip: sweep[pi],
		}, o.MaxRounds, true)
		if err != nil {
			return nil, fmt.Errorf("ablation-gossip g=%d: %w", sweep[pi], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rounds := &metrics.Series{Name: "rounds to converge"}
	bandwidth := &metrics.Series{Name: "bytes/node/round (x100)"}
	for pi, g := range sweep {
		var accR, accB metrics.Accumulator
		for _, res := range grid[pi] {
			accR.Add(convergedOrCap(res, core.SubElementary, o.MaxRounds))
			var sum float64
			for r := range res.BaselinePerNode {
				sum += res.BaselinePerNode[r] + res.OverheadPerNode[r]
			}
			if n := len(res.BaselinePerNode); n > 0 {
				accB.Add(sum / float64(n) / 100)
			}
		}
		rounds.Append(float64(g), metrics.Summarize(&accR))
		bandwidth.Append(float64(g), metrics.Summarize(&accB))
	}
	return &Figure{
		ID:     "ablation-gossip",
		Title:  "Ablation: gossip message size vs. convergence and bandwidth",
		XLabel: "descriptors per exchange",
		YLabel: "rounds / (bytes per node per round x 0.01)",
		Series: []*metrics.Series{rounds, bandwidth},
		Notes:  []string{describeScale(o, "ring-of-rings, %d nodes, %d components", nodes, comps)},
	}, nil
}

// AblationViewSize sweeps the UO1 view capacity: the same-component
// overlay must be large enough to keep each component's gossip substrate
// connected, but extra capacity mostly costs bandwidth.
func AblationViewSize(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps := 800, 4
	if o.Full {
		nodes = 3200
	}
	topo := MustTopology(RingOfRingsDSL(comps))
	sweep := []int{3, 5, 8, 12, 16}

	grid, err := runGrid(o, len(sweep), func(pi, run int) (*RunResult, error) {
		res, err := RunOnce(core.Config{
			Topology:    topo,
			Nodes:       nodes,
			Seed:        seedFor(o.Seed, 1100+pi, run),
			Workers:     o.RoundWorkers,
			UO1Capacity: sweep[pi],
		}, o.MaxRounds, true)
		if err != nil {
			return nil, fmt.Errorf("ablation-viewsize k=%d: %w", sweep[pi], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	elem := &metrics.Series{Name: "Elementary Topology"}
	ports := &metrics.Series{Name: "Port Selection"}
	for pi, k := range sweep {
		var accE, accP metrics.Accumulator
		for _, res := range grid[pi] {
			accE.Add(convergedOrCap(res, core.SubElementary, o.MaxRounds))
			accP.Add(convergedOrCap(res, core.SubPortSelect, o.MaxRounds))
		}
		elem.Append(float64(k), metrics.Summarize(&accE))
		ports.Append(float64(k), metrics.Summarize(&accP))
	}
	return &Figure{
		ID:     "ablation-viewsize",
		Title:  "Ablation: UO1 view capacity vs. convergence",
		XLabel: "UO1 view capacity",
		YLabel: "rounds to converge",
		Series: []*metrics.Series{elem, ports},
		Notes:  []string{describeScale(o, "ring-of-rings, %d nodes, %d components", nodes, comps)},
	}, nil
}
