package eval

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"sosf/internal/core"
)

// seqAndPar runs the same driver twice on identical options — once with
// Parallelism 1, once with Parallelism 8 — and returns both results.
func seqAndPar[T any](t *testing.T, driver func(Options) (T, error), base Options) (seq, par T) {
	t.Helper()
	oSeq := base
	oSeq.Parallelism = 1
	seq, err := driver(oSeq)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	oPar := base
	oPar.Parallelism = 8
	par, err = driver(oPar)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	return seq, par
}

// TestParallelFiguresDeterministic is the tentpole guarantee: for a fixed
// seed, a figure produced by the legacy sequential path and by an 8-worker
// pool must be identical down to every float bit — parallelism only changes
// scheduling, never results.
func TestParallelFiguresDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweeps are slow")
	}
	drivers := []struct {
		name string
		run  func(Options) (*Figure, error)
		opts Options
	}{
		// Runs are sized per driver so every grid still has width to
		// schedule out of order without the test crawling: curves cells
		// are cheap (3 runs), fig4 cells are uniform (2 runs), churn
		// fans across its 5 rate points even with 1 run each.
		{"curves", Curves, Options{Runs: 3, Seed: 42, MaxRounds: 120}},
		{"fig4", Fig4, Options{Runs: 2, Seed: 42, MaxRounds: 120}},
		{"churn", Churn, Options{Runs: 1, Seed: 42, MaxRounds: 120}},
	}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			seq, par := seqAndPar(t, d.run, d.opts)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s: parallel output differs from sequential\nseq: %+v\npar: %+v",
					d.name, seq, par)
			}
		})
	}
}

// TestParallelSweepDeterministic covers a multi-point sweep (Fig2's
// node-count sweep is the most scheduling-sensitive driver: cells vary 32x
// in cost, so completion order differs wildly from index order).
func TestParallelSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 sweep is slow")
	}
	seq, par := seqAndPar(t, Fig2, Options{Runs: 1, Seed: 7, MaxRounds: 120})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fig2: parallel output differs from sequential\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestParallelTablesDeterministic covers a table-producing driver whose
// cells carry early-stop trackers (Gallery stops each run at convergence).
func TestParallelTablesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("gallery is slow")
	}
	seq, par := seqAndPar(t, Gallery, Options{Runs: 1, Seed: 11, MaxRounds: 120})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("gallery: parallel output differs from sequential\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestParallelEarlyStopObservers asserts that early-stop observers
// (StopWhenDone trackers) behave identically under parallelism: each
// concurrent engine owns its observer chain, so per-run round counts and
// convergence marks must match the sequential run for run.
func TestParallelEarlyStopObservers(t *testing.T) {
	o := Options{Runs: 4, Seed: 9, MaxRounds: 120}
	o = o.withDefaults()
	topo := MustTopology(RingOfRingsDSL(3))
	cell := func(run int) (*RunResult, error) {
		return RunOnce(core.Config{
			Topology: topo,
			Nodes:    200,
			Seed:     seedFor(o.Seed, 0, run),
		}, o.MaxRounds, true)
	}

	oSeq := o
	oSeq.Parallelism = 1
	seq, err := runRuns(oSeq, cell)
	if err != nil {
		t.Fatal(err)
	}
	oPar := o
	oPar.Parallelism = 8
	par, err := runRuns(oPar, cell)
	if err != nil {
		t.Fatal(err)
	}
	for run := range seq {
		if seq[run].Rounds != par[run].Rounds {
			t.Fatalf("run %d: early stop at %d rounds sequentially, %d in parallel",
				run, seq[run].Rounds, par[run].Rounds)
		}
		if !reflect.DeepEqual(seq[run].ConvergedAt, par[run].ConvergedAt) {
			t.Fatalf("run %d: convergence marks differ: %v vs %v",
				run, seq[run].ConvergedAt, par[run].ConvergedAt)
		}
		if seq[run].Rounds >= o.MaxRounds {
			t.Fatalf("run %d: never stopped early (%d rounds); test is vacuous", run, seq[run].Rounds)
		}
	}
}

// TestRunGridIndexAddressing checks the pool's core contract directly:
// every cell lands in its own grid slot regardless of worker count.
func TestRunGridIndexAddressing(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		o := Options{Runs: 7, Parallelism: workers}
		grid, err := runGrid(o, 5, func(p, r int) (string, error) {
			return fmt.Sprintf("%d/%d", p, r), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(grid) != 5 {
			t.Fatalf("workers=%d: points = %d", workers, len(grid))
		}
		for p := range grid {
			if len(grid[p]) != 7 {
				t.Fatalf("workers=%d: runs = %d", workers, len(grid[p]))
			}
			for r, v := range grid[p] {
				if want := fmt.Sprintf("%d/%d", p, r); v != want {
					t.Fatalf("workers=%d: grid[%d][%d] = %q, want %q", workers, p, r, v, want)
				}
			}
		}
	}
}

// TestRunGridError checks that a failing cell surfaces its error, stops the
// pool from starting new cells, and never panics the workers.
func TestRunGridError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	for _, workers := range []int{1, 4} {
		o := Options{Runs: 10, Parallelism: workers}
		started.Store(0)
		_, err := runGrid(o, 10, func(p, r int) (int, error) {
			started.Add(1)
			if p == 3 && r == 4 {
				return 0, boom
			}
			return p * r, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		if workers == 1 {
			// Sequential mode fails fast: cells after the failing one
			// (index 34) never start.
			if n := started.Load(); n != 35 {
				t.Fatalf("sequential started %d cells, want 35", n)
			}
		}
	}
}

// TestRunGridZeroCells covers the empty-grid edge (no points or no runs).
func TestRunGridZeroCells(t *testing.T) {
	o := Options{Runs: 3, Parallelism: 4}
	grid, err := runGrid(o, 0, func(p, r int) (int, error) {
		t.Fatal("cell called for empty grid")
		return 0, nil
	})
	if err != nil || len(grid) != 0 {
		t.Fatalf("empty grid: %v, %d points", err, len(grid))
	}
}

// TestOptionsParallelismDefault pins the documented defaulting: 0 means
// GOMAXPROCS, explicit values survive.
func TestOptionsParallelismDefault(t *testing.T) {
	if got := (Options{}).withDefaults().Parallelism; got < 1 {
		t.Fatalf("default Parallelism = %d, want >= 1", got)
	}
	if got := (Options{Parallelism: 1}).withDefaults().Parallelism; got != 1 {
		t.Fatalf("Parallelism 1 rewritten to %d", got)
	}
	if got := (Options{Parallelism: 3}).withDefaults().Parallelism; got != 3 {
		t.Fatalf("Parallelism 3 rewritten to %d", got)
	}
}
