package eval

import (
	"strings"
	"testing"
)

func TestBaselineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline comparison is slow")
	}
	res, err := Baseline(fast())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables[0].Table.String()
	if !strings.Contains(out, "composed") || !strings.Contains(out, "monolithic") {
		t.Fatalf("baseline table:\n%s", out)
	}
}
