package eval

import (
	"strings"
	"testing"

	"sosf/internal/core"
	"sosf/internal/dsl"
	"sosf/internal/metrics"
)

// fast returns harness options sized for unit tests.
func fast() Options {
	return Options{Runs: 1, Seed: 42, MaxRounds: 120}
}

func TestCanonicalTopologiesCompile(t *testing.T) {
	for _, entry := range GalleryEntries() {
		topo, err := dsl.ParseTopology(entry.DSL)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if len(topo.Components) == 0 || len(topo.Links) == 0 {
			t.Fatalf("%s: degenerate topology", entry.Name)
		}
	}
}

func TestRingOfRingsDSLShape(t *testing.T) {
	topo := MustTopology(RingOfRingsDSL(5))
	if len(topo.Components) != 5 || len(topo.Links) != 5 {
		t.Fatalf("5-ring composite: %d components, %d links",
			len(topo.Components), len(topo.Links))
	}
}

func TestTreeOfRingsLinkCount(t *testing.T) {
	topo := MustTopology(TreeOfRingsDSL(7))
	// A tree of 7 rings has 6 parent-child links.
	if len(topo.Links) != 6 {
		t.Fatalf("links = %d, want 6", len(topo.Links))
	}
}

func TestGridOfCliquesLinkCount(t *testing.T) {
	topo := MustTopology(GridOfCliquesDSL(3))
	// A 3x3 mesh has 2*3 horizontal + 2*3 vertical = 12 links.
	if len(topo.Links) != 12 {
		t.Fatalf("links = %d, want 12", len(topo.Links))
	}
	if len(topo.Components) != 9 {
		t.Fatalf("components = %d, want 9", len(topo.Components))
	}
}

func TestRunOnceConverges(t *testing.T) {
	res, err := RunOnce(core.Config{
		Topology: MustTopology(RingOfRingsDSL(3)),
		Nodes:    200,
		Seed:     7,
	}, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.AllConverged() {
		t.Fatalf("run did not converge: %+v", res.Final.Fraction)
	}
	for _, sub := range core.Subs() {
		if res.ConvergedAt[sub] < 0 {
			t.Fatalf("%s never converged", sub)
		}
		curve := res.Curves[sub]
		if len(curve) != res.Rounds {
			t.Fatalf("%s curve has %d points for %d rounds", sub, len(curve), res.Rounds)
		}
		if last := curve[len(curve)-1]; last < 1.0 {
			t.Fatalf("%s final accuracy %f", sub, last)
		}
	}
	if len(res.BaselinePerNode) != res.Rounds || len(res.OverheadPerNode) != res.Rounds {
		t.Fatal("bandwidth series length mismatch")
	}
}

// TestFig2Small drives the Figure 2 sweep with one run per point at the
// smallest scale to validate the whole pipeline; sosbench runs the real
// thing.
func TestFig2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 sweep is slow")
	}
	fig, err := Fig2(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(fig.Series))
	}
	elem := fig.Series[0]
	if elem.Name != core.SubElementary.String() {
		t.Fatalf("first series = %q", elem.Name)
	}
	if elem.Len() < 6 {
		t.Fatalf("sweep points = %d", elem.Len())
	}
	// The paper's headline trend: convergence grows slowly (log-like)
	// with node count — 32x more nodes must cost far less than 32x the
	// rounds, and the largest size must still converge.
	first, last := elem.Points[0].Mean, elem.Points[elem.Len()-1].Mean
	if last >= float64(fast().MaxRounds) {
		t.Fatalf("largest size did not converge: %f", last)
	}
	if last > first*6 {
		t.Fatalf("convergence not logarithmic-ish: %f -> %f", first, last)
	}
	if !fig.LogX {
		t.Fatal("fig2 must use a log x-axis")
	}
}

func TestFig4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 is slow")
	}
	o := fast()
	fig, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2 (baseline, overhead)", len(fig.Series))
	}
	base, over := fig.Series[0], fig.Series[1]
	if base.Len() != 20 || over.Len() != 20 {
		t.Fatalf("rounds = %d/%d, want 20", base.Len(), over.Len())
	}
	// Paper: both series are small (the figure's axis tops at 1000 bytes)
	// and of the same order of magnitude.
	for i := 0; i < base.Len(); i++ {
		if base.Points[i].Mean <= 0 || over.Points[i].Mean <= 0 {
			t.Fatalf("round %d: non-positive bandwidth", i)
		}
		if base.Points[i].Mean > 2000 || over.Points[i].Mean > 2000 {
			t.Fatalf("round %d: bandwidth out of the paper's ballpark: %f / %f",
				i, base.Points[i].Mean, over.Points[i].Mean)
		}
	}
	ratio := over.YMax() / base.YMax()
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("overhead/baseline ratio %f not same order of magnitude", ratio)
	}
}

func TestGallerySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("gallery is slow")
	}
	res, err := Gallery(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	out := res.Tables[0].Table.String()
	for _, entry := range GalleryEntries() {
		if !strings.Contains(out, entry.Name) {
			t.Fatalf("gallery table missing %s:\n%s", entry.Name, out)
		}
	}
	// Every gallery topology must assemble into one connected system.
	if strings.Contains(out, "false") {
		t.Fatalf("a gallery topology is disconnected:\n%s", out)
	}
}

func TestCurvesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("curves is slow")
	}
	fig, err := Curves(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Curves end fully converged for every sub-procedure.
	for _, s := range fig.Series {
		finalP := s.Points[s.Len()-1]
		if finalP.Mean < 0.99 {
			t.Fatalf("%s final accuracy %f", s.Name, finalP.Mean)
		}
	}
}

func TestReconfigSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("reconfig is slow")
	}
	res, err := Reconfig(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 1 || len(res.Tables) != 1 {
		t.Fatalf("unexpected result shape: %d figures, %d tables",
			len(res.Figures), len(res.Tables))
	}
	if strings.Contains(res.Tables[0].Table.String(), "failed to re-converge  1") {
		t.Fatalf("reconfiguration failed:\n%s", res.Tables[0].Table)
	}
	elem := res.Figures[0].Series[0]
	// Accuracy must dip right after the switch (round 41) and recover to
	// 1.0 by the end.
	atSwitch := elem.Points[41].Mean
	final := elem.Points[elem.Len()-1].Mean
	if atSwitch > 0.9 {
		t.Fatalf("no visible dip after reconfiguration: %f", atSwitch)
	}
	if final < 1.0 {
		t.Fatalf("did not re-converge: %f", final)
	}
}

func TestSeedForDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for p := 0; p < 20; p++ {
		for r := 0; r < 20; r++ {
			s := seedFor(1, p, r)
			if seen[s] {
				t.Fatalf("seed collision at point %d run %d", p, r)
			}
			seen[s] = true
		}
	}
}

func TestFigureTable(t *testing.T) {
	fig := &Figure{XLabel: "nodes"}
	s := &metrics.Series{Name: "Elementary Topology"}
	s.Append(100, metrics.Summary{Mean: 8, CI90: 0.4})
	fig.Series = []*metrics.Series{s}
	out := fig.Table().String()
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "8.00") {
		t.Fatalf("figure table:\n%s", out)
	}
}
