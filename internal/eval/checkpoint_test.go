package eval

import (
	"os"
	"path/filepath"
	"testing"

	"sosf/internal/core"
)

// TestRunOnceCheckpointWritesRestorableState: a sweep cell's checkpoint
// must reload into a runnable system positioned exactly where the cell
// finished — the warm-start contract behind Options.CheckpointDir and
// `sosbench -resume`.
func TestRunOnceCheckpointWritesRestorableState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.sosnap")
	cfg := core.Config{
		Topology: MustTopology(RingOfRingsDSL(3)),
		Nodes:    120,
		Seed:     11,
	}
	res, err := RunOnceCheckpoint(cfg, 40, true, path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sys, err := core.RestoreSystem(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().Round(); got != res.Rounds {
		t.Fatalf("restored round = %d, want the cell's %d", got, res.Rounds)
	}
	if got := sys.Engine().AliveCount(); got != 120 {
		t.Fatalf("restored population = %d, want 120", got)
	}
	// The restored warm state must keep simulating.
	if _, err := sys.Run(3); err != nil {
		t.Fatal(err)
	}
}

// TestFig4CheckpointDir: the figure driver writes one checkpoint per cell.
func TestFig4CheckpointDir(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 at full cell size is slow; covered by the RunOnceCheckpoint unit above")
	}
	dir := t.TempDir()
	if _, err := Fig4(Options{Runs: 1, Seed: 1, CheckpointDir: dir, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig4-*-run0.sosnap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("checkpoints = %v, want exactly one fig4 cell", matches)
	}
}
