package eval

import (
	"fmt"

	"sosf/internal/core"
	"sosf/internal/metrics"
	"sosf/internal/spec"
)

// Fig2 reproduces Figure 2: rounds-to-convergence of the five
// sub-procedures as the node count grows (log-scale sweep), for a
// ring-of-rings of 20 components.
func Fig2(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodesSweep := []int{100, 200, 400, 800, 1600, 3200}
	if o.Full {
		nodesSweep = []int{100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600}
	}
	const components = 20
	topo := MustTopology(RingOfRingsDSL(components))

	grid, err := runGrid(o, len(nodesSweep), func(pi, run int) (*RunResult, error) {
		res, err := RunOnceCheckpoint(core.Config{
			Topology: topo,
			Nodes:    nodesSweep[pi],
			Seed:     seedFor(o.Seed, pi, run),
			Workers:  o.RoundWorkers,
		}, o.MaxRounds, true, o.checkpointPath("fig2", fmt.Sprintf("n%d", nodesSweep[pi]), run))
		if err != nil {
			return nil, fmt.Errorf("fig2 n=%d run=%d: %w", nodesSweep[pi], run, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	series := subSeries(len(nodesSweep))
	for pi, n := range nodesSweep {
		accs := make(map[core.Sub]*metrics.Accumulator, 5)
		for _, sub := range core.Subs() {
			accs[sub] = &metrics.Accumulator{}
		}
		for _, res := range grid[pi] {
			for _, sub := range core.Subs() {
				accs[sub].Add(convergedOrCap(res, sub, o.MaxRounds))
			}
		}
		for _, sub := range core.Subs() {
			series[sub].Append(float64(n), metrics.Summarize(accs[sub]))
		}
	}
	return &Figure{
		ID:     "fig2",
		Title:  fmt.Sprintf("Fig 2: convergence time vs. system size (%d components)", components),
		XLabel: "# of Nodes",
		YLabel: "# of rounds to converge",
		LogX:   true,
		Series: orderedSeries(series),
		Notes: []string{
			describeScale(o, "ring-of-rings, %d components, %d..%d nodes",
				components, nodesSweep[0], nodesSweep[len(nodesSweep)-1]),
			"paper expectation: fast convergence, logarithmic growth with the number of nodes",
		},
	}, nil
}

// Fig3 reproduces Figure 3: rounds-to-convergence of the five
// sub-procedures as the number of components grows, at a fixed population.
func Fig3(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes := 3200
	if o.Full {
		nodes = 25600
	}
	compSweep := []int{1, 2, 5, 10, 15, 20}

	topos := make([]*spec.Topology, len(compSweep))
	for pi, comps := range compSweep {
		topos[pi] = MustTopology(RingOfRingsDSL(comps))
	}
	grid, err := runGrid(o, len(compSweep), func(pi, run int) (*RunResult, error) {
		res, err := RunOnceCheckpoint(core.Config{
			Topology: topos[pi],
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 100+pi, run),
			Workers:  o.RoundWorkers,
		}, o.MaxRounds, true, o.checkpointPath("fig3", fmt.Sprintf("c%d", compSweep[pi]), run))
		if err != nil {
			return nil, fmt.Errorf("fig3 comps=%d run=%d: %w", compSweep[pi], run, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	series := subSeries(len(compSweep))
	for pi, comps := range compSweep {
		accs := make(map[core.Sub]*metrics.Accumulator, 5)
		for _, sub := range core.Subs() {
			accs[sub] = &metrics.Accumulator{}
		}
		for _, res := range grid[pi] {
			for _, sub := range core.Subs() {
				accs[sub].Add(convergedOrCap(res, sub, o.MaxRounds))
			}
		}
		for _, sub := range core.Subs() {
			series[sub].Append(float64(comps), metrics.Summarize(accs[sub]))
		}
	}
	return &Figure{
		ID:     "fig3",
		Title:  fmt.Sprintf("Fig 3: convergence time vs. number of components (%d nodes)", nodes),
		XLabel: "# of Components",
		YLabel: "# of rounds to converge",
		Series: orderedSeries(series),
		Notes: []string{
			describeScale(o, "ring-of-rings, %d nodes, %d..%d components",
				nodes, compSweep[0], compSweep[len(compSweep)-1]),
			"paper expectation: slow growth with the number of components",
		},
	}, nil
}

// Fig4 reproduces Figure 4: per-round bandwidth (bytes per node) of the
// baseline class (peer sampling + shape core protocol — the cost of the
// elementary topologies alone) against the runtime-overhead class (UO1,
// UO2, port selection, port connection).
func Fig4(o Options) (*Figure, error) {
	o = o.withDefaults()
	nodes, comps, rounds := 3200, 20, 20
	if o.Full {
		nodes = 25600
	}
	topo := MustTopology(RingOfRingsDSL(comps))

	results, err := runRuns(o, func(run int) (*RunResult, error) {
		res, err := RunOnceCheckpoint(core.Config{
			Topology: topo,
			Nodes:    nodes,
			Seed:     seedFor(o.Seed, 200, run),
			Workers:  o.RoundWorkers,
		}, rounds, false, o.checkpointPath("fig4", fmt.Sprintf("n%d", nodes), run))
		if err != nil {
			return nil, fmt.Errorf("fig4 run=%d: %w", run, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	baseRuns := make([][]float64, 0, o.Runs)
	overRuns := make([][]float64, 0, o.Runs)
	for _, res := range results {
		baseRuns = append(baseRuns, res.BaselinePerNode)
		overRuns = append(overRuns, res.OverheadPerNode)
	}

	baseline := &metrics.Series{Name: "Baseline"}
	for r, s := range metrics.AggregateRuns(baseRuns) {
		baseline.Append(float64(r+1), s)
	}
	overhead := &metrics.Series{Name: "Overhead"}
	for r, s := range metrics.AggregateRuns(overRuns) {
		overhead.Append(float64(r+1), s)
	}
	return &Figure{
		ID:     "fig4",
		Title:  fmt.Sprintf("Fig 4: bandwidth, core protocol vs. runtime (%d components, %d nodes)", comps, nodes),
		XLabel: "Rounds",
		YLabel: "Bandwidth (bytes)",
		Series: []*metrics.Series{baseline, overhead},
		Notes: []string{
			describeScale(o, "ring-of-rings, %d components, %d nodes, %d rounds", comps, nodes, rounds),
			"bytes are per node per round; paper expectation: both series small (<1 KB), same pattern",
		},
	}, nil
}
