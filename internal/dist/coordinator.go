package dist

import (
	"bytes"
	"fmt"
	"os"

	"sosf"
	"sosf/internal/sim"
	"sosf/internal/snap"
)

// Config describes one distributed run. The zero value of every behavior
// field means "unset" (the DSL source's own options and the usual defaults
// apply), mirroring the serial CLI's explicit-flag forwarding.
type Config struct {
	// Source is the DSL source text; the handshake ships it to workers.
	Source string
	// Shards is the number of worker processes (each owns one contiguous
	// slot shard; the coordinator owns none).
	Shards int
	// Seed applies only when SeedSet (so seed 0 stays representable).
	Seed    int64
	SeedSet bool
	// Nodes overrides the source's population when > 0.
	Nodes int
	// Loss and Churn are forwarded as-is (0 = off).
	Loss  float64
	Churn float64
	// Healing applies only when HealingSet.
	Healing    bool
	HealingSet bool
	// Rounds is the absolute target round, applied only when RoundsSet;
	// otherwise the source's `option rounds` / DefaultRounds applies. Either
	// way the budget extends to the scenario horizon, like `sos play`.
	Rounds    int
	RoundsSet bool
	// Threads shards each process's round phases across OS threads
	// (sosf.WithWorkers), invisible in the output like everywhere else.
	Threads int
	// Events are subscribed on the coordinator's replica only — the one
	// system whose stream is observed.
	Events []func(sosf.RoundEvent)
	// SnapPath, when set, writes a checkpoint of the coordinator's replica
	// after the run.
	SnapPath string
	// ResumePath, when set, restores the run from a checkpoint before the
	// handshake and ships the blob to every worker.
	ResumePath string
}

// helloOptions maps a handshake message to the sosf options both sides
// build their replica with. One shared constructor is the determinism
// contract's foundation: a worker cannot configure its system differently
// from the coordinator, because both feed the same hello through this.
func helloOptions(h *hello, threads int) []sosf.Option {
	opts := []sosf.Option{
		sosf.WithNodes(h.Nodes),
		sosf.WithChurn(h.Churn),
		sosf.WithLoss(h.Loss),
		sosf.WithWorkers(threads),
	}
	if h.SeedSet {
		opts = append(opts, sosf.WithSeed(h.Seed))
	}
	if h.HealingSet {
		opts = append(opts, sosf.WithHealing(h.Healing))
	}
	if h.RunToEnd {
		opts = append(opts, sosf.WithRunToEnd())
	}
	return opts
}

// buildReplica constructs and (for resumed runs) restores one replica from
// a hello — the identical path on the coordinator and every worker.
func buildReplica(h *hello, threads int) (*sosf.System, error) {
	sys, err := sosf.New(h.Source, helloOptions(h, threads)...)
	if err != nil {
		return nil, err
	}
	if len(h.Snapshot) > 0 {
		if err := sys.Restore(bytes.NewReader(h.Snapshot)); err != nil {
			return nil, fmt.Errorf("dist: restore checkpoint: %w", err)
		}
	}
	return sys, nil
}

// Coordinator owns a distributed run: it builds the reference replica,
// hands each worker its shard, relays plan records at every barrier, and
// is the only process whose event stream and checkpoints are observed.
type Coordinator struct {
	cfg   Config
	hello hello // template; Shard is stamped per worker
	sys   *sosf.System
	conns []Conn
}

// NewCoordinator builds the coordinator's replica (restoring ResumePath if
// set) and resolves the run's round window. Connect workers with Run.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dist: need at least 1 shard, got %d", cfg.Shards)
	}
	h := hello{
		Seed:       cfg.Seed,
		SeedSet:    cfg.SeedSet,
		Nodes:      cfg.Nodes,
		Loss:       cfg.Loss,
		Churn:      cfg.Churn,
		Healing:    cfg.Healing,
		HealingSet: cfg.HealingSet,
		// Distributed runs are play-like: the stream only makes sense run
		// to the end, and a convergence stop would have to be coordinated.
		RunToEnd: true,
		Shards:   cfg.Shards,
		Source:   cfg.Source,
	}
	if cfg.ResumePath != "" {
		blob, err := os.ReadFile(cfg.ResumePath)
		if err != nil {
			return nil, err
		}
		h.Snapshot = blob
	}
	sys, err := buildReplica(&h, cfg.Threads)
	if err != nil {
		return nil, err
	}
	// Round window: explicit -rounds is the absolute target (resume
	// semantics), the source's budget otherwise, extended to the scenario
	// horizon so the last scheduled action always fires — play semantics.
	total := sys.RoundBudget()
	if cfg.RoundsSet {
		total = cfg.Rounds
	}
	if hz := sys.ScenarioHorizon(); hz > total {
		total = hz
	}
	h.StartRound = sys.Round()
	h.TotalRounds = total
	if total < h.StartRound {
		return nil, fmt.Errorf("dist: checkpoint is at round %d, past the rounds target %d", h.StartRound, total)
	}
	for _, fn := range cfg.Events {
		sys.Subscribe(fn)
	}
	return &Coordinator{cfg: cfg, hello: h, sys: sys}, nil
}

// System returns the coordinator's replica (for reports and snapshots).
func (c *Coordinator) System() *sosf.System { return c.sys }

// TotalRounds returns the resolved absolute target round of the run.
func (c *Coordinator) TotalRounds() int { return c.hello.TotalRounds }

// Run drives the whole run over the given worker connections, one per
// shard: handshake, round loop with one exchange per sharded protocol per
// round, and the final SnapPath checkpoint. On any error the remaining
// workers are told (best-effort fkFault) and every connection is closed, so
// a single dead peer fails the run within one barrier instead of hanging
// it. Run closes the connections in every case.
func (c *Coordinator) Run(conns []Conn) error {
	if len(conns) != c.cfg.Shards {
		return fmt.Errorf("dist: %d connections for %d shards", len(conns), c.cfg.Shards)
	}
	c.conns = conns
	abort := func(err error) error {
		for _, conn := range conns {
			sendFault(conn, err)
			conn.Close()
		}
		return err
	}
	for i, conn := range conns {
		if err := c.handshake(i, conn); err != nil {
			return abort(err)
		}
	}
	for r := c.hello.StartRound; r < c.hello.TotalRounds; r++ {
		stop, err := c.sys.DistRound(0, 0, c.exchange)
		if err != nil {
			return abort(err)
		}
		if stop {
			// The stop decision is computed by replicated observers, so
			// every worker leaves its loop at this same round on its own.
			break
		}
	}
	for _, conn := range conns {
		conn.Close()
	}
	if c.cfg.SnapPath != "" {
		if err := c.sys.WriteSnapshot(c.cfg.SnapPath); err != nil {
			return err
		}
	}
	return nil
}

// handshake sends worker i its hello and verifies the ack.
func (c *Coordinator) handshake(i int, conn Conn) error {
	h := c.hello
	h.Shard = i
	if err := snap.WriteFrame(conn, fkHello, encodeHello(&h)); err != nil {
		return fmt.Errorf("%w: shard %d/%d in handshake: %v", ErrWorkerDead, i, c.cfg.Shards, err)
	}
	kind, payload, err := snap.ReadFrame(conn, 0)
	if err != nil {
		return fmt.Errorf("%w: shard %d/%d in handshake: %v", ErrWorkerDead, i, c.cfg.Shards, err)
	}
	if kind == fkFault {
		return fmt.Errorf("shard %d/%d: %w", i, c.cfg.Shards, faultError(payload))
	}
	if kind != fkHelloAck {
		return fmt.Errorf("%w: shard %d sent frame kind %d in handshake, want ack", ErrProtocol, i, kind)
	}
	digest, shard, err := decodeAck(payload)
	if err != nil {
		return err
	}
	if digest != c.hello.digest() || shard != i {
		return fmt.Errorf("%w: shard %d acked digest %#x shard %d, want %#x shard %d",
			ErrTopologyMismatch, i, digest, shard, c.hello.digest(), i)
	}
	return nil
}

// exchange is the coordinator's side of one barrier: collect every
// worker's plan records (sequential reads — a dead worker surfaces here,
// within the barrier), broadcast the aggregate, then import all shards
// into the local replica. The coordinator's own shard is empty, so it
// encodes nothing and imports everything.
func (c *Coordinator) exchange(pi int, codec sim.PlanCodec, _ []int) error {
	round := c.sys.Round()
	n := len(c.conns)
	msgs := make([]plansMsg, n)
	for i, conn := range c.conns {
		kind, payload, err := snap.ReadFrame(conn, 0)
		if err != nil {
			return fmt.Errorf("%w: shard %d/%d at round %d barrier %d: %v", ErrWorkerDead, i, n, round, pi, err)
		}
		if kind == fkFault {
			return fmt.Errorf("shard %d/%d at round %d: %w", i, n, round, faultError(payload))
		}
		if kind != fkPlans {
			return fmt.Errorf("%w: shard %d sent frame kind %d at round %d barrier %d, want plans",
				ErrProtocol, i, kind, round, pi)
		}
		m, err := decodePlans(payload)
		if err != nil {
			return err
		}
		if m.Round != round || m.PI != pi || m.Shard != i {
			return fmt.Errorf("%w: shard %d sent plans for round %d protocol %d shard %d, want round %d protocol %d shard %d",
				ErrProtocol, i, m.Round, m.PI, m.Shard, round, pi, i)
		}
		msgs[i] = *m
	}
	agg := encodeAggregate(round, pi, msgs)
	for i, conn := range c.conns {
		if err := snap.WriteFrame(conn, fkAggregate, agg); err != nil {
			return fmt.Errorf("%w: shard %d/%d at round %d barrier %d: %v", ErrWorkerDead, i, n, round, pi, err)
		}
	}
	eng := c.sys.Engine()
	for i := range msgs {
		r := snap.NewReader(bytes.NewReader(msgs[i].Records))
		if err := codec.DecodePlans(eng, r); err != nil {
			return fmt.Errorf("dist: importing shard %d round %d protocol %d: %w", i, round, pi, err)
		}
		eng.AddPlanBytes(pi, msgs[i].Meter)
	}
	return nil
}
