package dist

import (
	"fmt"
	"net"
	"sync"

	"sosf"
)

// RunLocal runs one distributed simulation entirely inside this process:
// the coordinator on the calling goroutine and Shards workers as
// goroutines, connected by synchronous in-process pipes. This is what
// `sos dist` without -listen uses, what the equivalence tests exercise,
// and the cheapest way to validate a sharded run before spreading it
// across machines — the barrier protocol on the pipes is byte-for-byte
// the one TCP carries.
//
// It returns the coordinator's replica (events already emitted to
// cfg.Events subscribers) for reports and snapshots. A worker failure that
// the coordinator's own error does not already explain is returned wrapped.
func RunLocal(cfg Config) (*sosf.System, error) {
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	conns := make([]Conn, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		co, wk := net.Pipe()
		conns[i] = co
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			errs[i] = RunWorker(conn, cfg.Threads, "")
		}(i, wk)
	}
	runErr := c.Run(conns)
	wg.Wait()
	if runErr != nil {
		return c.System(), runErr
	}
	for i, err := range errs {
		if err != nil {
			return c.System(), fmt.Errorf("dist: worker %d/%d: %w", i, cfg.Shards, err)
		}
	}
	return c.System(), nil
}
