package dist

import (
	"fmt"
	"io"
	"net"
	"strings"
	"time"
)

// Conn is one coordinator↔worker byte stream. Frames (internal/snap) are
// the only thing written to it, so any io.ReadWriteCloser works: a TCP or
// Unix-socket connection between processes, or an in-process net.Pipe end.
type Conn = io.ReadWriteCloser

// Listener accepts worker connections on the coordinator side.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the bound address in Dial-able form (useful with ":0").
	Addr() string
}

// Transport abstracts how coordinator and workers reach each other: TCP
// across machines, Unix sockets across co-located processes, synchronous
// pipes inside one process. All three carry the identical frame protocol.
type Transport interface {
	Name() string
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// netTransport adapts the net package; network is "tcp" or "unix".
type netTransport struct{ network string }

func (t netTransport) Name() string { return t.network }

func (t netTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen(t.network, addr)
	if err != nil {
		return nil, err
	}
	return netListener{ln}, nil
}

func (t netTransport) Dial(addr string) (Conn, error) {
	return net.Dial(t.network, addr)
}

type netListener struct{ ln net.Listener }

func (l netListener) Accept() (Conn, error) { return l.ln.Accept() }
func (l netListener) Close() error          { return l.ln.Close() }
func (l netListener) Addr() string          { return l.ln.Addr().String() }

// TCP connects processes across machines (or loopback in CI).
func TCP() Transport { return netTransport{"tcp"} }

// Unix connects co-located processes through a filesystem socket.
func Unix() Transport { return netTransport{"unix"} }

// ChooseTransport picks the transport a CLI address implies: a path
// (anything containing a slash) is a Unix socket, everything else is TCP.
func ChooseTransport(addr string) Transport {
	if strings.Contains(addr, "/") {
		return Unix()
	}
	return TCP()
}

// Pipe is the in-process transport: Listen returns a rendezvous the same
// process Dials, each match yielding the two ends of a synchronous
// net.Pipe. The strict write-then-read ordering of the barrier protocol
// keeps the unbuffered pipe deadlock-free.
func Pipe() Transport { return &pipeTransport{accept: make(chan Conn)} }

type pipeTransport struct{ accept chan Conn }

func (t *pipeTransport) Name() string { return "pipe" }

func (t *pipeTransport) Listen(string) (Listener, error) { return pipeListener{t.accept}, nil }

func (t *pipeTransport) Dial(string) (Conn, error) {
	a, b := net.Pipe()
	t.accept <- a
	return b, nil
}

type pipeListener struct{ accept chan Conn }

func (l pipeListener) Accept() (Conn, error) { return <-l.accept, nil }
func (l pipeListener) Close() error          { return nil }
func (l pipeListener) Addr() string          { return "pipe" }

// DialRetry dials until the coordinator's listener is up or the timeout
// elapses — workers launched alongside the coordinator (CI backgrounds
// them) must not lose the race to its Listen call.
func DialRetry(t Transport, addr string, timeout time.Duration) (Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := t.Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: dial %s %s: %w", t.Name(), addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
