package dist

import (
	"bytes"
	"fmt"

	"sosf"
	"sosf/internal/sim"
	"sosf/internal/snap"
)

// shardRange is worker k's contiguous slot shard out of n over the current
// slot-space size: [k·size/n, (k+1)·size/n). Recomputed from the replicated
// size every round, so the partition rebalances under churn and joins with
// no coordination.
func shardRange(size, k, n int) (lo, hi int) {
	return k * size / n, (k + 1) * size / n
}

// workerRun is one worker's state: its replica, its connection to the
// coordinator, and the hello that configured both.
type workerRun struct {
	conn Conn
	sys  *sosf.System
	h    *hello
}

// RunWorker executes one worker over an established coordinator
// connection: handshake, replica build (and restore, for resumed runs),
// then the round loop planning this worker's shard. localSource, when
// non-empty, is the DSL source the operator launched the worker with; it
// must match the run's or the handshake fails with ErrTopologyMismatch
// (the empty string trusts the coordinator's source outright). Threads
// shards this process's phases across OS threads, invisible in the output.
// RunWorker closes the connection in every case; on a local failure it
// best-effort reports the cause to the coordinator first, so the run fails
// with a named error on both ends.
func RunWorker(conn Conn, threads int, localSource string) error {
	defer conn.Close()
	w, err := workerHandshake(conn, threads, localSource)
	if err != nil {
		sendFault(conn, err)
		return err
	}
	n, k := w.h.Shards, w.h.Shard
	for r := w.h.StartRound; r < w.h.TotalRounds; r++ {
		lo, hi := shardRange(w.sys.Size(), k, n)
		stop, err := w.sys.DistRound(lo, hi, w.exchange)
		if err != nil {
			sendFault(conn, err)
			return err
		}
		if stop {
			break
		}
	}
	return nil
}

// workerHandshake reads the hello, verifies it, builds the replica, and
// acks.
func workerHandshake(conn Conn, threads int, localSource string) (*workerRun, error) {
	kind, payload, err := snap.ReadFrame(conn, 0)
	if err != nil {
		return nil, fmt.Errorf("dist: reading hello: %w", err)
	}
	if kind == fkFault {
		return nil, faultError(payload)
	}
	if kind != fkHello {
		return nil, fmt.Errorf("%w: opening frame kind %d, want hello", ErrProtocol, kind)
	}
	h, digest, err := decodeHello(payload)
	if err != nil {
		return nil, err
	}
	if got := h.digest(); got != digest {
		return nil, fmt.Errorf("%w: hello digest %#x, recomputed %#x", ErrTopologyMismatch, digest, got)
	}
	if localSource != "" && localSource != h.Source {
		local := *h
		local.Source = localSource
		return nil, fmt.Errorf("%w: local file digest %#x, coordinator runs %#x",
			ErrTopologyMismatch, local.digest(), digest)
	}
	if h.Shard < 0 || h.Shards < 1 || h.Shard >= h.Shards {
		return nil, fmt.Errorf("%w: hello assigns shard %d/%d", ErrProtocol, h.Shard, h.Shards)
	}
	sys, err := buildReplica(h, threads)
	if err != nil {
		return nil, err
	}
	if sys.Round() != h.StartRound {
		return nil, fmt.Errorf("%w: replica starts at round %d, hello says %d",
			ErrProtocol, sys.Round(), h.StartRound)
	}
	if err := snap.WriteFrame(conn, fkHelloAck, encodeAck(digest, h.Shard)); err != nil {
		return nil, fmt.Errorf("dist: sending ack: %w", err)
	}
	return &workerRun{conn: conn, sys: sys, h: h}, nil
}

// exchange is the worker's side of one barrier: encode and send the local
// shard's plan records with their meter delta, await the coordinator's
// aggregate, and import every other shard's records into the replica.
func (w *workerRun) exchange(pi int, codec sim.PlanCodec, shard []int) error {
	eng := w.sys.Engine()
	round := w.sys.Round()
	var buf bytes.Buffer
	sw := snap.NewWriter(&buf)
	codec.EncodePlans(sw, shard)
	if err := sw.Err(); err != nil {
		return err
	}
	m := plansMsg{Round: round, PI: pi, Shard: w.h.Shard, Records: buf.Bytes(), Meter: eng.PlanBytes(pi)}
	if err := snap.WriteFrame(w.conn, fkPlans, encodePlans(&m)); err != nil {
		return fmt.Errorf("dist: sending plans at round %d barrier %d: %w", round, pi, err)
	}
	kind, payload, err := snap.ReadFrame(w.conn, 0)
	if err != nil {
		return fmt.Errorf("dist: awaiting aggregate at round %d barrier %d: %w", round, pi, err)
	}
	if kind == fkFault {
		return faultError(payload)
	}
	if kind != fkAggregate {
		return fmt.Errorf("%w: frame kind %d at round %d barrier %d, want aggregate", ErrProtocol, kind, round, pi)
	}
	aggRound, aggPI, shards, err := decodeAggregate(payload)
	if err != nil {
		return err
	}
	if aggRound != round || aggPI != pi || len(shards) != w.h.Shards {
		return fmt.Errorf("%w: aggregate for round %d protocol %d over %d shards, want round %d protocol %d over %d",
			ErrProtocol, aggRound, aggPI, len(shards), round, pi, w.h.Shards)
	}
	for i := range shards {
		if i == w.h.Shard {
			continue
		}
		r := snap.NewReader(bytes.NewReader(shards[i].Records))
		if err := codec.DecodePlans(eng, r); err != nil {
			return fmt.Errorf("dist: importing shard %d round %d protocol %d: %w", i, round, pi, err)
		}
		eng.AddPlanBytes(pi, shards[i].Meter)
	}
	return nil
}
