package dist

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"

	"sosf/internal/snap"
)

// wireVersion is the barrier-protocol version, independent of the snapshot
// format version (which snap.Header checks underneath). Bump it for any
// change to the frame sequence or payload layouts.
const wireVersion = 1

// Frame kinds of the barrier protocol, in lifecycle order.
const (
	fkHello     = 1 // coordinator → worker: config, source, shard, snapshot
	fkHelloAck  = 2 // worker → coordinator: version + digest echo
	fkPlans     = 3 // worker → coordinator: one shard's plan records
	fkAggregate = 4 // coordinator → workers: all shards' plan records
	fkFault     = 5 // either direction: error text, run aborted
)

// Named errors of the distributed protocol; match with errors.Is. Frame
// integrity errors (snap.ErrFrameTruncated, snap.ErrFrameChecksum) bubble
// up from the frame layer unchanged.
var (
	// ErrVersionMismatch marks a handshake between incompatible builds.
	ErrVersionMismatch = errors.New("dist: protocol version mismatch")
	// ErrTopologyMismatch marks a worker whose local DSL file disagrees
	// with the run the coordinator is sharding.
	ErrTopologyMismatch = errors.New("dist: topology digest mismatch")
	// ErrWorkerDead marks a worker connection that died mid-run; the wrap
	// names the shard.
	ErrWorkerDead = errors.New("dist: worker died")
	// ErrPeerFault marks a peer that reported its own failure (fkFault)
	// before closing; the wrap carries the peer's error text.
	ErrPeerFault = errors.New("dist: peer fault")
	// ErrProtocol marks an out-of-sequence or malformed frame.
	ErrProtocol = errors.New("dist: protocol error")
)

// hello is the coordinator's opening message: everything a worker needs to
// build a replica indistinguishable from the coordinator's own — source,
// behavior configuration, shard assignment, round window, and (resumed
// runs) the checkpoint blob to restore.
type hello struct {
	Seed        int64
	SeedSet     bool
	Nodes       int
	Loss        float64
	Churn       float64
	Healing     bool
	HealingSet  bool
	RunToEnd    bool
	Shard       int
	Shards      int
	StartRound  int
	TotalRounds int
	Source      string
	Snapshot    []byte
}

// digest fingerprints the run a hello describes: the DSL source plus every
// behavior field that shapes the simulation. A worker given a local DSL
// file recomputes the digest with its own source to catch a file that
// drifted from the coordinator's; the ack echoes it so the coordinator
// verifies the worker agreed to this run and not a stale one. Shard
// assignment and the snapshot blob stay out — they vary per worker and per
// resume without changing which run this is.
func (h *hello) digest() uint64 {
	f := fnv.New64a()
	sw := snap.NewWriter(f)
	sw.String(h.Source)
	sw.I64(h.Seed)
	sw.Bool(h.SeedSet)
	sw.Int(h.Nodes)
	sw.F64(h.Loss)
	sw.F64(h.Churn)
	sw.Bool(h.Healing)
	sw.Bool(h.HealingSet)
	sw.Bool(h.RunToEnd)
	sw.Int(h.Shards)
	sw.Int(h.StartRound)
	sw.Int(h.TotalRounds)
	return f.Sum64()
}

func encodeHello(h *hello) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Header("dist-hello")
	w.U16(wireVersion)
	w.I64(h.Seed)
	w.Bool(h.SeedSet)
	w.Int(h.Nodes)
	w.F64(h.Loss)
	w.F64(h.Churn)
	w.Bool(h.Healing)
	w.Bool(h.HealingSet)
	w.Bool(h.RunToEnd)
	w.Int(h.Shard)
	w.Int(h.Shards)
	w.Int(h.StartRound)
	w.Int(h.TotalRounds)
	w.String(h.Source)
	w.U64(h.digest())
	writeBlob(w, h.Snapshot)
	return buf.Bytes()
}

// decodeHello parses a hello payload, returning the message and the digest
// the coordinator computed (for the worker's own verification).
func decodeHello(p []byte) (*hello, uint64, error) {
	r := snap.NewReader(bytes.NewReader(p))
	r.Header("dist-hello")
	if v := r.U16(); r.Err() == nil && v != wireVersion {
		return nil, 0, fmt.Errorf("%w: coordinator speaks v%d, this build v%d", ErrVersionMismatch, v, wireVersion)
	}
	h := &hello{
		Seed:        r.I64(),
		SeedSet:     r.Bool(),
		Nodes:       r.Int(),
		Loss:        r.F64(),
		Churn:       r.F64(),
		Healing:     r.Bool(),
		HealingSet:  r.Bool(),
		RunToEnd:    r.Bool(),
		Shard:       r.Int(),
		Shards:      r.Int(),
		StartRound:  r.Int(),
		TotalRounds: r.Int(),
		Source:      r.String(),
	}
	digest := r.U64()
	h.Snapshot = readBlob(r)
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	return h, digest, nil
}

func encodeAck(digest uint64, shard int) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Header("dist-ack")
	w.U16(wireVersion)
	w.U64(digest)
	w.Int(shard)
	return buf.Bytes()
}

func decodeAck(p []byte) (digest uint64, shard int, err error) {
	r := snap.NewReader(bytes.NewReader(p))
	r.Header("dist-ack")
	if v := r.U16(); r.Err() == nil && v != wireVersion {
		return 0, 0, fmt.Errorf("%w: worker speaks v%d, this build v%d", ErrVersionMismatch, v, wireVersion)
	}
	digest = r.U64()
	shard = r.Int()
	r.ExpectEOF()
	return digest, shard, r.Err()
}

// plansMsg is one worker's contribution to one barrier: the encoded plan
// records of its shard for protocol pi, plus the Plan-phase meter delta
// those plans put on the simulated wire.
type plansMsg struct {
	Round   int
	PI      int
	Shard   int
	Records []byte
	Meter   int64
}

func encodePlans(m *plansMsg) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Header("dist-plans")
	w.Int(m.Round)
	w.Int(m.PI)
	w.Int(m.Shard)
	writeBlob(w, m.Records)
	w.Varint(m.Meter)
	return buf.Bytes()
}

func decodePlans(p []byte) (*plansMsg, error) {
	r := snap.NewReader(bytes.NewReader(p))
	r.Header("dist-plans")
	m := &plansMsg{
		Round: r.Int(),
		PI:    r.Int(),
		Shard: r.Int(),
	}
	m.Records = readBlob(r)
	m.Meter = r.Varint()
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// encodeAggregate bundles every shard's (records, meter) pair for one
// barrier. Receivers skip their own shard — they planned it themselves.
func encodeAggregate(round, pi int, shards []plansMsg) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Header("dist-agg")
	w.Int(round)
	w.Int(pi)
	w.Len(len(shards))
	for i := range shards {
		writeBlob(w, shards[i].Records)
		w.Varint(shards[i].Meter)
	}
	return buf.Bytes()
}

func decodeAggregate(p []byte) (round, pi int, shards []plansMsg, err error) {
	r := snap.NewReader(bytes.NewReader(p))
	r.Header("dist-agg")
	round = r.Int()
	pi = r.Int()
	n := r.Len()
	if err := r.Err(); err != nil {
		return 0, 0, nil, err
	}
	shards = make([]plansMsg, n)
	for i := 0; i < n; i++ {
		shards[i].Records = readBlob(r)
		shards[i].Meter = r.Varint()
		if err := r.Err(); err != nil {
			return 0, 0, nil, err
		}
	}
	r.ExpectEOF()
	return round, pi, shards, r.Err()
}

// blobChunk splits large byte fields across snap's per-field sanity bound
// (64 MiB): a resumed run's snapshot blob or a huge shard's plan records
// must not be rejected by the codec that moves them.
const blobChunk = 32 << 20

// writeBlob writes an arbitrarily large byte blob as a chunk sequence.
func writeBlob(w *snap.Writer, p []byte) {
	n := (len(p) + blobChunk - 1) / blobChunk
	w.Len(n)
	for len(p) > blobChunk {
		w.Bytes(p[:blobChunk])
		p = p[blobChunk:]
	}
	if n > 0 {
		w.Bytes(p)
	}
}

// readBlob reads a writeBlob chunk sequence back into one slice.
func readBlob(r *snap.Reader) []byte {
	n := r.Len()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := r.Bytes()
	for i := 1; i < n && r.Err() == nil; i++ {
		out = append(out, r.Bytes()...)
	}
	return out
}

// faultError turns a received fkFault payload into the named error.
func faultError(payload []byte) error {
	return fmt.Errorf("%w: %s", ErrPeerFault, string(payload))
}

// sendFault best-effort reports a local failure to the peer before the
// connection closes, so the other side fails with the cause instead of a
// bare truncated read.
func sendFault(c Conn, err error) {
	_ = snap.WriteFrame(c, fkFault, []byte(err.Error()))
}
