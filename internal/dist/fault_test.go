package dist

// Fault-injection tests for the barrier protocol: every failure mode must
// surface as a named error within one barrier — never a hang. Each test
// runs its protocol exchange under faultTimeout so a regression fails the
// test instead of wedging the suite.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"sosf/internal/snap"
)

const faultTimeout = 60 * time.Second

// within fails the test unless fn returns before faultTimeout — the
// "never a hang" half of every fault contract.
func within(t *testing.T, what string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(faultTimeout):
		t.Fatalf("%s: still blocked after %v (protocol hang)", what, faultTimeout)
		return nil
	}
}

// TestWorkerRejectsVersionMismatch hand-crafts a hello from a future
// protocol version; the worker must fail with ErrVersionMismatch and the
// coordinator side must learn about it from the fault frame.
func TestWorkerRejectsVersionMismatch(t *testing.T) {
	co, wk := net.Pipe()
	go func() {
		var buf bytes.Buffer
		w := snap.NewWriter(&buf)
		w.Header("dist-hello")
		w.U16(wireVersion + 1)
		_ = snap.WriteFrame(co, fkHello, buf.Bytes())
		// Drain the worker's fault report so its write can complete.
		_, _, _ = snap.ReadFrame(co, 0)
		co.Close()
	}()
	err := within(t, "worker handshake", func() error { return RunWorker(wk, 1, "") })
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("worker error = %v, want ErrVersionMismatch", err)
	}
}

// TestWorkerRejectsTopologyMismatch launches a worker holding a local DSL
// file that differs from the run the coordinator ships.
func TestWorkerRejectsTopologyMismatch(t *testing.T) {
	c, err := NewCoordinator(Config{Source: testSource, Shards: 1, Rounds: 3, RoundsSet: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	co, wk := net.Pipe()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(wk, 1, testSource+"\n# drifted local copy\n")
	}()
	coordErr := within(t, "coordinator run", func() error { return c.Run([]Conn{co}) })
	if err := <-workerErr; !errors.Is(err, ErrTopologyMismatch) {
		t.Errorf("worker error = %v, want ErrTopologyMismatch", err)
	}
	if !errors.Is(coordErr, ErrPeerFault) {
		t.Errorf("coordinator error = %v, want ErrPeerFault carrying the worker's report", coordErr)
	}
}

// TestWorkerSurfacesTruncatedFrame cuts the connection mid-frame: header
// promising a payload that never arrives.
func TestWorkerSurfacesTruncatedFrame(t *testing.T) {
	co, wk := net.Pipe()
	go func() {
		hdr := make([]byte, 9)
		hdr[0] = fkHello
		binary.LittleEndian.PutUint32(hdr[1:5], 100) // 100 payload bytes, never sent
		co.Write(hdr)
		co.Close()
	}()
	err := within(t, "worker handshake", func() error { return RunWorker(wk, 1, "") })
	if !errors.Is(err, snap.ErrFrameTruncated) {
		t.Fatalf("worker error = %v, want snap.ErrFrameTruncated", err)
	}
}

// TestWorkerSurfacesChecksumMismatch flips one payload bit in an otherwise
// valid hello frame.
func TestWorkerSurfacesChecksumMismatch(t *testing.T) {
	h := &hello{Source: testSource, Shards: 1, TotalRounds: 3, RunToEnd: true}
	var frame bytes.Buffer
	if err := snap.WriteFrame(&frame, fkHello, encodeHello(h)); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	raw[len(raw)-1] ^= 0x40 // corrupt the payload, not the header
	co, wk := net.Pipe()
	go func() {
		co.Write(raw)
		co.Close()
	}()
	err := within(t, "worker handshake", func() error { return RunWorker(wk, 1, "") })
	if !errors.Is(err, snap.ErrFrameChecksum) {
		t.Fatalf("worker error = %v, want snap.ErrFrameChecksum", err)
	}
}

// TestCoordinatorSurvivesWorkerDeathMidRun kills one of two workers right
// after its handshake; the coordinator must name the dead shard within the
// first barrier, and the surviving worker must fail with the relayed fault
// instead of hanging.
func TestCoordinatorSurvivesWorkerDeathMidRun(t *testing.T) {
	c, err := NewCoordinator(Config{Source: testSource, Shards: 2, Rounds: 10, RoundsSet: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	co0, wk0 := net.Pipe()
	co1, wk1 := net.Pipe()
	surviving := make(chan error, 1)
	go func() { surviving <- RunWorker(wk0, 1, "") }()
	go func() {
		// Shard 1 handshakes by the book, then dies before planning.
		kind, payload, err := snap.ReadFrame(wk1, 0)
		if err != nil || kind != fkHello {
			wk1.Close()
			return
		}
		if _, digest, err := decodeHello(payload); err == nil {
			_ = snap.WriteFrame(wk1, fkHelloAck, encodeAck(digest, 1))
		}
		wk1.Close()
	}()
	coordErr := within(t, "coordinator run", func() error { return c.Run([]Conn{co0, co1}) })
	if !errors.Is(coordErr, ErrWorkerDead) {
		t.Errorf("coordinator error = %v, want ErrWorkerDead", coordErr)
	}
	if coordErr == nil || !bytes.Contains([]byte(coordErr.Error()), []byte("shard 1/2")) {
		t.Errorf("coordinator error %q does not name the dead shard", coordErr)
	}
	err = within(t, "surviving worker", func() error { return <-surviving })
	if err == nil {
		t.Error("surviving worker returned nil, want the relayed fault or a closed stream")
	}
}

// TestCoordinatorRejectsStaleAck pins the handshake's digest check: a
// worker acking a different run must be turned away.
func TestCoordinatorRejectsStaleAck(t *testing.T) {
	c, err := NewCoordinator(Config{Source: testSource, Shards: 1, Rounds: 3, RoundsSet: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	co, wk := net.Pipe()
	go func() {
		if kind, _, err := snap.ReadFrame(wk, 0); err != nil || kind != fkHello {
			wk.Close()
			return
		}
		_ = snap.WriteFrame(wk, fkHelloAck, encodeAck(0xdeadbeef, 0))
		// Drain the coordinator's fault report so its abort can finish.
		_, _, _ = snap.ReadFrame(wk, 0)
		wk.Close()
	}()
	coordErr := within(t, "coordinator handshake", func() error { return c.Run([]Conn{co}) })
	if !errors.Is(coordErr, ErrTopologyMismatch) {
		t.Fatalf("coordinator error = %v, want ErrTopologyMismatch", coordErr)
	}
}
