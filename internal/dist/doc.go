// Package dist runs one simulation sharded across processes: a coordinator
// and N workers each hold a full replica of the system and split only the
// Plan phase of the exchange-routing protocols, trading planned records at
// each protocol's Deliver barrier. The event stream and every snapshot are
// byte-identical to a serial run at any shard count — sharding, like thread
// workers, only changes the wall clock.
//
// # Topology
//
// Every process builds the identical system from the same DSL source, seed,
// and behavior configuration (the handshake ships all three, so workers
// cannot drift). Worker k owns the contiguous slot shard
//
//	[k·size/N, (k+1)·size/N)
//
// recomputed from the replicated population size at every round, so the
// partition rebalances itself under churn and joins with no messages. The
// coordinator owns the empty shard: it plans nothing, relays everything,
// and is the only process with event subscribers — which is why it is also
// the only process that needs the stream.
//
// # Barrier protocol
//
// A round crosses one barrier per sharded protocol, in the fixed protocol
// order every replica computes from the stack (Engine.ShardedProtocols).
// Per barrier, per connection, the frame sequence is strict:
//
//	worker                          coordinator
//	------                          -----------
//	Plan own shard                  Plan nothing
//	fkPlans{round,pi,shard,...} --->
//	                                collect fkPlans from workers 0..N-1
//	                                (a read error or fkFault here names
//	                                 the dead worker and aborts the run)
//	          <--- fkAggregate{round,pi, all N shards}
//	import N-1 remote shards        import all N shards
//	Deliver + Absorb (replicated)   Deliver + Absorb (replicated)
//
// The coordinator reads the workers' fkPlans frames sequentially; every
// alive worker sends its frame promptly after planning, so a dead peer
// surfaces as a truncated read within one barrier — never a hang. Each
// frame is length-prefixed and CRC-32C checksummed (internal/snap), so a
// flipped bit fails loudly instead of desynchronizing the stream.
//
// The full connection lifecycle:
//
//	CONNECTED --fkHello--> HANDSHAKING --fkHelloAck--> RUNNING
//	RUNNING   --fkPlans/fkAggregate cycles, one per barrier--> RUNNING
//	RUNNING   --round loop exhausted (replicated stop decision)--> DONE
//	any state --fkFault / read error--> FAILED (named error, run aborted)
//
// There is no end-of-run message: the stop decision (round budget,
// scenario horizon) is computed by the replicated observers, so every
// process leaves the loop at the same round on its own.
//
// # Determinism
//
// Byte-identity at any shard count falls out of the same discipline that
// makes thread sharding invisible: every in-round draw comes from a
// counter-based per-(node, round, protocol, phase) stream, so a slot plans
// the same exchange no matter which process runs it; the Deliver merge
// scans senders in ascending slot order no matter which lanes were pushed
// locally and which were imported; and the serial RNG only advances in the
// between-round observers, which every replica runs against identical
// state. Plan-phase meter deltas ride the barrier frames, so bandwidth
// accounting stays global on every replica and snapshots match bit for bit.
//
// Scenario timelines run replicated too, which means a scheduled
// `snapshot` action writes its checkpoint on every process — the same
// bytes, atomically renamed, so co-located processes overwrite each other
// harmlessly.
//
// # Checkpoint and resume
//
// The coordinator owns checkpointing: it restores a -resume file before the
// handshake and ships the blob to every worker inside fkHello, and it
// writes the -snap checkpoint after the run from its own replica. A resumed
// distributed run continues the stream byte-for-byte, at any shard count on
// either side of the cut.
package dist
