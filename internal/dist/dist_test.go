package dist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sosf"
)

// testSource is a small two-component system with a fault/loss/reconfigure
// timeline — every runtime layer and every sharded protocol gets exercised,
// and the scenario keeps the population moving so shard bounds rebalance.
const testSource = `
topology distpair {
    nodes 96

    component left ring {
        weight 1
        port head
        port tail
    }
    component right ring {
        weight 1
        port head
        port tail
    }

    link left.head right.tail
    link right.head left.tail

    scenario {
        during 8 12 loss 0.2
        at 15 kill 0.3
        at 25 reconfigure {
            component left ring {
                weight 2
                port head
                port tail
            }
            component right ring {
                weight 1
                port head
                port tail
            }
            link left.head right.tail
            link right.head left.tail
        }
    }
}
`

// serialReference steps the coordinator's replica without any exchange —
// the plain engine path every shard count must reproduce byte for byte.
func serialReference(t *testing.T, cfg Config) (stream, snapshot []byte) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Shards = 1
	cfg.Events = []func(sosf.RoundEvent){sosf.JSONLSink(&buf)}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	sys := c.System()
	if _, err := sys.Step(c.TotalRounds() - sys.Round()); err != nil {
		t.Fatalf("Step: %v", err)
	}
	return buf.Bytes(), snapshotOf(t, sys)
}

// distRun runs the config through RunLocal and captures the same outputs.
func distRun(t *testing.T, cfg Config, shards int) (stream, snapshot []byte) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Shards = shards
	cfg.Events = []func(sosf.RoundEvent){sosf.JSONLSink(&buf)}
	sys, err := RunLocal(cfg)
	if err != nil {
		t.Fatalf("RunLocal(shards=%d): %v", shards, err)
	}
	return buf.Bytes(), snapshotOf(t, sys)
}

func snapshotOf(t *testing.T, sys *sosf.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestShardEquivalence is the tentpole contract: the event stream and the
// final snapshot are byte-identical to the serial run at shards 1, 2, and
// 4, with churn keeping the slot space growing under the partition.
func TestShardEquivalence(t *testing.T) {
	cfg := Config{
		Source: testSource,
		Seed:   7, SeedSet: true,
		Churn:  0.01,
		Rounds: 40, RoundsSet: true,
		Threads: 1,
	}
	wantStream, wantSnap := serialReference(t, cfg)
	if len(wantStream) == 0 {
		t.Fatal("serial reference produced no events")
	}
	for _, shards := range []int{1, 2, 4} {
		stream, snap := distRun(t, cfg, shards)
		if !bytes.Equal(stream, wantStream) {
			t.Errorf("shards=%d: event stream diverges from serial run\nserial:\n%s\ndist:\n%s",
				shards, wantStream, stream)
		}
		if !bytes.Equal(snap, wantSnap) {
			t.Errorf("shards=%d: final snapshot diverges from serial run (%d vs %d bytes)",
				shards, len(snap), len(wantSnap))
		}
	}
}

// TestShardEquivalenceMoreShardsThanUseful pins the degenerate partitions:
// more shards than minimum shard size would suggest, including shards that
// own very few (or transiently zero) slots.
func TestShardEquivalenceManyShards(t *testing.T) {
	cfg := Config{
		Source: testSource,
		Seed:   3, SeedSet: true,
		Rounds: 12, RoundsSet: true,
		Threads: 1,
	}
	wantStream, wantSnap := serialReference(t, cfg)
	stream, snap := distRun(t, cfg, 7)
	if !bytes.Equal(stream, wantStream) {
		t.Error("shards=7: event stream diverges from serial run")
	}
	if !bytes.Equal(snap, wantSnap) {
		t.Error("shards=7: final snapshot diverges from serial run")
	}
}

// TestDistResumeEquivalence cuts one distributed run in two at a
// coordinator checkpoint: snapshot at round 20 from a 2-shard run, resume
// to round 40 at 4 shards, and require the concatenated streams to equal
// the uninterrupted serial run — resume is byte-invisible across both the
// cut and a shard-count change.
func TestDistResumeEquivalence(t *testing.T) {
	base := Config{
		Source: testSource,
		Seed:   7, SeedSet: true,
		Churn:   0.01,
		Threads: 1,
	}
	full := base
	full.Rounds, full.RoundsSet = 40, true
	wantStream, wantSnap := serialReference(t, full)

	ckpt := filepath.Join(t.TempDir(), "dist.sosnap")
	first := base
	first.Rounds, first.RoundsSet = 20, true
	first.SnapPath = ckpt
	firstStream, _ := distRun(t, first, 2)

	second := base
	second.Rounds, second.RoundsSet = 40, true
	second.ResumePath = ckpt
	secondStream, secondSnap := distRun(t, second, 4)

	combined := append(append([]byte(nil), firstStream...), secondStream...)
	if !bytes.Equal(combined, wantStream) {
		t.Errorf("snapshot/resume lap diverges from uninterrupted run\nwant:\n%s\ngot:\n%s",
			wantStream, combined)
	}
	if !bytes.Equal(secondSnap, wantSnap) {
		t.Error("final snapshot after resume diverges from uninterrupted run")
	}
}

// TestPlaydemoGolden replays the committed golden fixture through a
// 2-shard run — the in-process twin of the CI dist-equivalence gate.
func TestPlaydemoGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay is the long way around; CI runs the full gate")
	}
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "playdemo.sos"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "playdemo.events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := distRun(t, Config{Source: string(src), Threads: 1}, 2)
	if !bytes.Equal(stream, want) {
		t.Error("2-shard playdemo stream diverges from testdata/golden/playdemo.events.jsonl")
	}
}

// TestShardRange pins the partition arithmetic: contiguous, covering, and
// balanced within one slot.
func TestShardRange(t *testing.T) {
	for _, size := range []int{0, 1, 5, 96, 97, 1000} {
		for _, n := range []int{1, 2, 3, 4, 7} {
			prev := 0
			for k := 0; k < n; k++ {
				lo, hi := shardRange(size, k, n)
				if lo != prev {
					t.Fatalf("size=%d n=%d: shard %d starts at %d, want %d", size, n, k, lo, prev)
				}
				if hi < lo {
					t.Fatalf("size=%d n=%d: shard %d is [%d,%d)", size, n, k, lo, hi)
				}
				prev = hi
			}
			if prev != size {
				t.Fatalf("size=%d n=%d: shards cover [0,%d), want [0,%d)", size, n, prev, size)
			}
		}
	}
}
