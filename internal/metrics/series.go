package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one named plot line: X positions with per-X summaries (mean and
// 90% CI), matching the per-series format of the paper's figures.
type Series struct {
	Name   string
	X      []float64
	Points []Summary
}

// Append adds one (x, summary) pair.
func (s *Series) Append(x float64, p Summary) {
	s.X = append(s.X, x)
	s.Points = append(s.Points, p)
}

// Reserve pre-allocates room for at least n further points, so the next n
// Append calls do not reallocate. Drivers that know their sweep width call
// it once instead of growing the series point by point.
func (s *Series) Reserve(n int) {
	if need := len(s.X) + n; need > cap(s.X) {
		x := make([]float64, len(s.X), need)
		copy(x, s.X)
		s.X = x
	}
	if need := len(s.Points) + n; need > cap(s.Points) {
		p := make([]Summary, len(s.Points), need)
		copy(p, s.Points)
		s.Points = p
	}
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YMax returns the largest mean in the series (0 when empty).
func (s *Series) YMax() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Mean > max {
			max = p.Mean
		}
	}
	return max
}

// Table renders rows of named columns as an aligned plain-text table,
// the row format the experiment harness prints for every figure.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends a row; missing cells render empty, extra cells are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatMeanCI renders "mean ±ci" with sensible precision.
func FormatMeanCI(s Summary) string {
	return fmt.Sprintf("%.2f ±%.2f", s.Mean, s.CI90)
}

// SeriesTable renders several series sharing X positions as one table with
// an x column followed by one "mean ±ci" column per series. Series may have
// different X sets; the union is used and missing cells are blank.
func SeriesTable(xLabel string, series ...*Series) *Table {
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(series)+1)
	header = append(header, xLabel)
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := NewTable(header...)
	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, trimFloat(x))
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = FormatMeanCI(s.Points[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
