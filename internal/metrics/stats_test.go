package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %f, want 5", a.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %f, want %f", a.Variance(), 32.0/7.0)
	}
}

func TestAccumulatorEdgeCases(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.CI90() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
	a.Add(3)
	if a.Variance() != 0 || a.CI90() != 0 {
		t.Fatal("single observation has no variance or CI")
	}
}

func TestCI90KnownValue(t *testing.T) {
	// Five observations 1..5: mean 3, sd sqrt(2.5), se sqrt(0.5),
	// t(4, 0.95) = 2.1318 → CI = 2.1318 * 0.7071...
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	want := 2.1318 * math.Sqrt(2.5/5)
	if math.Abs(a.CI90()-want) > 1e-6 {
		t.Fatalf("CI90 = %f, want %f", a.CI90(), want)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		q := tQuantile90(df)
		if q > prev {
			t.Fatalf("t-quantile not non-increasing at df=%d: %f > %f", df, q, prev)
		}
		prev = q
	}
	if got := tQuantile90(0); got != 0 {
		t.Fatalf("tQuantile90(0) = %f, want 0", got)
	}
	if got := tQuantile90(1000); math.Abs(got-1.6449) > 1e-9 {
		t.Fatalf("large-df quantile = %f, want z=1.6449", got)
	}
}

// Property: the CI half-width shrinks (weakly) as identical batches of
// observations accumulate.
func TestCIShrinksWithN(t *testing.T) {
	f := func(seedRaw uint8) bool {
		base := []float64{1, 5, 2, 8, 3, float64(seedRaw)}
		var small, large Accumulator
		for _, x := range base {
			small.Add(x)
			large.Add(x)
		}
		for i := 0; i < 4; i++ {
			for _, x := range base {
				large.Add(x)
			}
		}
		return large.CI90() <= small.CI90()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is translation-equivariant and variance translation-
// invariant.
func TestTranslationProperties(t *testing.T) {
	f := func(xsRaw []int8, shiftRaw int8) bool {
		if len(xsRaw) < 2 {
			return true
		}
		shift := float64(shiftRaw)
		var a, b Accumulator
		for _, x := range xsRaw {
			a.Add(float64(x))
			b.Add(float64(x) + shift)
		}
		return math.Abs(b.Mean()-a.Mean()-shift) < 1e-9 &&
			math.Abs(b.Variance()-a.Variance()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateRuns(t *testing.T) {
	runs := [][]float64{
		{1, 2, 3},
		{3, 4, 5},
		{2, 3}, // shorter run: last point has 2 observations
	}
	sums := AggregateRuns(runs)
	if len(sums) != 3 {
		t.Fatalf("points = %d, want 3", len(sums))
	}
	if sums[0].Mean != 2 || sums[0].N != 3 {
		t.Fatalf("point 0 = %+v, want mean 2 over 3 runs", sums[0])
	}
	if sums[2].N != 2 || sums[2].Mean != 4 {
		t.Fatalf("point 2 = %+v, want mean 4 over 2 runs", sums[2])
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "uo1"
	s.Append(100, Summary{Mean: 8})
	s.Append(200, Summary{Mean: 10})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.YMax() != 10 {
		t.Fatalf("YMax = %f, want 10", s.YMax())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "rounds")
	tb.AddRow("100", "8.00 ±0.50")
	tb.AddRow("25600", "24.00 ±1.20")
	out := tb.String()
	if !strings.Contains(out, "25600") || !strings.Contains(out, "rounds") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("rule width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

func TestSeriesTableUnionOfX(t *testing.T) {
	a := &Series{Name: "a"}
	a.Append(1, Summary{Mean: 10})
	a.Append(2, Summary{Mean: 20})
	b := &Series{Name: "b"}
	b.Append(2, Summary{Mean: 200})
	b.Append(3, Summary{Mean: 300})
	out := SeriesTable("x", a, b).String()
	for _, want := range []string{"10.00", "200.00", "300.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5 (3 x-values)", len(lines))
	}
}

func TestFormatMeanCI(t *testing.T) {
	got := FormatMeanCI(Summary{Mean: 3.14159, CI90: 0.271828})
	if got != "3.14 ±0.27" {
		t.Fatalf("FormatMeanCI = %q", got)
	}
}
