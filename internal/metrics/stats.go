// Package metrics implements the statistics used by the experiment harness:
// multi-run aggregation with means and Student-t confidence intervals
// (the paper averages every measurement over 25 runs and computes 90%
// confidence intervals), plus series containers and plain-text tables.
package metrics

import "math"

// Accumulator computes running mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with < 2 observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI90 returns the half-width of the two-sided 90% confidence interval for
// the mean, using the Student-t distribution.
func (a *Accumulator) CI90() float64 {
	if a.n < 2 {
		return 0
	}
	return tQuantile90(a.n-1) * a.StdErr()
}

// tQuantile90 returns the two-sided 90% Student-t quantile (i.e. the 0.95
// one-sided quantile) for the given degrees of freedom. Exact tabulated
// values up to 30 df, then the normal approximation — the same convention
// as statistical tables.
func tQuantile90(df int) float64 {
	// t_{0.95, df} for df = 1..30.
	table := [...]float64{
		6.3138, 2.9200, 2.3534, 2.1318, 2.0150,
		1.9432, 1.8946, 1.8595, 1.8331, 1.8125,
		1.7959, 1.7823, 1.7709, 1.7613, 1.7531,
		1.7459, 1.7396, 1.7341, 1.7291, 1.7247,
		1.7207, 1.7171, 1.7139, 1.7109, 1.7081,
		1.7056, 1.7033, 1.7011, 1.6991, 1.6973,
	}
	switch {
	case df <= 0:
		return 0
	case df <= len(table):
		return table[df-1]
	default:
		return 1.6449 // z_{0.95}
	}
}

// Summary is a frozen view of an accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI90   float64
}

// Summarize freezes the accumulator into a Summary.
func Summarize(a *Accumulator) Summary {
	return Summary{N: a.N(), Mean: a.Mean(), StdDev: a.StdDev(), CI90: a.CI90()}
}

// AggregateRuns folds per-run sample vectors (runs × points) into per-point
// summaries. All runs must have the same length; shorter runs are padded
// conceptually by skipping missing points (points beyond a run's length get
// fewer observations).
func AggregateRuns(runs [][]float64) []Summary {
	points := 0
	for _, r := range runs {
		if len(r) > points {
			points = len(r)
		}
	}
	out := make([]Summary, points)
	for p := 0; p < points; p++ {
		var acc Accumulator
		for _, r := range runs {
			if p < len(r) {
				acc.Add(r[p])
			}
		}
		out[p] = Summarize(&acc)
	}
	return out
}
