package scenario

// End-to-end coverage of the full DSL path for partition/heal (and the new
// snapshot directive): a .sos source with `partition`/`heal` directives is
// parsed by internal/dsl, compiled into spec.ScenarioEvent values, and
// executed through a bound timeline against a live system — the chain the
// engine-level partition tests in workers_test.go never exercise.

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"sosf/internal/core"
	"sosf/internal/dsl"
	"sosf/internal/spec"
)

// parseScenario compiles DSL source and returns the topology.
func parseScenario(t *testing.T, src string) *spec.Topology {
	t.Helper()
	topo, err := dsl.ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// bindAndRun builds a system for topo, binds its timeline, and runs it
// round by round, recording whether the engine was partitioned after each.
func bindAndRun(t *testing.T, topo *spec.Topology, rounds int) (partitioned []bool, b *Bound) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Topology: topo, Nodes: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err = New(topo.Scenario).Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if _, err := sys.Run(1); err != nil {
			t.Fatal(err)
		}
		if err := b.Err(); err != nil {
			t.Fatal(err)
		}
		partitioned = append(partitioned, sys.Engine().Partitioned())
	}
	return partitioned, b
}

func TestDSLPartitionWindowEndToEnd(t *testing.T) {
	topo := parseScenario(t, `topology split {
	    nodes 80
	    component a ring { port p }
	    component b ring { port q }
	    link a.p b.q
	    scenario {
	        during 5 12 partition 2
	    }
	}`)
	if len(topo.Scenario) != 1 || topo.Scenario[0].Kind != spec.ScenPartition {
		t.Fatalf("compiled scenario = %+v, want one partition window", topo.Scenario)
	}
	if topo.Scenario[0].From != 5 || topo.Scenario[0].To != 12 || topo.Scenario[0].Count != 2 {
		t.Fatalf("partition window = %+v, want during 5 12 with 2 groups", topo.Scenario[0])
	}

	partitioned, _ := bindAndRun(t, topo, 20)
	for round := 1; round <= 20; round++ {
		want := round >= 5 && round < 12 // healed by the window end at 12
		if got := partitioned[round-1]; got != want {
			t.Fatalf("after round %d: partitioned = %v, want %v", round, got, want)
		}
	}
}

func TestDSLPartitionThenExplicitHealEndToEnd(t *testing.T) {
	topo := parseScenario(t, `topology splitheal {
	    nodes 80
	    component a ring { port p }
	    component b ring { port q }
	    link a.p b.q
	    scenario {
	        at 4 partition 3
	        at 9 heal
	    }
	}`)
	if len(topo.Scenario) != 2 || topo.Scenario[1].Kind != spec.ScenHeal {
		t.Fatalf("compiled scenario = %+v, want partition then heal", topo.Scenario)
	}

	partitioned, b := bindAndRun(t, topo, 15)
	for round := 1; round <= 15; round++ {
		want := round >= 4 && round < 9
		if got := partitioned[round-1]; got != want {
			t.Fatalf("after round %d: partitioned = %v, want %v", round, got, want)
		}
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDSLPartitionOverlapRejected: the spec validator must refuse a heal
// inside a partition window — DSL source included so the whole path errors.
func TestDSLPartitionOverlapRejected(t *testing.T) {
	_, err := dsl.ParseTopology(`topology bad {
	    nodes 80
	    component a ring { port p }
	    component b ring { port q }
	    link a.p b.q
	    scenario {
	        during 5 15 partition 2
	        at 10 heal
	    }
	}`)
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("err = %v, want window-conflict rejection", err)
	}
}

// TestDSLSnapshotDirectiveEndToEnd: the `snapshot` action parses, compiles,
// and fires through the bound timeline's sink.
func TestDSLSnapshotDirectiveEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.sosnap")
	topo := parseScenario(t, `topology ck {
	    nodes 80
	    component a ring { port p }
	    component b ring { port q }
	    link a.p b.q
	    scenario {
	        at 3 snapshot "`+path+`"
	    }
	}`)
	if len(topo.Scenario) != 1 || topo.Scenario[0].Kind != spec.ScenSnapshot || topo.Scenario[0].Path != path {
		t.Fatalf("compiled scenario = %+v, want one snapshot at 3", topo.Scenario)
	}

	sys, err := core.NewSystem(core.Config{Topology: topo, Nodes: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(topo.Scenario).Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	b.OnSnapshot = func(round int, p string) error {
		got = append(got, p)
		var buf bytes.Buffer
		return sys.Snapshot(&buf)
	}
	if _, err := sys.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != path {
		t.Fatalf("snapshot sink calls = %v, want exactly one with the DSL path", got)
	}
}

// TestDSLSnapshotWithoutSinkErrors: a scheduled snapshot with no sink must
// stop the run with an error, never skip silently.
func TestDSLSnapshotWithoutSinkErrors(t *testing.T) {
	topo := parseScenario(t, `topology nosink {
	    nodes 80
	    component a ring { port p }
	    component b ring { port q }
	    link a.p b.q
	    scenario {
	        at 2 snapshot "unused.sosnap"
	    }
	}`)
	sys, err := core.NewSystem(core.Config{Topology: topo, Nodes: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(topo.Scenario).Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err == nil || !strings.Contains(err.Error(), "no snapshot sink") {
		t.Fatalf("err = %v, want no-sink error", err)
	}
}
