package scenario

import (
	"strings"
	"testing"

	"sosf/internal/core"
	"sosf/internal/spec"
)

// twoRings builds a minimal two-component topology.
func twoRings() *spec.Topology {
	return &spec.Topology{
		Name: "pair",
		Components: []spec.Component{
			{Name: "a", Shape: "ring", Weight: 1, Ports: []string{"out"}},
			{Name: "b", Shape: "ring", Weight: 1, Ports: []string{"in"}},
		},
		Links: []spec.Link{{
			A: spec.PortRef{Component: "a", Port: "out"},
			B: spec.PortRef{Component: "b", Port: "in"},
		}},
	}
}

func newSystem(t *testing.T, seed int64) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Topology: twoRings(), Nodes: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHorizonAndEmpty(t *testing.T) {
	var nilTL *Timeline
	if !nilTL.Empty() || nilTL.Horizon() != 0 {
		t.Fatal("nil timeline must be empty with horizon 0")
	}
	tl := New([]spec.ScenarioEvent{
		{From: 10, To: 20, Kind: spec.ScenLoss, Fraction: 0.1},
		{From: 35, To: 35, Kind: spec.ScenKill, Fraction: 0.5},
	})
	if tl.Empty() {
		t.Fatal("timeline with events is not empty")
	}
	if tl.Horizon() != 35 {
		t.Fatalf("Horizon() = %d, want 35", tl.Horizon())
	}
}

func TestKillPulseFiresOnce(t *testing.T) {
	sys := newSystem(t, 1)
	tl := New([]spec.ScenarioEvent{{From: 3, To: 3, Kind: spec.ScenKill, Fraction: 0.5}})
	bound, err := tl.Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().AliveCount(); got != 100 {
		t.Fatalf("alive before the blast = %d", got)
	}
	if len(bound.Fired()) != 0 {
		t.Fatalf("quiet round fired %v", bound.Fired())
	}
	if _, err := sys.Run(1); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().AliveCount(); got != 50 {
		t.Fatalf("alive after the blast = %d, want 50", got)
	}
	if fired := bound.Fired(); len(fired) != 1 || !strings.Contains(fired[0], "kill 0.5") {
		t.Fatalf("fired = %v", fired)
	}
	if _, err := sys.Run(3); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().AliveCount(); got != 50 {
		t.Fatalf("point event must not re-fire: alive = %d", got)
	}
}

func TestBootActionAppliesAtBind(t *testing.T) {
	sys := newSystem(t, 2)
	tl := New([]spec.ScenarioEvent{{From: 0, To: 0, Kind: spec.ScenJoin, Count: 20}})
	bound, err := tl.Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().AliveCount(); got != 120 {
		t.Fatalf("boot join: alive = %d, want 120", got)
	}
	if fired := bound.Fired(); len(fired) != 1 || fired[0] != "join 20" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestChurnWindowKeepsPopulation(t *testing.T) {
	sys := newSystem(t, 3)
	tl := New([]spec.ScenarioEvent{{From: 1, To: 5, Kind: spec.ScenChurn, Fraction: 0.1}})
	if _, err := tl.Bind(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().AliveCount(); got != 100 {
		t.Fatalf("churn must keep the population stable: %d", got)
	}
	// Churn replaced nodes: more slots than alive nodes exist.
	if sys.Engine().Size() <= 100 {
		t.Fatalf("churn never fired: size = %d", sys.Engine().Size())
	}
}

func TestLossWindowSetsAndRestores(t *testing.T) {
	sys := newSystem(t, 4)
	sys.Engine().SetLossRate(0.05)
	tl := New([]spec.ScenarioEvent{{From: 2, To: 4, Kind: spec.ScenLoss, Fraction: 0.5}})
	if _, err := tl.Bind(sys); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().LossRate(); got != 0.05 {
		t.Fatalf("loss before window = %g", got)
	}
	if _, err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().LossRate(); got != 0.5 {
		t.Fatalf("loss inside window = %g, want 0.5", got)
	}
	if _, err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().LossRate(); got != 0.05 {
		t.Fatalf("loss after window = %g, want the restored 0.05", got)
	}
}

func TestPermanentLossPoint(t *testing.T) {
	sys := newSystem(t, 5)
	tl := New([]spec.ScenarioEvent{{From: 1, To: 1, Kind: spec.ScenLoss, Fraction: 0.3}})
	if _, err := tl.Bind(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine().LossRate(); got != 0.3 {
		t.Fatalf("point loss must persist: %g", got)
	}
}

func TestPartitionWindowHealsItself(t *testing.T) {
	sys := newSystem(t, 6)
	tl := New([]spec.ScenarioEvent{{From: 1, To: 3, Kind: spec.ScenPartition, Count: 2}})
	if _, err := tl.Bind(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(1); err != nil {
		t.Fatal(err)
	}
	if !sys.Engine().Partitioned() {
		t.Fatal("partition must be in effect inside the window")
	}
	if _, err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if sys.Engine().Partitioned() {
		t.Fatal("window close must heal")
	}
}

func TestKillComponentAndHeal(t *testing.T) {
	sys := newSystem(t, 7)
	tl := New([]spec.ScenarioEvent{
		{From: 1, To: 1, Kind: spec.ScenPartition, Count: 2},
		{From: 2, To: 2, Kind: spec.ScenHeal},
		{From: 3, To: 3, Kind: spec.ScenKillComponent, Component: "b"},
	})
	bound, err := tl.Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(2); err != nil {
		t.Fatal(err)
	}
	if sys.Engine().Partitioned() {
		t.Fatal("heal action must clear the partition")
	}
	if _, err := sys.Run(1); err != nil {
		t.Fatal(err)
	}
	// Weighted rendezvous hashing splits ~50/50, not exactly.
	if got := sys.Engine().AliveCount(); got < 35 || got > 65 {
		t.Fatalf("killing component b must fail roughly half the population: %d alive", got)
	}
	if fired := bound.Fired(); len(fired) != 1 || !strings.Contains(fired[0], "kill component b") {
		t.Fatalf("fired = %v", fired)
	}
}

func TestReconfigureFiresAndHooks(t *testing.T) {
	sys := newSystem(t, 8)
	after := twoRings()
	after.Name = "after"
	after.Components = append(after.Components, spec.Component{
		Name: "c", Shape: "ring", Weight: 1,
	})
	tl := New([]spec.ScenarioEvent{{From: 2, To: 2, Kind: spec.ScenReconfigure, Reconfigure: after}})
	bound, err := tl.Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	hooked := 0
	bound.OnReconfigure = func() { hooked++ }
	if _, err := sys.Run(4); err != nil {
		t.Fatal(err)
	}
	if hooked != 1 {
		t.Fatalf("OnReconfigure ran %d times, want 1", hooked)
	}
	if got := sys.Allocator().Topology().Name; got != "after" {
		t.Fatalf("topology after reconfigure = %q", got)
	}
	if err := bound.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureErrorStopsRun(t *testing.T) {
	sys := newSystem(t, 9)
	// An unvalidated target with an unknown shape: the scheduled
	// reconfiguration must fail, stop the run, and surface via Err.
	bad := &spec.Topology{
		Name:       "bad",
		Components: []spec.Component{{Name: "c", Shape: "blob", Weight: 1}},
	}
	tl := New([]spec.ScenarioEvent{{From: 2, To: 2, Kind: spec.ScenReconfigure, Reconfigure: bad}})
	bound, err := tl.Bind(sys)
	if err != nil {
		t.Fatal(err)
	}
	executed, err := sys.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 2 {
		t.Fatalf("run must stop at the failed reconfiguration: executed %d rounds", executed)
	}
	if bound.Err() == nil {
		t.Fatal("Err() must surface the reconfiguration failure")
	}
}

func TestSharedTimelineIndependentBindings(t *testing.T) {
	tl := New([]spec.ScenarioEvent{{From: 1, To: 3, Kind: spec.ScenLoss, Fraction: 0.4}})
	s1, s2 := newSystem(t, 10), newSystem(t, 11)
	if _, err := tl.Bind(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Bind(s2); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(1); err != nil {
		t.Fatal(err)
	}
	// s1's window state must not leak into s2.
	if got := s2.Engine().LossRate(); got != 0 {
		t.Fatalf("binding state leaked across systems: %g", got)
	}
	if got := s1.Engine().LossRate(); got != 0.4 {
		t.Fatalf("s1 loss = %g", got)
	}
}
