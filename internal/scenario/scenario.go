// Package scenario executes declarative fault/reconfiguration timelines
// against a running system.
//
// A timeline is a list of spec.ScenarioEvent values — produced by the DSL's
// `scenario { ... }` block or by the public sosf.Scenario API — replayed by
// a per-round observer. Time is measured in completed rounds: an event with
// From == 0 fires when the timeline is bound (before the first round); an
// event with From == r fires after round r completes. Because every action
// draws its randomness from the engine's seeded source, a (seed, topology,
// timeline) triple fully determines a run.
//
// Action semantics by kind:
//
//   - kill, kill-component, join, churn are pulses: they fire on every
//     round of their [From, To] window (a point event fires once).
//   - loss and partition are window actions: state changes at From and is
//     restored at To (when To > From); a point event changes state
//     permanently.
//   - reconfigure, heal, and snapshot fire once, at From.
package scenario

import (
	"fmt"
	"sort"

	"sosf/internal/core"
	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/spec"
)

// Timeline is an executable scenario. The zero value is an empty timeline.
type Timeline struct {
	events []spec.ScenarioEvent
}

// New builds a timeline from already-validated events (spec.Topology's
// Validate/ValidateScenario is the gate).
func New(events []spec.ScenarioEvent) *Timeline {
	return &Timeline{events: events}
}

// Empty reports whether the timeline schedules nothing.
func (t *Timeline) Empty() bool { return t == nil || len(t.events) == 0 }

// Horizon returns the last round any event touches (0 for an empty
// timeline) — the minimum number of rounds a run must execute to play the
// whole timeline.
func (t *Timeline) Horizon() int {
	h := 0
	if t == nil {
		return h
	}
	for _, ev := range t.events {
		if ev.To > h {
			h = ev.To
		}
	}
	return h
}

// Bind attaches the timeline to a live system: it registers a per-round
// observer on the system's engine and immediately applies round-0 actions.
// Bind returns an error if a round-0 reconfiguration fails. Each Bind
// creates independent window state, so one timeline can drive many systems.
func (t *Timeline) Bind(sys *core.System) (*Bound, error) {
	b := &Bound{sys: sys, events: t.events, savedLoss: make(map[int]float64)}
	sys.Engine().Observe(b)
	b.tick(0)
	return b, b.err
}

// Bound is a timeline bound to one system. It implements sim.Observer.
type Bound struct {
	// OnReconfigure, when set, runs after every successful scheduled
	// reconfiguration — embedders hook convergence-tracker resets here.
	OnReconfigure func()
	// OnSnapshot, when set, writes a checkpoint for a scheduled `snapshot`
	// action. The embedding layer owns the sink so the checkpoint captures
	// its full state (engine, allocator, tracker, and this timeline's own
	// window bookkeeping), not just what the scenario package can see. A
	// scheduled snapshot with no sink is a runtime error, never a silent
	// skip.
	OnSnapshot func(round int, path string) error

	sys       *core.System
	events    []spec.ScenarioEvent
	savedLoss map[int]float64 // event index -> loss rate to restore at To
	fired     []string
	err       error
}

var _ sim.Observer = (*Bound)(nil)

// AfterRound implements sim.Observer: it fires every event due at the
// completed-round count and stops the run on a scenario runtime error
// (surfaced via Err).
func (b *Bound) AfterRound(e *sim.Engine) bool {
	b.fired = b.fired[:0]
	b.tick(e.Round())
	return b.err != nil
}

// Fired returns descriptions of the actions applied at the most recent
// tick, in timeline order (empty when the round was quiet). The slice is
// reused every round; callers that keep it must copy.
func (b *Bound) Fired() []string { return b.fired }

// Err returns the first runtime error a fired action produced (a failed
// reconfiguration), or nil.
func (b *Bound) Err() error { return b.err }

func (b *Bound) tick(t int) {
	eng := b.sys.Engine()
	for i := range b.events {
		ev := &b.events[i]
		switch ev.Kind {
		case spec.ScenKill:
			if ev.From <= t && t <= ev.To {
				n := len(b.sys.Kill(ev.Fraction))
				b.note("kill %g: %d nodes", ev.Fraction, n)
			}
		case spec.ScenKillComponent:
			if ev.From <= t && t <= ev.To {
				n := b.sys.KillComponent(ev.Component)
				b.note("kill component %s: %d nodes", ev.Component, n)
			}
		case spec.ScenJoin:
			if ev.From <= t && t <= ev.To {
				b.sys.AddNodes(ev.Count)
				b.note("join %d", ev.Count)
			}
		case spec.ScenChurn:
			if ev.From <= t && t <= ev.To {
				killed := b.sys.Kill(ev.Fraction)
				if len(killed) > 0 {
					b.sys.AddNodes(len(killed))
				}
				b.note("churn %g: %d nodes", ev.Fraction, len(killed))
			}
		case spec.ScenLoss:
			if t == ev.From {
				if ev.To > ev.From {
					b.savedLoss[i] = eng.LossRate()
				}
				eng.SetLossRate(ev.Fraction)
				b.note("loss %g", ev.Fraction)
			} else if ev.To > ev.From && t == ev.To {
				eng.SetLossRate(b.savedLoss[i])
				b.note("loss restored %g", b.savedLoss[i])
			}
		case spec.ScenPartition:
			if t == ev.From {
				eng.Partition(ev.Count)
				b.note("partition %d", ev.Count)
			} else if ev.To > ev.From && t == ev.To {
				eng.Heal()
				b.note("heal")
			}
		case spec.ScenHeal:
			if t == ev.From {
				eng.Heal()
				b.note("heal")
			}
		case spec.ScenSnapshot:
			if t == ev.From {
				if b.OnSnapshot == nil {
					b.err = fmt.Errorf("scenario: snapshot at round %d: no snapshot sink bound", t)
					return
				}
				if err := b.OnSnapshot(t, ev.Path); err != nil {
					b.err = fmt.Errorf("scenario: snapshot at round %d: %w", t, err)
					return
				}
				b.note("snapshot %s", ev.Path)
			}
		case spec.ScenReconfigure:
			if t == ev.From {
				if err := b.sys.Reconfigure(ev.Reconfigure); err != nil {
					b.err = fmt.Errorf("scenario: reconfigure at round %d: %w", t, err)
					return
				}
				b.note("reconfigure %s", ev.Reconfigure.Name)
				if b.OnReconfigure != nil {
					b.OnReconfigure()
				}
			}
		}
	}
}

func (b *Bound) note(format string, args ...any) {
	b.fired = append(b.fired, fmt.Sprintf(format, args...))
}

// SnapshotState serializes the timeline's window bookkeeping — the saved
// loss rates of in-flight `during ... loss` windows — so a run restored
// mid-window restores the correct rate when the window closes. Event
// indices are written in ascending order for a deterministic stream.
func (b *Bound) SnapshotState(w *snap.Writer) {
	keys := make([]int, 0, len(b.savedLoss))
	for i := range b.savedLoss {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	w.Len(len(keys))
	for _, i := range keys {
		w.Int(i)
		w.F64(b.savedLoss[i])
	}
}

// RestoreState rebuilds the window bookkeeping from SnapshotState.
func (b *Bound) RestoreState(r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	clear(b.savedLoss)
	for j := 0; j < n; j++ {
		i := r.Int()
		rate := r.F64()
		if r.Err() == nil && (i < 0 || i >= len(b.events)) {
			return fmt.Errorf("scenario: snapshot names event %d, timeline has %d events", i, len(b.events))
		}
		b.savedLoss[i] = rate
	}
	return r.Err()
}
