package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sosf/internal/snap"
)

// TestCountedSourceReplay is the foundation of serial-RNG restore: after an
// arbitrary mix of draws, a fresh source fast-forwarded by the recorded
// count must continue with exactly the same values.
func TestCountedSourceReplay(t *testing.T) {
	src := newCountedSource(12345)
	rng := rand.New(src)
	// A deliberately mixed diet: every entry point the engine uses between
	// rounds (Shuffle and Intn reject-sample, so the draw count is not
	// simply the call count — exactly what the counter must absorb).
	for i := 0; i < 1000; i++ {
		rng.Uint64()
		rng.Intn(7)
		rng.Float64()
		rng.Shuffle(13, func(a, b int) {})
		rng.Int63n(1<<62 + 3)
	}

	replaySrc := newCountedSource(12345)
	replaySrc.skip(src.n)
	replay := rand.New(replaySrc)
	for i := 0; i < 100; i++ {
		if a, b := rng.Uint64(), replay.Uint64(); a != b {
			t.Fatalf("draw %d diverged after replay: %d != %d", i, a, b)
		}
	}
}

// snapProbe is a minimal protocol with per-slot state and random draws in
// every phase, to exercise engine snapshot/restore without the full stack.
type snapProbe struct {
	marks []uint64
	inbox Inbox
}

func (p *snapProbe) Name() string { return "probe" }
func (p *snapProbe) InitNode(e *Engine, slot int) {
	for len(p.marks) <= slot {
		p.marks = append(p.marks, 0)
	}
	p.inbox.Grow(slot + 1)
}
func (p *snapProbe) Refresh(ctx *Ctx) { p.inbox.Reset(ctx.Slot()) }
func (p *snapProbe) Plan(ctx *Ctx) {
	p.marks[ctx.Slot()] = p.marks[ctx.Slot()]*31 + ctx.Rand().Uint64()
}
func (p *snapProbe) Inboxes() []*Inbox { return []*Inbox{&p.inbox} }
func (p *snapProbe) Absorb(ctx *Ctx)   {}

func (p *snapProbe) SnapshotState(w *snap.Writer) {
	w.Len(len(p.marks))
	for _, m := range p.marks {
		w.U64(m)
	}
}

func (p *snapProbe) RestoreState(e *Engine, r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	p.marks = p.marks[:0]
	for i := 0; i < n; i++ {
		p.marks = append(p.marks, r.U64())
		p.inbox.Grow(i + 1)
	}
	return r.Err()
}

func buildProbeEngine(t *testing.T, seed int64) (*Engine, *snapProbe) {
	t.Helper()
	e := New(seed)
	probe := &snapProbe{}
	e.Register(probe)
	for _, slot := range e.AddNodes(64) {
		e.Node(slot).Profile.Key = e.Rand().Uint64()
		e.InitNode(slot)
	}
	return e, probe
}

// runChaos drives rounds with inter-round churn, partitions and loss — all
// the serial-RNG consumers — so restore must reproduce every dimension.
func runChaos(t *testing.T, e *Engine, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		e.RunRound()
		switch e.Round() % 7 {
		case 2:
			e.KillFraction(0.05)
		case 3:
			for _, slot := range e.AddNodes(2) {
				e.Node(slot).Profile.Key = e.Rand().Uint64()
				e.InitNode(slot)
			}
		case 4:
			e.Partition(2)
		case 5:
			e.Heal()
			e.SetLossRate(0.1)
		case 6:
			e.SetLossRate(0)
		}
	}
}

func TestEngineSnapshotRestoreEquivalence(t *testing.T) {
	// Uninterrupted reference: 20 + 15 chaotic rounds.
	ref, refProbe := buildProbeEngine(t, 99)
	runChaos(t, ref, 20)

	var buf bytes.Buffer
	if err := ref.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snapBytes := append([]byte(nil), buf.Bytes()...)
	runChaos(t, ref, 15)

	// Restored run: a *differently seeded* fresh engine (restore must
	// replace everything, including the seed) continuing the same 15.
	cont, contProbe := buildProbeEngine(t, 7)
	runChaos(t, cont, 3) // arbitrary pre-restore state, wiped by Restore
	if err := cont.Restore(bytes.NewReader(snapBytes)); err != nil {
		t.Fatal(err)
	}
	if cont.Round() != 20 {
		t.Fatalf("restored round = %d, want 20", cont.Round())
	}
	runChaos(t, cont, 15)

	if ref.Round() != cont.Round() || ref.Size() != cont.Size() {
		t.Fatalf("round/size: ref %d/%d, cont %d/%d", ref.Round(), ref.Size(), cont.Round(), cont.Size())
	}
	if ref.AliveCount() != cont.AliveCount() {
		t.Fatalf("alive: ref %d, cont %d", ref.AliveCount(), cont.AliveCount())
	}
	for slot := 0; slot < ref.Size(); slot++ {
		a, b := ref.Node(slot), cont.Node(slot)
		if a.ID != b.ID || a.Alive != b.Alive || a.Joined != b.Joined || a.Profile != b.Profile {
			t.Fatalf("node %d: ref %+v, cont %+v", slot, a, b)
		}
	}
	if len(refProbe.marks) != len(contProbe.marks) {
		t.Fatalf("mark counts differ: %d vs %d", len(refProbe.marks), len(contProbe.marks))
	}
	for i := range refProbe.marks {
		if refProbe.marks[i] != contProbe.marks[i] {
			t.Fatalf("mark %d: ref %d, cont %d", i, refProbe.marks[i], contProbe.marks[i])
		}
	}
	// The serial RNGs must be in the same position too.
	if a, b := ref.Rand().Uint64(), cont.Rand().Uint64(); a != b {
		t.Fatalf("serial RNG diverged after resume: %d != %d", a, b)
	}
}

// TestSnapshotRequiresSnapshotter: an engine with a plain protocol cannot
// checkpoint — partial snapshots are refused loudly, never written quietly.
type plainProbe struct{}

func (plainProbe) Name() string          { return "plain" }
func (plainProbe) InitNode(*Engine, int) {}
func (plainProbe) Refresh(*Ctx)          {}
func (plainProbe) Plan(*Ctx)             {}
func (plainProbe) Absorb(*Ctx)           {}

func TestSnapshotRequiresSnapshotter(t *testing.T) {
	e := New(1)
	e.Register(plainProbe{})
	e.AddNodes(4)
	var buf bytes.Buffer
	err := e.Snapshot(&buf)
	if err == nil || !strings.Contains(err.Error(), "plain") {
		t.Fatalf("err = %v, want Snapshotter complaint naming the protocol", err)
	}
}

// TestRestoreRejectsAbsurdDrawCount: a corrupted draw count must produce
// an error, not an effectively infinite fast-forward loop.
func TestRestoreRejectsAbsurdDrawCount(t *testing.T) {
	// Hand-build a stream whose fixed prefix is self-consistent (an empty
	// population) but whose draw count is far past the replay bound.
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Header("engine")
	w.I64(1)           // seed
	w.Uvarint(1 << 50) // draws: absurd
	w.Int(1)           // round
	w.Varint(0)        // nextID
	w.F64(0)           // loss rate
	w.Len(0)           // node count
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	e := New(1)
	e.Register(&snapProbe{})
	err := e.Restore(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "replay bound") {
		t.Fatalf("err = %v, want draw-count bound rejection", err)
	}
}

// TestRestoreRejectsMismatchedStack: a snapshot taken under one protocol
// stack must not restore into another.
func TestRestoreRejectsMismatchedStack(t *testing.T) {
	e, _ := buildProbeEngine(t, 1)
	runChaos(t, e, 5)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	other := New(1)
	other.Register(&snapProbe{})
	other.Register(&snapProbe{})
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a two-protocol engine succeeded")
	}
}

// TestMeterSnapshotRoundTrip: bandwidth history must survive a checkpoint
// so resumed runs report the same per-round and whole-run figures.
func TestMeterSnapshotRoundTrip(t *testing.T) {
	m := NewMeter()
	m.AddProtocol("a")
	m.AddProtocol("b")
	for r := 0; r < 10; r++ {
		m.Count(0, r*3+1)
		m.Count(1, r*5+2)
		m.EndRound()
	}

	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	m.snapshot(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	n := NewMeter()
	n.AddProtocol("a")
	n.AddProtocol("b")
	r := snap.NewReader(&buf)
	if err := n.restore(r); err != nil {
		t.Fatal(err)
	}
	if n.Rounds() != m.Rounds() {
		t.Fatalf("rounds = %d, want %d", n.Rounds(), m.Rounds())
	}
	for round := 0; round < m.Rounds(); round++ {
		for p := 0; p < 2; p++ {
			if n.RoundTotal(round, p) != m.RoundTotal(round, p) {
				t.Fatalf("round %d protocol %d: %d != %d", round, p, n.RoundTotal(round, p), m.RoundTotal(round, p))
			}
		}
	}
}
