package sim

// Wire-size model.
//
// The paper's Figure 4 reports bandwidth in bytes. The simulation does not
// serialize real packets, so message sizes are computed from a fixed model
// of what a production implementation would put on the wire. The model is
// deliberately simple and byte-accurate for the data structures the
// protocols exchange:
//
//	descriptor  = node ID (8) + key (8) + component (4) + index (4) +
//	              size (4) + epoch (4) + age (2)                  = 34 B
//	port record = component (4) + port (4) + score (8) + node ID (8) +
//	              age (2)                                         = 26 B
//	header      = src (8) + dst (8) + protocol (2) + kind (1) +
//	              length (2)                                      = 21 B
const (
	// DescriptorBytes is the serialized size of one view.Descriptor.
	DescriptorBytes = 34
	// PortRecordBytes is the serialized size of one port-election record.
	PortRecordBytes = 26
	// HeaderBytes is the fixed per-message envelope overhead.
	HeaderBytes = 21
	// PortQueryBytes is the payload of a port-connection lookup request
	// (component ID + port ID).
	PortQueryBytes = 8
)

// DescriptorPayload returns the wire size of a message carrying n
// descriptors.
func DescriptorPayload(n int) int { return HeaderBytes + n*DescriptorBytes }

// PortRecordPayload returns the wire size of a message carrying n port
// records.
func PortRecordPayload(n int) int { return HeaderBytes + n*PortRecordBytes }

// PortQueryPayload returns the wire size of a port-connection lookup
// request.
func PortQueryPayload() int { return HeaderBytes + PortQueryBytes }
