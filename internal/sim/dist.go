package sim

// Distributed rounds. A distributed run replicates the full engine state in
// every participating process (coordinator and workers alike) and shards
// only the Plan phase of the exchange-routing protocols: each process plans
// the slots of its contiguous shard, the planned records cross the wire at
// that protocol's Deliver barrier, and every process then imports the
// remote shards' records — rebuilding plan records and re-pushing inbox
// lanes — before running the (replicated) Deliver merge and Absorb phases
// over the whole population.
//
// Byte-identity at any shard count falls out of the same discipline that
// makes thread sharding invisible: every in-round draw comes from a
// counter-based per-(node, round, protocol, phase) stream, so a slot's Plan
// produces the same record no matter which process executes it, and the
// engine-driven Deliver merge scans senders in ascending slot order no
// matter which lanes were pushed locally and which were imported. The
// serial RNG only moves between rounds, where every process replays the
// identical observer sequence against identical state.
//
// Protocols whose Plan phase mutates only their own slot's state and routes
// nothing (no InboxOwner) are planned replicated — every process runs them
// over all slots — so they need no codec and their meter counts are already
// global. Inbox-owning protocols opt into sharding by implementing
// PlanCodec; an inbox owner without a codec also falls back to replicated
// planning, which keeps the round correct (merely unsharded).

import (
	"sort"

	"sosf/internal/snap"
)

// PlanCodec is implemented by inbox-owning protocols whose Plan phase a
// distributed round shards across processes. EncodePlans serializes the
// plan records of the given slots (a shard of the alive population, in
// ascending slot order); DecodePlans applies records encoded by a remote
// shard — restoring the per-slot plan record and re-pushing the inbox lane
// of every delivered exchange, exactly as the remote Plan did. Decode runs
// between the Plan and Deliver phases of the owning protocol, so pushed
// lanes are merged by the engine's own Deliver pass.
type PlanCodec interface {
	EncodePlans(w *snap.Writer, slots []int)
	DecodePlans(e *Engine, r *snap.Reader) error
}

// ShardExchange is the per-protocol barrier hook of a distributed round.
// The engine calls it after planning the local shard of protocol pi and
// before pi's Deliver merge; the implementation must ship the local shard's
// records to the other participants (EncodePlans), import every remote
// shard's records (DecodePlans), and exchange the protocol's Plan-phase
// meter delta (PlanBytes / AddPlanBytes) so every replica's meter stays
// global. An error aborts the round immediately.
type ShardExchange func(pi int, codec PlanCodec, shard []int) error

// RunRoundSharded executes one round with the Plan phase of every
// codec-capable inbox-owning protocol restricted to the alive slots in
// [lo, hi), invoking exch at each such protocol's Deliver barrier. All
// other phases (and the Plan of codec-less protocols) run over the whole
// alive population, so the caller must hold state identical to every other
// participant's. A nil exch runs a plain full round. On error the round is
// abandoned mid-flight and the engine must not be stepped again.
func (e *Engine) RunRoundSharded(lo, hi int, exch ShardExchange) (stop bool, err error) {
	return e.runRoundSharded(lo, hi, exch)
}

func (e *Engine) runRoundSharded(lo, hi int, exch ShardExchange) (stop bool, err error) {
	alive := e.alive()
	e.ensureCtxs()
	for pi, p := range e.protocols {
		base := uint64(pi) * phaseCount
		e.runPhase(p, base+phaseRefresh, phaseRefresh, alive)
		var codec PlanCodec
		if exch != nil && len(e.inboxes[pi]) > 0 {
			codec, _ = p.(PlanCodec)
		}
		if codec != nil {
			shard := sliceSlots(alive, lo, hi)
			e.runPhase(p, base+phasePlan, phasePlan, shard)
			if err := exch(pi, codec, shard); err != nil {
				return false, err
			}
		} else {
			e.runPhase(p, base+phasePlan, phasePlan, alive)
		}
		e.deliver(pi, alive)
		e.runPhase(p, base+phaseAbsorb, phaseAbsorb, alive)
	}
	e.foldMeters()
	e.meter.EndRound()
	e.round++
	for _, o := range e.observers {
		if o.AfterRound(e) {
			stop = true
		}
	}
	return stop, nil
}

// sliceSlots returns the subslice of the ascending slot list whose slots
// fall in [lo, hi). It is a window into the caller's slice, not a copy.
func sliceSlots(slots []int, lo, hi int) []int {
	i := sort.SearchInts(slots, lo)
	j := i + sort.SearchInts(slots[i:], hi)
	return slots[i:j]
}

// ShardedProtocols returns the indices of registered protocols whose Plan
// phase a distributed round shards: inbox owners implementing PlanCodec.
// The list is a pure function of the registered stack, so every replica of
// a run computes the same one — it defines the per-round barrier sequence.
func (e *Engine) ShardedProtocols() []int {
	var out []int
	for pi, p := range e.protocols {
		if len(e.inboxes[pi]) == 0 {
			continue
		}
		if _, ok := p.(PlanCodec); ok {
			out = append(out, pi)
		}
	}
	return out
}

// PlanBytes returns the bytes protocol pi metered into the per-worker
// shards since the last round barrier — during a distributed round, the
// local shard's Plan-phase count for pi, because Plan is the only metered
// phase and each protocol meters only its own index. Called by the shard
// exchange to export the local meter delta.
func (e *Engine) PlanBytes(pi int) int64 {
	var sum int64
	for i := range e.ctxs {
		if pi < len(e.ctxs[i].counts) {
			sum += e.ctxs[i].counts[pi]
		}
	}
	return sum
}

// AddPlanBytes credits bytes metered by a remote shard's Plan phase to
// protocol pi. The credit lands directly in the shared meter's current
// round, joining the local per-worker shards when foldMeters runs at the
// round barrier.
func (e *Engine) AddPlanBytes(pi int, v int64) {
	if pi >= 0 && pi < len(e.meter.current) {
		e.meter.current[pi] += v
	}
}
