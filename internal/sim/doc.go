// Package sim implements a deterministic, cycle-driven peer-to-peer
// simulation engine in the style of PeerSim's cycle-driven mode, which is
// the substrate the paper's evaluation runs on.
//
// The engine owns a population of nodes, a stack of protocols, a round
// scheduler, churn and failure injection, per-protocol bandwidth metering,
// and per-round observers. All in-round randomness flows from counter-based
// per-node streams keyed by (seed, node, round, protocol, phase), so a
// (seed, configuration) pair fully determines a run — for *any* worker
// count. Setup-time randomness (bootstrap contacts, churn, partitions)
// flows from a single seeded source consumed serially between rounds.
//
// # The five-phase round
//
// Each round runs every protocol, in registration order, through four
// bulk-synchronous phases, then folds per-worker side effects at a serial
// round barrier — five steps in all, every one of them either parallel or
// trivially cheap, so nothing in a round is serialized over the population:
//
//  1. Refresh — parallel over alive slots. Local state maintenance (aging,
//     pruning, inbox Reset, folding in candidates from lower layers).
//  2. Plan — parallel over alive slots. Compute the slot's gossip exchange
//     (partner choice, payloads, delivery outcome) into protocol-owned
//     per-slot plan records, meter the bytes put on the wire via Ctx.Count
//     (a per-worker shard), and route the exchange with Inbox.Push (a
//     sender-owned lane).
//  3. Deliver — parallel over destination shards, engine-driven. The
//     engine splits the slot space into contiguous target ranges, one per
//     worker, and merges every registered inbox's planned lanes into
//     per-target receive lists. Every worker scans senders in ascending
//     slot order, so a target's list is identical to a serial slot-order
//     delivery at any worker count. Protocols do not implement this phase.
//  4. Absorb — parallel over alive slots. Fold everything the slot
//     received (its own exchange's reply, plus each inbox sender's
//     payload, in inbox order) into its local state.
//  5. Round barrier — serial, O(workers × protocols). Fold the per-worker
//     meter shards into the shared Meter (int64 addition, so totals are
//     exact and order-independent), snapshot the round's bandwidth, and
//     run observers.
//
// Phase rules: a Refresh or Absorb may mutate the protocol's state for
// ctx.Slot() only, and may read other protocols' state for ctx.Slot()
// only. A Plan must treat every view and table as read-only — other
// workers are reading them too — but may write state no other slot's Plan
// reads (its own plan record, its own inbox lane). Plan records of other
// slots are frozen by Absorb time and safe to read.
//
// One caveat from metering at Plan time: if a hook kills a node between
// Plan and Deliver (possible only from test hooks — nothing in the runtime
// kills mid-round), the Deliver merge drops its exchange but its planned
// bytes were already metered. The pre-sharded engine skipped both; no
// non-test scenario can observe the difference.
//
// # Struct-of-arrays hot state
//
// Protocols store per-node state in dense slot-indexed storage; the engine
// guarantees slots are dense and stable for the lifetime of a run (dead
// nodes keep their slot). The hot state is struct-of-arrays throughout:
// the engine's node table is one contiguous []Node; per-slot view headers
// live in view.Table's dense array with their descriptor entries carved
// from a shared chunked arena (internal/arena); plan payloads and record
// tables are likewise carved via sim.Carve. A million-node population is a
// handful of large arrays that phases stream through in slot order, not
// millions of scattered heap objects — which is also what keeps the
// garbage collector out of steady-state rounds entirely (0 allocs/round).
package sim
