package sim

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"sosf/internal/snap"
	"sosf/internal/view"
)

// Snapshotter is the checkpoint/restore hook of the Protocol interface:
// protocols that implement it can serialize their complete per-slot state
// into a snapshot and rebuild it later, such that a restored run replays
// the uninterrupted one byte for byte.
//
// SnapshotState and RestoreState are called between rounds only, so plan
// records, inboxes, and scratch pads — state that lives strictly inside one
// round — are never serialized. RestoreState must rebuild per-slot storage
// for exactly the engine's (already restored) population without drawing
// from any random source: the engine's serial RNG is part of the snapshot,
// and a stray draw during restore would desynchronize every round that
// follows.
//
// Engine.Snapshot fails if a registered protocol does not implement
// Snapshotter — a partial snapshot could not honor the resume-equivalence
// contract, so there is no silent skip.
type Snapshotter interface {
	// SnapshotState serializes the protocol's complete inter-round state.
	SnapshotState(w *snap.Writer)
	// RestoreState rebuilds the protocol's state from a snapshot taken by
	// SnapshotState, against the engine's already-restored population.
	RestoreState(e *Engine, r *snap.Reader) error
}

// countedSource wraps the engine's serial random source and counts every
// draw. The count is what makes the source snapshottable: math/rand's
// generator advances exactly one internal step per Int63/Uint64 call, so
// (seed, draw count) fully determines its state, and restore replays the
// count against a fresh source instead of capturing opaque internals.
type countedSource struct {
	src rand.Source64
	n   uint64
}

// newCountedSource seeds a counted source. rand.NewSource's concrete
// generator has implemented Source64 since Go 1.8; the engine relies on
// that so rand.New takes the exact same Uint64 fast path it took before
// the wrapper existed (falling back would change the draw sequence).
func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *countedSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *countedSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source.
func (s *countedSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// skip advances the source by n draws (restore's fast-forward). Each draw
// is a few integer operations, so replaying even millions of inter-round
// draws costs milliseconds.
func (s *countedSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.n = n
}

// engineSnapKind tags engine-level snapshots; core.System wraps the same
// body in its own "system" container.
const engineSnapKind = "engine"

// maxSerialDraws bounds the serial-RNG draw count Restore will replay
// (2^44 ≈ 1.8e13 draws — hours of fast-forward, far past any plausible
// run: between-round draws scale with churn and partition activity, not
// raw rounds). Every other field of the format fails fast on corruption;
// without this bound, a corrupted count near 2^64 would make restore spin
// for centuries instead of returning an error.
const maxSerialDraws = 1 << 44

// Snapshot serializes the engine's complete state — round counter, node
// table, partition and loss state, serial-RNG position, bandwidth history,
// and every protocol's per-slot state — such that Restore followed by M
// rounds replays rounds N+1..N+M of the uninterrupted run byte for byte,
// at any worker count. Call it between rounds only (mid-phase state is
// deliberately not serializable).
func (e *Engine) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Header(engineSnapKind)
	if err := e.SnapshotState(sw); err != nil {
		return err
	}
	return sw.Err()
}

// Restore rebuilds the engine from a Snapshot stream. The engine must
// carry the same registered protocol stack (same names, same order) as the
// one snapshotted; everything else — population, round, RNG position — is
// replaced by the snapshot's state. Worker configuration is untouched:
// resuming with a different worker count yields the same results.
func (e *Engine) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	sr.Header(engineSnapKind)
	if err := e.RestoreState(sr); err != nil {
		return err
	}
	return sr.Err()
}

// SnapshotState writes the engine body without a container header, for
// embedding in higher-level snapshots (core.System). It fails up front if
// any registered protocol cannot checkpoint itself.
func (e *Engine) SnapshotState(w *snap.Writer) error {
	for _, p := range e.protocols {
		if _, ok := p.(Snapshotter); !ok {
			return fmt.Errorf("sim: protocol %q does not implement Snapshotter", p.Name())
		}
	}
	w.I64(e.seed)
	w.Uvarint(e.src.n)
	w.Int(e.round)
	w.Varint(int64(e.nextID))
	w.F64(e.lossRate)

	w.Len(len(e.nodes))
	for i := range e.nodes {
		n := &e.nodes[i]
		w.Varint(int64(n.ID))
		w.Bool(n.Alive)
		w.Int(n.Joined)
		snap.WriteProfile(w, n.Profile)
	}

	w.Bool(e.partition != nil)
	if e.partition != nil {
		w.Len(len(e.partition))
		for _, g := range e.partition {
			w.Int(g)
		}
	}

	e.meter.snapshot(w)

	w.Len(len(e.protocols))
	var body bytes.Buffer
	for _, p := range e.protocols {
		body.Reset()
		bw := snap.NewWriter(&body)
		p.(Snapshotter).SnapshotState(bw)
		if err := bw.Err(); err != nil {
			return err
		}
		w.String(p.Name())
		w.Bytes(body.Bytes())
	}
	return w.Err()
}

// RestoreState reads the engine body written by SnapshotState.
func (e *Engine) RestoreState(r *snap.Reader) error {
	for _, p := range e.protocols {
		if _, ok := p.(Snapshotter); !ok {
			return fmt.Errorf("sim: protocol %q does not implement Snapshotter", p.Name())
		}
	}

	seed := r.I64()
	draws := r.Uvarint()
	round := r.Int()
	nextID := r.Varint()
	lossRate := r.F64()
	nodeCount := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if round < 0 || nextID < 0 || nodeCount != int(nextID) {
		return fmt.Errorf("snap: inconsistent engine state (round %d, %d nodes, next ID %d)", round, nodeCount, nextID)
	}
	if draws > maxSerialDraws {
		return fmt.Errorf("snap: serial RNG draw count %d exceeds the %d replay bound (corrupt snapshot?)", draws, uint64(maxSerialDraws))
	}

	nodes := make([]Node, 0, nodeCount)
	slotOfID := make([]int, nodeCount)
	for i := range slotOfID {
		slotOfID[i] = -1
	}
	for slot := 0; slot < nodeCount; slot++ {
		id := r.Varint()
		alive := r.Bool()
		joined := r.Int()
		profile := snap.ReadProfile(r)
		if err := r.Err(); err != nil {
			return err
		}
		if id < 0 || id >= nextID || slotOfID[id] >= 0 {
			return fmt.Errorf("snap: invalid or duplicate node ID %d", id)
		}
		slotOfID[id] = slot
		nodes = append(nodes, Node{
			Slot:    slot,
			ID:      view.NodeID(id),
			Alive:   alive,
			Joined:  joined,
			Profile: profile,
		})
	}

	var partition []int
	if r.Bool() {
		n := r.Len()
		if err := r.Err(); err != nil {
			return err
		}
		partition = make([]int, n)
		for i := range partition {
			partition[i] = r.Int()
		}
	}
	if err := r.Err(); err != nil {
		return err
	}

	// All fixed-size state decoded: commit, then restore the variable
	// sections (meter, protocols) that validate against the stack.
	src := newCountedSource(seed)
	src.skip(draws)
	e.seed = seed
	e.src = src
	e.rng = rand.New(src)
	e.round = round
	e.nextID = view.NodeID(nextID)
	e.lossRate = lossRate
	e.nodes = nodes
	e.slotOfID = slotOfID
	e.partition = partition
	e.aliveOK = false

	if err := e.meter.restore(r); err != nil {
		return err
	}

	np := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if np != len(e.protocols) {
		return fmt.Errorf("snap: snapshot has %d protocols, engine has %d", np, len(e.protocols))
	}
	for i, p := range e.protocols {
		name := r.String()
		body := r.Bytes()
		if err := r.Err(); err != nil {
			return err
		}
		if name != p.Name() {
			return fmt.Errorf("snap: protocol %d is %q in the snapshot but %q in the engine", i, name, p.Name())
		}
		br := snap.NewReader(bytes.NewReader(body))
		if err := p.(Snapshotter).RestoreState(e, br); err != nil {
			return fmt.Errorf("snap: protocol %q: %w", name, err)
		}
		br.ExpectEOF()
		if err := br.Err(); err != nil {
			return fmt.Errorf("snap: protocol %q: %w", name, err)
		}
	}
	return r.Err()
}

// snapshot serializes the meter: protocol names (validated on restore),
// in-flight round counters, and the full per-round history — the history
// keeps resumed runs' bandwidth figures and reports identical to the
// uninterrupted run's.
func (m *Meter) snapshot(w *snap.Writer) {
	w.Len(len(m.names))
	for _, name := range m.names {
		w.String(name)
	}
	for _, c := range m.current {
		w.Varint(c)
	}
	w.Len(len(m.history))
	for _, row := range m.history {
		for _, v := range row {
			w.Varint(v)
		}
	}
}

// restore rebuilds the meter from snapshot, validating that the registered
// protocol set matches.
func (m *Meter) restore(r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(m.names) {
		return fmt.Errorf("snap: meter has %d protocols, snapshot has %d", len(m.names), n)
	}
	for i, want := range m.names {
		if got := r.String(); r.Err() == nil && got != want {
			return fmt.Errorf("snap: meter protocol %d is %q in the snapshot but %q in the engine", i, got, want)
		}
	}
	for i := range m.current {
		m.current[i] = r.Varint()
	}
	rounds := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	np := len(m.names)
	m.history = m.history[:0]
	m.arena = make([]int64, 0, rounds*np)
	for i := 0; i < rounds; i++ {
		start := len(m.arena)
		for j := 0; j < np; j++ {
			m.arena = append(m.arena, r.Varint())
		}
		m.history = append(m.history, m.arena[start:len(m.arena):len(m.arena)])
	}
	return r.Err()
}
