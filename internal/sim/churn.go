package sim

// Churn continuously replaces a fraction of the population each round:
// after every round it kills `Rate × alive` random nodes and adds the same
// number of fresh ones, keeping the population size stable — the standard
// churn model in gossip-overlay evaluations.
//
// Join is invoked with the slots of the freshly added nodes so the runtime
// can assign profiles and bootstrap their protocol state; it must call
// Engine.InitNode for each slot.
type Churn struct {
	Rate  float64
	From  int // first round at which churn applies
	Until int // last round (inclusive); 0 means "forever"
	Join  func(e *Engine, slots []int)
}

var _ Observer = (*Churn)(nil)

// AfterRound implements Observer.
func (c *Churn) AfterRound(e *Engine) bool {
	round := e.Round() - 1 // the round that just completed
	if round < c.From || (c.Until > 0 && round > c.Until) {
		return false
	}
	killed := e.KillFraction(c.Rate)
	if len(killed) == 0 {
		return false
	}
	slots := e.AddNodes(len(killed))
	if c.Join != nil {
		c.Join(e, slots)
	}
	return false
}
