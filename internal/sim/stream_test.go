package sim

import (
	"math"
	"testing"

	"sosf/internal/view"
)

func TestStreamDeterministicPerKey(t *testing.T) {
	a := NewStream(1, 42, 7, 3)
	b := NewStream(1, 42, 7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same key diverged at draw %d", i)
		}
	}
}

func TestStreamKeysIndependent(t *testing.T) {
	base := NewStream(1, 42, 7, 3)
	first := base.Uint64()
	// Perturbing any single key component must change the stream — node,
	// round, salt (protocol × phase), and seed all separate.
	for name, s := range map[string]Stream{
		"node":  NewStream(1, 43, 7, 3),
		"round": NewStream(1, 42, 8, 3),
		"salt":  NewStream(1, 42, 7, 4),
		"seed":  NewStream(2, 42, 7, 3),
	} {
		if s.Uint64() == first {
			t.Fatalf("%s perturbation left the first draw unchanged", name)
		}
	}
}

func TestStreamIntnBoundsAndPanic(t *testing.T) {
	s := NewStream(9, 0, 0, 0)
	for _, n := range []int{1, 2, 3, 7, 8, 1000} {
		for i := 0; i < 200; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(5, 1, 2, 3)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0, 1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestStreamIntnRoughlyUniform(t *testing.T) {
	s := NewStream(11, 3, 1, 0)
	const buckets, draws = 10, 50000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestStreamShuffleIsPermutation(t *testing.T) {
	s := NewStream(13, 2, 9, 1)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	moved := 0
	for i, x := range xs {
		if seen[x] {
			t.Fatalf("value %d duplicated", x)
		}
		seen[x] = true
		if x != i {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("shuffle left the identity permutation (vanishingly unlikely)")
	}
}

func TestStreamSatisfiesViewRand(t *testing.T) {
	// The view package samples through this interface; a compile-time
	// assertion exists in stream.go, this pins the runtime behavior.
	s := NewStream(1, 2, 3, 4)
	var r view.Rand = &s
	if v := r.Intn(4); v < 0 || v >= 4 {
		t.Fatalf("Intn via interface out of range: %d", v)
	}
}

func TestInboxOrderAndReset(t *testing.T) {
	const size = 6
	var b Inbox
	b.Grow(size)
	nodes := make([]Node, size)
	alive := make([]int, 0, size)
	for slot := 0; slot < size; slot++ {
		nodes[slot] = Node{Slot: slot, Alive: true}
		alive = append(alive, slot)
		b.Reset(slot)
	}
	// Push records planned lanes; the lists materialize in the merge,
	// which scans senders in ascending slot order.
	b.Push(3, 5)
	b.Push(3, 0)
	b.Push(3, 2)
	b.Push(1, 4)
	// Merge in two target shards to prove sharding is invisible: the
	// per-target order must still be global ascending sender order.
	b.merge(nodes, alive, 0, 3)
	b.merge(nodes, alive, 3, size)
	var got []int
	for s := b.First(3); s >= 0; s = b.Next(s) {
		got = append(got, s)
	}
	want := []int{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("inbox(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inbox(3) = %v, want %v", got, want)
		}
	}
	if b.First(1) != 4 || b.Next(4) != -1 {
		t.Fatal("inbox(1) should hold exactly sender 4")
	}
	if b.First(0) != -1 {
		t.Fatal("untouched slot should be empty")
	}
	b.Reset(3)
	if b.First(3) != -1 {
		t.Fatal("reset slot should be empty")
	}
}

func TestInboxMergeSkipsDeadAndRerouted(t *testing.T) {
	var b Inbox
	b.Grow(4)
	nodes := make([]Node, 4)
	for slot := range nodes {
		nodes[slot] = Node{Slot: slot, Alive: true}
		b.Reset(slot)
	}
	b.Push(2, 0)
	b.Push(2, 1)
	b.Push(0, 1) // re-push: only the last planned target counts
	nodes[0].Alive = false
	// Sender 0 died between Plan and Deliver: its exchange is dropped.
	b.merge(nodes, []int{0, 1, 2, 3}, 0, 4)
	if b.First(2) != -1 {
		t.Fatalf("inbox(2) should be empty, got sender %d", b.First(2))
	}
	if b.First(0) != 1 || b.Next(1) != -1 {
		t.Fatal("inbox(0) should hold exactly sender 1")
	}
}

// TestEngineWorkerCountInvariant pins the invariant at the engine level
// with a protocol that uses every phase facility: per-slot plans drawn
// from ctx.Rand, inbox routing, metering, and absorb-time merging. The
// meter history (which hashes the whole exchange pattern) must match
// across worker counts.
type probeProtocol struct {
	meterIdx int
	picks    []int // per-slot planned target
	sums     []uint64
	inbox    Inbox
}

func (p *probeProtocol) Name() string { return "probe" }

func (p *probeProtocol) InitNode(e *Engine, slot int) {
	for len(p.picks) <= slot {
		p.picks = append(p.picks, -1)
		p.sums = append(p.sums, 0)
	}
	p.inbox.Grow(slot + 1)
}

func (p *probeProtocol) Refresh(ctx *Ctx) { p.inbox.Reset(ctx.Slot()) }

func (p *probeProtocol) Inboxes() []*Inbox { return []*Inbox{&p.inbox} }

func (p *probeProtocol) Plan(ctx *Ctx) {
	slot := ctx.Slot()
	p.picks[slot] = -1
	if n := ctx.RandomAlive(slot); n != nil && ctx.Deliver(n.Slot) {
		p.picks[slot] = n.Slot
		ctx.Count(0, slot+1)
		p.inbox.Push(n.Slot, slot)
	}
}

func (p *probeProtocol) Absorb(ctx *Ctx) {
	slot := ctx.Slot()
	for s := p.inbox.First(slot); s >= 0; s = p.inbox.Next(s) {
		// Order-sensitive fold: catches any deviation in inbox ordering.
		p.sums[slot] = p.sums[slot]*31 + uint64(s) + 1
	}
}

func TestEngineWorkerCountInvariant(t *testing.T) {
	trace := func(workers int) ([]int64, []uint64) {
		e := New(77)
		e.SetWorkers(workers)
		e.SetLossRate(0.2)
		p := &probeProtocol{}
		e.Register(p)
		for _, s := range e.AddNodes(500) {
			e.InitNode(s)
		}
		e.Observe(ObserverFunc(func(e *Engine) bool {
			if e.Round() == 10 {
				e.Partition(3)
			}
			if e.Round() == 20 {
				e.Heal()
			}
			e.KillFraction(0.01)
			for _, s := range e.AddNodes(2) {
				e.InitNode(s)
			}
			return false
		}))
		if _, err := e.Run(30); err != nil {
			t.Fatal(err)
		}
		var meter []int64
		for r := 0; r < e.Meter().Rounds(); r++ {
			meter = append(meter, e.Meter().RoundSum(r))
		}
		return meter, append([]uint64(nil), p.sums...)
	}
	baseMeter, baseSums := trace(1)
	for _, w := range []int{2, 4, 8} {
		meter, sums := trace(w)
		for r := range baseMeter {
			if meter[r] != baseMeter[r] {
				t.Fatalf("workers=%d: meter diverges at round %d: %d vs %d", w, r, meter[r], baseMeter[r])
			}
		}
		for s := range baseSums {
			if sums[s] != baseSums[s] {
				t.Fatalf("workers=%d: absorb fold diverges at slot %d", w, s)
			}
		}
	}
}
