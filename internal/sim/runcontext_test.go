package sim

import (
	"context"
	"errors"
	"testing"
)

func TestRunContextCancelStopsAtRoundBoundary(t *testing.T) {
	e, p := newTestEngine(t, 6)
	ctx, cancel := context.WithCancel(context.Background())

	// Cancel from inside round 3's observer: the round must complete (no
	// mid-round abort) and the engine must stop before round 4 begins.
	e.Observe(ObserverFunc(func(e *Engine) bool {
		if e.Round() == 3 {
			cancel()
		}
		return false
	}))
	executed, err := e.RunContext(ctx, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if executed != 3 {
		t.Fatalf("executed %d rounds, want 3", executed)
	}
	if e.Round() != 3 {
		t.Fatalf("engine at round %d, want 3", e.Round())
	}
	for slot, n := range p.steps {
		if n != 3 {
			t.Fatalf("slot %d stepped %d times, want 3 (cancel split a round)", slot, n)
		}
	}

	// A fresh context resumes exactly where the cancel landed.
	executed, err = e.RunContext(context.Background(), 2)
	if err != nil || executed != 2 {
		t.Fatalf("resume: executed %d, err %v; want 2, nil", executed, err)
	}
	if e.Round() != 5 {
		t.Fatalf("engine at round %d after resume, want 5", e.Round())
	}
}

func TestRunContextAlreadyCancelledRunsNothing(t *testing.T) {
	e, p := newTestEngine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	executed, err := e.RunContext(ctx, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if executed != 0 || e.Round() != 0 {
		t.Fatalf("executed %d rounds to round %d, want none", executed, e.Round())
	}
	for slot, n := range p.steps {
		if n != 0 {
			t.Fatalf("slot %d stepped %d times on a dead context", slot, n)
		}
	}
}

func TestRunIsRunContextBackground(t *testing.T) {
	e, _ := newTestEngine(t, 4)
	rounds, err := e.Run(4)
	if err != nil || rounds != 4 {
		t.Fatalf("Run = %d, %v; want 4, nil", rounds, err)
	}
}
