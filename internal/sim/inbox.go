package sim

// Inbox routes planned exchanges from active senders to their passive
// receivers between a round's Deliver and Absorb phases. It is an intrusive
// singly-linked list over dense slot-indexed arrays: each sender plans at
// most one exchange per protocol per round, so one next-pointer per slot is
// enough, and a steady-state round allocates nothing — unlike per-slot
// append buffers, whose capacities keep growing as new per-round fan-in
// maxima appear.
//
// The phases divide the work exactly like the protocols themselves:
// Reset runs in the parallel Refresh phase (slot-local), Push in the serial
// Deliver phase (slot order fixes the list order), and First/Next iterate
// in the parallel Absorb phase (read-only).
type Inbox struct {
	head, tail, next []int32
}

// Grow extends the inbox to cover at least n slots. Call from InitNode.
func (b *Inbox) Grow(n int) {
	for len(b.head) < n {
		b.head = append(b.head, -1)
		b.tail = append(b.tail, -1)
		b.next = append(b.next, -1)
	}
}

// Reset empties the given slot's list.
func (b *Inbox) Reset(slot int) { b.head[slot] = -1 }

// Push appends sender to target's list. Pushes arrive in slot order (the
// Deliver phase is serial), so iteration yields senders in slot order too.
func (b *Inbox) Push(target, sender int) {
	s := int32(sender)
	b.next[s] = -1
	if b.head[target] < 0 {
		b.head[target] = s
	} else {
		b.next[b.tail[target]] = s
	}
	b.tail[target] = s
}

// First returns the first sender in slot's list, or -1 when empty.
func (b *Inbox) First(slot int) int { return int(b.head[slot]) }

// Next returns the sender after the given one, or -1 at the end.
func (b *Inbox) Next(sender int) int { return int(b.next[sender]) }
