package sim

// Inbox routes planned exchanges from active senders to their passive
// receivers between a round's Plan and Absorb phases. It is an intrusive
// singly-linked list over dense slot-indexed arrays: each sender plans at
// most one exchange per protocol per round, so one planned-target lane and
// one next-pointer per slot are enough, and a steady-state round allocates
// nothing — unlike per-slot append buffers, whose capacities keep growing
// as new per-round fan-in maxima appear.
//
// The phases divide the work exactly like the protocols themselves:
// Reset runs in the parallel Refresh phase (slot-local), Push in the
// parallel Plan phase (each sender writes only its own lane), merge in the
// parallel Deliver phase (one worker per destination shard, every worker
// scanning senders in ascending slot order), and First/Next iterate in the
// parallel Absorb phase (read-only).
type Inbox struct {
	head, tail, next []int32
	// planned[s] is the target slot sender s planned an exchange to this
	// round, or -1. It is the sender-owned lane that makes Push safe from
	// the parallel Plan phase; merge turns the lanes into per-target lists.
	planned []int32
}

// Grow extends the inbox to cover at least n slots. Call from InitNode.
func (b *Inbox) Grow(n int) {
	for len(b.head) < n {
		b.head = append(b.head, -1)
		b.tail = append(b.tail, -1)
		b.next = append(b.next, -1)
		b.planned = append(b.planned, -1)
	}
}

// Reset empties the given slot's list and clears its planned lane. Call
// from Refresh for every alive slot, before any Push of the round.
func (b *Inbox) Reset(slot int) {
	b.head[slot] = -1
	b.planned[slot] = -1
}

// Push records that sender plans an exchange to target this round. Safe
// from the parallel Plan phase: a sender writes only its own lane. The
// per-target receive lists materialize in the engine-driven Deliver merge.
func (b *Inbox) Push(target, sender int) { b.planned[sender] = int32(target) }

// merge is the Deliver phase: link every planned exchange whose target
// falls in [lo, hi) into that target's intrusive list. Senders are scanned
// in ascending slot order (the alive list is slot-ordered), so each
// target's list reads in global sender-slot order no matter how the target
// space is sharded across workers — byte-identical to a serial slot-order
// delivery. Disjoint target ranges make concurrent merges race-free: a
// target's head/tail and its senders' next-pointers are written only by
// the worker owning the target's range.
func (b *Inbox) merge(nodes []Node, alive []int, lo, hi int) {
	for _, s := range alive {
		t := b.planned[s]
		if int(t) < lo || int(t) >= hi || !nodes[s].Alive {
			// Unplanned lanes (-1) fall below any range; the Alive
			// re-check drops exchanges from senders killed mid-round.
			continue
		}
		sn := int32(s)
		b.next[sn] = -1
		if b.head[t] < 0 {
			b.head[t] = sn
		} else {
			b.next[b.tail[t]] = sn
		}
		b.tail[t] = sn
	}
}

// First returns the first sender in slot's list, or -1 when empty.
func (b *Inbox) First(slot int) int { return int(b.head[slot]) }

// Next returns the sender after the given one, or -1 at the end.
func (b *Inbox) Next(sender int) int { return int(b.next[sender]) }
