// Package sim implements a deterministic, cycle-driven peer-to-peer
// simulation engine in the style of PeerSim's cycle-driven mode, which is
// the substrate the paper's evaluation runs on.
//
// The engine owns a population of nodes, a stack of protocols, a round
// scheduler, churn and failure injection, per-protocol bandwidth metering,
// and per-round observers. Everything is driven from a single seeded random
// source, so a (seed, configuration) pair fully determines a run — this is
// what makes the paper's "averaged over 25 runs" methodology reproducible.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"sosf/internal/view"
)

// Protocol is one layer of the per-node gossip stack. The engine calls
// InitNode when a node joins (or re-joins after a reconfiguration) and Step
// once per node per round, in registration order, mirroring a PeerSim
// cycle-driven protocol stack.
//
// Protocols store their per-node state in their own slot-indexed storage;
// the engine guarantees slots are dense and stable for the lifetime of a
// run (dead nodes keep their slot).
type Protocol interface {
	// Name identifies the protocol in bandwidth reports and traces.
	Name() string
	// InitNode prepares per-node state for the node occupying slot.
	InitNode(e *Engine, slot int)
	// Step runs one active cycle for the node occupying slot. The node is
	// guaranteed alive when Step is invoked.
	Step(e *Engine, slot int)
}

// Observer is invoked after every completed round; returning stop=true ends
// the run early (used by convergence-driven experiments).
type Observer interface {
	AfterRound(e *Engine) (stop bool)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e *Engine) bool

// AfterRound implements Observer.
func (f ObserverFunc) AfterRound(e *Engine) bool { return f(e) }

// Node is one simulated process. Slot is its dense index in the engine;
// ID is its globally unique, never-reused identity. Profile is assigned by
// the runtime's role allocator and carried inside gossip descriptors.
type Node struct {
	Slot    int
	ID      view.NodeID
	Alive   bool
	Joined  int // round at which the node (last) joined
	Profile view.Profile
}

// Descriptor returns a fresh (age-0) descriptor advertising this node.
func (n *Node) Descriptor() view.Descriptor {
	return view.Descriptor{ID: n.ID, Age: 0, Profile: n.Profile}
}

// Engine is the simulation kernel.
type Engine struct {
	rng       *rand.Rand
	nodes     []*Node
	slotOfID  []int // dense NodeID -> slot index (IDs are monotonic, never reused)
	protocols []Protocol
	observers []Observer
	meter     *Meter
	round     int
	nextID    view.NodeID
	lossRate  float64
	partition []int // group per slot; nil when the network is whole
	stepOrder []int // scratch buffer reused every round

	// aliveSlots caches the slots of alive nodes in slot order. It is
	// invalidated by every liveness mutation (AddNodes, Kill, Revive, and
	// through them KillFraction) and rebuilt lazily into the same backing
	// array, so steady-state rounds neither scan nor allocate.
	aliveSlots []int
	aliveOK    bool
	// randScratch backs RandomAlive's low-liveness fallback filter.
	randScratch []int
	// pad is the scratch-buffer bundle handed to protocols (see Pad).
	pad Pad
}

// ErrNoProtocols is returned by Run when the engine has no protocol stack.
var ErrNoProtocols = errors.New("sim: engine has no registered protocols")

// New creates an engine seeded with the given seed.
func New(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		meter: NewMeter(),
	}
}

// Pad is a bundle of reusable scratch buffers the engine lends to protocols
// so a steady-state gossip exchange performs zero heap allocations. A
// protocol grabs the pad at the top of Step, slices the buffers it needs
// from their [:0] prefixes, and writes the grown slices back so capacity is
// retained for the slot stepped next.
//
// Rounds are single-threaded, so one pad serves every slot; a protocol must
// not hold pad buffers across Step calls. When intra-round parallelism
// lands, the engine will hand out one pad per worker instead — protocol
// code stays unchanged.
type Pad struct {
	// Send and Reply hold the two in-flight gossip payloads of an
	// exchange (active request, passive response).
	Send, Reply []view.Descriptor
	// Sample is for intermediate descriptor selections (random samples,
	// rank-filtered candidate lists).
	Sample []view.Descriptor
	// Same is for filtered contact lists (same-component candidates,
	// members of a remote component).
	Same []view.Descriptor
	// IDs is for node-ID work lists (e.g. Cyclon's replaceable set).
	IDs []view.NodeID
	// Merger is the shared descriptor-merge scratch.
	Merger view.Merger
	// Sampler is the shared partial-permutation scratch.
	Sampler view.Sampler
}

// Pad returns the engine's scratch pad for the currently stepping slot.
func (e *Engine) Pad() *Pad { return &e.pad }

// Rand exposes the engine's random source. All randomness in a simulation
// must flow from here to preserve determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Round returns the index of the round currently executing (or, between
// rounds, the number of completed rounds).
func (e *Engine) Round() int { return e.round }

// Meter returns the bandwidth meter.
func (e *Engine) Meter() *Meter { return e.meter }

// SetLossRate configures the probability that any single gossip exchange
// fails in transit (request lost). Used by failure-injection tests.
func (e *Engine) SetLossRate(p float64) { e.lossRate = p }

// LossRate returns the configured message loss probability.
func (e *Engine) LossRate() float64 { return e.lossRate }

// MeterAware is implemented by protocols that meter their own bandwidth;
// Register hands them their meter index.
type MeterAware interface {
	SetMeterIndex(int)
}

// Register appends a protocol to the stack. Protocols step in registration
// order within each node's turn. Register must be called before AddNodes.
func (e *Engine) Register(p Protocol) int {
	e.protocols = append(e.protocols, p)
	idx := e.meter.AddProtocol(p.Name())
	if ma, ok := p.(MeterAware); ok {
		ma.SetMeterIndex(idx)
	}
	return len(e.protocols) - 1
}

// Protocols returns the registered protocol stack.
func (e *Engine) Protocols() []Protocol {
	out := make([]Protocol, len(e.protocols))
	copy(out, e.protocols)
	return out
}

// Observe appends a per-round observer.
func (e *Engine) Observe(o Observer) { e.observers = append(e.observers, o) }

// AddNodes creates n fresh nodes, returning their slots. The caller is
// expected to assign profiles (via the allocator) before initializing
// protocols with InitNode or Bootstrap.
func (e *Engine) AddNodes(n int) []int {
	slots := make([]int, 0, n)
	for i := 0; i < n; i++ {
		node := &Node{
			Slot:   len(e.nodes),
			ID:     e.nextID,
			Alive:  true,
			Joined: e.round,
		}
		e.nextID++
		e.slotOfID = append(e.slotOfID, node.Slot)
		e.nodes = append(e.nodes, node)
		slots = append(slots, node.Slot)
	}
	e.aliveOK = false
	return slots
}

// InitNode runs every protocol's InitNode for the given slot. Call after
// the node's profile is assigned.
func (e *Engine) InitNode(slot int) {
	for _, p := range e.protocols {
		p.InitNode(e, slot)
	}
}

// Node returns the node occupying slot.
func (e *Engine) Node(slot int) *Node { return e.nodes[slot] }

// Size returns the total number of slots ever allocated (alive + dead).
func (e *Engine) Size() int { return len(e.nodes) }

// Lookup resolves a node ID to its node, or nil if unknown. IDs are dense
// and monotonically assigned, so this is a bounds check plus two slice
// loads — no hashing.
func (e *Engine) Lookup(id view.NodeID) *Node {
	if id < 0 || int64(id) >= int64(len(e.slotOfID)) {
		return nil
	}
	return e.nodes[e.slotOfID[id]]
}

// IsAlive reports whether the node with the given ID exists and is alive.
func (e *Engine) IsAlive(id view.NodeID) bool {
	n := e.Lookup(id)
	return n != nil && n.Alive
}

// alive returns the cached alive-slot list (slot order), rebuilding it into
// the reused backing array if a liveness mutation invalidated it. The
// returned slice is engine-owned scratch: callers must not retain or mutate
// it, and any Kill/Revive/AddNodes invalidates it.
func (e *Engine) alive() []int {
	if !e.aliveOK {
		e.aliveSlots = e.aliveSlots[:0]
		for _, n := range e.nodes {
			if n.Alive {
				e.aliveSlots = append(e.aliveSlots, n.Slot)
			}
		}
		e.aliveOK = true
	}
	return e.aliveSlots
}

// AliveSlots returns the slots of all alive nodes in slot order. The slice
// is the caller's to keep (callers iterate it while killing nodes); use
// AliveSlotsAppend with a reused buffer to avoid the copy.
func (e *Engine) AliveSlots() []int {
	alive := e.alive()
	out := make([]int, len(alive))
	copy(out, alive)
	return out
}

// AliveSlotsAppend appends the slots of all alive nodes, in slot order, to
// dst and returns the extended slice — the allocation-free AliveSlots.
func (e *Engine) AliveSlotsAppend(dst []int) []int {
	return append(dst, e.alive()...)
}

// AliveCount returns the number of alive nodes.
func (e *Engine) AliveCount() int { return len(e.alive()) }

// RandomAlive returns a uniformly random alive node other than exclude
// (pass a negative slot to exclude nothing), or nil if none exists. It is
// O(1) in the common case and falls back to a scan when the population is
// mostly dead.
func (e *Engine) RandomAlive(exclude int) *Node {
	if len(e.nodes) == 0 {
		return nil
	}
	for tries := 0; tries < 16; tries++ {
		n := e.nodes[e.rng.Intn(len(e.nodes))]
		if n.Alive && n.Slot != exclude {
			return n
		}
	}
	candidates := e.randScratch[:0]
	for _, s := range e.alive() {
		if s != exclude {
			candidates = append(candidates, s)
		}
	}
	e.randScratch = candidates
	if len(candidates) == 0 {
		return nil
	}
	return e.nodes[candidates[e.rng.Intn(len(candidates))]]
}

// Kill marks the node at slot dead. Dead nodes stop stepping and refuse
// exchanges; their descriptors decay out of peers' views.
func (e *Engine) Kill(slot int) {
	e.nodes[slot].Alive = false
	e.aliveOK = false
}

// Revive brings a dead node back (fresh join semantics: the caller must
// re-assign a profile and re-run InitNode).
func (e *Engine) Revive(slot int) {
	n := e.nodes[slot]
	n.Alive = true
	n.Joined = e.round
	e.aliveOK = false
}

// KillFraction kills ceil(f × alive) uniformly random alive nodes and
// returns their slots. Used for catastrophic-failure experiments.
func (e *Engine) KillFraction(f float64) []int {
	alive := e.AliveSlots()
	n := int(f*float64(len(alive)) + 0.5)
	if n <= 0 {
		return nil
	}
	if n > len(alive) {
		n = len(alive)
	}
	e.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	killed := alive[:n]
	for _, s := range killed {
		e.Kill(s)
	}
	return killed
}

// DeliverExchange applies the configured loss rate to one request/response
// exchange, returning false if the exchange is lost in transit.
func (e *Engine) DeliverExchange() bool {
	if e.lossRate <= 0 {
		return true
	}
	return e.rng.Float64() >= e.lossRate
}

// Partition splits the alive population into the given number of groups;
// exchanges between nodes of different groups are dropped until Heal.
// Group assignment is balanced and drawn from the engine's random source,
// so partitions are as deterministic as everything else. Fewer than two
// groups heals instead.
func (e *Engine) Partition(groups int) {
	if groups < 2 {
		e.Heal()
		return
	}
	e.partition = make([]int, len(e.nodes))
	for i := range e.partition {
		e.partition[i] = -1
	}
	alive := e.AliveSlots()
	e.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for i, slot := range alive {
		e.partition[slot] = i % groups
	}
}

// Heal removes a network partition: every pair of nodes can exchange again.
func (e *Engine) Heal() { e.partition = nil }

// Partitioned reports whether a partition is in effect.
func (e *Engine) Partitioned() bool { return e.partition != nil }

// SameSide reports whether two slots can reach each other under the current
// partition. Nodes that joined after the split carry no group and are
// reachable from everywhere (they model fresh nodes with full connectivity).
func (e *Engine) SameSide(a, b int) bool {
	if e.partition == nil {
		return true
	}
	if a >= len(e.partition) || b >= len(e.partition) {
		return true
	}
	ga, gb := e.partition[a], e.partition[b]
	return ga < 0 || gb < 0 || ga == gb
}

// DeliverBetween decides whether one request/response exchange between two
// slots goes through: the partition (if any) is consulted first, then the
// loss rate. Protocols should prefer this over DeliverExchange whenever both
// endpoints are known.
func (e *Engine) DeliverBetween(from, to int) bool {
	if !e.SameSide(from, to) {
		return false
	}
	return e.DeliverExchange()
}

// RunRound executes one full round: every alive node, in a freshly
// shuffled order, steps each protocol in stack order; then observers run.
// It reports whether any observer requested a stop.
func (e *Engine) RunRound() (stop bool) {
	e.stepOrder = append(e.stepOrder[:0], e.alive()...)
	e.rng.Shuffle(len(e.stepOrder), func(i, j int) {
		e.stepOrder[i], e.stepOrder[j] = e.stepOrder[j], e.stepOrder[i]
	})
	for _, slot := range e.stepOrder {
		// A node can die mid-round (not in the base model, but hooks may
		// kill it); re-check before stepping.
		if !e.nodes[slot].Alive {
			continue
		}
		for _, p := range e.protocols {
			p.Step(e, slot)
		}
	}
	e.meter.EndRound()
	e.round++
	for _, o := range e.observers {
		if o.AfterRound(e) {
			stop = true
		}
	}
	return stop
}

// Run executes up to maxRounds rounds, stopping early if an observer asks
// to. It returns the number of rounds executed in this call.
func (e *Engine) Run(maxRounds int) (int, error) {
	if len(e.protocols) == 0 {
		return 0, ErrNoProtocols
	}
	for i := 0; i < maxRounds; i++ {
		if e.RunRound() {
			return i + 1, nil
		}
	}
	return maxRounds, nil
}

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{round=%d nodes=%d alive=%d protocols=%d}",
		e.round, len(e.nodes), e.AliveCount(), len(e.protocols))
}
