package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"sosf/internal/view"
)

// Protocol is one layer of the per-node gossip stack. The engine calls
// InitNode when a node joins (or re-joins after a reconfiguration) and then
// drives each round as phases per protocol, in registration order — see the
// package documentation for the five-phase round contract. The Deliver
// phase is engine-driven (the per-destination-shard inbox merge); protocols
// that route exchanges implement InboxOwner instead of a Deliver method,
// meter at Plan time via Ctx.Count, and Push at the end of Plan.
type Protocol interface {
	// Name identifies the protocol in bandwidth reports and traces.
	Name() string
	// InitNode prepares per-node state for the node occupying slot.
	InitNode(e *Engine, slot int)
	// Refresh runs the slot's local state maintenance (phase 1).
	Refresh(ctx *Ctx)
	// Plan computes, meters, and routes the slot's exchange (phase 2).
	Plan(ctx *Ctx)
	// Absorb folds received payloads into the slot's state (phase 4).
	Absorb(ctx *Ctx)
}

// InboxOwner is implemented by protocols that route planned exchanges
// through one or more Inboxes. Register collects the inboxes once; the
// engine then drives the parallel Deliver phase — merging each inbox's
// planned lanes into per-target receive lists, one worker per destination
// shard — between every Plan and Absorb.
type InboxOwner interface {
	Inboxes() []*Inbox
}

// Observer is invoked after every completed round; returning stop=true ends
// the run early (used by convergence-driven experiments).
type Observer interface {
	AfterRound(e *Engine) (stop bool)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e *Engine) bool

// AfterRound implements Observer.
func (f ObserverFunc) AfterRound(e *Engine) bool { return f(e) }

// Node is one simulated process. Slot is its dense index in the engine;
// ID is its globally unique, never-reused identity. Profile is assigned by
// the runtime's role allocator and carried inside gossip descriptors.
type Node struct {
	Slot    int
	ID      view.NodeID
	Alive   bool
	Joined  int // round at which the node (last) joined
	Profile view.Profile
}

// Descriptor returns a fresh (age-0) descriptor advertising this node.
func (n *Node) Descriptor() view.Descriptor {
	return view.Descriptor{ID: n.ID, Age: 0, Profile: n.Profile}
}

// Engine is the simulation kernel.
type Engine struct {
	rng *rand.Rand
	// src is rng's underlying source, wrapped to count draws: the count is
	// what lets Snapshot capture the serial RNG's position and Restore
	// replay it against a fresh source (see snapshot.go).
	src  *countedSource
	seed int64
	// nodes is the dense node table — one contiguous array, not per-node
	// heap objects, so phases stream it in slot order. Node pointers
	// (Engine.Node, Lookup, RandomAlive) point into this array and are
	// stable until the next AddNodes; don't hold them across joins.
	nodes     []Node
	slotOfID  []int // dense NodeID -> slot index (IDs are monotonic, never reused)
	protocols []Protocol
	// inboxes[pi] caches protocol pi's registered inboxes (nil for
	// protocols that don't route exchanges); the engine merges them in the
	// Deliver phase.
	inboxes   [][]*Inbox
	observers []Observer
	meter     *Meter
	round     int
	nextID    view.NodeID
	lossRate  float64
	partition []int // group per slot; nil when the network is whole

	// aliveSlots caches the slots of alive nodes in slot order. It is
	// invalidated by every liveness mutation (AddNodes, Kill, Revive, and
	// through them KillFraction) and rebuilt lazily into the same backing
	// array, so steady-state rounds neither scan nor allocate.
	aliveSlots []int
	aliveOK    bool
	// randScratch backs RandomAlive's low-liveness fallback filter.
	randScratch []int

	// Worker pool for the parallel phases. ctxs holds one execution
	// context (scratch pad + stream slot + meter shard) per worker; the
	// pool's goroutines park on jobs between phases so a steady-state
	// round spawns nothing and allocates nothing. poolSize counts
	// goroutines actually started (they are never stopped while the
	// engine lives; a finalizer closes jobs so they exit when the engine
	// is collected).
	workers  int
	ctxs     []Ctx
	jobs     chan phaseJob
	done     chan struct{}
	poolSize int
}

// ErrNoProtocols is returned by Run when the engine has no protocol stack.
var ErrNoProtocols = errors.New("sim: engine has no registered protocols")

// New creates an engine seeded with the given seed.
func New(seed int64) *Engine {
	src := newCountedSource(seed)
	return &Engine{
		rng:     rand.New(src),
		src:     src,
		seed:    seed,
		meter:   NewMeter(),
		workers: 1,
	}
}

// Pad is a bundle of reusable scratch buffers the engine lends to protocols
// so a steady-state gossip exchange performs zero heap allocations. A
// protocol grabs the pad from its phase context, slices the buffers it
// needs from their [:0] prefixes, and writes the grown slices back so
// capacity is retained for the slot processed next.
//
// There is one pad per worker; a protocol must not hold pad buffers across
// phase calls — anything that outlives the slot's turn belongs in the
// protocol's per-slot plan records.
type Pad struct {
	// Send and Reply hold the two in-flight gossip payloads of an
	// exchange (active request, passive response).
	Send, Reply []view.Descriptor
	// Sample is for intermediate descriptor selections (random samples,
	// rank-filtered candidate lists).
	Sample []view.Descriptor
	// Same is for filtered contact lists (same-component candidates,
	// members of a remote component).
	Same []view.Descriptor
	// IDs is for node-ID work lists (e.g. Cyclon's replaceable set).
	IDs []view.NodeID
	// Merger is the shared descriptor-merge scratch.
	Merger view.Merger
	// Sampler is the shared partial-permutation scratch.
	Sampler view.Sampler
}

// Ctx is the execution context of one parallel phase call: which slot is
// being processed, that slot's random stream for the phase, the worker's
// scratch pad, and the worker's meter shard. Ctx values are engine-owned
// and reused; protocols must not retain them across calls.
type Ctx struct {
	e    *Engine
	slot int
	rng  Stream
	pad  Pad
	// counts is the worker's per-protocol meter shard: Plan-time byte
	// counts accumulate here race-free and fold into the shared Meter at
	// the round barrier.
	counts []int64
	// scratch backs RandomAlive's low-liveness fallback filter.
	scratch []int
}

// Engine returns the engine driving this phase.
func (c *Ctx) Engine() *Engine { return c.e }

// Slot returns the slot being processed.
func (c *Ctx) Slot() int { return c.slot }

// Node returns the node occupying the slot being processed.
func (c *Ctx) Node() *Node { return &c.e.nodes[c.slot] }

// Round returns the index of the round currently executing.
func (c *Ctx) Round() int { return c.e.round }

// Rand returns the slot's random stream for this (protocol, phase). Every
// random decision of an exchange — partner choice, payload sampling, loss —
// must draw from here so the round is independent of worker scheduling.
func (c *Ctx) Rand() *Stream { return &c.rng }

// Pad returns the worker's scratch pad.
func (c *Ctx) Pad() *Pad { return &c.pad }

// Count adds bytes to the given protocol's bandwidth for this round,
// accumulated in the worker's meter shard and folded into the shared Meter
// at the round barrier. Negative protocol indices (unmetered protocols)
// are ignored. This is the only way phase code may meter: the shared Meter
// itself is not safe to touch from a parallel phase.
func (c *Ctx) Count(protocol, bytes int) {
	if protocol >= 0 {
		c.counts[protocol] += int64(bytes)
	}
}

// Deliver decides whether one request/response exchange from the current
// slot to the given slot goes through: the partition (if any) is consulted
// first, then the loss rate, drawing from the slot's stream.
func (c *Ctx) Deliver(to int) bool {
	if !c.e.SameSide(c.slot, to) {
		return false
	}
	if c.e.lossRate <= 0 {
		return true
	}
	return c.rng.Float64() >= c.e.lossRate
}

// RandomAlive returns a uniformly random alive node other than exclude
// (pass a negative slot to exclude nothing), or nil if none exists — the
// phase-context twin of Engine.RandomAlive, drawing from the slot's stream.
// The low-liveness fallback scans the node table directly rather than
// going through the engine's alive-slot cache: a lazy cache rebuild would
// mutate the very backing array other workers' shards alias if a hook
// killed a node mid-round.
func (c *Ctx) RandomAlive(exclude int) *Node {
	e := c.e
	if len(e.nodes) == 0 {
		return nil
	}
	for tries := 0; tries < 16; tries++ {
		n := &e.nodes[c.rng.Intn(len(e.nodes))]
		if n.Alive && n.Slot != exclude {
			return n
		}
	}
	candidates := c.scratch[:0]
	for i := range e.nodes {
		if e.nodes[i].Alive && i != exclude {
			candidates = append(candidates, i)
		}
	}
	c.scratch = candidates
	if len(candidates) == 0 {
		return nil
	}
	return &e.nodes[candidates[c.rng.Intn(len(candidates))]]
}

// Rand exposes the engine's serial random source. It drives everything that
// happens *between* rounds — bootstrap, churn, failure and partition
// injection — and must not be touched from the parallel phases (phase code
// draws from Ctx.Rand instead).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Round returns the index of the round currently executing (or, between
// rounds, the number of completed rounds).
func (e *Engine) Round() int { return e.round }

// Meter returns the bandwidth meter.
func (e *Engine) Meter() *Meter { return e.meter }

// SetLossRate configures the probability that any single gossip exchange
// fails in transit (request lost). Used by failure-injection tests.
func (e *Engine) SetLossRate(p float64) { e.lossRate = p }

// LossRate returns the configured message loss probability.
func (e *Engine) LossRate() float64 { return e.lossRate }

// SetWorkers sets how many workers shard the parallel phases of a round.
// n <= 0 selects GOMAXPROCS. The result of a run is byte-identical for
// every worker count; workers only change how fast a round executes.
// SetWorkers may be called between rounds at any time.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.workers = n
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// MeterAware is implemented by protocols that meter their own bandwidth;
// Register hands them their meter index.
type MeterAware interface {
	SetMeterIndex(int)
}

// Register appends a protocol to the stack. Protocols step in registration
// order within each round, mirroring a PeerSim cycle-driven protocol stack
// (every protocol's phases complete before the next protocol starts).
// Register must be called before AddNodes.
func (e *Engine) Register(p Protocol) int {
	e.protocols = append(e.protocols, p)
	if io, ok := p.(InboxOwner); ok {
		e.inboxes = append(e.inboxes, io.Inboxes())
	} else {
		e.inboxes = append(e.inboxes, nil)
	}
	idx := e.meter.AddProtocol(p.Name())
	if ma, ok := p.(MeterAware); ok {
		ma.SetMeterIndex(idx)
	}
	return len(e.protocols) - 1
}

// Protocols returns the registered protocol stack.
func (e *Engine) Protocols() []Protocol {
	out := make([]Protocol, len(e.protocols))
	copy(out, e.protocols)
	return out
}

// Observe appends a per-round observer.
func (e *Engine) Observe(o Observer) { e.observers = append(e.observers, o) }

// AddNodes creates n fresh nodes, returning their slots. The caller is
// expected to assign profiles (via the allocator) before initializing
// protocols with InitNode or Bootstrap. Growing the dense node table may
// move it: node pointers obtained before AddNodes are stale after.
func (e *Engine) AddNodes(n int) []int {
	slots := make([]int, 0, n)
	for i := 0; i < n; i++ {
		slot := len(e.nodes)
		e.nodes = append(e.nodes, Node{
			Slot:   slot,
			ID:     e.nextID,
			Alive:  true,
			Joined: e.round,
		})
		e.nextID++
		e.slotOfID = append(e.slotOfID, slot)
		slots = append(slots, slot)
	}
	e.aliveOK = false
	return slots
}

// InitNode runs every protocol's InitNode for the given slot. Call after
// the node's profile is assigned.
func (e *Engine) InitNode(slot int) {
	for _, p := range e.protocols {
		p.InitNode(e, slot)
	}
}

// Node returns the node occupying slot. The pointer aims into the dense
// node table and is stable until the next AddNodes.
func (e *Engine) Node(slot int) *Node { return &e.nodes[slot] }

// Size returns the total number of slots ever allocated (alive + dead).
func (e *Engine) Size() int { return len(e.nodes) }

// Lookup resolves a node ID to its node, or nil if unknown. IDs are dense
// and monotonically assigned, so this is a bounds check plus two slice
// loads — no hashing.
func (e *Engine) Lookup(id view.NodeID) *Node {
	if id < 0 || int64(id) >= int64(len(e.slotOfID)) {
		return nil
	}
	return &e.nodes[e.slotOfID[id]]
}

// IsAlive reports whether the node with the given ID exists and is alive.
func (e *Engine) IsAlive(id view.NodeID) bool {
	n := e.Lookup(id)
	return n != nil && n.Alive
}

// alive returns the cached alive-slot list (slot order), rebuilding it into
// the reused backing array if a liveness mutation invalidated it. The
// returned slice is engine-owned scratch: callers must not retain or mutate
// it, and any Kill/Revive/AddNodes invalidates it.
func (e *Engine) alive() []int {
	if !e.aliveOK {
		e.aliveSlots = e.aliveSlots[:0]
		for i := range e.nodes {
			if e.nodes[i].Alive {
				e.aliveSlots = append(e.aliveSlots, i)
			}
		}
		e.aliveOK = true
	}
	return e.aliveSlots
}

// AliveSlots returns the slots of all alive nodes in slot order. The slice
// is the caller's to keep (callers iterate it while killing nodes); use
// AliveSlotsAppend with a reused buffer to avoid the copy.
func (e *Engine) AliveSlots() []int {
	alive := e.alive()
	out := make([]int, len(alive))
	copy(out, alive)
	return out
}

// AliveSlotsAppend appends the slots of all alive nodes, in slot order, to
// dst and returns the extended slice — the allocation-free AliveSlots.
func (e *Engine) AliveSlotsAppend(dst []int) []int {
	return append(dst, e.alive()...)
}

// AliveCount returns the number of alive nodes.
func (e *Engine) AliveCount() int { return len(e.alive()) }

// RandomAlive returns a uniformly random alive node other than exclude
// (pass a negative slot to exclude nothing), or nil if none exists. It is
// O(1) in the common case and falls back to a scan when the population is
// mostly dead. It draws from the engine's serial source: use it for setup
// and inter-round injection only, never from a parallel phase (which has
// Ctx.RandomAlive).
func (e *Engine) RandomAlive(exclude int) *Node {
	if len(e.nodes) == 0 {
		return nil
	}
	for tries := 0; tries < 16; tries++ {
		n := &e.nodes[e.rng.Intn(len(e.nodes))]
		if n.Alive && n.Slot != exclude {
			return n
		}
	}
	candidates := e.randScratch[:0]
	for _, s := range e.alive() {
		if s != exclude {
			candidates = append(candidates, s)
		}
	}
	e.randScratch = candidates
	if len(candidates) == 0 {
		return nil
	}
	return &e.nodes[candidates[e.rng.Intn(len(candidates))]]
}

// Kill marks the node at slot dead. Dead nodes stop stepping and refuse
// exchanges; their descriptors decay out of peers' views.
func (e *Engine) Kill(slot int) {
	e.nodes[slot].Alive = false
	e.aliveOK = false
}

// Revive brings a dead node back (fresh join semantics: the caller must
// re-assign a profile and re-run InitNode).
func (e *Engine) Revive(slot int) {
	n := &e.nodes[slot]
	n.Alive = true
	n.Joined = e.round
	e.aliveOK = false
}

// KillFraction kills ceil(f × alive) uniformly random alive nodes and
// returns their slots. Used for catastrophic-failure experiments.
func (e *Engine) KillFraction(f float64) []int {
	alive := e.AliveSlots()
	n := int(f*float64(len(alive)) + 0.5)
	if n <= 0 {
		return nil
	}
	if n > len(alive) {
		n = len(alive)
	}
	e.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	killed := alive[:n]
	for _, s := range killed {
		e.Kill(s)
	}
	return killed
}

// DeliverExchange applies the configured loss rate to one request/response
// exchange, returning false if the exchange is lost in transit. It draws
// from the engine's serial source; in-round code uses Ctx.Deliver instead.
func (e *Engine) DeliverExchange() bool {
	if e.lossRate <= 0 {
		return true
	}
	return e.rng.Float64() >= e.lossRate
}

// Partition splits the alive population into the given number of groups;
// exchanges between nodes of different groups are dropped until Heal.
// Group assignment is balanced and drawn from the engine's random source,
// so partitions are as deterministic as everything else. Fewer than two
// groups heals instead.
func (e *Engine) Partition(groups int) {
	if groups < 2 {
		e.Heal()
		return
	}
	e.partition = make([]int, len(e.nodes))
	for i := range e.partition {
		e.partition[i] = -1
	}
	alive := e.AliveSlots()
	e.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for i, slot := range alive {
		e.partition[slot] = i % groups
	}
}

// Heal removes a network partition: every pair of nodes can exchange again.
func (e *Engine) Heal() { e.partition = nil }

// Partitioned reports whether a partition is in effect.
func (e *Engine) Partitioned() bool { return e.partition != nil }

// SameSide reports whether two slots can reach each other under the current
// partition. Nodes that joined after the split carry no group and are
// reachable from everywhere (they model fresh nodes with full connectivity).
func (e *Engine) SameSide(a, b int) bool {
	if e.partition == nil {
		return true
	}
	if a >= len(e.partition) || b >= len(e.partition) {
		return true
	}
	ga, gb := e.partition[a], e.partition[b]
	return ga < 0 || gb < 0 || ga == gb
}

// DeliverBetween decides whether one request/response exchange between two
// slots goes through: the partition (if any) is consulted first, then the
// loss rate. It draws from the engine's serial source; in-round code uses
// Ctx.Deliver instead.
func (e *Engine) DeliverBetween(from, to int) bool {
	if !e.SameSide(from, to) {
		return false
	}
	return e.DeliverExchange()
}

// Phase identifiers, used to salt the per-node streams so a protocol's
// phases draw from independent streams. The engine-driven Deliver merge
// draws no randomness, so it needs no salt — the constants (and with them
// every stream of every existing run) are unchanged from the serial-Deliver
// engine.
const (
	phaseRefresh = iota
	phasePlan
	phaseAbsorb
	phaseCount
)

// phaseJob is one shard of a parallel phase, handed to a pool worker. The
// job carries everything the worker needs so parked workers hold no engine
// reference (which would keep a finalized engine alive forever). A job is
// either a phase shard (p non-nil: run slots through one protocol phase)
// or a Deliver merge shard (boxes non-nil: link planned exchanges whose
// target falls in [lo, hi)).
type phaseJob struct {
	ctx   *Ctx
	p     Protocol
	salt  uint64
	phase int
	slots []int

	boxes  []*Inbox
	nodes  []Node
	alive  []int
	lo, hi int

	done chan<- struct{}
}

// poolWorker executes phase and merge shards until the jobs channel closes
// (when the owning engine is garbage-collected).
func poolWorker(jobs <-chan phaseJob) {
	for j := range jobs {
		if j.boxes != nil {
			for _, b := range j.boxes {
				b.merge(j.nodes, j.alive, j.lo, j.hi)
			}
		} else {
			runShard(j.ctx, j.p, j.salt, j.phase, j.slots)
		}
		j.done <- struct{}{}
	}
}

// runShard processes one contiguous run of alive slots for one phase,
// deriving each slot's stream from (seed, node, round, protocol, phase) —
// the counter-based discipline that makes sharding invisible to the result.
func runShard(ctx *Ctx, p Protocol, salt uint64, phase int, slots []int) {
	e := ctx.e
	for _, slot := range slots {
		n := &e.nodes[slot]
		if !n.Alive {
			// A node can die mid-round (not in the base model, but hooks
			// may kill it); re-check before each phase.
			continue
		}
		ctx.slot = slot
		ctx.rng = NewStream(e.seed, n.ID, e.round, salt)
		switch phase {
		case phaseRefresh:
			p.Refresh(ctx)
		case phasePlan:
			p.Plan(ctx)
		default:
			p.Absorb(ctx)
		}
	}
}

// minShardSlots bounds how finely a phase is sharded: below this many slots
// per worker the dispatch overhead outweighs the parallelism. Purely a
// performance knob — sharding never changes results.
const minShardSlots = 64

// ensureCtxs grows the per-worker context table to the configured worker
// count (preserving the scratch pads already grown) and sizes every
// worker's meter shard to the protocol count. Called between rounds only,
// so no phase holds a context pointer across the reallocation, and every
// shard is folded (zero) when resized.
func (e *Engine) ensureCtxs() {
	if len(e.ctxs) < e.workers {
		ctxs := make([]Ctx, e.workers)
		copy(ctxs, e.ctxs)
		e.ctxs = ctxs
		for i := range e.ctxs {
			e.ctxs[i].e = e
		}
	}
	np := len(e.meter.current)
	for i := range e.ctxs {
		if len(e.ctxs[i].counts) < np {
			e.ctxs[i].counts = make([]int64, np)
		}
	}
}

// foldMeters folds every worker's meter shard into the shared Meter — the
// serial tail of the round barrier, O(workers × protocols). Folding is
// int64 addition, so the round's totals are exact and independent of which
// worker metered which slot.
func (e *Engine) foldMeters() {
	for i := range e.ctxs {
		counts := e.ctxs[i].counts
		for p, v := range counts {
			if v != 0 {
				e.meter.current[p] += v
				counts[p] = 0
			}
		}
	}
}

// ensurePool tops the worker pool up to the configured worker count. The
// goroutines park on the jobs channel between phases; a finalizer closes
// the channel once the engine is unreachable, so abandoned engines (the
// evaluation harness creates thousands) do not leak their pools.
func (e *Engine) ensurePool() {
	if e.jobs == nil {
		e.jobs = make(chan phaseJob, 64)
		e.done = make(chan struct{}, 64)
		jobs := e.jobs
		runtime.SetFinalizer(e, func(*Engine) { close(jobs) })
	}
	for ; e.poolSize < e.workers; e.poolSize++ {
		go poolWorker(e.jobs)
	}
}

// runPhase executes one parallel phase of one protocol over the alive
// slots: serially in-place for a single worker (or a population too small
// to shard), otherwise fanned out over the pool in contiguous shards.
func (e *Engine) runPhase(p Protocol, salt uint64, phase int, alive []int) {
	w := e.workers
	if max := len(alive) / minShardSlots; w > max {
		// Floor division: every dispatched shard carries at least
		// minShardSlots slots (max 0 collapses to the serial path).
		w = max
	}
	if w <= 1 {
		runShard(&e.ctxs[0], p, salt, phase, alive)
		return
	}
	e.ensurePool()
	chunk := (len(alive) + w - 1) / w
	sent := 0
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= len(alive) {
			break
		}
		hi := lo + chunk
		if hi > len(alive) {
			hi = len(alive)
		}
		e.jobs <- phaseJob{
			ctx:   &e.ctxs[i],
			p:     p,
			salt:  salt,
			phase: phase,
			slots: alive[lo:hi],
			done:  e.done,
		}
		sent++
	}
	for ; sent > 0; sent-- {
		<-e.done
	}
}

// deliver runs one protocol's Deliver phase: merge the exchanges planned
// into its inboxes into per-target receive lists, one worker per
// contiguous destination shard. Every worker scans senders in ascending
// slot order, so each target's list is identical to the serial slot-order
// delivery of the pre-sharded engine — at any worker count. Protocols
// without inboxes (pure-lookup layers) skip the phase entirely.
func (e *Engine) deliver(pi int, alive []int) {
	boxes := e.inboxes[pi]
	if len(boxes) == 0 {
		return
	}
	w := e.workers
	if max := len(alive) / minShardSlots; w > max {
		w = max
	}
	size := len(e.nodes)
	if w <= 1 {
		for _, b := range boxes {
			b.merge(e.nodes, alive, 0, size)
		}
		return
	}
	e.ensurePool()
	chunk := (size + w - 1) / w
	sent := 0
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= size {
			break
		}
		hi := lo + chunk
		if hi > size {
			hi = size
		}
		e.jobs <- phaseJob{
			boxes: boxes,
			nodes: e.nodes,
			alive: alive,
			lo:    lo,
			hi:    hi,
			done:  e.done,
		}
		sent++
	}
	for ; sent > 0; sent-- {
		<-e.done
	}
}

// RunRound executes one full round: for each protocol in registration
// order, the parallel Refresh and Plan phases, the parallel per-destination
// Deliver merge, and the parallel Absorb phase; then the round barrier
// folds the per-worker meter shards, snapshots the round's bandwidth, and
// runs observers. The result is byte-identical for every worker count. It
// reports whether any observer requested a stop.
func (e *Engine) RunRound() (stop bool) {
	stop, _ = e.runRoundSharded(0, len(e.nodes), nil)
	return stop
}

// Run executes up to maxRounds rounds, stopping early if an observer asks
// to. It returns the number of rounds executed in this call.
func (e *Engine) Run(maxRounds int) (int, error) {
	return e.RunContext(context.Background(), maxRounds)
}

// RunContext is Run with cooperative cancellation: the context is checked
// at every round boundary (never mid-round, so the engine is always left in
// a snapshot-safe state), and a cancelled run returns the rounds it actually
// executed together with ctx.Err(). This is what lets a serving layer pause
// or stop a job cleanly, and what lets the CLI turn SIGINT into a final
// checkpoint instead of dying mid-round.
func (e *Engine) RunContext(ctx context.Context, maxRounds int) (int, error) {
	if len(e.protocols) == 0 {
		return 0, ErrNoProtocols
	}
	for i := 0; i < maxRounds; i++ {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		if e.RunRound() {
			return i + 1, nil
		}
	}
	return maxRounds, nil
}

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{round=%d nodes=%d alive=%d protocols=%d workers=%d}",
		e.round, len(e.nodes), e.AliveCount(), len(e.protocols), e.workers)
}
