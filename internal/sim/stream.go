package sim

import "sosf/internal/view"

// Stream is a counter-based random stream in the splitmix64 family. One
// Stream is derived per (seed, node, round, protocol, phase) tuple, which is
// what makes intra-round parallelism deterministic: a node's draws depend
// only on that key, never on how slots are sharded across workers or on
// which other node happened to step first. Creating a stream is two dozen
// integer operations, so the engine derives them on the fly for every slot
// of every phase.
//
// The zero value is a valid stream (for the all-zero key); engine code
// always goes through NewStream.
type Stream struct {
	state uint64
}

// mix64 is the splitmix64 finalizer (Stafford variant 13): a bijective
// avalanche over 64 bits. It is both the key mixer and the output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// golden is 2^64 / phi, the splitmix64 sequence increment.
const golden = 0x9e3779b97f4a7c15

// NewStream derives the stream for one node's turn: seed is the engine
// seed, id the node's never-reused identity, round the current round, and
// salt distinguishes the (protocol, phase) pair so stacked protocols do not
// replay each other's draws.
func NewStream(seed int64, id view.NodeID, round int, salt uint64) Stream {
	s := mix64(uint64(seed) ^ golden)
	s = mix64(s ^ uint64(id)*0xff51afd7ed558ccd)
	s = mix64(s ^ uint64(round)*0xc4ceb9fe1a85ec53)
	s = mix64(s ^ salt*golden)
	return Stream{state: s}
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Int63 returns a uniformly random int64 in [0, 2^63).
func (s *Stream) Int63() int64 { return int64(s.Uint64() >> 1) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0,
// mirroring math/rand. Power-of-two moduli take the fast mask path; other
// moduli use rejection sampling, so the result is exactly uniform.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("sim: Stream.Intn with n <= 0")
	}
	if n&(n-1) == 0 {
		return int(s.Uint64() & uint64(n-1))
	}
	limit := uint64(1)<<63 - 1 - (uint64(1)<<63)%uint64(n)
	v := s.Uint64() >> 1
	for v > limit {
		v = s.Uint64() >> 1
	}
	return int(v % uint64(n))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Shuffle performs a Fisher-Yates shuffle of n elements via swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

var _ view.Rand = (*Stream)(nil)
