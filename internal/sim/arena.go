package sim

import "sosf/internal/arena"

// Carve returns a zero-length slice with capacity n cut from a chunked
// arena — see arena.Carve for the allocation discipline. Re-exported here
// because every protocol package carves its per-slot buffers through sim;
// the generic itself lives in internal/arena so slot-indexed containers
// that sim depends on (like view.Table) can carve too without a cycle.
func Carve[T any](a *[]T, n int) []T { return arena.Carve(a, n) }
