package sim

// carveBlock is how many carved buffers one arena block holds (times the
// per-carve capacity). Large enough that per-slot buffer allocation is
// amortized to noise, small enough that a part-filled final block wastes
// little.
const carveBlock = 512

// Carve returns a zero-length slice with capacity n cut from a chunked
// arena: when the current block lacks room, a fresh block holding
// carveBlock × n elements is allocated, and exhausted blocks stay
// referenced by the slices carved from them. Protocols use it to give every
// slot's plan record its retained payload buffer with one allocation per
// few hundred slots instead of one per slot — population setup is where
// the evaluation harness sheds most of its garbage, since every sweep cell
// builds a fresh system.
//
// The carved slice is full-capacity (three-index): appending within n stays
// inside the arena, appending beyond n falls back to a private heap copy,
// so an underestimated capacity costs one allocation, never corruption.
func Carve[T any](arena *[]T, n int) []T {
	if n <= 0 {
		return nil
	}
	if cap(*arena)-len(*arena) < n {
		*arena = make([]T, 0, carveBlock*n)
	}
	start := len(*arena)
	*arena = (*arena)[:start+n]
	return (*arena)[start : start : start+n]
}
