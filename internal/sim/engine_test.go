package sim

import (
	"fmt"
	"testing"

	"sosf/internal/view"
)

// countingProtocol records how many times each slot stepped (one step ==
// one Plan phase call; the counter storage is pre-grown in InitNode and
// each bump writes only the slot's own cell, so the protocol stays
// race-free at any worker count).
type countingProtocol struct {
	name  string
	inits []int
	steps []int
}

func (c *countingProtocol) Name() string { return c.name }

func (c *countingProtocol) InitNode(e *Engine, slot int) {
	for len(c.inits) <= slot {
		c.inits = append(c.inits, 0)
		c.steps = append(c.steps, 0)
	}
	c.inits[slot]++
}

func (c *countingProtocol) Refresh(ctx *Ctx) {}

func (c *countingProtocol) Plan(ctx *Ctx) { c.steps[ctx.Slot()]++ }

func (c *countingProtocol) Absorb(ctx *Ctx) {}

func newTestEngine(t *testing.T, n int) (*Engine, *countingProtocol) {
	t.Helper()
	e := New(42)
	p := &countingProtocol{name: "count"}
	e.Register(p)
	slots := e.AddNodes(n)
	for _, s := range slots {
		e.InitNode(s)
	}
	return e, p
}

func TestRunStepsEveryAliveNode(t *testing.T) {
	e, p := newTestEngine(t, 10)
	rounds, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
	for slot, n := range p.steps {
		if n != 3 {
			t.Fatalf("slot %d stepped %d times, want 3", slot, n)
		}
	}
}

func TestRunWithoutProtocolsFails(t *testing.T) {
	e := New(1)
	if _, err := e.Run(1); err == nil {
		t.Fatal("Run on an empty stack should fail")
	}
}

func TestDeadNodesDoNotStep(t *testing.T) {
	e, p := newTestEngine(t, 4)
	e.Kill(2)
	if _, err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	if p.steps[2] != 0 {
		t.Fatalf("dead slot stepped %d times, want 0", p.steps[2])
	}
	if e.AliveCount() != 3 {
		t.Fatalf("AliveCount = %d, want 3", e.AliveCount())
	}
}

func TestObserverStopsRun(t *testing.T) {
	e, _ := newTestEngine(t, 4)
	e.Observe(ObserverFunc(func(e *Engine) bool { return e.Round() >= 2 }))
	rounds, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want early stop after 2", rounds)
	}
}

func TestNodeIDsNeverReused(t *testing.T) {
	e, _ := newTestEngine(t, 3)
	e.Kill(0)
	slots := e.AddNodes(2)
	ids := map[view.NodeID]bool{}
	for _, n := range []int{0, 1, 2, slots[0], slots[1]} {
		id := e.Node(n).ID
		if ids[id] {
			t.Fatalf("node ID %d reused", id)
		}
		ids[id] = true
	}
}

func TestLookup(t *testing.T) {
	e, _ := newTestEngine(t, 2)
	id := e.Node(1).ID
	if n := e.Lookup(id); n == nil || n.Slot != 1 {
		t.Fatalf("Lookup(%d) = %v, want slot 1", id, n)
	}
	if e.Lookup(view.NodeID(999)) != nil {
		t.Fatal("Lookup of unknown ID should return nil")
	}
	if !e.IsAlive(id) {
		t.Fatal("node 1 should be alive")
	}
	e.Kill(1)
	if e.IsAlive(id) {
		t.Fatal("killed node should not be alive")
	}
}

func TestKillFraction(t *testing.T) {
	e, _ := newTestEngine(t, 100)
	killed := e.KillFraction(0.3)
	if len(killed) != 30 {
		t.Fatalf("killed %d nodes, want 30", len(killed))
	}
	if e.AliveCount() != 70 {
		t.Fatalf("AliveCount = %d, want 70", e.AliveCount())
	}
	if got := e.KillFraction(0); got != nil {
		t.Fatalf("KillFraction(0) = %v, want nil", got)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []int {
		e := New(seed)
		p := &countingProtocol{name: "count"}
		e.Register(p)
		for _, s := range e.AddNodes(50) {
			e.InitNode(s)
		}
		var order []int
		e.Observe(ObserverFunc(func(e *Engine) bool {
			order = append(order, e.KillFraction(0.02)...)
			return false
		}))
		if _, err := e.Run(20); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same && len(a) > 0 {
		t.Fatal("different seeds should (overwhelmingly) produce different traces")
	}
}

func TestMeterHistory(t *testing.T) {
	m := NewMeter()
	a := m.AddProtocol("a")
	b := m.AddProtocol("b")
	m.Count(a, 10)
	m.Count(b, 5)
	m.Count(a, 1)
	m.EndRound()
	m.Count(b, 7)
	m.EndRound()
	if m.Rounds() != 2 {
		t.Fatalf("Rounds = %d, want 2", m.Rounds())
	}
	if got := m.RoundTotal(0, a); got != 11 {
		t.Fatalf("round 0 proto a = %d, want 11", got)
	}
	if got := m.RoundSum(0); got != 16 {
		t.Fatalf("round 0 sum = %d, want 16", got)
	}
	if got := m.RoundSum(1, a); got != 0 {
		t.Fatalf("round 1 proto a = %d, want 0", got)
	}
	if got := m.Total(b); got != 12 {
		t.Fatalf("total proto b = %d, want 12", got)
	}
}

func TestChurnReplacesNodes(t *testing.T) {
	e, _ := newTestEngine(t, 100)
	joined := 0
	e.Observe(&Churn{
		Rate: 0.1,
		Join: func(e *Engine, slots []int) {
			joined += len(slots)
			for _, s := range slots {
				e.InitNode(s)
			}
		},
	})
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if e.AliveCount() != 100 {
		t.Fatalf("population drifted: alive = %d, want 100", e.AliveCount())
	}
	if joined != 50 {
		t.Fatalf("joined = %d, want 50 (10%% of 100 over 5 rounds)", joined)
	}
}

func TestChurnWindow(t *testing.T) {
	e, _ := newTestEngine(t, 50)
	e.Observe(&Churn{
		Rate: 0.1, From: 2, Until: 3,
		Join: func(e *Engine, slots []int) {
			for _, s := range slots {
				e.InitNode(s)
			}
		},
	})
	if _, err := e.Run(6); err != nil {
		t.Fatal(err)
	}
	// Churn only in rounds 2 and 3: 2 × 5 nodes replaced.
	if e.Size() != 60 {
		t.Fatalf("total slots = %d, want 60", e.Size())
	}
}

func TestWireSizes(t *testing.T) {
	if got := DescriptorPayload(0); got != HeaderBytes {
		t.Fatalf("empty payload = %d, want header only (%d)", got, HeaderBytes)
	}
	if got := DescriptorPayload(3); got != HeaderBytes+3*DescriptorBytes {
		t.Fatalf("DescriptorPayload(3) = %d", got)
	}
	if got := PortRecordPayload(2); got != HeaderBytes+2*PortRecordBytes {
		t.Fatalf("PortRecordPayload(2) = %d", got)
	}
	if got := PortQueryPayload(); got != HeaderBytes+PortQueryBytes {
		t.Fatalf("PortQueryPayload() = %d", got)
	}
}

func TestDeliverExchangeLoss(t *testing.T) {
	e := New(3)
	e.SetLossRate(1.0)
	if e.DeliverExchange() {
		t.Fatal("loss rate 1.0 must drop every exchange")
	}
	e.SetLossRate(0)
	if !e.DeliverExchange() {
		t.Fatal("loss rate 0 must deliver every exchange")
	}
}

func TestPartitionBlocksCrossGroupExchanges(t *testing.T) {
	e := New(11)
	e.AddNodes(10)
	e.Partition(2)
	if !e.Partitioned() {
		t.Fatal("Partitioned() = false after Partition(2)")
	}
	sides := make(map[bool]int)
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			same := e.SameSide(a, b)
			sides[same]++
			if e.DeliverBetween(a, b) != same {
				t.Fatalf("DeliverBetween(%d, %d) disagrees with SameSide", a, b)
			}
		}
	}
	if sides[true] == 0 || sides[false] == 0 {
		t.Fatalf("partition should split pairs, got %v", sides)
	}
	// Nodes that join after the split carry no group: reachable everywhere.
	fresh := e.AddNodes(1)[0]
	for a := 0; a < 10; a++ {
		if !e.SameSide(a, fresh) {
			t.Fatal("post-split joiner must be unrestricted")
		}
	}
	e.Heal()
	if e.Partitioned() {
		t.Fatal("Partitioned() = true after Heal")
	}
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			if !e.SameSide(a, b) {
				t.Fatal("healed network must be whole")
			}
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	e := New(7)
	e.AddNodes(90)
	e.Partition(3)
	counts := make(map[int]int)
	// Count group sizes via SameSide equivalence classes against three
	// representatives.
	reps := []int{}
	for s := 0; s < 90 && len(reps) < 3; s++ {
		isNew := true
		for _, r := range reps {
			if e.SameSide(r, s) {
				isNew = false
				break
			}
		}
		if isNew {
			reps = append(reps, s)
		}
	}
	if len(reps) != 3 {
		t.Fatalf("found %d groups, want 3", len(reps))
	}
	for s := 0; s < 90; s++ {
		for _, r := range reps {
			if e.SameSide(r, s) {
				counts[r]++
			}
		}
	}
	for r, n := range counts {
		if n != 30 {
			t.Fatalf("group of rep %d has %d members, want 30", r, n)
		}
	}
}

func TestPartitionFewerThanTwoGroupsHeals(t *testing.T) {
	e := New(3)
	e.AddNodes(4)
	e.Partition(2)
	e.Partition(1)
	if e.Partitioned() {
		t.Fatal("Partition(1) must heal")
	}
}

// TestShardedDeliverAllocationFree pins the engine's own round loop — the
// parallel phases, the per-destination-shard Deliver merge, and the
// round-barrier meter fold — at zero heap allocations per round, at every
// worker count the full-stack guards use. The root-package alloc tests
// cover the protocols; this one isolates the engine so a regression in the
// sharding machinery itself (a lane buffer growing per round, a fold
// allocating per worker) is attributed to the right layer.
func TestShardedDeliverAllocationFree(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := New(77)
			e.SetWorkers(workers)
			p := &probeProtocol{}
			e.Register(p)
			for _, s := range e.AddNodes(2000) {
				e.InitNode(s)
			}
			const measured = 10
			// Warm rounds surface every lazy structure (worker pool,
			// phase contexts, inbox lanes); Reserve pre-grows the meter
			// history the measured rounds will append to.
			e.Meter().Reserve(5 + 2*measured)
			if _, err := e.Run(5); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(measured, func() {
				if _, err := e.Run(1); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("engine round allocated %.1f times per round; the sharded Deliver path must stay allocation-free", allocs)
			}
		})
	}
}
