package sim

// Meter accumulates per-protocol, per-round bandwidth. Protocols report the
// serialized size of every message they put on the (simulated) wire; the
// meter keeps a full per-round history so experiments can plot bandwidth
// over time (the paper's Figure 4).
type Meter struct {
	names   []string
	current []int64   // bytes this round, per protocol
	history [][]int64 // history[round][protocol]
	// arena is the backing pool history rows are sliced from, so EndRound
	// allocates one block per arenaRounds rounds instead of one row per
	// round. Exhausted blocks stay referenced by the rows cut from them.
	arena []int64
}

// arenaRounds is how many rounds of history one arena block holds.
const arenaRounds = 1024

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{}
}

// AddProtocol registers a protocol name and returns its meter index.
// Indices match engine protocol registration order.
func (m *Meter) AddProtocol(name string) int {
	m.names = append(m.names, name)
	m.current = append(m.current, 0)
	return len(m.names) - 1
}

// Names returns the registered protocol names.
func (m *Meter) Names() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// Count adds bytes to the given protocol for the current round.
func (m *Meter) Count(protocol int, bytes int) {
	m.current[protocol] += int64(bytes)
}

// EndRound snapshots the current round's totals into the history and resets
// the per-round counters.
func (m *Meter) EndRound() {
	np := len(m.current)
	if cap(m.arena)-len(m.arena) < np {
		m.arena = make([]int64, 0, max(arenaRounds*np, np))
	}
	start := len(m.arena)
	m.arena = append(m.arena, m.current...)
	m.history = append(m.history, m.arena[start:len(m.arena):len(m.arena)])
	for i := range m.current {
		m.current[i] = 0
	}
}

// Reserve pre-allocates history storage for at least n further rounds, so
// the next n EndRound calls are guaranteed allocation-free. Benchmarks and
// allocation-regression tests call it before their timed region.
func (m *Meter) Reserve(n int) {
	if need := len(m.history) + n; need > cap(m.history) {
		h := make([][]int64, len(m.history), need)
		copy(h, m.history)
		m.history = h
	}
	np := len(m.current)
	if need := np * n; cap(m.arena)-len(m.arena) < need {
		m.arena = make([]int64, 0, need)
	}
}

// Rounds returns the number of completed (snapshotted) rounds.
func (m *Meter) Rounds() int { return len(m.history) }

// RoundTotal returns the bytes protocol p spent in round r.
func (m *Meter) RoundTotal(r, p int) int64 { return m.history[r][p] }

// RoundSum returns the total bytes across the given protocols in round r.
// With no protocols listed it sums all of them.
func (m *Meter) RoundSum(r int, protocols ...int) int64 {
	if len(protocols) == 0 {
		var sum int64
		for _, b := range m.history[r] {
			sum += b
		}
		return sum
	}
	var sum int64
	for _, p := range protocols {
		sum += m.history[r][p]
	}
	return sum
}

// Total returns all bytes spent by protocol p across the whole run.
func (m *Meter) Total(p int) int64 {
	var sum int64
	for _, row := range m.history {
		sum += row[p]
	}
	return sum
}
