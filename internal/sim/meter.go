package sim

// Meter accumulates per-protocol, per-round bandwidth. Protocols report the
// serialized size of every message they put on the (simulated) wire; the
// meter keeps a full per-round history so experiments can plot bandwidth
// over time (the paper's Figure 4).
type Meter struct {
	names   []string
	current []int64   // bytes this round, per protocol
	history [][]int64 // history[round][protocol]
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{}
}

// AddProtocol registers a protocol name and returns its meter index.
// Indices match engine protocol registration order.
func (m *Meter) AddProtocol(name string) int {
	m.names = append(m.names, name)
	m.current = append(m.current, 0)
	return len(m.names) - 1
}

// Names returns the registered protocol names.
func (m *Meter) Names() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// Count adds bytes to the given protocol for the current round.
func (m *Meter) Count(protocol int, bytes int) {
	m.current[protocol] += int64(bytes)
}

// EndRound snapshots the current round's totals into the history and resets
// the per-round counters.
func (m *Meter) EndRound() {
	row := make([]int64, len(m.current))
	copy(row, m.current)
	m.history = append(m.history, row)
	for i := range m.current {
		m.current[i] = 0
	}
}

// Rounds returns the number of completed (snapshotted) rounds.
func (m *Meter) Rounds() int { return len(m.history) }

// RoundTotal returns the bytes protocol p spent in round r.
func (m *Meter) RoundTotal(r, p int) int64 { return m.history[r][p] }

// RoundSum returns the total bytes across the given protocols in round r.
// With no protocols listed it sums all of them.
func (m *Meter) RoundSum(r int, protocols ...int) int64 {
	if len(protocols) == 0 {
		var sum int64
		for _, b := range m.history[r] {
			sum += b
		}
		return sum
	}
	var sum int64
	for _, p := range protocols {
		sum += m.history[r][p]
	}
	return sum
}

// Total returns all bytes spent by protocol p across the whole run.
func (m *Meter) Total(p int) int64 {
	var sum int64
	for _, row := range m.history {
		sum += row[p]
	}
	return sum
}
