package serve

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// spool is a per-job append-only JSONL event log on disk. The job's event
// sink appends one line per round (each append is a single Write, so the
// file always ends on a line boundary); any number of SSE followers tail
// it concurrently at their own offsets. Because the spool persists across
// pause, eviction, and restore, a follower replaying it from offset 0 sees
// the one canonical event stream of the run regardless of how many times
// the job's in-memory system came and went.
type spool struct {
	path string

	mu       sync.Mutex
	f        *os.File      // append handle; nil once closed
	size     int64         // bytes durably appended
	done     bool          // the job is terminal: no further appends
	writeErr error         // first append failure, surfaced to followers
	changed  chan struct{} // closed and replaced on every append / state change
}

// newSpool creates (or truncates) the spool file.
func newSpool(path string) (*spool, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &spool{path: path, f: f, changed: make(chan struct{})}, nil
}

// Write appends one event line. It implements io.Writer so sosf.JSONLSink
// can drive it directly; the sink encodes each event as exactly one Write.
func (s *spool) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("serve: spool %s is closed", s.path)
	}
	n, err := s.f.Write(p)
	if err != nil {
		// A half-written line must not reach followers: freeze the spool
		// at the last good boundary and surface the failure.
		if s.writeErr == nil {
			s.writeErr = err
		}
		s.broadcastLocked()
		return n, err
	}
	s.size += int64(n)
	s.broadcastLocked()
	return n, nil
}

// markDone declares the job terminal: followers drain to size and stop.
func (s *spool) markDone() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	if s.f != nil {
		s.f.Sync()
	}
	s.broadcastLocked()
}

// close releases the append handle (markDone first if the stream should
// terminate cleanly) and removes the file when remove is set.
func (s *spool) close(remove bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	s.done = true
	if remove {
		os.Remove(s.path)
	}
	s.broadcastLocked()
}

func (s *spool) broadcastLocked() {
	close(s.changed)
	s.changed = make(chan struct{})
}

// state reports the current append frontier, whether the stream is
// complete, and a channel that closes on the next change.
func (s *spool) state() (size int64, done bool, err error, changed <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size, s.done, s.writeErr, s.changed
}

// follower reads a spool from the beginning on its own file handle.
type follower struct {
	sp  *spool
	r   *os.File
	off int64
}

// newFollower opens an independent read handle on the spool.
func (s *spool) newFollower() (*follower, error) {
	r, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	return &follower{sp: s, r: r}, nil
}

// next blocks until more complete lines exist past the follower's offset
// (or the stream is done / cancelled) and returns them. A nil chunk with
// nil error means the stream completed; cancellation returns the cancel
// channel's meaning as io.EOF-free ctxErr.
func (f *follower) next(cancel <-chan struct{}) ([]byte, error) {
	for {
		size, done, werr, changed := f.sp.state()
		if f.off < size {
			chunk := make([]byte, size-f.off)
			if _, err := io.ReadFull(f.r, chunk); err != nil {
				return nil, err
			}
			f.off = size
			return chunk, nil
		}
		if werr != nil {
			return nil, werr
		}
		if done {
			return nil, nil
		}
		select {
		case <-changed:
		case <-cancel:
			return nil, errFollowCancelled
		}
	}
}

// close releases the follower's read handle.
func (f *follower) close() { f.r.Close() }

// errFollowCancelled reports that the follower's consumer went away.
var errFollowCancelled = fmt.Errorf("serve: event follower cancelled")
