// Package serve turns the sosf library into a long-running, multi-tenant
// simulation service: an HTTP API that manages many concurrent simulation
// jobs, streams their per-round events live over SSE, evicts idle jobs to
// checkpoints so paused long-horizon runs cost no memory, and exposes a
// Prometheus-text /metrics endpoint backed by a central stats registry.
// It is the subsystem behind `sos serve`.
//
// # Jobs
//
// A job is one simulation run: a DSL source (or a JSON job spec, normalized
// to canonical DSL on submission) plus run options. Jobs follow `sos play`
// semantics — run-to-end, round budget extended to the scenario horizon —
// so a job's event stream is byte-identical to
// `sos play -events jsonl` of the same spec, no matter how many other jobs
// share the server. That determinism is the paper's contract lifted to a
// serving system, and it is enforced by tests and the CI serve-smoke gate.
//
// # Job state machine
//
//		                 start                 pause
//		pending ───────────────────▶ running ◀───────▶ paused
//		                                │     start       │ (evictor,
//		                                │                 ▼  LRU under budget)
//		                                │              evicted
//		                                │     start  ◀────┘ (transparent restore)
//		                     round == budget │ stop │ error
//		                                ▼
//		                         done / failed
//
//	  - pending: submitted, never started; no simulation state exists yet.
//	  - running: a runner goroutine steps one round at a time through
//	    System.StepContext; pause/stop cancel the context and take effect at
//	    the next round boundary, never mid-round.
//	  - paused: parked between rounds, system resident in memory.
//	  - evicted: paused, but the full run state has been checkpointed to
//	    <dir>/<id>.sosnap and the in-memory system released. Eviction is
//	    driven by a configurable resident-system budget (LRU over paused
//	    jobs); the next start restores the checkpoint transparently, and the
//	    concatenated event stream stays byte-identical to an uninterrupted
//	    run (the PR 5 snapshot contract).
//	  - done / failed: terminal. The final report is retained and the
//	    in-memory system released; the event spool remains replayable.
//
// # Event streaming
//
// Every job appends its RoundEvents, in the exact JSONL encoding of
// `sos play -events jsonl`, to a per-job spool file. GET /jobs/{id}/events
// replays the spool from round 0 and then follows live appends until the
// job reaches a terminal state — so a subscriber can attach at any time
// (before the first round, mid-run, after eviction and restore, or after
// completion) and always observe the same byte stream.
//
// # Metrics
//
// The Registry is a small central stats registry in the spirit of
// aistore's stats package: named counter/gauge families with labels,
// rendered in Prometheus text exposition format. The server feeds it job
// state counts, round throughput, per-protocol bandwidth (from the
// engine's Meter via sosf.(*System).ProtocolBandwidth), eviction and
// restore counters, and restore latency.
package serve
