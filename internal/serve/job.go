package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sosf"
)

// State is a job's position in the lifecycle documented in doc.go.
type State string

// The job states. Paused and evicted differ only in residency: an evicted
// job's run state lives in a checkpoint file instead of memory.
const (
	StatePending State = "pending"
	StateRunning State = "running"
	StatePaused  State = "paused"
	StateEvicted State = "evicted"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// terminal reports whether a state accepts no further rounds.
func (s State) terminal() bool { return s == StateDone || s == StateFailed }

// errConflict marks lifecycle requests that the job's current state
// refuses (HTTP 409).
type errConflict struct{ msg string }

func (e errConflict) Error() string { return e.msg }

// Job is one simulation run managed by the server. All fields behind mu;
// the runner goroutine steps the system one round at a time so pause and
// stop always land on a round boundary.
type Job struct {
	id  string
	srv *Server
	cfg *jobConfig

	mu       sync.Mutex
	state    State
	sys      *sosf.System // resident run state (nil when pending/evicted/terminal)
	budget   int          // total rounds, play semantics (set at first build)
	round    int          // completed rounds
	err      error        // terminal failure
	report   *sosf.Report // final report, captured at completion
	spool    *spool
	snapPath string // eviction checkpoint (state == evicted)
	touch    int64  // server LRU tick of the last lifecycle access
	cancel   context.CancelFunc
	runDone  chan struct{}
	changed  chan struct{} // closed and replaced on every state transition
	// pendingHeals queues the rounds of self-healing repairs until the
	// next round that reports full convergence, which resolves each into a
	// heal-latency sample for /metrics.
	pendingHeals []int
}

// setStateLocked transitions the state and wakes waiters.
func (j *Job) setStateLocked(s State) {
	j.state = s
	close(j.changed)
	j.changed = make(chan struct{})
}

// buildLocked constructs the job's sosf.System from its retained recipe —
// fresh for a first start, from the eviction checkpoint when restore is
// set — and wires the event sink: every round appends the canonical JSONL
// line to the spool and feeds the server's stats registry.
func (j *Job) buildLocked(restore bool) error {
	var extra []sosf.Option
	if restore {
		extra = append(extra, sosf.WithRestoreFrom(j.snapPath))
	}
	sys, err := sosf.New(j.cfg.source, j.cfg.options(extra...)...)
	if err != nil {
		return err
	}
	names := sys.ProtocolNames()
	sink := sosf.JSONLSink(j.spool)
	sys.Subscribe(func(ev sosf.RoundEvent) {
		sink(ev)
		j.srv.noteRound(j, sys, names, ev)
	})
	budget := sys.RoundBudget()
	if h := sys.ScenarioHorizon(); h > budget {
		budget = h
	}
	j.sys, j.budget, j.round = sys, budget, sys.Round()
	return nil
}

// start moves a pending, paused, or evicted job to running, restoring the
// eviction checkpoint transparently if needed. Starting a running job is a
// no-op; starting a terminal job is a conflict.
func (j *Job) start() error {
	j.mu.Lock()
	j.touch = j.srv.tickLRU()
	switch j.state {
	case StateRunning:
		j.mu.Unlock()
		return nil
	case StateDone, StateFailed:
		j.mu.Unlock()
		return errConflict{fmt.Sprintf("job %s is %s", j.id, j.state)}
	case StatePending:
		if err := j.buildLocked(false); err != nil {
			j.failLocked(err)
			j.mu.Unlock()
			return err
		}
	case StateEvicted:
		t0 := time.Now()
		if err := j.buildLocked(true); err != nil {
			j.failLocked(fmt.Errorf("restore from %s: %w", j.snapPath, err))
			j.mu.Unlock()
			return err
		}
		j.srv.noteRestore(time.Since(t0))
		os.Remove(j.snapPath) // the checkpoint is consumed; a re-eviction rewrites it
		j.snapPath = ""
	case StatePaused:
		// Resident; just resume.
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.runDone = make(chan struct{})
	j.setStateLocked(StateRunning)
	go j.runLoop(ctx, j.sys, j.budget, j.runDone)
	j.mu.Unlock()
	j.srv.maybeEvict()
	return nil
}

// runLoop steps the system one round at a time until the budget is
// exhausted, the run fails, or the controlling context is cancelled by
// pause/stop/delete. Rounds never split: cancellation lands on boundaries.
func (j *Job) runLoop(ctx context.Context, sys *sosf.System, budget int, done chan struct{}) {
	defer close(done)
	for {
		j.mu.Lock()
		if j.state != StateRunning {
			j.mu.Unlock()
			return
		}
		if j.round >= budget {
			j.finishLocked(nil)
			j.mu.Unlock()
			return
		}
		j.mu.Unlock()
		if _, err := sys.StepContext(ctx, 1); err != nil {
			if errors.Is(err, context.Canceled) {
				return // pause/stop/delete owns the state now
			}
			j.mu.Lock()
			j.finishLocked(err)
			j.mu.Unlock()
			return
		}
		j.mu.Lock()
		j.round = sys.Round()
		j.mu.Unlock()
	}
}

// noteHeals tracks heal-to-reconvergence latency: the round of every
// self-healing repair queues up until the system next reports full
// convergence, at which point each waiting heal contributes
// (converged round − heal round) to the /metrics latency summary. Called
// from the event sink on the runner goroutine, which never holds j.mu
// while stepping.
func (j *Job) noteHeals(ev sosf.RoundEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := 0; i < ev.Heals; i++ {
		j.pendingHeals = append(j.pendingHeals, ev.Round)
	}
	if ev.Converged && len(j.pendingHeals) > 0 {
		for _, hr := range j.pendingHeals {
			j.srv.stats.Add(metricHealLatSum, float64(ev.Round-hr))
			j.srv.stats.Add(metricHealLatCnt, 1)
		}
		j.pendingHeals = j.pendingHeals[:0]
	}
}

// finishLocked retires the job: the final report is captured, the
// in-memory system released (terminal jobs cost no RAM), and the spool
// sealed so followers drain and stop.
func (j *Job) finishLocked(err error) {
	if j.sys != nil {
		j.report = j.sys.Report()
		j.round = j.sys.Round()
		j.sys = nil
	}
	if err != nil {
		j.failLocked(err)
		return
	}
	j.setStateLocked(StateDone)
	j.spool.markDone()
}

func (j *Job) failLocked(err error) {
	j.err = err
	j.sys = nil
	j.setStateLocked(StateFailed)
	j.spool.markDone()
}

// pause parks a running job at the next round boundary and returns once
// the runner has actually parked — callers observe a fully quiescent,
// snapshot-safe job. Pausing a non-running, non-terminal job is a no-op.
func (j *Job) pause() error {
	j.mu.Lock()
	j.touch = j.srv.tickLRU()
	if j.state.terminal() {
		j.mu.Unlock()
		return errConflict{fmt.Sprintf("job %s is %s", j.id, j.state)}
	}
	if j.state != StateRunning {
		j.mu.Unlock()
		return nil
	}
	j.setStateLocked(StatePaused)
	cancel, done := j.cancel, j.runDone
	j.mu.Unlock()
	cancel()
	<-done
	// The runner may have crossed the finish line before the cancel won.
	j.mu.Lock()
	paused := j.state == StatePaused
	j.mu.Unlock()
	if paused {
		j.srv.maybeEvict()
	}
	return nil
}

// stop ends a job early: whatever rounds ran are final, the state becomes
// done, and the event stream terminates. Stopping a terminal job is a
// no-op.
func (j *Job) stop() error {
	j.mu.Lock()
	j.touch = j.srv.tickLRU()
	if j.state.terminal() {
		j.mu.Unlock()
		return nil
	}
	if j.state == StateRunning {
		j.setStateLocked(StatePaused) // park intent; finish below
		cancel, done := j.cancel, j.runDone
		j.mu.Unlock()
		cancel()
		<-done
		j.mu.Lock()
	}
	if !j.state.terminal() {
		if j.snapPath != "" {
			os.Remove(j.snapPath)
			j.snapPath = ""
		}
		j.finishLocked(nil)
	}
	j.mu.Unlock()
	return nil
}

// wait blocks until the job is terminal (or cancel fires) and reports
// whether it got there.
func (j *Job) wait(cancel <-chan struct{}) bool {
	for {
		j.mu.Lock()
		if j.state.terminal() {
			j.mu.Unlock()
			return true
		}
		changed := j.changed
		j.mu.Unlock()
		select {
		case <-changed:
		case <-cancel:
			return false
		}
	}
}

// evict checkpoints a paused job to <dir>/<id>.sosnap and releases its
// in-memory system. Only paused jobs are evictable; anything else reports
// false. On a checkpoint write failure the job stays resident — dropping
// the only copy of the run state is never acceptable.
func (j *Job) evict() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePaused || j.sys == nil {
		return false, nil
	}
	path := filepath.Join(j.srv.dir, j.id+".sosnap")
	if err := j.sys.WriteSnapshot(path); err != nil {
		return false, fmt.Errorf("evict %s: %w", j.id, err)
	}
	j.snapPath = path
	j.sys = nil
	j.setStateLocked(StateEvicted)
	return true, nil
}

// resident reports whether the job currently holds an in-memory system.
func (j *Job) resident() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sys != nil
}

// shutdown force-parks the job for server close / delete: the runner is
// cancelled and joined, nothing else changes.
func (j *Job) shutdown() {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	j.setStateLocked(StatePaused)
	cancel, done := j.cancel, j.runDone
	j.mu.Unlock()
	cancel()
	<-done
}

// remove tears the job down: runner joined, spool closed and deleted,
// eviction checkpoint deleted.
func (j *Job) remove() {
	j.shutdown()
	j.mu.Lock()
	if j.snapPath != "" {
		os.Remove(j.snapPath)
		j.snapPath = ""
	}
	j.sys = nil
	j.mu.Unlock()
	j.spool.close(true)
}

// Status is the wire representation of a job (GET /jobs, GET /jobs/{id},
// POST /jobs responses). Field names are stable API.
type Status struct {
	// ID addresses the job in every /jobs/{id} route.
	ID string `json:"id"`
	// Name labels the job (the topology name unless the spec named it).
	Name string `json:"name"`
	// State is the lifecycle position (see doc.go).
	State State `json:"state"`
	// Round is the number of completed simulation rounds.
	Round int `json:"round"`
	// Budget is the total rounds the job will run (0 until first start:
	// the budget is resolved when the system is built).
	Budget int `json:"budget"`
	// Error carries the failure of a failed job.
	Error string `json:"error,omitempty"`
	// Report is the final report of a done job.
	Report *sosf.Report `json:"report,omitempty"`
}

// status snapshots the job for the API.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:     j.id,
		Name:   j.cfg.name,
		State:  j.state,
		Round:  j.round,
		Budget: j.budget,
		Report: j.report,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
