package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sosf"
)

// Metric family names exported on /metrics. They are stable API: the CI
// smoke test and sosbench scrape them by name.
const (
	metricJobs          = "sosf_serve_jobs"
	metricSubmitted     = "sosf_serve_jobs_submitted_total"
	metricRounds        = "sosf_serve_rounds_total"
	metricRoundsPerSec  = "sosf_serve_rounds_per_second"
	metricProtocolBytes = "sosf_serve_protocol_bytes_total"
	metricEvictions     = "sosf_serve_evictions_total"
	metricRestores      = "sosf_serve_restores_total"
	metricRestoreSecSum = "sosf_serve_restore_seconds_sum"
	metricRestoreSecCnt = "sosf_serve_restore_seconds_count"
	metricHeals         = "sosf_serve_heals_total"
	metricHealLatSum    = "sosf_serve_heal_latency_rounds_sum"
	metricHealLatCnt    = "sosf_serve_heal_latency_rounds_count"
	metricUptime        = "sosf_serve_uptime_seconds"
)

// allStates drives the jobs-by-state gauge: every state is always exported,
// zero-valued series included, so dashboards never see vanishing series.
var allStates = []State{StatePending, StateRunning, StatePaused, StateEvicted, StateDone, StateFailed}

// maxSpecBytes bounds a POST /jobs body; a topology larger than this is a
// mistake, not a workload.
const maxSpecBytes = 8 << 20

// Config sizes a Server.
type Config struct {
	// Dir holds per-job spools and eviction checkpoints. Created if absent.
	Dir string
	// MaxResident is the memory budget: the maximum number of jobs allowed
	// to keep an in-memory system at once. When the count exceeds it, the
	// least-recently-touched paused jobs are evicted to snapshots. <= 0
	// means unlimited (eviction off).
	MaxResident int
	// DefaultWorkers shards rounds of jobs that do not set workers
	// themselves (0 = serial). Any value is byte-identical.
	DefaultWorkers int
	// Log receives operational messages; nil discards them.
	Log *log.Logger
}

// Server manages a population of simulation jobs over HTTP. See doc.go for
// the job lifecycle and the API surface.
type Server struct {
	dir         string
	maxResident int
	defWorkers  int
	logger      *log.Logger
	stats       *Registry
	started     time.Time
	lruClock    atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable GET /jobs listings
	nextID int
}

// NewServer creates the job directory and registers the metric families.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		dir:         cfg.Dir,
		maxResident: cfg.MaxResident,
		defWorkers:  cfg.DefaultWorkers,
		logger:      logger,
		stats:       NewRegistry(),
		started:     time.Now(),
		jobs:        make(map[string]*Job),
	}
	s.stats.Gauge(metricJobs, "Jobs currently in each lifecycle state.")
	s.stats.Counter(metricSubmitted, "Total jobs ever submitted.")
	s.stats.Counter(metricRounds, "Total simulation rounds executed across all jobs.")
	s.stats.Gauge(metricRoundsPerSec, "Rounds executed per second of server uptime.")
	s.stats.Counter(metricProtocolBytes, "Total bytes sent per protocol across all jobs.")
	s.stats.Counter(metricEvictions, "Paused jobs checkpointed to disk under the memory budget.")
	s.stats.Counter(metricRestores, "Evicted jobs restored from their checkpoint.")
	s.stats.Counter(metricRestoreSecSum, "Cumulative seconds spent restoring evicted jobs.")
	s.stats.Counter(metricRestoreSecCnt, "Number of restore timings in the sum.")
	s.stats.Counter(metricHeals, "Self-healing re-densify repairs across all jobs.")
	s.stats.Counter(metricHealLatSum, "Cumulative rounds from each heal to the next full convergence.")
	s.stats.Counter(metricHealLatCnt, "Number of heal latencies in the sum.")
	s.stats.Gauge(metricUptime, "Seconds since the server started.")
	return s, nil
}

// Stats exposes the server's registry (sosbench and tests read it).
func (s *Server) Stats() *Registry { return s.stats }

// tickLRU advances the eviction clock; each lifecycle access stamps its job.
func (s *Server) tickLRU() int64 { return s.lruClock.Add(1) }

// noteRound feeds the stats registry from a job's event sink: one round
// executed, this round's per-protocol bandwidth from the engine meter, and
// any self-healing repairs (with their heal-to-reconvergence latency
// tracked per job).
func (s *Server) noteRound(j *Job, sys *sosf.System, names []string, ev sosf.RoundEvent) {
	s.stats.Add(metricRounds, 1)
	for p, b := range sys.ProtocolBandwidth(ev.Round - 1) {
		if b != 0 {
			s.stats.Add(metricProtocolBytes, float64(b), "protocol", names[p])
		}
	}
	if ev.Heals > 0 {
		s.stats.Add(metricHeals, float64(ev.Heals))
	}
	j.noteHeals(ev)
}

// noteRestore records a timed eviction restore.
func (s *Server) noteRestore(d time.Duration) {
	s.stats.Add(metricRestores, 1)
	s.stats.Add(metricRestoreSecSum, d.Seconds())
	s.stats.Add(metricRestoreSecCnt, 1)
}

// Submit registers a new pending job from a POST /jobs body.
func (s *Server) Submit(body []byte) (*Job, error) {
	cfg, err := parseJobSpec(body)
	if err != nil {
		return nil, err
	}
	if cfg.workers == 0 {
		cfg.workers = s.defWorkers
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.mu.Unlock()
	sp, err := newSpool(filepath.Join(s.dir, id+".events.jsonl"))
	if err != nil {
		return nil, err
	}
	j := &Job{
		id:      id,
		srv:     s,
		cfg:     cfg,
		state:   StatePending,
		spool:   sp,
		touch:   s.tickLRU(),
		changed: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.stats.Add(metricSubmitted, 1)
	s.logger.Printf("serve: submitted %s (%s)", id, cfg.name)
	return j, nil
}

// job looks a job up by id.
func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// list snapshots all jobs in submission order.
func (s *Server) list() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// delete unregisters and tears down a job.
func (s *Server) delete(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if ok {
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.remove()
	s.logger.Printf("serve: deleted %s", id)
	return true
}

// maybeEvict enforces the memory budget: while more jobs hold in-memory
// systems than MaxResident allows, the least-recently-touched paused job is
// checkpointed to disk. Running jobs are never evicted (they would just
// thrash), so a budget fully occupied by running jobs is allowed to stand.
func (s *Server) maybeEvict() {
	if s.maxResident <= 0 {
		return
	}
	for {
		resident := 0
		var victim *Job
		var victimTouch int64
		for _, j := range s.list() {
			j.mu.Lock()
			if j.sys != nil {
				resident++
				if j.state == StatePaused && (victim == nil || j.touch < victimTouch) {
					victim, victimTouch = j, j.touch
				}
			}
			j.mu.Unlock()
		}
		if resident <= s.maxResident || victim == nil {
			return
		}
		ok, err := victim.evict()
		if err != nil {
			// The job stays resident; over budget beats losing run state.
			s.logger.Printf("serve: %v", err)
			return
		}
		if !ok {
			return // the victim moved on concurrently; re-counting would spin
		}
		s.stats.Add(metricEvictions, 1)
		s.logger.Printf("serve: evicted %s (resident %d > budget %d)", victim.id, resident, s.maxResident)
	}
}

// Close parks every running job at its next round boundary and joins the
// runners. Spools and checkpoints stay on disk.
func (s *Server) Close() {
	for _, j := range s.list() {
		j.shutdown()
		j.spool.close(false)
	}
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/start", s.lifecycle((*Job).start))
	mux.HandleFunc("POST /jobs/{id}/pause", s.lifecycle((*Job).pause))
	mux.HandleFunc("POST /jobs/{id}/stop", s.lifecycle((*Job).stop))
	mux.HandleFunc("POST /jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	mux.HandleFunc("POST /jobs/{id}/delete", s.handleDelete)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON renders v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// errCode maps a lifecycle error to its HTTP status.
func errCode(err error) int {
	var c errConflict
	if errors.As(err, &c) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

// handleSubmit creates a job from the request body (raw .sos DSL or a JSON
// JobSpec); ?start=1 starts it immediately.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "job spec exceeds %d bytes", maxSpecBytes)
		return
	}
	j, err := s.Submit(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if q := r.URL.Query().Get("start"); q == "1" || q == "true" {
		if err := j.start(); err != nil {
			// The job exists (now failed); report both the id and the error.
			writeJSON(w, http.StatusCreated, j.status())
			return
		}
	}
	writeJSON(w, http.StatusCreated, j.status())
}

// handleList returns every job's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.list()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// lifecycle adapts a Job method to a POST /jobs/{id}/<verb> handler.
func (s *Server) lifecycle(op func(*Job) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.job(r.PathValue("id"))
		if j == nil {
			httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
			return
		}
		if err := op(j); err != nil {
			httpError(w, errCode(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleWait long-polls until the job is terminal, then returns its status.
func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if !j.wait(r.Context().Done()) {
		return // client gone
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.delete(id) {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents streams the job's rounds as server-sent events. The stream
// always replays from round 0 (the spool holds the whole history), then
// follows live until the job is terminal, ending with an `end` event. Each
// data line is exactly the JSONL line `sos play -events jsonl` would print.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	f, err := j.spool.newFollower()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "open event spool: %v", err)
		return
	}
	defer f.close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		chunk, err := f.next(r.Context().Done())
		if err != nil {
			if !errors.Is(err, errFollowCancelled) {
				fmt.Fprintf(w, "event: error\ndata: %s\n\n", err)
				fl.Flush()
			}
			return
		}
		if chunk == nil {
			fmt.Fprint(w, "event: end\ndata: {}\n\n")
			fl.Flush()
			return
		}
		// chunk is one or more complete JSONL lines; each becomes one SSE
		// data frame carrying the line verbatim (sans its newline).
		for len(chunk) > 0 {
			nl := 0
			for nl < len(chunk) && chunk[nl] != '\n' {
				nl++
			}
			fmt.Fprintf(w, "data: %s\n\n", chunk[:nl])
			if nl < len(chunk) {
				nl++
			}
			chunk = chunk[nl:]
		}
		fl.Flush()
	}
}

// handleMetrics refreshes the computed gauges and renders the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	counts := make(map[State]int, len(allStates))
	for _, j := range s.list() {
		st := j.status()
		counts[st.State]++
	}
	for _, st := range allStates {
		s.stats.Set(metricJobs, float64(counts[st]), "state", string(st))
	}
	uptime := time.Since(s.started).Seconds()
	s.stats.Set(metricUptime, uptime)
	rps := 0.0
	if uptime > 0 {
		rps = s.stats.Get(metricRounds) / uptime
	}
	s.stats.Set(metricRoundsPerSec, rps)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.stats.WritePrometheus(w)
}
