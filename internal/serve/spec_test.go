package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"sosf/internal/dsl"
)

const specTestDSL = `topology demo {
    nodes 40
    component a ring {
        port p
    }
    component b ring {
        port p
    }
    link a.p b.p
}`

func TestParseJobSpecRawDSL(t *testing.T) {
	cfg, err := parseJobSpec([]byte(specTestDSL))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.name != "demo" {
		t.Errorf("name = %q, want demo (the topology name)", cfg.name)
	}
	if cfg.source != specTestDSL {
		t.Errorf("raw DSL submission must retain the source verbatim")
	}
	if cfg.rounds != nil || cfg.seed != nil {
		t.Errorf("unset rounds/seed must stay unset, got %v/%v", cfg.rounds, cfg.seed)
	}
}

func TestParseJobSpecJSONSource(t *testing.T) {
	body, _ := json.Marshal(JobSpec{Name: "mine", Source: specTestDSL, Nodes: 80, Workers: 2})
	cfg, err := parseJobSpec(body)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.name != "mine" || cfg.nodes != 80 || cfg.workers != 2 {
		t.Errorf("cfg = %+v, want name=mine nodes=80 workers=2", cfg)
	}
}

func TestParseJobSpecJSONTopology(t *testing.T) {
	topo, err := dsl.ParseTopology(specTestDSL)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 7
	body, _ := json.Marshal(JobSpec{Topology: topo, Rounds: &rounds})
	cfg, err := parseJobSpec(body)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.name != "demo" {
		t.Errorf("name = %q, want demo", cfg.name)
	}
	if cfg.rounds == nil || *cfg.rounds != 7 {
		t.Errorf("rounds = %v, want 7", cfg.rounds)
	}
	// The topology normalizes to canonical DSL that compiles back to the
	// same topology — the single rebuild path eviction restores rely on.
	back, err := dsl.ParseTopology(cfg.source)
	if err != nil {
		t.Fatalf("normalized source does not compile: %v", err)
	}
	src2, err := dsl.Emit(back)
	if err != nil {
		t.Fatal(err)
	}
	if src2 != cfg.source {
		t.Errorf("normalized DSL is not a fixed point of emit∘compile:\n%s\nvs\n%s", cfg.source, src2)
	}
}

func TestParseJobSpecRejects(t *testing.T) {
	topo, err := dsl.ParseTopology(specTestDSL)
	if err != nil {
		t.Fatal(err)
	}
	both, _ := json.Marshal(JobSpec{Source: specTestDSL, Topology: topo})
	neg := -1
	negRounds, _ := json.Marshal(JobSpec{Source: specTestDSL, Rounds: &neg})
	negNodes, _ := json.Marshal(JobSpec{Source: specTestDSL, Nodes: -5})
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", "  \n ", "empty job spec"},
		{"bad DSL", "topology oops {", ""},
		{"bad JSON", `{"source": `, "job spec JSON"},
		{"unknown field", `{"sauce": "x"}`, "job spec JSON"},
		{"both source and topology", string(both), "pick one"},
		{"neither", `{"name": "x"}`, "needs source"},
		{"negative nodes", string(negNodes), "nodes must be >= 0"},
		{"negative rounds", string(negRounds), "rounds must be >= 0"},
	}
	for _, tc := range cases {
		_, err := parseJobSpec([]byte(tc.body))
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
