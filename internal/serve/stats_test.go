package serve

import (
	"strings"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Total requests.")
	r.Gauge("inflight", "Current in-flight requests.")

	r.Add("requests_total", 1)
	r.Add("requests_total", 2, "code", "200")
	r.Add("requests_total", 1, "code", "200")
	r.Set("inflight", 7)

	if got := r.Get("requests_total"); got != 1 {
		t.Errorf("plain counter = %g, want 1", got)
	}
	if got := r.Get("requests_total", "code", "200"); got != 3 {
		t.Errorf("labeled counter = %g, want 3", got)
	}
	if got := r.Get("inflight"); got != 7 {
		t.Errorf("gauge = %g, want 7", got)
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help")
	r.Add("c", 1, "b", "2", "a", "1")
	r.Add("c", 1, "a", "1", "b", "2")
	if got := r.Get("c", "a", "1", "b", "2"); got != 2 {
		t.Errorf("label order created distinct series: got %g, want 2", got)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("c", "help")
	r.Gauge("g", "help")
	mustPanic("double register", func() { r.Counter("c", "again") })
	mustPanic("negative counter delta", func() { r.Add("c", -1) })
	mustPanic("Set on counter", func() { r.Set("c", 5) })
	mustPanic("unregistered family", func() { r.Add("nope", 1) })
	mustPanic("odd labels", func() { r.Add("c", 1, "keyonly") })
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Last family.")
	r.Gauge("aa_gauge", "First family.")
	r.Counter("empty_total", "Never touched.")
	r.Add("zz_total", 5, "proto", `say "hi"\n`)
	r.Add("zz_total", 2)
	r.Set("aa_gauge", 1.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP aa_gauge First family.",
		"# TYPE aa_gauge gauge",
		"aa_gauge 1.5",
		"# HELP empty_total Never touched.",
		"# TYPE empty_total counter",
		"empty_total 0",
		"# HELP zz_total Last family.",
		"# TYPE zz_total counter",
		"zz_total 2",
		`zz_total{proto="say \"hi\"\\n"} 5`,
		"",
	}, "\n")
	if b.String() != want {
		t.Errorf("rendered output mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}

	// Rendering the empty family must not materialize a series in it.
	r.Add("empty_total", 4, "k", "v")
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if strings.Contains(b2.String(), "\nempty_total 0\n") {
		t.Errorf("render of empty family polluted it with a plain series:\n%s", b2.String())
	}
}
