package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind distinguishes Prometheus metric families in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
)

func (k metricKind) String() string {
	if k == kindCounter {
		return "counter"
	}
	return "gauge"
}

// family is one named metric family with any number of labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]float64 // canonical label string -> value
}

// Registry is a central stats registry: named counter and gauge families,
// each with labeled series, rendered in Prometheus text exposition format.
// All methods are safe for concurrent use; every job runner, the evictor,
// and the /metrics scrape share one registry. Families must be registered
// (Counter/Gauge) before use — updating an unregistered family panics,
// because that is a wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers a monotonically increasing family.
func (r *Registry) Counter(name, help string) { r.register(name, help, kindCounter) }

// Gauge registers a family whose series can move in both directions.
func (r *Registry) Gauge(name, help string) { r.register(name, help, kindGauge) }

func (r *Registry) register(name, help string, kind metricKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("serve: metric family %q registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, kind: kind, series: make(map[string]float64)}
}

// labelKey renders k=v pairs canonically ({} for none), so the same labels
// always address the same series. Labels are passed as alternating
// key, value strings; an odd count panics.
func labelKey(labels []string) string {
	if len(labels)%2 != 0 {
		panic("serve: labels must be alternating key, value pairs")
	}
	if len(labels) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+`="`+escapeLabel(labels[i+1])+`"`)
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (r *Registry) lookup(name string) *family {
	f, ok := r.families[name]
	if !ok {
		panic(fmt.Sprintf("serve: metric family %q is not registered", name))
	}
	return f
}

// Add increments a series by delta. Counters refuse to go backwards.
func (r *Registry) Add(name string, delta float64, labels ...string) {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name)
	if f.kind == kindCounter && delta < 0 {
		panic(fmt.Sprintf("serve: counter %q decremented by %g", name, delta))
	}
	f.series[key] += delta
}

// Set pins a series to v (gauges only: rewinding a counter at scrape time
// would break every rate() over it).
func (r *Registry) Set(name string, v float64, labels ...string) {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name)
	if f.kind != kindGauge {
		panic(fmt.Sprintf("serve: Set on non-gauge %q", name))
	}
	f.series[key] = v
}

// Get reads a series value (0 when the series has never been touched).
func (r *Registry) Get(name string, labels ...string) float64 {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookup(name).series[key]
}

// WritePrometheus renders every family in text exposition format,
// deterministically: families sorted by name, series sorted by label set,
// one # HELP / # TYPE header per family. Families with no series yet emit
// their headers and, for plain (label-less) families, an explicit 0 — a
// scrape before the first job must still show every exported metric.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			// A scrape before the first touch still shows the family.
			fmt.Fprintf(&b, "%s 0\n", f.name)
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "%s%s %s\n", f.name, k, strconv.FormatFloat(f.series[k], 'g', -1, 64))
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}
