package serve

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

func newTestSpool(t *testing.T) *spool {
	t.Helper()
	sp, err := newSpool(filepath.Join(t.TempDir(), "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.close(false) })
	return sp
}

func TestSpoolFollowerReplaysAndFollows(t *testing.T) {
	sp := newTestSpool(t)
	fmt.Fprintf(sp, "{\"round\":1}\n")
	fmt.Fprintf(sp, "{\"round\":2}\n")

	f, err := sp.newFollower()
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()

	// Replay of what was written before the follower attached.
	chunk, err := f.next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := "{\"round\":1}\n{\"round\":2}\n"; string(chunk) != want {
		t.Fatalf("replay chunk = %q, want %q", chunk, want)
	}

	// Live follow: an append wakes the blocked follower.
	go func() {
		time.Sleep(10 * time.Millisecond)
		fmt.Fprintf(sp, "{\"round\":3}\n")
		sp.markDone()
	}()
	var got bytes.Buffer
	for {
		chunk, err := f.next(nil)
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break // stream complete
		}
		got.Write(chunk)
	}
	if want := "{\"round\":3}\n"; got.String() != want {
		t.Fatalf("followed bytes = %q, want %q", got.String(), want)
	}
}

func TestSpoolFollowerCancel(t *testing.T) {
	sp := newTestSpool(t)
	f, err := sp.newFollower()
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	cancel := make(chan struct{})
	close(cancel)
	if _, err := f.next(cancel); err != errFollowCancelled {
		t.Fatalf("next on cancelled channel = %v, want errFollowCancelled", err)
	}
}

func TestSpoolClosedRefusesWrites(t *testing.T) {
	sp := newTestSpool(t)
	sp.close(false)
	if _, err := fmt.Fprintf(sp, "late\n"); err == nil {
		t.Fatal("write after close should fail")
	}
	// close is idempotent and followers see a terminated stream.
	sp.close(false)
	f, err := sp.newFollower()
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	chunk, err := f.next(nil)
	if chunk != nil || err != nil {
		t.Fatalf("follower on closed empty spool = %q, %v; want nil, nil", chunk, err)
	}
}
