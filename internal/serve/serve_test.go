package serve

// The serve determinism contract: a job executed by the server — possibly
// concurrently with other jobs, possibly paused, evicted to a snapshot,
// and restored along the way — streams exactly the bytes that
// `sos play -events jsonl` prints for the same source and options. The SSE
// endpoint replays from round 0 at any time, so a follower that watched
// the whole run and a follower that connected after completion see the
// same stream.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"sosf"
)

func readFixture(t *testing.T, rel string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// do issues a request and decodes the JSON response body into out (if
// non-nil), returning the status code.
func do(t *testing.T, method, url string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// submit posts a job body (raw DSL or JSON spec) and returns its status.
func submit(t *testing.T, ts *httptest.Server, body []byte, start bool) Status {
	t.Helper()
	url := ts.URL + "/jobs"
	if start {
		url += "?start=1"
	}
	var st Status
	if code := do(t, "POST", url, body, &st); code != http.StatusCreated {
		t.Fatalf("POST /jobs = %d, want 201", code)
	}
	return st
}

// waitDone long-polls /wait and asserts the job ended in state done.
func waitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	var st Status
	if code := do(t, "POST", ts.URL+"/jobs/"+id+"/wait", nil, &st); code != http.StatusOK {
		t.Fatalf("POST /jobs/%s/wait = %d, want 200", id, code)
	}
	if st.State != StateDone {
		t.Fatalf("job %s ended %s (round %d/%d, err %q), want done", id, st.State, st.Round, st.Budget, st.Error)
	}
	return st
}

// collectSSE consumes /jobs/{id}/events to its end marker and returns the
// concatenation of all data frames, one line per frame — which must equal
// the JSONL stream of the run.
func collectSSE(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	out, err := collectSSEErr(ts, id)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func collectSSEErr(ts *httptest.Server, id string) ([]byte, error) {
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET events = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, fmt.Errorf("events Content-Type = %q, want text/event-stream", ct)
	}
	var out bytes.Buffer
	event := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			event = ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "end":
				return out.Bytes(), nil
			case "error":
				return nil, fmt.Errorf("stream error event: %s", strings.TrimPrefix(line, "data: "))
			default:
				out.WriteString(strings.TrimPrefix(line, "data: "))
				out.WriteByte('\n')
			}
		}
	}
	return nil, fmt.Errorf("stream closed without end event (got %d bytes): %v", out.Len(), sc.Err())
}

// pollStatus re-reads the job status until cond holds or the deadline
// passes.
func pollStatus(t *testing.T, ts *httptest.Server, id string, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st Status
		if code := do(t, "GET", ts.URL+"/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d, want 200", id, code)
		}
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentJobsMatchGolden is the acceptance test of ISSUE.md: two
// identical jobs running concurrently — one serial, one sharded across
// workers — each stream exactly the committed golden fixture that
// `sos play -events jsonl testdata/playdemo.sos` produces.
func TestConcurrentJobsMatchGolden(t *testing.T) {
	golden := readFixture(t, "testdata/golden/playdemo.events.jsonl")
	src := readFixture(t, "testdata/playdemo.sos")
	_, ts := newTestServer(t, Config{})

	a := submit(t, ts, src, true)
	spec, _ := json.Marshal(JobSpec{Source: string(src), Workers: 2})
	b := submit(t, ts, spec, true)

	waitDone(t, ts, a.ID)
	waitDone(t, ts, b.ID)

	for _, id := range []string{a.ID, b.ID} {
		got := collectSSE(t, ts, id)
		if !bytes.Equal(got, golden) {
			t.Errorf("job %s SSE stream diverges from golden fixture (got %d bytes, want %d)", id, len(got), len(golden))
		}
	}

	var list []Status
	if code := do(t, "GET", ts.URL+"/jobs", nil, &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("GET /jobs = %d with %d jobs, want 200 with 2", code, len(list))
	}
	if list[0].ID != a.ID || list[1].ID != b.ID {
		t.Errorf("listing order %s, %s; want submission order %s, %s", list[0].ID, list[1].ID, a.ID, b.ID)
	}
}

// TestEvictionRestoreMidStream pauses a running job, forces it out of
// memory by starting a second job under a MaxResident=1 budget, restores
// it transparently via start, and requires both a follower that watched
// through the eviction and a post-hoc replay to be byte-identical to the
// same run played standalone.
func TestEvictionRestoreMidStream(t *testing.T) {
	src := string(readFixture(t, "testdata/playdemo.sos"))
	const rounds = 400

	// Reference stream: the same source and options played in-process.
	ref, err := sosf.New(src, sosf.WithNodes(0), sosf.WithRounds(rounds), sosf.WithRunToEnd())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	ref.Subscribe(sosf.JSONLSink(&want))
	budget := rounds
	if h := ref.ScenarioHorizon(); h > budget {
		budget = h
	}
	if _, err := ref.Step(budget); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{MaxResident: 1})
	specA, _ := json.Marshal(JobSpec{Source: src, Rounds: intp(rounds)})
	a := submit(t, ts, specA, true)

	// A live follower that must survive pause, eviction, and restore.
	type streamResult struct {
		data []byte
		err  error
	}
	liveCh := make(chan streamResult, 1)
	go func() {
		data, err := collectSSEErr(ts, a.ID)
		liveCh <- streamResult{data, err}
	}()

	// Park the job mid-run (well before its 400-round budget).
	pollStatus(t, ts, a.ID, func(st Status) bool { return st.Round >= 50 })
	var st Status
	if code := do(t, "POST", ts.URL+"/jobs/"+a.ID+"/pause", nil, &st); code != http.StatusOK {
		t.Fatalf("pause = %d, want 200", code)
	}
	if st.State != StatePaused {
		t.Fatalf("after pause: state %s, want paused", st.State)
	}
	pausedAt := st.Round
	if pausedAt >= rounds {
		t.Fatalf("job finished (round %d) before the pause landed; eviction not exercised", pausedAt)
	}

	// A second running job pushes the paused one over the budget.
	b := submit(t, ts, readFixture(t, "testdata/ringpair.sos"), true)
	st = pollStatus(t, ts, a.ID, func(st Status) bool { return st.State == StateEvicted })
	if st.Round != pausedAt {
		t.Errorf("eviction moved the round: %d -> %d", pausedAt, st.Round)
	}
	snap := filepath.Join(srv.dir, a.ID+".sosnap")
	if _, err := os.Stat(snap); err != nil {
		t.Errorf("evicted job has no checkpoint: %v", err)
	}

	// Transparent restore: plain start, no snapshot paths in the API.
	if code := do(t, "POST", ts.URL+"/jobs/"+a.ID+"/start", nil, &st); code != http.StatusOK {
		t.Fatalf("start after eviction = %d, want 200", code)
	}
	final := waitDone(t, ts, a.ID)
	if final.Round != budget {
		t.Errorf("restored job ran %d rounds, want %d", final.Round, budget)
	}
	waitDone(t, ts, b.ID)

	live := <-liveCh
	if live.err != nil {
		t.Fatalf("live follower failed: %v", live.err)
	}
	if !bytes.Equal(live.data, want.Bytes()) {
		t.Errorf("live stream across pause/evict/restore diverges from standalone play (%d vs %d bytes)", len(live.data), want.Len())
	}
	if replay := collectSSE(t, ts, a.ID); !bytes.Equal(replay, want.Bytes()) {
		t.Errorf("post-hoc replay diverges from standalone play (%d vs %d bytes)", len(replay), want.Len())
	}

	if n := srv.Stats().Get(metricEvictions); n < 1 {
		t.Errorf("evictions_total = %g, want >= 1", n)
	}
	if n := srv.Stats().Get(metricRestores); n < 1 {
		t.Errorf("restores_total = %g, want >= 1", n)
	}
	if n := srv.Stats().Get(metricRestoreSecCnt); n < 1 {
		t.Errorf("restore_seconds_count = %g, want >= 1", n)
	}
}

func intp(v int) *int { return &v }

// promSeries parses Prometheus text exposition format into series values,
// failing the test on any malformed line — this is the /metrics contract
// check of ISSUE.md.
func promSeries(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	typed := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(rest) != 2 || (rest[1] != "counter" && rest[1] != "gauge") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[rest[0]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("sample %q: unterminated label set", line)
			}
			base = base[:i]
		}
		if !typed[base] {
			t.Fatalf("sample %q precedes its # TYPE header", line)
		}
		series[name] = f
	}
	return series
}

func TestMetricsEndpoint(t *testing.T) {
	src := readFixture(t, "testdata/playdemo.sos")
	srv, ts := newTestServer(t, Config{})
	st := submit(t, ts, src, true)
	waitDone(t, ts, st.ID)
	_ = srv

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := promSeries(t, string(raw))

	if got := series[metricRounds]; got != 150 {
		t.Errorf("%s = %g, want 150 (one full playdemo run)", metricRounds, got)
	}
	if got := series[metricSubmitted]; got != 1 {
		t.Errorf("%s = %g, want 1", metricSubmitted, got)
	}
	for _, state := range allStates {
		key := fmt.Sprintf(`%s{state="%s"}`, metricJobs, state)
		want := 0.0
		if state == StateDone {
			want = 1
		}
		if got, ok := series[key]; !ok || got != want {
			t.Errorf("%s = %g (present %v), want %g", key, got, ok, want)
		}
	}
	// Per-protocol bandwidth: at least one protocol series, all positive,
	// and the protocol names must match the engine's meter.
	protoSeen := 0
	for name, v := range series {
		if strings.HasPrefix(name, metricProtocolBytes+"{") {
			protoSeen++
			if v <= 0 {
				t.Errorf("%s = %g, want > 0", name, v)
			}
		}
	}
	if protoSeen == 0 {
		t.Errorf("no %s series exported", metricProtocolBytes)
	}
	if got := series[metricUptime]; got <= 0 {
		t.Errorf("%s = %g, want > 0", metricUptime, got)
	}
	if got := series[metricRoundsPerSec]; got <= 0 {
		t.Errorf("%s = %g, want > 0", metricRoundsPerSec, got)
	}
	// The playdemo blast at round 30 is big enough to trip the runtime's
	// self-healing re-densification, and the run converges afterwards, so
	// both the heal counter and the heal-to-reconvergence latency summary
	// must carry samples.
	if got := series[metricHeals]; got < 1 {
		t.Errorf("%s = %g, want >= 1 (the playdemo blast heals)", metricHeals, got)
	}
	if got := series[metricHealLatCnt]; got < 1 {
		t.Errorf("%s = %g, want >= 1", metricHealLatCnt, got)
	}
	if cnt := series[metricHealLatCnt]; cnt > 0 {
		if sum := series[metricHealLatSum]; sum < 0 || sum/cnt > 150 {
			t.Errorf("%s/%s = %g/%g, want a sane mean latency in rounds", metricHealLatSum, metricHealLatCnt, sum, cnt)
		}
	}
	// Families with no series yet must still be present (scrape-stable).
	if _, ok := series[metricEvictions]; !ok {
		t.Errorf("untouched counter %s missing from scrape", metricEvictions)
	}
}

func TestLifecycleAndErrors(t *testing.T) {
	src := readFixture(t, "testdata/ringpair.sos")
	_, ts := newTestServer(t, Config{})

	// Unknown job ids are 404 on every route.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/jobs/nope"},
		{"POST", "/jobs/nope/start"},
		{"POST", "/jobs/nope/pause"},
		{"POST", "/jobs/nope/stop"},
		{"POST", "/jobs/nope/wait"},
		{"GET", "/jobs/nope/events"},
		{"DELETE", "/jobs/nope"},
	} {
		if code := do(t, probe.method, ts.URL+probe.path, nil, nil); code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, code)
		}
	}

	// A bad spec is a 400 at submission.
	var apiErr map[string]string
	if code := do(t, "POST", ts.URL+"/jobs", []byte("topology oops {"), &apiErr); code != http.StatusBadRequest {
		t.Errorf("bad spec = %d, want 400", code)
	} else if apiErr["error"] == "" {
		t.Errorf("bad spec: no error message in body")
	}

	// A pending job reports budget 0 and does not run.
	st := submit(t, ts, src, false)
	if st.State != StatePending || st.Round != 0 {
		t.Errorf("submitted job is %s at round %d, want pending at 0", st.State, st.Round)
	}

	// start → done; lifecycle verbs on a terminal job.
	if code := do(t, "POST", ts.URL+"/jobs/"+st.ID+"/start", nil, &st); code != http.StatusOK {
		t.Fatalf("start = %d, want 200", code)
	}
	waitDone(t, ts, st.ID)
	if code := do(t, "POST", ts.URL+"/jobs/"+st.ID+"/start", nil, nil); code != http.StatusConflict {
		t.Errorf("start on done job = %d, want 409", code)
	}
	if code := do(t, "POST", ts.URL+"/jobs/"+st.ID+"/pause", nil, nil); code != http.StatusConflict {
		t.Errorf("pause on done job = %d, want 409", code)
	}
	if code := do(t, "POST", ts.URL+"/jobs/"+st.ID+"/stop", nil, nil); code != http.StatusOK {
		t.Errorf("stop on done job = %d, want 200 (idempotent)", code)
	}

	// Delete removes the job and its files.
	if code := do(t, "DELETE", ts.URL+"/jobs/"+st.ID, nil, nil); code != http.StatusNoContent {
		t.Errorf("delete = %d, want 204", code)
	}
	if code := do(t, "GET", ts.URL+"/jobs/"+st.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("get after delete = %d, want 404", code)
	}
}

// TestStopEndsStreamEarly stops a running job and requires the SSE stream
// to terminate cleanly with whatever rounds completed.
func TestStopEndsStreamEarly(t *testing.T) {
	src := string(readFixture(t, "testdata/playdemo.sos"))
	_, ts := newTestServer(t, Config{})
	spec, _ := json.Marshal(JobSpec{Source: src, Rounds: intp(5000)})
	st := submit(t, ts, spec, true)
	pollStatus(t, ts, st.ID, func(s Status) bool { return s.Round >= 3 })
	if code := do(t, "POST", ts.URL+"/jobs/"+st.ID+"/stop", nil, &st); code != http.StatusOK {
		t.Fatalf("stop = %d, want 200", code)
	}
	if st.State != StateDone {
		t.Fatalf("after stop: %s, want done", st.State)
	}
	stream := collectSSE(t, ts, st.ID)
	lines := bytes.Count(stream, []byte("\n"))
	if lines != st.Round {
		t.Errorf("stream has %d events, status says %d rounds", lines, st.Round)
	}
	if st.Report == nil {
		t.Errorf("stopped job has no final report")
	}
}
