package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"sosf"
	"sosf/internal/dsl"
	"sosf/internal/spec"
)

// JobSpec is the JSON body of POST /jobs. Exactly one of Source (inline
// .sos DSL) and Topology (a compiled topology, in the same JSON encoding
// snapshots use) must be set; a Topology is normalized to canonical DSL on
// submission, so every job — however submitted — is backed by one DSL
// source string, which is also what eviction restores rebuild from.
//
// A request body that does not start with '{' is taken to be raw .sos DSL,
// mirroring how aistore's dSort accepts inline JSON specs next to files.
type JobSpec struct {
	// Name labels the job in listings; defaults to the topology name.
	Name string `json:"name,omitempty"`
	// Source is inline .sos DSL.
	Source string `json:"source,omitempty"`
	// Topology is the compiled alternative to Source.
	Topology *spec.Topology `json:"topology,omitempty"`
	// Nodes overrides the population size (0: the file's `nodes` option).
	Nodes int `json:"nodes,omitempty"`
	// Rounds caps the run; nil follows the file's `option rounds`, then
	// the library default, extended to the scenario horizon like play.
	Rounds *int `json:"rounds,omitempty"`
	// Seed pins the run's randomness; nil follows the file's
	// `option seed`, then the library default.
	Seed *int64 `json:"seed,omitempty"`
	// Workers shards each simulation round (0 = serial). Any value
	// produces byte-identical event streams.
	Workers int `json:"workers,omitempty"`
}

// jobConfig is a submitted spec resolved to the exact build recipe of a
// job's sosf.System. It is retained for the job's whole life: an eviction
// restore must rebuild with byte-identical options.
type jobConfig struct {
	name    string
	source  string // canonical DSL
	nodes   int
	rounds  *int
	seed    *int64
	workers int
}

// options renders the recipe as sosf build options, mirroring the CLI's
// explicit-flag forwarding: unset fields stay unset so the file's own
// `option rounds` / `option seed` (and the usual defaults) apply.
func (c *jobConfig) options(extra ...sosf.Option) []sosf.Option {
	opts := []sosf.Option{sosf.WithNodes(c.nodes), sosf.WithRunToEnd()}
	if c.rounds != nil {
		opts = append(opts, sosf.WithRounds(*c.rounds))
	}
	if c.seed != nil {
		opts = append(opts, sosf.WithSeed(*c.seed))
	}
	if c.workers > 0 {
		opts = append(opts, sosf.WithWorkers(c.workers))
	}
	return append(opts, extra...)
}

// parseJobSpec turns a POST /jobs body — raw .sos DSL or a JSON JobSpec —
// into a validated build recipe.
func parseJobSpec(body []byte) (*jobConfig, error) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty job spec")
	}
	if trimmed[0] != '{' {
		// Raw DSL: validate now so submission (not start) reports the
		// syntax error, and name the job after its topology.
		topo, err := dsl.ParseTopologyBytes(trimmed)
		if err != nil {
			return nil, err
		}
		return &jobConfig{name: topo.Name, source: string(trimmed)}, nil
	}

	var js JobSpec
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("job spec JSON: %w", err)
	}
	if js.Source != "" && js.Topology != nil {
		return nil, fmt.Errorf("job spec sets both source and topology; pick one")
	}
	cfg := &jobConfig{
		name:    js.Name,
		nodes:   js.Nodes,
		rounds:  js.Rounds,
		seed:    js.Seed,
		workers: js.Workers,
	}
	switch {
	case js.Source != "":
		topo, err := dsl.ParseTopologyBytes([]byte(js.Source))
		if err != nil {
			return nil, err
		}
		cfg.source = js.Source
		if cfg.name == "" {
			cfg.name = topo.Name
		}
	case js.Topology != nil:
		if err := js.Topology.Validate(); err != nil {
			return nil, err
		}
		if err := js.Topology.ValidateScenario(); err != nil {
			return nil, err
		}
		// Normalize to canonical DSL: Emit is the identity under the
		// compiler, so the emitted source IS the submitted topology.
		src, err := dsl.Emit(js.Topology)
		if err != nil {
			return nil, fmt.Errorf("job spec topology has no DSL form: %w", err)
		}
		cfg.source = src
		if cfg.name == "" {
			cfg.name = js.Topology.Name
		}
	default:
		return nil, fmt.Errorf("job spec needs source (inline .sos DSL) or topology")
	}
	if cfg.nodes < 0 {
		return nil, fmt.Errorf("job spec nodes must be >= 0, got %d", cfg.nodes)
	}
	if cfg.rounds != nil && *cfg.rounds < 0 {
		return nil, fmt.Errorf("job spec rounds must be >= 0, got %d", *cfg.rounds)
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("job spec workers must be >= 0, got %d", cfg.workers)
	}
	return cfg, nil
}
