package peersampling

import (
	"testing"

	"sosf/internal/graph"
	"sosf/internal/sim"
	"sosf/internal/view"
)

func buildNetwork(t *testing.T, seed int64, n int, opts Options) (*sim.Engine, *Protocol) {
	t.Helper()
	e := sim.New(seed)
	p := New(opts)
	e.Register(p)
	for _, s := range e.AddNodes(n) {
		e.InitNode(s)
	}
	return e, p
}

func overlayGraph(e *sim.Engine, p *Protocol) *graph.Graph {
	g := graph.New(e.Size())
	for slot := 0; slot < e.Size(); slot++ {
		if !e.Node(slot).Alive {
			continue
		}
		for _, id := range p.View(slot).IDs() {
			if peer := e.Lookup(id); peer != nil {
				g.AddEdge(slot, peer.Slot)
			}
		}
	}
	return g
}

func TestViewsFillAndStayBounded(t *testing.T) {
	e, p := buildNetwork(t, 1, 200, Options{ViewSize: 8, Gossip: 4})
	if _, err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < e.Size(); slot++ {
		v := p.View(slot)
		if v.Len() > 8 {
			t.Fatalf("slot %d view size %d exceeds capacity", slot, v.Len())
		}
		if v.Len() < 6 {
			t.Fatalf("slot %d view only has %d entries after 30 rounds", slot, v.Len())
		}
		if v.Contains(e.Node(slot).ID) {
			t.Fatalf("slot %d contains itself", slot)
		}
	}
}

func TestOverlayStaysConnected(t *testing.T) {
	e, p := buildNetwork(t, 2, 300, Options{})
	if _, err := e.Run(40); err != nil {
		t.Fatal(err)
	}
	if !overlayGraph(e, p).Connected() {
		t.Fatal("peer-sampling overlay should be connected after 40 rounds")
	}
}

func TestInDegreeBalanced(t *testing.T) {
	e, p := buildNetwork(t, 3, 400, Options{ViewSize: 12, Gossip: 6})
	if _, err := e.Run(50); err != nil {
		t.Fatal(err)
	}
	indeg := make([]int, e.Size())
	for slot := 0; slot < e.Size(); slot++ {
		for _, id := range p.View(slot).IDs() {
			indeg[e.Lookup(id).Slot]++
		}
	}
	max, zero := 0, 0
	for _, d := range indeg {
		if d > max {
			max = d
		}
		if d == 0 {
			zero++
		}
	}
	// A healthy Cyclon network concentrates in-degrees around ViewSize;
	// (almost) nobody should be orphaned, nobody should be a hotspot. The
	// bulk-synchronous rounds plan every exchange against the round-start
	// views, so two shuffles landing on one partner occasionally hand out
	// overlapping samples whose duplicates merge away — a transient
	// in-degree-0 tail of well under 1% that self-heals within a few
	// rounds (the node's own shuffle re-advertises it every round).
	if zero > len(indeg)/100 {
		t.Fatalf("%d of %d nodes have in-degree 0 (allowed: <= 1%%)", zero, len(indeg))
	}
	if max > 12*5 {
		t.Fatalf("in-degree hotspot: max %d, view size 12", max)
	}
}

func TestChurnPurgesDeadNodes(t *testing.T) {
	e, p := buildNetwork(t, 4, 200, Options{ViewSize: 8, Gossip: 4})
	if _, err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	killed := e.KillFraction(0.2)
	dead := map[view.NodeID]bool{}
	for _, s := range killed {
		dead[e.Node(s).ID] = true
	}
	if _, err := e.Run(40); err != nil {
		t.Fatal(err)
	}
	stale, total := 0, 0
	for slot := 0; slot < e.Size(); slot++ {
		if !e.Node(slot).Alive {
			continue
		}
		for _, id := range p.View(slot).IDs() {
			total++
			if dead[id] {
				stale++
			}
		}
	}
	if total == 0 {
		t.Fatal("no view entries at all")
	}
	if frac := float64(stale) / float64(total); frac > 0.05 {
		t.Fatalf("%.1f%% of view entries point to dead nodes after 40 rounds", frac*100)
	}
}

func TestRejoinAfterIsolation(t *testing.T) {
	e, p := buildNetwork(t, 5, 50, Options{ViewSize: 4, Gossip: 2})
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	// Forcefully isolate node 0.
	p.View(0).Clear()
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if p.View(0).Len() == 0 {
		t.Fatal("isolated node failed to re-bootstrap")
	}
}

func TestSelfDescriptorsPropagateFreshProfiles(t *testing.T) {
	e, p := buildNetwork(t, 6, 100, Options{})
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	// Change node 0's profile (as a reconfiguration would) and check the
	// new epoch wins over stale copies in other views.
	n := e.Node(0)
	n.Profile.Epoch = 7
	if _, err := e.Run(15); err != nil {
		t.Fatal(err)
	}
	seen, fresh := 0, 0
	for slot := 1; slot < e.Size(); slot++ {
		v := p.View(slot)
		if i := v.IndexOf(n.ID); i >= 0 {
			seen++
			if v.At(i).Profile.Epoch == 7 {
				fresh++
			}
		}
	}
	if seen == 0 {
		t.Fatal("node 0 should appear in some views")
	}
	if fresh*2 < seen {
		t.Fatalf("only %d/%d copies carry the new epoch", fresh, seen)
	}
}

func TestBandwidthMetered(t *testing.T) {
	e, p := buildNetwork(t, 7, 100, Options{ViewSize: 8, Gossip: 4})
	if _, err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	m := e.Meter()
	if m.Rounds() != 5 {
		t.Fatalf("meter rounds = %d, want 5", m.Rounds())
	}
	// Every exchange is at most (header + 4 descriptors) twice.
	perRound := sim.DescriptorPayload(4) * 2 * 100
	for r := 0; r < 5; r++ {
		got := m.RoundTotal(r, 0)
		if got <= 0 || got > int64(perRound) {
			t.Fatalf("round %d bandwidth %d outside (0, %d]", r, got, perRound)
		}
	}
	_ = p
}

func TestMessageLossDoesNotBreakOverlay(t *testing.T) {
	e, p := buildNetwork(t, 8, 200, Options{})
	e.SetLossRate(0.3)
	if _, err := e.Run(40); err != nil {
		t.Fatal(err)
	}
	empty := 0
	for slot := 0; slot < e.Size(); slot++ {
		if p.View(slot).Len() == 0 {
			empty++
		}
	}
	if empty > 0 {
		t.Fatalf("%d nodes isolated under 30%% loss", empty)
	}
	if !overlayGraph(e, p).Connected() {
		t.Fatal("overlay should survive 30% message loss")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ViewSize != 16 || o.Gossip != 8 || o.Bootstrap != 5 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{ViewSize: 4, Gossip: 100}.withDefaults()
	if o.Gossip != 4 {
		t.Fatalf("gossip should clamp to view size, got %d", o.Gossip)
	}
}
