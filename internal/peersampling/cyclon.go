// Package peersampling implements a gossip-based peer-sampling service in
// the style of Cyclon / the Jelasity et al. framework — the "global peer
// sampling" layer at the bottom of the paper's runtime (Figure 1).
//
// Every node maintains a small partial view of random other nodes. Each
// round a node swaps a few entries (including a fresh descriptor of itself)
// with the oldest peer in its view. The resulting overlay is a continuously
// reshuffled random graph: connected with overwhelming probability, with
// in-degrees concentrated around the view size, and self-healing under
// churn because descriptors of dead nodes age out through the swaps.
//
// Upper layers (UO1, UO2, the shape overlays) use the service both as a
// stream of uniform random candidates and as the source of the "pinch of
// randomness" Vicinity needs to escape local minima.
package peersampling

import (
	"sosf/internal/sim"
	"sosf/internal/view"
)

// Options configure the protocol. Zero fields take defaults.
type Options struct {
	// ViewSize is the partial-view capacity (default 16).
	ViewSize int
	// Gossip is the shuffle length: how many descriptors each side sends
	// (default 8, clamped to ViewSize).
	Gossip int
	// Bootstrap is how many random existing nodes a joining node learns
	// from the (simulated) bootstrap service (default 5).
	Bootstrap int
}

func (o Options) withDefaults() Options {
	if o.ViewSize <= 0 {
		o.ViewSize = 16
	}
	if o.Gossip <= 0 {
		o.Gossip = 8
	}
	if o.Gossip > o.ViewSize {
		o.Gossip = o.ViewSize
	}
	if o.Bootstrap <= 0 {
		o.Bootstrap = 5
	}
	return o
}

// Protocol is the peer-sampling service. Create it with New, register it
// with the engine before any other layer, then treat it as the candidate
// source for the upper layers.
type Protocol struct {
	opts   Options
	meter  int
	states []*view.View // per engine slot
}

var (
	_ sim.Protocol   = (*Protocol)(nil)
	_ sim.MeterAware = (*Protocol)(nil)
)

// New creates a peer-sampling protocol with the given options.
func New(opts Options) *Protocol {
	return &Protocol{opts: opts.withDefaults(), meter: -1}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "rps" }

// SetMeterIndex implements sim.MeterAware.
func (p *Protocol) SetMeterIndex(i int) { p.meter = i }

// View returns the partial view of the node at slot. The returned view is
// live protocol state: callers must treat it as read-only.
func (p *Protocol) View(slot int) *view.View { return p.states[slot] }

// InitNode implements sim.Protocol: it allocates the node's view and seeds
// it from the simulated bootstrap service (a few uniformly random alive
// nodes), which is how a fresh node would join a deployed system.
func (p *Protocol) InitNode(e *sim.Engine, slot int) {
	for len(p.states) <= slot {
		p.states = append(p.states, nil)
	}
	v := view.New(p.opts.ViewSize)
	p.states[slot] = v
	for i := 0; i < p.opts.Bootstrap; i++ {
		n := e.RandomAlive(slot)
		if n == nil {
			break
		}
		v.Add(n.Descriptor())
	}
}

// Step implements sim.Protocol: one active Cyclon shuffle. The exchange is
// allocation-free in steady state: payloads, samples and the replaceable
// set live in the engine's scratch pad, and all merging happens in place.
func (p *Protocol) Step(e *sim.Engine, slot int) {
	self := e.Node(slot)
	v := p.states[slot]
	v.AgeAll()

	partner, _, ok := v.Oldest()
	if !ok {
		// Isolated (e.g. mass failure took every contact): re-bootstrap.
		if n := e.RandomAlive(slot); n != nil {
			v.Add(n.Descriptor())
		}
		return
	}
	// The pointer to the partner is consumed by the swap (Cyclon): its
	// slot will be refilled by the partner's fresh self-descriptor.
	v.Remove(partner.ID)

	pad := e.Pad()
	sample := v.RandomSampleInto(e.Rand(), p.opts.Gossip-1, pad.Sample[:0], &pad.Sampler)
	pad.Sample = sample
	sendBuf := append(pad.Send[:0], self.Descriptor())
	for _, d := range sample {
		if d.ID != partner.ID {
			sendBuf = append(sendBuf, d)
		}
	}
	pad.Send = sendBuf
	p.count(e, sim.DescriptorPayload(len(sendBuf)))

	target := e.Lookup(partner.ID)
	if target == nil || !target.Alive || !e.DeliverBetween(slot, target.Slot) {
		// Timeout: the request bytes are spent, the entry stays purged.
		return
	}

	// Passive side: reply with a random sample, then merge what it got.
	tv := p.states[target.Slot]
	replyBuf := tv.RandomSampleInto(e.Rand(), p.opts.Gossip, pad.Reply[:0], &pad.Sampler)
	pad.Reply = replyBuf
	p.count(e, sim.DescriptorPayload(len(replyBuf)))
	mergeCyclon(tv, target.ID, sendBuf, replyBuf, &pad.IDs)

	// Active side merges the reply, refilling the slots it emptied.
	mergeCyclon(v, self.ID, replyBuf, sendBuf, &pad.IDs)
}

func (p *Protocol) count(e *sim.Engine, bytes int) {
	if p.meter >= 0 {
		e.Meter().Count(p.meter, bytes)
	}
}

// mergeCyclon folds received descriptors into v following Cyclon's rules:
// duplicates keep the freshest copy, empty slots are filled first, and when
// the view is full, entries that were sent to the peer are overwritten.
// Remaining received descriptors are discarded. scratch backs the
// replaceable set and is grown in place.
func mergeCyclon(v *view.View, self view.NodeID, received, sent []view.Descriptor, scratch *[]view.NodeID) {
	replaceable := (*scratch)[:0]
	for _, d := range sent {
		if d.ID != self {
			replaceable = append(replaceable, d.ID)
		}
	}
	*scratch = replaceable
	for _, d := range received {
		if d.ID == self {
			continue
		}
		if _, held := v.Upsert(d); held {
			continue
		}
		// View full: overwrite one of the entries sent away.
		replaced := false
		for len(replaceable) > 0 && !replaced {
			id := replaceable[len(replaceable)-1]
			replaceable = replaceable[:len(replaceable)-1]
			if i := v.IndexOf(id); i >= 0 {
				v.RemoveAt(i)
				v.Add(d)
				replaced = true
			}
		}
	}
}
