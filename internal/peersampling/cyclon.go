// Package peersampling implements a gossip-based peer-sampling service in
// the style of Cyclon / the Jelasity et al. framework — the "global peer
// sampling" layer at the bottom of the paper's runtime (Figure 1).
//
// Every node maintains a small partial view of random other nodes. Each
// round a node swaps a few entries (including a fresh descriptor of itself)
// with the oldest peer in its view. The resulting overlay is a continuously
// reshuffled random graph: connected with overwhelming probability, with
// in-degrees concentrated around the view size, and self-healing under
// churn because descriptors of dead nodes age out through the swaps.
//
// Upper layers (UO1, UO2, the shape overlays) use the service both as a
// stream of uniform random candidates and as the source of the "pinch of
// randomness" Vicinity needs to escape local minima.
package peersampling

import (
	"fmt"

	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/view"
)

// Options configure the protocol. Zero fields take defaults.
type Options struct {
	// ViewSize is the partial-view capacity (default 16).
	ViewSize int
	// Gossip is the shuffle length: how many descriptors each side sends
	// (default 8, clamped to ViewSize).
	Gossip int
	// Bootstrap is how many random existing nodes a joining node learns
	// from the (simulated) bootstrap service (default 5).
	Bootstrap int
}

func (o Options) withDefaults() Options {
	if o.ViewSize <= 0 {
		o.ViewSize = 16
	}
	if o.Gossip <= 0 {
		o.Gossip = 8
	}
	if o.Gossip > o.ViewSize {
		o.Gossip = o.ViewSize
	}
	if o.Bootstrap <= 0 {
		o.Bootstrap = 5
	}
	return o
}

// plan kinds: what the node's planned turn amounts to.
const (
	planNone      = iota // nothing to do (no exchange possible)
	planBoot             // isolated node re-bootstraps with one contact
	planTimeout          // exchange attempted, request lost in transit
	planDelivered        // full request/response exchange
)

// cyclonPlan is one node's planned shuffle for the current round, computed
// in the parallel plan phase and consumed by Deliver/Absorb. The send and
// reply buffers are retained per slot, so steady-state planning allocates
// nothing.
type cyclonPlan struct {
	kind       int
	partner    view.NodeID
	targetSlot int
	boot       view.Descriptor
	send       []view.Descriptor // what this node sends (self first)
	reply      []view.Descriptor // what the partner answers with
}

// Protocol is the peer-sampling service. Create it with New, register it
// with the engine before any other layer, then treat it as the candidate
// source for the upper layers.
type Protocol struct {
	opts  Options
	meter int
	// states holds the per-slot partial views as dense struct-of-arrays
	// state (headers and entries in contiguous arena-backed arrays).
	states view.Table
	plans  []cyclonPlan // per engine slot
	inbox  sim.Inbox    // passive-side routing, Plan -> Absorb
	arena  []view.Descriptor
}

var (
	_ sim.Protocol    = (*Protocol)(nil)
	_ sim.InboxOwner  = (*Protocol)(nil)
	_ sim.MeterAware  = (*Protocol)(nil)
	_ sim.Snapshotter = (*Protocol)(nil)
)

// New creates a peer-sampling protocol with the given options.
func New(opts Options) *Protocol {
	return &Protocol{opts: opts.withDefaults(), meter: -1}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "rps" }

// SetMeterIndex implements sim.MeterAware.
func (p *Protocol) SetMeterIndex(i int) { p.meter = i }

// View returns the partial view of the node at slot. The returned view is
// live protocol state: callers must treat it as read-only.
func (p *Protocol) View(slot int) *view.View { return p.states.At(slot) }

// Inboxes implements sim.InboxOwner: the engine drives the Deliver-phase
// merge of the shuffle routing.
func (p *Protocol) Inboxes() []*sim.Inbox { return []*sim.Inbox{&p.inbox} }

// ensureSlot grows the per-slot storage (plan records, state table, inbox)
// to cover slot. It draws no randomness, so both InitNode and the restore
// path share it.
func (p *Protocol) ensureSlot(slot int) {
	for len(p.plans) <= slot {
		// Plan payloads are bounded by the shuffle length, so both
		// buffers are carved from a chunked arena up front — one
		// allocation per few hundred slots instead of two lazy ones per
		// slot on its first exchange.
		p.plans = append(p.plans, cyclonPlan{
			send:  sim.Carve(&p.arena, p.opts.Gossip),
			reply: sim.Carve(&p.arena, p.opts.Gossip),
		})
	}
	p.states.Grow(slot + 1)
	p.inbox.Grow(slot + 1)
}

// InitNode implements sim.Protocol: it allocates the node's view and seeds
// it from the simulated bootstrap service (a few uniformly random alive
// nodes), which is how a fresh node would join a deployed system.
func (p *Protocol) InitNode(e *sim.Engine, slot int) {
	p.ensureSlot(slot)
	v := p.states.Init(slot, p.opts.ViewSize)
	for i := 0; i < p.opts.Bootstrap; i++ {
		n := e.RandomAlive(slot)
		if n == nil {
			break
		}
		v.Add(n.Descriptor())
	}
}

// SnapshotState implements sim.Snapshotter: the only inter-round state is
// the per-slot partial view (plans and inboxes live inside one round).
func (p *Protocol) SnapshotState(w *snap.Writer) {
	w.Len(p.states.Len())
	for slot := 0; slot < p.states.Len(); slot++ {
		snap.WriteView(w, p.states.At(slot))
	}
}

// RestoreState implements sim.Snapshotter.
func (p *Protocol) RestoreState(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if n != e.Size() {
		return fmt.Errorf("peersampling: snapshot covers %d slots, engine has %d", n, e.Size())
	}
	if n > 0 {
		p.ensureSlot(n - 1)
	}
	p.states.Truncate(n)
	p.plans = p.plans[:n]
	for slot := 0; slot < n; slot++ {
		snap.ReadViewInto(r, &p.states, slot)
	}
	return r.Err()
}

// Refresh implements sim.Protocol: age the view and reset the inbox.
func (p *Protocol) Refresh(ctx *sim.Ctx) {
	slot := ctx.Slot()
	p.states.At(slot).AgeAll()
	p.inbox.Reset(slot)
}

// Plan implements sim.Protocol: compute one active Cyclon shuffle against a
// read-only snapshot of the overlay. Payloads and samples land in the
// slot's retained plan record; intermediates live on the worker pad — a
// steady-state plan performs zero heap allocations.
func (p *Protocol) Plan(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	e := ctx.Engine()
	v := p.states.At(slot)
	pl := &p.plans[slot]
	pl.kind = planNone

	partner, _, ok := v.Oldest()
	if !ok {
		// Isolated (e.g. mass failure took every contact): re-bootstrap.
		if n := ctx.RandomAlive(slot); n != nil {
			pl.kind = planBoot
			pl.boot = n.Descriptor()
		}
		return
	}
	pl.partner = partner.ID

	// The pointer to the partner is consumed by the swap (Cyclon): its
	// slot will be refilled by the partner's fresh self-descriptor. The
	// view itself stays untouched until Absorb; the sample pool is the
	// view minus the partner, built on the pad.
	pad := ctx.Pad()
	pool := v.AppendEntries(pad.Same[:0])
	for i := range pool {
		if pool[i].ID == partner.ID {
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			break
		}
	}
	pad.Same = pool

	sample := view.SampleInto(ctx.Rand(), pool, p.opts.Gossip-1, pad.Sample[:0], &pad.Sampler)
	pad.Sample = sample
	send := append(pl.send[:0], self.Descriptor())
	send = append(send, sample...)
	pl.send = send

	target := e.Lookup(partner.ID)
	if target == nil || !target.Alive || !ctx.Deliver(target.Slot) {
		// Timeout: the request bytes are spent, the entry stays purged.
		pl.kind = planTimeout
		ctx.Count(p.meter, sim.DescriptorPayload(len(pl.send)))
		return
	}

	// Passive side: the partner answers with a random sample of its own
	// (still frozen) view. All draws come from the active node's stream.
	pl.kind = planDelivered
	pl.targetSlot = target.Slot
	pl.reply = p.states.At(target.Slot).RandomSampleInto(ctx.Rand(), p.opts.Gossip, pl.reply[:0], &pad.Sampler)

	// Route and meter here at the end of Plan: bytes land in the worker's
	// meter shard, the routing in the sender's inbox lane, and the engine
	// merges lanes per destination shard in the Deliver phase.
	ctx.Count(p.meter, sim.DescriptorPayload(len(pl.send)))
	ctx.Count(p.meter, sim.DescriptorPayload(len(pl.reply)))
	p.inbox.Push(pl.targetSlot, slot)
}

// Absorb implements sim.Protocol: fold the round's traffic into the slot's
// view — first the node's own exchange (partner purged, reply merged), then
// every shuffle that reached it as the passive side, in inbox order.
func (p *Protocol) Absorb(ctx *sim.Ctx) {
	slot := ctx.Slot()
	self := ctx.Node()
	v := p.states.At(slot)
	pad := ctx.Pad()
	pl := &p.plans[slot]
	switch pl.kind {
	case planBoot:
		v.Add(pl.boot)
	case planTimeout:
		v.Remove(pl.partner)
	case planDelivered:
		v.Remove(pl.partner)
		mergeCyclon(v, self.ID, pl.reply, pl.send, &pad.IDs)
	}
	for sender := p.inbox.First(slot); sender >= 0; sender = p.inbox.Next(sender) {
		spl := &p.plans[sender]
		mergeCyclon(v, self.ID, spl.send, spl.reply, &pad.IDs)
	}
}

// mergeCyclon folds received descriptors into v following Cyclon's rules:
// duplicates keep the freshest copy, empty slots are filled first, and when
// the view is full, entries that were sent to the peer are overwritten.
// Remaining received descriptors are discarded. scratch backs the
// replaceable set and is grown in place.
func mergeCyclon(v *view.View, self view.NodeID, received, sent []view.Descriptor, scratch *[]view.NodeID) {
	replaceable := (*scratch)[:0]
	for _, d := range sent {
		if d.ID != self {
			replaceable = append(replaceable, d.ID)
		}
	}
	*scratch = replaceable
	for _, d := range received {
		if d.ID == self {
			continue
		}
		if _, held := v.Upsert(d); held {
			continue
		}
		// View full: overwrite one of the entries sent away.
		replaced := false
		for len(replaceable) > 0 && !replaced {
			id := replaceable[len(replaceable)-1]
			replaceable = replaceable[:len(replaceable)-1]
			if i := v.IndexOf(id); i >= 0 {
				v.RemoveAt(i)
				v.Add(d)
				replaced = true
			}
		}
	}
}
