package peersampling

// Distributed plan codec: ships one shard's cyclonPlan records across
// processes so a remote replica can absorb this shard's shuffles exactly as
// if it had planned them locally. Only the fields each kind's Absorb path
// (active side and, via the inbox, passive side) reads are encoded.

import (
	"fmt"

	"sosf/internal/sim"
	"sosf/internal/snap"
	"sosf/internal/view"
)

var _ sim.PlanCodec = (*Protocol)(nil)

// EncodePlans implements sim.PlanCodec.
func (p *Protocol) EncodePlans(w *snap.Writer, slots []int) {
	w.Len(len(slots))
	for _, slot := range slots {
		pl := &p.plans[slot]
		w.Int(slot)
		w.Int(pl.kind)
		switch pl.kind {
		case planBoot:
			snap.WriteDescriptor(w, pl.boot)
		case planTimeout:
			w.Varint(int64(pl.partner))
		case planDelivered:
			w.Varint(int64(pl.partner))
			w.Int(pl.targetSlot)
			snap.WriteDescriptors(w, pl.send)
			snap.WriteDescriptors(w, pl.reply)
		}
	}
}

// DecodePlans implements sim.PlanCodec.
func (p *Protocol) DecodePlans(e *sim.Engine, r *snap.Reader) error {
	n := r.Len()
	size := e.Size()
	for i := 0; i < n; i++ {
		slot := r.Int()
		kind := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if slot < 0 || slot >= size || slot >= len(p.plans) {
			return fmt.Errorf("peersampling: plan slot %d out of range [0,%d)", slot, size)
		}
		pl := &p.plans[slot]
		pl.kind = kind
		switch kind {
		case planNone:
		case planBoot:
			pl.boot = snap.ReadDescriptor(r)
		case planTimeout:
			pl.partner = view.NodeID(r.Varint())
		case planDelivered:
			pl.partner = view.NodeID(r.Varint())
			pl.targetSlot = r.Int()
			pl.send = snap.ReadDescriptorsInto(r, pl.send[:0])
			pl.reply = snap.ReadDescriptorsInto(r, pl.reply[:0])
			if err := r.Err(); err != nil {
				return err
			}
			if pl.targetSlot < 0 || pl.targetSlot >= size {
				return fmt.Errorf("peersampling: plan target %d out of range [0,%d)", pl.targetSlot, size)
			}
			p.inbox.Push(pl.targetSlot, slot)
		default:
			return fmt.Errorf("peersampling: unknown plan kind %d", kind)
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	return r.Err()
}
