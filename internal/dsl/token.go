// Package dsl implements the framework's domain-specific language for
// describing target topologies. A DSL file declares, per the paper: the
// list of components (elementary shapes) with node-assignment weights, the
// ports of each component, and the links between ports. A small
// constant-expression language with `let` bindings and `repeat` loops makes
// regular families of components ("a ring of 8 rings") concise.
//
// The pipeline is Parse (source → AST) followed by Compile (AST →
// spec.Topology); ParseTopology composes both and validates the result.
//
// Example:
//
//	topology ring_of_rings {
//	    let n = 8
//	    repeat i 0 n-1 {
//	        component seg[i] ring {
//	            weight 1
//	            port head
//	            port tail
//	        }
//	    }
//	    repeat i 0 n-1 {
//	        link seg[i].head seg[(i+1)%n].tail
//	    }
//	    option rounds 120
//	}
package dsl

import "fmt"

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	TokEOF Kind = iota + 1
	TokIdent
	TokNumber
	TokString
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokLParen   // (
	TokRParen   // )
	TokDot      // .
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case TokEOF:
		return "end of file"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokDot:
		return "'.'"
	case TokAssign:
		return "'='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokPercent:
		return "'%'"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Error is a positioned DSL error (lexing, parsing, or compilation).
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
