package dsl

import (
	"fmt"

	"sosf/internal/spec"
)

// maxInstantiations bounds the total number of statements a compilation may
// execute, guarding against runaway `repeat` ranges.
const maxInstantiations = 1_000_000

// compileBudget is the active statement budget, maxInstantiations unless a
// test lowers it (the fuzz harness does, to keep the per-input cost of
// mutated repeat bombs bounded).
var compileBudget = maxInstantiations

// Compile evaluates the AST into a topology specification. It executes
// `repeat` loops, folds constant expressions, canonicalizes indexed names
// ("seg[3]"), and reports duplicate definitions with source positions.
// The returned spec is not yet validated; ParseTopology validates too.
func Compile(file *File) (*spec.Topology, error) {
	c := &compiler{
		topo:  &spec.Topology{Name: file.Name},
		vars:  make(map[string]int64),
		names: make(map[string]bool),
	}
	if err := c.stmts(file.Body); err != nil {
		return nil, err
	}
	return c.topo, nil
}

// ParseTopologyBytes is ParseTopology for raw source bytes — the entry
// point for callers that receive DSL over the wire (HTTP request bodies,
// file uploads) and have no business building an intermediate string first.
func ParseTopologyBytes(src []byte) (*spec.Topology, error) {
	return ParseTopology(string(src))
}

// ParseTopology parses, compiles and validates DSL source in one call.
func ParseTopology(src string) (*spec.Topology, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	topo, err := Compile(file)
	if err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return topo, nil
}

type compiler struct {
	topo       *spec.Topology
	vars       map[string]int64
	names      map[string]bool // defined component names (duplicate check is O(1))
	steps      int
	noScenario bool // set inside reconfigure targets (no nested timelines)
}

func (c *compiler) budget(pos Pos) error {
	c.steps++
	if c.steps > compileBudget {
		return errf(pos, "topology too large: more than %d statements executed (runaway repeat?)", compileBudget)
	}
	return nil
}

func (c *compiler) stmts(body []Stmt) error {
	for _, s := range body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s Stmt) error {
	if err := c.budget(s.At()); err != nil {
		return err
	}
	switch s := s.(type) {
	case *LetStmt:
		v, err := c.eval(s.Value)
		if err != nil {
			return err
		}
		c.vars[s.Name] = v
		return nil
	case *NodesStmt:
		v, err := c.eval(s.Value)
		if err != nil {
			return err
		}
		if v < 1 {
			return errf(s.Pos, "nodes must be >= 1, got %d", v)
		}
		c.topo.SetOption("nodes", v)
		return nil
	case *OptionStmt:
		v, err := c.eval(s.Value)
		if err != nil {
			return err
		}
		c.topo.SetOption(s.Key, v)
		return nil
	case *RepeatStmt:
		return c.repeat(s)
	case *ComponentStmt:
		return c.component(s)
	case *LinkStmt:
		return c.link(s)
	case *ScenarioStmt:
		return c.scenario(s)
	default:
		return errf(s.At(), "internal error: unknown statement type %T", s)
	}
}

func (c *compiler) scenario(s *ScenarioStmt) error {
	if c.noScenario {
		return errf(s.Pos, "scenario blocks are not allowed inside a reconfigure target")
	}
	for _, ev := range s.Events {
		if err := c.budget(ev.Pos); err != nil {
			return err
		}
		out, err := c.scenarioEvent(ev)
		if err != nil {
			return err
		}
		c.topo.Scenario = append(c.topo.Scenario, out)
	}
	return nil
}

func (c *compiler) scenarioEvent(ev *ScenarioEventStmt) (spec.ScenarioEvent, error) {
	from, err := c.eval(ev.From)
	if err != nil {
		return spec.ScenarioEvent{}, err
	}
	to := from
	if ev.During {
		if to, err = c.eval(ev.To); err != nil {
			return spec.ScenarioEvent{}, err
		}
	}
	out := spec.ScenarioEvent{
		From:     int(from),
		To:       int(to),
		Kind:     spec.ScenarioKind(ev.Kind),
		Fraction: ev.Fraction,
	}
	switch out.Kind {
	case spec.ScenSnapshot:
		out.Path = ev.Path
	case spec.ScenKillComponent:
		name, err := c.instanceName(ev.Component)
		if err != nil {
			return spec.ScenarioEvent{}, err
		}
		out.Component = name
	case spec.ScenJoin, spec.ScenPartition:
		n, err := c.eval(ev.Count)
		if err != nil {
			return spec.ScenarioEvent{}, err
		}
		out.Count = int(n)
	case spec.ScenReconfigure:
		// The inline body compiles as a topology of its own, inheriting
		// the enclosing `let` bindings so shared constants stay shared.
		sub := &compiler{
			topo:       &spec.Topology{Name: fmt.Sprintf("%s@%d", c.topo.Name, from)},
			vars:       make(map[string]int64, len(c.vars)),
			names:      make(map[string]bool),
			steps:      c.steps,
			noScenario: true,
		}
		for k, v := range c.vars {
			sub.vars[k] = v
		}
		if err := sub.stmts(ev.Body); err != nil {
			return spec.ScenarioEvent{}, err
		}
		c.steps = sub.steps
		out.Reconfigure = sub.topo
	}
	return out, nil
}

func (c *compiler) repeat(s *RepeatStmt) error {
	from, err := c.eval(s.From)
	if err != nil {
		return err
	}
	to, err := c.eval(s.To)
	if err != nil {
		return err
	}
	shadow, hadShadow := c.vars[s.Var]
	defer func() {
		if hadShadow {
			c.vars[s.Var] = shadow
		} else {
			delete(c.vars, s.Var)
		}
	}()
	for i := from; i <= to; i++ {
		c.vars[s.Var] = i
		if err := c.stmts(s.Body); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) component(s *ComponentStmt) error {
	name, err := c.instanceName(s.Name)
	if err != nil {
		return err
	}
	if c.names[name] {
		return errf(s.Pos, "component %q already defined", name)
	}
	c.names[name] = true
	comp := spec.Component{
		Name:   name,
		Shape:  s.Shape,
		Weight: 1,
	}
	for _, cs := range s.Body {
		if err := c.budget(cs.At()); err != nil {
			return err
		}
		switch cs := cs.(type) {
		case *WeightStmt:
			w, err := c.eval(cs.Value)
			if err != nil {
				return err
			}
			if w < 1 {
				return errf(cs.Pos, "component %q: weight must be >= 1, got %d", name, w)
			}
			comp.Weight = w
		case *PortStmt:
			for _, p := range comp.Ports {
				if p == cs.Name {
					return errf(cs.Pos, "component %q: duplicate port %q", name, cs.Name)
				}
			}
			comp.Ports = append(comp.Ports, cs.Name)
		case *ParamStmt:
			v, err := c.eval(cs.Value)
			if err != nil {
				return err
			}
			if comp.Params == nil {
				comp.Params = make(map[string]int64)
			}
			if _, dup := comp.Params[cs.Key]; dup {
				return errf(cs.Pos, "component %q: duplicate param %q", name, cs.Key)
			}
			comp.Params[cs.Key] = v
		default:
			return errf(cs.At(), "internal error: unknown component statement type %T", cs)
		}
	}
	c.topo.Components = append(c.topo.Components, comp)
	return nil
}

func (c *compiler) link(s *LinkStmt) error {
	a, err := c.portRef(s.A)
	if err != nil {
		return err
	}
	b, err := c.portRef(s.B)
	if err != nil {
		return err
	}
	c.topo.Links = append(c.topo.Links, spec.Link{A: a, B: b})
	return nil
}

func (c *compiler) portRef(r PortRefExpr) (spec.PortRef, error) {
	name, err := c.instanceName(r.Name)
	if err != nil {
		return spec.PortRef{}, err
	}
	return spec.PortRef{Component: name, Port: r.Port}, nil
}

// instanceName canonicalizes a possibly-indexed name reference.
func (c *compiler) instanceName(ref NameRef) (string, error) {
	if ref.Index == nil {
		return ref.Base, nil
	}
	idx, err := c.eval(ref.Index)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s[%d]", ref.Base, idx), nil
}

// eval folds a constant expression to an int64.
func (c *compiler) eval(e Expr) (int64, error) {
	switch e := e.(type) {
	case *NumberLit:
		return e.Value, nil
	case *VarRef:
		v, ok := c.vars[e.Name]
		if !ok {
			return 0, errf(e.Pos, "undefined variable %q", e.Name)
		}
		return v, nil
	case *UnaryExpr:
		x, err := c.eval(e.X)
		if err != nil {
			return 0, err
		}
		return -x, nil
	case *BinaryExpr:
		x, err := c.eval(e.X)
		if err != nil {
			return 0, err
		}
		y, err := c.eval(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case TokPlus:
			return x + y, nil
		case TokMinus:
			return x - y, nil
		case TokStar:
			return x * y, nil
		case TokSlash:
			if y == 0 {
				return 0, errf(e.Pos, "division by zero")
			}
			return x / y, nil
		case TokPercent:
			if y == 0 {
				return 0, errf(e.Pos, "modulo by zero")
			}
			// Euclidean modulo: the result has the sign of the divisor,
			// so ring-index arithmetic like (i-1)%n wraps as expected.
			m := x % y
			if m != 0 && (m < 0) != (y < 0) {
				m += y
			}
			return m, nil
		default:
			return 0, errf(e.Pos, "internal error: unknown operator %s", e.Op)
		}
	default:
		return 0, errf(e.At(), "internal error: unknown expression type %T", e)
	}
}
