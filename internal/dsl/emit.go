package dsl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sosf/internal/spec"
)

// Emit renders a compiled topology back to DSL source in canonical form:
// options sorted by key (with `nodes` first as its own statement), every
// component's weight written explicitly, params sorted, and the scenario
// timeline in declaration order. The output is the identity under the
// compiler — ParseTopology(Emit(t)) reproduces t — which is what makes
// machine-written reproducers (the fuzzing campaign's shrunk timelines)
// trustworthy: the committed .sos file IS the spec that ran.
//
// Canonicalization notes for round-trippers:
//
//   - A reconfigure target's Name is dropped on emission; the compiler
//     re-derives it as "<outer>@<round>", exactly as it does for inline
//     bodies. Targets carrying any other name do not round-trip.
//   - nil and empty Params / Options maps both emit nothing and re-parse
//     as nil.
//
// Emit fails when a value has no DSL spelling: names that are not
// identifiers (or "ident[index]" forms), option keys that are not
// identifiers, non-finite or negative fractions, or strings with
// unescapable control characters.
func Emit(t *spec.Topology) (string, error) {
	var b strings.Builder
	name, err := topologyName(t.Name)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "topology %s {\n", name)
	if err := emitBody(&b, t, "    "); err != nil {
		return "", err
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// emitBody writes the statements of a topology block (options, components,
// links, scenario) at the given indentation. It is shared by Emit and by
// inline reconfigure bodies.
func emitBody(b *strings.Builder, t *spec.Topology, indent string) error {
	if n, ok := t.Options["nodes"]; ok {
		fmt.Fprintf(b, "%snodes %s\n", indent, emitInt(n))
	}
	keys := make([]string, 0, len(t.Options))
	for k := range t.Options {
		if k != "nodes" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !isIdent(k) {
			return fmt.Errorf("dsl: option key %q is not an identifier", k)
		}
		fmt.Fprintf(b, "%soption %s %s\n", indent, k, emitInt(t.Options[k]))
	}
	for i := range t.Components {
		if err := emitComponent(b, &t.Components[i], indent); err != nil {
			return err
		}
	}
	for _, l := range t.Links {
		a, err := portRef(l.A)
		if err != nil {
			return err
		}
		bb, err := portRef(l.B)
		if err != nil {
			return err
		}
		fmt.Fprintf(b, "%slink %s %s\n", indent, a, bb)
	}
	if len(t.Scenario) > 0 {
		fmt.Fprintf(b, "%sscenario {\n", indent)
		for i := range t.Scenario {
			if err := emitEvent(b, &t.Scenario[i], indent+"    "); err != nil {
				return err
			}
		}
		fmt.Fprintf(b, "%s}\n", indent)
	}
	return nil
}

func emitComponent(b *strings.Builder, c *spec.Component, indent string) error {
	name, err := componentName(c.Name)
	if err != nil {
		return err
	}
	if !isIdent(c.Shape) {
		return fmt.Errorf("dsl: shape %q is not an identifier", c.Shape)
	}
	fmt.Fprintf(b, "%scomponent %s %s {\n", indent, name, c.Shape)
	fmt.Fprintf(b, "%s    weight %s\n", indent, emitInt(c.Weight))
	keys := make([]string, 0, len(c.Params))
	for k := range c.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !isIdent(k) {
			return fmt.Errorf("dsl: component %q: param key %q is not an identifier", c.Name, k)
		}
		fmt.Fprintf(b, "%s    param %s %s\n", indent, k, emitInt(c.Params[k]))
	}
	for _, p := range c.Ports {
		if !isIdent(p) {
			return fmt.Errorf("dsl: component %q: port %q is not an identifier", c.Name, p)
		}
		fmt.Fprintf(b, "%s    port %s\n", indent, p)
	}
	fmt.Fprintf(b, "%s}\n", indent)
	return nil
}

func emitEvent(b *strings.Builder, ev *spec.ScenarioEvent, indent string) error {
	when := fmt.Sprintf("at %d", ev.From)
	if ev.To > ev.From {
		when = fmt.Sprintf("during %d %d", ev.From, ev.To)
	}
	if ev.From < 0 || ev.To < ev.From {
		return fmt.Errorf("dsl: scenario event window [%d, %d] has no DSL spelling", ev.From, ev.To)
	}
	switch ev.Kind {
	case spec.ScenKill, spec.ScenLoss, spec.ScenChurn:
		f, err := emitFraction(ev.Fraction)
		if err != nil {
			return fmt.Errorf("dsl: %s event: %w", ev.Kind, err)
		}
		fmt.Fprintf(b, "%s%s %s %s\n", indent, when, ev.Kind, f)
	case spec.ScenKillComponent:
		name, err := componentName(ev.Component)
		if err != nil {
			return err
		}
		fmt.Fprintf(b, "%s%s kill component %s\n", indent, when, name)
	case spec.ScenJoin, spec.ScenPartition:
		fmt.Fprintf(b, "%s%s %s %d\n", indent, when, ev.Kind, ev.Count)
	case spec.ScenHeal:
		fmt.Fprintf(b, "%s%s heal\n", indent, when)
	case spec.ScenSnapshot:
		path, err := stringLit(ev.Path)
		if err != nil {
			return fmt.Errorf("dsl: snapshot path: %w", err)
		}
		fmt.Fprintf(b, "%s%s snapshot %s\n", indent, when, path)
	case spec.ScenReconfigure:
		if ev.Reconfigure == nil {
			return fmt.Errorf("dsl: reconfigure event at %d has no target", ev.From)
		}
		if len(ev.Reconfigure.Scenario) > 0 {
			return fmt.Errorf("dsl: reconfigure target %q carries its own scenario", ev.Reconfigure.Name)
		}
		fmt.Fprintf(b, "%s%s reconfigure {\n", indent, when)
		if err := emitBody(b, ev.Reconfigure, indent+"    "); err != nil {
			return err
		}
		fmt.Fprintf(b, "%s}\n", indent)
	default:
		return fmt.Errorf("dsl: scenario event kind %q has no DSL spelling", ev.Kind)
	}
	return nil
}

// emitInt renders an int64 literal. Negative values rely on the parser's
// unary minus.
func emitInt(v int64) string { return strconv.FormatInt(v, 10) }

// emitFraction renders a float argument of kill/loss/churn. The lexer only
// accepts "digits.digits" literals — no exponents, no sign — so the value
// must be finite and non-negative; 'f' formatting with precision -1 keeps
// the exact bits (ParseFloat inverts it losslessly).
func emitFraction(f float64) (string, error) {
	if f != f || f < 0 || f > 1e18 {
		return "", fmt.Errorf("fraction %v has no DSL spelling", f)
	}
	return strconv.FormatFloat(f, 'f', -1, 64), nil
}

// topologyName renders the `topology` header name: a bare identifier when
// possible, a quoted string otherwise.
func topologyName(name string) (string, error) {
	if isIdent(name) {
		return name, nil
	}
	return stringLit(name)
}

// componentName renders a canonical component name — "seg" or "seg[3]" —
// as a parseable name reference.
func componentName(name string) (string, error) {
	base, idx, ok := splitIndexed(name)
	if !ok {
		return "", fmt.Errorf("dsl: name %q has no DSL spelling (want ident or ident[index])", name)
	}
	if idx == "" {
		return base, nil
	}
	return base + "[" + idx + "]", nil
}

// portRef renders a "component.port" reference.
func portRef(r spec.PortRef) (string, error) {
	name, err := componentName(r.Component)
	if err != nil {
		return "", err
	}
	if !isIdent(r.Port) {
		return "", fmt.Errorf("dsl: port %q is not an identifier", r.Port)
	}
	return name + "." + r.Port, nil
}

// splitIndexed decomposes a canonical name into base and optional decimal
// index ("seg[3]" -> "seg", "3"). ok is false when the name is neither a
// plain identifier nor the indexed form.
func splitIndexed(name string) (base, idx string, ok bool) {
	if isIdent(name) {
		return name, "", true
	}
	open := strings.IndexByte(name, '[')
	if open <= 0 || !strings.HasSuffix(name, "]") {
		return "", "", false
	}
	base, idx = name[:open], name[open+1:len(name)-1]
	if !isIdent(base) || !isDecimal(idx) {
		return "", "", false
	}
	return base, idx, true
}

// stringLit renders a double-quoted DSL string literal, escaping the four
// sequences the lexer understands. Other control characters (including
// '\r') have no spelling.
func stringLit(s string) (string, error) {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if c < 0x20 || c == 0x7f {
				return "", fmt.Errorf("string %q contains unescapable byte %#x", s, c)
			}
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String(), nil
}

func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return false
		}
	}
	// Statement keywords parse fine as names in every position Emit uses
	// them (the grammar is position-keyed), so no reserved-word check.
	return true
}

func isDecimal(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
