package dsl

import (
	"fmt"
	"strings"
	"unicode"
)

// lexer turns source text into tokens. '#' starts a comment to end of line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// lex tokenizes the whole input.
func lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.off >= len(l.src) {
		return 0, false
	}
	return l.src[l.off], true
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) next() (Token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return Token{Kind: TokEOF, Pos: l.pos()}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return l.scanToken()
		}
	}
}

func (l *lexer) scanToken() (Token, error) {
	pos := l.pos()
	c, _ := l.peekByte()
	switch {
	case isIdentStart(c):
		return Token{Kind: TokIdent, Text: l.scanWhile(isIdentPart), Pos: pos}, nil
	case c >= '0' && c <= '9':
		text := l.scanWhile(func(b byte) bool { return b >= '0' && b <= '9' || b == '_' })
		// A '.' directly followed by a digit continues the number as a
		// float literal ("0.5"); any other '.' is left for the dot token
		// (so "seg[1].head" still lexes as name-dot-name).
		if c, ok := l.peekByte(); ok && c == '.' && l.off+1 < len(l.src) &&
			l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9' {
			l.advance() // '.'
			frac := l.scanWhile(func(b byte) bool { return b >= '0' && b <= '9' || b == '_' })
			text += "." + frac
		}
		return Token{Kind: TokNumber, Text: strings.ReplaceAll(text, "_", ""), Pos: pos}, nil
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	single := map[byte]Kind{
		'{': TokLBrace, '}': TokRBrace, '[': TokLBracket, ']': TokRBracket,
		'(': TokLParen, ')': TokRParen, '.': TokDot, '=': TokAssign,
		'+': TokPlus, '-': TokMinus, '*': TokStar, '/': TokSlash, '%': TokPercent,
	}
	if k, ok := single[c]; ok {
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", rune(c))
}

func (l *lexer) scanWhile(pred func(byte) bool) string {
	start := l.off
	for {
		c, ok := l.peekByte()
		if !ok || !pred(c) {
			break
		}
		l.advance()
	}
	return l.src[start:l.off]
}

func (l *lexer) scanString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return Token{}, errf(pos, "unterminated string")
		}
		l.advance()
		if c == '"' {
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		}
		if c == '\\' {
			esc, ok := l.peekByte()
			if !ok {
				return Token{}, errf(pos, "unterminated string")
			}
			l.advance()
			switch esc {
			case '"', '\\':
				b.WriteByte(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return Token{}, errf(pos, "unknown escape %q", fmt.Sprintf("\\%c", esc))
			}
			continue
		}
		b.WriteByte(c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
