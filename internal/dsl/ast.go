package dsl

// File is a parsed DSL file: one `topology <name> { ... }` block.
type File struct {
	Pos  Pos
	Name string
	Body []Stmt
}

// Stmt is a topology-level statement.
type Stmt interface {
	At() Pos
	stmt()
}

// LetStmt binds a constant: `let n = 8`.
type LetStmt struct {
	Pos   Pos
	Name  string
	Value Expr
}

// NodesStmt sets the default population size: `nodes 3200`.
type NodesStmt struct {
	Pos   Pos
	Value Expr
}

// OptionStmt records a named integer option: `option rounds 120`.
type OptionStmt struct {
	Pos   Pos
	Key   string
	Value Expr
}

// RepeatStmt executes its body for each value of Var in [From, To]
// (inclusive; an empty range executes zero times): `repeat i 0 7 { ... }`.
type RepeatStmt struct {
	Pos      Pos
	Var      string
	From, To Expr
	Body     []Stmt
}

// ComponentStmt declares a component: `component seg[i] ring { ... }`.
type ComponentStmt struct {
	Pos   Pos
	Name  NameRef
	Shape string
	Body  []CompStmt
}

// LinkStmt declares a link between two ports:
// `link a.head b.tail`.
type LinkStmt struct {
	Pos  Pos
	A, B PortRefExpr
}

// ScenarioStmt declares a fault/reconfiguration timeline:
// `scenario { at 50 kill 0.5  during 10 20 loss 0.3 }`.
type ScenarioStmt struct {
	Pos    Pos
	Events []*ScenarioEventStmt
}

// ScenarioEventStmt is one scheduled action inside a scenario block.
type ScenarioEventStmt struct {
	Pos Pos
	// During distinguishes `during FROM TO action` from `at ROUND action`.
	During   bool
	From, To Expr // To is nil for `at` events
	// Kind is the action keyword: "kill", "kill-component", "join",
	// "loss", "churn", "partition", "heal", or "reconfigure".
	Kind string
	// Fraction is the parsed float argument of kill/loss/churn.
	Fraction float64
	// Count is the integer argument of join/partition.
	Count Expr
	// Component is the kill-component target (possibly indexed).
	Component NameRef
	// Path is the checkpoint destination of a snapshot action.
	Path string
	// Body is the inline topology body of a reconfigure action.
	Body []Stmt
}

func (s *LetStmt) At() Pos       { return s.Pos }
func (s *NodesStmt) At() Pos     { return s.Pos }
func (s *OptionStmt) At() Pos    { return s.Pos }
func (s *RepeatStmt) At() Pos    { return s.Pos }
func (s *ComponentStmt) At() Pos { return s.Pos }
func (s *LinkStmt) At() Pos      { return s.Pos }
func (s *ScenarioStmt) At() Pos  { return s.Pos }

func (*LetStmt) stmt()       {}
func (*NodesStmt) stmt()     {}
func (*OptionStmt) stmt()    {}
func (*RepeatStmt) stmt()    {}
func (*ComponentStmt) stmt() {}
func (*LinkStmt) stmt()      {}
func (*ScenarioStmt) stmt()  {}

// CompStmt is a statement inside a component block.
type CompStmt interface {
	At() Pos
	compStmt()
}

// WeightStmt sets the component's node-assignment weight: `weight 2`.
type WeightStmt struct {
	Pos   Pos
	Value Expr
}

// PortStmt declares a port: `port head`.
type PortStmt struct {
	Pos  Pos
	Name string
}

// ParamStmt sets a shape parameter: `param width 4`.
type ParamStmt struct {
	Pos   Pos
	Key   string
	Value Expr
}

func (s *WeightStmt) At() Pos { return s.Pos }
func (s *PortStmt) At() Pos   { return s.Pos }
func (s *ParamStmt) At() Pos  { return s.Pos }

func (*WeightStmt) compStmt() {}
func (*PortStmt) compStmt()   {}
func (*ParamStmt) compStmt()  {}

// NameRef is a possibly-indexed component name: `seg` or `seg[(i+1)%n]`.
// The compiler canonicalizes indexed names to "seg[3]".
type NameRef struct {
	Pos   Pos
	Base  string
	Index Expr // nil when unindexed
}

// PortRefExpr references a port of a (possibly indexed) component.
type PortRefExpr struct {
	Pos  Pos
	Name NameRef
	Port string
}

// Expr is an integer constant expression.
type Expr interface {
	At() Pos
	expr()
}

// NumberLit is an integer literal.
type NumberLit struct {
	Pos   Pos
	Value int64
}

// VarRef references a `let` binding or a `repeat` variable.
type VarRef struct {
	Pos  Pos
	Name string
}

// UnaryExpr is unary negation.
type UnaryExpr struct {
	Pos Pos
	Op  Kind // TokMinus
	X   Expr
}

// BinaryExpr is a binary arithmetic operation (+ - * / %).
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	X, Y Expr
}

func (e *NumberLit) At() Pos  { return e.Pos }
func (e *VarRef) At() Pos     { return e.Pos }
func (e *UnaryExpr) At() Pos  { return e.Pos }
func (e *BinaryExpr) At() Pos { return e.Pos }

func (*NumberLit) expr()  {}
func (*VarRef) expr()     {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
