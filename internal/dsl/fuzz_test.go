package dsl

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the full DSL front end — lexer, parser, compiler,
// validator — over arbitrary inputs. The invariants:
//
//   - ParseTopology never panics; it either returns a spec or an error.
//   - Any spec it accepts must survive the emitter round trip: Emit
//     succeeds (everything the compiler canonicalizes has a DSL
//     spelling) and re-parsing the emitted source succeeds. This is the
//     contract the fuzzing campaign's reproducer writer depends on.
//
// The seed corpus is every committed .sos fixture plus a few handwritten
// near-miss inputs; `go test -fuzz=FuzzParse ./internal/dsl` explores from
// there (CI runs a 30s smoke).
func FuzzParse(f *testing.F) {
	fixtures, err := filepath.Glob("../../testdata/*.sos")
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range fixtures {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, seed := range []string{
		"topology t { component a ring { port p } }",
		"topology \"q\" { nodes 10 option rounds 9 component a ring { weight 2 } }",
		"topology t { let k = 3 repeat i 0 k-1 { component s[i] ring { port h } } }",
		"topology t { component a ring { port h } component b ring { port t } link a.h b.t }",
		"topology t { scenario { at 5 kill 0.5 during 1 4 loss 0.25 at 9 heal } }",
		"topology t { scenario { at 3 snapshot \"ck-%d.sosnap\" at 7 reconfigure { component a ring { } } } }",
		"topology t { scenario { at 2 join 12 during 3 6 partition 2 at 8 kill component a } component a ring { } }",
		"topology t { nodes 1_000 component a star { param hubs 2 } }",
		"topology t {", // unterminated
		"topology t { component a ring { port p } } trailing",
	} {
		f.Add(seed)
	}

	// Mutated `repeat` bombs ("repeat i 0 999998 { component c[i] ... }")
	// legitimately compile right up to the 1M-statement budget, which costs
	// seconds per exec and starves the fuzzer. Realistic parser bugs do not
	// need a million statements to surface; shrink the budget for the
	// fuzzing session.
	restore := compileBudget
	compileBudget = 50_000
	f.Cleanup(func() { compileBudget = restore })

	f.Fuzz(func(t *testing.T, src string) {
		topo, err := ParseTopology(src)
		if err != nil {
			return
		}
		emitted, err := Emit(topo)
		if err != nil {
			t.Fatalf("accepted spec has no emitted form: %v\ninput: %q", err, src)
		}
		if _, err := ParseTopology(emitted); err != nil {
			t.Fatalf("emitted source does not re-parse: %v\ninput: %q\nemitted:\n%s", err, src, emitted)
		}
	})
}
