package dsl

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sosf/internal/spec"
)

// TestEmitRoundTripFixtures re-parses the emitted form of every committed
// .sos fixture and requires the compiled specs to match: the emitter must
// be an identity under the compiler even for human-written sources full of
// lets, repeats, and comments.
func TestEmitRoundTripFixtures(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.sos")
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			assertRoundTrip(t, mustParse(t, string(src)))
		})
	}
}

// TestEmitRoundTripRandom is the emitter's property test: for randomized
// valid specs spanning every statement and scenario kind, parse(emit(spec))
// must equal spec, and emit must be a canonical fixpoint
// (emit(parse(emit(spec))) == emit(spec)).
func TestEmitRoundTripRandom(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		topo := randomSpec(rng)
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid spec: %v", seed, err)
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			assertRoundTrip(t, topo)
		})
	}
}

func TestEmitRejectsUnspeakable(t *testing.T) {
	base := func() *spec.Topology {
		return &spec.Topology{
			Name:       "ok",
			Components: []spec.Component{{Name: "a", Shape: "ring", Weight: 1}},
		}
	}
	cases := []struct {
		name  string
		wreck func(*spec.Topology)
	}{
		{"bad component name", func(t *spec.Topology) { t.Components[0].Name = "a-b" }},
		{"bad option key", func(t *spec.Topology) { t.SetOption("no good", 1) }},
		{"negative fraction", func(t *spec.Topology) {
			t.Scenario = []spec.ScenarioEvent{{From: 1, To: 1, Kind: spec.ScenKill, Fraction: -0.5}}
		}},
		{"carriage return in path", func(t *spec.Topology) {
			t.Scenario = []spec.ScenarioEvent{{From: 1, To: 1, Kind: spec.ScenSnapshot, Path: "a\rb"}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := base()
			tc.wreck(topo)
			if _, err := Emit(topo); err == nil {
				t.Fatal("Emit accepted an unrepresentable spec")
			}
		})
	}
}

func mustParse(t *testing.T, src string) *spec.Topology {
	t.Helper()
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return topo
}

func assertRoundTrip(t *testing.T, topo *spec.Topology) {
	t.Helper()
	src, err := Emit(topo)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	back, err := ParseTopology(src)
	if err != nil {
		t.Fatalf("re-parse of emitted source: %v\n%s", err, src)
	}
	if !reflect.DeepEqual(normalizeSpec(topo), normalizeSpec(back)) {
		t.Fatalf("round trip changed the spec\nemitted:\n%s\noriginal: %+v\nreparsed: %+v", src, topo, back)
	}
	again, err := Emit(back)
	if err != nil {
		t.Fatalf("re-emit: %v", err)
	}
	if again != src {
		t.Fatalf("emit is not a fixpoint\nfirst:\n%s\nsecond:\n%s", src, again)
	}
}

// normalizeSpec maps a spec to the emitter's canonical form without
// changing meaning: empty maps become nil (the parser never allocates
// empty ones) and the comparison recurses into reconfigure targets.
func normalizeSpec(t *spec.Topology) *spec.Topology {
	out := *t
	if len(out.Options) == 0 {
		out.Options = nil
	}
	out.Components = append([]spec.Component(nil), t.Components...)
	for i := range out.Components {
		if len(out.Components[i].Params) == 0 {
			out.Components[i].Params = nil
		}
		if len(out.Components[i].Ports) == 0 {
			out.Components[i].Ports = nil
		}
	}
	if len(out.Links) == 0 {
		out.Links = nil
	}
	if len(out.Scenario) == 0 {
		out.Scenario = nil
		return &out
	}
	out.Scenario = append([]spec.ScenarioEvent(nil), t.Scenario...)
	for i := range out.Scenario {
		if out.Scenario[i].Reconfigure != nil {
			out.Scenario[i].Reconfigure = normalizeSpec(out.Scenario[i].Reconfigure)
		}
	}
	return &out
}

// randomSpec builds a random valid topology exercising every emitter path:
// plain and indexed names, all shapes, params, ports, links, options, and
// a scenario with every event kind (windows placed in disjoint lanes so
// the loss/partition overlap rule always holds).
func randomSpec(rng *rand.Rand) *spec.Topology {
	topo := &spec.Topology{Name: pick(rng, "net", "fuzz topo", "m_1", "edge case \"x\"")}

	nComp := 1 + rng.Intn(4)
	for i := 0; i < nComp; i++ {
		name := fmt.Sprintf("c%d", i)
		if rng.Intn(3) == 0 {
			name = fmt.Sprintf("seg[%d]", i)
		}
		comp := spec.Component{Name: name, Weight: 1 + int64(rng.Intn(5))}
		comp.Shape, comp.Params = randomShape(rng)
		for p := 0; p < rng.Intn(3); p++ {
			comp.Ports = append(comp.Ports, fmt.Sprintf("p%d", p))
		}
		topo.Components = append(topo.Components, comp)
	}

	// Links between distinct ports, deduplicated via the validator's own
	// canonical form: just retry a few times and keep what is new.
	seen := map[string]bool{}
	for try := 0; try < 4; try++ {
		a, okA := randomPort(rng, topo)
		b, okB := randomPort(rng, topo)
		if !okA || !okB || a == b {
			continue
		}
		key := a.String() + "|" + b.String()
		rkey := b.String() + "|" + a.String()
		if seen[key] || seen[rkey] {
			continue
		}
		seen[key], seen[rkey] = true, true
		topo.Links = append(topo.Links, spec.Link{A: a, B: b})
	}

	if rng.Intn(2) == 0 {
		topo.SetOption("nodes", int64(100+rng.Intn(900)))
	}
	if rng.Intn(3) == 0 {
		topo.SetOption("seed", int64(rng.Intn(100)))
	}

	// Scenario: each event gets its own 10-round lane, so stateful
	// windows can never overlap and the horizon is easy to bound.
	nEv := rng.Intn(6)
	for i := 0; i < nEv; i++ {
		lane := 1 + i*10
		topo.Scenario = append(topo.Scenario, randomEvent(rng, topo, lane))
	}
	if len(topo.Scenario) > 0 && rng.Intn(2) == 0 {
		topo.SetOption("rounds", int64(10*nEv+rng.Intn(50)))
	}
	return topo
}

func randomShape(rng *rand.Rand) (string, map[string]int64) {
	switch rng.Intn(6) {
	case 0:
		return "ring", nil
	case 1:
		return "line", nil
	case 2:
		return "clique", nil
	case 3:
		return "star", map[string]int64{"hubs": 1 + int64(rng.Intn(3))}
	case 4:
		return "tree", map[string]int64{"arity": 1 + int64(rng.Intn(3))}
	default:
		return "torus", map[string]int64{"width": 2 + int64(rng.Intn(3))}
	}
}

func randomPort(rng *rand.Rand, topo *spec.Topology) (spec.PortRef, bool) {
	c := &topo.Components[rng.Intn(len(topo.Components))]
	if len(c.Ports) == 0 {
		return spec.PortRef{}, false
	}
	return spec.PortRef{Component: c.Name, Port: c.Ports[rng.Intn(len(c.Ports))]}, true
}

func randomEvent(rng *rand.Rand, topo *spec.Topology, lane int) spec.ScenarioEvent {
	from := lane + rng.Intn(3)
	to := from
	window := func(max int) {
		if rng.Intn(2) == 0 {
			to = from + 1 + rng.Intn(max)
		}
	}
	switch rng.Intn(8) {
	case 0:
		window(5)
		return spec.ScenarioEvent{From: from, To: to, Kind: spec.ScenKill, Fraction: 0.05 + rng.Float64()*0.5}
	case 1:
		comp := topo.Components[rng.Intn(len(topo.Components))].Name
		return spec.ScenarioEvent{From: from, To: to, Kind: spec.ScenKillComponent, Component: comp}
	case 2:
		window(5)
		return spec.ScenarioEvent{From: from, To: to, Kind: spec.ScenJoin, Count: 1 + rng.Intn(40)}
	case 3:
		window(6)
		return spec.ScenarioEvent{From: from, To: to, Kind: spec.ScenLoss, Fraction: rng.Float64() * 0.9}
	case 4:
		window(6)
		return spec.ScenarioEvent{From: from, To: to, Kind: spec.ScenChurn, Fraction: 0.01 + rng.Float64()*0.2}
	case 5:
		window(6)
		return spec.ScenarioEvent{From: from, To: to, Kind: spec.ScenPartition, Count: 2 + rng.Intn(3)}
	case 6:
		return spec.ScenarioEvent{From: from, To: to, Kind: spec.ScenSnapshot,
			Path: pick(rng, "ck-%d.sosnap", `odd "quoted"`, "tab\there", "nl\nthere")}
	default:
		// The compiler derives inline-body names as "<outer>@<round>";
		// generate exactly that so the round trip is exact.
		target := &spec.Topology{
			Name: fmt.Sprintf("%s@%d", topo.Name, from),
			Components: []spec.Component{
				{Name: "r0", Shape: "ring", Weight: 1, Ports: []string{"head"}},
				{Name: "r1", Shape: "clique", Weight: 2, Ports: []string{"head"}},
			},
			Links: []spec.Link{{
				A: spec.PortRef{Component: "r0", Port: "head"},
				B: spec.PortRef{Component: "r1", Port: "head"},
			}},
		}
		return spec.ScenarioEvent{From: from, To: from, Kind: spec.ScenReconfigure, Reconfigure: target}
	}
}

func pick(rng *rand.Rand, options ...string) string {
	return options[rng.Intn(len(options))]
}
