package dsl

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse turns DSL source into an AST.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file, err := p.parseFile()
	if err != nil {
		return nil, err
	}
	return file, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, describe(t))
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(word string) (Token, error) {
	t := p.peek()
	if t.Kind != TokIdent || t.Text != word {
		return t, errf(t.Pos, "expected %q, found %s", word, describe(t))
	}
	return p.next(), nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokIdent, TokNumber:
		return "'" + t.Text + "'"
	case TokString:
		return strconv.Quote(t.Text)
	default:
		return t.Kind.String()
	}
}

func (p *parser) parseFile() (*File, error) {
	start, err := p.expectKeyword("topology")
	if err != nil {
		return nil, err
	}
	name := p.peek()
	switch name.Kind {
	case TokIdent, TokString:
		p.next()
	default:
		return nil, errf(name.Pos, "expected topology name, found %s", describe(name))
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, errf(t.Pos, "unexpected %s after topology block", describe(t))
	}
	return &File{Pos: start.Pos, Name: name.Text, Body: body}, nil
}

// parseBlock parses `{ stmt* }`.
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var body []Stmt
	for {
		t := p.peek()
		switch t.Kind {
		case TokRBrace:
			p.next()
			return body, nil
		case TokEOF:
			return nil, errf(t.Pos, "unterminated block: missing '}'")
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, stmt)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, errf(t.Pos, "expected statement, found %s", describe(t))
	}
	switch t.Text {
	case "let":
		return p.parseLet()
	case "nodes":
		p.next()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &NodesStmt{Pos: t.Pos, Value: v}, nil
	case "option":
		return p.parseOption()
	case "repeat":
		return p.parseRepeat()
	case "component":
		return p.parseComponent()
	case "link":
		return p.parseLink()
	case "scenario":
		return p.parseScenario()
	default:
		return nil, errf(t.Pos, "unknown statement %q (expected let, nodes, option, repeat, component, link, or scenario)", t.Text)
	}
}

// parseScenario parses `scenario { (at ROUND | during FROM TO) ACTION ... }`.
func (p *parser) parseScenario() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	stmt := &ScenarioStmt{Pos: kw.Pos}
	for {
		t := p.peek()
		switch t.Kind {
		case TokRBrace:
			p.next()
			return stmt, nil
		case TokEOF:
			return nil, errf(t.Pos, "unterminated scenario block: missing '}'")
		}
		ev, err := p.parseScenarioEvent()
		if err != nil {
			return nil, err
		}
		stmt.Events = append(stmt.Events, ev)
	}
}

func (p *parser) parseScenarioEvent() (*ScenarioEventStmt, error) {
	t := p.peek()
	if t.Kind != TokIdent || (t.Text != "at" && t.Text != "during") {
		return nil, errf(t.Pos, "expected 'at' or 'during', found %s", describe(t))
	}
	p.next()
	ev := &ScenarioEventStmt{Pos: t.Pos, During: t.Text == "during"}
	var err error
	if ev.From, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if ev.During {
		if ev.To, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	act, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	switch act.Text {
	case "kill":
		// `kill component NAME` or `kill FRACTION`.
		if n := p.peek(); n.Kind == TokIdent && n.Text == "component" {
			p.next()
			ev.Kind = "kill-component"
			if ev.Component, err = p.parseNameRef(); err != nil {
				return nil, err
			}
			return ev, nil
		}
		ev.Kind = "kill"
		ev.Fraction, err = p.parseFraction()
		return ev, err
	case "loss", "churn":
		ev.Kind = act.Text
		ev.Fraction, err = p.parseFraction()
		return ev, err
	case "join", "partition":
		ev.Kind = act.Text
		ev.Count, err = p.parseExpr()
		return ev, err
	case "heal":
		ev.Kind = "heal"
		return ev, nil
	case "snapshot":
		// `snapshot "checkpoints/ck-%d.snap"` — the path is a string
		// literal; a %d verb is replaced by the round number at write time.
		ev.Kind = "snapshot"
		path, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		ev.Path = path.Text
		return ev, nil
	case "reconfigure":
		ev.Kind = "reconfigure"
		ev.Body, err = p.parseBlock()
		return ev, err
	default:
		return nil, errf(act.Pos, "unknown scenario action %q (expected kill, join, loss, churn, partition, heal, snapshot, or reconfigure)", act.Text)
	}
}

// parseFraction parses a float literal like `0.5` (plain integers allowed).
func (p *parser) parseFraction() (float64, error) {
	t, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, errf(t.Pos, "invalid fraction %q", t.Text)
	}
	return v, nil
}

func (p *parser) parseLet() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &LetStmt{Pos: kw.Pos, Name: name.Text, Value: v}, nil
}

func (p *parser) parseOption() (Stmt, error) {
	kw := p.next()
	key, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &OptionStmt{Pos: kw.Pos, Key: key.Text, Value: v}, nil
}

func (p *parser) parseRepeat() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &RepeatStmt{Pos: kw.Pos, Var: name.Text, From: from, To: to, Body: body}, nil
}

func (p *parser) parseComponent() (Stmt, error) {
	kw := p.next()
	name, err := p.parseNameRef()
	if err != nil {
		return nil, err
	}
	shape, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	var body []CompStmt
	if p.peek().Kind == TokLBrace {
		body, err = p.parseCompBlock()
		if err != nil {
			return nil, err
		}
	}
	return &ComponentStmt{Pos: kw.Pos, Name: name, Shape: shape.Text, Body: body}, nil
}

func (p *parser) parseCompBlock() ([]CompStmt, error) {
	p.next() // '{'
	var body []CompStmt
	for {
		t := p.peek()
		switch t.Kind {
		case TokRBrace:
			p.next()
			return body, nil
		case TokEOF:
			return nil, errf(t.Pos, "unterminated component block: missing '}'")
		}
		if t.Kind != TokIdent {
			return nil, errf(t.Pos, "expected component statement, found %s", describe(t))
		}
		switch t.Text {
		case "weight":
			p.next()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			body = append(body, &WeightStmt{Pos: t.Pos, Value: v})
		case "port":
			p.next()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			body = append(body, &PortStmt{Pos: t.Pos, Name: name.Text})
		case "param":
			p.next()
			key, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			body = append(body, &ParamStmt{Pos: t.Pos, Key: key.Text, Value: v})
		default:
			return nil, errf(t.Pos, "unknown component statement %q (expected weight, port, or param)", t.Text)
		}
	}
}

func (p *parser) parseLink() (Stmt, error) {
	kw := p.next()
	a, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	b, err := p.parsePortRef()
	if err != nil {
		return nil, err
	}
	return &LinkStmt{Pos: kw.Pos, A: a, B: b}, nil
}

func (p *parser) parseNameRef() (NameRef, error) {
	base, err := p.expect(TokIdent)
	if err != nil {
		return NameRef{}, err
	}
	ref := NameRef{Pos: base.Pos, Base: base.Text}
	if p.peek().Kind == TokLBracket {
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return NameRef{}, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return NameRef{}, err
		}
		ref.Index = idx
	}
	return ref, nil
}

func (p *parser) parsePortRef() (PortRefExpr, error) {
	name, err := p.parseNameRef()
	if err != nil {
		return PortRefExpr{}, err
	}
	if _, err := p.expect(TokDot); err != nil {
		return PortRefExpr{}, err
	}
	port, err := p.expect(TokIdent)
	if err != nil {
		return PortRefExpr{}, err
	}
	return PortRefExpr{Pos: name.Pos, Name: name, Port: port.Text}, nil
}

// parseExpr parses additive expressions (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokPlus && t.Kind != TokMinus {
			return x, nil
		}
		p.next()
		y, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: t.Kind, X: x, Y: y}
	}
}

// parseTerm parses multiplicative expressions.
func (p *parser) parseTerm() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokStar && t.Kind != TokSlash && t.Kind != TokPercent {
			return x, nil
		}
		p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: t.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokMinus {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: TokMinus, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "expected integer, found %q (fractions are only allowed in scenario actions)", t.Text)
		}
		return &NumberLit{Pos: t.Pos, Value: v}, nil
	case TokIdent:
		p.next()
		return &VarRef{Pos: t.Pos, Name: t.Text}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, errf(t.Pos, "expected expression, found %s", describe(t))
	}
}
