package dsl

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"sosf/internal/spec"
)

const ringOfRings = `
# A ring of n rings, the paper's flagship composite topology.
topology ring_of_rings {
    let n = 4
    repeat i 0 n-1 {
        component seg[i] ring {
            weight 1
            port head
            port tail
        }
    }
    repeat i 0 n-1 {
        link seg[i].head seg[(i+1)%n].tail
    }
    option rounds 120
    nodes 800
}
`

func TestLexBasics(t *testing.T) {
	toks, err := lex(`foo 12 "bar" { } [ ] ( ) . = + - * / % # comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]Kind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []Kind{
		TokIdent, TokNumber, TokString, TokLBrace, TokRBrace, TokLBracket,
		TokRBracket, TokLParen, TokRParen, TokDot, TokAssign, TokPlus,
		TokMinus, TokStar, TokSlash, TokPercent, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Fatalf("first token at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Fatalf("second token at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex(`"a\"b\n\t\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\"b\n\t\\" {
		t.Fatalf("string = %q", toks[0].Text)
	}
}

func TestLexNumberUnderscores(t *testing.T) {
	toks, err := lex("25_600")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "25600" {
		t.Fatalf("number text = %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "@", `"bad \x escape"`} {
		if _, err := lex(src); err == nil {
			t.Fatalf("lex(%q) should fail", src)
		}
	}
}

func TestParseRingOfRings(t *testing.T) {
	file, err := Parse(ringOfRings)
	if err != nil {
		t.Fatal(err)
	}
	if file.Name != "ring_of_rings" {
		t.Fatalf("name = %q", file.Name)
	}
	if len(file.Body) != 5 {
		t.Fatalf("body has %d statements, want 5", len(file.Body))
	}
	if _, ok := file.Body[1].(*RepeatStmt); !ok {
		t.Fatalf("statement 1 is %T, want *RepeatStmt", file.Body[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{``, `expected "topology"`},
		{`topology {`, "expected topology name"},
		{`topology t { component }`, "expected"},
		{`topology t { bogus 3 }`, "unknown statement"},
		{`topology t { component c ring { bogus 1 } }`, "unknown component statement"},
		{`topology t { link a.p }`, "expected"},
		{`topology t { link a b.q }`, "'.'"},
		{`topology t { let x = }`, "expected expression"},
		{`topology t { let x = (1 + 2 }`, "')'"},
		{`topology t { let x = 1 `, "missing '}'"},
		{`topology t { } trailing`, "unexpected"},
		{`topology t { component c[1 ring }`, "']'"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse(%q) should fail", tc.src)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("Parse(%q) error %q does not contain %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestCompileRingOfRings(t *testing.T) {
	topo, err := ParseTopology(ringOfRings)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Components) != 4 {
		t.Fatalf("components = %d, want 4", len(topo.Components))
	}
	if topo.Components[2].Name != "seg[2]" {
		t.Fatalf("component 2 name = %q", topo.Components[2].Name)
	}
	if len(topo.Links) != 4 {
		t.Fatalf("links = %d, want 4", len(topo.Links))
	}
	// The wraparound link: seg[3].head -> seg[0].tail.
	last := topo.Links[3]
	if last.A.Component != "seg[3]" || last.B.Component != "seg[0]" {
		t.Fatalf("wraparound link = %s", last)
	}
	if topo.Option("rounds", 0) != 120 || topo.Option("nodes", 0) != 800 {
		t.Fatalf("options = %v", topo.Options)
	}
}

func TestCompileShapesAndParams(t *testing.T) {
	topo, err := ParseTopology(`
topology shards {
    component router star {
        param hubs 3
        weight 2
        port query
    }
    component grid0 grid {
        param width 4
        port corner
    }
    link router.query grid0.corner
}`)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.Component("router")
	if r.Params["hubs"] != 3 || r.Weight != 2 {
		t.Fatalf("router = %+v", r)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`topology t { component c ring component c ring }`, "already defined"},
		{`topology t { let x = y }`, "undefined variable"},
		{`topology t { let x = 1/0 }`, "division by zero"},
		{`topology t { let x = 1%0 }`, "modulo by zero"},
		{`topology t { nodes 0 }`, "nodes must be >= 1"},
		{`topology t { component c ring { weight 0 } }`, "weight must be >= 1"},
		{`topology t { component c ring { port p port p } }`, "duplicate port"},
		{`topology t { component c ring { param a 1 param a 2 } }`, "duplicate param"},
		{`topology t { component c blob }`, "unknown shape"},
		{`topology t { component c ring link c.p c.q }`, "no port"},
		{`topology t { repeat i 0 9999999 { component c[i] ring } }`, "topology too large"},
	}
	for _, tc := range cases {
		_, err := ParseTopology(tc.src)
		if err == nil {
			t.Fatalf("ParseTopology(%q) should fail", tc.src)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("error %q does not contain %q", err, tc.wantSub)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := ParseTopology("topology t {\n  let x = y\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:") {
		t.Fatalf("error %q should start with line 2", err)
	}
}

func TestRepeatShadowingAndRestore(t *testing.T) {
	topo, err := ParseTopology(`
topology t {
    let i = 100
    repeat i 0 1 {
        component a[i] ring
    }
    component b[i] ring
}`)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Component("b[100]") == nil {
		t.Fatalf("outer binding not restored: %v", topo.Components)
	}
}

func TestNestedRepeat(t *testing.T) {
	topo, err := ParseTopology(`
topology t {
    repeat i 0 2 {
        repeat j 0 1 {
            component c[i*10+j] ring
        }
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Components) != 6 {
		t.Fatalf("components = %d, want 6", len(topo.Components))
	}
	if topo.Component("c[21]") == nil {
		t.Fatal("c[21] missing")
	}
}

func TestEmptyRepeatRange(t *testing.T) {
	topo, err := ParseTopology(`
topology t {
    repeat i 5 4 { component c[i] ring }
    component base ring
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Components) != 1 {
		t.Fatalf("components = %d, want 1 (empty range)", len(topo.Components))
	}
}

func TestExpressionArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"-4+10", 6},
		{"7/2", 3},
		{"-7/2", -3},
		{"10%3", 1},
		{"-1%5", 4}, // Euclidean: wraps for ring arithmetic
		{"0-1+5*2", 9},
		{"2*-3", -6},
	}
	for _, tc := range cases {
		src := fmt.Sprintf("topology t { option x %s component c ring }", tc.expr)
		topo, err := ParseTopology(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if got := topo.Option("x", -999); got != tc.want {
			t.Fatalf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

// Property: the DSL evaluator agrees with a direct Go computation for
// (a + b*i) % m style ring expressions over random operands.
func TestEvalMatchesReference(t *testing.T) {
	f := func(a, b int8, iRaw, mRaw uint8) bool {
		i := int64(iRaw % 20)
		m := int64(mRaw%9) + 1
		src := fmt.Sprintf(
			"topology t { let i = %d option x (%d + %d*i) %% %d component c ring }",
			i, a, b, m)
		topo, err := ParseTopology(src)
		if err != nil {
			return false
		}
		ref := (int64(a) + int64(b)*i) % m
		if ref < 0 {
			ref += m
		}
		return topo.Option("x", -12345) == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a repeat of k components always yields exactly k components.
func TestRepeatCountProperty(t *testing.T) {
	f := func(raw uint8) bool {
		k := int(raw%50) + 1
		src := fmt.Sprintf("topology t { repeat i 0 %d { component c[i] ring } }", k-1)
		topo, err := ParseTopology(src)
		return err == nil && len(topo.Components) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringTopologyName(t *testing.T) {
	topo, err := ParseTopology(`topology "my topology" { component c ring }`)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "my topology" {
		t.Fatalf("name = %q", topo.Name)
	}
}

func TestComponentWithoutBlock(t *testing.T) {
	topo, err := ParseTopology(`topology t { component solo clique }`)
	if err != nil {
		t.Fatal(err)
	}
	c := topo.Component("solo")
	if c == nil || c.Weight != 1 || len(c.Ports) != 0 {
		t.Fatalf("solo = %+v", c)
	}
}

const scenarioSrc = `
topology scripted {
    nodes 200
    let blast = 30
    component a ring {
        weight 1
        port out
    }
    component b ring {
        weight 1
        port in
    }
    link a.out b.in

    scenario {
        during 10 15 loss 0.25
        at blast kill 0.5
        at blast+5 join 40
        during 50 60 churn 0.01
        at 70 partition 2
        at 80 heal
        at 90 kill component b
        at 100 reconfigure {
            component a ring {
                weight 1
                port out
            }
            component c star {
                weight 1
                port in
            }
            link a.out c.in
        }
    }
}
`

func TestCompileScenario(t *testing.T) {
	topo, err := ParseTopology(scenarioSrc)
	if err != nil {
		t.Fatal(err)
	}
	evs := topo.Scenario
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8", len(evs))
	}
	if evs[0].Kind != spec.ScenLoss || evs[0].From != 10 || evs[0].To != 15 || evs[0].Fraction != 0.25 {
		t.Fatalf("loss window = %+v", evs[0])
	}
	if evs[1].Kind != spec.ScenKill || evs[1].From != 30 || evs[1].To != 30 || evs[1].Fraction != 0.5 {
		t.Fatalf("kill (let-bound round) = %+v", evs[1])
	}
	if evs[2].Kind != spec.ScenJoin || evs[2].From != 35 || evs[2].Count != 40 {
		t.Fatalf("join = %+v", evs[2])
	}
	if evs[3].Kind != spec.ScenChurn || evs[3].From != 50 || evs[3].To != 60 || evs[3].Fraction != 0.01 {
		t.Fatalf("churn = %+v", evs[3])
	}
	if evs[4].Kind != spec.ScenPartition || evs[4].Count != 2 {
		t.Fatalf("partition = %+v", evs[4])
	}
	if evs[5].Kind != spec.ScenHeal || evs[5].From != 80 {
		t.Fatalf("heal = %+v", evs[5])
	}
	if evs[6].Kind != spec.ScenKillComponent || evs[6].Component != "b" {
		t.Fatalf("kill component = %+v", evs[6])
	}
	re := evs[7]
	if re.Kind != spec.ScenReconfigure || re.From != 100 || re.Reconfigure == nil {
		t.Fatalf("reconfigure = %+v", re)
	}
	if re.Reconfigure.Name != "scripted@100" {
		t.Fatalf("reconfigure target name = %q", re.Reconfigure.Name)
	}
	if len(re.Reconfigure.Components) != 2 || re.Reconfigure.Components[1].Shape != "star" {
		t.Fatalf("reconfigure target = %+v", re.Reconfigure)
	}
}

func TestScenarioIndexedComponentAndLetInheritance(t *testing.T) {
	src := `
topology t {
    nodes 100
    let n = 2
    repeat i 0 n-1 {
        component seg[i] ring {
            weight 1
            port out
        }
    }
    link seg[0].out seg[1].out
    scenario {
        at 20 kill component seg[n-1]
        at 30 reconfigure {
            repeat i 0 n {
                component seg[i] ring {
                    weight 1
                    port out
                }
            }
            link seg[0].out seg[1].out
            link seg[1].out seg[2].out
        }
    }
}`
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Scenario[0].Component != "seg[1]" {
		t.Fatalf("indexed kill target = %q", topo.Scenario[0].Component)
	}
	// The reconfigure body inherits `let n = 2` from the enclosing scope.
	if got := len(topo.Scenario[1].Reconfigure.Components); got != 3 {
		t.Fatalf("reconfigure target components = %d, want 3", got)
	}
}

func TestScenarioErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"topology t { nodes 10 component c ring { } scenario { at 5 explode 0.5 } }", "unknown scenario action"},
		{"topology t { nodes 10 component c ring { } scenario { when 5 kill 0.5 } }", "expected 'at' or 'during'"},
		{"topology t { nodes 10 component c ring { } scenario { at 5 kill 1.5 } }", "kill fraction"},
		{"topology t { nodes 10 component c ring { } scenario { during 9 3 loss 0.1 } }", "window end"},
		{"topology t { nodes 10 component c ring { } scenario { at 5 kill component ghost } }", "unknown component"},
		{"topology t { nodes 10 component c ring { } scenario { at 5 partition 1 } }", ">= 2 groups"},
		{"topology t { nodes 10 component c ring { } scenario { at 5 reconfigure { component d ring { } scenario { at 9 heal } } } }", "not allowed inside"},
		{"topology t { nodes 1.5 component c ring { } }", "expected integer"},
	}
	for _, tc := range cases {
		_, err := ParseTopology(tc.src)
		if err == nil {
			t.Fatalf("source %q should fail", tc.src)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("source %q: error %q does not mention %q", tc.src, err, tc.want)
		}
	}
}

func TestLexFloats(t *testing.T) {
	toks, err := lex("0.5 12 3.25 seg[1].head")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	var kinds []Kind
	for _, tok := range toks {
		texts = append(texts, tok.Text)
		kinds = append(kinds, tok.Kind)
	}
	if texts[0] != "0.5" || kinds[0] != TokNumber {
		t.Fatalf("float token = %q (%s)", texts[0], kinds[0])
	}
	if texts[2] != "3.25" {
		t.Fatalf("second float = %q", texts[2])
	}
	// "seg[1].head" must still lex the dot as TokDot, not a float.
	wantTail := []Kind{TokIdent, TokLBracket, TokNumber, TokRBracket, TokDot, TokIdent, TokEOF}
	gotTail := kinds[3:]
	if len(gotTail) != len(wantTail) {
		t.Fatalf("tail kinds = %v", gotTail)
	}
	for i := range wantTail {
		if gotTail[i] != wantTail[i] {
			t.Fatalf("tail token %d = %s, want %s", i, gotTail[i], wantTail[i])
		}
	}
}

func TestParseSnapshotDirective(t *testing.T) {
	topo, err := ParseTopology(`topology t {
	    nodes 50
	    component a ring { port p }
	    component b ring { port q }
	    link a.p b.q
	    scenario { at 75 snapshot "ck-%d.sosnap" }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Scenario) != 1 {
		t.Fatalf("scenario = %+v", topo.Scenario)
	}
	ev := topo.Scenario[0]
	if ev.Kind != "snapshot" || ev.From != 75 || ev.To != 75 || ev.Path != "ck-%d.sosnap" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestSnapshotDirectiveErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{
			"missing path",
			`topology t { nodes 50 component a ring {} scenario { at 5 snapshot } }`,
			"expected string",
		},
		{
			"empty path",
			`topology t { nodes 50 component a ring {} scenario { at 5 snapshot "" } }`,
			"destination path",
		},
		{
			"window form",
			`topology t { nodes 50 component a ring {} scenario { during 5 9 snapshot "x" } }`,
			"point event",
		},
	}
	for _, tc := range cases {
		if _, err := ParseTopology(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
