package snap

// Wire frames: the length-prefixed, checksummed envelope distributed runs
// use to move snap-codec payloads (handshakes, plan-record shards, barrier
// aggregates) over a byte stream. A frame is deliberately dumb — kind tag,
// length, CRC, payload — so the stream stays recoverable by construction:
// a reader always knows how many bytes to consume, a flipped bit fails the
// checksum instead of desynchronizing the codec, and a torn connection
// surfaces as ErrFrameTruncated on the very next read instead of a hang.
//
// Layout (all little-endian):
//
//	kind    u8
//	length  u32  payload byte count
//	crc     u32  CRC-32C (Castagnoli) of the payload
//	payload length bytes
//
// The payload is typically a snap Writer stream, but the frame layer does
// not care; it moves opaque bytes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"sosf/internal/view"
)

// Frame-layer errors. Wrapped with detail by ReadFrame; match with
// errors.Is.
var (
	// ErrFrameTruncated marks a frame cut short by a closed or dead peer.
	ErrFrameTruncated = errors.New("snap: truncated frame")
	// ErrFrameChecksum marks a payload whose CRC does not match its header.
	ErrFrameChecksum = errors.New("snap: frame checksum mismatch")
	// ErrFrameTooBig marks a frame whose declared length exceeds the
	// reader's limit (a desynchronized or hostile stream).
	ErrFrameTooBig = errors.New("snap: frame exceeds size limit")
)

// frameHeaderSize is kind (1) + length (4) + crc (4).
const frameHeaderSize = 9

// MaxFrame is the default frame size limit: generous enough for the plan
// records of a million-slot shard, small enough to keep a corrupted length
// field from provoking a giant allocation.
const MaxFrame = 1 << 30

// castagnoli is the CRC-32C table shared by all frame writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one frame. The payload is not retained.
func WriteFrame(w io.Writer, kind uint8, payload []byte) error {
	var hdr [frameHeaderSize]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, enforcing the given payload size limit
// (<= 0 selects MaxFrame). A cleanly closed stream returns io.EOF before
// the first header byte; anything torn mid-frame is ErrFrameTruncated.
func ReadFrame(r io.Reader, limit int) (kind uint8, payload []byte, err error) {
	if limit <= 0 {
		limit = MaxFrame
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	kind = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	sum := binary.LittleEndian.Uint32(hdr[5:9])
	if int64(n) > int64(limit) {
		return 0, nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooBig, n, limit)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return 0, nil, fmt.Errorf("%w: got %#x, header says %#x", ErrFrameChecksum, got, sum)
	}
	return kind, payload, nil
}

// WriteDescriptors encodes a descriptor slice (length-prefixed), the plan
// payload building block shared by the distributed plan codecs.
func WriteDescriptors(w *Writer, ds []view.Descriptor) {
	w.Len(len(ds))
	for _, d := range ds {
		WriteDescriptor(w, d)
	}
}

// ReadDescriptorsInto decodes a slice written by WriteDescriptors, appending
// into dst (pass a [:0] prefix to reuse its capacity). On a corrupt stream
// the reader's sticky error is set and the partial slice is returned.
func ReadDescriptorsInto(r *Reader, dst []view.Descriptor) []view.Descriptor {
	n := r.Len()
	for i := 0; i < n && r.Err() == nil; i++ {
		dst = append(dst, ReadDescriptor(r))
	}
	return dst
}
