// Package snap implements the versioned binary codec behind the
// framework's deterministic checkpoint/restore subsystem.
//
// A snapshot is a little-endian binary stream: an 8-byte magic, a format
// version, a kind tag (so an engine-level snapshot cannot be restored as a
// full-system one), and then a sequence of primitive fields written and
// read in lockstep by the two sides of the codec. Both Writer and Reader
// carry a sticky error, so serialization code reads as straight-line field
// lists with a single error check at the end — the same style as
// encoding/binary with none of the reflection cost.
//
// The codec is deliberately dumb: it has no schema, no field tags, and no
// skipping. Structure lives in the callers (sim.Engine, the protocol
// Snapshotter implementations, core.System), which delimit variable parts
// with explicit counts and length-prefixed sections. What the codec does
// own is versioning: Header/Expect reject foreign files, wrong kinds, and
// future format versions with precise errors instead of garbage reads.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"sosf/internal/view"
)

// magic identifies a sosf snapshot stream.
const magic = "SOSFSNAP"

// Version is the current snapshot format version. Bump it for any change
// to the byte layout; Reader.Header rejects versions it does not know.
const Version = 1

// maxChunk bounds a single length-prefixed byte field (64 MiB). Snapshots
// of very large populations split state across many fields, so a larger
// length is always corruption, not scale.
const maxChunk = 64 << 20

// ErrCorrupt is wrapped by decode errors caused by a malformed stream.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// Writer encodes primitive fields onto an io.Writer with a sticky error.
type Writer struct {
	w       io.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

// NewWriter returns a Writer encoding onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Header writes the stream header: magic, format version, and a kind tag.
func (w *Writer) Header(kind string) {
	w.write([]byte(magic))
	w.U16(Version)
	w.String(kind)
}

// U16 writes a fixed-width little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.scratch[:2], v)
	w.write(w.scratch[:2])
}

// U32 writes a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	w.write(w.scratch[:4])
}

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], v)
	w.write(w.scratch[:8])
}

// I64 writes a fixed-width little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a single 0/1 byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.write([]byte{b})
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.write(w.scratch[:n])
}

// Varint writes a signed (zigzag) varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.scratch[:], v)
	w.write(w.scratch[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Len writes a non-negative count.
func (w *Writer) Len(n int) { w.Uvarint(uint64(n)) }

// Bytes writes a length-prefixed byte field.
func (w *Writer) Bytes(p []byte) {
	w.Len(len(p))
	w.write(p)
}

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	w.write([]byte(s))
}

// Reader decodes primitive fields from an io.Reader with a sticky error.
type Reader struct {
	r       io.ByteReader
	full    io.Reader
	scratch [8]byte
	err     error
}

// byteReader adapts a plain io.Reader to io.ByteReader.
type byteReader struct {
	r   io.Reader
	buf [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		return 0, err
	}
	return b.buf[0], nil
}

// init points the reader at src, promoting it to an io.ByteReader (varint
// decoding needs one) without double-buffering sources that already are.
func (r *Reader) init(src io.Reader) {
	if br, ok := src.(interface {
		io.Reader
		io.ByteReader
	}); ok {
		r.r, r.full = br, br
		return
	}
	br := &byteReader{r: src}
	r.r, r.full = br, br
}

// NewReader returns a Reader decoding from src.
func NewReader(src io.Reader) *Reader {
	r := &Reader{}
	r.init(src)
	return r
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) failf(format string, args ...any) {
	r.fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return r.scratch[:n]
	}
	if _, err := io.ReadFull(r.full, r.scratch[:n]); err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
	}
	return r.scratch[:n]
}

// Header reads and validates the stream header against the expected kind.
func (r *Reader) Header(kind string) {
	var m [len(magic)]byte
	if r.err == nil {
		if _, err := io.ReadFull(r.full, m[:]); err != nil {
			r.fail(fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err))
		}
	}
	if r.err == nil && string(m[:]) != magic {
		r.failf("not a sosf snapshot (bad magic %q)", m)
	}
	v := r.U16()
	if r.err == nil && v != Version {
		r.failf("unsupported snapshot format version %d (this build reads version %d)", v, Version)
	}
	k := r.String()
	if r.err == nil && k != kind {
		r.failf("snapshot kind is %q, want %q", k, kind)
	}
}

// U16 reads a fixed-width little-endian uint16.
func (r *Reader) U16() uint16 { return binary.LittleEndian.Uint16(r.read(2)) }

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 { return binary.LittleEndian.Uint32(r.read(4)) }

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 { return binary.LittleEndian.Uint64(r.read(8)) }

// I64 reads a fixed-width little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a single 0/1 byte.
func (r *Reader) Bool() bool {
	b := r.read(1)[0]
	if r.err == nil && b > 1 {
		r.failf("invalid bool byte %d", b)
	}
	return b == 1
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
	}
	return v
}

// Varint reads a signed (zigzag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
	}
	return v
}

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Len reads a count and validates it against maxChunk.
func (r *Reader) Len() int {
	v := r.Uvarint()
	if r.err == nil && v > maxChunk {
		r.failf("length %d exceeds the %d-byte sanity bound", v, maxChunk)
	}
	return int(v)
}

// Bytes reads a length-prefixed byte field.
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r.full, p); err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return nil
	}
	return p
}

// String reads a length-prefixed UTF-8 string.
func (r *Reader) String() string { return string(r.Bytes()) }

// ExpectEOF fails the reader unless the underlying stream is exhausted —
// the "section fully consumed" check restore paths run after decoding a
// length-delimited body.
func (r *Reader) ExpectEOF() {
	if r.err != nil {
		return
	}
	var one [1]byte
	if n, err := r.full.Read(one[:]); n > 0 || (err != nil && err != io.EOF) {
		r.failf("trailing bytes after the last field")
	}
}

// WriteProfile encodes a node profile.
func WriteProfile(w *Writer, p view.Profile) {
	w.Varint(int64(p.Comp))
	w.Varint(int64(p.Index))
	w.Varint(int64(p.Size))
	w.U64(p.Key)
	w.U32(p.Epoch)
}

// ReadProfile decodes a node profile.
func ReadProfile(r *Reader) view.Profile {
	return view.Profile{
		Comp:  view.ComponentID(r.Varint()),
		Index: int32(r.Varint()),
		Size:  int32(r.Varint()),
		Key:   r.U64(),
		Epoch: r.U32(),
	}
}

// WriteDescriptor encodes a gossip descriptor.
func WriteDescriptor(w *Writer, d view.Descriptor) {
	w.Varint(int64(d.ID))
	w.U16(d.Age)
	WriteProfile(w, d.Profile)
}

// ReadDescriptor decodes a gossip descriptor.
func ReadDescriptor(r *Reader) view.Descriptor {
	return view.Descriptor{
		ID:      view.NodeID(r.Varint()),
		Age:     r.U16(),
		Profile: ReadProfile(r),
	}
}

// WriteView encodes a bounded partial view: capacity, then entries in view
// order (order is state — Oldest breaks age ties by position).
func WriteView(w *Writer, v *view.View) {
	w.Len(v.Cap())
	w.Len(v.Len())
	for i := 0; i < v.Len(); i++ {
		WriteDescriptor(w, v.At(i))
	}
}

// ReadView decodes a view written by WriteView.
func ReadView(r *Reader) *view.View {
	capacity := r.Len()
	n := r.Len()
	if r.err != nil {
		return nil
	}
	if n > capacity {
		r.failf("view holds %d entries over capacity %d", n, capacity)
		return nil
	}
	v := view.New(capacity)
	for i := 0; i < n; i++ {
		d := ReadDescriptor(r)
		if r.err != nil {
			return nil
		}
		if !v.Add(d) {
			r.failf("duplicate or unplaceable view entry for node %d", d.ID)
			return nil
		}
	}
	return v
}

// ReadViewInto decodes a view written by WriteView into the table's slot,
// carving entry storage from the table's arena instead of allocating a
// standalone view — the restore path of the struct-of-arrays protocol
// state. Byte layout and validation are identical to ReadView.
func ReadViewInto(r *Reader, t *view.Table, slot int) {
	capacity := r.Len()
	n := r.Len()
	if r.err != nil {
		return
	}
	if n > capacity {
		r.failf("view holds %d entries over capacity %d", n, capacity)
		return
	}
	v := t.Init(slot, capacity)
	for i := 0; i < n; i++ {
		d := ReadDescriptor(r)
		if r.err != nil {
			return
		}
		if !v.Add(d) {
			r.failf("duplicate or unplaceable view entry for node %d", d.ID)
			return
		}
	}
}
