package snap

import (
	"bytes"
	"strings"
	"testing"

	"sosf/internal/view"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("test")
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1<<63 + 17)
	w.I64(-42)
	w.F64(3.5)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(1 << 40)
	w.Varint(-(1 << 40))
	w.Int(-7)
	w.Len(3)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Header("test")
	if got := r.U16(); got != 0xbeef {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63+17 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.5 {
		t.Fatalf("F64 = %g", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -(1 << 40) {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("engine")
	r := NewReader(&buf)
	r.Header("system")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), `"engine"`) {
		t.Fatalf("err = %v, want kind mismatch", err)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	r := NewReader(strings.NewReader("this is not a snapshot at all"))
	r.Header("system")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want bad magic", err)
	}
}

func TestTruncatedStreamIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("test")
	w.U64(7)
	data := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(data))
	r.Header("test")
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestExpectEOFRejectsTrailingBytes(t *testing.T) {
	r := NewReader(strings.NewReader("x"))
	r.ExpectEOF()
	if r.Err() == nil {
		t.Fatal("trailing byte not rejected")
	}
}

func TestViewRoundTrip(t *testing.T) {
	v := view.New(8)
	v.Add(view.Descriptor{ID: 3, Age: 2, Profile: view.Profile{Comp: 1, Index: 4, Size: 9, Key: 77, Epoch: 2}})
	v.Add(view.Descriptor{ID: 9, Age: 0})
	v.Add(view.Descriptor{ID: 1, Age: 65535})

	var buf bytes.Buffer
	w := NewWriter(&buf)
	WriteView(w, v)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got := ReadView(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if got.Cap() != v.Cap() || got.Len() != v.Len() {
		t.Fatalf("cap/len = %d/%d, want %d/%d", got.Cap(), got.Len(), v.Cap(), v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if got.At(i) != v.At(i) {
			t.Fatalf("entry %d = %+v, want %+v (order is state)", i, got.At(i), v.At(i))
		}
	}
}
