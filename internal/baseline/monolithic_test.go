package baseline

import (
	"testing"

	"sosf/internal/view"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 3, 1); err == nil {
		t.Fatal("non-divisible population should fail")
	}
	if _, err := New(8, 4, 1); err == nil {
		t.Fatal("2-node segments should fail")
	}
}

func TestRankerGeometry(t *testing.T) {
	r := monoRanker{segments: 4, segSize: 10}
	// Within segment 0: positions 3 and 5 are at cyclic distance 2.
	if got := r.Rank(profile(3), profile(5)); got != 2 {
		t.Fatalf("intra-segment rank = %f, want 2", got)
	}
	// Wraparound inside a segment: positions 0 and 9 are adjacent.
	if got := r.Rank(profile(0), profile(9)); got != 1 {
		t.Fatalf("wraparound rank = %f, want 1", got)
	}
	// Designated boundary pair: head of segment 0 (index 9) and tail of
	// segment 1 (index 10).
	if got := r.Rank(profile(9), profile(10)); got != 0 {
		t.Fatalf("boundary rank = %f, want 0", got)
	}
	if got := r.Rank(profile(10), profile(9)); got != 0 {
		t.Fatal("boundary rank must be symmetric")
	}
	// Wraparound boundary: head of segment 3 (index 39) and tail of
	// segment 0 (index 0).
	if got := r.Rank(profile(39), profile(0)); got != 0 {
		t.Fatalf("wraparound boundary rank = %f, want 0", got)
	}
	// Arbitrary cross-segment pairs are rejected.
	if got := r.Rank(profile(3), profile(25)); got != view.RankInf {
		t.Fatalf("cross-segment rank = %f, want RankInf", got)
	}
}

func profile(idx int32) view.Profile {
	return view.Profile{Index: idx, Size: 40, Key: uint64(idx)}
}

func TestBoundaryCapacityBonus(t *testing.T) {
	r := monoRanker{segments: 4, segSize: 10}
	if r.Capacity(profile(5)) != 5 {
		t.Fatalf("interior capacity = %d, want 5", r.Capacity(profile(5)))
	}
	if r.Capacity(profile(9)) != 6 || r.Capacity(profile(10)) != 6 {
		t.Fatal("boundary nodes should get a capacity bonus")
	}
}

func TestMonolithicConverges(t *testing.T) {
	s, err := New(200, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := s.RoundsToConverge(100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds >= 100 {
		t.Fatal("monolithic overlay should converge on a static population")
	}
	ringFrac, linkFrac := s.Accuracy()
	if ringFrac < 1 || linkFrac < 1 {
		t.Fatalf("accuracy = %f / %f", ringFrac, linkFrac)
	}
}

func TestMonolithicLosesLinksAfterCatastrophe(t *testing.T) {
	s, err := New(200, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RoundsToConverge(100); err != nil {
		t.Fatal(err)
	}
	// Kill half the population: with 8 designated boundary nodes, the
	// probability that all survive is (1/2)^8 — some links are lost and,
	// unlike the composed runtime, nothing re-elects them.
	s.Kill(0.5)
	if _, err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	ringFrac, linkFrac := s.Accuracy()
	if ringFrac < 0.9 {
		t.Fatalf("surviving rings should re-close: %f", ringFrac)
	}
	if linkFrac > 0.99 {
		t.Fatalf("expected permanent link loss after catastrophe, got %f", linkFrac)
	}
}

func TestBytesPerNodePositive(t *testing.T) {
	s, err := New(120, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.BytesPerNode() <= 0 {
		t.Fatal("bandwidth should be metered")
	}
}
