// Package baseline implements the comparator the paper positions itself
// against (Section 2.2): a *monolithic* self-organizing overlay in the
// T-Man / Vicinity tradition, where one hand-crafted global distance
// function must express the entire target topology.
//
// For the ring-of-rings target, the monolithic distance function needs a
// global dense indexing fixed up front: node g belongs to segment g/s at
// position g%s, segments form rings, and the designated boundary nodes
// (position s-1 of segment i, position 0 of segment i+1) carry the
// inter-segment links. This works — but exactly as the paper argues, it is
// brittle: the roles are baked into the indexing, so there is no
// re-election when a boundary node dies and no cheap remapping when the
// topology changes. The eval driver contrasts this with the composed
// runtime, which heals both.
package baseline

import (
	"fmt"
	"math/rand"

	"sosf/internal/peersampling"
	"sosf/internal/sim"
	"sosf/internal/vicinity"
	"sosf/internal/view"
)

// linkBonusSlots is the extra view capacity granted to boundary nodes so
// they can hold their inter-segment partner on top of the ring neighbors.
const linkBonusSlots = 1

// monoRanker is the single global distance function: intra-segment cyclic
// distance, with the designated boundary pairs at distance 0 (they must
// outrank ring neighbors to be kept by both ends) and everything else
// rejected.
type monoRanker struct {
	segments int
	segSize  int
}

var _ vicinity.Ranker = monoRanker{}

// coords splits a global index into (segment, position).
func (r monoRanker) coords(idx int32) (seg, pos int) {
	return int(idx) / r.segSize, int(idx) % r.segSize
}

// boundary reports whether (a, b) is one of the designated inter-segment
// pairs: head of segment i (last position) to tail of segment i+1
// (position 0).
func (r monoRanker) boundary(aSeg, aPos, bSeg, bPos int) bool {
	if aPos == r.segSize-1 && bPos == 0 && bSeg == (aSeg+1)%r.segments {
		return true
	}
	return bPos == r.segSize-1 && aPos == 0 && aSeg == (bSeg+1)%r.segments
}

// Rank implements vicinity.Ranker.
func (r monoRanker) Rank(owner, cand view.Profile) float64 {
	oSeg, oPos := r.coords(owner.Index)
	cSeg, cPos := r.coords(cand.Index)
	if oSeg == cSeg {
		d := oPos - cPos
		if d < 0 {
			d = -d
		}
		if w := r.segSize - d; w < d {
			d = w
		}
		return float64(d)
	}
	if r.boundary(oSeg, oPos, cSeg, cPos) {
		return 0
	}
	return view.RankInf
}

// Capacity implements vicinity.Ranker.
func (r monoRanker) Capacity(p view.Profile) int {
	_, pos := r.coords(p.Index)
	capacity := 2 + 3 // ring degree + slack, mirroring the shapes package
	if pos == 0 || pos == r.segSize-1 {
		capacity += linkBonusSlots
	}
	return capacity
}

// System is a running monolithic deployment: peer sampling plus one
// Vicinity instance under the global distance function.
type System struct {
	eng     *sim.Engine
	rps     *peersampling.Protocol
	overlay *vicinity.Protocol
	ranker  monoRanker
	nodes   int

	// Measurement scratch, reused by the per-round accuracy scan.
	slots       []int
	bySeg       [][]*sim.Node
	byIndex     map[int32]*sim.Node
	ring, links [][2]*sim.Node
}

// New builds a monolithic ring-of-rings system: nodes must be divisible
// into `segments` equal segments (the global indexing demands it — itself
// one of the rigidities of the monolithic approach).
func New(nodes, segments int, seed int64) (*System, error) {
	if segments < 1 || nodes%segments != 0 {
		return nil, fmt.Errorf("baseline: %d nodes not divisible into %d equal segments", nodes, segments)
	}
	segSize := nodes / segments
	if segSize < 3 {
		return nil, fmt.Errorf("baseline: segments of %d nodes are too small for rings", segSize)
	}
	s := &System{
		eng:    sim.New(seed),
		ranker: monoRanker{segments: segments, segSize: segSize},
		nodes:  nodes,
	}
	s.rps = peersampling.New(peersampling.Options{})
	s.eng.Register(s.rps)
	s.overlay = vicinity.New("monolithic", s.ranker, s.rps, vicinity.Options{})
	s.eng.Register(s.overlay)

	// The global indexing is assigned once, up front; the permutation is
	// random so indices do not correlate with join order.
	slots := s.eng.AddNodes(nodes)
	perm := rand.New(rand.NewSource(seed ^ 0x5eed)).Perm(nodes)
	for i, slot := range slots {
		n := s.eng.Node(slot)
		n.Profile = view.Profile{
			Index: int32(perm[i]),
			Size:  int32(nodes),
			Key:   uint64(perm[i]),
		}
		s.eng.InitNode(slot)
	}
	return s, nil
}

// Engine exposes the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Run executes up to maxRounds rounds.
func (s *System) Run(maxRounds int) (int, error) { return s.eng.Run(maxRounds) }

// Kill fails ceil(f × alive) random nodes.
func (s *System) Kill(f float64) []int { return s.eng.KillFraction(f) }

// targetPairs enumerates the target adjacency over *alive* nodes: ring
// edges between closest surviving positions of each segment, plus the
// designated boundary pairs (only if both designated nodes are alive —
// the monolithic design point under test: those roles cannot move).
// The returned slices are system-owned scratch, valid until the next call.
func (s *System) targetPairs() (ring [][2]*sim.Node, links [][2]*sim.Node) {
	if s.bySeg == nil {
		s.bySeg = make([][]*sim.Node, s.ranker.segments)
		s.byIndex = make(map[int32]*sim.Node, s.nodes)
	}
	bySeg := s.bySeg
	for i := range bySeg {
		bySeg[i] = bySeg[i][:0]
	}
	byIndex := s.byIndex
	clear(byIndex)
	ring, links = s.ring[:0], s.links[:0]
	s.slots = s.eng.AliveSlotsAppend(s.slots[:0])
	for _, slot := range s.slots {
		n := s.eng.Node(slot)
		seg, _ := s.ranker.coords(n.Profile.Index)
		bySeg[seg] = append(bySeg[seg], n)
		byIndex[n.Profile.Index] = n
	}
	for seg, members := range bySeg {
		// Members arrive in slot order; sort by position.
		for i := 1; i < len(members); i++ {
			for j := i; j > 0 && members[j].Profile.Index < members[j-1].Profile.Index; j-- {
				members[j], members[j-1] = members[j-1], members[j]
			}
		}
		m := len(members)
		if m >= 2 {
			for i := 0; i < m; i++ {
				ring = append(ring, [2]*sim.Node{members[i], members[(i+1)%m]})
			}
		}
		// Designated boundary pair out of this segment.
		head := int32(seg*s.ranker.segSize + s.ranker.segSize - 1)
		tail := int32(((seg + 1) % s.ranker.segments) * s.ranker.segSize)
		if h, ok := byIndex[head]; ok {
			if t, ok := byIndex[tail]; ok {
				links = append(links, [2]*sim.Node{h, t})
			}
		}
	}
	s.ring, s.links = ring, links
	return ring, links
}

// Accuracy returns the fraction of alive-target ring edges realized and
// the fraction of the k inter-segment links currently realized. A link
// whose designated endpoint died counts as lost — the monolithic function
// has no way to re-elect it.
func (s *System) Accuracy() (ringFrac, linkFrac float64) {
	ring, links := s.targetPairs()
	ringOK := 0
	for _, p := range ring {
		if s.overlay.View(p[0].Slot).Contains(p[1].ID) ||
			s.overlay.View(p[1].Slot).Contains(p[0].ID) {
			ringOK++
		}
	}
	linkOK := 0
	for _, p := range links {
		if s.overlay.View(p[0].Slot).Contains(p[1].ID) ||
			s.overlay.View(p[1].Slot).Contains(p[0].ID) {
			linkOK++
		}
	}
	if len(ring) > 0 {
		ringFrac = float64(ringOK) / float64(len(ring))
	} else {
		ringFrac = 1
	}
	// The denominator is the *declared* number of links: lost designated
	// endpoints shrink targetPairs' links list, which is precisely the
	// failure being measured.
	linkFrac = float64(linkOK) / float64(s.ranker.segments)
	return ringFrac, linkFrac
}

// BytesPerNode returns the mean bytes per node per round so far.
func (s *System) BytesPerNode() float64 {
	m := s.eng.Meter()
	if m.Rounds() == 0 || s.eng.AliveCount() == 0 {
		return 0
	}
	var total int64
	for r := 0; r < m.Rounds(); r++ {
		total += m.RoundSum(r)
	}
	return float64(total) / float64(m.Rounds()) / float64(s.eng.AliveCount())
}

// RoundsToConverge runs until both ring and link accuracy hit 1.0,
// returning the round count (or maxRounds if it never happens).
func (s *System) RoundsToConverge(maxRounds int) (int, error) {
	for r := 1; r <= maxRounds; r++ {
		if _, err := s.eng.Run(1); err != nil {
			return 0, err
		}
		ringFrac, linkFrac := s.Accuracy()
		if ringFrac >= 1 && linkFrac >= 1 {
			return r, nil
		}
	}
	return maxRounds, nil
}
