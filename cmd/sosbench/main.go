// Command sosbench regenerates every table and figure of the paper's
// evaluation (plus the extension experiments documented in DESIGN.md).
//
// Usage:
//
//	sosbench -all                       run everything
//	sosbench -fig2 -fig3 -fig4          the paper's three figures
//	sosbench -gallery -curves -reconfig the paper's experiments (i)-(iii)
//	sosbench -churn -catastrophe        robustness extensions
//	sosbench -ablations                 design-choice ablations
//
// Common flags:
//
//	-full        paper-scale runs (25 600 nodes, 25 repetitions; slow)
//	-runs N      repetitions per data point (default 5; 25 with -full)
//	-seed N      base random seed (default 1)
//	-parallel N  worker goroutines fanning independent runs
//	             (default GOMAXPROCS; 1 = sequential; output is
//	             byte-identical either way)
//	-workers N   shard each simulation round across N workers
//	             (default 1; 0 = GOMAXPROCS). Per-node RNG streams keep
//	             every figure and table byte-identical for any value;
//	             use it to speed up single large runs
//	-compare     additionally rerun each experiment sequentially,
//	             report its parallel-vs-sequential speedup, and fail
//	             if the outputs differ (doubles the total runtime)
//	-out DIR     also write <id>.dat, <id>.svg and <id>.txt files
//
// Serve client mode (benchmarks a running `sos serve` over HTTP):
//
//	-serve URL             base URL of the service (e.g. http://127.0.0.1:8080)
//	-serve-jobs N          jobs to submit (default 16)
//	-serve-concurrency C   jobs in flight at once (default 4)
//	-serve-rounds N        rounds per job (default 30)
//
// The mode reports jobs/sec and the p50/p99 latency between consecutive
// SSE round frames; with -benchjson it writes a sosf-bench/2 record whose
// `serve` section carries the results.
//
// Performance instrumentation:
//
//	-cpuprofile FILE  write a pprof CPU profile covering every driver
//	-memprofile FILE  write a pprof heap profile at exit
//	-benchjson FILE   write machine-readable metrics (wall clock, heap
//	                  bytes and allocation counts per figure driver,
//	                  steady-state engine-round cost at 1k/10k nodes, a
//	                  worker-scaling section: ns/round at 1/2/4/8
//	                  intra-round workers, and a dist-scaling section:
//	                  ns/round with the same run sharded across 1 and 2
//	                  coordinator-driven processes) — the BENCH_*.json
//	                  perf-trajectory records committed alongside
//	                  performance PRs are generated this way
//
// Each experiment prints an aligned table and an ASCII chart, plus its
// wall-clock time; with -out it also writes gnuplot-ready .dat files and
// standalone .svg charts. A final summary line reports the total wall
// clock and the parallelism used.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"time"

	"sosf/internal/core"
	"sosf/internal/dist"
	"sosf/internal/eval"
	"sosf/internal/plot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sosbench:", err)
		os.Exit(1)
	}
}

func run() error {
	all := flag.Bool("all", false, "run every experiment")
	fig2 := flag.Bool("fig2", false, "Figure 2: convergence vs. nodes")
	fig3 := flag.Bool("fig3", false, "Figure 3: convergence vs. components")
	fig4 := flag.Bool("fig4", false, "Figure 4: bandwidth baseline vs. overhead")
	gallery := flag.Bool("gallery", false, "experiment (i): topology gallery")
	curves := flag.Bool("curves", false, "experiment (ii): accuracy over time")
	reconfig := flag.Bool("reconfig", false, "experiment (iii): live reconfiguration")
	churn := flag.Bool("churn", false, "extension: continuous churn")
	catastrophe := flag.Bool("catastrophe", false, "extension: catastrophic failures")
	ablations := flag.Bool("ablations", false, "design-choice ablations")
	baselineCmp := flag.Bool("baseline", false, "composed runtime vs. monolithic overlay")
	full := flag.Bool("full", false, "paper-scale runs (slow)")
	runs := flag.Int("runs", 0, "repetitions per data point")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", 0,
		"worker goroutines fanning independent runs (0 = GOMAXPROCS, 1 = sequential)")
	roundWorkers := flag.Int("workers", 1,
		"workers sharding each simulation round (0 = GOMAXPROCS; output identical for any value)")
	compare := flag.Bool("compare", false,
		"run each experiment sequentially too, report the speedup, and check outputs match")
	out := flag.String("out", "", "directory for .dat/.svg/.txt outputs")
	checkpoints := flag.String("checkpoints", "",
		"directory for per-cell system checkpoints from the figure sweeps (warm states for -resume)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	benchjson := flag.String("benchjson", "", "write machine-readable benchmark metrics (BENCH_*.json) to this file")
	nodesBench := flag.Int("nodes", 0,
		"population mode: build one full-stack system of N nodes, warm it, and report steady-state round cost, skipping every figure driver (`-nodes 1000000` is the million-node smoke; honors -workers)")
	resume := flag.String("resume", "",
		"warm-start benchmarking: restore a system checkpoint (written by `sos snapshot` or sosf.System.Snapshot) and measure steady-state rounds on it, skipping population build and convergence warmup")
	resumeRounds := flag.Int("resume-rounds", 20, "rounds to measure with -resume")
	serveURL := flag.String("serve", "",
		"client mode: benchmark a running `sos serve` instance at this base URL (e.g. http://127.0.0.1:8080)")
	serveJobs := flag.Int("serve-jobs", 16, "jobs to submit with -serve")
	serveConcurrency := flag.Int("serve-concurrency", 4, "concurrent jobs in flight with -serve")
	serveRounds := flag.Int("serve-rounds", 30, "rounds per job with -serve")
	flag.Parse()

	if *resume != "" {
		return warmStart(*resume, *roundWorkers, *resumeRounds)
	}
	if *nodesBench > 0 {
		return populationBench(*nodesBench, *roundWorkers)
	}
	if *serveURL != "" {
		return serveBench(*serveURL, *serveJobs, *serveConcurrency, *serveRounds, *benchjson, *seed)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sosbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sosbench: memprofile:", err)
			}
		}()
	}

	o := eval.Options{
		Runs:          *runs,
		Seed:          *seed,
		Full:          *full,
		Parallelism:   *parallel,
		RoundWorkers:  *roundWorkers,
		CheckpointDir: *checkpoints,
	}
	if *checkpoints != "" {
		if err := os.MkdirAll(*checkpoints, 0o755); err != nil {
			return err
		}
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := &writer{dir: *out}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	// Every driver is presented uniformly as a Result producer so timing
	// and speedup reporting treat figures and tables alike.
	wrap := func(f func(eval.Options) (*eval.Figure, error)) func(eval.Options) (*eval.Result, error) {
		return func(o eval.Options) (*eval.Result, error) {
			fig, err := f(o)
			if err != nil {
				return nil, err
			}
			return &eval.Result{Figures: []*eval.Figure{fig}}, nil
		}
	}
	drivers := []struct {
		name    string
		enabled bool
		run     func(eval.Options) (*eval.Result, error)
	}{
		{"fig2", *all || *fig2, wrap(eval.Fig2)},
		{"fig3", *all || *fig3, wrap(eval.Fig3)},
		{"fig4", *all || *fig4, wrap(eval.Fig4)},
		{"curves", *all || *curves, wrap(eval.Curves)},
		{"churn", *all || *churn, wrap(eval.Churn)},
		{"ablation-uo2", *all || *ablations, wrap(eval.AblationUO2)},
		{"ablation-randomness", *all || *ablations, wrap(eval.AblationRandomness)},
		{"ablation-gossip", *all || *ablations, wrap(eval.AblationGossip)},
		{"ablation-viewsize", *all || *ablations, wrap(eval.AblationViewSize)},
		{"gallery", *all || *gallery, eval.Gallery},
		{"reconfig", *all || *reconfig, eval.Reconfig},
		{"catastrophe", *all || *catastrophe, eval.Catastrophe},
		{"baseline", *all || *baselineCmp, eval.Baseline},
	}

	any := false
	var metrics []driverMetric
	start := time.Now()
	for _, d := range drivers {
		if !d.enabled {
			continue
		}
		any = true
		var msBefore runtime.MemStats
		if *benchjson != "" {
			runtime.ReadMemStats(&msBefore)
		}
		t0 := time.Now()
		res, err := d.run(o)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		if *benchjson != "" {
			var msAfter runtime.MemStats
			runtime.ReadMemStats(&msAfter)
			metrics = append(metrics, driverMetric{
				Name:   d.name,
				WallMS: float64(elapsed) / float64(time.Millisecond),
				Bytes:  msAfter.TotalAlloc - msBefore.TotalAlloc,
				Allocs: msAfter.Mallocs - msBefore.Mallocs,
			})
		}
		for _, fig := range res.Figures {
			if err := w.figure(fig); err != nil {
				return err
			}
		}
		for _, tbl := range res.Tables {
			if err := w.table(tbl); err != nil {
				return err
			}
		}
		if *compare {
			seqOpts := o
			seqOpts.Parallelism = 1
			t1 := time.Now()
			seqRes, err := d.run(seqOpts)
			if err != nil {
				return err
			}
			seqElapsed := time.Since(t1)
			if !reflect.DeepEqual(res, seqRes) {
				return fmt.Errorf("%s: parallel output differs from sequential (determinism bug)", d.name)
			}
			fmt.Printf("[%s: %v with %d workers, %v sequential — %.2fx speedup, outputs identical]\n\n",
				d.name, elapsed.Round(time.Millisecond), workers,
				seqElapsed.Round(time.Millisecond),
				float64(seqElapsed)/float64(elapsed))
		} else {
			fmt.Printf("[%s: %v]\n\n", d.name, elapsed.Round(time.Millisecond))
		}
	}
	if !any {
		flag.Usage()
		return fmt.Errorf("no experiment selected (try -all)")
	}
	total := time.Since(start)
	fmt.Printf("total wall-clock %v (parallelism %d)\n",
		total.Round(time.Millisecond), workers)
	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, o, workers, metrics, total); err != nil {
			return err
		}
		fmt.Printf("benchmark metrics written to %s\n", *benchjson)
	}
	return nil
}

// warmStart implements -resume: restore a checkpointed system and measure
// steady-state round cost from exactly where the checkpoint left off — the
// long-horizon benchmarking loop (snapshot once at scale, then measure many
// candidate builds against the same warm state without re-simulating the
// convergence prefix).
func warmStart(path string, workers, rounds int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := core.RestoreSystem(f, workers)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	eng := sys.Engine()
	fmt.Printf("resumed %q at round %d: %d nodes (%d alive), %d components\n",
		sys.Allocator().Topology().Name, eng.Round(), eng.Size(), eng.AliveCount(),
		sys.Allocator().Components())
	eng.Meter().Reserve(rounds + 1)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	if _, err := sys.Run(rounds); err != nil {
		return err
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	r := float64(rounds)
	fmt.Printf("%d warm rounds: %.2f ms/round, %.0f B/round, %.1f allocs/round (workers=%d)\n",
		rounds,
		float64(elapsed.Nanoseconds())/r/1e6,
		float64(after.TotalAlloc-before.TotalAlloc)/r,
		float64(after.Mallocs-before.Mallocs)/r,
		eng.Workers())
	return nil
}

// populationBench implements -nodes: build one full-stack system at the
// given population, warm it briefly, and report steady-state round cost.
// It is the scale smoke — `sosbench -nodes 1000000` answers "does a
// million-node round complete, and at what rate" in one command, without
// touching any figure driver. Two warm rounds are enough at this scale:
// the first round carves every per-slot arena the steady state uses, and
// convergence is irrelevant to round cost.
func populationBench(nodes, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("building full-stack system: %d nodes, %d round workers\n", nodes, workers)
	t0 := time.Now()
	m, err := measureRound(nodes, 3, 2, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%d nodes: %.1f ms/round, %.0f B/round, %.1f allocs/round (workers=%d, %d rounds measured, %v total)\n",
		m.Nodes, m.NSPerRound/1e6, m.BytesPerRound, m.AllocsPerRound,
		m.Workers, m.Rounds, time.Since(t0).Round(time.Millisecond))
	return nil
}

// driverMetric is one figure driver's cost in a BENCH_*.json record.
type driverMetric struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Bytes  uint64  `json:"bytes"`
	Allocs uint64  `json:"allocs"`
}

// roundMetric is the steady-state cost of one full-stack engine round —
// the allocation-free hot path's headline number, measured directly so the
// perf-trajectory record is self-contained and regenerable by one command.
type roundMetric struct {
	Nodes          int     `json:"nodes"`
	Workers        int     `json:"workers"`
	Rounds         int     `json:"rounds_measured"`
	NSPerRound     float64 `json:"ns_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
}

// distMetric is one dist_scaling entry: the steady-state round cost of the
// same simulation sharded across N coordinator-driven worker replicas over
// in-process pipes — the `sos dist` execution path. Recorded alongside
// worker_scaling so the perf trajectory pins both parallelism axes: threads
// within one process and shards across processes.
type distMetric struct {
	Shards     int     `json:"shards"`
	Nodes      int     `json:"nodes"`
	Rounds     int     `json:"rounds_measured"`
	NSPerRound float64 `json:"ns_per_round"`
}

// benchRecord is the BENCH_*.json schema (sosf-bench/2): environment,
// per-driver costs, steady-state engine-round costs, the worker-scaling
// section (ns/round at 1/2/4/8 intra-round workers — the v2 addition,
// together with the per-round worker count on every round metric), and the
// dist-scaling section (ns/round at 1 and 2 process shards).
type benchRecord struct {
	Schema        string         `json:"schema"`
	Go            string         `json:"go"`
	GOOS          string         `json:"goos"`
	GOARCH        string         `json:"goarch"`
	CPUs          int            `json:"cpus"`
	Parallelism   int            `json:"parallelism"`
	RoundWorkers  int            `json:"round_workers"`
	Seed          int64          `json:"seed"`
	Runs          int            `json:"runs"`
	Full          bool           `json:"full"`
	EngineRounds  []roundMetric  `json:"engine_rounds,omitempty"`
	WorkerScaling []roundMetric  `json:"worker_scaling,omitempty"`
	DistScaling   []distMetric   `json:"dist_scaling,omitempty"`
	Drivers       []driverMetric `json:"drivers,omitempty"`
	Serve         *serveMetric   `json:"serve,omitempty"`
	TotalWallMS   float64        `json:"total_wall_ms"`
}

// measureRound runs a warmed full-stack system (ring of rings, 20
// components — the BenchmarkRound configuration) for `rounds` rounds with
// the given intra-round worker count and reports per-round wall clock and
// heap cost. `warm` untimed rounds run first so the measurement sees
// steady-state gossip (the BENCH_*.json records use 10; the million-node
// smoke uses fewer, since one warm round there already touches every
// carve path the steady state will hit).
func measureRound(nodes, rounds, warm, workers int) (roundMetric, error) {
	sys, err := core.NewSystem(core.Config{
		Topology: eval.MustTopology(eval.RingOfRingsDSL(20)),
		Nodes:    nodes,
		Seed:     1,
		Workers:  workers,
	})
	if err != nil {
		return roundMetric{}, err
	}
	if _, err := sys.Run(warm); err != nil {
		return roundMetric{}, err
	}
	sys.Engine().Meter().Reserve(rounds + 1)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	if _, err := sys.Run(rounds); err != nil {
		return roundMetric{}, err
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	r := float64(rounds)
	return roundMetric{
		Nodes:          nodes,
		Workers:        workers,
		Rounds:         rounds,
		NSPerRound:     float64(elapsed.Nanoseconds()) / r,
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / r,
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / r,
	}, nil
}

// measureDist runs the BenchmarkRound configuration through the `sos dist`
// path (coordinator plus N in-process pipe workers) and reports ns/round.
// RunLocal has no warm/measure split — every run goes handshake-to-report —
// so the steady-state cost is isolated by subtraction: a short run prices
// the fixed handshake, build, and warmup cost, a long run adds the measured
// rounds, and the difference divided by the extra rounds is the per-round
// cost with both fixed costs cancelled.
func measureDist(nodes, shards int) (distMetric, error) {
	const warm, measured = 5, 50
	run := func(rounds int) (time.Duration, error) {
		t0 := time.Now()
		_, err := dist.RunLocal(dist.Config{
			Source: eval.RingOfRingsDSL(20),
			Shards: shards,
			Nodes:  nodes,
			Rounds: rounds, RoundsSet: true,
			Threads: 1,
		})
		return time.Since(t0), err
	}
	short, err := run(warm)
	if err != nil {
		return distMetric{}, err
	}
	long, err := run(warm + measured)
	if err != nil {
		return distMetric{}, err
	}
	ns := float64((long - short).Nanoseconds()) / measured
	if ns < 1 {
		// Subtraction timing can go nonpositive under scheduler noise on a
		// loaded runner; clamp so the record stays schema-valid — a 1 ns
		// round is transparently "too fast to measure", not a real number.
		ns = 1
	}
	return distMetric{Shards: shards, Nodes: nodes, Rounds: measured, NSPerRound: ns}, nil
}

// benchSchema is the schema identifier every BENCH_*.json record carries.
const benchSchema = "sosf-bench/2"

// validateBenchRecord checks a record against the sosf-bench/2 schema
// before it is written: a crashed or partial run must not overwrite a good
// perf-trajectory record with half-empty JSON (the failure mode this guards
// against: CI and the benchmark-regression gate consume these files).
func validateBenchRecord(rec *benchRecord) error {
	if rec.Schema != benchSchema {
		return fmt.Errorf("schema is %q, want %q", rec.Schema, benchSchema)
	}
	if rec.Go == "" || rec.GOOS == "" || rec.GOARCH == "" {
		return fmt.Errorf("environment fields must be set (go=%q goos=%q goarch=%q)", rec.Go, rec.GOOS, rec.GOARCH)
	}
	if rec.CPUs < 1 {
		return fmt.Errorf("cpus must be >= 1, got %d", rec.CPUs)
	}
	// A serve-mode record carries the serve section instead of the engine
	// and driver sections; a figure-driver record is the other way around.
	if rec.Serve != nil {
		s := rec.Serve
		if s.URL == "" || s.Jobs < 1 || s.Concurrency < 1 || s.RoundsPer < 1 {
			return fmt.Errorf("serve: url/jobs/concurrency/rounds_per_job must be set, got %q/%d/%d/%d",
				s.URL, s.Jobs, s.Concurrency, s.RoundsPer)
		}
		if s.Rounds != s.Jobs*s.RoundsPer {
			return fmt.Errorf("serve: rounds_streamed = %d, want jobs*rounds_per_job = %d", s.Rounds, s.Jobs*s.RoundsPer)
		}
		if s.JobsPerSec <= 0 || s.P50RoundMS < 0 || s.P99RoundMS < s.P50RoundMS || s.WallMS <= 0 {
			return fmt.Errorf("serve: metrics out of range (jobs/sec=%g p50=%g p99=%g wall=%g)",
				s.JobsPerSec, s.P50RoundMS, s.P99RoundMS, s.WallMS)
		}
		if rec.TotalWallMS <= 0 {
			return fmt.Errorf("total_wall_ms must be > 0, got %g", rec.TotalWallMS)
		}
		return nil
	}
	if len(rec.EngineRounds) == 0 {
		return fmt.Errorf("engine_rounds must not be empty")
	}
	validRound := func(section string, m roundMetric) error {
		if m.Nodes < 1 || m.Rounds < 1 || m.Workers < 1 {
			return fmt.Errorf("%s: nodes/rounds/workers must be >= 1, got %d/%d/%d", section, m.Nodes, m.Rounds, m.Workers)
		}
		if m.NSPerRound <= 0 || m.BytesPerRound < 0 || m.AllocsPerRound < 0 {
			return fmt.Errorf("%s (nodes=%d workers=%d): metrics out of range (ns=%g B=%g allocs=%g)",
				section, m.Nodes, m.Workers, m.NSPerRound, m.BytesPerRound, m.AllocsPerRound)
		}
		return nil
	}
	for _, m := range rec.EngineRounds {
		if err := validRound("engine_rounds", m); err != nil {
			return err
		}
	}
	for _, m := range rec.WorkerScaling {
		if err := validRound("worker_scaling", m); err != nil {
			return err
		}
	}
	if len(rec.DistScaling) == 0 {
		return fmt.Errorf("dist_scaling must not be empty")
	}
	for _, m := range rec.DistScaling {
		if m.Shards < 1 || m.Nodes < 1 || m.Rounds < 1 {
			return fmt.Errorf("dist_scaling: shards/nodes/rounds must be >= 1, got %d/%d/%d", m.Shards, m.Nodes, m.Rounds)
		}
		if m.NSPerRound <= 0 {
			return fmt.Errorf("dist_scaling (shards=%d): ns_per_round must be > 0, got %g", m.Shards, m.NSPerRound)
		}
	}
	if rec.CPUs > 1 {
		if err := checkWorkerScalingNotFlat(rec.WorkerScaling); err != nil {
			return err
		}
	}
	if len(rec.Drivers) == 0 {
		return fmt.Errorf("drivers must not be empty")
	}
	for i, d := range rec.Drivers {
		if d.Name == "" {
			return fmt.Errorf("driver %d has no name", i)
		}
		if d.WallMS <= 0 {
			return fmt.Errorf("driver %q: wall_ms must be > 0, got %g", d.Name, d.WallMS)
		}
	}
	if rec.TotalWallMS <= 0 {
		return fmt.Errorf("total_wall_ms must be > 0, got %g", rec.TotalWallMS)
	}
	return nil
}

// flatScalingEpsilon is the relative ns_per_round spread below which a
// population's worker sweep counts as flat. Real measurements carry a few
// percent of run-to-run noise even on one CPU (compare BENCH_PR4.json's
// 1k entries), so a sweep where every worker count lands within 2% of
// every other is not a plausible multi-core measurement.
const flatScalingEpsilon = 0.02

// checkWorkerScalingNotFlat rejects a worker_scaling section in which some
// population's sweep is identical (within epsilon) across worker counts,
// on a record claiming a multi-core runner. A record like that means the
// sharded round path silently serialized — exactly the regression the
// perf-trajectory records exist to catch — or the sweep was fabricated by
// copying one measurement. Single-CPU records are exempt: flat is the only
// honest shape there (the caller gates on rec.CPUs).
func checkWorkerScalingNotFlat(scaling []roundMetric) error {
	byNodes := make(map[int]map[int]float64)
	for _, m := range scaling {
		ws := byNodes[m.Nodes]
		if ws == nil {
			ws = make(map[int]float64)
			byNodes[m.Nodes] = ws
		}
		ws[m.Workers] = m.NSPerRound
	}
	for nodes, ws := range byNodes {
		if len(ws) < 2 {
			continue
		}
		min, max := 0.0, 0.0
		for _, ns := range ws {
			if min == 0 || ns < min {
				min = ns
			}
			if ns > max {
				max = ns
			}
		}
		if (max-min)/min <= flatScalingEpsilon {
			return fmt.Errorf(
				"worker_scaling at %d nodes is flat (%d worker counts within %.0f%% of each other) on a %s record claiming multiple CPUs — sharded rounds are not scaling",
				nodes, len(ws), flatScalingEpsilon*100, benchSchema)
		}
	}
	return nil
}

func writeBenchJSON(path string, o eval.Options, workers int, metrics []driverMetric, total time.Duration) error {
	rec := benchRecord{
		Schema:       benchSchema,
		Go:           runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		Parallelism:  workers,
		RoundWorkers: o.RoundWorkers,
		Seed:         o.Seed,
		Runs:         o.Runs,
		Full:         o.Full,
		Drivers:      metrics,
		TotalWallMS:  float64(total) / float64(time.Millisecond),
	}
	for _, cfg := range []struct{ nodes, rounds int }{{1000, 50}, {10_000, 10}} {
		// Worker-scaling section: the same steady-state rounds sharded
		// across 1/2/4/8 workers. The results are byte-identical (the
		// per-node streams guarantee it); only ns_per_round moves, and
		// only as far as the machine has cores — `cpus` above records
		// how many this record's runner really had. The workers=1 entry
		// doubles as the serial engine_rounds record, so the most
		// expensive measurement runs once.
		for _, w := range []int{1, 2, 4, 8} {
			sm, err := measureRound(cfg.nodes, cfg.rounds, 10, w)
			if err != nil {
				return err
			}
			rec.WorkerScaling = append(rec.WorkerScaling, sm)
			if w == 1 {
				rec.EngineRounds = append(rec.EngineRounds, sm)
			}
		}
	}
	// Dist-scaling section: the same simulation coordinated across process
	// shards (in-process pipes, so one command regenerates the record). The
	// shards=1 entry prices the coordination protocol itself against the
	// serial engine_rounds numbers; shards=2 shows what sharding the Plan
	// phase buys on this runner.
	for _, shards := range []int{1, 2} {
		dm, err := measureDist(1000, shards)
		if err != nil {
			return err
		}
		rec.DistScaling = append(rec.DistScaling, dm)
	}
	return writeValidatedBenchJSON(path, &rec)
}

// writeValidatedBenchJSON gates every BENCH_*.json write on schema
// validation, whichever mode produced the record.
func writeValidatedBenchJSON(path string, rec *benchRecord) error {
	if err := validateBenchRecord(rec); err != nil {
		return fmt.Errorf("benchjson: refusing to write %s: %w", path, err)
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writer renders results to stdout and, optionally, to files.
type writer struct {
	dir string
}

func (w *writer) figure(f *eval.Figure) error {
	fmt.Printf("== %s ==\n", f.Title)
	for _, n := range f.Notes {
		fmt.Printf("   (%s)\n", n)
	}
	fmt.Println()
	fmt.Print(f.Table().String())
	fmt.Println()
	fmt.Print(plot.ASCII(f.Title, f.XLabel, f.LogX, f.Series...))
	fmt.Println()
	if w.dir == "" {
		return nil
	}
	dat := plot.DAT(f.XLabel, f.Series...)
	if err := os.WriteFile(filepath.Join(w.dir, f.ID+".dat"), []byte(dat), 0o644); err != nil {
		return err
	}
	svg := plot.SVG(f.Title, f.XLabel, f.YLabel, f.LogX, f.Series...)
	return os.WriteFile(filepath.Join(w.dir, f.ID+".svg"), []byte(svg), 0o644)
}

func (w *writer) table(t *eval.TableResult) error {
	fmt.Printf("== %s ==\n", t.Title)
	for _, n := range t.Notes {
		fmt.Printf("   (%s)\n", n)
	}
	fmt.Println()
	fmt.Print(t.Table.String())
	fmt.Println()
	if w.dir == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(w.dir, t.ID+".txt"), []byte(t.Table.String()), 0o644)
}
