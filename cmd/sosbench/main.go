// Command sosbench regenerates every table and figure of the paper's
// evaluation (plus the extension experiments documented in DESIGN.md).
//
// Usage:
//
//	sosbench -all                       run everything
//	sosbench -fig2 -fig3 -fig4          the paper's three figures
//	sosbench -gallery -curves -reconfig the paper's experiments (i)-(iii)
//	sosbench -churn -catastrophe        robustness extensions
//	sosbench -ablations                 design-choice ablations
//
// Common flags:
//
//	-full        paper-scale runs (25 600 nodes, 25 repetitions; slow)
//	-runs N      repetitions per data point (default 5; 25 with -full)
//	-seed N      base random seed (default 1)
//	-parallel N  worker goroutines fanning independent runs
//	             (default GOMAXPROCS; 1 = sequential; output is
//	             byte-identical either way)
//	-compare     additionally rerun each experiment sequentially,
//	             report its parallel-vs-sequential speedup, and fail
//	             if the outputs differ (doubles the total runtime)
//	-out DIR     also write <id>.dat, <id>.svg and <id>.txt files
//
// Each experiment prints an aligned table and an ASCII chart, plus its
// wall-clock time; with -out it also writes gnuplot-ready .dat files and
// standalone .svg charts. A final summary line reports the total wall
// clock and the parallelism used.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"sosf/internal/eval"
	"sosf/internal/plot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sosbench:", err)
		os.Exit(1)
	}
}

func run() error {
	all := flag.Bool("all", false, "run every experiment")
	fig2 := flag.Bool("fig2", false, "Figure 2: convergence vs. nodes")
	fig3 := flag.Bool("fig3", false, "Figure 3: convergence vs. components")
	fig4 := flag.Bool("fig4", false, "Figure 4: bandwidth baseline vs. overhead")
	gallery := flag.Bool("gallery", false, "experiment (i): topology gallery")
	curves := flag.Bool("curves", false, "experiment (ii): accuracy over time")
	reconfig := flag.Bool("reconfig", false, "experiment (iii): live reconfiguration")
	churn := flag.Bool("churn", false, "extension: continuous churn")
	catastrophe := flag.Bool("catastrophe", false, "extension: catastrophic failures")
	ablations := flag.Bool("ablations", false, "design-choice ablations")
	baselineCmp := flag.Bool("baseline", false, "composed runtime vs. monolithic overlay")
	full := flag.Bool("full", false, "paper-scale runs (slow)")
	runs := flag.Int("runs", 0, "repetitions per data point")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", 0,
		"worker goroutines fanning independent runs (0 = GOMAXPROCS, 1 = sequential)")
	compare := flag.Bool("compare", false,
		"run each experiment sequentially too, report the speedup, and check outputs match")
	out := flag.String("out", "", "directory for .dat/.svg/.txt outputs")
	flag.Parse()

	o := eval.Options{Runs: *runs, Seed: *seed, Full: *full, Parallelism: *parallel}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := &writer{dir: *out}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	// Every driver is presented uniformly as a Result producer so timing
	// and speedup reporting treat figures and tables alike.
	wrap := func(f func(eval.Options) (*eval.Figure, error)) func(eval.Options) (*eval.Result, error) {
		return func(o eval.Options) (*eval.Result, error) {
			fig, err := f(o)
			if err != nil {
				return nil, err
			}
			return &eval.Result{Figures: []*eval.Figure{fig}}, nil
		}
	}
	drivers := []struct {
		name    string
		enabled bool
		run     func(eval.Options) (*eval.Result, error)
	}{
		{"fig2", *all || *fig2, wrap(eval.Fig2)},
		{"fig3", *all || *fig3, wrap(eval.Fig3)},
		{"fig4", *all || *fig4, wrap(eval.Fig4)},
		{"curves", *all || *curves, wrap(eval.Curves)},
		{"churn", *all || *churn, wrap(eval.Churn)},
		{"ablation-uo2", *all || *ablations, wrap(eval.AblationUO2)},
		{"ablation-randomness", *all || *ablations, wrap(eval.AblationRandomness)},
		{"ablation-gossip", *all || *ablations, wrap(eval.AblationGossip)},
		{"ablation-viewsize", *all || *ablations, wrap(eval.AblationViewSize)},
		{"gallery", *all || *gallery, eval.Gallery},
		{"reconfig", *all || *reconfig, eval.Reconfig},
		{"catastrophe", *all || *catastrophe, eval.Catastrophe},
		{"baseline", *all || *baselineCmp, eval.Baseline},
	}

	any := false
	start := time.Now()
	for _, d := range drivers {
		if !d.enabled {
			continue
		}
		any = true
		t0 := time.Now()
		res, err := d.run(o)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		for _, fig := range res.Figures {
			if err := w.figure(fig); err != nil {
				return err
			}
		}
		for _, tbl := range res.Tables {
			if err := w.table(tbl); err != nil {
				return err
			}
		}
		if *compare {
			seqOpts := o
			seqOpts.Parallelism = 1
			t1 := time.Now()
			seqRes, err := d.run(seqOpts)
			if err != nil {
				return err
			}
			seqElapsed := time.Since(t1)
			if !reflect.DeepEqual(res, seqRes) {
				return fmt.Errorf("%s: parallel output differs from sequential (determinism bug)", d.name)
			}
			fmt.Printf("[%s: %v with %d workers, %v sequential — %.2fx speedup, outputs identical]\n\n",
				d.name, elapsed.Round(time.Millisecond), workers,
				seqElapsed.Round(time.Millisecond),
				float64(seqElapsed)/float64(elapsed))
		} else {
			fmt.Printf("[%s: %v]\n\n", d.name, elapsed.Round(time.Millisecond))
		}
	}
	if !any {
		flag.Usage()
		return fmt.Errorf("no experiment selected (try -all)")
	}
	fmt.Printf("total wall-clock %v (parallelism %d)\n",
		time.Since(start).Round(time.Millisecond), workers)
	return nil
}

// writer renders results to stdout and, optionally, to files.
type writer struct {
	dir string
}

func (w *writer) figure(f *eval.Figure) error {
	fmt.Printf("== %s ==\n", f.Title)
	for _, n := range f.Notes {
		fmt.Printf("   (%s)\n", n)
	}
	fmt.Println()
	fmt.Print(f.Table().String())
	fmt.Println()
	fmt.Print(plot.ASCII(f.Title, f.XLabel, f.LogX, f.Series...))
	fmt.Println()
	if w.dir == "" {
		return nil
	}
	dat := plot.DAT(f.XLabel, f.Series...)
	if err := os.WriteFile(filepath.Join(w.dir, f.ID+".dat"), []byte(dat), 0o644); err != nil {
		return err
	}
	svg := plot.SVG(f.Title, f.XLabel, f.YLabel, f.LogX, f.Series...)
	return os.WriteFile(filepath.Join(w.dir, f.ID+".svg"), []byte(svg), 0o644)
}

func (w *writer) table(t *eval.TableResult) error {
	fmt.Printf("== %s ==\n", t.Title)
	for _, n := range t.Notes {
		fmt.Printf("   (%s)\n", n)
	}
	fmt.Println()
	fmt.Print(t.Table.String())
	fmt.Println()
	if w.dir == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(w.dir, t.ID+".txt"), []byte(t.Table.String()), 0o644)
}
