// Command sosbench regenerates every table and figure of the paper's
// evaluation (plus the extension experiments documented in DESIGN.md).
//
// Usage:
//
//	sosbench -all                       run everything
//	sosbench -fig2 -fig3 -fig4          the paper's three figures
//	sosbench -gallery -curves -reconfig the paper's experiments (i)-(iii)
//	sosbench -churn -catastrophe        robustness extensions
//	sosbench -ablations                 design-choice ablations
//
// Common flags:
//
//	-full       paper-scale runs (25 600 nodes, 25 repetitions; slow)
//	-runs N     repetitions per data point (default 5; 25 with -full)
//	-seed N     base random seed (default 1)
//	-out DIR    also write <id>.dat, <id>.svg and <id>.txt files
//
// Each experiment prints an aligned table and an ASCII chart; with -out it
// also writes gnuplot-ready .dat files and standalone .svg charts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sosf/internal/eval"
	"sosf/internal/plot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sosbench:", err)
		os.Exit(1)
	}
}

func run() error {
	all := flag.Bool("all", false, "run every experiment")
	fig2 := flag.Bool("fig2", false, "Figure 2: convergence vs. nodes")
	fig3 := flag.Bool("fig3", false, "Figure 3: convergence vs. components")
	fig4 := flag.Bool("fig4", false, "Figure 4: bandwidth baseline vs. overhead")
	gallery := flag.Bool("gallery", false, "experiment (i): topology gallery")
	curves := flag.Bool("curves", false, "experiment (ii): accuracy over time")
	reconfig := flag.Bool("reconfig", false, "experiment (iii): live reconfiguration")
	churn := flag.Bool("churn", false, "extension: continuous churn")
	catastrophe := flag.Bool("catastrophe", false, "extension: catastrophic failures")
	ablations := flag.Bool("ablations", false, "design-choice ablations")
	baselineCmp := flag.Bool("baseline", false, "composed runtime vs. monolithic overlay")
	full := flag.Bool("full", false, "paper-scale runs (slow)")
	runs := flag.Int("runs", 0, "repetitions per data point")
	seed := flag.Int64("seed", 1, "base random seed")
	out := flag.String("out", "", "directory for .dat/.svg/.txt outputs")
	flag.Parse()

	o := eval.Options{Runs: *runs, Seed: *seed, Full: *full}
	w := &writer{dir: *out}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	any := false
	type figDriver struct {
		enabled bool
		run     func(eval.Options) (*eval.Figure, error)
	}
	for _, d := range []figDriver{
		{*all || *fig2, eval.Fig2},
		{*all || *fig3, eval.Fig3},
		{*all || *fig4, eval.Fig4},
		{*all || *curves, eval.Curves},
		{*all || *churn, eval.Churn},
		{*all || *ablations, eval.AblationUO2},
		{*all || *ablations, eval.AblationRandomness},
		{*all || *ablations, eval.AblationGossip},
		{*all || *ablations, eval.AblationViewSize},
	} {
		if !d.enabled {
			continue
		}
		any = true
		fig, err := d.run(o)
		if err != nil {
			return err
		}
		if err := w.figure(fig); err != nil {
			return err
		}
	}
	type resDriver struct {
		enabled bool
		run     func(eval.Options) (*eval.Result, error)
	}
	for _, d := range []resDriver{
		{*all || *gallery, eval.Gallery},
		{*all || *reconfig, eval.Reconfig},
		{*all || *catastrophe, eval.Catastrophe},
		{*all || *baselineCmp, eval.Baseline},
	} {
		if !d.enabled {
			continue
		}
		any = true
		res, err := d.run(o)
		if err != nil {
			return err
		}
		for _, fig := range res.Figures {
			if err := w.figure(fig); err != nil {
				return err
			}
		}
		for _, tbl := range res.Tables {
			if err := w.table(tbl); err != nil {
				return err
			}
		}
	}
	if !any {
		flag.Usage()
		return fmt.Errorf("no experiment selected (try -all)")
	}
	return nil
}

// writer renders results to stdout and, optionally, to files.
type writer struct {
	dir string
}

func (w *writer) figure(f *eval.Figure) error {
	fmt.Printf("== %s ==\n", f.Title)
	for _, n := range f.Notes {
		fmt.Printf("   (%s)\n", n)
	}
	fmt.Println()
	fmt.Print(f.Table().String())
	fmt.Println()
	fmt.Print(plot.ASCII(f.Title, f.XLabel, f.LogX, f.Series...))
	fmt.Println()
	if w.dir == "" {
		return nil
	}
	dat := plot.DAT(f.XLabel, f.Series...)
	if err := os.WriteFile(filepath.Join(w.dir, f.ID+".dat"), []byte(dat), 0o644); err != nil {
		return err
	}
	svg := plot.SVG(f.Title, f.XLabel, f.YLabel, f.LogX, f.Series...)
	return os.WriteFile(filepath.Join(w.dir, f.ID+".svg"), []byte(svg), 0o644)
}

func (w *writer) table(t *eval.TableResult) error {
	fmt.Printf("== %s ==\n", t.Title)
	for _, n := range t.Notes {
		fmt.Printf("   (%s)\n", n)
	}
	fmt.Println()
	fmt.Print(t.Table.String())
	fmt.Println()
	if w.dir == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(w.dir, t.ID+".txt"), []byte(t.Table.String()), 0o644)
}
