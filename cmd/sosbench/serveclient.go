// The -serve client mode: load-test a running `sos serve` instance the way
// the figure drivers load-test the engine. N jobs are submitted at
// concurrency C, each job's SSE event stream is consumed end to end, and
// the report is throughput (jobs/sec) plus the p50/p99 latency between
// consecutive streamed rounds — the service-level cost of one simulated
// round, HTTP and SSE overhead included.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"sosf/internal/eval"
)

// serveMetric is the serve section of a sosf-bench/2 record.
type serveMetric struct {
	URL         string  `json:"url"`
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	RoundsPer   int     `json:"rounds_per_job"`
	Rounds      int     `json:"rounds_streamed"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50RoundMS  float64 `json:"p50_round_ms"`
	P99RoundMS  float64 `json:"p99_round_ms"`
	WallMS      float64 `json:"wall_ms"`
}

// serveBench drives the client mode and, with -benchjson, writes a
// sosf-bench/2 record whose serve section carries the results.
func serveBench(url string, jobs, concurrency, rounds int, benchjson string, seed int64) error {
	if jobs < 1 || concurrency < 1 || rounds < 1 {
		return fmt.Errorf("serve: -serve-jobs, -serve-concurrency and -serve-rounds must be >= 1")
	}
	url = strings.TrimSuffix(url, "/")
	m, err := runServeClient(url, jobs, concurrency, rounds)
	if err != nil {
		return err
	}
	fmt.Printf("== serve client: %s ==\n", url)
	fmt.Printf("%d jobs x %d rounds at concurrency %d: %.2f jobs/sec, %d rounds streamed\n",
		m.Jobs, m.RoundsPer, m.Concurrency, m.JobsPerSec, m.Rounds)
	fmt.Printf("round latency over SSE: p50 %.2f ms, p99 %.2f ms (wall %.0f ms)\n",
		m.P50RoundMS, m.P99RoundMS, m.WallMS)
	if benchjson == "" {
		return nil
	}
	rec := benchRecord{
		Schema:      benchSchema,
		Go:          runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Parallelism: concurrency,
		Seed:        seed,
		Runs:        jobs,
		Serve:       m,
		TotalWallMS: m.WallMS,
	}
	if err := writeValidatedBenchJSON(benchjson, &rec); err != nil {
		return err
	}
	fmt.Printf("benchmark metrics written to %s\n", benchjson)
	return nil
}

func runServeClient(url string, jobs, concurrency, rounds int) (*serveMetric, error) {
	// The workload: a small ring-of-rings, the same shape the engine
	// micro-benchmarks use, bounded to a fixed round budget per job.
	body, err := json.Marshal(map[string]any{
		"source": eval.RingOfRingsDSL(4),
		"nodes":  256,
		"rounds": rounds,
	})
	if err != nil {
		return nil, err
	}

	type jobResult struct {
		rounds int
		lats   []float64 // ms between consecutive streamed rounds
		err    error
	}
	results := make([]jobResult, jobs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, concurrency)
	t0 := time.Now()
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = runOneJob(url, body)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)

	m := &serveMetric{
		URL:         url,
		Jobs:        jobs,
		Concurrency: concurrency,
		RoundsPer:   rounds,
		JobsPerSec:  float64(jobs) / wall.Seconds(),
		WallMS:      float64(wall) / float64(time.Millisecond),
	}
	var all []float64
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("serve: job %d: %w", i+1, r.err)
		}
		if r.rounds != rounds {
			return nil, fmt.Errorf("serve: job %d streamed %d rounds, want %d", i+1, r.rounds, rounds)
		}
		m.Rounds += r.rounds
		all = append(all, r.lats...)
	}
	sort.Float64s(all)
	m.P50RoundMS = percentile(all, 0.50)
	m.P99RoundMS = percentile(all, 0.99)
	return m, nil
}

// runOneJob submits one auto-started job, times every SSE round frame, and
// deletes the job afterwards so a long campaign does not accumulate spools
// on the server.
func runOneJob(url string, spec []byte) (res struct {
	rounds int
	lats   []float64
	err    error
}) {
	resp, err := http.Post(url+"/jobs?start=1", "application/json", strings.NewReader(string(spec)))
	if err != nil {
		res.err = err
		return
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		res.err = err
		return
	}
	if resp.StatusCode != http.StatusCreated {
		res.err = fmt.Errorf("POST /jobs = %d: %s", resp.StatusCode, st.Error)
		return
	}
	if st.State == "failed" {
		res.err = fmt.Errorf("job %s failed at start: %s", st.ID, st.Error)
		return
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, url+"/jobs/"+st.ID, nil)
		if resp, derr := http.DefaultClient.Do(req); derr == nil {
			resp.Body.Close()
		}
	}()

	events, err := http.Get(url + "/jobs/" + st.ID + "/events")
	if err != nil {
		res.err = err
		return
	}
	defer events.Body.Close()
	if events.StatusCode != http.StatusOK {
		res.err = fmt.Errorf("GET events = %d", events.StatusCode)
		return
	}
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	last := time.Now()
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			event = ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "end":
				return
			case "error":
				res.err = fmt.Errorf("stream error: %s", strings.TrimPrefix(line, "data: "))
				return
			default:
				now := time.Now()
				res.lats = append(res.lats, float64(now.Sub(last))/float64(time.Millisecond))
				last = now
				res.rounds++
			}
		}
	}
	res.err = fmt.Errorf("stream of job %s closed without end event: %v", st.ID, sc.Err())
	return
}

// percentile reads the q-quantile from a sorted sample (0 when empty).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
