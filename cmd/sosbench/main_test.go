package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"sosf/internal/eval"
	"sosf/internal/metrics"
)

func sampleFigure() *eval.Figure {
	s := &metrics.Series{Name: "Elementary Topology"}
	s.Append(100, metrics.Summary{Mean: 8, CI90: 0.3})
	s.Append(200, metrics.Summary{Mean: 10, CI90: 0.4})
	return &eval.Figure{
		ID:     "sample",
		Title:  "Sample figure",
		XLabel: "# of Nodes",
		YLabel: "rounds",
		LogX:   true,
		Series: []*metrics.Series{s},
		Notes:  []string{"note"},
	}
}

func TestWriterFigureFiles(t *testing.T) {
	dir := t.TempDir()
	w := &writer{dir: dir}

	// Silence the stdout rendering for the test.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = w.figure(sampleFigure())
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}

	dat, err := os.ReadFile(filepath.Join(dir, "sample.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dat), "Elementary_Topology") {
		t.Fatalf("dat file:\n%s", dat)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "sample.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("svg file malformed")
	}
}

func TestWriterTableFiles(t *testing.T) {
	dir := t.TempDir()
	w := &writer{dir: dir}
	tbl := metrics.NewTable("a", "b")
	tbl.AddRow("1", "2")

	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = w.table(&eval.TableResult{ID: "t", Title: "T", Table: tbl})
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}

	txt, err := os.ReadFile(filepath.Join(dir, "t.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "1") {
		t.Fatalf("table file:\n%s", txt)
	}
}

// TestMillionNodeRound is the scale smoke behind `sosbench -nodes 1000000`:
// a full-stack million-node population must build and complete steady-state
// rounds. One warm round plus one measured round keeps it affordable in the
// unshortened CI test job; -short skips it entirely.
func TestMillionNodeRound(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node round smoke skipped in -short mode")
	}
	m, err := measureRound(1_000_000, 1, 1, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 1_000_000 || m.NSPerRound <= 0 {
		t.Fatalf("metric = %+v, want a positive round cost at 1M nodes", m)
	}
	// One warm round has already carved every per-slot arena the steady
	// state touches, so the measured round must be allocation-free modulo
	// runtime noise (ReadMemStats counts background allocations too).
	if m.AllocsPerRound > 100 {
		t.Fatalf("measured round made %.0f allocations; the hot path should be allocation-free", m.AllocsPerRound)
	}
	t.Logf("1M-node round: %.1f ms (workers=%d)", m.NSPerRound/1e6, m.Workers)
}

// TestMeasureDist smokes the dist_scaling measurement end to end: the
// subtraction timing must produce a positive per-round cost through the
// real coordinator/worker path.
func TestMeasureDist(t *testing.T) {
	if testing.Short() {
		t.Skip("dist measurement smoke skipped in -short mode")
	}
	m, err := measureDist(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 2 || m.Nodes != 200 || m.NSPerRound <= 0 {
		t.Fatalf("metric = %+v, want a positive 2-shard round cost", m)
	}
}

// validRecord builds a minimal record that passes the sosf-bench/2 schema
// check; the failure cases below each break exactly one field.
func validRecord() benchRecord {
	round := roundMetric{Nodes: 1000, Workers: 1, Rounds: 50, NSPerRound: 1e6}
	return benchRecord{
		Schema:       benchSchema,
		Go:           "go1.22.0",
		GOOS:         "linux",
		GOARCH:       "amd64",
		CPUs:         1,
		EngineRounds: []roundMetric{round},
		WorkerScaling: []roundMetric{
			round,
			{Nodes: 1000, Workers: 4, Rounds: 50, NSPerRound: 5e5},
		},
		DistScaling: []distMetric{
			{Shards: 1, Nodes: 1000, Rounds: 50, NSPerRound: 1.1e6},
			{Shards: 2, Nodes: 1000, Rounds: 50, NSPerRound: 9e5},
		},
		Drivers:     []driverMetric{{Name: "fig2", WallMS: 12.5}},
		TotalWallMS: 100,
	}
}

func TestValidateBenchRecordAcceptsValid(t *testing.T) {
	rec := validRecord()
	if err := validateBenchRecord(&rec); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBenchRecordRejectsFlatScalingOnMultiCore(t *testing.T) {
	rec := validRecord()
	rec.CPUs = 4
	rec.WorkerScaling = []roundMetric{
		{Nodes: 10000, Workers: 1, Rounds: 10, NSPerRound: 290e6},
		{Nodes: 10000, Workers: 2, Rounds: 10, NSPerRound: 289e6},
		{Nodes: 10000, Workers: 4, Rounds: 10, NSPerRound: 291e6},
	}
	err := validateBenchRecord(&rec)
	if err == nil || !strings.Contains(err.Error(), "flat") {
		t.Fatalf("err = %v, want a flat worker_scaling rejection", err)
	}
}

func TestValidateBenchRecordAcceptsFlatScalingOnSingleCPU(t *testing.T) {
	// On one CPU flat scaling is the only honest shape — the gate is about
	// records claiming multi-core hardware.
	rec := validRecord()
	rec.CPUs = 1
	rec.WorkerScaling = []roundMetric{
		{Nodes: 10000, Workers: 1, Rounds: 10, NSPerRound: 290e6},
		{Nodes: 10000, Workers: 4, Rounds: 10, NSPerRound: 290e6},
	}
	if err := validateBenchRecord(&rec); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBenchRecordAcceptsRealScaling(t *testing.T) {
	rec := validRecord()
	rec.CPUs = 4
	rec.WorkerScaling = []roundMetric{
		{Nodes: 10000, Workers: 1, Rounds: 10, NSPerRound: 290e6},
		{Nodes: 10000, Workers: 2, Rounds: 10, NSPerRound: 160e6},
		{Nodes: 10000, Workers: 4, Rounds: 10, NSPerRound: 90e6},
	}
	if err := validateBenchRecord(&rec); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBenchRecordRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*benchRecord)
	}{
		{"wrong schema", func(r *benchRecord) { r.Schema = "sosf-bench/1" }},
		{"missing go version", func(r *benchRecord) { r.Go = "" }},
		{"zero cpus", func(r *benchRecord) { r.CPUs = 0 }},
		{"no engine rounds", func(r *benchRecord) { r.EngineRounds = nil }},
		{"zero-node round", func(r *benchRecord) { r.EngineRounds[0].Nodes = 0 }},
		{"negative ns", func(r *benchRecord) { r.WorkerScaling[1].NSPerRound = -1 }},
		{"no dist scaling", func(r *benchRecord) { r.DistScaling = nil }},
		{"zero-shard dist entry", func(r *benchRecord) { r.DistScaling[0].Shards = 0 }},
		{"zero-ns dist entry", func(r *benchRecord) { r.DistScaling[1].NSPerRound = 0 }},
		{"no drivers", func(r *benchRecord) { r.Drivers = nil }},
		{"unnamed driver", func(r *benchRecord) { r.Drivers[0].Name = "" }},
		{"zero driver wall", func(r *benchRecord) { r.Drivers[0].WallMS = 0 }},
		{"zero total", func(r *benchRecord) { r.TotalWallMS = 0 }},
	}
	for _, tc := range cases {
		rec := validRecord()
		tc.break_(&rec)
		if err := validateBenchRecord(&rec); err == nil {
			t.Errorf("%s: malformed record passed validation", tc.name)
		}
	}
}
