package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sosf/internal/eval"
	"sosf/internal/metrics"
)

func sampleFigure() *eval.Figure {
	s := &metrics.Series{Name: "Elementary Topology"}
	s.Append(100, metrics.Summary{Mean: 8, CI90: 0.3})
	s.Append(200, metrics.Summary{Mean: 10, CI90: 0.4})
	return &eval.Figure{
		ID:     "sample",
		Title:  "Sample figure",
		XLabel: "# of Nodes",
		YLabel: "rounds",
		LogX:   true,
		Series: []*metrics.Series{s},
		Notes:  []string{"note"},
	}
}

func TestWriterFigureFiles(t *testing.T) {
	dir := t.TempDir()
	w := &writer{dir: dir}

	// Silence the stdout rendering for the test.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = w.figure(sampleFigure())
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}

	dat, err := os.ReadFile(filepath.Join(dir, "sample.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dat), "Elementary_Topology") {
		t.Fatalf("dat file:\n%s", dat)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "sample.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("svg file malformed")
	}
}

func TestWriterTableFiles(t *testing.T) {
	dir := t.TempDir()
	w := &writer{dir: dir}
	tbl := metrics.NewTable("a", "b")
	tbl.AddRow("1", "2")

	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = w.table(&eval.TableResult{ID: "t", Title: "T", Table: tbl})
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}

	txt, err := os.ReadFile(filepath.Join(dir, "t.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "1") {
		t.Fatalf("table file:\n%s", txt)
	}
}
