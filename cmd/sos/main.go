// Command sos runs, validates, plays, checkpoints, or renders a topology
// described in the framework's DSL.
//
// Usage:
//
//	sos check file.sos             validate the DSL file
//	sos run [flags] file.sos       simulate and report convergence
//	sos play [flags] file.sos      simulate to the end of the file's
//	                               scenario timeline, streaming one round
//	                               event per round to stdout
//	sos snapshot [flags] file.sos  simulate exactly -rounds rounds,
//	                               streaming events like play, then write a
//	                               checkpoint of the complete run state to
//	                               -snap
//	sos resume [flags] file.sos    restore the run state from -snap and
//	                               continue to round -rounds (absolute),
//	                               streaming events like play — the
//	                               concatenated snapshot+resume streams are
//	                               byte-identical to one uninterrupted run,
//	                               at any -workers value on either side
//	sos dot [flags] file.sos       simulate, then emit the realized
//	                               topology as Graphviz DOT on stdout
//	sos fuzz [flags]               run a deterministic generative campaign:
//	                               sample randomized fault timelines over a
//	                               seed × topology × population matrix,
//	                               check invariants (reconvergence, orphan
//	                               tail, bandwidth, resume equivalence), and
//	                               shrink every violation to a minimal .sos
//	                               reproducer; exits non-zero on findings
//
// Flags for fuzz (it takes no file argument):
//
//	-seed N        campaign master seed (default 1); the same seed always
//	               reproduces the same runs and the same reproducer bytes
//	-runs N        number of generated runs (default 8)
//	-horizon N     last round a sampled fault may touch (default 60)
//	-within N      rounds the system gets to re-converge after the last
//	               fault (default 40)
//	-bandwidth B   per-node per-round byte ceiling (default 12288)
//	-pop-floor F   require the population to stay above F of its initial
//	               size — deliberately strict, for seeding failures
//	-no-repair     sample kill blasts without replacement joins or the
//	               trailing rebalance (exposes the known index-hole gap)
//	-no-resume     skip the per-run resume-equivalence check
//	-corpus DIR    write each finding as a NAME.in/NAME.out reproducer
//	               pair under DIR (see testdata/corpus)
//	-workers N     shard each simulated round (default 1; 0 = GOMAXPROCS)
//
// Flags for run, play, snapshot, resume, and dot:
//
//	-nodes N       population size (default: the file's `nodes` option)
//	-workers N     shard each simulation round across N workers (default 1;
//	               0 = GOMAXPROCS). Output is byte-identical for every
//	               worker count — workers only change the wall clock
//	-rounds N      maximum rounds to simulate (default 150; play extends
//	               this to the scenario horizon; for resume it is the
//	               absolute target round, counted from round 0)
//	-seed N        random seed (default 1)
//	-churn F       replace F of the population per round (e.g. 0.01)
//	-loss F        drop each exchange with probability F
//	-to-end        keep running after convergence (play always does)
//	-snap FILE     (snapshot, resume) checkpoint file to write / read
//	-json          (run, play, snapshot, resume) print the final report as
//	               JSON with stable field names; where an event stream owns
//	               stdout it goes to stderr
//	-events FORMAT (play, snapshot, resume) event stream format:
//	               jsonl (default) or csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sosf"
	"sosf/internal/campaign"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sos <check|run|play|snapshot|resume|dot> [flags] file.sos")
	}
	cmd, rest := args[0], args[1:]
	if cmd == "fuzz" {
		// fuzz has its own flag set and takes no DSL file.
		return fuzz(rest)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	nodes := fs.Int("nodes", 0, "population size (default: the file's nodes option)")
	rounds := fs.Int("rounds", sosf.DefaultRounds, "maximum rounds to simulate")
	seed := fs.Int64("seed", sosf.DefaultSeed, "random seed")
	churn := fs.Float64("churn", 0, "fraction of nodes replaced per round")
	loss := fs.Float64("loss", 0, "probability that an exchange is lost")
	toEnd := fs.Bool("to-end", false, "keep running after convergence")
	workers := fs.Int("workers", 1, "workers sharding each round (0 = GOMAXPROCS; output identical for any value)")
	asJSON := fs.Bool("json", false, "machine-readable final report (run, play, snapshot, resume)")
	events := fs.String("events", "jsonl", "play/snapshot/resume: event stream format, jsonl or csv")
	snapFile := fs.String("snap", "", "snapshot/resume: checkpoint file to write/read")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s: expected exactly one DSL file", cmd)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	// -rounds and -seed are only forwarded when the user actually typed
	// them: left alone, the file's own `option rounds` / `option seed`
	// apply (and the usual defaults after that), so a self-contained .sos
	// reproducer replays its exact run with no flags at all.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	opts := []sosf.Option{
		sosf.WithNodes(*nodes),
		sosf.WithChurn(*churn),
		sosf.WithLoss(*loss),
		sosf.WithWorkers(*workers),
	}
	if explicit["rounds"] {
		opts = append(opts, sosf.WithRounds(*rounds))
	}
	if explicit["seed"] {
		opts = append(opts, sosf.WithSeed(*seed))
	}
	if *toEnd {
		opts = append(opts, sosf.WithRunToEnd())
	}

	switch cmd {
	case "check":
		if err := sosf.Validate(string(src)); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "run":
		rep, err := sosf.Run(string(src), opts...)
		if err != nil {
			return err
		}
		return printReport(os.Stdout, rep, *asJSON)
	case "play":
		return play(string(src), opts, *events, *asJSON)
	case "snapshot":
		return snapshot(string(src), opts, *events, *asJSON, *snapFile)
	case "resume":
		return resume(string(src), opts, *events, *asJSON, *snapFile)
	case "dot":
		sys, err := sosf.New(string(src), opts...)
		if err != nil {
			return err
		}
		if _, err := sys.Step(sys.RoundBudget()); err != nil {
			return err
		}
		fmt.Print(sys.DOT())
		return nil
	default:
		return fmt.Errorf("unknown command %q (want check, run, play, snapshot, resume, dot, or fuzz)", cmd)
	}
}

// fuzz runs a generative campaign and reports every minimized finding:
// the violation and reproducer source on stdout, progress on stderr, and
// optionally a committed-corpus pair per finding. Any finding makes the
// command fail, so a CI step can gate on a clean campaign.
func fuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "campaign master seed")
	runs := fs.Int("runs", 8, "number of generated runs")
	horizon := fs.Int("horizon", 60, "last round a sampled fault may touch")
	within := fs.Int("within", 40, "reconvergence budget after the last fault")
	bandwidth := fs.Float64("bandwidth", 12288, "per-node per-round byte ceiling")
	popFloor := fs.Float64("pop-floor", 0, "population floor as a fraction of the initial size (0 = off; strict values seed failures)")
	noRepair := fs.Bool("no-repair", false, "sample kills without replacement joins or the trailing rebalance")
	noResume := fs.Bool("no-resume", false, "skip the per-run resume-equivalence check")
	corpusDir := fs.String("corpus", "", "write each finding as a NAME.in/NAME.out pair under this directory")
	workers := fs.Int("workers", 1, "workers sharding each round (0 = GOMAXPROCS; results identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fuzz: unexpected argument %q (the campaign generates its own topologies)", fs.Arg(0))
	}
	findings, err := campaign.New(campaign.Config{
		Seed:             *seed,
		Runs:             *runs,
		Horizon:          *horizon,
		ReconvergeWithin: *within,
		BandwidthCeiling: *bandwidth,
		PopulationFloor:  *popFloor,
		NoRepair:         *noRepair,
		SkipResumeCheck:  *noResume,
		Workers:          *workers,
		Log:              os.Stderr,
	}).Run()
	if err != nil {
		return err
	}
	for i, f := range findings {
		fmt.Printf("finding %d: %s\nminimal reproducer (%d shrink steps, %d candidate runs):\n%s",
			i+1, f.Violation, f.ShrinkSteps, f.CandidateRuns, f.Source)
		if *corpusDir != "" {
			in, out, err := f.Write(*corpusDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s and %s\n", in, out)
		}
	}
	if len(findings) > 0 {
		return fmt.Errorf("fuzz: %d invariant violation(s) in %d runs (campaign seed %d)", len(findings), *runs, *seed)
	}
	fmt.Printf("ok: %d runs, 0 violations (campaign seed %d)\n", *runs, *seed)
	return nil
}

// subscribeEvents attaches the chosen event sink to stdout.
func subscribeEvents(sys *sosf.System, format string) error {
	switch format {
	case "jsonl":
		sys.Subscribe(sosf.JSONLSink(os.Stdout))
	case "csv":
		sys.Subscribe(sosf.CSVSink(os.Stdout))
	default:
		return fmt.Errorf("unknown -events format %q (want jsonl or csv)", format)
	}
	return nil
}

// snapshot plays exactly `rounds` rounds (no horizon extension: the
// checkpoint round must land where asked), streams the rounds' events to
// stdout, then writes the checkpoint. Together with resume it splits one
// run in two: the two commands' concatenated event streams are
// byte-identical to an uninterrupted `sos play` of the same file.
func snapshot(src string, opts []sosf.Option, format string, asJSON bool, snapFile string) error {
	if snapFile == "" {
		return fmt.Errorf("snapshot: -snap FILE is required")
	}
	sys, err := sosf.New(src, append(opts, sosf.WithRunToEnd())...)
	if err != nil {
		return err
	}
	if err := subscribeEvents(sys, format); err != nil {
		return err
	}
	if _, err := sys.Step(sys.RoundBudget()); err != nil {
		return err
	}
	if err := sys.WriteSnapshot(snapFile); err != nil {
		return err
	}
	return printReport(os.Stderr, sys.Report(), asJSON)
}

// resume restores the run state from the checkpoint and continues to the
// absolute round `rounds` (extended to the scenario horizon, like play),
// streaming the resumed rounds' events to stdout.
func resume(src string, opts []sosf.Option, format string, asJSON bool, snapFile string) error {
	if snapFile == "" {
		return fmt.Errorf("resume: -snap FILE is required")
	}
	sys, err := sosf.New(src, append(opts, sosf.WithRunToEnd(), sosf.WithRestoreFrom(snapFile))...)
	if err != nil {
		return err
	}
	if err := subscribeEvents(sys, format); err != nil {
		return err
	}
	rounds := sys.RoundBudget()
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if rounds < sys.Round() {
		return fmt.Errorf("resume: checkpoint is at round %d, past the -rounds %d target", sys.Round(), rounds)
	}
	if _, err := sys.Step(rounds - sys.Round()); err != nil {
		return err
	}
	return printReport(os.Stderr, sys.Report(), asJSON)
}

// play executes the file's scenario timeline (plus any -churn/-loss flags),
// streaming one round event per round to stdout and a final report to
// stderr. The run never stops at convergence — a timeline only makes sense
// played to the end — and -rounds is extended to the scenario horizon so
// the last scheduled action always fires.
func play(src string, opts []sosf.Option, format string, asJSON bool) error {
	sys, err := sosf.New(src, append(opts, sosf.WithRunToEnd())...)
	if err != nil {
		return err
	}
	switch format {
	case "jsonl":
		sys.Subscribe(sosf.JSONLSink(os.Stdout))
	case "csv":
		sys.Subscribe(sosf.CSVSink(os.Stdout))
	default:
		return fmt.Errorf("play: unknown -events format %q (want jsonl or csv)", format)
	}
	rounds := sys.RoundBudget()
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if _, err := sys.Step(rounds); err != nil {
		return err
	}
	return printReport(os.Stderr, sys.Report(), asJSON)
}

func printReport(w *os.File, rep *sosf.Report, asJSON bool) error {
	if !asJSON {
		fmt.Fprint(w, rep)
		return nil
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rep)
}
