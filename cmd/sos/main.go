// Command sos runs, validates, or renders a topology described in the
// framework's DSL.
//
// Usage:
//
//	sos check file.sos             validate the DSL file
//	sos run [flags] file.sos       simulate and report convergence
//	sos dot [flags] file.sos       simulate, then emit the realized
//	                               topology as Graphviz DOT on stdout
//
// Flags for run and dot:
//
//	-nodes N    population size (default: the file's `nodes` option)
//	-rounds N   maximum rounds to simulate (default 150)
//	-seed N     random seed (default 1)
//	-churn F    replace F of the population per round (e.g. 0.01)
//	-loss F     drop each exchange with probability F
//	-to-end     keep running after convergence
package main

import (
	"flag"
	"fmt"
	"os"

	"sosf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sos <check|run|dot> [flags] file.sos")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	nodes := fs.Int("nodes", 0, "population size (default: the file's nodes option)")
	rounds := fs.Int("rounds", 150, "maximum rounds to simulate")
	seed := fs.Int64("seed", 1, "random seed")
	churn := fs.Float64("churn", 0, "fraction of nodes replaced per round")
	loss := fs.Float64("loss", 0, "probability that an exchange is lost")
	toEnd := fs.Bool("to-end", false, "keep running after convergence")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s: expected exactly one DSL file", cmd)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	opt := sosf.Options{
		Nodes:     *nodes,
		Rounds:    *rounds,
		Seed:      *seed,
		ChurnRate: *churn,
		LossRate:  *loss,
		RunToEnd:  *toEnd,
	}

	switch cmd {
	case "check":
		if err := sosf.Validate(string(src)); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "run":
		rep, err := sosf.Run(string(src), opt)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "dot":
		sys, err := sosf.New(string(src), opt)
		if err != nil {
			return err
		}
		if _, err := sys.Step(opt.Rounds); err != nil {
			return err
		}
		fmt.Print(sys.DOT())
		return nil
	default:
		return fmt.Errorf("unknown command %q (want check, run, or dot)", cmd)
	}
}
