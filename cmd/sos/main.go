// Command sos runs, validates, plays, or renders a topology described in
// the framework's DSL.
//
// Usage:
//
//	sos check file.sos             validate the DSL file
//	sos run [flags] file.sos       simulate and report convergence
//	sos play [flags] file.sos      simulate to the end of the file's
//	                               scenario timeline, streaming one round
//	                               event per round to stdout
//	sos dot [flags] file.sos       simulate, then emit the realized
//	                               topology as Graphviz DOT on stdout
//
// Flags for run, play, and dot:
//
//	-nodes N       population size (default: the file's `nodes` option)
//	-workers N     shard each simulation round across N workers (default 1;
//	               0 = GOMAXPROCS). Output is byte-identical for every
//	               worker count — workers only change the wall clock
//	-rounds N      maximum rounds to simulate (default 150; play extends
//	               this to the scenario horizon)
//	-seed N        random seed (default 1)
//	-churn F       replace F of the population per round (e.g. 0.01)
//	-loss F        drop each exchange with probability F
//	-to-end        keep running after convergence (play always does)
//	-json          (run, play) print the final report as JSON with stable
//	               field names; for play it goes to stderr so stdout stays
//	               a pure event stream
//	-events FORMAT (play) event stream format: jsonl (default) or csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sosf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sos <check|run|play|dot> [flags] file.sos")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	nodes := fs.Int("nodes", 0, "population size (default: the file's nodes option)")
	rounds := fs.Int("rounds", sosf.DefaultRounds, "maximum rounds to simulate")
	seed := fs.Int64("seed", sosf.DefaultSeed, "random seed")
	churn := fs.Float64("churn", 0, "fraction of nodes replaced per round")
	loss := fs.Float64("loss", 0, "probability that an exchange is lost")
	toEnd := fs.Bool("to-end", false, "keep running after convergence")
	workers := fs.Int("workers", 1, "workers sharding each round (0 = GOMAXPROCS; output identical for any value)")
	asJSON := fs.Bool("json", false, "machine-readable final report (run, play)")
	events := fs.String("events", "jsonl", "play: event stream format, jsonl or csv")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s: expected exactly one DSL file", cmd)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := []sosf.Option{
		sosf.WithNodes(*nodes),
		sosf.WithRounds(*rounds),
		sosf.WithSeed(*seed),
		sosf.WithChurn(*churn),
		sosf.WithLoss(*loss),
		sosf.WithWorkers(*workers),
	}
	if *toEnd {
		opts = append(opts, sosf.WithRunToEnd())
	}

	switch cmd {
	case "check":
		if err := sosf.Validate(string(src)); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "run":
		rep, err := sosf.Run(string(src), opts...)
		if err != nil {
			return err
		}
		return printReport(os.Stdout, rep, *asJSON)
	case "play":
		return play(string(src), opts, *events, *rounds, *asJSON)
	case "dot":
		sys, err := sosf.New(string(src), opts...)
		if err != nil {
			return err
		}
		if _, err := sys.Step(*rounds); err != nil {
			return err
		}
		fmt.Print(sys.DOT())
		return nil
	default:
		return fmt.Errorf("unknown command %q (want check, run, play, or dot)", cmd)
	}
}

// play executes the file's scenario timeline (plus any -churn/-loss flags),
// streaming one round event per round to stdout and a final report to
// stderr. The run never stops at convergence — a timeline only makes sense
// played to the end — and -rounds is extended to the scenario horizon so
// the last scheduled action always fires.
func play(src string, opts []sosf.Option, format string, rounds int, asJSON bool) error {
	sys, err := sosf.New(src, append(opts, sosf.WithRunToEnd())...)
	if err != nil {
		return err
	}
	switch format {
	case "jsonl":
		sys.Subscribe(sosf.JSONLSink(os.Stdout))
	case "csv":
		sys.Subscribe(sosf.CSVSink(os.Stdout))
	default:
		return fmt.Errorf("play: unknown -events format %q (want jsonl or csv)", format)
	}
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if _, err := sys.Step(rounds); err != nil {
		return err
	}
	return printReport(os.Stderr, sys.Report(), asJSON)
}

func printReport(w *os.File, rep *sosf.Report, asJSON bool) error {
	if !asJSON {
		fmt.Fprint(w, rep)
		return nil
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rep)
}
