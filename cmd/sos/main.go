// Command sos runs, validates, plays, checkpoints, or renders a topology
// described in the framework's DSL.
//
// Usage:
//
//	sos check file.sos             validate the DSL file
//	sos run [flags] file.sos       simulate and report convergence
//	sos play [flags] file.sos      simulate to the end of the file's
//	                               scenario timeline, streaming one round
//	                               event per round to stdout
//	sos snapshot [flags] file.sos  simulate exactly -rounds rounds,
//	                               streaming events like play, then write a
//	                               checkpoint of the complete run state to
//	                               -snap
//	sos resume [flags] file.sos    restore the run state from -snap and
//	                               continue to round -rounds (absolute),
//	                               streaming events like play — the
//	                               concatenated snapshot+resume streams are
//	                               byte-identical to one uninterrupted run,
//	                               at any -workers value on either side
//	sos dot [flags] file.sos       simulate, then emit the realized
//	                               topology as Graphviz DOT on stdout
//	sos serve [flags]              run the multi-tenant job service: submit
//	                               .sos files or JSON specs over HTTP, run
//	                               many simulations concurrently, stream
//	                               round events over SSE, and scrape
//	                               /metrics (see internal/serve)
//	sos dist [flags] file.sos      run ONE simulation sharded across
//	                               processes: a coordinator partitions the
//	                               slot space into -shards contiguous
//	                               shards, workers plan their shard and
//	                               exchange planned records at each round
//	                               barrier, and the coordinator's event
//	                               stream is byte-identical to `sos play`
//	                               at any shard count. Without -listen the
//	                               workers run in-process over pipes; with
//	                               -listen ADDR external `sos dist -connect
//	                               ADDR` workers join over TCP or a Unix
//	                               socket (ADDR with a slash)
//	sos fuzz [flags]               run a deterministic generative campaign:
//	                               sample randomized fault timelines over a
//	                               seed × topology × population matrix,
//	                               check invariants (reconvergence, orphan
//	                               tail, bandwidth, resume equivalence), and
//	                               shrink every violation to a minimal .sos
//	                               reproducer; exits non-zero on findings
//
// Flags for serve (it takes no file argument):
//
//	-addr HOST:PORT  listen address (default 127.0.0.1:8080)
//	-dir DIR         event spools and eviction checkpoints (default
//	                 sos-serve-data)
//	-max-resident N  memory budget: evict least-recently-used paused jobs
//	                 to snapshots beyond N resident jobs (default 0 = off)
//	-workers N       default round-sharding for jobs that don't set their
//	                 own (default 1; output identical for any value)
//
// Flags for fuzz (it takes no file argument):
//
//	-seed N        campaign master seed (default 1); the same seed always
//	               reproduces the same runs and the same reproducer bytes
//	-runs N        number of generated runs (default 8)
//	-horizon N     last round a sampled fault may touch (default 60)
//	-within N      rounds the system gets to re-converge after the last
//	               fault (default 40)
//	-bandwidth B   per-node per-round byte ceiling (default 12288)
//	-pop-floor F   require the population to stay above F of its initial
//	               size — deliberately strict, for seeding failures
//	-no-repair     sample kill blasts without replacement joins or the
//	               trailing rebalance (with self-healing on these timelines
//	               reconverge on their own; add -no-heal to expose the
//	               legacy index-hole gap)
//	-no-heal       disable the self-healing layer for every generated run
//	               (pins `option heal 0` in each spec, so reproducers
//	               replay the legacy behavior flag-free)
//	-no-resume     skip the per-run resume-equivalence check
//	-corpus DIR    write each finding as a NAME.in/NAME.out reproducer
//	               pair under DIR (see testdata/corpus)
//	-workers N     shard each simulated round (default 1; 0 = GOMAXPROCS)
//
// Flags for run, play, snapshot, resume, and dot:
//
//	-nodes N       population size (default: the file's `nodes` option)
//	-workers N     shard each simulation round across N workers (default 1;
//	               0 = GOMAXPROCS). Output is byte-identical for every
//	               worker count — workers only change the wall clock
//	-rounds N      maximum rounds to simulate (default 150; play extends
//	               this to the scenario horizon; for resume it is the
//	               absolute target round, counted from round 0)
//	-seed N        random seed (default 1)
//	-churn F       replace F of the population per round (e.g. 0.01)
//	-loss F        drop each exchange with probability F
//	-no-heal       disable the self-healing layer (legacy behavior: index
//	               holes from unreplaced deaths persist until a
//	               `reconfigure`); the file's `option heal 0` does the same
//	-to-end        keep running after convergence (play always does)
//	-snap FILE     (snapshot, resume) checkpoint file to write / read
//	-json          (run, play, snapshot, resume) print the final report as
//	               JSON with stable field names; where an event stream owns
//	               stdout it goes to stderr
//	-events FORMAT (play, snapshot, resume) event stream format:
//	               jsonl (default) or csv
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sosf"
	"sosf/internal/campaign"
	"sosf/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sos <check|run|play|snapshot|resume|dot> [flags] file.sos")
	}
	cmd, rest := args[0], args[1:]
	if cmd == "fuzz" {
		// fuzz has its own flag set and takes no DSL file.
		return fuzz(rest)
	}
	if cmd == "serve" {
		// serve has its own flag set and takes no DSL file either.
		return serveCmd(rest)
	}
	if cmd == "dist" {
		// dist has its own flag set (its worker mode can even run fileless).
		return distCmd(rest)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	nodes := fs.Int("nodes", 0, "population size (default: the file's nodes option)")
	rounds := fs.Int("rounds", sosf.DefaultRounds, "maximum rounds to simulate")
	seed := fs.Int64("seed", sosf.DefaultSeed, "random seed")
	churn := fs.Float64("churn", 0, "fraction of nodes replaced per round")
	loss := fs.Float64("loss", 0, "probability that an exchange is lost")
	noHeal := fs.Bool("no-heal", false, "disable the self-healing layer (legacy index-hole behavior)")
	toEnd := fs.Bool("to-end", false, "keep running after convergence")
	workers := fs.Int("workers", 1, "workers sharding each round (0 = GOMAXPROCS; output identical for any value)")
	asJSON := fs.Bool("json", false, "machine-readable final report (run, play, snapshot, resume)")
	events := fs.String("events", "jsonl", "play/snapshot/resume: event stream format, jsonl or csv")
	snapFile := fs.String("snap", "", "snapshot/resume: checkpoint file to write/read")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s: expected exactly one DSL file", cmd)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	// -rounds and -seed are only forwarded when the user actually typed
	// them: left alone, the file's own `option rounds` / `option seed`
	// apply (and the usual defaults after that), so a self-contained .sos
	// reproducer replays its exact run with no flags at all.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	opts := []sosf.Option{
		sosf.WithNodes(*nodes),
		sosf.WithChurn(*churn),
		sosf.WithLoss(*loss),
		sosf.WithWorkers(*workers),
	}
	if explicit["rounds"] {
		opts = append(opts, sosf.WithRounds(*rounds))
	}
	if explicit["seed"] {
		opts = append(opts, sosf.WithSeed(*seed))
	}
	if *noHeal {
		opts = append(opts, sosf.WithHealing(false))
	}
	if *toEnd {
		opts = append(opts, sosf.WithRunToEnd())
	}

	switch cmd {
	case "check":
		if err := sosf.Validate(string(src)); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "run":
		rep, err := sosf.Run(string(src), opts...)
		if err != nil {
			return err
		}
		return printReport(os.Stdout, rep, *asJSON)
	case "play":
		return play(string(src), opts, *events, *asJSON)
	case "snapshot":
		return snapshot(string(src), opts, *events, *asJSON, *snapFile)
	case "resume":
		return resume(string(src), opts, *events, *asJSON, *snapFile)
	case "dot":
		sys, err := sosf.New(string(src), opts...)
		if err != nil {
			return err
		}
		if _, err := sys.Step(sys.RoundBudget()); err != nil {
			return err
		}
		fmt.Print(sys.DOT())
		return nil
	default:
		return fmt.Errorf("unknown command %q (want check, run, play, snapshot, resume, dot, serve, or fuzz)", cmd)
	}
}

// serveCmd runs the HTTP job service until SIGINT, then drains: in-flight
// requests finish, every running job parks at its next round boundary, and
// spools and checkpoints stay on disk in -dir.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	dir := fs.String("dir", "sos-serve-data", "directory for event spools and eviction checkpoints")
	maxResident := fs.Int("max-resident", 0, "evict LRU paused jobs to snapshots beyond this many resident jobs (0 = off)")
	workers := fs.Int("workers", 1, "default round-sharding for jobs that don't set their own (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected argument %q (submit topologies over HTTP)", fs.Arg(0))
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv, err := serve.NewServer(serve.Config{
		Dir:            *dir,
		MaxResident:    *maxResident,
		DefaultWorkers: *workers,
		Log:            logger,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("serve: listening on http://%s (data in %s)", ln.Addr(), *dir)
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second ^C kills us the default way
	logger.Printf("serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Close()
	return nil
}

// fuzz runs a generative campaign and reports every minimized finding:
// the violation and reproducer source on stdout, progress on stderr, and
// optionally a committed-corpus pair per finding. Any finding makes the
// command fail, so a CI step can gate on a clean campaign.
func fuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "campaign master seed")
	runs := fs.Int("runs", 8, "number of generated runs")
	horizon := fs.Int("horizon", 60, "last round a sampled fault may touch")
	within := fs.Int("within", 40, "reconvergence budget after the last fault")
	bandwidth := fs.Float64("bandwidth", 12288, "per-node per-round byte ceiling")
	popFloor := fs.Float64("pop-floor", 0, "population floor as a fraction of the initial size (0 = off; strict values seed failures)")
	noRepair := fs.Bool("no-repair", false, "sample kills without replacement joins or the trailing rebalance")
	noHeal := fs.Bool("no-heal", false, "disable the self-healing layer in every generated run (pins option heal 0)")
	noResume := fs.Bool("no-resume", false, "skip the per-run resume-equivalence check")
	corpusDir := fs.String("corpus", "", "write each finding as a NAME.in/NAME.out pair under this directory")
	workers := fs.Int("workers", 1, "workers sharding each round (0 = GOMAXPROCS; results identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fuzz: unexpected argument %q (the campaign generates its own topologies)", fs.Arg(0))
	}
	findings, err := campaign.New(campaign.Config{
		Seed:             *seed,
		Runs:             *runs,
		Horizon:          *horizon,
		ReconvergeWithin: *within,
		BandwidthCeiling: *bandwidth,
		PopulationFloor:  *popFloor,
		NoRepair:         *noRepair,
		NoHeal:           *noHeal,
		SkipResumeCheck:  *noResume,
		Workers:          *workers,
		Log:              os.Stderr,
	}).Run()
	if err != nil {
		return err
	}
	for i, f := range findings {
		fmt.Printf("finding %d: %s\nminimal reproducer (%d shrink steps, %d candidate runs):\n%s",
			i+1, f.Violation, f.ShrinkSteps, f.CandidateRuns, f.Source)
		if *corpusDir != "" {
			in, out, err := f.Write(*corpusDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s and %s\n", in, out)
		}
	}
	if len(findings) > 0 {
		return fmt.Errorf("fuzz: %d invariant violation(s) in %d runs (campaign seed %d)", len(findings), *runs, *seed)
	}
	fmt.Printf("ok: %d runs, 0 violations (campaign seed %d)\n", *runs, *seed)
	return nil
}

// subscribeEvents attaches the chosen event sink to stdout.
func subscribeEvents(sys *sosf.System, format string) error {
	switch format {
	case "jsonl":
		sys.Subscribe(sosf.JSONLSink(os.Stdout))
	case "csv":
		sys.Subscribe(sosf.CSVSink(os.Stdout))
	default:
		return fmt.Errorf("unknown -events format %q (want jsonl or csv)", format)
	}
	return nil
}

// snapshot plays exactly `rounds` rounds (no horizon extension: the
// checkpoint round must land where asked), streams the rounds' events to
// stdout, then writes the checkpoint. Together with resume it splits one
// run in two: the two commands' concatenated event streams are
// byte-identical to an uninterrupted `sos play` of the same file.
func snapshot(src string, opts []sosf.Option, format string, asJSON bool, snapFile string) error {
	if snapFile == "" {
		return fmt.Errorf("snapshot: -snap FILE is required")
	}
	sys, err := sosf.New(src, append(opts, sosf.WithRunToEnd())...)
	if err != nil {
		return err
	}
	if err := subscribeEvents(sys, format); err != nil {
		return err
	}
	if _, err := sys.Step(sys.RoundBudget()); err != nil {
		return err
	}
	if err := sys.WriteSnapshot(snapFile); err != nil {
		return err
	}
	return printReport(os.Stderr, sys.Report(), asJSON)
}

// resume restores the run state from the checkpoint and continues to the
// absolute round `rounds` (extended to the scenario horizon, like play),
// streaming the resumed rounds' events to stdout. A SIGINT is caught at the
// next round boundary and turned into a final interrupted.sosnap checkpoint,
// like play.
func resume(src string, opts []sosf.Option, format string, asJSON bool, snapFile string) error {
	if snapFile == "" {
		return fmt.Errorf("resume: -snap FILE is required")
	}
	sys, err := sosf.New(src, append(opts, sosf.WithRunToEnd(), sosf.WithRestoreFrom(snapFile))...)
	if err != nil {
		return err
	}
	if err := subscribeEvents(sys, format); err != nil {
		return err
	}
	rounds := sys.RoundBudget()
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if rounds < sys.Round() {
		return fmt.Errorf("resume: checkpoint is at round %d, past the -rounds %d target", sys.Round(), rounds)
	}
	if err := stepInterruptible(sys, rounds-sys.Round()); err != nil {
		return err
	}
	return printReport(os.Stderr, sys.Report(), asJSON)
}

// interruptSnapshot is where a SIGINT-interrupted play/resume saves its
// final round-boundary checkpoint; `sos resume -snap interrupted.sosnap`
// picks the run back up from it.
const interruptSnapshot = "interrupted.sosnap"

// stepInterruptible steps the system n more rounds, catching SIGINT: the
// engine stops at the next round boundary (never mid-round) and the
// complete run state is checkpointed to interrupted.sosnap instead of the
// process dying with the progress lost.
func stepInterruptible(sys *sosf.System, n int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	_, err := sys.StepContext(ctx, n)
	if errors.Is(err, context.Canceled) {
		stop() // restore default SIGINT behavior: a second ^C kills us
		if werr := sys.WriteSnapshot(interruptSnapshot); werr != nil {
			return fmt.Errorf("interrupted at round %d; saving %s failed: %w",
				sys.Round(), interruptSnapshot, werr)
		}
		return fmt.Errorf("interrupted at round %d; state saved to %s (continue with `sos resume -snap %s`)",
			sys.Round(), interruptSnapshot, interruptSnapshot)
	}
	return err
}

// play executes the file's scenario timeline (plus any -churn/-loss flags),
// streaming one round event per round to stdout and a final report to
// stderr. The run never stops at convergence — a timeline only makes sense
// played to the end — and -rounds is extended to the scenario horizon so
// the last scheduled action always fires. A SIGINT is caught at the next
// round boundary and turned into a final interrupted.sosnap checkpoint.
func play(src string, opts []sosf.Option, format string, asJSON bool) error {
	sys, err := sosf.New(src, append(opts, sosf.WithRunToEnd())...)
	if err != nil {
		return err
	}
	switch format {
	case "jsonl":
		sys.Subscribe(sosf.JSONLSink(os.Stdout))
	case "csv":
		sys.Subscribe(sosf.CSVSink(os.Stdout))
	default:
		return fmt.Errorf("play: unknown -events format %q (want jsonl or csv)", format)
	}
	rounds := sys.RoundBudget()
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if err := stepInterruptible(sys, rounds); err != nil {
		return err
	}
	return printReport(os.Stderr, sys.Report(), asJSON)
}

func printReport(w *os.File, rep *sosf.Report, asJSON bool) error {
	if !asJSON {
		fmt.Fprint(w, rep)
		return nil
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rep)
}
