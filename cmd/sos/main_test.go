package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testTopo = "../../testdata/ringpair.sos"

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestCheckCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"check", testTopo}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("check output = %q", out)
	}
}

func TestCheckRejectsBadFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.sos")
	if err := os.WriteFile(bad, []byte("topology broken {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", bad}); err == nil {
		t.Fatal("invalid file should fail")
	}
}

func TestRunCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "-rounds", "100", "-seed", "2", testTopo})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "converged: true") {
		t.Fatalf("run output:\n%s", out)
	}
	if !strings.Contains(out, "Port Connection") {
		t.Fatalf("run output missing sub-procedures:\n%s", out)
	}
}

func TestDotCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"dot", "-rounds", "60", testTopo})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "graph \"ringpair\"") || !strings.Contains(out, " -- ") {
		t.Fatalf("dot output:\n%.300s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus", testTopo},
		{"run"},
		{"run", testTopo, "extra"},
		{"run", "/does/not/exist.sos"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}

const playTopo = "../../testdata/playdemo.sos"

func TestRunJSONCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "-json", "-rounds", "100", "-seed", "2", testTopo})
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Topology  string `json:"topology"`
		Converged bool   `json:"converged"`
		Subs      []struct {
			Name string `json:"name"`
		} `json:"subs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("run -json output is not JSON: %v\n%s", err, out)
	}
	if rep.Topology != "ringpair" || !rep.Converged || len(rep.Subs) != 5 {
		t.Fatalf("run -json report = %+v", rep)
	}
}

// playStream runs `sos play` and returns the stdout event stream.
func playStream(t *testing.T, args ...string) string {
	t.Helper()
	// Silence the final report (it goes to stderr).
	oldErr := os.Stderr
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = devNull
	defer func() {
		os.Stderr = oldErr
		devNull.Close()
	}()
	out, err := capture(t, func() error {
		return run(append([]string{"play"}, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPlayStreamsOneEventPerRound is the acceptance check: a DSL-embedded
// scenario (kill + reconfigure mid-run) streams one valid JSON round event
// per round, deterministically for a fixed seed.
func TestPlayStreamsOneEventPerRound(t *testing.T) {
	args := []string{"-rounds", "80", "-seed", "3", playTopo}
	out := playStream(t, args...)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 80 {
		t.Fatalf("got %d events, want 80 (one per round)", len(lines))
	}
	sawKill, sawReconfigure := false, false
	for i, line := range lines {
		var ev struct {
			Round    int                `json:"round"`
			Nodes    int                `json:"nodes"`
			Accuracy map[string]float64 `json:"accuracy"`
			Actions  []string           `json:"actions"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if ev.Round != i+1 {
			t.Fatalf("line %d has round %d", i+1, ev.Round)
		}
		if ev.Nodes <= 0 || len(ev.Accuracy) != 5 {
			t.Fatalf("event %d incomplete: %s", i+1, line)
		}
		for _, a := range ev.Actions {
			if strings.HasPrefix(a, "kill ") {
				sawKill = true
			}
			if strings.HasPrefix(a, "reconfigure ") {
				sawReconfigure = true
			}
		}
	}
	if !sawKill || !sawReconfigure {
		t.Fatalf("scenario actions missing from the stream: kill=%v reconfigure=%v",
			sawKill, sawReconfigure)
	}
	if again := playStream(t, args...); again != out {
		t.Fatal("play is not deterministic for a fixed seed")
	}
}

func TestPlayExtendsRoundsToScenarioHorizon(t *testing.T) {
	// playdemo's timeline ends at round 70; -rounds 10 must be extended.
	out := playStream(t, "-rounds", "10", "-seed", "3", playTopo)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 70 {
		t.Fatalf("got %d events, want the 70-round scenario horizon", len(lines))
	}
}

func TestPlayCSV(t *testing.T) {
	out := playStream(t, "-events", "csv", "-rounds", "5", testTopo)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("want header + 5 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "round,nodes,converged,") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestPlayRejectsUnknownFormat(t *testing.T) {
	if err := run([]string{"play", "-events", "xml", playTopo}); err == nil {
		t.Fatal("unknown -events format accepted")
	}
}

const playdemoTopo = "../../testdata/playdemo.sos"

// TestSnapshotResumeSplitMatchesPlay: the CI resume-equivalence gate in
// process — snapshot at 75, resume to 150, concatenated streams must be
// byte-identical to one uninterrupted play (the frozen golden fixture).
func TestSnapshotResumeSplitMatchesPlay(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ck.sosnap")

	first, err := capture(t, func() error {
		return run([]string{"snapshot", "-rounds", "75", "-snap", ckpt, playdemoTopo})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(first, "\n"); got != 75 {
		t.Fatalf("snapshot streamed %d events, want 75", got)
	}

	second, err := capture(t, func() error {
		return run([]string{"resume", "-snap", ckpt, "-rounds", "150", "-workers", "4", playdemoTopo})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(second, "\n"); got != 75 {
		t.Fatalf("resume streamed %d events, want 75", got)
	}

	golden, err := os.ReadFile("../../testdata/golden/playdemo.events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if first+second != string(golden) {
		t.Fatal("snapshot+resume streams differ from the uninterrupted golden run")
	}
}

func TestSnapshotRequiresSnapFlag(t *testing.T) {
	if err := run([]string{"snapshot", "-rounds", "5", playdemoTopo}); err == nil {
		t.Fatal("snapshot without -snap should fail")
	}
	if err := run([]string{"resume", "-rounds", "5", playdemoTopo}); err == nil {
		t.Fatal("resume without -snap should fail")
	}
}

func TestResumeRejectsPastTarget(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ck.sosnap")
	if _, err := capture(t, func() error {
		return run([]string{"snapshot", "-rounds", "80", "-snap", ckpt, playdemoTopo})
	}); err != nil {
		t.Fatal(err)
	}
	// Horizon (70) < checkpoint round (80) > target (75): must refuse.
	if _, err := capture(t, func() error {
		return run([]string{"resume", "-snap", ckpt, "-rounds", "75", playdemoTopo})
	}); err == nil || !strings.Contains(err.Error(), "past the") {
		t.Fatalf("err = %v, want past-target refusal", err)
	}
}

// TestFileOptionsSelfContainedReplay pins the reproducer contract behind
// the fuzzing corpus: a .sos file carrying its own seed and rounds
// options replays that exact run with no flags at all, while explicit
// flags still win.
func TestFileOptionsSelfContainedReplay(t *testing.T) {
	file := filepath.Join(t.TempDir(), "self.sos")
	src := `
topology self {
    nodes 16
    option seed 7
    option rounds 9
    component a ring { weight 1 port p }
    component b ring { weight 1 port q }
    link a.p b.q
    scenario {
        at 3 kill 0.1
    }
}`
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	plain, err := capture(t, func() error { return run([]string{"play", file}) })
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(plain, "\n"); got != 9 {
		t.Fatalf("play with no flags streamed %d events, want the file's 9 rounds", got)
	}
	flagged, err := capture(t, func() error {
		return run([]string{"play", "-seed", "7", "-rounds", "9", file})
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain != flagged {
		t.Fatal("file options and equivalent explicit flags produced different streams")
	}
	longer, err := capture(t, func() error {
		return run([]string{"play", "-rounds", "12", file})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(longer, "\n"); got != 12 {
		t.Fatalf("explicit -rounds 12 streamed %d events, want 12", got)
	}
}

// TestFuzzCleanCampaign is the CLI face of the CI campaign smoke: a small
// fixed-seed matrix with the default invariants finds nothing and exits
// zero.
func TestFuzzCleanCampaign(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"fuzz", "-seed", "1", "-runs", "3"}) })
	if err != nil {
		t.Fatalf("clean campaign failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok: 3 runs, 0 violations") {
		t.Fatalf("fuzz output = %q", out)
	}
}

// TestFuzzSeededViolationWritesCorpus seeds a failure with a strict
// population floor and checks the full loop: non-zero exit, reproducer on
// stdout, and a NAME.in/NAME.out pair in the corpus directory.
func TestFuzzSeededViolationWritesCorpus(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"fuzz", "-seed", "3", "-runs", "1", "-pop-floor", "0.95", "-corpus", dir})
	})
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("seeded campaign must fail with a violation error, got %v", err)
	}
	if !strings.Contains(out, "minimal reproducer") || !strings.Contains(out, "topology ") {
		t.Fatalf("fuzz stdout lacks the reproducer:\n%s", out)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.in"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no .in corpus entries written (%v)", err)
	}
	for _, in := range entries {
		outFile := strings.TrimSuffix(in, ".in") + ".out"
		if _, err := os.Stat(outFile); err != nil {
			t.Fatalf("corpus entry %s has no golden stream: %v", in, err)
		}
	}
}

// TestFuzzRejectsFileArgument keeps the CLI surface honest.
func TestFuzzRejectsFileArgument(t *testing.T) {
	if err := run([]string{"fuzz", testTopo}); err == nil {
		t.Fatal("fuzz with a file argument should fail")
	}
}
