package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testTopo = "../../testdata/ringpair.sos"

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestCheckCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"check", testTopo}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("check output = %q", out)
	}
}

func TestCheckRejectsBadFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.sos")
	if err := os.WriteFile(bad, []byte("topology broken {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", bad}); err == nil {
		t.Fatal("invalid file should fail")
	}
}

func TestRunCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "-rounds", "100", "-seed", "2", testTopo})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "converged: true") {
		t.Fatalf("run output:\n%s", out)
	}
	if !strings.Contains(out, "Port Connection") {
		t.Fatalf("run output missing sub-procedures:\n%s", out)
	}
}

func TestDotCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"dot", "-rounds", "60", testTopo})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "graph \"ringpair\"") || !strings.Contains(out, " -- ") {
		t.Fatalf("dot output:\n%.300s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus", testTopo},
		{"run"},
		{"run", testTopo, "extra"},
		{"run", "/does/not/exist.sos"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}
