package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sosf"
	"sosf/internal/dist"
)

// distCmd runs one simulation sharded across processes (see internal/dist).
// Three modes share one flag set:
//
//	sos dist -shards N file.sos                coordinator + N in-process
//	                                           pipe workers (one command,
//	                                           N-way sharded rounds)
//	sos dist -shards N -listen ADDR file.sos   coordinator; waits for N
//	                                           external workers
//	sos dist -connect ADDR [file.sos]          worker; dials the coordinator
//	                                           (retrying, so launch order is
//	                                           free) and receives the source
//	                                           in the handshake — a local
//	                                           file, if given, is only
//	                                           digest-checked against it
//
// An ADDR containing a slash is a Unix socket path, anything else is TCP.
// The coordinator streams round events to stdout and the final report to
// stderr, exactly like `sos play` — and byte-identical to it at any -shards
// value. -snap writes a checkpoint after the run; -resume restores one
// before it (workers receive the blob over the wire, no shared filesystem
// needed).
func distCmd(args []string) error {
	fs := flag.NewFlagSet("dist", flag.ContinueOnError)
	shards := fs.Int("shards", 2, "worker count; each owns one contiguous slot shard")
	listen := fs.String("listen", "", "coordinator: accept workers on this address instead of spawning in-process ones")
	connect := fs.String("connect", "", "worker: dial the coordinator at this address")
	nodes := fs.Int("nodes", 0, "population size (default: the file's nodes option)")
	rounds := fs.Int("rounds", 0, "absolute target round (default: the file's budget, extended to the scenario horizon)")
	seed := fs.Int64("seed", sosf.DefaultSeed, "random seed")
	churn := fs.Float64("churn", 0, "fraction of nodes replaced per round")
	loss := fs.Float64("loss", 0, "probability that an exchange is lost")
	noHeal := fs.Bool("no-heal", false, "disable the self-healing layer")
	workers := fs.Int("workers", 1, "threads sharding each process's round phases (0 = GOMAXPROCS; output identical for any value)")
	events := fs.String("events", "jsonl", "coordinator event stream format: jsonl or csv")
	snapFile := fs.String("snap", "", "coordinator: write a checkpoint here after the run")
	resumeFile := fs.String("resume", "", "coordinator: restore this checkpoint before the run")
	asJSON := fs.Bool("json", false, "machine-readable final report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *connect != "" {
		if *listen != "" {
			return fmt.Errorf("dist: -connect and -listen are different roles; pick one")
		}
		if fs.NArg() > 1 {
			return fmt.Errorf("dist: worker mode takes at most one DSL file (for the digest check)")
		}
		localSrc := ""
		if fs.NArg() == 1 {
			b, err := os.ReadFile(fs.Arg(0))
			if err != nil {
				return err
			}
			localSrc = string(b)
		}
		conn, err := dist.DialRetry(dist.ChooseTransport(*connect), *connect, 15*time.Second)
		if err != nil {
			return err
		}
		return dist.RunWorker(conn, *workers, localSrc)
	}

	if fs.NArg() != 1 {
		return fmt.Errorf("dist: expected exactly one DSL file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var sink func(sosf.RoundEvent)
	switch *events {
	case "jsonl":
		sink = sosf.JSONLSink(os.Stdout)
	case "csv":
		sink = sosf.CSVSink(os.Stdout)
	default:
		return fmt.Errorf("dist: unknown -events format %q (want jsonl or csv)", *events)
	}
	cfg := dist.Config{
		Source: string(src),
		Shards: *shards,
		Seed:   *seed, SeedSet: explicit["seed"],
		Nodes:  *nodes,
		Loss:   *loss,
		Churn:  *churn,
		Rounds: *rounds, RoundsSet: explicit["rounds"],
		Threads:    *workers,
		Events:     []func(sosf.RoundEvent){sink},
		SnapPath:   *snapFile,
		ResumePath: *resumeFile,
	}
	if *noHeal {
		cfg.Healing, cfg.HealingSet = false, true
	}

	var sys *sosf.System
	if *listen == "" {
		sys, err = dist.RunLocal(cfg)
		if err != nil {
			return err
		}
	} else {
		c, err := dist.NewCoordinator(cfg)
		if err != nil {
			return err
		}
		t := dist.ChooseTransport(*listen)
		ln, err := t.Listen(*listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "dist: listening on %s %s for %d worker(s)\n", t.Name(), ln.Addr(), *shards)
		conns := make([]dist.Conn, *shards)
		for i := range conns {
			if conns[i], err = ln.Accept(); err != nil {
				return err
			}
		}
		if err := c.Run(conns); err != nil {
			return err
		}
		sys = c.System()
	}
	return printReport(os.Stderr, sys.Report(), *asJSON)
}
