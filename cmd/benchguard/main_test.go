package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: sosf
cpu: whatever
BenchmarkRound/n=1k-4         	       3	  25000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkRound/n=10k-4        	       3	 290000000 ns/op	      16 B/op	       0 allocs/op
BenchmarkRound/n=100k-4       	       3	3100000000 ns/op	       0 B/op	       0 allocs/op
PASS
`

func sampleBaseline() map[int]float64 {
	return map[int]float64{1000: 24787944, 10000: 288788594}
}

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	if results[0].nodes != 1000 || results[0].nsOp != 25000000 || results[0].allocs != 0 {
		t.Fatalf("first result = %+v", results[0])
	}
	if results[2].nodes != 100000 {
		t.Fatalf("third result nodes = %d", results[2].nodes)
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	table, failures := compare(results, sampleBaseline(), 25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	for _, want := range []string{"BenchmarkRound/n=1k-4", "no baseline (not gated)", "| ok |"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareFlagsNSRegression(t *testing.T) {
	bench := "BenchmarkRound/n=1k-4  3  40000000 ns/op  0 B/op  0 allocs/op\n"
	results, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := compare(results, sampleBaseline(), 25)
	if len(failures) != 1 || !strings.Contains(failures[0], "over the") {
		t.Fatalf("failures = %v, want one ns/op regression", failures)
	}
}

func TestCompareFlagsAllocations(t *testing.T) {
	bench := "BenchmarkRound/n=1k-4  3  25000000 ns/op  128 B/op  2 allocs/op\n"
	results, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := compare(results, sampleBaseline(), 25)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocation-free") {
		t.Fatalf("failures = %v, want one allocation failure", failures)
	}
}

func TestLoadBaselineFromRepoRecord(t *testing.T) {
	base, err := loadBaseline("../../BENCH_PR4.json")
	if err != nil {
		t.Fatal(err)
	}
	if base[1000] == 0 || base[10000] == 0 {
		t.Fatalf("baseline = %v, want 1k and 10k serial entries", base)
	}
}
