package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: sosf
cpu: whatever
BenchmarkRound/n=1k-4         	       3	  25000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkRound/n=10k-4        	       3	 290000000 ns/op	      16 B/op	       0 allocs/op
BenchmarkRound/n=100k-4       	       3	3100000000 ns/op	       0 B/op	       0 allocs/op
PASS
`

func sampleBaseline() map[int]float64 {
	return map[int]float64{1000: 24787944, 10000: 288788594}
}

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	if results[0].nodes != 1000 || results[0].nsOp != 25000000 || results[0].allocs != 0 {
		t.Fatalf("first result = %+v", results[0])
	}
	if results[2].nodes != 100000 {
		t.Fatalf("third result nodes = %d", results[2].nodes)
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	table, failures := compare(results, sampleBaseline(), 25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	for _, want := range []string{"BenchmarkRound/n=1k-4", "no baseline (not gated)", "| ok |"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareFlagsNSRegression(t *testing.T) {
	bench := "BenchmarkRound/n=1k-4  3  40000000 ns/op  0 B/op  0 allocs/op\n"
	results, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := compare(results, sampleBaseline(), 25)
	if len(failures) != 1 || !strings.Contains(failures[0], "over the") {
		t.Fatalf("failures = %v, want one ns/op regression", failures)
	}
}

func TestCompareFlagsAllocations(t *testing.T) {
	bench := "BenchmarkRound/n=1k-4  3  25000000 ns/op  128 B/op  2 allocs/op\n"
	results, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := compare(results, sampleBaseline(), 25)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocation-free") {
		t.Fatalf("failures = %v, want one allocation failure", failures)
	}
}

func TestParseBenchWorkersAndMillions(t *testing.T) {
	bench := `BenchmarkRoundWorkers/n=10k/workers=1-4   3  290000000 ns/op  0 B/op  0 allocs/op
BenchmarkRoundWorkers/n=10k/workers=4-4   3   80000000 ns/op  0 B/op  0 allocs/op
BenchmarkRound/n=1M-4                     1  31000000000 ns/op  0 B/op  0 allocs/op
`
	results, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	if results[0].workers != 1 || results[1].workers != 4 {
		t.Fatalf("workers = %d, %d, want 1, 4", results[0].workers, results[1].workers)
	}
	if results[2].nodes != 1_000_000 || results[2].workers != 1 {
		t.Fatalf("n=1M result = %+v", results[2])
	}
}

func TestCompareSkipsParallelBaseline(t *testing.T) {
	// A workers=4 line must not be gated against the serial baseline even
	// when it is slower than baseline+budget (e.g. on a saturated runner).
	bench := "BenchmarkRoundWorkers/n=1k/workers=4-4  3  99000000 ns/op  0 B/op  0 allocs/op\n"
	results, err := parseBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	table, failures := compare(results, sampleBaseline(), 25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if !strings.Contains(table, "no baseline (not gated)") {
		t.Fatalf("parallel line should be ungated:\n%s", table)
	}
}

func speedupResults(serialNS, shardedNS float64) []benchResult {
	return []benchResult{
		{name: "BenchmarkRoundWorkers/n=10k/workers=1-4", nodes: 10000, workers: 1, nsOp: serialNS},
		{name: "BenchmarkRoundWorkers/n=10k/workers=4-4", nodes: 10000, workers: 4, nsOp: shardedNS},
	}
}

func TestCheckSpeedupPasses(t *testing.T) {
	table, failures := checkSpeedup(speedupResults(300e6, 100e6), 1.5, 4)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if !strings.Contains(table, "3.00x") || !strings.Contains(table, "| ok |") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestCheckSpeedupFlagsFlatScaling(t *testing.T) {
	_, failures := checkSpeedup(speedupResults(300e6, 290e6), 1.5, 4)
	if len(failures) != 1 || !strings.Contains(failures[0], "under the required") {
		t.Fatalf("failures = %v, want one flat-scaling failure", failures)
	}
}

func TestCheckSpeedupSkipsSingleCPU(t *testing.T) {
	table, failures := checkSpeedup(speedupResults(300e6, 300e6), 1.5, 1)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if !strings.Contains(table, "skipped: single-CPU") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestCheckSpeedupFailsWithoutPairs(t *testing.T) {
	serialOnly := []benchResult{{name: "BenchmarkRound/n=10k-4", nodes: 10000, workers: 1, nsOp: 300e6}}
	_, failures := checkSpeedup(serialOnly, 1.5, 4)
	if len(failures) != 1 || !strings.Contains(failures[0], "no population") {
		t.Fatalf("failures = %v, want one missing-pair failure", failures)
	}
}

// writeDistRecord drops a minimal sosf-bench record with the given
// dist_scaling entries and loads it back through the gate's reader.
func writeDistRecord(t *testing.T, entries string) *distRecord {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_CI.json")
	blob := `{"schema":"sosf-bench/2","dist_scaling":[` + entries + `]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := loadDistRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestCheckDistPresencePasses(t *testing.T) {
	rec := writeDistRecord(t,
		`{"shards":1,"nodes":1000,"ns_per_round":2e6},{"shards":2,"nodes":1000,"ns_per_round":1.5e6}`)
	table, failures := checkDist(rec, 0, 4)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if !strings.Contains(table, "1.33x") || !strings.Contains(table, "presence check only") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestCheckDistFlagsMissingSection(t *testing.T) {
	rec := writeDistRecord(t, `{"shards":1,"nodes":1000,"ns_per_round":2e6}`)
	_, failures := checkDist(rec, 0, 4)
	if len(failures) != 1 || !strings.Contains(failures[0], "unmeasured") {
		t.Fatalf("failures = %v, want one missing-entry failure", failures)
	}
}

func TestCheckDistRatioGate(t *testing.T) {
	rec := writeDistRecord(t,
		`{"shards":1,"nodes":1000,"ns_per_round":2e6},{"shards":2,"nodes":1000,"ns_per_round":1.9e6}`)
	_, failures := checkDist(rec, 1.5, 4)
	if len(failures) != 1 || !strings.Contains(failures[0], "under the required") {
		t.Fatalf("failures = %v, want one ratio failure", failures)
	}
	// The same record passes when the runner cannot physically parallelize.
	table, failures := checkDist(rec, 1.5, 1)
	if len(failures) != 0 || !strings.Contains(table, "skipped: single-CPU") {
		t.Fatalf("failures = %v, table:\n%s", failures, table)
	}
}

func TestLoadBaselineFromRepoRecord(t *testing.T) {
	base, err := loadBaseline("../../BENCH_PR4.json")
	if err != nil {
		t.Fatal(err)
	}
	if base[1000] == 0 || base[10000] == 0 {
		t.Fatalf("baseline = %v, want 1k and 10k serial entries", base)
	}
}
