// Command benchguard is the CI benchmark-regression gate: it parses `go
// test -bench` output for the anchored BenchmarkRound populations, compares
// them against the steady-state numbers recorded in a BENCH_*.json
// perf-trajectory record (sosf-bench/2 schema), and fails when the hot path
// regresses — any heap allocation per round, or ns/op more than the allowed
// percentage over the recorded baseline.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkRound$/' -benchtime 3x -benchmem . | \
//	    benchguard -baseline BENCH_PR4.json -max-regress 25
//
// Flags:
//
//	-baseline FILE    BENCH_*.json record with the engine_rounds baselines
//	-bench FILE       bench output to check ("-" or absent = stdin)
//	-max-regress PCT  allowed ns/op increase over baseline (default 25)
//	-min-speedup X    worker-scaling gate: for every population with both
//	                  a workers=1 and a workers=4 result, ns/op(workers=1)
//	                  divided by ns/op(workers=4) must reach X (default 0 =
//	                  off; skipped with a note when the runner has a
//	                  single CPU, where no speedup is physically possible)
//	-dist-record FILE gate the dist_scaling section of a freshly generated
//	                  BENCH_*.json: entries for shards=1 and shards=2 must
//	                  be present with sane round costs, proving the
//	                  sharded-process path still runs and gets measured
//	-min-dist-speedup X
//	                  with -dist-record, additionally require the
//	                  shards=1 / shards=2 ns/round ratio to reach X
//	                  (default 0 = presence check only — the replicated
//	                  non-Plan phases bound the achievable ratio, so a
//	                  ratio gate is opt-in; skipped on single-CPU runners)
//	-summary FILE     also append the markdown comparison table here
//	                  (default: $GITHUB_STEP_SUMMARY when set)
//
// Populations without a baseline entry are reported but not gated, so the
// bench matrix can grow ahead of the recorded trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// baselineRecord is the slice of the sosf-bench/2 schema this tool reads.
type baselineRecord struct {
	Schema       string `json:"schema"`
	EngineRounds []struct {
		Nodes          int     `json:"nodes"`
		Workers        int     `json:"workers"`
		NSPerRound     float64 `json:"ns_per_round"`
		AllocsPerRound float64 `json:"allocs_per_round"`
	} `json:"engine_rounds"`
}

// benchResult is one parsed benchmark line.
type benchResult struct {
	name    string
	nodes   int
	workers int
	nsOp    float64
	allocs  int64
}

// benchLine matches `BenchmarkRound/n=10k-4  3  288788594 ns/op  12 B/op  0 allocs/op`
// and `BenchmarkRoundWorkers/n=10k/workers=4-4  ...`; populations carry a
// k (thousands) or M (millions) suffix, and the workers segment, the -cpus
// suffix, and the B/op column are all optional.
var benchLine = regexp.MustCompile(
	`^(BenchmarkRound(?:Workers)?/n=(\d+)([kM])(?:/workers=(\d+))?[^ \t]*)\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+(\d+) allocs/op)?`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_PR4.json", "BENCH_*.json perf-trajectory record")
	benchPath := flag.String("bench", "-", "go test -bench output to check ('-' = stdin)")
	maxRegress := flag.Float64("max-regress", 25, "allowed ns/op increase over baseline, in percent")
	minSpeedup := flag.Float64("min-speedup", 0,
		"required workers=1 / workers=4 ns/op ratio per population (0 = gate off; skipped on single-CPU runners)")
	distRecordPath := flag.String("dist-record", "",
		"BENCH_*.json whose dist_scaling section must carry sane shards=1 and shards=2 entries (empty = gate off)")
	minDistSpeedup := flag.Float64("min-dist-speedup", 0,
		"required shards=1 / shards=2 ns/round ratio in -dist-record (0 = presence check only; skipped on single-CPU runners)")
	summaryPath := flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"),
		"markdown summary destination (appended; empty = stdout only)")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if *benchPath != "" && *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no BenchmarkRound results found in the bench output")
	}

	table, failures := compare(results, base, *maxRegress)
	if *minSpeedup > 0 {
		scaling, scalingFailures := checkSpeedup(results, *minSpeedup, runtime.NumCPU())
		table += scaling
		failures = append(failures, scalingFailures...)
	}
	if *distRecordPath != "" {
		rec, err := loadDistRecord(*distRecordPath)
		if err != nil {
			return err
		}
		section, distFailures := checkDist(rec, *minDistSpeedup, runtime.NumCPU())
		table += section
		failures = append(failures, distFailures...)
	}
	fmt.Print(table)
	if *summaryPath != "" {
		f, err := os.OpenFile(*summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteString(table); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func loadBaseline(path string) (map[int]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec baselineRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rec.Schema, "sosf-bench/") {
		return nil, fmt.Errorf("%s: schema is %q, want sosf-bench/*", path, rec.Schema)
	}
	base := make(map[int]float64)
	for _, er := range rec.EngineRounds {
		if er.Workers <= 1 { // serial steady state is the anchored baseline
			base[er.Nodes] = er.NSPerRound
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("%s: no serial engine_rounds baselines", path)
	}
	return base, nil
}

func parseBench(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		count, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		scale := 1000
		if m[3] == "M" {
			scale = 1_000_000
		}
		workers := 1
		if m[4] != "" {
			if workers, err = strconv.Atoi(m[4]); err != nil {
				return nil, fmt.Errorf("bad workers in %q", sc.Text())
			}
		}
		nsOp, err := strconv.ParseFloat(m[5], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q", sc.Text())
		}
		res := benchResult{name: m[1], nodes: count * scale, workers: workers, nsOp: nsOp, allocs: -1}
		if m[6] != "" {
			allocs, err := strconv.ParseInt(m[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q", sc.Text())
			}
			res.allocs = allocs
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// distRecord is the slice of the sosf-bench schema the dist gate reads.
type distRecord struct {
	Schema      string `json:"schema"`
	DistScaling []struct {
		Shards     int     `json:"shards"`
		Nodes      int     `json:"nodes"`
		NSPerRound float64 `json:"ns_per_round"`
	} `json:"dist_scaling"`
}

func loadDistRecord(path string) (*distRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec distRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rec.Schema, "sosf-bench/") {
		return nil, fmt.Errorf("%s: schema is %q, want sosf-bench/*", path, rec.Schema)
	}
	return &rec, nil
}

// checkDist is the sharded-process gate: the freshly regenerated record
// must carry dist_scaling entries for shards=1 and shards=2 with positive
// round costs — proving the coordinator/worker path still completes and is
// still being measured. With minSpeedup > 0 it additionally requires the
// shards=1 / shards=2 ratio to reach that bar; the ratio gate is opt-in
// because the replicated non-Plan phases bound what sharding can buy, and
// it reports itself skipped on single-CPU runners where no speedup is
// physically possible (the presence check still applies there).
func checkDist(rec *distRecord, minSpeedup float64, cpus int) (string, []string) {
	var b strings.Builder
	b.WriteString("### Dist-scaling gate (shards=1 vs shards=2)\n\n")
	ns := make(map[int]float64)
	nodes := 0
	for _, m := range rec.DistScaling {
		if m.NSPerRound > 0 {
			ns[m.Shards] = m.NSPerRound
			nodes = m.Nodes
		}
	}
	var failures []string
	if ns[1] <= 0 || ns[2] <= 0 {
		failure := fmt.Sprintf(
			"dist-scaling gate: record needs positive shards=1 and shards=2 entries, has %d usable (the sharded-process path went unmeasured)",
			len(ns))
		b.WriteString(failure + "\n\n")
		return b.String(), []string{failure}
	}
	ratio := ns[1] / ns[2]
	fmt.Fprintf(&b, "| nodes | shards=1 ns/round | shards=2 ns/round | ratio |\n")
	fmt.Fprintf(&b, "|---:|---:|---:|---:|\n")
	fmt.Fprintf(&b, "| %d | %.0f | %.0f | %.2fx |\n\n", nodes, ns[1], ns[2], ratio)
	switch {
	case minSpeedup <= 0:
		b.WriteString("ratio not gated (presence check only)\n\n")
	case cpus <= 1:
		b.WriteString("ratio gate skipped: single-CPU runner, no parallel speedup is possible\n\n")
	case ratio < minSpeedup:
		failure := fmt.Sprintf(
			"dist-scaling at n=%d: %.2fx ratio (shards=1 %.0f ns/round, shards=2 %.0f ns/round) is under the required %.2fx",
			nodes, ratio, ns[1], ns[2], minSpeedup)
		b.WriteString(failure + "\n\n")
		failures = append(failures, failure)
	default:
		fmt.Fprintf(&b, "ratio ok (required ≥ %.2fx)\n\n", minSpeedup)
	}
	return b.String(), failures
}

// checkSpeedup is the worker-scaling gate: for every population that has
// both a workers=1 and a workers=4 result, the serial-over-sharded ns/op
// ratio must reach minSpeedup. The gate exists so the sharded Deliver path
// cannot silently degenerate into serialized execution — a determinism-
// preserving refactor that loses the parallelism would still pass every
// correctness test. On a single-CPU runner no speedup is physically
// possible, so the gate reports itself skipped instead of failing;
// anywhere else, a missing workers pair is a failure (the gate was asked
// for and has nothing to measure — most likely a bench-regex or CI-matrix
// typo).
func checkSpeedup(results []benchResult, minSpeedup float64, cpus int) (string, []string) {
	var b strings.Builder
	fmt.Fprintf(&b, "### Worker-scaling gate (workers=1 vs workers=4, required ≥ %.2fx)\n\n", minSpeedup)
	if cpus <= 1 {
		b.WriteString("skipped: single-CPU runner, no parallel speedup is possible\n\n")
		return b.String(), nil
	}
	type pair struct{ serial, sharded float64 }
	pairs := make(map[int]*pair)
	for _, res := range results {
		p := pairs[res.nodes]
		if p == nil {
			p = &pair{}
			pairs[res.nodes] = p
		}
		switch res.workers {
		case 1:
			p.serial = res.nsOp
		case 4:
			p.sharded = res.nsOp
		}
	}
	var populations []int
	for n, p := range pairs {
		if p.serial > 0 && p.sharded > 0 {
			populations = append(populations, n)
		}
	}
	if len(populations) == 0 {
		failure := "worker-scaling gate: no population has both a workers=1 and a workers=4 result"
		b.WriteString(failure + "\n\n")
		return b.String(), []string{failure}
	}
	sort.Ints(populations)
	var failures []string
	b.WriteString("| nodes | workers=1 ns/op | workers=4 ns/op | speedup | verdict |\n")
	b.WriteString("|---:|---:|---:|---:|---|\n")
	for _, n := range populations {
		p := pairs[n]
		speedup := p.serial / p.sharded
		verdict := "ok"
		if speedup < minSpeedup {
			verdict = fmt.Sprintf("FAIL (< %.2fx)", minSpeedup)
			failures = append(failures,
				fmt.Sprintf("worker-scaling at n=%d: %.2fx speedup (workers=1 %.0f ns/op, workers=4 %.0f ns/op) is under the required %.2fx",
					n, speedup, p.serial, p.sharded, minSpeedup))
		}
		fmt.Fprintf(&b, "| %d | %.0f | %.0f | %.2fx | %s |\n", n, p.serial, p.sharded, speedup, verdict)
	}
	b.WriteString("\n")
	return b.String(), failures
}

// compare renders the markdown comparison table and collects gate failures.
func compare(results []benchResult, base map[int]float64, maxRegress float64) (string, []string) {
	var b strings.Builder
	var failures []string
	b.WriteString("### Benchmark regression gate (BenchmarkRound vs. recorded baseline)\n\n")
	b.WriteString("| benchmark | ns/op | baseline ns/op | delta | allocs/op | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, res := range results {
		baseNS, haveBase := base[res.nodes]
		// The recorded baselines are serial steady states; sharded results
		// are gated by the worker-scaling check instead, so a parallel
		// line is never held to (or flattered by) a serial number.
		if res.workers > 1 {
			haveBase = false
		}
		verdict := "ok"
		deltaCol := "n/a"
		baseCol := "—"
		if haveBase {
			delta := (res.nsOp - baseNS) / baseNS * 100
			deltaCol = fmt.Sprintf("%+.1f%%", delta)
			baseCol = fmt.Sprintf("%.0f", baseNS)
			if delta > maxRegress {
				verdict = fmt.Sprintf("FAIL (> +%.0f%%)", maxRegress)
				failures = append(failures,
					fmt.Sprintf("%s: %.0f ns/op is %+.1f%% over the %.0f ns/op baseline (limit +%.0f%%)",
						res.name, res.nsOp, delta, baseNS, maxRegress))
			}
		} else {
			verdict = "no baseline (not gated)"
		}
		allocsCol := "?"
		if res.allocs >= 0 {
			allocsCol = strconv.FormatInt(res.allocs, 10)
			if res.allocs > 0 {
				verdict = "FAIL (allocs > 0)"
				failures = append(failures,
					fmt.Sprintf("%s: %d allocs/op — the steady-state round must stay allocation-free", res.name, res.allocs))
			}
		}
		fmt.Fprintf(&b, "| %s | %.0f | %s | %s | %s | %s |\n",
			res.name, res.nsOp, baseCol, deltaCol, allocsCol, verdict)
	}
	b.WriteString("\n")
	return b.String(), failures
}
