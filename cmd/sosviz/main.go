// Command sosviz simulates a DSL topology and renders the realized system
// as Graphviz DOT (default) with per-component colors and port managers
// drawn as boxes, suitable for `dot -Tsvg` or `neato -Tpng`.
//
// Usage:
//
//	sosviz [-nodes N] [-rounds N] [-seed N] [-o out.dot] file.sos
package main

import (
	"flag"
	"fmt"
	"os"

	"sosf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sosviz:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 0, "population size (default: the file's nodes option)")
	rounds := flag.Int("rounds", 150, "rounds to simulate before rendering")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: sosviz [flags] file.sos")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	sys, err := sosf.New(string(src), sosf.Options{
		Nodes:  *nodes,
		Rounds: *rounds,
		Seed:   *seed,
	})
	if err != nil {
		return err
	}
	if _, err := sys.Step(*rounds); err != nil {
		return err
	}
	dot := sys.DOT()
	if *out == "" {
		fmt.Print(dot)
		return nil
	}
	return os.WriteFile(*out, []byte(dot), 0o644)
}
