package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRenderToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ringpair.dot")
	os.Args = []string{"sosviz", "-rounds", "60", "-o", out, "../../testdata/ringpair.sos"}
	flag.CommandLine = flag.NewFlagSet("sosviz", flag.ContinueOnError)
	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	dot := string(data)
	if !strings.Contains(dot, "graph \"ringpair\"") {
		t.Fatalf("dot output:\n%.200s", dot)
	}
	if !strings.Contains(dot, "shape=box") {
		t.Fatal("port managers should render as boxes")
	}
}

func TestMissingFile(t *testing.T) {
	os.Args = []string{"sosviz", "/does/not/exist.sos"}
	flag.CommandLine = flag.NewFlagSet("sosviz", flag.ContinueOnError)
	if err := run(); err == nil {
		t.Fatal("missing file should fail")
	}
}
