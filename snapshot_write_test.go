package sosf

// Error-path coverage for the atomic checkpoint writer: a failed
// WriteSnapshot must never litter the checkpoint directory with partial
// .tmp-* files, and must never destroy the previous good checkpoint —
// that file is exactly what a crashed run recovers from.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinySystem builds a small converged-ish system for checkpoint tests.
func tinySystem(t *testing.T) *System {
	t.Helper()
	src, err := os.ReadFile("testdata/ringpair.sos")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(string(src), WithNodes(60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(3); err != nil {
		t.Fatal(err)
	}
	return sys
}

// assertNoTempLitter fails if any .tmp-* file from the atomic writer
// survived in dir.
func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %q left behind after a failed WriteSnapshot", e.Name())
		}
	}
}

func TestWriteSnapshotRenameFailureCleansTemp(t *testing.T) {
	sys := tinySystem(t)
	dir := t.TempDir()
	// Make the rename itself fail: the target path is an existing
	// non-empty directory, which os.Rename refuses to replace.
	target := filepath.Join(dir, "ck.sosnap")
	if err := os.MkdirAll(filepath.Join(target, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteSnapshot(target); err == nil {
		t.Fatal("WriteSnapshot over a non-empty directory succeeded, want rename error")
	}
	assertNoTempLitter(t, dir)
	// The obstruction is untouched.
	if _, err := os.Stat(filepath.Join(target, "occupied")); err != nil {
		t.Fatalf("rename failure damaged the existing target: %v", err)
	}
}

func TestWriteSnapshotReadOnlyDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permission bits are not enforced")
	}
	sys := tinySystem(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "ck.sosnap")
	if err := sys.WriteSnapshot(good); err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := sys.Step(2); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteSnapshot(good); err == nil {
		t.Fatal("WriteSnapshot into a read-only directory succeeded, want error")
	}
	if err := os.Chmod(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	assertNoTempLitter(t, dir)
	// The previous good checkpoint survived byte for byte.
	now, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if string(now) != string(prev) {
		t.Fatal("failed WriteSnapshot corrupted the previous good checkpoint")
	}
}

func TestWriteSnapshotMissingDir(t *testing.T) {
	sys := tinySystem(t)
	missing := filepath.Join(t.TempDir(), "no", "such", "dir", "ck.sosnap")
	if err := sys.WriteSnapshot(missing); err == nil {
		t.Fatal("WriteSnapshot into a missing directory succeeded, want error")
	}
}

// TestSnapshotEveryWriteFailureStopsRun pins the WithSnapshotEvery error
// contract on a real failing path: the periodic checkpoint observer stops
// the run and the write error surfaces from Step.
func TestSnapshotEveryWriteFailureStopsRun(t *testing.T) {
	src, err := os.ReadFile("testdata/ringpair.sos")
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "ck-%d.sosnap")
	sys, err := New(string(src), WithNodes(60), WithRunToEnd(),
		WithSnapshotEvery(2, bad))
	if err != nil {
		t.Fatal(err)
	}
	executed, err := sys.Step(10)
	if err == nil {
		t.Fatal("Step with a failing periodic checkpoint succeeded, want error")
	}
	if executed != 2 {
		t.Fatalf("run stopped after %d rounds, want 2 (the first failing checkpoint)", executed)
	}
}

// TestStepContextCancelStopsAtRoundBoundary pins the cooperative
// cancellation contract: a cancelled context stops the run between rounds,
// returns ctx.Err(), and leaves the system snapshot-safe — stepping it
// again replays the uninterrupted run.
func TestStepContextCancelStopsAtRoundBoundary(t *testing.T) {
	src, err := os.ReadFile("testdata/ringpair.sos")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *System {
		sys, err := New(string(src), WithNodes(60), WithRunToEnd())
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	interrupted := build()
	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	interrupted.Subscribe(func(RoundEvent) {
		if rounds++; rounds == 5 {
			cancel()
		}
	})
	executed, err := interrupted.StepContext(ctx, 20)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StepContext error = %v, want context.Canceled", err)
	}
	if executed != 5 || interrupted.Round() != 5 {
		t.Fatalf("cancelled run executed %d rounds (at round %d), want stop right after round 5",
			executed, interrupted.Round())
	}
	// The interrupted system continues exactly like an uninterrupted run.
	if _, err := interrupted.Step(15); err != nil {
		t.Fatal(err)
	}
	uninterrupted := build()
	if _, err := uninterrupted.Step(20); err != nil {
		t.Fatal(err)
	}
	got, want := interrupted.Report(), uninterrupted.Report()
	if got.String() != want.String() {
		t.Fatalf("interrupted+resumed run diverged from uninterrupted run:\n got %v\nwant %v", got, want)
	}
}
