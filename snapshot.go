package sosf

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sosf/internal/core"
	"sosf/internal/sim"
	"sosf/internal/snap"
)

// Snapshot writes a checkpoint of the complete run state: the engine
// (population, round counter, RNG position, partition/loss state, bandwidth
// history), every protocol layer's per-node state, the allocator and the
// *active* topology, the convergence tracker, and any in-flight scenario
// window state. Restoring it and stepping M more rounds replays rounds
// N+1..N+M of the uninterrupted run byte for byte — events, figures, and
// reports — at any worker count.
//
// Call Snapshot between Steps only (the engine cannot checkpoint
// mid-round). The format is versioned; see the README's "Checkpoint &
// resume" section for the compatibility policy.
func (s *System) Snapshot(w io.Writer) error {
	if err := s.sys.Snapshot(w); err != nil {
		return err
	}
	// The sosf trailer rides behind the core snapshot in the same stream:
	// convergence-tracker state (so resumed reports carry the same
	// converged_at rounds) and the scenario timeline's window bookkeeping.
	sw := snap.NewWriter(w)
	sw.String("sosf-trailer")
	sw.Len(len(s.tracker.FirstDone))
	for _, sub := range core.Subs() {
		if round, ok := s.tracker.FirstDone[sub]; ok {
			sw.Int(int(sub))
			sw.Int(round)
		}
	}
	sw.Len(len(s.tracker.History))
	for _, m := range s.tracker.History {
		sw.Int(m.Round)
		for _, sub := range core.Subs() {
			sw.F64(m.Fraction[sub])
		}
	}
	sw.Bool(s.bound != nil)
	if s.bound != nil {
		s.bound.SnapshotState(sw)
	}
	return sw.Err()
}

// WriteSnapshot writes Snapshot to a file, atomically and durably: the
// stream lands in a temp file next to path, is fsynced, and is renamed over
// path only once fully on disk. Rolling checkpoints (WithSnapshotEvery
// without a "%d" verb) depend on this — a crash or full disk mid-write must
// not destroy the previous good checkpoint, which is exactly the file a
// crashed run recovers from. Every failure path removes the temp file, so a
// full disk or read-only directory never litters the checkpoint directory
// with partial .tmp-* files.
func (s *System) WriteSnapshot(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if err := s.Snapshot(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("sosf: snapshot to %s: %w", path, err)
	}
	// Sync before the rename: the rename must never publish a checkpoint
	// whose bytes a power cut could still lose.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("sosf: snapshot to %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// Restore rebuilds the system's run state from a Snapshot stream. The
// system must have been built from the same DSL source and behavior
// configuration (protocol knobs are verified; topology follows the
// snapshot, which matters after mid-run reconfigurations). Typically used
// through WithRestoreFrom rather than called directly.
func (s *System) Restore(r io.Reader) error {
	if err := s.sys.Restore(r); err != nil {
		return err
	}
	// Heals performed before the checkpoint were already reported by the
	// original run's event stream; only post-resume deltas are emitted.
	s.healsSeen = s.sys.Allocator().HealsTotal()
	sr := snap.NewReader(r)
	if tag := sr.String(); sr.Err() == nil && tag != "sosf-trailer" {
		return fmt.Errorf("sosf: snapshot trailer is %q, want \"sosf-trailer\"", tag)
	}
	nDone := sr.Len()
	if err := sr.Err(); err != nil {
		return err
	}
	s.tracker.FirstDone = make(map[core.Sub]int, nDone)
	for i := 0; i < nDone; i++ {
		sub := core.Sub(sr.Int())
		round := sr.Int()
		s.tracker.FirstDone[sub] = round
	}
	nHist := sr.Len()
	if err := sr.Err(); err != nil {
		return err
	}
	s.tracker.History = make([]core.Metrics, 0, nHist)
	for i := 0; i < nHist; i++ {
		m := core.Metrics{Round: sr.Int(), Fraction: make(map[core.Sub]float64, 5)}
		for _, sub := range core.Subs() {
			m.Fraction[sub] = sr.F64()
		}
		s.tracker.History = append(s.tracker.History, m)
	}
	hasBound := sr.Bool()
	if err := sr.Err(); err != nil {
		return err
	}
	if hasBound {
		if s.bound == nil {
			return fmt.Errorf("sosf: snapshot carries scenario state but this source has no scenario timeline")
		}
		if err := s.bound.RestoreState(sr); err != nil {
			return err
		}
	}
	return sr.Err()
}

// Round returns the number of completed simulation rounds — after a
// restore, the round the snapshot was taken at.
func (s *System) Round() int { return s.sys.Engine().Round() }

// snapshotPath expands the "%d" verb (if any) in a checkpoint path template
// with the round number, so periodic snapshots can keep every checkpoint
// ("ck-%d.snap") or roll a single one ("latest.snap").
func snapshotPath(template string, round int) string {
	if strings.Contains(template, "%d") {
		return fmt.Sprintf(template, round)
	}
	return template
}

// snapshotObserver implements WithSnapshotEvery: after every `every`-th
// round it writes a checkpoint. It runs after all other observers (scenario
// actions, churn, tracker, event emitters), so the checkpoint captures
// exactly the state the next round starts from. A write failure stops the
// run and surfaces from Step.
func (s *System) snapshotObserver(every int, path string) sim.Observer {
	return sim.ObserverFunc(func(e *sim.Engine) bool {
		if e.Round()%every != 0 {
			return false
		}
		if err := s.WriteSnapshot(snapshotPath(path, e.Round())); err != nil {
			s.snapErr = err
			return true
		}
		return false
	})
}
