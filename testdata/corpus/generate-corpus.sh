#!/bin/sh
# Regenerates the committed fuzzing regression corpus. Run from the repo
# root:
#
#     ./testdata/corpus/generate-corpus.sh
#
# Every entry derives from a fixed campaign seed, so regenerating is a
# no-op diff unless runtime behavior actually changed. If a diff shows up,
# either the change is intentional (commit the regenerated corpus with it)
# or determinism broke (fix that instead).
#
# `sos fuzz` exits non-zero when it finds violations — which is exactly
# what these seeded campaigns are for — so each invocation is expected to
# "fail".
set -u
cd "$(dirname "$0")/../.."
dir=testdata/corpus

# Population-floor findings: a deliberately strict floor turns ordinary
# kill blasts into violations, exercising the full find-and-shrink loop.
go run ./cmd/sos fuzz -seed 3 -runs 3 -pop-floor 0.95 -corpus "$dir" && {
    echo "generate-corpus: expected the pop-floor campaign to find violations" >&2
    exit 1
}

# The known index-hole gap: without the generator's repair events, a
# single unreplaced death pins Elementary Topology below 1.0 on
# index-structured shapes (see internal/campaign and ROADMAP.md). The
# corpus pins today's stuck-state behavior; when the runtime learns to
# re-densify indices without a reconfiguration, these entries (and the
# NoRepair knob's test) are the first things that should change.
go run ./cmd/sos fuzz -seed 1 -runs 6 -no-repair -corpus "$dir" && {
    echo "generate-corpus: expected the no-repair campaign to find violations" >&2
    exit 1
}

echo "corpus regenerated under $dir"
