#!/bin/sh
# Regenerates the committed fuzzing regression corpus. Run from the repo
# root:
#
#     ./testdata/corpus/generate-corpus.sh
#
# Every entry derives from a fixed campaign seed, so regenerating is a
# no-op diff unless runtime behavior actually changed. If a diff shows up,
# either the change is intentional (commit the regenerated corpus with it)
# or determinism broke (fix that instead).
#
# The corpus has been regenerated exactly once, when the runtime gained
# self-healing index re-densification: round events grew a "heals" field
# and the bare-fault recovery trajectories changed, so every committed
# .out stream shifted in that one sweep. The reconverge entry also moved
# from `-no-repair` alone to `-no-repair -no-heal` — with healing on,
# bare-fault timelines reconverge and that campaign is clean (the third
# invocation below pins exactly that).
#
# `sos fuzz` exits non-zero when it finds violations — which is what the
# first two seeded campaigns are for — so those invocations are expected
# to "fail".
set -u
cd "$(dirname "$0")/../.."
dir=testdata/corpus

# Population-floor findings: a deliberately strict floor turns ordinary
# kill blasts into violations, exercising the full find-and-shrink loop.
go run ./cmd/sos fuzz -seed 3 -runs 3 -pop-floor 0.95 -corpus "$dir" && {
    echo "generate-corpus: expected the pop-floor campaign to find violations" >&2
    exit 1
}

# The legacy index-hole gap, preserved behind the -no-heal escape hatch:
# with self-healing disabled and no repair events generated, a single
# unreplaced death pins Elementary Topology below 1.0 on index-structured
# shapes (see internal/campaign and README.md). The reproducer carries
# `option heal 0`, so replays reproduce the stuck state without flags.
go run ./cmd/sos fuzz -seed 1 -runs 6 -no-repair -no-heal -corpus "$dir" && {
    echo "generate-corpus: expected the no-heal campaign to find violations" >&2
    exit 1
}

# The self-healing contract: the same campaign with healing on (the
# default) must be clean — bare kill/churn timelines reconverge with no
# reconfiguration. A violation here means the repair layer regressed.
go run ./cmd/sos fuzz -seed 1 -runs 6 -no-repair || {
    echo "generate-corpus: the no-repair campaign must be clean with healing on" >&2
    exit 1
}

echo "corpus regenerated under $dir"
