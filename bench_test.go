package sosf

// One benchmark per reproduced table/figure, driving the same
// internal/eval code paths as cmd/sosbench, at a reduced-but-meaningful
// scale (one repetition per point; `sosbench -full` runs the paper's exact
// 25 600-node, 25-run setup).
//
// Per-op work is a full experiment, so op counts stay at b.N=1 in
// practice; the value of these benchmarks is (a) a stable regression
// signal on end-to-end runtime and allocations and (b) a single command —
// `go test -bench=. -benchmem` — that regenerates every figure's pipeline.

import (
	"fmt"
	"testing"

	"sosf/internal/core"
	"sosf/internal/eval"
)

// benchOpts returns harness options sized for benchmarking. Parallelism
// is left at its default (GOMAXPROCS), matching how sosbench runs.
func benchOpts(seed int64) eval.Options {
	return eval.Options{Runs: 1, Seed: seed, MaxRounds: 120}
}

// cmpOpts returns options for the sequential-vs-parallel benchmark pairs:
// enough repetitions per point that the grid has real width to fan out.
func cmpOpts(seed int64, parallelism int) eval.Options {
	return eval.Options{Runs: 4, Seed: seed, MaxRounds: 120, Parallelism: parallelism}
}

// BenchmarkFig2Sequential / BenchmarkFig2Parallel regenerate Figure 2's
// sweep with the legacy sequential path and with a GOMAXPROCS-wide worker
// pool. The outputs are byte-identical (see TestParallelSweepDeterministic);
// on an N-core machine the parallel variant's wall clock is the speedup
// headline of eval.Options.Parallelism.
func BenchmarkFig2Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig2(cmpOpts(int64(i)+1, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig2(cmpOpts(int64(i)+1, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Sequential / BenchmarkFig4Parallel are the uniform-cell
// pair: Figure 4 runs identical-cost repetitions of one configuration, so
// its parallel speedup approaches min(Runs, cores) with no sweep skew.
func BenchmarkFig4Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig4(cmpOpts(int64(i)+1, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig4(cmpOpts(int64(i)+1, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2ConvergenceVsNodes regenerates Figure 2 (rounds to converge
// vs. population size, 20 components, log sweep).
func BenchmarkFig2ConvergenceVsNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig2(benchOpts(int64(i) + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 5 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFig3ConvergenceVsComponents regenerates Figure 3 (rounds to
// converge vs. number of components at fixed population).
func BenchmarkFig3ConvergenceVsComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig3(benchOpts(int64(i) + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 5 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFig4Bandwidth regenerates Figure 4 (baseline vs. runtime
// overhead bandwidth per round).
func BenchmarkFig4Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig4(benchOpts(int64(i) + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 2 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkGalleryTopologies regenerates experiment (i): the composite
// topology gallery table.
func BenchmarkGalleryTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Gallery(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCurvesRingOfRings regenerates experiment (ii): per-round
// accuracy of every sub-procedure in a ring of rings.
func BenchmarkCurvesRingOfRings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Curves(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconfiguration regenerates experiment (iii): live topology
// evolution (3 rings -> 4 rings).
func BenchmarkReconfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Reconfig(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn regenerates the churn extension (steady-state accuracy
// across churn rates).
func BenchmarkChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Churn(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatastrophe regenerates the catastrophic-failure extension
// (recovery after mass failures).
func BenchmarkCatastrophe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Catastrophe(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUO2 regenerates the UO2 ablation (port connection with
// and without the distant-component overlay).
func BenchmarkAblationUO2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationUO2(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRandomness regenerates the randomness ablation
// (full protocol vs. pure greedy T-Man).
func BenchmarkAblationRandomness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationRandomness(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRound measures one steady-state simulated round of the full
// runtime stack (peer sampling, UO1, UO2, core overlay, port selection,
// port connection) across a population sweep. It is the population-scaling
// headline of the allocation-free hot path: run with -benchmem and compare
// allocs/op across PRs (BENCH_PR3.json and BENCH_PR4.json record the
// trajectory).
//
// The system is warmed past convergence before the timer starts, so the
// measured rounds are steady-state gossip — the regime a long-lived
// deployment spends its life in.
func BenchmarkRound(b *testing.B) {
	for _, n := range []int{1000, 10_000, 100_000, 1_000_000} {
		name := fmt.Sprintf("n=%dk", n/1000)
		if n >= 1_000_000 {
			name = fmt.Sprintf("n=%dM", n/1_000_000)
		}
		n := n
		b.Run(name, func(b *testing.B) {
			if n >= 1_000_000 && testing.Short() {
				b.Skip("million-node population skipped in -short mode")
			}
			benchRound(b, n, 1)
		})
	}
}

// BenchmarkRoundWorkers is BenchmarkRound across intra-round worker counts:
// the round results are byte-identical at every width (the per-node RNG
// streams guarantee it), so the only thing that moves is ns/op — and only
// as far as the machine has cores.
func BenchmarkRoundWorkers(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%dk/workers=%d", n/1000, w), func(b *testing.B) {
				benchRound(b, n, w)
			})
		}
	}
}

func benchRound(b *testing.B, nodes, workers int) {
	b.Helper()
	sys, err := core.NewSystem(core.Config{
		Topology: eval.MustTopology(eval.RingOfRingsDSL(20)),
		Nodes:    nodes,
		Seed:     1,
		Workers:  workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Run(10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationRound measures the cost of one simulated round of the
// full stack at 3 200 nodes / 20 components — the engine's inner loop.
func BenchmarkSimulationRound(b *testing.B) {
	sys, err := core.NewSystem(core.Config{
		Topology: eval.MustTopology(eval.RingOfRingsDSL(20)),
		Nodes:    3200,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineComparison regenerates the composed-vs-monolithic
// baseline table (the comparator of the paper's Section 2.2).
func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Baseline(benchOpts(int64(i) + 1)); err != nil {
			b.Fatal(err)
		}
	}
}
