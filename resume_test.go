package sosf

// The resume-equivalence contract: `run N rounds → snapshot → restore → run
// M rounds` must produce an event stream byte-identical to the
// uninterrupted N+M-round run, for any worker count. These tests enforce it
// against the frozen golden fixture — the same fixture the plain
// determinism tests compare against — so a checkpoint/restore cycle is
// provably invisible to a run's output. CI enforces the same property
// end-to-end through the `sos snapshot` / `sos resume` subcommands.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

const resumeSplit = 75 // snapshot round: mid-run, after the reconfiguration at 45

// playdemoSystem builds the playdemo scenario system with the golden run's
// options plus any extras (worker counts, restore sources).
func playdemoSystem(t *testing.T, extra ...Option) *System {
	t.Helper()
	src, err := os.ReadFile("testdata/playdemo.sos")
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]Option{
		WithNodes(0),
		WithRounds(DefaultRounds),
		WithSeed(DefaultSeed),
		WithRunToEnd(),
	}, extra...)
	sys, err := New(string(src), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// resumeStream replays the golden scenario split at resumeSplit with the
// given worker counts for the two halves, returning the concatenated event
// stream and both halves' final reports.
func resumeStream(t *testing.T, snapWorkers, resumeWorkers int) (stream []byte, snapRep, resumeRep *Report) {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "ck.sosnap")

	first := playdemoSystem(t, WithWorkers(snapWorkers))
	var buf bytes.Buffer
	first.Subscribe(JSONLSink(&buf))
	if _, err := first.Step(resumeSplit); err != nil {
		t.Fatal(err)
	}
	if err := first.WriteSnapshot(ckpt); err != nil {
		t.Fatal(err)
	}

	second := playdemoSystem(t, WithWorkers(resumeWorkers), WithRestoreFrom(ckpt))
	if got := second.Round(); got != resumeSplit {
		t.Fatalf("restored round = %d, want %d", got, resumeSplit)
	}
	second.Subscribe(JSONLSink(&buf))
	if _, err := second.Step(DefaultRounds - resumeSplit); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), first.Report(), second.Report()
}

func TestResumeEquivalenceGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden/playdemo.events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []struct{ snap, resume int }{
		{1, 1},
		{4, 4},
		{1, 4}, // a snapshot is worker-count-free: mix the halves too
	} {
		got, _, _ := resumeStream(t, workers.snap, workers.resume)
		if !bytes.Equal(got, want) {
			gotLines := bytes.Split(got, []byte("\n"))
			wantLines := bytes.Split(want, []byte("\n"))
			for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
				if !bytes.Equal(gotLines[i], wantLines[i]) {
					t.Fatalf("workers %d→%d: resumed stream diverges from the golden fixture at line %d:\n got: %s\nwant: %s",
						workers.snap, workers.resume, i+1, gotLines[i], wantLines[i])
				}
			}
			t.Fatalf("workers %d→%d: resumed stream differs in length (got %d, want %d bytes)",
				workers.snap, workers.resume, len(got), len(want))
		}
	}
}

// TestResumeReportEquivalence: the resumed run's final report — including
// convergence rounds (tracker state) and whole-run bandwidth averages
// (meter history) — must match the uninterrupted run's byte for byte.
func TestResumeReportEquivalence(t *testing.T) {
	uninterrupted := playdemoSystem(t)
	if _, err := uninterrupted.Step(DefaultRounds); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(uninterrupted.Report())
	if err != nil {
		t.Fatal(err)
	}

	_, _, resumedRep := resumeStream(t, 1, 1)
	got, err := json.Marshal(resumedRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs:\n got: %s\nwant: %s", got, want)
	}
}

// TestSnapshotEvery: periodic checkpoints land where configured, and the
// newest one resumes to the same stream tail as the uninterrupted run.
func TestSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	tmpl := filepath.Join(dir, "ck-%d.sosnap")

	sys := playdemoSystem(t, WithSnapshotEvery(25, tmpl))
	var full bytes.Buffer
	sys.Subscribe(JSONLSink(&full))
	if _, err := sys.Step(DefaultRounds); err != nil {
		t.Fatal(err)
	}
	for _, round := range []int{25, 50, 75, 100, 125, 150} {
		if _, err := os.Stat(filepath.Join(dir, "ck-"+strconv.Itoa(round)+".sosnap")); err != nil {
			t.Fatalf("checkpoint for round %d missing: %v", round, err)
		}
	}

	resumed := playdemoSystem(t, WithRestoreFrom(filepath.Join(dir, "ck-100.sosnap")))
	var tail bytes.Buffer
	resumed.Subscribe(JSONLSink(&tail))
	if _, err := resumed.Step(DefaultRounds - 100); err != nil {
		t.Fatal(err)
	}
	fullLines := bytes.Split(full.Bytes(), []byte("\n"))
	wantTail := bytes.Join(fullLines[100:], []byte("\n"))
	if !bytes.Equal(tail.Bytes(), wantTail) {
		t.Fatal("resume from a periodic checkpoint diverged from the uninterrupted tail")
	}
}

// TestScenarioSnapshotDirective: a `snapshot at R "path"` action in the DSL
// writes a checkpoint that resumes byte-identically.
func TestScenarioSnapshotDirective(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "dsl.sosnap")
	src := `topology snapdemo {
	    nodes 120
	    component a ring { port p }
	    component b ring { port q }
	    link a.p b.q
	    scenario {
	        during 10 20 loss 0.1
	        at 15 snapshot "` + ckpt + `"
	        at 30 kill 0.2
	    }
	}`

	sys, err := New(src, WithSeed(5), WithRounds(60), WithRunToEnd())
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	sys.Subscribe(JSONLSink(&full))
	if _, err := sys.Step(60); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("scheduled snapshot missing: %v", err)
	}

	// The snapshot fired at round 15, inside the loss window: the restored
	// run must restore the pre-window rate at round 20 (Bound state).
	resumed, err := New(src, WithSeed(5), WithRounds(60), WithRunToEnd(), WithRestoreFrom(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	resumed.Subscribe(JSONLSink(&tail))
	if _, err := resumed.Step(60 - 15); err != nil {
		t.Fatal(err)
	}
	fullLines := bytes.Split(full.Bytes(), []byte("\n"))
	wantTail := bytes.Join(fullLines[15:], []byte("\n"))
	if !bytes.Equal(tail.Bytes(), wantTail) {
		t.Fatal("resume from a DSL-scheduled snapshot diverged from the uninterrupted tail")
	}
}
