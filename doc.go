// Package sosf is an assembly-based programming framework for complex
// distributed topologies, reproducing the system sketched in Simon Bouget's
// "Position paper: Toward an holistic approach of Systems of Systems"
// (Middleware 2016, Doctoral Symposium).
//
// The framework lets a developer describe a large distributed system as an
// assembly of elementary self-organizing shapes — rings, stars, cliques,
// trees, grids, tori, hypercubes — connected through named ports:
//
//	topology ring_of_rings {
//	    let k = 8
//	    repeat i 0 k-1 {
//	        component seg[i] ring {
//	            weight 1
//	            port head
//	            port tail
//	        }
//	    }
//	    repeat i 0 k-1 {
//	        link seg[i].head seg[(i+1)%k].tail
//	    }
//	}
//
// A gossip runtime maps this description onto a concrete node population
// and keeps it converged through failures, churn, and live reconfiguration.
// The stack (bottom to top): a peer-sampling service, a same-component
// overlay (UO1), a distant-component overlay (UO2), one Vicinity-style core
// protocol per component shape, a gossip port election, and a
// port-connection procedure that realizes inter-component links.
//
// # Running a system
//
// The simplest entry point runs a DSL source inside the deterministic
// simulation engine and reports convergence. Configuration uses functional
// options; every value is representable, including seed 0 and rounds 0:
//
//	report, err := sosf.Run(src, sosf.WithNodes(800), sosf.WithSeed(7))
//
// For live interaction (mid-run reconfiguration, failure injection), build
// a System and drive it round by round:
//
//	sys, _ := sosf.New(src, sosf.WithNodes(800))
//	sys.Step(50)
//	sys.ReconfigureSource(newSrc)
//	sys.Step(50)
//
// Large populations can shard each simulation round across cores with
// WithWorkers. All in-round randomness flows from counter-based per-node
// streams, so the run — report, figures, and the streamed round events —
// is byte-identical for every worker count:
//
//	report, err := sosf.Run(src, sosf.WithNodes(100_000), sosf.WithWorkers(0))
//
// # Scenario scripting
//
// Whole experiments — churn bursts, loss windows, partitions, targeted
// failures, live topology changes — are declarative Scenario values
// scheduled onto the simulation's per-round hook:
//
//	script := sosf.Scenario{
//	    sosf.During(10, 20, sosf.Loss(0.3)),
//	    sosf.At(30, sosf.Kill(0.5)),
//	    sosf.At(45, sosf.Reconfigure(newSrc)),
//	}
//	sys, _ := sosf.New(src, sosf.WithScenario(script))
//
// The same timeline can travel inside the DSL source as a
// `scenario { ... }` block, so a .sos file carries its own fault script
// (see `sos play`).
//
// # Streaming round events
//
// Subscribe taps the per-round event stream (accuracy, population,
// bandwidth, fired scenario actions); JSONLSink and CSVSink adapt it to
// line-oriented formats:
//
//	sys.Subscribe(sosf.JSONLSink(os.Stdout))
//	sys.Step(150)
//
// # Checkpoint and resume
//
// Long-horizon runs checkpoint and resume deterministically: a snapshot
// captures the complete run state (population, round counter, the serial
// RNG's position, every protocol layer's per-node state, bandwidth history,
// convergence tracking, and in-flight scenario windows), and a restored run
// replays the uninterrupted one byte for byte — events, figures, and
// reports — at any worker count:
//
//	sys.Step(1_000_000)
//	sys.WriteSnapshot("warm.sosnap")               // explicit checkpoint
//
//	sys2, _ := sosf.New(src, sosf.WithRestoreFrom("warm.sosnap"))
//	sys2.Step(1_000_000)                           // rounds 1M+1 .. 2M
//
// WithSnapshotEvery(n, path) checkpoints periodically from inside the run;
// a `snapshot at <round> "path"` directive inside a DSL scenario block does
// the same from the timeline. One warm state can seed many continuations
// (different scenarios, different worker counts), which makes long runs
// branchable and regressions bisectable by round.
//
// Protocol implementations participate through the sim.Snapshotter hook:
// a protocol serializes its complete inter-round per-slot state in
// SnapshotState and rebuilds it — without drawing randomness — in
// RestoreState. Every protocol in the engine must implement the hook for a
// snapshot to be taken; partial checkpoints are refused rather than
// silently written. The counter-based per-node RNG streams are what make
// the contract cheap: in-round randomness is keyed by
// (seed, node, round, protocol, phase) and needs no serialization at all,
// while the engine's serial source is captured as a (seed, draw count)
// pair and fast-forwarded on restore.
//
// Everything underneath lives in internal packages: internal/core (the
// runtime), internal/scenario (the timeline executor), internal/vicinity
// and internal/peersampling (the overlay substrate), internal/shapes (the
// component library), internal/dsl (the language), internal/sim (the
// cycle-driven engine), and internal/eval (one driver per figure of the
// paper's evaluation).
package sosf
