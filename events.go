package sosf

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"sosf/internal/core"
	"sosf/internal/sim"
)

// RoundEvent is one per-round sample of a running system, emitted to every
// subscriber after each simulated round. For a fixed seed, topology, and
// scenario, the event stream is byte-for-byte reproducible.
//
// The JSON field names are stable and part of the public contract (they are
// what `sos play -events jsonl` streams).
type RoundEvent struct {
	// Round is the 1-based index of the completed round.
	Round int `json:"round"`
	// Nodes is the alive population after the round.
	Nodes int `json:"nodes"`
	// Converged reports whether every sub-procedure is at accuracy 1.0.
	Converged bool `json:"converged"`
	// Accuracy maps each sub-procedure (by its paper series label) to its
	// ground-truth accuracy in [0, 1].
	Accuracy map[string]float64 `json:"accuracy"`
	// BaselineBytes and OverheadBytes are this round's bytes per node for
	// the shape protocols and the runtime layers, respectively.
	BaselineBytes float64 `json:"baseline_bytes"`
	// OverheadBytes is documented with BaselineBytes.
	OverheadBytes float64 `json:"overhead_bytes"`
	// Heals counts the self-healing re-densify repairs the allocator
	// performed this round (absent on rounds without a heal, which is every
	// round of a fault-free run — steady-state streams are byte-identical
	// to pre-healing ones).
	Heals int `json:"heals,omitempty"`
	// Actions lists the scenario actions that fired this round, in
	// timeline order (absent on quiet rounds).
	Actions []string `json:"actions,omitempty"`
}

// Subscribe registers fn on the per-round event stream. Subscribe before
// the first Step: events are only emitted for rounds executed after the
// subscription. Subscribers run synchronously on the simulation goroutine,
// in subscription order.
func (s *System) Subscribe(fn func(RoundEvent)) {
	if fn != nil {
		s.events = append(s.events, fn)
	}
}

// emit is the engine observer feeding subscribers. It is registered last
// (after the scenario and the convergence tracker), so events describe the
// post-action state of the round.
func (s *System) emit(e *sim.Engine) bool {
	if len(s.events) == 0 {
		return false
	}
	// The tracker measured this round already; reuse its snapshot rather
	// than paying for a second oracle pass.
	var m core.Metrics
	if n := len(s.tracker.History); n > 0 && s.tracker.History[n-1].Round == e.Round() {
		m = s.tracker.History[n-1]
	} else {
		m = s.sys.Oracle().Measure()
	}
	ev := RoundEvent{
		Round:     e.Round(),
		Nodes:     e.AliveCount(),
		Converged: m.AllConverged(),
		Accuracy:  make(map[string]float64, 5),
	}
	for _, sub := range core.Subs() {
		ev.Accuracy[sub.String()] = m.Fraction[sub]
	}
	if r := e.Round() - 1; r >= 0 && r < e.Meter().Rounds() && ev.Nodes > 0 {
		base, over := s.sys.BandwidthByClass(r)
		ev.BaselineBytes = float64(base) / float64(ev.Nodes)
		ev.OverheadBytes = float64(over) / float64(ev.Nodes)
	}
	if total := s.sys.Allocator().HealsTotal(); total > s.healsSeen {
		ev.Heals = int(total - s.healsSeen)
		s.healsSeen = total
	}
	if s.bound != nil && len(s.bound.Fired()) > 0 {
		ev.Actions = append([]string(nil), s.bound.Fired()...)
	}
	for _, fn := range s.events {
		fn(ev)
	}
	return false
}

// JSONLSink returns an event subscriber that streams one JSON object per
// line to w — the format behind `sos play -events jsonl`. Field names are
// RoundEvent's JSON tags; map keys are emitted in sorted order, so the
// stream is deterministic. Write errors are silently dropped (the
// simulation must not fail because a consumer went away).
func JSONLSink(w io.Writer) func(RoundEvent) {
	enc := json.NewEncoder(w)
	return func(ev RoundEvent) {
		_ = enc.Encode(ev)
	}
}

// CSVSink returns an event subscriber that streams CSV to w: a header row
// first, then one row per round. Accuracy columns appear in the paper's
// presentation order; fired scenario actions are joined with "; " in the
// last column. Write errors are silently dropped.
func CSVSink(w io.Writer) func(RoundEvent) {
	cw := csv.NewWriter(w)
	wroteHeader := false
	return func(ev RoundEvent) {
		if !wroteHeader {
			header := []string{"round", "nodes", "converged", "baseline_bytes", "overhead_bytes"}
			for _, sub := range core.Subs() {
				header = append(header, sub.String())
			}
			header = append(header, "heals", "actions")
			_ = cw.Write(header)
			wroteHeader = true
		}
		row := []string{
			strconv.Itoa(ev.Round),
			strconv.Itoa(ev.Nodes),
			strconv.FormatBool(ev.Converged),
			strconv.FormatFloat(ev.BaselineBytes, 'g', -1, 64),
			strconv.FormatFloat(ev.OverheadBytes, 'g', -1, 64),
		}
		for _, sub := range core.Subs() {
			row = append(row, strconv.FormatFloat(ev.Accuracy[sub.String()], 'g', -1, 64))
		}
		row = append(row, strconv.Itoa(ev.Heals))
		row = append(row, strings.Join(ev.Actions, "; "))
		_ = cw.Write(row)
		cw.Flush()
	}
}
