package sosf

// The determinism contract: the RNG draw sequence of a (seed,
// configuration) pair is API. Performance refactors of the hot path must
// keep every figure, table, and event stream byte-identical — this test
// enforces that by replaying the playdemo scenario (loss window, 30%
// blast, live reconfiguration, component kill) and byte-comparing the
// JSONL event stream against the committed fixture.
//
// The fixture has been regenerated exactly twice. Once when the engine
// moved from a single shared RNG consumed in shuffled step order to
// counter-based per-node streams keyed by (seed, node, round, protocol,
// phase) — the discipline that makes one round shard across workers with
// byte-identical results for every worker count (see workers_test.go,
// which replays this same scenario at workers 1/2/4/8 against one
// another). And once when the runtime gained self-healing index
// re-densification: the round-30 blast now triggers repairs (the events
// gained a "heals" field and rounds 30-45 — blast to reconfiguration —
// recover along a different, healed trajectory; every round outside that
// window was byte-identical across the change, confirming the RNG draw
// sequence itself was untouched). Outside those two deliberate breaks the
// fixture is frozen: it is the cross-worker-count determinism contract.
//
// If this test fails, a change reordered or added random draws. That is
// a breaking change to the determinism contract, not a fixture refresh:
// regenerate testdata/golden/playdemo.events.jsonl only for changes that
// deliberately alter protocol behavior, and say so in the changelog.

import (
	"bytes"
	"os"
	"testing"
)

// playEvents replays `sos play -events jsonl -seed 1 testdata/playdemo.sos`
// in process and returns the event stream.
func playEvents(t *testing.T) []byte {
	t.Helper()
	src, err := os.ReadFile("testdata/playdemo.sos")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(string(src),
		WithNodes(0),
		WithRounds(DefaultRounds),
		WithSeed(DefaultSeed),
		WithChurn(0),
		WithLoss(0),
		WithRunToEnd(),
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sys.Subscribe(JSONLSink(&buf))
	rounds := DefaultRounds
	if h := sys.ScenarioHorizon(); h > rounds {
		rounds = h
	}
	if _, err := sys.Step(rounds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenEventStream(t *testing.T) {
	want, err := os.ReadFile("testdata/golden/playdemo.events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	got := playEvents(t)
	if bytes.Equal(got, want) {
		return
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("event stream diverges from the pre-refactor fixture at line %d:\n got: %s\nwant: %s",
				i+1, g, w)
		}
	}
	t.Fatalf("event stream differs from fixture (lengths: got %d, want %d bytes)", len(got), len(want))
}

// TestGoldenEventStreamStable guards the guard: two in-process replays must
// agree with each other, so a fixture mismatch can only mean a draw-order
// change, never flakiness.
func TestGoldenEventStreamStable(t *testing.T) {
	a, b := playEvents(t), playEvents(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two replays of the same seed differ — the engine lost determinism")
	}
}
