package main

import (
	"bytes"
	"strings"
	"testing"

	"sosf"
)

// TestRingOfRingsSmoke runs the example end to end with a tiny population
// (the topology has 8 ring segments, so 64 nodes keeps every segment
// populated).
func TestRingOfRingsSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, sosf.WithNodes(64)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fully converged after") {
		t.Fatalf("ring of rings did not converge within the example's budget:\n%s", out)
	}
	if !strings.Contains(out, "connected: true") {
		t.Fatalf("ring of rings not connected:\n%s", out)
	}
}
