// Ring of rings: the paper's flagship composite topology — eight
// elementary rings whose heads and tails are linked into one large cycle.
// Prints the per-layer convergence timeline, exactly the series of the
// paper's Figure 2/3 legends.
//
//	go run ./examples/ringofrings
package main

import (
	"fmt"
	"log"

	"sosf"
)

const src = `
# Eight rings composed into a ring of rings.
topology ring_of_rings {
    nodes 800
    let k = 8

    repeat i 0 k-1 {
        component seg[i] ring {
            weight 1
            port head
            port tail
        }
    }
    repeat i 0 k-1 {
        link seg[i].head seg[(i+1)%k].tail
    }
}`

func main() {
	log.SetFlags(0)

	sys, err := sosf.New(src, sosf.Options{Seed: 7, RunToEnd: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  elementary  uo1    uo2    ports  links")
	for round := 1; round <= 30; round++ {
		if _, err := sys.Step(1); err != nil {
			log.Fatal(err)
		}
		acc := sys.Accuracy()
		fmt.Printf("%5d  %.3f       %.3f  %.3f  %.3f  %.3f\n",
			round,
			acc["Elementary Topology"],
			acc["Same-component (UO1)"],
			acc["Distant-component (UO2)"],
			acc["Port Selection"],
			acc["Port Connection"])
		if sys.Report().Converged {
			fmt.Printf("\nfully converged after %d rounds\n", round)
			break
		}
	}
	rep := sys.Report()
	fmt.Printf("\n%d nodes assembled into %d components with %d links; connected: %v\n",
		rep.Nodes, rep.Components, rep.Links, sys.Connected())
	fmt.Printf("bandwidth per node per round: %.0f B shapes + %.0f B runtime\n",
		rep.BaselineBytes, rep.OverheadBytes)
}
