// Ring of rings: the paper's flagship composite topology — eight
// elementary rings whose heads and tails are linked into one large cycle.
// Prints the per-layer convergence timeline, exactly the series of the
// paper's Figure 2/3 legends.
//
//	go run ./examples/ringofrings
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sosf"
)

const src = `
# Eight rings composed into a ring of rings.
topology ring_of_rings {
    nodes 800
    let k = 8

    repeat i 0 k-1 {
        component seg[i] ring {
            weight 1
            port head
            port tail
        }
    }
    repeat i 0 k-1 {
        link seg[i].head seg[(i+1)%k].tail
    }
}`

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, narrating to w. Extra options are applied
// last, which is how the smoke test injects a tiny population.
func run(w io.Writer, extra ...sosf.Option) error {
	opts := append([]sosf.Option{sosf.Options{Seed: 7, RunToEnd: true}}, extra...)
	sys, err := sosf.New(src, opts...)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "round  elementary  uo1    uo2    ports  links")
	for round := 1; round <= 30; round++ {
		if _, err := sys.Step(1); err != nil {
			return err
		}
		acc := sys.Accuracy()
		fmt.Fprintf(w, "%5d  %.3f       %.3f  %.3f  %.3f  %.3f\n",
			round,
			acc["Elementary Topology"],
			acc["Same-component (UO1)"],
			acc["Distant-component (UO2)"],
			acc["Port Selection"],
			acc["Port Connection"])
		if sys.Report().Converged {
			fmt.Fprintf(w, "\nfully converged after %d rounds\n", round)
			break
		}
	}
	rep := sys.Report()
	fmt.Fprintf(w, "\n%d nodes assembled into %d components with %d links; connected: %v\n",
		rep.Nodes, rep.Components, rep.Links, sys.Connected())
	fmt.Fprintf(w, "bandwidth per node per round: %.0f B shapes + %.0f B runtime\n",
		rep.BaselineBytes, rep.OverheadBytes)
	return nil
}
