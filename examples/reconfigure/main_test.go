package main

import (
	"bytes"
	"strings"
	"testing"

	"sosf"
)

// TestReconfigureSmoke runs the example end to end with a tiny population:
// three rings scale out to four and the last swaps to a star, and the
// stack must have re-converged on the final configuration.
func TestReconfigureSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, sosf.WithNodes(48)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "all layers converged") {
		t.Fatalf("reconfigure never converged:\n%s", out)
	}
	if !strings.Contains(out, `final state: "rings_4"`) || !strings.Contains(out, "converged=true") {
		t.Fatalf("final state is not the converged four-ring topology:\n%s", out)
	}
}
