// Live reconfiguration: the paper's experiment (iii), scripted. A ring of
// three rings runs in steady state; a declarative scenario then pushes a
// new target topology with a fourth ring, and later swaps one ring for a
// star. Nothing restarts — the allocator re-derives roles, stale-epoch
// state is evicted on contact, and every layer re-converges while the
// system keeps running.
//
// Where this example once hand-rolled a driver loop around Step and
// ReconfigureSource, the whole experiment is now one Scenario value plus a
// round-event subscription that narrates it.
//
//	go run ./examples/reconfigure
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sosf"
)

// ringsOf builds the ring-of-k-rings source; the shape parameter lets the
// last component be swapped for a different elementary shape.
func ringsOf(k int, lastShape string) string {
	src := fmt.Sprintf("topology rings_%d {\n    nodes 600\n", k)
	for i := 0; i < k; i++ {
		shape := "ring"
		if i == k-1 {
			shape = lastShape
		}
		src += fmt.Sprintf(`    component seg%d %s {
        weight 1
        port head
        port tail
    }
`, i, shape)
	}
	for i := 0; i < k; i++ {
		src += fmt.Sprintf("    link seg%d.head seg%d.tail\n", i, (i+1)%k)
	}
	return src + "}\n"
}

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, narrating to w. Extra options are applied
// last, which is how the smoke test injects a tiny population.
func run(w io.Writer, extra ...sosf.Option) error {
	// The whole experiment, declaratively: scale out to four rings at
	// round 60, swap the last segment's shape at round 120.
	script := sosf.Scenario{
		sosf.At(60, sosf.Reconfigure(ringsOf(4, "ring"))),
		sosf.At(120, sosf.Reconfigure(ringsOf(4, "star"))),
	}
	opts := append([]sosf.Option{
		sosf.WithSeed(3),
		sosf.WithScenario(script),
	}, extra...)
	sys, err := sosf.New(ringsOf(3, "ring"), opts...)
	if err != nil {
		return err
	}

	// The event stream narrates the run: scripted actions as they fire,
	// and every (re-)convergence of the full stack.
	converged := false
	sys.Subscribe(func(ev sosf.RoundEvent) {
		for _, a := range ev.Actions {
			fmt.Fprintf(w, "round %3d: %s\n", ev.Round, a)
		}
		if ev.Converged && !converged {
			fmt.Fprintf(w, "round %3d: all layers converged (%d nodes)\n", ev.Round, ev.Nodes)
		}
		converged = ev.Converged
	})

	if _, err := sys.Step(180); err != nil {
		return err
	}

	rep := sys.Report()
	fmt.Fprintf(w, "\nfinal state: %q, connected=%v, converged=%v\n",
		rep.Topology, sys.Connected(), rep.Converged)
	for _, s := range rep.Subs {
		fmt.Fprintf(w, "  %-26s accuracy %.3f\n", s.Name, s.Final)
	}
	return nil
}
