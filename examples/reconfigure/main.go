// Live reconfiguration: the paper's experiment (iii). A ring of three
// rings runs in steady state; the operator then pushes a new target
// topology with a fourth ring, and later swaps one ring for a clique.
// Nothing restarts — the allocator re-derives roles, stale-epoch state is
// evicted on contact, and every layer re-converges while the system keeps
// running.
//
//	go run ./examples/reconfigure
package main

import (
	"fmt"
	"log"

	"sosf"
)

// ringsOf builds the ring-of-k-rings source; the shape parameter lets the
// last component be swapped for a different elementary shape.
func ringsOf(k int, lastShape string) string {
	src := fmt.Sprintf("topology rings_%d {\n    nodes 600\n", k)
	for i := 0; i < k; i++ {
		shape := "ring"
		if i == k-1 {
			shape = lastShape
		}
		src += fmt.Sprintf(`    component seg%d %s {
        weight 1
        port head
        port tail
    }
`, i, shape)
	}
	for i := 0; i < k; i++ {
		src += fmt.Sprintf("    link seg%d.head seg%d.tail\n", i, (i+1)%k)
	}
	return src + "}\n"
}

func main() {
	log.SetFlags(0)

	sys, err := sosf.New(ringsOf(3, "ring"), sosf.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	phase := func(name string) {
		rounds, err := sys.Step(150)
		if err != nil {
			log.Fatal(err)
		}
		rep := sys.Report()
		fmt.Printf("%-34s %2d rounds, converged=%v, %d components, %d links\n",
			name, rounds, rep.Converged, rep.Components, rep.Links)
	}

	phase("initial assembly (3 rings):")

	// Scale out: a fourth ring. Rendezvous hashing moves only ~1/4 of the
	// nodes; everyone else keeps their role.
	if err := sys.ReconfigureSource(ringsOf(4, "ring")); err != nil {
		log.Fatal(err)
	}
	phase("scale-out to 4 rings:")

	// Change a shape in place: the fourth segment becomes a star (say, a
	// hub-and-spoke collection tier). Only that segment's internal
	// structure changes; the surrounding links stay declared as before.
	if err := sys.ReconfigureSource(ringsOf(4, "star")); err != nil {
		log.Fatal(err)
	}
	phase("swap segment 3 ring -> star:")

	fmt.Printf("\nfinal state: connected=%v\n", sys.Connected())
	for _, s := range sys.Report().Subs {
		fmt.Printf("  %-26s accuracy %.3f\n", s.Name, s.Final)
	}
}
