package main

import (
	"bytes"
	"strings"
	"testing"

	"sosf"
)

// TestStarOfCliquesSmoke runs the example end to end with a tiny
// population (7 components — router star plus 6 shard cliques — so 48
// nodes keeps every shard populated through the shard[2] kill).
func TestStarOfCliquesSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, sosf.WithNodes(48)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "converged: true") {
		t.Fatalf("sharded cluster did not assemble:\n%s", out)
	}
	if !strings.Contains(out, "survivors connected: true") {
		t.Fatalf("cluster fell apart after losing shard[2]:\n%s", out)
	}
}
